package empart

import (
	"testing"

	"repro/internal/verify"
	"repro/internal/workload"
)

// Stress tests run every algorithm at 1M+ elements across adversarial
// workloads with full output verification. They are skipped under -short.

func stressSys(t *testing.T) *System {
	t.Helper()
	sys, err := New(Config{M: 1 << 13, B: 1 << 6})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestStressSortAllWorkloads(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	n := 1 << 20
	for _, kind := range workload.Kinds() {
		sys := stressSys(t)
		elems := workload.Elems(kind, n, sys.Config().B, 0x57e55)
		f := sys.Stage(elems)
		out, err := sys.Sort(f)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		got := sys.Read(out)
		if err := verify.Sorted(got); err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if err := verify.SameMultiset(got, elems); err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if sys.PeakMemory() > int64(sys.Config().M) {
			t.Fatalf("%v: peak memory %d over budget", kind, sys.PeakMemory())
		}
		checkNoLeaks(t, sys, out)
	}
}

func TestStressSplittersLarge(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	n := 1 << 20
	for _, p := range []Params{
		{K: 1024, A: 32, B: int64(n)},      // right-grounded, sublinear regime
		{K: 64, A: 0, B: int64(n) / 32},    // left-grounded
		{K: 256, A: 512, B: int64(n) / 16}, // two-sided narrow
		{K: 4096, A: 256, B: 256},          // exact quantile at large K
	} {
		sys := stressSys(t)
		elems := workload.Elems(workload.HardStripes, n, sys.Config().B, 0x57e56)
		f := sys.Stage(elems)
		out, err := sys.Splitters(f, p)
		if err != nil {
			t.Fatalf("%+v: %v", p, err)
		}
		if _, err := verify.Splitters(elems, sys.Read(out), p.K, p.A, p.B); err != nil {
			t.Fatalf("%+v: %v", p, err)
		}
		if sys.PeakMemory() > int64(sys.Config().M) {
			t.Fatalf("%+v: peak memory %d over budget", p, sys.PeakMemory())
		}
		checkNoLeaks(t, sys, out)
	}
}

func TestStressPartitionLarge(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	n := 1 << 20
	for _, p := range []Params{
		{K: 512, A: 64, B: int64(n)},
		{K: 128, A: 0, B: int64(n) / 64},
		{K: 256, A: 1024, B: int64(n) / 32},
	} {
		sys := stressSys(t)
		elems := workload.Elems(workload.FewDistinct, n, sys.Config().B, 0x57e57)
		f := sys.Stage(elems)
		res, err := sys.Partition(f, p)
		if err != nil {
			t.Fatalf("%+v: %v", p, err)
		}
		if err := verify.Partition(elems, sys.Read(res.Data), res.Sizes, p.K, p.A, p.B); err != nil {
			t.Fatalf("%+v: %v", p, err)
		}
		checkNoLeaks(t, sys, res.Data)
	}
}

func TestStressMultiSelectLargeK(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	n := 1 << 20
	sys := stressSys(t)
	elems := workload.Elems(workload.Uniform, n, sys.Config().B, 0x57e58)
	f := sys.Stage(elems)
	k := 2048
	ranks := make([]int64, k)
	for i := range ranks {
		ranks[i] = int64(i+1) * int64(n) / int64(k)
	}
	out, err := sys.MultiSelect(f, ranks)
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.MultiSelect(elems, ranks, sys.Read(out)); err != nil {
		t.Fatal(err)
	}
	checkNoLeaks(t, sys, out)
}

func TestStressPrecisePartition(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	n := 1 << 19
	sys := stressSys(t)
	elems := workload.Elems(workload.OrganPipe, n, sys.Config().B, 0x57e59)
	f := sys.Stage(elems)
	out, err := sys.PrecisePartition(f, int64(n)/128)
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.PrecisePartition(elems, sys.Read(out), int64(n)/128); err != nil {
		t.Fatal(err)
	}
	checkNoLeaks(t, sys, out)
}
