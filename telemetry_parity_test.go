package empart

import (
	"bufio"
	"bytes"
	"encoding/json"
	"log/slog"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"repro/internal/workload"
)

// The telemetry parity suite: the FULL telemetry bus — tracer, metrics
// registry and structured event log (ring + JSON-lines file) attached at
// once — must be strictly observational. For every facade driver and every
// backend, a fully-instrumented run must produce byte-equal outputs, equal
// logical Stats, and bit-identical trace JSON compared to a telemetry-off
// run (tracer only, which both sides need for the trace comparison). The
// suite runs under -race (log emission crosses the pipeline's worker and
// prefetch goroutines) and again pinned to GOMAXPROCS=1.

// runTelemetryParity is runParity with, optionally, the whole telemetry
// stack armed: metrics registry plus a debug-level event log writing
// JSON lines to a temp file.
func runTelemetryParity(t *testing.T, d parityDriver, mk func(t *testing.T) *System, elems []Elem, withTelemetry bool) (parityRun, *System, string) {
	t.Helper()
	sys := mk(t)
	logPath := ""
	f := sys.Stage(elems)
	sys.ResetStats()
	sys.EnableTracing()
	if withTelemetry {
		sys.EnableMetrics()
		logPath = filepath.Join(t.TempDir(), "events.jsonl")
		if _, err := sys.EnableLog(LogConfig{Level: slog.LevelDebug, Path: logPath}); err != nil {
			t.Fatal(err)
		}
	}
	out := d.run(t, sys, f)
	trace, err := sys.TraceJSON()
	if err != nil {
		t.Fatal(err)
	}
	f.Release()
	if leaks := sys.LiveScratchFiles(); len(leaks) != 0 {
		t.Fatalf("%s leaked scratch files: %v", d.name, leaks)
	}
	return parityRun{output: out, stats: sys.Stats(), trace: trace}, sys, logPath
}

// spanSeqs collects every span sequence number in the recorded trace.
func spanSeqs(sys *System) map[int64]bool {
	seqs := make(map[int64]bool)
	if tr := sys.Tracer(); tr != nil {
		tr.Walk(func(sp *Span) { seqs[sp.Seq] = true })
	}
	return seqs
}

func telemetryParitySuite(t *testing.T) {
	const n = 1 << 12
	cfg := Config{M: 1 << 10, B: 1 << 5}
	elems := workload.Elems(workload.Uniform, n, cfg.B, 0x6e7)
	for _, d := range parityDrivers(n) {
		t.Run(d.name, func(t *testing.T) {
			for _, be := range metricsParityBackends(cfg) {
				off, _, _ := runTelemetryParity(t, d, be.mk, elems, false)
				on, sys, logPath := runTelemetryParity(t, d, be.mk, elems, true)
				if !bytes.Equal(on.output, off.output) {
					t.Errorf("%s: output differs with telemetry on", be.name)
				}
				if on.stats != off.stats {
					t.Errorf("%s: stats with telemetry on %v != off %v", be.name, on.stats, off.stats)
				}
				if !bytes.Equal(on.trace, off.trace) {
					t.Errorf("%s: trace JSON differs with telemetry on", be.name)
				}

				// The run must actually have been narrated: phase boundaries
				// land in the ring at debug level, and every event's span_seq
				// resolves to a real span of the recorded trace.
				events := sys.LogEvents()
				if len(events) == 0 {
					t.Fatalf("%s: telemetry-on run logged no events", be.name)
				}
				seqs := spanSeqs(sys)
				sawPhase := false
				for _, ev := range events {
					if ev.Attrs["disk"] == nil {
						t.Errorf("%s: event %q lacks disk attr", be.name, ev.Msg)
					}
					seq, ok := ev.Attrs["span_seq"].(int64)
					if !ok {
						continue
					}
					sawPhase = true
					if !seqs[seq] {
						t.Errorf("%s: event %q carries span_seq=%d, not a recorded span", be.name, ev.Msg, seq)
					}
					if phase, _ := ev.Attrs["phase"].(string); phase == "" {
						t.Errorf("%s: event %q has span_seq but empty phase path", be.name, ev.Msg)
					}
				}
				if !sawPhase {
					t.Errorf("%s: no event carried span enrichment", be.name)
				}

				// The JSON-lines sink holds one valid JSON object per kept
				// event (the ring may have evicted; the file never does).
				// Flush first: file lines are buffered until Flush/Close.
				if err := sys.EventLog().Flush(); err != nil {
					t.Fatal(err)
				}
				total := sys.EventLog().Total()
				lines := int64(0)
				lf, err := os.Open(logPath)
				if err != nil {
					t.Fatal(err)
				}
				sc := bufio.NewScanner(lf)
				sc.Buffer(make([]byte, 1<<20), 1<<20)
				for sc.Scan() {
					var rec map[string]any
					if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
						t.Fatalf("%s: bad JSONL line %q: %v", be.name, sc.Text(), err)
					}
					if rec["msg"] == nil || rec["disk"] == nil {
						t.Errorf("%s: JSONL line missing msg/disk: %q", be.name, sc.Text())
					}
					lines++
				}
				lf.Close()
				if lines != total {
					t.Errorf("%s: JSONL file has %d lines, event log kept %d", be.name, lines, total)
				}
			}
		})
	}
}

func TestTelemetryParitySuite(t *testing.T) { telemetryParitySuite(t) }

func TestTelemetryParitySuiteSingleProc(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	telemetryParitySuite(t)
}

// otlpTraceDoc is the slice of the OTLP/JSON trace document the tests check.
type otlpTraceDoc struct {
	ResourceSpans []struct {
		ScopeSpans []struct {
			Spans []struct {
				TraceID      string `json:"traceId"`
				SpanID       string `json:"spanId"`
				ParentSpanID string `json:"parentSpanId"`
				Name         string `json:"name"`
				StartTime    string `json:"startTimeUnixNano"`
				EndTime      string `json:"endTimeUnixNano"`
			} `json:"spans"`
		} `json:"scopeSpans"`
	} `json:"resourceSpans"`
}

func TestTraceOTLPExport(t *testing.T) {
	cfg := Config{M: 1 << 10, B: 1 << 5}
	sys, err := NewFileBacked(cfg, filepath.Join(t.TempDir(), "t.dat"))
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	f := sys.Stage(workload.Elems(workload.Uniform, 1<<12, cfg.B, 0xa11))
	sys.EnableTracing()
	out, err := sys.Sort(f)
	if err != nil {
		t.Fatal(err)
	}
	out.Release()

	raw, err := sys.TraceOTLP("parity-test")
	if err != nil {
		t.Fatal(err)
	}
	var doc otlpTraceDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace OTLP is not valid JSON: %v", err)
	}
	if len(doc.ResourceSpans) != 1 || len(doc.ResourceSpans[0].ScopeSpans) != 1 {
		t.Fatalf("want one resourceSpans/scopeSpans, got %+v", doc.ResourceSpans)
	}
	spans := doc.ResourceSpans[0].ScopeSpans[0].Spans
	if len(spans) == 0 {
		t.Fatal("no spans exported")
	}

	// Count the recorded spans and collect their names for cross-checking.
	var want int
	names := make(map[string]bool)
	sys.Tracer().Walk(func(sp *Span) { want++; names[sp.Name] = true })
	if len(spans) != want {
		t.Errorf("exported %d spans, tracer recorded %d", len(spans), want)
	}

	ids := make(map[string]bool, len(spans))
	for _, sp := range spans {
		if len(sp.SpanID) != 16 {
			t.Errorf("span %q: spanId %q is not 16 hex chars", sp.Name, sp.SpanID)
		}
		if len(sp.TraceID) != 32 {
			t.Errorf("span %q: traceId %q is not 32 hex chars", sp.Name, sp.TraceID)
		}
		if ids[sp.SpanID] {
			t.Errorf("duplicate spanId %s", sp.SpanID)
		}
		ids[sp.SpanID] = true
		if !names[sp.Name] {
			t.Errorf("exported span %q not in the recorded trace", sp.Name)
		}
	}
	for _, sp := range spans {
		if sp.ParentSpanID != "" && !ids[sp.ParentSpanID] {
			t.Errorf("span %q: parentSpanId %s not among exported spans", sp.Name, sp.ParentSpanID)
		}
	}
}

func TestMetricsOTLPExemplarsResolve(t *testing.T) {
	cfg := Config{M: 1 << 10, B: 1 << 5}
	sys, err := NewFileBacked(cfg, filepath.Join(t.TempDir(), "e.dat"))
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	f := sys.Stage(workload.Elems(workload.Uniform, 1<<12, cfg.B, 0xa12))
	sys.EnableTracing()
	sys.EnableMetrics()
	out, err := sys.Sort(f)
	if err != nil {
		t.Fatal(err)
	}
	out.Release()

	raw, err := sys.MetricsOTLP("parity-test")
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		ResourceMetrics []struct {
			ScopeMetrics []struct {
				Metrics []struct {
					Name      string `json:"name"`
					Histogram *struct {
						DataPoints []struct {
							Exemplars []struct {
								FilteredAttributes []struct {
									Key   string `json:"key"`
									Value struct {
										IntValue string `json:"intValue"`
									} `json:"value"`
								} `json:"filteredAttributes"`
							} `json:"exemplars"`
						} `json:"dataPoints"`
					} `json:"histogram"`
				} `json:"metrics"`
			} `json:"scopeMetrics"`
		} `json:"resourceMetrics"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("metrics OTLP is not valid JSON: %v", err)
	}
	seqs := spanSeqs(sys)
	found := 0
	for _, rm := range doc.ResourceMetrics {
		for _, sm := range rm.ScopeMetrics {
			for _, m := range sm.Metrics {
				if m.Histogram == nil {
					continue
				}
				for _, dp := range m.Histogram.DataPoints {
					for _, ex := range dp.Exemplars {
						for _, a := range ex.FilteredAttributes {
							if a.Key != "empart.span_seq" {
								continue
							}
							found++
							var seq int64
							if _, err := jsonNumber(a.Value.IntValue, &seq); err != nil {
								t.Errorf("%s: exemplar seq %q not an integer", m.Name, a.Value.IntValue)
								continue
							}
							if !seqs[seq] {
								t.Errorf("%s: exemplar span_seq=%d is not a recorded span", m.Name, seq)
							}
						}
					}
				}
			}
		}
	}
	if found == 0 {
		t.Fatal("no exemplars exported from an instrumented file-backed sort")
	}
}

// jsonNumber parses OTLP's string-encoded int64.
func jsonNumber(s string, dst *int64) (int, error) {
	n, err := json.Number(s).Int64()
	if err != nil {
		return 0, err
	}
	*dst = n
	return 1, nil
}
