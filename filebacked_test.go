package empart

import (
	"path/filepath"
	"testing"

	"repro/internal/verify"
	"repro/internal/workload"
)

// TestFileBackedSuite runs the whole algorithm suite against a real backing
// file and checks every output, plus I/O-count equality with the in-memory
// backend (the store must be bit-for-bit behaviourally identical).
func TestFileBackedSuite(t *testing.T) {
	newFB := func() *System {
		sys, err := NewFileBacked(Config{M: 4096, B: 32}, filepath.Join(t.TempDir(), "disk.dat"))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { sys.Close() })
		return sys
	}
	n := 1 << 13
	elems := workload.Elems(workload.Uniform, n, 32, 0xfba)

	t.Run("sort", func(t *testing.T) {
		sys := newFB()
		f := sys.Stage(elems)
		out, err := sys.Sort(f)
		if err != nil {
			t.Fatal(err)
		}
		got := sys.Read(out)
		if err := verify.Sorted(got); err != nil {
			t.Fatal(err)
		}
		if err := verify.SameMultiset(got, elems); err != nil {
			t.Fatal(err)
		}
	})

	t.Run("splitters", func(t *testing.T) {
		sys := newFB()
		f := sys.Stage(elems)
		p := Params{K: 8, A: 64, B: int64(n) / 2}
		out, err := sys.Splitters(f, p)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := verify.Splitters(elems, sys.Read(out), p.K, p.A, p.B); err != nil {
			t.Fatal(err)
		}
	})

	t.Run("partition", func(t *testing.T) {
		sys := newFB()
		f := sys.Stage(elems)
		p := Params{K: 8, A: 0, B: int64(n) / 4}
		res, err := sys.Partition(f, p)
		if err != nil {
			t.Fatal(err)
		}
		if err := verify.Partition(elems, sys.Read(res.Data), res.Sizes, p.K, p.A, p.B); err != nil {
			t.Fatal(err)
		}
	})

	t.Run("multiselect", func(t *testing.T) {
		sys := newFB()
		f := sys.Stage(elems)
		ranks := []int64{1, int64(n) / 2, int64(n)}
		out, err := sys.MultiSelect(f, ranks)
		if err != nil {
			t.Fatal(err)
		}
		if err := verify.MultiSelect(elems, ranks, sys.Read(out)); err != nil {
			t.Fatal(err)
		}
	})

	t.Run("io-equality", func(t *testing.T) {
		// Deterministic algorithm, same seed: both backends must perform the
		// exact same I/O sequence, hence identical counters.
		mem, err := New(Config{M: 4096, B: 32})
		if err != nil {
			t.Fatal(err)
		}
		fb := newFB()
		run := func(sys *System) Stats {
			f := sys.Stage(elems)
			sys.ResetStats()
			out, err := sys.Sort(f)
			if err != nil {
				t.Fatal(err)
			}
			out.Release()
			return sys.Stats()
		}
		if a, b := run(mem), run(fb); a != b {
			t.Errorf("in-memory %v != file-backed %v", a, b)
		}
	})
}
