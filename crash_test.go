package empart

import (
	"bytes"
	"fmt"
	"math/rand/v2"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"syscall"
	"testing"
)

// Crash-recovery harness: the real-SIGKILL end of the checkpoint tests. It
// builds the emsort binary, scripts a self-SIGKILL at a physical write op
// via -crash-after-write, verifies the process actually died by signal,
// resumes the job with -resume against the same backing file and journal,
// and requires the recovered output byte-identical to an uncrashed run —
// with the resumed work shrinking as the crash point moves later, proving
// completed phases are never repeated.
//
// Job shape (M=512, B=32, n=20000): 625 input blocks; runs hold
// (M/B-2)·B = 448 elems, so formation writes 625 blocks (ops 0-624) across
// 45 runs; merge fan-in (M-2B)/(B+4) = 12 gives two passes of 625 writes
// each (ops 625-1249 and 1250-1874). The five crash points straddle every
// phase boundary.

var (
	resumeLineRe = regexp.MustCompile(`resuming from .*: (\d+) completed run\(s\), last merge pass (-?\d+), done=(\w+)`)
	costLineRe   = regexp.MustCompile(`cost reads=(\d+) writes=(\d+)`)
)

func buildEmsort(t *testing.T, dir string) string {
	t.Helper()
	bin := filepath.Join(dir, "emsort")
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/emsort")
	cmd.Dir = "."
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building emsort: %v\n%s", err, out)
	}
	return bin
}

func writeCrashInput(t *testing.T, path string, n int) {
	t.Helper()
	rng := rand.New(rand.NewPCG(0xc4a5, 0xc4a5))
	var buf bytes.Buffer
	for i := 0; i < n; i++ {
		fmt.Fprintln(&buf, rng.Int64N(int64(n)*4))
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestCrashRecovery(t *testing.T) {
	const n = 20000
	dir := t.TempDir()
	bin := buildEmsort(t, dir)
	input := filepath.Join(dir, "in.txt")
	writeCrashInput(t, input, n)

	baseArgs := []string{"-m", "512", "-b", "32", "-in", input}

	// Uncrashed reference run (journaled, like the crashing runs, so the
	// comparison also covers the journal's own output path).
	refOut := filepath.Join(dir, "ref.txt")
	{
		cmd := exec.Command(bin, append(append([]string{}, baseArgs...),
			"-out", refOut,
			"-backing", filepath.Join(dir, "ref.dat"),
			"-journal", filepath.Join(dir, "ref.journal"))...)
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("reference run: %v\n%s", err, out)
		}
	}
	want, err := os.ReadFile(refOut)
	if err != nil {
		t.Fatal(err)
	}

	// Crash points spanning every phase: mid formation, formation's final
	// block, early pass 0, late pass 0, and mid pass 1 (the final pass).
	crashOps := []int64{100, 620, 700, 1200, 1700}
	var resumedWrites []int64
	lastPassSeen := int64(-2)

	for _, op := range crashOps {
		t.Run(fmt.Sprintf("crash-at-write-%d", op), func(t *testing.T) {
			cdir := t.TempDir()
			backing := filepath.Join(cdir, "b.dat")
			journal := filepath.Join(cdir, "j.journal")
			outPath := filepath.Join(cdir, "out.txt")

			crash := exec.Command(bin, append(append([]string{}, baseArgs...),
				"-out", outPath,
				"-backing", backing,
				"-journal", journal,
				"-crash-after-write", strconv.FormatInt(op, 10))...)
			crashOut, err := crash.CombinedOutput()
			if err == nil {
				t.Fatalf("crash run survived its SIGKILL point\n%s", crashOut)
			}
			ee, ok := err.(*exec.ExitError)
			if !ok {
				t.Fatalf("crash run: %v\n%s", err, crashOut)
			}
			ws := ee.Sys().(syscall.WaitStatus)
			if !ws.Signaled() || ws.Signal() != syscall.SIGKILL {
				t.Fatalf("crash run exited %v, want death by SIGKILL\n%s", ee, crashOut)
			}

			resume := exec.Command(bin, append(append([]string{}, baseArgs...),
				"-out", outPath,
				"-backing", backing,
				"-journal", journal,
				"-resume")...)
			resumeOut, err := resume.CombinedOutput()
			if err != nil {
				t.Fatalf("resume run: %v\n%s", err, resumeOut)
			}

			got, err := os.ReadFile(outPath)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("resumed output differs from the uncrashed reference (%d vs %d bytes)", len(got), len(want))
			}

			// The resume banner reports the journal's recovered state; the
			// last completed pass may only grow as the crash moves later.
			rm := resumeLineRe.FindSubmatch(resumeOut)
			if rm == nil {
				t.Fatalf("resume run printed no recovery banner\n%s", resumeOut)
			}
			lastPass, _ := strconv.ParseInt(string(rm[2]), 10, 64)
			if lastPass < lastPassSeen {
				t.Errorf("last completed pass went backwards: %d after %d", lastPass, lastPassSeen)
			}
			lastPassSeen = lastPass
			if op == 1700 && lastPass != 0 {
				t.Errorf("crash mid final pass recovered lastPass=%d, want 0 (pass 0 committed)", lastPass)
			}

			cm := costLineRe.FindSubmatch(resumeOut)
			if cm == nil {
				t.Fatalf("resume run printed no cost line\n%s", resumeOut)
			}
			w, _ := strconv.ParseInt(string(cm[2]), 10, 64)
			resumedWrites = append(resumedWrites, w)
		})
	}

	// Exactly the unfinished work is redone, never a completed phase. Crash
	// at op 100 loses 7 durable runs' worth of scan (98 blocks), so resume
	// writes 527 formation + 1250 merge blocks; at op 620 only the 9-block
	// tail run is unformed; anywhere inside pass 0 the whole 1250-write
	// merge reruns (the pass had not committed); mid pass 1 only the final
	// 625-write pass reruns.
	wantWrites := []int64{1777, 1259, 1250, 1250, 625}
	if len(resumedWrites) == len(crashOps) {
		for i, w := range resumedWrites {
			if w != wantWrites[i] {
				t.Errorf("crash@%d: resumed job wrote %d blocks, want exactly %d",
					crashOps[i], w, wantWrites[i])
			}
		}
	}
}
