// Histogram: the paper's motivating scenario for approximate K-splitters —
// building an equi-depth histogram (a 1/K-quantile statistical profile) of a
// skewed dataset. Accepting slack in the bucket depths makes the boundaries
// cheaper to find; letting the upper bound go slack all the way (only "every
// bucket has at least a elements" binds) makes them findable in *sublinear*
// I/Os, the paper's headline phenomenon.
package main

import (
	"fmt"
	"log"
	"math/rand/v2"
	"strings"

	empart "repro"
)

const (
	n = 1 << 19
	k = 16
)

func dataset() []empart.Elem {
	// Heavy-tailed keys: a few values dominate, as in real attribute data.
	rng := rand.New(rand.NewPCG(42, 42))
	elems := make([]empart.Elem, n)
	for i := range elems {
		tier := int64(1)
		for rng.IntN(2) == 0 && tier < 30 {
			tier++
		}
		elems[i] = empart.Elem{Key: tier*1_000_000 + rng.Int64N(1_000_000), Aux: int64(i)}
	}
	return elems
}

func build(label string, lo, hi float64, show bool) int64 {
	sys, err := empart.New(empart.Config{M: 4096, B: 32})
	if err != nil {
		log.Fatal(err)
	}
	f := sys.Stage(dataset())
	sys.ResetStats()
	buckets, err := sys.EquiDepthHistogram(f, k, lo, hi)
	if err != nil {
		log.Fatal(err)
	}
	io := sys.Stats().Total()
	fmt.Printf("%-42s %7d I/Os (%.2f scans)\n", label, io, float64(io)/(n/32.0))
	if show {
		fmt.Println()
		for _, b := range buckets {
			bar := strings.Repeat("#", int(b.Count/(n/k/32)))
			fmt.Printf("  <= %8d | %-40s %d\n", b.Upper.Key, bar, b.Count)
		}
		fmt.Println()
	}
	return io
}

// buildNaive is the brute-force baseline: sort everything, read the
// boundaries off the sorted order, count in the same pass.
func buildNaive() int64 {
	sys, err := empart.New(empart.Config{M: 4096, B: 32})
	if err != nil {
		log.Fatal(err)
	}
	f := sys.Stage(dataset())
	sys.ResetStats()
	sorted, err := sys.Sort(f)
	if err != nil {
		log.Fatal(err)
	}
	all := sys.Read(sorted)
	_ = all[(n/k)*1-1] // boundaries come straight off the sorted order
	io := sys.Stats().Total()
	fmt.Printf("%-42s %7d I/Os (%.2f scans)\n", "naive: full sort, then index", io, float64(io)/(n/32.0))
	return io
}

func main() {
	fmt.Printf("equi-depth histogram of %d skewed records, K=%d buckets (ideal depth %d)\n\n", n, k, n/k)
	naive := buildNaive()
	exact := build("exact quantile via multi-selection", 0, 0, true)
	atLeast := build("depths >= 1/16 of ideal (upper side free)", 15.0/16, float64(k), false)
	fmt.Printf("\nI/O: naive %d -> exact multi-selection %d -> at-least-a splitters %d (one scan = %d).\n",
		naive, exact, atLeast, n/32)
	fmt.Printf("(each histogram includes one mandatory counting scan to report depths;\n")
	fmt.Printf(" finding the boundaries alone in the at-least-a case is sublinear)\n")
}
