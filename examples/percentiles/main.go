// Percentiles: latency-style percentile extraction (p50/p90/p99/p99.9) with
// the optimal multi-selection algorithm (Theorem 4), compared against the
// "sort everything, then index" baseline. For a handful of ranks,
// multi-selection is linear in the data (K <= B clamps the lg term) while
// sorting pays the full lg_{M/B}(N/B) factor.
package main

import (
	"fmt"
	"log"
	"math/rand/v2"

	empart "repro"
)

const n = 1 << 19

func dataset() []empart.Elem {
	// Log-normal-ish synthetic latencies in microseconds.
	rng := rand.New(rand.NewPCG(99, 1))
	elems := make([]empart.Elem, n)
	for i := range elems {
		v := int64(100)
		for j := 0; j < 12; j++ {
			v += rng.Int64N(200)
			if rng.IntN(4) == 0 {
				v *= 2
			}
		}
		elems[i] = empart.Elem{Key: v, Aux: int64(i)}
	}
	return elems
}

func main() {
	quantiles := []struct {
		name string
		q    float64
	}{
		{"p50", 0.50}, {"p90", 0.90}, {"p99", 0.99}, {"p99.9", 0.999},
	}
	ranks := make([]int64, len(quantiles))
	for i, q := range quantiles {
		ranks[i] = int64(q.q * n)
	}

	// Multi-selection.
	sys, err := empart.New(empart.Config{M: 4096, B: 32})
	if err != nil {
		log.Fatal(err)
	}
	in := dataset()
	f := sys.Stage(in)
	sys.ResetStats()
	out, err := sys.MultiSelect(f, ranks)
	if err != nil {
		log.Fatal(err)
	}
	picked := sys.Read(out)
	mselIO := sys.Stats().Total()

	fmt.Printf("latency percentiles over %d samples:\n", n)
	for i, q := range quantiles {
		fmt.Printf("  %-6s %8d us\n", q.name, picked[i].Key)
	}

	// Baseline: full external sort, then read the ranks off the sorted file.
	sys2, err := empart.New(empart.Config{M: 4096, B: 32})
	if err != nil {
		log.Fatal(err)
	}
	f2 := sys2.Stage(in)
	sys2.ResetStats()
	sorted, err := sys2.Sort(f2)
	if err != nil {
		log.Fatal(err)
	}
	all := sys2.Read(sorted)
	for i, r := range ranks {
		if all[r-1] != picked[i] {
			log.Fatalf("%s mismatch: multiselect %v, sort %v", quantiles[i].name, picked[i], all[r-1])
		}
	}
	sortIO := sys2.Stats().Total()

	scan := float64(n) / 32
	fmt.Printf("\nmulti-selection: %7d I/Os (%.2f scans)\n", mselIO, float64(mselIO)/scan)
	fmt.Printf("sort baseline:   %7d I/Os (%.2f scans)\n", sortIO, float64(sortIO)/scan)
	fmt.Printf("multi-selection answered the same percentiles with %.1fx fewer I/Os\n",
		float64(sortIO)/float64(mselIO))
}
