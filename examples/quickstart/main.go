// Quickstart: create an external-memory machine, stage a dataset, compute
// approximate 8-splitters with a two-sided size bound, and inspect the
// buckets and the I/O cost.
package main

import (
	"fmt"
	"log"
	"math/rand/v2"

	empart "repro"
)

func main() {
	// A machine with 4096 elements of memory and blocks of 32 elements.
	sys, err := empart.New(empart.Config{M: 4096, B: 32})
	if err != nil {
		log.Fatal(err)
	}

	// 64Ki random records. Aux is the record's position, making every
	// record unique so the (Key, Aux) order is total.
	const n = 1 << 16
	rng := rand.New(rand.NewPCG(2014, 23))
	elems := make([]empart.Elem, n)
	for i := range elems {
		elems[i] = empart.Elem{Key: rng.Int64N(1 << 40), Aux: int64(i)}
	}
	f := sys.Stage(elems) // staging is free; algorithm I/O is counted below
	sys.ResetStats()

	// Split into K = 8 buckets, each with at least 1Ki elements and no upper
	// bound (b = N): the right-grounded regime, where the splitters cost is
	// sublinear — it depends on a*K, not on N (Theorems 1 and 5).
	p := empart.Params{K: 8, A: n / 64, B: n}
	splitters, err := sys.Splitters(f, p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("problem: %d elements into K=%d buckets of size [%d, %d] (%s regime)\n",
		n, p.K, p.A, p.B, p.Variant(n))

	// Count each bucket with one more (counted) scan, using the splitters.
	sp := sys.Read(splitters)
	counts := make([]int64, p.K)
	for _, e := range elems {
		j := 0
		for j < len(sp) && (sp[j].Key < e.Key || (sp[j].Key == e.Key && sp[j].Aux < e.Aux)) {
			j++
		}
		counts[j]++
	}
	for i, c := range counts {
		fmt.Printf("  bucket %d: %5d elements", i, c)
		if i < len(sp) {
			fmt.Printf("   (up to key %d)", sp[i].Key)
		}
		fmt.Println()
	}

	st := sys.Stats()
	fmt.Printf("\nI/O cost: %v  —  %.2f scans of the input\n", st, float64(st.Total())/(float64(n)/32))
	fmt.Printf("paper bound at these parameters: %.0f I/Os\n",
		sys.Machine().SplittersRight(p.A, p.K))

	// Compare with actually sorting the data on the same machine.
	sys.ResetStats()
	if _, err := sys.Sort(f); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("for comparison, sorting the same data cost %d I/Os\n", sys.Stats().Total())
}
