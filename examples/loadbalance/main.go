// Loadbalance: the paper's motivating scenario for approximate
// K-partitioning — distributing N records across K machines for parallel
// processing.
//
// Three strategies are compared on the same skewed dataset:
//
//  1. Exact physical partitioning: every machine gets exactly N/K records
//     (multi-partition; the output is the fully re-ordered file).
//  2. Loose physical partitioning: every machine gets at least N/(64K)
//     records (right-grounded approximate K-partitioning).
//  3. Loose boundaries only: compute right-grounded approximate K-splitters
//     and let machines pull their own key ranges — the paper's sublinear
//     regime: the boundaries cost far less than one scan of the data.
//
// Every physical output is verified against the problem definition.
package main

import (
	"fmt"
	"log"
	"math/rand/v2"

	empart "repro"
	"repro/internal/verify"
)

const (
	n = 1 << 18
	k = 512
)

func dataset() []empart.Elem {
	rng := rand.New(rand.NewPCG(7, 7))
	elems := make([]empart.Elem, n)
	for i := range elems {
		// Skewed keys: a hot range receives half the mass.
		key := rng.Int64N(1 << 40)
		if rng.IntN(2) == 0 {
			key = rng.Int64N(1 << 20)
		}
		elems[i] = empart.Elem{Key: key, Aux: int64(i)}
	}
	return elems
}

func newRun() (*empart.System, []empart.Elem, *empart.File) {
	sys, err := empart.New(empart.Config{M: 4096, B: 32})
	if err != nil {
		log.Fatal(err)
	}
	in := dataset()
	f := sys.Stage(in)
	sys.ResetStats()
	return sys, in, f
}

func report(label string, sys *empart.System, minSz, maxSz int64) int64 {
	io := sys.Stats().Total()
	fmt.Printf("%-44s load %5d..%6d   %7d I/Os (%.3f scans)\n",
		label, minSz, maxSz, io, float64(io)/(n/32.0))
	return io
}

func main() {
	fmt.Printf("distributing %d records across %d machines (ideal load %d each)\n\n", n, k, n/k)

	// 1. Exact physical partitioning.
	sys, in, f := newRun()
	pExact := empart.Params{K: k, A: n / k, B: n / k}
	res, err := sys.Partition(f, pExact)
	if err != nil {
		log.Fatal(err)
	}
	if err := verify.Partition(in, sys.Read(res.Data), res.Sizes, pExact.K, pExact.A, pExact.B); err != nil {
		log.Fatal(err)
	}
	exact := report("exact physical partition (a=b=N/K)", sys, n/k, n/k)

	// 2. Loose physical partitioning: nobody gets less than N/(16K).
	sys, in, f = newRun()
	pLoose := empart.Params{K: k, A: n / (64 * k), B: n}
	res, err = sys.Partition(f, pLoose)
	if err != nil {
		log.Fatal(err)
	}
	if err := verify.Partition(in, sys.Read(res.Data), res.Sizes, pLoose.K, pLoose.A, pLoose.B); err != nil {
		log.Fatal(err)
	}
	var mn, mx int64 = n, 0
	for _, s := range res.Sizes {
		mn, mx = min(mn, s), max(mx, s)
	}
	loose := report("loose physical partition (a=N/64K, b=N)", sys, mn, mx)

	// 3. Boundaries only: sublinear.
	sys, in, f = newRun()
	sp, err := sys.Splitters(f, pLoose)
	if err != nil {
		log.Fatal(err)
	}
	sizes, err := verify.Splitters(in, sys.Read(sp), pLoose.K, pLoose.A, pLoose.B)
	if err != nil {
		log.Fatal(err)
	}
	mn, mx = n, 0
	for _, s := range sizes {
		mn, mx = min(mn, s), max(mx, s)
	}
	bounds := report("loose boundaries only (splitters)", sys, mn, mx)

	fmt.Printf("\nloose physical partitioning saved %.0f%% of the exact cost — physically moving\n",
		100*(1-float64(loose)/float64(exact)))
	fmt.Printf("N records costs scans no matter how loose the balance (Theorem 3's lower bound).\n")
	fmt.Printf("Computing boundaries alone cost %.1f%% of one scan: the sublinear regime of\n",
		100*float64(bounds)/(n/32.0))
	fmt.Printf("Theorems 1/5, and the paper's separation between the splitters and\n")
	fmt.Printf("partitioning problems.\n")
}
