// Benchmarks regenerating the paper's evaluation (Table 1 and the
// companion-problem results). The paper is a theory paper: its "evaluation"
// is a table of matching upper and lower bounds, so each benchmark measures
// the real block-I/O count of the implementation on the simulated EM machine
// and reports it alongside the paper's formula, as custom metrics:
//
//	io/op       measured block transfers per operation
//	scans/op    measured transfers divided by one scan (N/B) — the shape axis
//	bound/op    the paper's upper-bound formula at these parameters
//	ratio/op    measured / bound — the fitted constant (flat ratio = match)
//
// cmd/embench turns the same sweeps into the paper-style tables recorded in
// EXPERIMENTS.md. See DESIGN.md §3 for the experiment index.
package empart

import (
	"fmt"
	"testing"

	"repro/internal/emio"
	"repro/internal/intermix"
	"repro/internal/workload"
)

// benchCfg is the standard benchmark machine: M = 4096 elements, B = 32.
var benchCfg = Config{M: 1 << 12, B: 1 << 5}

// benchN is the standard input size: 64x memory.
const benchN = 1 << 18

// runMeasured executes fn b.N times on a staged input, reporting I/O metrics
// against the given formula bound.
func runMeasured(b *testing.B, cfg Config, n int, kind workload.Kind, bound float64,
	fn func(sys *System, f *File) error) {
	b.Helper()
	sys, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	elems := workload.Elems(kind, n, cfg.B, 0xbe7c4)
	f := sys.Stage(elems)
	var io int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.ResetStats()
		if err := fn(sys, f); err != nil {
			b.Fatal(err)
		}
		io = sys.Stats().Total()
	}
	b.StopTimer()
	scan := float64(n) / float64(cfg.B)
	b.ReportMetric(float64(io), "io/op")
	b.ReportMetric(float64(io)/scan, "scans/op")
	if bound > 0 {
		b.ReportMetric(bound, "bound/op")
		b.ReportMetric(float64(io)/bound, "ratio/op")
	}
}

// --- SORT-BASE: the trivial baseline for every Table-1 row ---------------

func BenchmarkSortBaseline(b *testing.B) {
	for _, n := range []int{1 << 16, 1 << 18, 1 << 20} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			mc := Machine{M: int64(benchCfg.M), B: int64(benchCfg.B)}
			runMeasured(b, benchCfg, n, workload.Uniform, mc.Sort(int64(n)),
				func(sys *System, f *File) error {
					out, err := sys.Sort(f)
					if err != nil {
						return err
					}
					out.Release()
					return nil
				})
		})
	}
}

// --- T1-R-SPL: right-grounded splitters, Θ((1+aK/B) lg_{M/B}(K/B)) --------
// The headline sublinear regime: cost grows with aK, not with N.

func BenchmarkTable1RightSplitters(b *testing.B) {
	k := int64(64)
	for _, a := range []int64{2, 16, 128, 1024, benchN / 64} {
		b.Run(fmt.Sprintf("a=%d", a), func(b *testing.B) {
			mc := Machine{M: int64(benchCfg.M), B: int64(benchCfg.B)}
			p := Params{K: k, A: a, B: benchN}
			runMeasured(b, benchCfg, benchN, workload.Uniform, mc.SplittersRight(a, k),
				func(sys *System, f *File) error {
					out, err := sys.Splitters(f, p)
					if err != nil {
						return err
					}
					out.Release()
					return nil
				})
		})
	}
}

// --- T1-L-SPL: left-grounded splitters, Θ((N/B) lg_{M/B}(N/(bB))) ---------

func BenchmarkTable1LeftSplitters(b *testing.B) {
	k := int64(64)
	for _, bb := range []int64{benchN / 64, benchN / 16, benchN / 4, benchN / 2} {
		b.Run(fmt.Sprintf("b=%d", bb), func(b *testing.B) {
			mc := Machine{M: int64(benchCfg.M), B: int64(benchCfg.B)}
			p := Params{K: k, A: 0, B: bb}
			runMeasured(b, benchCfg, benchN, workload.Uniform, mc.SplittersLeft(benchN, bb),
				func(sys *System, f *File) error {
					out, err := sys.Splitters(f, p)
					if err != nil {
						return err
					}
					out.Release()
					return nil
				})
		})
	}
}

// --- T1-2-SPL: two-sided splitters, sum bound ------------------------------

func BenchmarkTable1TwoSidedSplitters(b *testing.B) {
	k := int64(64)
	nk := int64(benchN) / k
	for _, tc := range []struct{ a, b int64 }{
		{nk, nk},             // exact quantile
		{nk / 8, nk * 4},     // moderate slack both sides
		{4, benchN / 4},      // tiny a, generous b
		{nk / 2, benchN / 2}, // wide b
	} {
		b.Run(fmt.Sprintf("a=%d/b=%d", tc.a, tc.b), func(b *testing.B) {
			mc := Machine{M: int64(benchCfg.M), B: int64(benchCfg.B)}
			p := Params{K: k, A: tc.a, B: tc.b}
			runMeasured(b, benchCfg, benchN, workload.Uniform,
				mc.SplittersTwoSidedUB(benchN, k, tc.a, tc.b),
				func(sys *System, f *File) error {
					out, err := sys.Splitters(f, p)
					if err != nil {
						return err
					}
					out.Release()
					return nil
				})
		})
	}
}

// --- T1-R-PAR: right-grounded partitioning ---------------------------------

func BenchmarkTable1RightPartitioning(b *testing.B) {
	k := int64(64)
	for _, a := range []int64{0, 16, 256, benchN / 64} {
		b.Run(fmt.Sprintf("a=%d", a), func(b *testing.B) {
			mc := Machine{M: int64(benchCfg.M), B: int64(benchCfg.B)}
			p := Params{K: k, A: a, B: benchN}
			runMeasured(b, benchCfg, benchN, workload.Uniform,
				mc.PartitionRightUB(benchN, k, a),
				func(sys *System, f *File) error {
					res, err := sys.Partition(f, p)
					if err != nil {
						return err
					}
					res.Release()
					return nil
				})
		})
	}
}

// --- T1-L-PAR: left-grounded partitioning, Θ((N/B) lg_{M/B} min{N/b,N/B}) --
// Includes the K-independence check: sweeping K at fixed b must be flat.

func BenchmarkTable1LeftPartitioning(b *testing.B) {
	for _, bb := range []int64{benchN / 256, benchN / 16, benchN / 2} {
		b.Run(fmt.Sprintf("b=%d", bb), func(b *testing.B) {
			mc := Machine{M: int64(benchCfg.M), B: int64(benchCfg.B)}
			p := Params{K: 256, A: 0, B: bb}
			runMeasured(b, benchCfg, benchN, workload.Uniform,
				mc.PartitionLeft(benchN, bb),
				func(sys *System, f *File) error {
					res, err := sys.Partition(f, p)
					if err != nil {
						return err
					}
					res.Release()
					return nil
				})
		})
	}
	// K-independence: same b, growing K.
	for _, k := range []int64{16, 256, 4096} {
		b.Run(fmt.Sprintf("Kflat/K=%d", k), func(b *testing.B) {
			mc := Machine{M: int64(benchCfg.M), B: int64(benchCfg.B)}
			p := Params{K: k, A: 0, B: benchN / 8}
			runMeasured(b, benchCfg, benchN, workload.Uniform,
				mc.PartitionLeft(benchN, benchN/8),
				func(sys *System, f *File) error {
					res, err := sys.Partition(f, p)
					if err != nil {
						return err
					}
					res.Release()
					return nil
				})
		})
	}
}

// --- T1-2-PAR: two-sided partitioning --------------------------------------

func BenchmarkTable1TwoSidedPartitioning(b *testing.B) {
	k := int64(64)
	nk := int64(benchN) / k
	for _, tc := range []struct{ a, b int64 }{
		{nk, nk},
		{nk / 8, nk * 4},
		{4, benchN / 4},
	} {
		b.Run(fmt.Sprintf("a=%d/b=%d", tc.a, tc.b), func(b *testing.B) {
			mc := Machine{M: int64(benchCfg.M), B: int64(benchCfg.B)}
			p := Params{K: k, A: tc.a, B: tc.b}
			runMeasured(b, benchCfg, benchN, workload.Uniform,
				mc.PartitionTwoSidedUB(benchN, k, tc.a, tc.b),
				func(sys *System, f *File) error {
					res, err := sys.Partition(f, p)
					if err != nil {
						return err
					}
					res.Release()
					return nil
				})
		})
	}
}

// --- THM4-SEP: multi-selection vs multi-partition separation ---------------
// At equi-spaced ranks/sizes, multi-selection must beat multi-partition for
// K below about M/B and converge to it for large K.

func BenchmarkSeparationMultiSelectVsMultiPartition(b *testing.B) {
	for _, k := range []int{4, 32, 256, 2048, benchN / 32} {
		ranks := make([]int64, k-1)
		sizes := make([]int64, k)
		for i := 0; i < k-1; i++ {
			ranks[i] = int64(i+1) * benchN / int64(k)
		}
		prev := int64(0)
		for i := 0; i < k; i++ {
			cum := int64(i+1) * benchN / int64(k)
			sizes[i] = cum - prev
			prev = cum
		}
		mc := Machine{M: int64(benchCfg.M), B: int64(benchCfg.B)}
		b.Run(fmt.Sprintf("multiselect/K=%d", k), func(b *testing.B) {
			runMeasured(b, benchCfg, benchN, workload.Uniform,
				mc.MultiSelect(benchN, int64(k)),
				func(sys *System, f *File) error {
					out, err := sys.MultiSelect(f, ranks)
					if err != nil {
						return err
					}
					out.Release()
					return nil
				})
		})
		b.Run(fmt.Sprintf("multipartition/K=%d", k), func(b *testing.B) {
			runMeasured(b, benchCfg, benchN, workload.Uniform,
				mc.MultiPartition(benchN, int64(k)),
				func(sys *System, f *File) error {
					out, err := sys.MultiPartition(f, sizes)
					if err != nil {
						return err
					}
					out.Release()
					return nil
				})
		})
	}
}

// --- INTERMIX: Lemma 6, L-intermixed selection is linear -------------------

func BenchmarkIntermixedSelection(b *testing.B) {
	cfg := benchCfg
	maxL := intermix.MaxGroups(cfg)
	for _, l := range []int{1, 4, maxL} {
		b.Run(fmt.Sprintf("L=%d", l), func(b *testing.B) {
			ctx, err := emio.NewCtx(cfg)
			if err != nil {
				b.Fatal(err)
			}
			// Build an intermixed instance with L equal groups.
			n := benchN
			elems := workload.Elems(workload.Uniform, n, cfg.B, 0x5eed)
			for i := range elems {
				elems[i].Aux = emio.PackAux(int64(i%l), int64(i))
			}
			d := emio.BuildFile(ctx.Disk(), "D", elems)
			targets := make([]int64, l)
			per := int64(n / l)
			for i := range targets {
				targets[i] = per / 2
			}
			var io int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ctx.Disk().ResetStats()
				res, err := intermix.Select(ctx, d, l, targets)
				if err != nil {
					b.Fatal(err)
				}
				ctx.FreeElems(res)
				io = ctx.Disk().Stats().Total()
			}
			b.StopTimer()
			scan := float64(n) / float64(cfg.B)
			b.ReportMetric(float64(io), "io/op")
			b.ReportMetric(float64(io)/scan, "scans/op")
		})
	}
}

// --- RED-3: precise partitioning via the §3 reduction ----------------------

func BenchmarkPreciseViaApproxReduction(b *testing.B) {
	for _, bb := range []int64{benchN / 256, benchN / 16, benchN / 4} {
		b.Run(fmt.Sprintf("b=%d", bb), func(b *testing.B) {
			mc := Machine{M: int64(benchCfg.M), B: int64(benchCfg.B)}
			runMeasured(b, benchCfg, benchN, workload.Uniform,
				mc.PartitionLeft(benchN, bb),
				func(sys *System, f *File) error {
					out, err := sys.PrecisePartition(f, bb)
					if err != nil {
						return err
					}
					out.Release()
					return nil
				})
		})
	}
}

// --- THM1/2-LB: measured optimal algorithms against the exact floors -------
// ratio/op here is measured / information-floor: it must stay >= 1 (the
// floor is a true bound) and O(1) (the algorithm is optimal).

func BenchmarkLowerBoundFloor(b *testing.B) {
	mc := Machine{M: int64(benchCfg.M), B: int64(benchCfg.B)}
	b.Run("rightSplitters", func(b *testing.B) {
		a, k := int64(64), int64(1024)
		floor := mc.RightSplittersFloor(a, k)
		p := Params{K: k, A: a, B: benchN}
		runMeasured(b, benchCfg, benchN, workload.HardStripes, floor,
			func(sys *System, f *File) error {
				out, err := sys.Splitters(f, p)
				if err != nil {
					return err
				}
				out.Release()
				return nil
			})
	})
	b.Run("leftSplitters", func(b *testing.B) {
		bb := int64(benchN / 16)
		floor := mc.LeftSplittersFloor(benchN, bb)
		p := Params{K: 64, A: 0, B: bb}
		runMeasured(b, benchCfg, benchN, workload.HardStripes, floor,
			func(sys *System, f *File) error {
				out, err := sys.Splitters(f, p)
				if err != nil {
					return err
				}
				out.Release()
				return nil
			})
	})
	b.Run("sort", func(b *testing.B) {
		floor := mc.SortFloor(benchN)
		runMeasured(b, benchCfg, benchN, workload.HardStripes, floor,
			func(sys *System, f *File) error {
				out, err := sys.Sort(f)
				if err != nil {
					return err
				}
				out.Release()
				return nil
			})
	})
}
