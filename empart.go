// Package empart is a library for finding approximate partitions and
// splitters in external memory, reproducing:
//
//	Xiaocheng Hu, Yufei Tao, Yi Yang, Shuigeng Zhou.
//	"Finding Approximate Partitions and Splitters in External Memory."
//	SPAA 2014.
//
// The library runs on a simulated external-memory machine (memory of M
// elements, disk blocks of B elements, cost = block transfers) and provides
// I/O-optimal algorithms for:
//
//   - approximate K-splitters and approximate K-partitioning, in their
//     right-grounded, left-grounded and two-sided regimes (Theorems 5 and 6);
//   - multi-selection in O((N/B) lg_{M/B}(K/B)) I/Os (Theorem 4);
//   - the substrates: multi-partition (Aggarwal-Vitter), L-intermixed
//     selection (§4.1), exact selection, external merge sort;
//   - the §3 reduction from precise to approximate partitioning;
//   - the lower-bound formulas and information-theoretic floors of
//     Theorems 1-3 (package internal/bounds, surfaced via Machine);
//   - an equi-depth histogram application.
//
// # Quickstart
//
//	sys, _ := empart.New(empart.Config{M: 1 << 20, B: 1 << 7})
//	f := sys.Stage(elems) // stage data (uncounted harness I/O)
//	sys.ResetStats()
//	sp, _ := sys.Splitters(f, empart.Params{K: 16, A: 100, B: 1 << 40})
//	fmt.Println(sys.Stats()) // block I/Os the algorithm performed
//
// Elements are (Key, Aux) pairs ordered lexicographically; give every
// element a distinct Aux (e.g. its position) so the order is total.
package empart

import (
	"context"
	"log/slog"
	"sync"
	"time"

	"repro/internal/bounds"
	"repro/internal/core"
	"repro/internal/distsort"
	"repro/internal/emio"
	"repro/internal/emio/metrics"
	"repro/internal/empar"
	"repro/internal/emsel"
	"repro/internal/extsort"
	"repro/internal/histogram"
	"repro/internal/mpart"
	"repro/internal/msel"
)

// Re-exported foundation types.
type (
	// Elem is the record type: an ordered Key and an Aux word that makes
	// records unique (and can carry a payload).
	Elem = emio.Elem
	// Config fixes the EM machine: M elements of memory, blocks of B
	// elements, M >= 2B.
	Config = emio.Config
	// Pipeline configures the asynchronous prefetch/write-behind physical-I/O
	// pipeline of file-backed systems (Config.Pipeline). It never changes
	// logical I/O counts.
	Pipeline = emio.Pipeline
	// Retry configures bounded retry of transient physical-I/O failures
	// (Config.Retry): attempts, exponential backoff, deterministic jitter.
	Retry = emio.Retry
	// RetryStats is a snapshot of the retry layer's counters
	// (System.RetryStats).
	RetryStats = emio.RetryStats
	// CorruptionError reports a block whose content fails CRC32C
	// verification (Config.Checksum), naming file, block, offset and both
	// sums. Match with errors.As.
	CorruptionError = emio.CorruptionError
	// TransientError reports a transfer that stayed transiently failing
	// after the retry budget (or with retry disabled). Match with errors.As.
	TransientError = emio.TransientError
	// FaultError attributes any other physical failure to a file, block and
	// backing offset. Match with errors.As.
	FaultError = emio.FaultError
	// CancelledError reports an operation abandoned by cooperative
	// cancellation (System.Cancel, a bound context, a signal trap), carrying
	// the cause. Match with errors.As, or errors.Is against ErrCancelled.
	CancelledError = emio.CancelledError
	// ResourceError reports a resource quota violation or exhaustion — the
	// disk-byte budget (Config.DiskBudget) rejecting an append, or a real
	// ENOSPC from the backing device — with live usage figures. Match with
	// errors.As, or errors.Is against ErrDiskBudget for quota rejections.
	ResourceError = emio.ResourceError
	// FileManifest is the durable description of a file's on-disk layout
	// used by checkpoint journals and resume adoption.
	FileManifest = emio.FileManifest
	// SortCheckpoint is the phase journal of a crash-safe sort job; see
	// OpenSortJob.
	SortCheckpoint = extsort.Checkpoint
	// Injector is a deterministic physical-fault schedule for resilience
	// testing; install with System.SetInjector.
	Injector = emio.Injector
	// InjectorStats counts what an Injector saw and did.
	InjectorStats = emio.InjectorStats
	// Stats is a snapshot of block-I/O counters.
	Stats = emio.Stats
	// File is a sequence of elements on the simulated disk.
	File = emio.File
	// Disk is the simulated disk itself: block store plus counters. Exposed
	// for the shard hook and advanced harness use.
	Disk = emio.Disk
	// Params carries (K, A, B): partition count and the admissible size
	// range [A, B] for the approximate problems.
	Params = core.Params
	// PartitionResult is a concatenated partitioning with its sizes.
	PartitionResult = core.PartitionResult
	// Variant names a parameter regime (right-grounded, left-grounded,
	// two-sided).
	Variant = core.Variant
	// Machine evaluates the paper's bound formulas for an (M, B) machine.
	Machine = bounds.Machine
	// HistogramBucket is one bucket of an equi-depth histogram.
	HistogramBucket = histogram.Bucket
	// Tracer collects a tree of phase spans with per-span I/O, memory-peak
	// and disk-footprint attribution. Attach one with System.SetTracer.
	Tracer = emio.Tracer
	// Span is one node of the trace tree: a named phase with counters.
	Span = emio.Span
	// MetricsRegistry holds live telemetry instruments (counters, gauges,
	// latency histograms). Attach one with System.SetMetrics; serve it with
	// metrics.Serve or scrape it with Registry.WritePrometheus.
	MetricsRegistry = metrics.Registry
	// MetricsSnapshot is a point-in-time copy of every metric on a registry.
	MetricsSnapshot = metrics.Snapshot
	// LogConfig arms the structured event log (Config.Log): ring capacity,
	// level, JSON-lines path, extra handler.
	LogConfig = emio.LogConfig
	// EventLog is the span-aware structured log sink; attach one with
	// System.EnableLog or Config.Log.
	EventLog = emio.EventLog
	// LogEvent is one record of the event log's in-memory ring.
	LogEvent = emio.Event
	// ShardError wraps a failure of the parallel engine with the shard task
	// index that raised it; errors.As/Is reach the cause. Match with
	// errors.As.
	ShardError = empar.ShardError
	// ShardReport describes the shard layout of the parallel engine's most
	// recent operation (System.ShardReport).
	ShardReport = empar.Report
)

// Re-exported variant constants.
const (
	RightGrounded = core.RightGrounded
	LeftGrounded  = core.LeftGrounded
	TwoSided      = core.TwoSided
)

// Re-exported error marks of the resilience layer: ErrTransient marks
// retryable physical failures; ErrInjected marks faults produced by an
// Injector. Both are matched with errors.Is.
var (
	ErrTransient = emio.ErrTransient
	ErrInjected  = emio.ErrInjected
	// ErrCancelled marks every CancelledError; errors.Is(err, ErrCancelled)
	// recognizes a cooperatively cancelled operation whatever the cause.
	ErrCancelled = emio.ErrCancelled
	// ErrDiskBudget marks ResourceErrors raised by the configured disk-byte
	// quota (as opposed to real device exhaustion).
	ErrDiskBudget = emio.ErrDiskBudget
)

// System is an external-memory machine instance: a simulated disk with I/O
// accounting, a memory-budget accountant armed at M, and the algorithm
// suite. A System is not safe for concurrent use (the EM model is
// sequential); with cfg.Workers > 0 the sorting-based operations fan out to
// worker goroutines internally, but every call still joins them before
// returning, so the caller-facing discipline is unchanged.
type System struct {
	ctx *emio.Ctx
	par *empar.Engine // parallel sharded engine; nil when cfg.Workers == 0
}

// New creates a System for the given machine configuration, with blocks held
// in host memory.
func New(cfg Config) (*System, error) {
	ctx, err := emio.NewCtx(cfg)
	if err != nil {
		return nil, err
	}
	s := &System{ctx: ctx}
	if err := s.armWorkers(cfg); err != nil {
		return nil, err
	}
	return s, nil
}

// armWorkers constructs the parallel engine when the configuration asks for
// worker goroutines.
func (s *System) armWorkers(cfg Config) error {
	if cfg.Workers == 0 {
		return nil
	}
	eng, err := empar.New(s.ctx, cfg.Workers)
	if err != nil {
		return err
	}
	s.par = eng
	return nil
}

// NewFileBacked creates a System whose simulated disk is backed by a real
// file at path (created or truncated): every counted block transfer is an
// actual positioned read or write. Call Close when done.
//
// Setting cfg.Pipeline.Enabled turns on the asynchronous prefetch/
// write-behind pipeline for the backing file: appends are written by a
// background worker through a bounded queue and sequential scans trigger
// coalesced read-ahead, overlapping physical I/O with computation. The
// pipeline affects wall-clock speed only — Stats, trace spans, fault-hook
// order and all outputs are bit-identical with it on or off.
func NewFileBacked(cfg Config, path string) (*System, error) {
	d, err := emio.NewFileBackedDiskPipeline(path, cfg.B, cfg.Pipeline)
	if err != nil {
		return nil, err
	}
	ctx, err := emio.NewCtxWithDisk(cfg, d)
	if err != nil {
		d.Close()
		return nil, err
	}
	s := &System{ctx: ctx}
	if err := s.armWorkers(cfg); err != nil {
		d.Close()
		return nil, err
	}
	return s, nil
}

// NewFileBackedResume creates a System over an EXISTING backing file at
// path, preserved rather than truncated, for crash recovery: the disk starts
// with an empty allocator, and the caller re-attaches surviving data by
// adopting journaled manifests (Disk.AdoptFile) before any new writes. Used
// by OpenSortJob with Resume set; most callers want that entry point rather
// than this one.
func NewFileBackedResume(cfg Config, path string) (*System, error) {
	d, err := emio.NewFileBackedDiskResume(path, cfg.B, cfg.Pipeline)
	if err != nil {
		return nil, err
	}
	ctx, err := emio.NewCtxWithDisk(cfg, d)
	if err != nil {
		d.Close()
		return nil, err
	}
	s := &System{ctx: ctx}
	if err := s.armWorkers(cfg); err != nil {
		d.Close()
		return nil, err
	}
	return s, nil
}

// Close releases backend resources (the backing file for file-backed
// systems; a no-op otherwise).
func (s *System) Close() error { return s.ctx.Disk().Close() }

// Cancel requests cooperative cancellation of whatever operation is running
// (or runs next) on this System, recording cause. The first block transfer
// to observe the flag — on the algorithm goroutine, a pipeline worker, a
// prefetcher or a shard worker — abandons the operation, which returns a
// *CancelledError wrapping cause within about one block-transfer latency.
// Safe to call from any goroutine, including signal handlers; the first
// cause wins and later calls are no-ops. The System stays cancelled (every
// subsequent operation fails immediately) until ClearCancel.
func (s *System) Cancel(cause error) { s.ctx.Disk().Cancel(cause) }

// Cancelled returns nil while the System is live, or the *CancelledError
// recorded by Cancel.
func (s *System) Cancelled() error { return s.ctx.Disk().Cancelled() }

// ClearCancel re-arms a cancelled System for further operations.
func (s *System) ClearCancel() { s.ctx.Disk().ClearCancel() }

// BindContext ties the System's cancellation to a context: when ctx is
// cancelled, System.Cancel fires with the context's cause. It returns a stop
// function that detaches the watcher (always call it, typically deferred —
// the per-operation Context variants like SortContext do this for you). A
// context that can never be cancelled binds nothing and costs nothing.
func (s *System) BindContext(ctx context.Context) (stop func()) {
	if ctx == nil || ctx.Done() == nil {
		return func() {}
	}
	// An already-dead context cancels synchronously: the first logical I/O
	// after binding must observe it, without racing the watcher's wakeup.
	if ctx.Err() != nil {
		s.Cancel(context.Cause(ctx))
		return func() {}
	}
	done := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			s.Cancel(context.Cause(ctx))
		case <-done:
		}
	}()
	var once sync.Once
	return func() { once.Do(func() { close(done) }) }
}

// SetDiskBudget arms (or with limit <= 0 disarms) the disk-byte quota at
// runtime; Config.DiskBudget does the same at construction. When armed,
// every block append is charged B·16 bytes against the quota and a rejected
// append fails the operation with a *ResourceError carrying live usage.
func (s *System) SetDiskBudget(limit int64) { s.ctx.Disk().SetDiskBudget(limit) }

// DiskBudget returns the configured disk-byte quota, 0 when unbounded.
func (s *System) DiskBudget() int64 { return s.ctx.Disk().DiskBudget() }

// DiskBytes returns the bytes currently charged against the disk budget
// (live blocks times B·16).
func (s *System) DiskBytes() int64 { return s.ctx.Disk().DiskBytes() }

// PeakDiskBytes returns the high-water mark of DiskBytes.
func (s *System) PeakDiskBytes() int64 { return s.ctx.Disk().PeakDiskBytes() }

// Ctx exposes the underlying context for advanced use (direct access to the
// internal packages).
func (s *System) Ctx() *emio.Ctx { return s.ctx }

// Config returns the machine configuration.
func (s *System) Config() Config { return s.ctx.Config() }

// Machine returns the bound calculator for this configuration.
func (s *System) Machine() Machine {
	return Machine{M: int64(s.ctx.M()), B: int64(s.ctx.B())}
}

// Stats returns the I/O counters.
func (s *System) Stats() Stats { return s.ctx.Disk().Stats() }

// ResetStats zeroes the I/O counters; call it after staging inputs so only
// the algorithms are measured.
func (s *System) ResetStats() { s.ctx.Disk().ResetStats() }

// Workers returns the configured worker-goroutine count (0 = sequential).
func (s *System) Workers() int { return s.ctx.Config().Workers }

// ShardReport describes the shard layout of the parallel engine's most
// recent operation: shard count, workers used, per-shard output bytes. The
// zero report is returned for sequential systems.
func (s *System) ShardReport() ShardReport {
	if s.par == nil {
		return ShardReport{}
	}
	return s.par.LastReport()
}

// SetShardHook installs a callback invoked for every shard sub-disk the
// parallel engine creates, before any worker touches it. The fault harness
// uses it to arm an injector on a single shard; it is a no-op on sequential
// systems.
func (s *System) SetShardHook(h func(shard int, d *Disk)) {
	if s.par != nil {
		s.par.SetShardHook(h)
	}
}

// PeakMemory returns the high-water mark of the memory accountant.
func (s *System) PeakMemory() int64 { return s.ctx.Mem().Peak() }

// LiveDiskBlocks returns the blocks currently held by unreleased files.
func (s *System) LiveDiskBlocks() int64 { return s.ctx.Disk().LiveBlocks() }

// PeakDiskBlocks returns the high-water mark of the disk footprint: the
// scratch space the algorithms really used. ResetPeakDisk lowers it to the
// current level so a single phase can be measured.
func (s *System) PeakDiskBlocks() int64 { return s.ctx.Disk().PeakLiveBlocks() }

// ResetPeakDisk lowers the disk-footprint high-water mark to current usage.
func (s *System) ResetPeakDisk() { s.ctx.Disk().ResetPeakLive() }

// BackingBytes returns the high-water byte size of the backing file for
// file-backed systems (released extents are reused, so this tracks the peak
// live footprint, not cumulative writes); 0 for in-memory systems.
func (s *System) BackingBytes() int64 { return s.ctx.Disk().BackingBytes() }

// PhysStats returns the cumulative physical transfer counts (positioned
// read/write syscalls on the backing file) for file-backed systems; zero for
// in-memory systems. Compare with Stats to see the pipeline's coalescing:
// logical counts are invariant, physical counts drop when it is on.
func (s *System) PhysStats() Stats { return s.ctx.Disk().PhysStats() }

// UringActive reports whether this system's backing store is issuing its
// physical transfers through an armed io_uring (Pipeline.Uring requested and
// the kernel probe passed). False for memory disks, non-Linux builds and
// kernels without io_uring — on those the same Pipeline config degrades
// silently to positioned read/write syscalls with no logical behavior change.
func (s *System) UringActive() bool { return s.ctx.Disk().UringActive() }

// UringSupported reports whether this kernel and platform can run the
// io_uring physical backend (probed once per process, like the O_DIRECT
// probe). When false, Pipeline.Uring is accepted but inert.
func UringSupported() bool { return emio.UringSupported() }

// DirectIOSupported reports whether files under dir accept O_DIRECT, by
// probing once per call. When false, Pipeline.Direct is accepted but inert.
func DirectIOSupported(dir string) bool { return emio.DirectIOSupported(dir) }

// RetryStats returns the retry layer's counters: transient attempts retried,
// transfers given up on, and total backoff slept. All zero unless Config.Retry
// is armed and transient faults actually occurred.
func (s *System) RetryStats() RetryStats { return s.ctx.Disk().RetryStats() }

// SetInjector installs (or, with nil, removes) a deterministic physical
// fault injector on the system's disk, for resilience testing. Install after
// staging inputs and before the algorithm runs.
func (s *System) SetInjector(inj *Injector) { s.ctx.Disk().SetInjector(inj) }

// NewInjector creates an idle fault injector with the given probabilistic
// seed; script it with FailRead/FailWrite or arm Probabilistic.
func NewInjector(seed uint64) *Injector { return emio.NewInjector(seed) }

// CorruptBlock flips one bit of the stored image of block i of f, modeling
// at-rest corruption. Harness-side like Stage: no I/O is charged and no
// fault hook fires. With Config.Checksum armed, the next read of the block
// fails with a *CorruptionError.
func (s *System) CorruptBlock(f *File, block, bit int) error {
	return s.ctx.Disk().CorruptBlock(f, block, bit)
}

// NewTracer creates a standalone phase tracer, for sharing one tracer across
// several Systems or inspecting spans programmatically.
func NewTracer() *Tracer { return emio.NewTracer() }

// SetTracer attaches (or, with nil, detaches) a phase tracer. While a tracer
// is attached, every algorithm call records a tree of phase spans with
// per-span block-I/O deltas, scoped memory and disk-footprint peaks, and
// scratch-file accounting. With no tracer attached the instrumentation is a
// nil-pointer fast path: no I/O, memory or randomness behavior changes.
func (s *System) SetTracer(t *Tracer) { s.ctx.SetTracer(t) }

// Tracer returns the attached tracer, or nil.
func (s *System) Tracer() *Tracer { return s.ctx.Tracer() }

// EnableTracing attaches a fresh tracer and returns it: shorthand for
// t := NewTracer(); s.SetTracer(t).
func (s *System) EnableTracing() *Tracer {
	t := emio.NewTracer()
	s.ctx.SetTracer(t)
	return t
}

// TraceReport renders the attached tracer's span tree as an indented
// human-readable table (one row per phase: I/Os, reads, writes, peak memory,
// peak disk blocks, scratch files). Empty when no tracer is attached.
func (s *System) TraceReport() string {
	t := s.ctx.Tracer()
	if t == nil {
		return ""
	}
	return t.Render()
}

// TraceJSON exports the attached tracer's span tree as JSON. Returns nil
// when no tracer is attached.
func (s *System) TraceJSON() ([]byte, error) {
	t := s.ctx.Tracer()
	if t == nil {
		return nil, nil
	}
	return t.JSON()
}

// NewMetricsRegistry creates an empty metrics registry, for sharing one
// scrape endpoint across several Systems (instrument registration is
// idempotent by name; counters then accumulate across systems).
func NewMetricsRegistry() *MetricsRegistry { return metrics.New() }

// SetMetrics attaches live telemetry instruments registered on reg to the
// system's I/O hot paths: logical and physical transfer counters with latency
// histograms, queue-depth / footprint / phase gauges, prefetch and
// extent-reuse counters (all under the empart_ prefix). Like the tracer,
// metrics are strictly observational — logical Stats, trace JSON and all
// outputs are bit-identical with metrics on or off (the metrics parity suite
// proves it). Enable before the algorithm runs; nil detaches.
func (s *System) SetMetrics(reg *MetricsRegistry) { s.ctx.Disk().EnableMetrics(reg) }

// EnableMetrics attaches a fresh registry and returns it: shorthand for
// reg := NewMetricsRegistry(); s.SetMetrics(reg).
func (s *System) EnableMetrics() *MetricsRegistry {
	reg := metrics.New()
	s.ctx.Disk().EnableMetrics(reg)
	return reg
}

// MetricsRegistry returns the attached registry, or nil when metrics are
// disabled.
func (s *System) MetricsRegistry() *MetricsRegistry {
	if m := s.ctx.Disk().Metrics(); m != nil {
		return m.Registry()
	}
	return nil
}

// Metrics captures a point-in-time snapshot of every metric on the attached
// registry. The zero Snapshot is returned when metrics are disabled.
func (s *System) Metrics() MetricsSnapshot {
	if m := s.ctx.Disk().Metrics(); m != nil {
		return m.Snapshot()
	}
	return MetricsSnapshot{}
}

// SetLogger attaches (or, with nil, detaches) a structured log sink. Every
// Disk, pipeline, retry and fault event is delivered to h as a log/slog
// record enriched with the active span's phase path, span seq and disk id.
// Strictly observational: outputs, Stats and trace JSON are bit-identical
// with logging on or off.
func (s *System) SetLogger(h slog.Handler) { s.ctx.Disk().SetLogHandler(h) }

// EnableLog attaches a fresh event log built from cfg and returns it. The
// returned log's ring can be inspected with Events; its JSON-lines file sink
// (cfg.Path) is closed by System.Close.
func (s *System) EnableLog(cfg LogConfig) (*EventLog, error) {
	el, err := emio.NewEventLog(cfg)
	if err != nil {
		return nil, err
	}
	s.ctx.Disk().AttachEventLog(el)
	return el, nil
}

// EventLog returns the attached event log, or nil when none was created
// through EnableLog or Config.Log.
func (s *System) EventLog() *EventLog { return s.ctx.Disk().EventLog() }

// LogEvents returns the attached event log's ring contents, oldest first
// (nil when logging is disabled).
func (s *System) LogEvents() []LogEvent {
	if el := s.ctx.Disk().EventLog(); el != nil {
		return el.Events()
	}
	return nil
}

// TraceOTLP exports the attached tracer's span tree as an OTLP/JSON
// ExportTraceServiceRequest document ready for any OTLP collector or for
// Jaeger/Perfetto import. Returns nil when no tracer is attached.
func (s *System) TraceOTLP(service string) ([]byte, error) {
	t := s.ctx.Tracer()
	if t == nil {
		return nil, nil
	}
	return t.OTLP(service)
}

// MetricsOTLP exports a snapshot of the attached registry as an OTLP/JSON
// ExportMetricsServiceRequest document, exemplar span seqs included. Returns
// nil when metrics are disabled.
func (s *System) MetricsOTLP(service string) ([]byte, error) {
	reg := s.MetricsRegistry()
	if reg == nil {
		return nil, nil
	}
	return reg.OTLP(service, time.Now())
}

// LiveFiles returns the names of all files currently live on the simulated
// disk (staged inputs and scratch files alike), sorted.
func (s *System) LiveFiles() []string { return s.ctx.Disk().LiveFiles() }

// LiveScratchFiles returns the names of live algorithm-created scratch files,
// sorted: nonempty after all outputs are released indicates a leak.
func (s *System) LiveScratchFiles() []string { return s.ctx.Disk().LiveScratchFiles() }

// Stage loads elements onto the disk as a new file without charging I/Os:
// the harness-side input channel. Algorithms producing files charge normally.
func (s *System) Stage(elems []Elem) *File {
	return emio.BuildFile(s.ctx.Disk(), "staged", elems)
}

// Read copies a file's contents back to host memory without charging I/Os:
// the harness-side output channel.
func (s *System) Read(f *File) []Elem { return f.Snapshot() }

// guard runs one algorithm operation with failure teardown: scratch files
// the operation created are released when it errors out, so a cancelled or
// quota-rejected job leaves no dangling disk footprint (the leak detector
// stays clean, and a long-lived process can keep using the System). Outputs
// only escape through the success path, so nothing reachable is released.
func guard[T any](s *System, fn func() (T, error)) (T, error) {
	snap := s.ctx.Disk().ScratchSnapshot()
	out, err := fn()
	if err != nil {
		s.ctx.Disk().ReleaseScratchSince(snap)
		var zero T
		return zero, err
	}
	return out, nil
}

// Sort external-merge-sorts f into a new file:
// O((N/B) lg_{M/B}(N/B)) I/Os. The baseline against which everything else is
// compared. With Workers > 0 the parallel engine runs it over sharded
// sub-disks; the output is byte-identical either way (the sorted sequence is
// unique) and the logical accounting is identical across worker counts.
func (s *System) Sort(f *File) (*File, error) {
	return guard(s, func() (*File, error) {
		if s.par != nil {
			return s.par.Sort(f)
		}
		return extsort.Sort(s.ctx, f)
	})
}

// SortContext is Sort bound to a context: cancelling ctx cancels the running
// sort, which returns a *CancelledError wrapping the context's cause. Every
// algorithm method has such a variant; they are shorthand for
// defer s.BindContext(ctx)() around the plain call.
func (s *System) SortContext(ctx context.Context, f *File) (*File, error) {
	defer s.BindContext(ctx)()
	return s.Sort(f)
}

// DistributionSort sorts f by Aggarwal-Vitter distribution (splitter-based
// scattering) instead of merging: the same Θ((N/B) lg_{M/B}(N/B)) bound,
// built on the paper's approximate-splitter machinery. With Workers > 0 it
// routes through the parallel engine (see internal/distsort's package doc).
func (s *System) DistributionSort(f *File) (*File, error) {
	return guard(s, func() (*File, error) {
		if s.par != nil {
			return s.par.Sort(f)
		}
		return distsort.Sort(s.ctx, f)
	})
}

// DistributionSortContext is DistributionSort bound to a context.
func (s *System) DistributionSortContext(ctx context.Context, f *File) (*File, error) {
	defer s.BindContext(ctx)()
	return s.DistributionSort(f)
}

// Select returns the element of the given 1-based rank in O(N/B) I/Os.
func (s *System) Select(f *File, rank int64) (Elem, error) {
	return guard(s, func() (Elem, error) {
		return emsel.Select(s.ctx, f, rank)
	})
}

// SelectContext is Select bound to a context.
func (s *System) SelectContext(ctx context.Context, f *File, rank int64) (Elem, error) {
	defer s.BindContext(ctx)()
	return s.Select(f, rank)
}

// MultiSelect returns the elements of the given nondecreasing ranks, in rank
// order, in O((N/B) lg_{M/B}(K/B)) I/Os (Theorem 4).
func (s *System) MultiSelect(f *File, ranks []int64) (*File, error) {
	return guard(s, func() (*File, error) {
		return msel.Select(s.ctx, f, ranks)
	})
}

// MultiSelectContext is MultiSelect bound to a context.
func (s *System) MultiSelectContext(ctx context.Context, f *File, ranks []int64) (*File, error) {
	defer s.BindContext(ctx)()
	return s.MultiSelect(f, ranks)
}

// MultiPartition divides f into partitions of the prescribed sizes
// (concatenated output) in O((N/B) lg_{M/B} K) I/Os: the Aggarwal-Vitter
// algorithm, and the baseline Theorem 4 separates multi-selection from.
func (s *System) MultiPartition(f *File, sizes []int64) (*File, error) {
	return guard(s, func() (*File, error) {
		if s.par != nil {
			return s.par.MultiPartition(f, sizes)
		}
		return mpart.Partition(s.ctx, f, sizes)
	})
}

// MultiPartitionContext is MultiPartition bound to a context.
func (s *System) MultiPartitionContext(ctx context.Context, f *File, sizes []int64) (*File, error) {
	defer s.BindContext(ctx)()
	return s.MultiPartition(f, sizes)
}

// Splitters solves approximate K-splitters (Theorem 5): K-1 elements of f
// whose induced buckets all have sizes in [p.A, p.B].
func (s *System) Splitters(f *File, p Params) (*File, error) {
	return guard(s, func() (*File, error) {
		if s.par != nil {
			return s.par.Splitters(f, p)
		}
		return core.Splitters(s.ctx, f, p)
	})
}

// SplittersContext is Splitters bound to a context.
func (s *System) SplittersContext(ctx context.Context, f *File, p Params) (*File, error) {
	defer s.BindContext(ctx)()
	return s.Splitters(f, p)
}

// Partition solves approximate K-partitioning (Theorem 6): K order-respecting
// partitions with sizes in [p.A, p.B], concatenated.
func (s *System) Partition(f *File, p Params) (*PartitionResult, error) {
	return guard(s, func() (*PartitionResult, error) {
		if s.par != nil {
			return s.par.Partition(f, p)
		}
		return core.Partition(s.ctx, f, p)
	})
}

// PartitionContext is Partition bound to a context.
func (s *System) PartitionContext(ctx context.Context, f *File, p Params) (*PartitionResult, error) {
	defer s.BindContext(ctx)()
	return s.Partition(f, p)
}

// PrecisePartition performs exact b-sized partitioning via the §3 reduction
// (approximate partitioning plus an O(N/B) re-chunking pass).
func (s *System) PrecisePartition(f *File, b int64) (*File, error) {
	return guard(s, func() (*File, error) {
		return core.PrecisePartitionViaApprox(s.ctx, f, b)
	})
}

// PrecisePartitionContext is PrecisePartition bound to a context.
func (s *System) PrecisePartitionContext(ctx context.Context, f *File, b int64) (*File, error) {
	defer s.BindContext(ctx)()
	return s.PrecisePartition(f, b)
}

// EquiDepthHistogram builds a K-bucket equi-depth histogram with asymmetric
// relative depth slack (lo below, hi above the ideal N/K); see package
// internal/histogram.
func (s *System) EquiDepthHistogram(f *File, k int, lo, hi float64) ([]HistogramBucket, error) {
	return guard(s, func() ([]HistogramBucket, error) {
		return histogram.EquiDepth(s.ctx, f, k, lo, hi)
	})
}

// EquiDepthHistogramContext is EquiDepthHistogram bound to a context.
func (s *System) EquiDepthHistogramContext(ctx context.Context, f *File, k int, lo, hi float64) ([]HistogramBucket, error) {
	defer s.BindContext(ctx)()
	return s.EquiDepthHistogram(f, k, lo, hi)
}
