// Package inmem provides the in-memory comparison-based building blocks used
// at the base of every external-memory recursion in this repository: sorting,
// deterministic linear-time selection (the median-of-medians algorithm of
// Blum, Floyd, Pratt, Rivest and Tarjan, reference [3] of the paper), and
// multi-selection of several ranks at once.
//
// All routines order elements by the total order emio.Less (Key, then Aux)
// and operate on slices the caller has already charged to the memory budget.
// CPU time is free in the EM model, but these are the standard O(n) / O(n lg
// n) / O(n lg k) algorithms anyway, so benches run at realistic sizes.
package inmem

import (
	"fmt"
	"slices"

	"repro/internal/emio"
)

// Sort sorts s in place by (Key, Aux). slices.SortFunc (pattern-defeating
// quicksort on a concrete comparator) is markedly faster than a reflective
// sort.Slice, which matters for run formation: on a single core the in-memory
// sort of each run is serial work that caps the parallel engine's speedup.
func Sort(s []emio.Elem) {
	slices.SortFunc(s, emio.Compare)
}

// IsSorted reports whether s is nondecreasing by (Key, Aux).
func IsSorted(s []emio.Elem) bool {
	for i := 1; i < len(s); i++ {
		if emio.Less(s[i], s[i-1]) {
			return false
		}
	}
	return true
}

// Select returns the element of rank k in s (1-based: k=1 is the smallest),
// reordering s in the process. It runs in worst-case linear time via
// median-of-medians pivoting. It panics if k is out of [1, len(s)]; that is a
// caller bug, never a data-dependent condition.
func Select(s []emio.Elem, k int) emio.Elem {
	if k < 1 || k > len(s) {
		panic(fmt.Sprintf("inmem.Select: rank %d out of [1,%d]", k, len(s)))
	}
	lo, hi := 0, len(s) // select within s[lo:hi]
	k--                 // to 0-based index
	for {
		n := hi - lo
		if n <= 5 {
			insertionSort(s[lo:hi])
			return s[lo+k]
		}
		pivot := medianOfMedians(s[lo:hi])
		lt, eq := partition3(s[lo:hi], pivot)
		switch {
		case k < lt:
			hi = lo + lt
		case k < lt+eq:
			return pivot
		default:
			lo, k = lo+lt+eq, k-lt-eq
		}
	}
}

// Median returns the lower median of s (rank ceil(n/2)).
func Median(s []emio.Elem) emio.Elem {
	return Select(s, (len(s)+1)/2)
}

// MedianOfFive returns the lower median of a group of at most five elements
// without allocating; it is the workhorse of the subgroup phase of the
// L-intermixed selection algorithm (paper §4.1). The slice is reordered.
func MedianOfFive(s []emio.Elem) emio.Elem {
	if len(s) == 0 || len(s) > 5 {
		panic(fmt.Sprintf("inmem.MedianOfFive: group size %d", len(s)))
	}
	insertionSort(s)
	return s[(len(s)-1)/2]
}

// MultiSelect returns the elements of the given 1-based ranks in s, in the
// same order as ranks. Ranks need not be sorted or distinct. s is reordered.
// The running time is O(n lg k) by recursing on the middle requested rank.
func MultiSelect(s []emio.Elem, ranks []int) []emio.Elem {
	for _, r := range ranks {
		if r < 1 || r > len(s) {
			panic(fmt.Sprintf("inmem.MultiSelect: rank %d out of [1,%d]", r, len(s)))
		}
	}
	out := make([]emio.Elem, len(ranks))
	// Order the rank requests, keeping their output positions.
	idx := make([]int, len(ranks))
	for i := range idx {
		idx[i] = i
	}
	slices.SortFunc(idx, func(a, b int) int { return ranks[a] - ranks[b] })
	multiSelect(s, 0, ranks, idx, out)
	return out
}

// multiSelect answers the requests idx (sorted by rank) against the subarray
// s, whose elements occupy global ranks base+1 .. base+len(s).
func multiSelect(s []emio.Elem, base int, ranks []int, idx []int, out []emio.Elem) {
	if len(idx) == 0 {
		return
	}
	mid := len(idx) / 2
	r := ranks[idx[mid]] - base // rank of the middle request within s
	e := Select(s, r)
	// Answer every request with this exact rank (duplicates collapse here).
	lo, hi := mid, mid+1
	for lo > 0 && ranks[idx[lo-1]] == ranks[idx[mid]] {
		lo--
	}
	for hi < len(idx) && ranks[idx[hi]] == ranks[idx[mid]] {
		hi++
	}
	for _, i := range idx[lo:hi] {
		out[i] = e
	}
	// Select left s partitioned around rank r: s[:r] holds the r smallest.
	multiSelect(s[:r], base, ranks, idx[:lo], out)
	multiSelect(s[r:], base+r, ranks, idx[hi:], out)
}

// Rank returns the number of elements of s that are <= e in the total order.
func Rank(s []emio.Elem, e emio.Elem) int {
	n := 0
	for _, x := range s {
		if !emio.Less(e, x) {
			n++
		}
	}
	return n
}

// medianOfMedians returns a pivot guaranteed to have at least 3n/10-O(1)
// elements on each side: the classic BFPRT pivot.
func medianOfMedians(s []emio.Elem) emio.Elem {
	n := len(s)
	// Gather the median of each group of 5 into the prefix of s.
	m := 0
	for i := 0; i < n; i += 5 {
		g := s[i:min(i+5, n)]
		med := MedianOfFive(g)
		s[m], s[i+(len(g)-1)/2] = med, s[m]
		m++
	}
	if m == 1 {
		return s[0]
	}
	return Select(s[:m], (m+1)/2)
}

// partition3 three-way partitions s around pivot, returning the count of
// elements strictly less than the pivot and the count equal to it. With the
// (Key, Aux) total order on distinct records eq is normally 1, but the
// routine is correct for arbitrary duplicates.
func partition3(s []emio.Elem, pivot emio.Elem) (lt, eq int) {
	i, j, k := 0, 0, len(s) // invariant: s[:i] < p, s[i:j] == p, s[k:] > p
	for j < k {
		c := emio.Compare(s[j], pivot)
		switch {
		case c < 0:
			s[i], s[j] = s[j], s[i]
			i++
			j++
		case c > 0:
			k--
			s[j], s[k] = s[k], s[j]
		default:
			j++
		}
	}
	return i, j - i
}

func insertionSort(s []emio.Elem) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && emio.Less(s[j], s[j-1]); j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
