package inmem

import (
	"math/rand/v2"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/emio"
)

func randElems(n int, rng *rand.Rand) []emio.Elem {
	s := make([]emio.Elem, n)
	for i := range s {
		s[i] = emio.Elem{Key: rng.Int64N(int64(n) + 1), Aux: int64(i)}
	}
	return s
}

func sortedCopy(s []emio.Elem) []emio.Elem {
	c := append([]emio.Elem(nil), s...)
	sort.Slice(c, func(i, j int) bool { return emio.Less(c[i], c[j]) })
	return c
}

func TestSortAndIsSorted(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	s := randElems(500, rng)
	if IsSorted(s) {
		t.Skip("random input accidentally sorted") // practically impossible
	}
	Sort(s)
	if !IsSorted(s) {
		t.Fatal("Sort did not sort")
	}
}

func TestSelectAllRanksSmall(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 2))
	for _, n := range []int{1, 2, 3, 5, 6, 17, 100} {
		orig := randElems(n, rng)
		want := sortedCopy(orig)
		for k := 1; k <= n; k++ {
			s := append([]emio.Elem(nil), orig...)
			got := Select(s, k)
			if got != want[k-1] {
				t.Fatalf("n=%d Select(%d) = %v, want %v", n, k, got, want[k-1])
			}
		}
	}
}

func TestSelectDuplicateKeys(t *testing.T) {
	s := make([]emio.Elem, 50)
	for i := range s {
		s[i] = emio.Elem{Key: int64(i % 3), Aux: int64(i)}
	}
	want := sortedCopy(s)
	for k := 1; k <= len(s); k++ {
		c := append([]emio.Elem(nil), s...)
		if got := Select(c, k); got != want[k-1] {
			t.Fatalf("Select(%d) = %v, want %v", k, got, want[k-1])
		}
	}
}

func TestSelectAllEqualFullTies(t *testing.T) {
	// Fully identical records: any of them is a correct answer by value.
	s := make([]emio.Elem, 20)
	for i := range s {
		s[i] = emio.Elem{Key: 7, Aux: 7}
	}
	if got := Select(s, 10); got != (emio.Elem{Key: 7, Aux: 7}) {
		t.Fatalf("Select on ties = %v", got)
	}
}

func TestSelectPanicsOutOfRange(t *testing.T) {
	for _, k := range []int{0, -1, 4} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Select(k=%d) did not panic", k)
				}
			}()
			Select(make([]emio.Elem, 3), k)
		}()
	}
}

func TestMedian(t *testing.T) {
	s := []emio.Elem{{Key: 5}, {Key: 1}, {Key: 9}, {Key: 3}, {Key: 7}}
	if got := Median(s); got.Key != 5 {
		t.Errorf("Median = %v", got)
	}
	s4 := []emio.Elem{{Key: 4}, {Key: 2}, {Key: 8}, {Key: 6}}
	if got := Median(s4); got.Key != 4 { // lower median of {2,4,6,8}
		t.Errorf("lower median = %v", got)
	}
}

func TestMedianOfFive(t *testing.T) {
	cases := []struct {
		keys []int64
		want int64
	}{
		{[]int64{1}, 1},
		{[]int64{2, 1}, 1},
		{[]int64{3, 1, 2}, 2},
		{[]int64{4, 1, 3, 2}, 2},
		{[]int64{5, 4, 3, 2, 1}, 3},
		{[]int64{1, 1, 1, 1, 1}, 1},
	}
	for _, c := range cases {
		s := make([]emio.Elem, len(c.keys))
		for i, k := range c.keys {
			s[i] = emio.Elem{Key: k, Aux: k}
		}
		if got := MedianOfFive(s); got.Key != c.want {
			t.Errorf("MedianOfFive(%v) = %v, want key %d", c.keys, got, c.want)
		}
	}
}

func TestMedianOfFivePanics(t *testing.T) {
	for _, n := range []int{0, 6} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("MedianOfFive(len=%d) did not panic", n)
				}
			}()
			MedianOfFive(make([]emio.Elem, n))
		}()
	}
}

func TestMultiSelect(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 3))
	orig := randElems(300, rng)
	want := sortedCopy(orig)
	ranks := []int{1, 300, 150, 150, 7, 299, 42} // unsorted, with duplicates
	s := append([]emio.Elem(nil), orig...)
	got := MultiSelect(s, ranks)
	for i, r := range ranks {
		if got[i] != want[r-1] {
			t.Errorf("MultiSelect rank %d = %v, want %v", r, got[i], want[r-1])
		}
	}
}

func TestMultiSelectEmptyRanks(t *testing.T) {
	s := randElems(10, rand.New(rand.NewPCG(4, 4)))
	if got := MultiSelect(s, nil); len(got) != 0 {
		t.Errorf("MultiSelect(nil ranks) = %v", got)
	}
}

func TestMultiSelectAllRanks(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 5))
	orig := randElems(64, rng)
	want := sortedCopy(orig)
	ranks := make([]int, 64)
	for i := range ranks {
		ranks[i] = i + 1
	}
	got := MultiSelect(append([]emio.Elem(nil), orig...), ranks)
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("full multiselect differs at %d", i)
		}
	}
}

func TestRank(t *testing.T) {
	s := []emio.Elem{{Key: 1, Aux: 0}, {Key: 3, Aux: 1}, {Key: 3, Aux: 2}, {Key: 5, Aux: 3}}
	cases := []struct {
		e    emio.Elem
		want int
	}{
		{emio.Elem{Key: 0, Aux: 0}, 0},
		{emio.Elem{Key: 1, Aux: 0}, 1},
		{emio.Elem{Key: 3, Aux: 1}, 2},
		{emio.Elem{Key: 3, Aux: 99}, 3},
		{emio.Elem{Key: 9, Aux: 0}, 4},
	}
	for _, c := range cases {
		if got := Rank(s, c.e); got != c.want {
			t.Errorf("Rank(%v) = %d, want %d", c.e, got, c.want)
		}
	}
}

func TestSelectAgainstSortProperty(t *testing.T) {
	prop := func(keys []int64, kraw uint) bool {
		if len(keys) == 0 {
			return true
		}
		s := make([]emio.Elem, len(keys))
		for i, k := range keys {
			s[i] = emio.Elem{Key: k, Aux: int64(i)}
		}
		k := int(kraw%uint(len(s))) + 1
		want := sortedCopy(s)[k-1]
		return Select(s, k) == want
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestMultiSelectProperty(t *testing.T) {
	prop := func(keys []int64, rraw []uint) bool {
		if len(keys) == 0 {
			return true
		}
		s := make([]emio.Elem, len(keys))
		for i, k := range keys {
			s[i] = emio.Elem{Key: k, Aux: int64(i)}
		}
		ranks := make([]int, len(rraw))
		for i, r := range rraw {
			ranks[i] = int(r%uint(len(s))) + 1
		}
		want := sortedCopy(s)
		got := MultiSelect(s, ranks)
		for i, r := range ranks {
			if got[i] != want[r-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPartition3Invariants(t *testing.T) {
	rng := rand.New(rand.NewPCG(6, 6))
	for trial := 0; trial < 50; trial++ {
		s := randElems(100, rng)
		pivot := s[rng.IntN(len(s))]
		lt, eq := partition3(s, pivot)
		for i, e := range s {
			c := emio.Compare(e, pivot)
			switch {
			case i < lt && c >= 0:
				t.Fatalf("trial %d: s[%d]=%v not < pivot %v", trial, i, e, pivot)
			case i >= lt && i < lt+eq && c != 0:
				t.Fatalf("trial %d: s[%d]=%v not == pivot %v", trial, i, e, pivot)
			case i >= lt+eq && c <= 0:
				t.Fatalf("trial %d: s[%d]=%v not > pivot %v", trial, i, e, pivot)
			}
		}
	}
}

func BenchmarkSelect(b *testing.B) {
	rng := rand.New(rand.NewPCG(7, 7))
	s := randElems(1<<16, rng)
	tmp := make([]emio.Elem, len(s))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(tmp, s)
		Select(tmp, len(tmp)/2)
	}
}
