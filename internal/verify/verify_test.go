package verify

import (
	"strings"
	"testing"

	"repro/internal/emio"
)

func seq(keys ...int64) []emio.Elem {
	s := make([]emio.Elem, len(keys))
	for i, k := range keys {
		s[i] = emio.Elem{Key: k, Aux: int64(i)}
	}
	return s
}

func TestSameMultiset(t *testing.T) {
	a := seq(3, 1, 2)
	b := []emio.Elem{a[2], a[0], a[1]} // permutation
	if err := SameMultiset(b, a); err != nil {
		t.Errorf("permutation rejected: %v", err)
	}
	if err := SameMultiset(a[:2], a); err == nil {
		t.Error("length mismatch accepted")
	}
	c := append([]emio.Elem(nil), a...)
	c[0].Key = 99
	if err := SameMultiset(c, a); err == nil {
		t.Error("altered element accepted")
	}
}

func TestSplittersAcceptsValid(t *testing.T) {
	in := seq(10, 20, 30, 40, 50, 60)
	sp := []emio.Elem{in[1], in[3]} // keys 20, 40 -> buckets 2,2,2
	sizes, err := Splitters(in, sp, 3, 1, 3)
	if err != nil {
		t.Fatalf("valid splitters rejected: %v", err)
	}
	for i, s := range sizes {
		if s != 2 {
			t.Errorf("bucket %d = %d, want 2", i, s)
		}
	}
}

func TestSplittersRejections(t *testing.T) {
	in := seq(10, 20, 30, 40, 50, 60)
	cases := []struct {
		name    string
		sp      []emio.Elem
		k, a, b int64
		substr  string
	}{
		{"wrong count", []emio.Elem{in[1]}, 3, 0, 6, "want K-1"},
		{"duplicate", []emio.Elem{in[1], in[1]}, 3, 0, 6, "duplicate"},
		{"not member", []emio.Elem{in[1], {Key: 99, Aux: 99}}, 3, 0, 6, "not an input element"},
		{"bucket too small", []emio.Elem{in[0], in[1]}, 3, 2, 6, "outside"},
		{"bucket too big", []emio.Elem{in[0], in[1]}, 3, 0, 3, "outside"},
	}
	for _, c := range cases {
		if _, err := Splitters(in, c.sp, c.k, c.a, c.b); err == nil || !strings.Contains(err.Error(), c.substr) {
			t.Errorf("%s: err = %v, want contains %q", c.name, err, c.substr)
		}
	}
}

func TestPartitionAcceptsValid(t *testing.T) {
	in := seq(5, 3, 1, 6, 4, 2)
	data := seq(0) // rebuild: segments [1,2] [3,4] [5,6] in scrambled inner order
	data = []emio.Elem{
		{Key: 2, Aux: 5}, {Key: 1, Aux: 2},
		{Key: 4, Aux: 4}, {Key: 3, Aux: 1},
		{Key: 6, Aux: 3}, {Key: 5, Aux: 0},
	}
	if err := Partition(in, data, []int64{2, 2, 2}, 3, 1, 3); err != nil {
		t.Errorf("valid partition rejected: %v", err)
	}
}

func TestPartitionRejections(t *testing.T) {
	in := seq(1, 2, 3, 4)
	ordered := seq(1, 2, 3, 4)
	broken := seq(1, 3, 2, 4) // segment 1 max=3 > segment 2 min=2
	if err := Partition(in, broken, []int64{2, 2}, 2, 1, 4); err == nil {
		t.Error("order violation accepted")
	}
	if err := Partition(in, ordered, []int64{2, 2}, 3, 1, 4); err == nil {
		t.Error("wrong size count accepted")
	}
	if err := Partition(in, ordered, []int64{3, 1}, 2, 2, 4); err == nil {
		t.Error("undersized partition accepted")
	}
	if err := Partition(in, ordered, []int64{1, 3}, 2, 0, 2); err == nil {
		t.Error("oversized partition accepted")
	}
	if err := Partition(in, ordered[:3], []int64{2, 2}, 2, 1, 4); err == nil {
		t.Error("short data accepted")
	}
}

func TestOrderedSegmentsZeroSizes(t *testing.T) {
	data := seq(1, 2, 3, 4)
	if err := OrderedSegments(data, []int64{2, 0, 2, 0}); err != nil {
		t.Errorf("zero segments rejected: %v", err)
	}
	if err := OrderedSegments(data, []int64{2, 1}); err == nil {
		t.Error("uncovered tail accepted")
	}
}

func TestMultiSelect(t *testing.T) {
	in := seq(30, 10, 20)
	if err := MultiSelect(in, []int64{1, 3}, []emio.Elem{in[1], in[0]}); err != nil {
		t.Errorf("correct multiselect rejected: %v", err)
	}
	if err := MultiSelect(in, []int64{1}, []emio.Elem{in[0]}); err == nil {
		t.Error("wrong element accepted")
	}
	if err := MultiSelect(in, []int64{4}, []emio.Elem{in[0]}); err == nil {
		t.Error("out-of-range rank accepted")
	}
	if err := MultiSelect(in, []int64{1, 2}, []emio.Elem{in[1]}); err == nil {
		t.Error("result count mismatch accepted")
	}
}

func TestPrecisePartition(t *testing.T) {
	in := seq(4, 2, 3, 1, 5)
	good := []emio.Elem{
		{Key: 2, Aux: 1}, {Key: 1, Aux: 3}, // chunk 1: {1,2}
		{Key: 4, Aux: 0}, {Key: 3, Aux: 2}, // chunk 2: {3,4}
		{Key: 5, Aux: 4}, // final short chunk
	}
	if err := PrecisePartition(in, good, 2); err != nil {
		t.Errorf("valid precise partition rejected: %v", err)
	}
	bad := append([]emio.Elem(nil), good...)
	bad[1], bad[2] = bad[2], bad[1] // 4 leaks into chunk 1
	if err := PrecisePartition(in, bad, 2); err == nil {
		t.Error("cross-chunk violation accepted")
	}
}

func TestSorted(t *testing.T) {
	if err := Sorted(seq(1, 2, 2, 3)); err != nil {
		t.Errorf("sorted rejected: %v", err)
	}
	if err := Sorted(seq(1, 3, 2)); err == nil {
		t.Error("unsorted accepted")
	}
	dupAux := []emio.Elem{{Key: 2, Aux: 1}, {Key: 2, Aux: 0}}
	if err := Sorted(dupAux); err == nil {
		t.Error("Aux tie-break violation accepted")
	}
}
