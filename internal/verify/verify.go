// Package verify checks algorithm outputs against the problem definitions of
// the paper. It is harness-side code (tests, benchmarks, CLI tools): it works
// on host snapshots of files, uses unbounded host memory, and performs no
// counted I/O — the algorithms being verified never call into it.
package verify

import (
	"fmt"
	"sort"

	"repro/internal/emio"
)

func sortedCopy(s []emio.Elem) []emio.Elem {
	c := append([]emio.Elem(nil), s...)
	sort.Slice(c, func(i, j int) bool { return emio.Less(c[i], c[j]) })
	return c
}

// SameMultiset reports an error unless got and want hold exactly the same
// records (in any order).
func SameMultiset(got, want []emio.Elem) error {
	if len(got) != len(want) {
		return fmt.Errorf("verify: %d elements, want %d", len(got), len(want))
	}
	g, w := sortedCopy(got), sortedCopy(want)
	for i := range w {
		if g[i] != w[i] {
			return fmt.Errorf("verify: multisets differ at sorted position %d: %v vs %v", i, g[i], w[i])
		}
	}
	return nil
}

// Splitters checks the approximate K-splitters contract: the output holds
// exactly k-1 distinct elements of the input, and every bucket they induce
// (interval (s_{i-1}, s_i] of the total order) has size in [a, min(b, n)].
// It returns the bucket sizes in splitter order for further inspection.
func Splitters(input, splitters []emio.Elem, k, a, b int64) ([]int64, error) {
	n := int64(len(input))
	if int64(len(splitters)) != k-1 {
		return nil, fmt.Errorf("verify: %d splitters, want K-1 = %d", len(splitters), k-1)
	}
	sp := sortedCopy(splitters)
	for i := 1; i < len(sp); i++ {
		if sp[i] == sp[i-1] {
			return nil, fmt.Errorf("verify: duplicate splitter %v", sp[i])
		}
	}
	members := make(map[emio.Elem]bool, len(input))
	for _, e := range input {
		members[e] = true
	}
	for _, s := range sp {
		if !members[s] {
			return nil, fmt.Errorf("verify: splitter %v is not an input element", s)
		}
	}
	sizes := make([]int64, k)
	for _, e := range input {
		i := sort.Search(len(sp), func(j int) bool { return !emio.Less(sp[j], e) })
		sizes[i]++
	}
	bEff := b
	if bEff > n {
		bEff = n
	}
	for i, s := range sizes {
		if s < a || s > bEff {
			return sizes, fmt.Errorf("verify: bucket %d size %d outside [%d,%d]", i, s, a, bEff)
		}
	}
	return sizes, nil
}

// Partition checks the approximate K-partitioning contract on a concatenated
// output: same multiset as the input, k segments of the reported sizes each
// in [a, min(b, n)], sizes summing to n, and every element of a segment
// preceding every element of all later segments in the total order.
func Partition(input, data []emio.Elem, sizes []int64, k, a, b int64) error {
	n := int64(len(input))
	if int64(len(sizes)) != k {
		return fmt.Errorf("verify: %d sizes, want K = %d", len(sizes), k)
	}
	if err := SameMultiset(data, input); err != nil {
		return err
	}
	bEff := b
	if bEff > n {
		bEff = n
	}
	var sum int64
	for i, s := range sizes {
		if s < a || s > bEff {
			return fmt.Errorf("verify: partition %d size %d outside [%d,%d]", i, s, a, bEff)
		}
		sum += s
	}
	if sum != n {
		return fmt.Errorf("verify: sizes sum to %d, want %d", sum, n)
	}
	return OrderedSegments(data, sizes)
}

// OrderedSegments checks that consecutive segments of the given sizes respect
// the order: max of segment i < min of segment j for every i < j with both
// nonempty.
func OrderedSegments(data []emio.Elem, sizes []int64) error {
	off := int64(0)
	havePrev := false
	var prevMax emio.Elem
	for seg, sz := range sizes {
		if sz == 0 {
			continue
		}
		segMin, segMax := data[off], data[off]
		for _, e := range data[off : off+sz] {
			if emio.Less(e, segMin) {
				segMin = e
			}
			if emio.Less(segMax, e) {
				segMax = e
			}
		}
		if havePrev && !emio.Less(prevMax, segMin) {
			return fmt.Errorf("verify: segment %d min %v does not exceed previous max %v", seg, segMin, prevMax)
		}
		prevMax, havePrev = segMax, true
		off += sz
	}
	if off != int64(len(data)) {
		return fmt.Errorf("verify: segments cover %d of %d elements", off, len(data))
	}
	return nil
}

// MultiSelect checks that got[i] is the element of rank ranks[i] in the
// input.
func MultiSelect(input []emio.Elem, ranks []int64, got []emio.Elem) error {
	if len(got) != len(ranks) {
		return fmt.Errorf("verify: %d results for %d ranks", len(got), len(ranks))
	}
	want := sortedCopy(input)
	for i, r := range ranks {
		if r < 1 || r > int64(len(input)) {
			return fmt.Errorf("verify: rank %d out of range", r)
		}
		if got[i] != want[r-1] {
			return fmt.Errorf("verify: rank %d = %v, want %v", r, got[i], want[r-1])
		}
	}
	return nil
}

// PrecisePartition checks the §3 reduction output: the data is the input
// multiset cut into consecutive order-respecting chunks of size exactly b
// (the last possibly shorter).
func PrecisePartition(input, data []emio.Elem, b int64) error {
	if err := SameMultiset(data, input); err != nil {
		return err
	}
	var sizes []int64
	rest := int64(len(data))
	for rest > 0 {
		s := min(b, rest)
		sizes = append(sizes, s)
		rest -= s
	}
	return OrderedSegments(data, sizes)
}

// Sorted reports an error unless data is nondecreasing in the total order.
func Sorted(data []emio.Elem) error {
	for i := 1; i < len(data); i++ {
		if emio.Less(data[i], data[i-1]) {
			return fmt.Errorf("verify: order violated at %d: %v after %v", i, data[i], data[i-1])
		}
	}
	return nil
}
