package emio

import (
	"errors"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/emio/metrics"
)

// fastRetry is a retry policy with microsecond backoff, so fault tests spend
// their time on assertions rather than sleeping.
func fastRetry(attempts int) Retry {
	return Retry{MaxAttempts: attempts, BaseBackoff: time.Microsecond, MaxBackoff: 4 * time.Microsecond}
}

// resilienceBackends enumerates the backend matrix every resilience property
// is checked under: memory, synchronous file, and pipelined file.
type backendCase struct {
	name string
	pipe Pipeline
	mem  bool
}

func resilienceBackends() []backendCase {
	return []backendCase{
		{name: "mem", mem: true},
		{name: "file", pipe: Pipeline{}},
		{name: "file-pipeline", pipe: Pipeline{Enabled: true, QueueDepth: 4, PrefetchDepth: 4}},
	}
}

// newBackendCtx builds a Ctx on the given backend with the given resilience
// config applied; the disk is closed via t.Cleanup (errors ignored — fault
// tests may leave sticky state).
func newBackendCtx(t *testing.T, bc backendCase, cfg Config) *Ctx {
	t.Helper()
	if bc.mem {
		ctx, err := NewCtx(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return ctx
	}
	d, err := NewFileBackedDiskPipeline(filepath.Join(t.TempDir(), "resil.dat"), cfg.B, bc.pipe)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	ctx, err := NewCtxWithDisk(cfg, d)
	if err != nil {
		t.Fatal(err)
	}
	return ctx
}

func TestChecksumRoundTripClean(t *testing.T) {
	// With checksums armed and no corruption, every backend round-trips data
	// unchanged and error-free through both the harness and streaming paths.
	for _, bc := range resilienceBackends() {
		t.Run(bc.name, func(t *testing.T) {
			ctx := newBackendCtx(t, bc, Config{M: 64, B: 8, Checksum: true})
			in := seqElems(100) // 12 full blocks + a partial
			staged := BuildFile(ctx.Disk(), "staged", in)
			f, err := Copy(ctx, staged)
			if err != nil {
				t.Fatal(err)
			}
			r, err := NewReader(ctx, f)
			if err != nil {
				t.Fatal(err)
			}
			var got []Elem
			for {
				e, ok := r.Next()
				if !ok {
					break
				}
				got = append(got, e)
			}
			if err := r.Err(); err != nil {
				t.Fatalf("read with checksums on: %v", err)
			}
			if len(got) != len(in) {
				t.Fatalf("read %d of %d elements", len(got), len(in))
			}
			for i := range in {
				if got[i] != in[i] {
					t.Fatalf("element %d = %v, want %v", i, got[i], in[i])
				}
			}
		})
	}
}

func TestCorruptionDetectedEveryBackend(t *testing.T) {
	// A single flipped bit in any stored block must surface as a typed
	// *CorruptionError naming file, block and offset — never as silently
	// wrong data — on every backend.
	for _, bc := range resilienceBackends() {
		t.Run(bc.name, func(t *testing.T) {
			const blocks, b = 6, 8
			for _, blk := range []int{0, 3, blocks - 1} {
				ctx := newBackendCtx(t, bc, Config{M: 64, B: b, Checksum: true})
				in := seqElems(blocks * b)
				f := BuildFile(ctx.Disk(), "victim", in)
				bit := (blk*7 + 13) % (b * elemBytes * 8)
				if err := ctx.Disk().CorruptBlock(f, blk, bit); err != nil {
					t.Fatalf("CorruptBlock(%d, %d): %v", blk, bit, err)
				}
				buf := make([]Elem, b)
				_, err := f.ReadBlock(blk, buf)
				var ce *CorruptionError
				if !errors.As(err, &ce) {
					t.Fatalf("block %d bit %d: ReadBlock error = %v, want *CorruptionError", blk, bit, err)
				}
				if ce.File != "victim" || ce.Block != blk {
					t.Errorf("CorruptionError names %s block %d, want victim block %d", ce.File, ce.Block, blk)
				}
				if ce.Stored == ce.Computed {
					t.Errorf("CorruptionError sums equal (0x%08x): no mismatch recorded", ce.Stored)
				}
				if ce.Off != f.blockOff(blk) {
					t.Errorf("CorruptionError offset %d, want %d", ce.Off, f.blockOff(blk))
				}
				// Intact blocks still read fine.
				other := (blk + 1) % blocks
				if _, err := f.ReadBlock(other, buf); err != nil {
					t.Errorf("intact block %d after corruption of %d: %v", other, blk, err)
				}
			}
		})
	}
}

func TestCorruptionWithoutChecksumsGoesUndetected(t *testing.T) {
	// The negative control: with checksums off, the same flip reads back
	// without error (silently wrong) — which is exactly why Checksum exists.
	ctx := newBackendCtx(t, backendCase{mem: true}, Config{M: 64, B: 8})
	in := seqElems(16)
	f := BuildFile(ctx.Disk(), "quiet", in)
	if err := ctx.Disk().CorruptBlock(f, 1, 5); err != nil {
		t.Fatal(err)
	}
	buf := make([]Elem, 8)
	if _, err := f.ReadBlock(1, buf); err != nil {
		t.Fatalf("checksum-off read = %v, want silent success", err)
	}
	if buf[0] == in[8] {
		t.Fatal("corruption did not change the payload; test is vacuous")
	}
}

func TestRetryRecoversTransientFaults(t *testing.T) {
	// A seeded schedule of fail-twice-then-succeed faults completes under a
	// 4-attempt budget on every backend, with the retries visible in
	// RetryStats, and the output intact.
	for _, bc := range resilienceBackends() {
		t.Run(bc.name, func(t *testing.T) {
			ctx := newBackendCtx(t, bc, Config{M: 64, B: 8, Retry: fastRetry(4)})
			d := ctx.Disk()
			in := seqElems(64)
			staged := BuildFile(d, "in", in)
			inj := NewInjector(1)
			inj.FailWrite(0, 2)
			inj.FailRead(1, 2)
			d.SetInjector(inj)
			out, err := Copy(ctx, staged)
			if err != nil {
				t.Fatalf("copy under transient faults: %v", err)
			}
			if err := out.Sync(); err != nil {
				t.Fatal(err)
			}
			d.SetInjector(nil) // Snapshot below must not consume schedule slots
			got := out.Snapshot()
			for i := range in {
				if got[i] != in[i] {
					t.Fatalf("element %d = %v, want %v", i, got[i], in[i])
				}
			}
			rs := d.RetryStats()
			if rs.Retries != 4 {
				t.Errorf("RetryStats.Retries = %d, want 4 (2 write + 2 read)", rs.Retries)
			}
			if rs.Giveups != 0 {
				t.Errorf("RetryStats.Giveups = %d, want 0", rs.Giveups)
			}
			if rs.BackoffNS <= 0 {
				t.Errorf("RetryStats.BackoffNS = %d, want > 0", rs.BackoffNS)
			}
			if st := inj.Stats(); st.Transient != 4 {
				t.Errorf("injector transient count = %d, want 4", st.Transient)
			}
		})
	}
}

func TestRetryDisabledSurfacesTransientError(t *testing.T) {
	// The same transient schedule with retry disabled must fail with a typed
	// *TransientError (Attempts == 1) wrapping both marks.
	for _, bc := range resilienceBackends() {
		t.Run(bc.name, func(t *testing.T) {
			ctx := newBackendCtx(t, bc, Config{M: 64, B: 8})
			d := ctx.Disk()
			staged := BuildFile(d, "in", seqElems(64))
			inj := NewInjector(1)
			inj.FailWrite(0, 2)
			d.SetInjector(inj)
			_, err := Copy(ctx, staged)
			if err == nil {
				// Pipelined writes may park the failure as sticky state
				// until the next sync point.
				err = d.Close()
			}
			var te *TransientError
			if !errors.As(err, &te) {
				t.Fatalf("error = %v, want *TransientError", err)
			}
			if te.Attempts != 1 {
				t.Errorf("Attempts = %d, want 1 with retry disabled", te.Attempts)
			}
			if te.Op != "write" {
				t.Errorf("Op = %q, want write", te.Op)
			}
			if !errors.Is(err, ErrInjected) || !errors.Is(err, ErrTransient) {
				t.Errorf("error %v does not wrap ErrInjected and ErrTransient", err)
			}
		})
	}
}

func TestRetryGiveupAfterBudget(t *testing.T) {
	// A fault outlasting the attempt budget surfaces as *TransientError with
	// the full attempt count, and counts as a giveup.
	ctx := newBackendCtx(t, backendCase{name: "file"}, Config{M: 64, B: 8, Retry: fastRetry(3)})
	d := ctx.Disk()
	f := BuildFile(d, "in", seqElems(16))
	inj := NewInjector(1)
	inj.FailRead(0, 99)
	d.SetInjector(inj)
	_, err := f.ReadBlock(0, make([]Elem, 8))
	var te *TransientError
	if !errors.As(err, &te) {
		t.Fatalf("error = %v, want *TransientError", err)
	}
	if te.Attempts != 3 {
		t.Errorf("Attempts = %d, want 3", te.Attempts)
	}
	rs := d.RetryStats()
	if rs.Giveups != 1 || rs.Retries != 2 {
		t.Errorf("RetryStats = %+v, want 2 retries and 1 giveup", rs)
	}
}

func TestPermanentFaultNotRetried(t *testing.T) {
	// A permanent (non-transient) fault must fail fast — no retry attempts —
	// and surface as a *FaultError wrapping ErrInjected.
	ctx := newBackendCtx(t, backendCase{name: "file"}, Config{M: 64, B: 8, Retry: fastRetry(5)})
	d := ctx.Disk()
	f := BuildFile(d, "in", seqElems(16))
	inj := NewInjector(1)
	inj.FailRead(0, -1)
	d.SetInjector(inj)
	_, err := f.ReadBlock(0, make([]Elem, 8))
	var fe *FaultError
	if !errors.As(err, &fe) {
		t.Fatalf("error = %v, want *FaultError", err)
	}
	var te *TransientError
	if errors.As(err, &te) {
		t.Fatalf("permanent fault produced a *TransientError: %v", err)
	}
	if !errors.Is(err, ErrInjected) {
		t.Errorf("error %v does not wrap ErrInjected", err)
	}
	if rs := d.RetryStats(); rs.Retries != 0 {
		t.Errorf("RetryStats.Retries = %d, want 0 for a permanent fault", rs.Retries)
	}
	if fe.File != "in" {
		t.Errorf("FaultError file = %q, want in", fe.File)
	}
}

func TestBackoffDeterministicJitter(t *testing.T) {
	r := newRetrier(Retry{MaxAttempts: 5, BaseBackoff: 100 * time.Microsecond, MaxBackoff: time.Millisecond, Seed: 42})
	r2 := newRetrier(Retry{MaxAttempts: 5, BaseBackoff: 100 * time.Microsecond, MaxBackoff: time.Millisecond, Seed: 42})
	for attempt := 1; attempt <= 4; attempt++ {
		for _, off := range []int64{0, 4096, 1 << 30} {
			a, b := r.backoffFor(off, attempt), r2.backoffFor(off, attempt)
			if a != b {
				t.Fatalf("backoff not deterministic: %v vs %v at off=%d attempt=%d", a, b, off, attempt)
			}
			base := 100 * time.Microsecond << (attempt - 1)
			if base > time.Millisecond {
				base = time.Millisecond
			}
			if a < base/2 || a >= base+base/2 {
				t.Fatalf("backoff %v outside [%v, %v) at off=%d attempt=%d", a, base/2, base+base/2, off, attempt)
			}
		}
	}
	// A different seed must produce a different jitter stream somewhere.
	r3 := newRetrier(Retry{MaxAttempts: 5, BaseBackoff: 100 * time.Microsecond, MaxBackoff: time.Millisecond, Seed: 43})
	same := true
	for attempt := 1; attempt <= 4 && same; attempt++ {
		if r.backoffFor(4096, attempt) != r3.backoffFor(4096, attempt) {
			same = false
		}
	}
	if same {
		t.Error("seeds 42 and 43 produced identical jitter streams")
	}
}

func TestRetryMetricsRecorded(t *testing.T) {
	// Retries, giveups and backoff must land in the metrics registry.
	ctx := newBackendCtx(t, backendCase{name: "file"}, Config{M: 64, B: 8, Retry: fastRetry(3)})
	d := ctx.Disk()
	reg := metrics.New()
	d.EnableMetrics(reg)
	f := BuildFile(d, "in", seqElems(16))
	inj := NewInjector(1)
	inj.FailRead(0, 1)  // recovered after one retry
	inj.FailRead(1, 99) // given up
	d.SetInjector(inj)
	buf := make([]Elem, 8)
	if _, err := f.ReadBlock(0, buf); err != nil {
		t.Fatalf("recoverable read: %v", err)
	}
	if _, err := f.ReadBlock(1, buf); err == nil {
		t.Fatal("exhausted read succeeded")
	}
	snap := reg.Snapshot()
	if got := snap.Counter("empart_io_retries_total"); got != 3 {
		t.Errorf("empart_io_retries_total = %d, want 3 (1 recovery + 2 burned)", got)
	}
	if got := snap.Counter("empart_io_retry_giveups_total"); got != 1 {
		t.Errorf("empart_io_retry_giveups_total = %d, want 1", got)
	}
}

func TestCorruptionMetricRecorded(t *testing.T) {
	ctx := newBackendCtx(t, backendCase{mem: true}, Config{M: 64, B: 8, Checksum: true})
	d := ctx.Disk()
	reg := metrics.New()
	d.EnableMetrics(reg)
	f := BuildFile(d, "in", seqElems(16))
	if err := d.CorruptBlock(f, 0, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := f.ReadBlock(0, make([]Elem, 8)); err == nil {
		t.Fatal("corrupted read succeeded")
	}
	if got := reg.Snapshot().Counter("empart_corruption_detected_total"); got != 1 {
		t.Errorf("empart_corruption_detected_total = %d, want 1", got)
	}
}

func TestTraceSpansCarryRetries(t *testing.T) {
	// Retried attempts during a span must appear on the span; clean spans
	// must omit the field from JSON so resilience-on traces stay
	// bit-identical to resilience-off ones.
	ctx := newBackendCtx(t, backendCase{name: "file"}, Config{M: 64, B: 8, Retry: fastRetry(4)})
	d := ctx.Disk()
	f := BuildFile(d, "in", seqElems(16))
	tr := NewTracer()
	ctx.SetTracer(tr)

	sp := ctx.StartSpan("clean-read")
	buf := make([]Elem, 8)
	if _, err := f.ReadBlock(0, buf); err != nil {
		t.Fatal(err)
	}
	sp.End()

	inj := NewInjector(1)
	inj.FailRead(0, 2) // the next physical read after the injector attaches
	d.SetInjector(inj)
	sp = ctx.StartSpan("faulty-read")
	if _, err := f.ReadBlock(1, buf); err != nil {
		t.Fatal(err)
	}
	sp.End()

	roots := tr.Roots()
	if len(roots) != 2 {
		t.Fatalf("got %d root spans, want 2", len(roots))
	}
	if roots[0].Retries != 0 {
		t.Errorf("clean span Retries = %d, want 0", roots[0].Retries)
	}
	if roots[1].Retries != 2 {
		t.Errorf("faulty span Retries = %d, want 2", roots[1].Retries)
	}
	js, err := tr.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(string(js), `"retries"`); n != 1 {
		t.Errorf("trace JSON mentions retries %d times, want 1 (omitted on the clean span):\n%s", n, js)
	}
}

func TestStickyErrorReportedOnce(t *testing.T) {
	// Regression test for double-reporting: an asynchronous write failure
	// surfaced once (at Sync, Writer.Close or the next op) must not come
	// back as a second distinct error at Disk.Close — but a failure nothing
	// delivered must still reach Disk.Close.
	newPipeCtx := func(t *testing.T) (*Ctx, *Disk, *Injector) {
		d, err := NewFileBackedDiskPipeline(
			filepath.Join(t.TempDir(), "sticky.dat"), 8, Pipeline{Enabled: true, QueueDepth: 2})
		if err != nil {
			t.Fatal(err)
		}
		ctx, err := NewCtxWithDisk(Config{M: 64, B: 8}, d)
		if err != nil {
			t.Fatal(err)
		}
		inj := NewInjector(1)
		inj.FailWrite(0, -1)
		d.SetInjector(inj)
		return ctx, d, inj
	}

	t.Run("delivered-then-close-nil", func(t *testing.T) {
		ctx, d, _ := newPipeCtx(t)
		f := ctx.Scratch("w")
		w, err := NewWriter(ctx, f)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range seqElems(32) {
			w.Append(e)
		}
		if err := w.Close(); !errors.Is(err, ErrInjected) {
			t.Fatalf("Writer.Close = %v, want the injected fault", err)
		}
		if err := d.Close(); err != nil {
			t.Fatalf("Disk.Close after delivery = %v, want nil", err)
		}
	})

	t.Run("undelivered-surfaces-at-close", func(t *testing.T) {
		ctx, d, _ := newPipeCtx(t)
		f := ctx.Scratch("w")
		if err := f.AppendBlock(seqElems(8)); err != nil {
			t.Fatal(err)
		}
		if err := f.AppendBlock(seqElems(8)); err != nil {
			t.Fatal(err)
		}
		// No sync, no read: the failure has not been delivered anywhere.
		if err := d.Close(); !errors.Is(err, ErrInjected) {
			t.Fatalf("Disk.Close = %v, want the undelivered injected fault", err)
		}
	})
}

func TestResilienceUnderDirectIO(t *testing.T) {
	// The resilience layer must compose with O_DIRECT: the retry wrapper and
	// checksum verification sit above the 512-byte padding, so injected
	// transient faults recover and bit-flips are detected the same way.
	dir := t.TempDir()
	if !DirectIOSupported(dir) {
		t.Skip("O_DIRECT unsupported on this filesystem")
	}
	for _, pipe := range []Pipeline{
		{Direct: true},
		{Enabled: true, Direct: true, QueueDepth: 4, PrefetchDepth: 4},
	} {
		name := "sync"
		if pipe.Enabled {
			name = "pipeline"
		}
		t.Run(name, func(t *testing.T) {
			d, err := NewFileBackedDiskPipeline(filepath.Join(dir, name+".dat"), 8, pipe)
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { d.Close() })
			ctx, err := NewCtxWithDisk(Config{M: 64, B: 8, Checksum: true, Retry: fastRetry(4)}, d)
			if err != nil {
				t.Fatal(err)
			}
			in := seqElems(64)
			staged := BuildFile(d, "in", in)
			inj := NewInjector(3)
			inj.FailRead(0, 2)
			inj.FailWrite(0, 2)
			d.SetInjector(inj)
			out, err := Copy(ctx, staged)
			if err != nil {
				t.Fatalf("copy under faults with O_DIRECT: %v", err)
			}
			if err := out.Sync(); err != nil {
				t.Fatal(err)
			}
			d.SetInjector(nil)
			got := out.Snapshot()
			for i := range in {
				if got[i] != in[i] {
					t.Fatalf("element %d = %v, want %v", i, got[i], in[i])
				}
			}
			if rs := d.RetryStats(); rs.Retries != 4 {
				t.Errorf("RetryStats.Retries = %d, want 4", rs.Retries)
			}
			if err := d.CorruptBlock(out, 3, 21); err != nil {
				t.Fatal(err)
			}
			_, err = out.ReadBlock(3, make([]Elem, 8))
			var ce *CorruptionError
			if !errors.As(err, &ce) {
				t.Fatalf("ReadBlock after bit flip = %v, want *CorruptionError", err)
			}
		})
	}
}

func TestPipelineFaultGoroutineCleanup(t *testing.T) {
	// Pipeline goroutines must all exit after a run aborted by injected
	// faults, whichever side (read or write) failed.
	for _, kind := range []string{"write", "read"} {
		t.Run(kind, func(t *testing.T) {
			base := NumGoroutines()
			d, err := NewFileBackedDiskPipeline(
				filepath.Join(t.TempDir(), "leak.dat"), 8, Pipeline{Enabled: true, QueueDepth: 2, PrefetchDepth: 4})
			if err != nil {
				t.Fatal(err)
			}
			ctx, err := NewCtxWithDisk(Config{M: 64, B: 8, Retry: fastRetry(2)}, d)
			if err != nil {
				t.Fatal(err)
			}
			staged := BuildFile(d, "in", seqElems(128))
			inj := NewInjector(7)
			if kind == "write" {
				inj.FailWrite(1, -1)
			} else {
				inj.FailRead(0, -1)
			}
			d.SetInjector(inj)
			if _, err := Copy(ctx, staged); err == nil {
				d.SetInjector(nil)
				if cerr := d.Close(); cerr == nil {
					t.Fatal("no error surfaced despite a permanent injected fault")
				}
			} else {
				d.Close()
			}
			RequireNoGoroutineLeaks(t, base)
		})
	}
}
