package emio

import (
	"errors"
	"testing"
	"testing/quick"
)

func mustCtx(t *testing.T, m, b int) *Ctx {
	t.Helper()
	ctx, err := NewCtx(Config{M: m, B: b})
	if err != nil {
		t.Fatalf("NewCtx(M=%d,B=%d): %v", m, b, err)
	}
	return ctx
}

func seqElems(n int) []Elem {
	s := make([]Elem, n)
	for i := range s {
		s[i] = Elem{Key: int64(i), Aux: int64(i)}
	}
	return s
}

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		m, b int
		ok   bool
	}{
		{2, 1, true},
		{8, 4, true},
		{1024, 32, true},
		{0, 0, false},
		{4, 0, false},
		{3, 2, false},  // M < 2B
		{7, 4, false},  // M < 2B
		{8, -1, false}, // negative B
	}
	for _, c := range cases {
		err := Config{M: c.m, B: c.b}.Validate()
		if (err == nil) != c.ok {
			t.Errorf("Validate(M=%d,B=%d) = %v, want ok=%v", c.m, c.b, err, c.ok)
		}
		if err != nil && !errors.Is(err, ErrBadConfig) {
			t.Errorf("Validate(M=%d,B=%d) error %v not wrapped in ErrBadConfig", c.m, c.b, err)
		}
	}
}

func TestConfigBlocks(t *testing.T) {
	c := Config{M: 64, B: 8}
	cases := []struct {
		n    int64
		want int64
	}{
		{0, 0}, {-3, 0}, {1, 1}, {7, 1}, {8, 1}, {9, 2}, {16, 2}, {17, 3},
	}
	for _, tc := range cases {
		if got := c.Blocks(tc.n); got != tc.want {
			t.Errorf("Blocks(%d) = %d, want %d", tc.n, got, tc.want)
		}
	}
}

func TestConfigFanOut(t *testing.T) {
	c := Config{M: 64, B: 8}
	if got := c.FanOut(0); got != 8 {
		t.Errorf("FanOut(0) = %d, want 8", got)
	}
	if got := c.FanOut(16); got != 6 {
		t.Errorf("FanOut(16) = %d, want 6", got)
	}
	if got := c.FanOut(1000); got != 1 {
		t.Errorf("FanOut(1000) = %d, want clamped 1", got)
	}
}

func TestElemOrder(t *testing.T) {
	a := Elem{Key: 1, Aux: 5}
	b := Elem{Key: 1, Aux: 9}
	c := Elem{Key: 2, Aux: 0}
	if !Less(a, b) || Less(b, a) {
		t.Error("tie-break on Aux broken")
	}
	if !Less(b, c) {
		t.Error("Key order broken")
	}
	if Compare(a, a) != 0 || Compare(a, b) != -1 || Compare(c, a) != +1 {
		t.Error("Compare inconsistent")
	}
	if Compare(Elem{0, 1}, Elem{0, 2}) != -1 || Compare(Elem{0, 2}, Elem{0, 1}) != 1 {
		t.Error("Compare Aux tie-break inconsistent")
	}
}

func TestPackAuxRoundTrip(t *testing.T) {
	cases := []struct{ g, s int64 }{
		{0, 0}, {1, 1}, {MaxGroup, MaxSeq}, {12345, 987654321},
	}
	for _, c := range cases {
		p := PackAux(c.g, c.s)
		if UnpackGroup(p) != c.g || UnpackSeq(p) != c.s {
			t.Errorf("pack(%d,%d) round-trips to (%d,%d)", c.g, c.s, UnpackGroup(p), UnpackSeq(p))
		}
	}
}

func TestPackAuxPreservesOrderWithinGroup(t *testing.T) {
	// Within one group, packed Aux must order by seq.
	if PackAux(7, 100) >= PackAux(7, 101) {
		t.Error("packed Aux does not increase with seq")
	}
	// Across groups, group dominates.
	if PackAux(1, MaxSeq) >= PackAux(2, 0) {
		t.Error("packed Aux does not order by group first")
	}
}

func TestPackAuxPanicsOutOfRange(t *testing.T) {
	for _, c := range []struct{ g, s int64 }{
		{-1, 0}, {MaxGroup + 1, 0}, {0, -1}, {0, MaxSeq + 1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("PackAux(%d,%d) did not panic", c.g, c.s)
				}
			}()
			PackAux(c.g, c.s)
		}()
	}
}

func TestWriterReaderRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 7, 8, 9, 63, 64, 65, 1000} {
		ctx := mustCtx(t, 64, 8)
		f := ctx.Scratch("rt")
		w, err := NewWriter(ctx, f)
		if err != nil {
			t.Fatal(err)
		}
		in := seqElems(n)
		for _, e := range in {
			w.Append(e)
		}
		if err := w.Close(); err != nil {
			t.Fatalf("n=%d: close: %v", n, err)
		}
		if f.Len() != int64(n) {
			t.Fatalf("n=%d: Len=%d", n, f.Len())
		}
		r, err := NewReader(ctx, f)
		if err != nil {
			t.Fatal(err)
		}
		for i, want := range in {
			got, ok := r.Next()
			if !ok || got != want {
				t.Fatalf("n=%d: elem %d = %v ok=%v, want %v", n, i, got, ok, want)
			}
		}
		if _, ok := r.Next(); ok {
			t.Fatalf("n=%d: read past end", n)
		}
		if r.Err() != nil {
			t.Fatalf("n=%d: clean EOF has Err %v", n, r.Err())
		}
		r.Close()
		if ctx.Mem().Used() != 0 {
			t.Fatalf("n=%d: leaked %d elements of memory", n, ctx.Mem().Used())
		}
	}
}

func TestScanIOCountExact(t *testing.T) {
	// Writing then reading n elements must cost exactly ceil(n/B) writes and
	// ceil(n/B) reads: the scan bound of the model, with no hidden I/Os.
	for _, n := range []int{1, 8, 9, 100, 256} {
		ctx := mustCtx(t, 64, 8)
		f := ctx.Scratch("scan")
		w, _ := NewWriter(ctx, f)
		for _, e := range seqElems(n) {
			w.Append(e)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		wantBlocks := int64((n + 7) / 8)
		if got := ctx.Disk().Stats(); got.Writes != wantBlocks || got.Reads != 0 {
			t.Fatalf("n=%d: after write stats=%v, want writes=%d reads=0", n, got, wantBlocks)
		}
		r, _ := NewReader(ctx, f)
		for {
			if _, ok := r.Next(); !ok {
				break
			}
		}
		r.Close()
		if got := ctx.Disk().Stats(); got.Reads != wantBlocks {
			t.Fatalf("n=%d: reads=%d, want %d", n, got.Reads, wantBlocks)
		}
	}
}

func TestEmptyFlushIsFree(t *testing.T) {
	ctx := mustCtx(t, 64, 8)
	f := ctx.Scratch("empty")
	w, _ := NewWriter(ctx, f)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if s := ctx.Disk().Stats(); s.Total() != 0 {
		t.Errorf("empty writer cost %v I/Os", s)
	}
	if f.Len() != 0 || f.NumBlocks() != 0 {
		t.Errorf("empty file has Len=%d blocks=%d", f.Len(), f.NumBlocks())
	}
}

func TestAppendAfterPartialBlockRejected(t *testing.T) {
	ctx := mustCtx(t, 64, 8)
	f := ctx.Scratch("seal")
	if err := f.AppendBlock(seqElems(3)); err != nil {
		t.Fatal(err)
	}
	err := f.AppendBlock(seqElems(8))
	if !errors.Is(err, ErrPartialBlock) {
		t.Errorf("append after partial block: %v, want ErrPartialBlock", err)
	}
}

func TestAppendOversizedBlockRejected(t *testing.T) {
	ctx := mustCtx(t, 64, 8)
	f := ctx.Scratch("big")
	err := f.AppendBlock(seqElems(9))
	if !errors.Is(err, ErrBlockSize) {
		t.Errorf("oversized block: %v, want ErrBlockSize", err)
	}
}

func TestReadBlockRange(t *testing.T) {
	ctx := mustCtx(t, 64, 8)
	f := BuildFile(ctx.Disk(), "r", seqElems(16))
	buf := make([]Elem, 8)
	if _, err := f.ReadBlock(-1, buf); !errors.Is(err, ErrBlockRange) {
		t.Errorf("block -1: %v", err)
	}
	if _, err := f.ReadBlock(2, buf); !errors.Is(err, ErrBlockRange) {
		t.Errorf("block 2 of 2: %v", err)
	}
	n, err := f.ReadBlock(1, buf)
	if err != nil || n != 8 || buf[0].Key != 8 {
		t.Errorf("block 1: n=%d err=%v first=%v", n, err, buf[0])
	}
}

func TestReleasedFileRejected(t *testing.T) {
	ctx := mustCtx(t, 64, 8)
	f := BuildFile(ctx.Disk(), "rel", seqElems(16))
	f.Release()
	if !f.Released() {
		t.Fatal("Released() false after Release")
	}
	if _, err := f.ReadBlock(0, make([]Elem, 8)); !errors.Is(err, ErrReleased) {
		t.Errorf("read released: %v", err)
	}
	if err := f.AppendBlock(seqElems(8)); !errors.Is(err, ErrReleased) {
		t.Errorf("append released: %v", err)
	}
	if _, err := f.BlockLen(0); !errors.Is(err, ErrReleased) {
		t.Errorf("BlockLen released: %v", err)
	}
}

func TestReadFaultInjection(t *testing.T) {
	ctx := mustCtx(t, 64, 8)
	f := BuildFile(ctx.Disk(), "flaky", seqElems(32))
	boom := errors.New("boom")
	ctx.Disk().SetReadFault(func(_ *File, block int) error {
		if block == 2 {
			return boom
		}
		return nil
	})
	r, _ := NewReader(ctx, f)
	var got int
	for {
		if _, ok := r.Next(); !ok {
			break
		}
		got++
	}
	if got != 16 {
		t.Errorf("read %d elements before fault, want 16", got)
	}
	if !errors.Is(r.Err(), boom) {
		t.Errorf("Err() = %v, want boom", r.Err())
	}
	// Sticky: further Next calls keep failing without more I/O.
	before := ctx.Disk().Stats()
	if _, ok := r.Next(); ok {
		t.Error("Next succeeded after sticky error")
	}
	if ctx.Disk().Stats() != before {
		t.Error("sticky error still performed I/O")
	}
	r.Close()
	ctx.Disk().SetReadFault(nil)
}

func TestWriteFaultInjection(t *testing.T) {
	ctx := mustCtx(t, 64, 8)
	f := ctx.Scratch("wf")
	boom := errors.New("disk full")
	ctx.Disk().SetWriteFault(func(_ *File, block int) error {
		if block == 1 {
			return boom
		}
		return nil
	})
	w, _ := NewWriter(ctx, f)
	for _, e := range seqElems(32) {
		w.Append(e)
	}
	if !errors.Is(w.Close(), boom) {
		t.Errorf("Close() = %v, want boom", w.Err())
	}
	ctx.Disk().SetWriteFault(nil)
	if ctx.Mem().Used() != 0 {
		t.Errorf("writer leaked %d memory after failure", ctx.Mem().Used())
	}
}

func TestFailedIOStillCounted(t *testing.T) {
	ctx := mustCtx(t, 64, 8)
	f := BuildFile(ctx.Disk(), "cnt", seqElems(8))
	ctx.Disk().SetReadFault(func(*File, int) error { return errors.New("x") })
	_, err := f.ReadBlock(0, make([]Elem, 8))
	if err == nil {
		t.Fatal("fault not injected")
	}
	if s := ctx.Disk().Stats(); s.Reads != 1 {
		t.Errorf("failed read not counted: %v", s)
	}
	ctx.Disk().SetReadFault(nil)
}

func TestAccountant(t *testing.T) {
	a := NewAccountant(10)
	if err := a.Charge(6); err != nil {
		t.Fatal(err)
	}
	if err := a.Charge(4); err != nil {
		t.Fatal(err)
	}
	if err := a.Charge(1); !errors.Is(err, ErrMemoryBudget) {
		t.Errorf("overdraft: %v", err)
	}
	if a.Used() != 10 || a.Peak() != 10 {
		t.Errorf("used=%d peak=%d", a.Used(), a.Peak())
	}
	a.Credit(6)
	if a.Used() != 4 || a.Peak() != 10 {
		t.Errorf("after credit used=%d peak=%d", a.Used(), a.Peak())
	}
	if err := a.Charge(5); err != nil {
		t.Errorf("charge within budget after credit: %v", err)
	}
	a.ResetPeak()
	if a.Peak() != 9 {
		t.Errorf("ResetPeak: peak=%d", a.Peak())
	}
}

func TestAccountantUnlimited(t *testing.T) {
	a := NewAccountant(0)
	if err := a.Charge(1 << 40); err != nil {
		t.Errorf("unlimited accountant rejected: %v", err)
	}
}

func TestAccountantUnderflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("underflow did not panic")
		}
	}()
	NewAccountant(10).Credit(1)
}

func TestCtxAllocFree(t *testing.T) {
	ctx := mustCtx(t, 16, 8)
	buf, err := ctx.AllocElems(8)
	if err != nil {
		t.Fatal(err)
	}
	if ctx.Mem().Used() != 8 {
		t.Errorf("used=%d after AllocElems(8)", ctx.Mem().Used())
	}
	ints, err := ctx.AllocInts(5) // charged ceil(5/2)=3 elements
	if err != nil {
		t.Fatal(err)
	}
	if ctx.Mem().Used() != 11 {
		t.Errorf("used=%d after AllocInts(5), want 11", ctx.Mem().Used())
	}
	if _, err := ctx.AllocElems(6); !errors.Is(err, ErrMemoryBudget) {
		t.Errorf("expected budget error, got %v", err)
	}
	ctx.FreeInts(ints)
	ctx.FreeElems(buf)
	if ctx.Mem().Used() != 0 {
		t.Errorf("leak: used=%d", ctx.Mem().Used())
	}
}

func TestCtxSeedDeterminism(t *testing.T) {
	a := mustCtx(t, 64, 8)
	b := mustCtx(t, 64, 8)
	for i := 0; i < 100; i++ {
		if a.Rng().Int64() != b.Rng().Int64() {
			t.Fatal("default-seeded contexts diverge")
		}
	}
	a.SetSeed(1, 2)
	b.SetSeed(1, 2)
	if a.Rng().Int64() != b.Rng().Int64() {
		t.Fatal("SetSeed not deterministic")
	}
}

func TestCopyAndLoadStore(t *testing.T) {
	ctx := mustCtx(t, 64, 8)
	in := seqElems(50)
	src := BuildFile(ctx.Disk(), "src", in)
	dup, err := Copy(ctx, src)
	if err != nil {
		t.Fatal(err)
	}
	got := dup.Snapshot()
	if len(got) != 50 {
		t.Fatalf("copy has %d elements", len(got))
	}
	for i := range got {
		if got[i] != in[i] {
			t.Fatalf("copy differs at %d", i)
		}
	}
	// LoadAll within budget.
	buf, err := LoadAll(ctx, src)
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) != 50 || buf[49] != in[49] {
		t.Fatal("LoadAll wrong contents")
	}
	ctx.FreeElems(buf)
	f2, err := StoreAll(ctx, "out", in[:13])
	if err != nil {
		t.Fatal(err)
	}
	if f2.Len() != 13 {
		t.Fatalf("StoreAll len=%d", f2.Len())
	}
	if ctx.Mem().Used() != 0 {
		t.Errorf("leak: used=%d", ctx.Mem().Used())
	}
}

func TestLoadAllRespectsBudget(t *testing.T) {
	ctx := mustCtx(t, 16, 8)
	src := BuildFile(ctx.Disk(), "big", seqElems(100))
	if _, err := LoadAll(ctx, src); !errors.Is(err, ErrMemoryBudget) {
		t.Errorf("LoadAll over budget: %v", err)
	}
	if ctx.Mem().Used() != 0 {
		t.Errorf("failed LoadAll leaked %d", ctx.Mem().Used())
	}
}

func TestBuildFileBlockLayout(t *testing.T) {
	ctx := mustCtx(t, 64, 8)
	f := BuildFile(ctx.Disk(), "layout", seqElems(20))
	if f.NumBlocks() != 3 {
		t.Fatalf("blocks=%d", f.NumBlocks())
	}
	for i, want := range []int{8, 8, 4} {
		n, err := f.BlockLen(i)
		if err != nil || n != want {
			t.Errorf("BlockLen(%d)=%d err=%v, want %d", i, n, err, want)
		}
	}
	if s := ctx.Disk().Stats(); s.Total() != 0 {
		t.Errorf("BuildFile charged %v", s)
	}
}

func TestReaderRemaining(t *testing.T) {
	ctx := mustCtx(t, 64, 8)
	f := BuildFile(ctx.Disk(), "rem", seqElems(20))
	r, _ := NewReader(ctx, f)
	defer r.Close()
	if got := r.Remaining(); got != 20 {
		t.Fatalf("initial Remaining=%d", got)
	}
	for i := 0; i < 5; i++ {
		r.Next()
	}
	if got := r.Remaining(); got != 15 {
		t.Fatalf("Remaining after 5 = %d", got)
	}
	for {
		if _, ok := r.Next(); !ok {
			break
		}
	}
	if got := r.Remaining(); got != 0 {
		t.Fatalf("Remaining at EOF = %d", got)
	}
}

func TestRoundTripProperty(t *testing.T) {
	cfg := Config{M: 64, B: 8}
	prop := func(keys []int64) bool {
		ctx, err := NewCtx(cfg)
		if err != nil {
			return false
		}
		in := make([]Elem, len(keys))
		for i, k := range keys {
			in[i] = Elem{Key: k, Aux: int64(i)}
		}
		f, err := StoreAll(ctx, "prop", in)
		if err != nil {
			return false
		}
		out := f.Snapshot()
		if len(out) != len(in) {
			return false
		}
		for i := range in {
			if out[i] != in[i] {
				return false
			}
		}
		return ctx.Mem().Used() == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestStatsArithmetic(t *testing.T) {
	a := Stats{Reads: 10, Writes: 4}
	b := Stats{Reads: 3, Writes: 1}
	if d := a.Sub(b); d.Reads != 7 || d.Writes != 3 || d.Total() != 10 {
		t.Errorf("Sub: %v", d)
	}
	if s := a.Add(b); s.Reads != 13 || s.Writes != 5 {
		t.Errorf("Add: %v", s)
	}
}

func TestWriterAppendAfterCloseIsNoop(t *testing.T) {
	ctx := mustCtx(t, 64, 8)
	f := ctx.Scratch("wc")
	w, _ := NewWriter(ctx, f)
	w.Append(Elem{Key: 1, Aux: 1})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	before := ctx.Disk().Stats()
	w.Append(Elem{Key: 2, Aux: 2}) // must not panic or write
	if err := w.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if ctx.Disk().Stats() != before {
		t.Error("append after close performed I/O")
	}
	if f.Len() != 1 {
		t.Errorf("file grew to %d after close", f.Len())
	}
}

func TestReaderOnEmptyFile(t *testing.T) {
	ctx := mustCtx(t, 64, 8)
	r, err := NewReader(ctx, ctx.Scratch("empty"))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, ok := r.Next(); ok {
		t.Error("read from empty file")
	}
	if r.Err() != nil {
		t.Errorf("empty file read errored: %v", r.Err())
	}
}

func TestSplitFileBasics(t *testing.T) {
	ctx := mustCtx(t, 64, 8)
	f := BuildFile(ctx.Disk(), "sf", seqElems(100))
	segs, err := SplitFile(ctx, f, []int64{10, 0, 50, 40})
	if err != nil {
		t.Fatal(err)
	}
	wantLens := []int64{10, 0, 50, 40}
	pos := int64(0)
	for i, seg := range segs {
		if seg.Len() != wantLens[i] {
			t.Fatalf("segment %d has %d elements, want %d", i, seg.Len(), wantLens[i])
		}
		for j, e := range seg.Snapshot() {
			if e.Key != pos+int64(j) {
				t.Fatalf("segment %d elem %d = %v", i, j, e)
			}
		}
		pos += seg.Len()
	}
	if _, err := SplitFile(ctx, f, []int64{50, 49}); err == nil {
		t.Error("bad sum accepted")
	}
	if _, err := SplitFile(ctx, f, []int64{-1, 101}); err == nil {
		t.Error("negative size accepted")
	}
	if ctx.Mem().Used() != 0 {
		t.Errorf("leaked %d", ctx.Mem().Used())
	}
}

func TestTrackReadsSemantics(t *testing.T) {
	ctx := mustCtx(t, 64, 8)
	f := BuildFile(ctx.Disk(), "tr", seqElems(64))
	if got := ctx.Disk().BlocksSeen(f); got != 0 {
		t.Fatalf("untracked file reports %d blocks", got)
	}
	ctx.Disk().TrackReads(f)
	buf := make([]Elem, 8)
	f.ReadBlock(3, buf)
	f.ReadBlock(3, buf) // same block twice counts once
	f.ReadBlock(5, buf)
	if got := ctx.Disk().BlocksSeen(f); got != 2 {
		t.Errorf("BlocksSeen = %d, want 2 distinct", got)
	}
	ctx.Disk().TrackReads(f) // re-tracking resets
	if got := ctx.Disk().BlocksSeen(f); got != 0 {
		t.Errorf("reset tracking reports %d", got)
	}
}

func TestCompareHookObservesOutcomes(t *testing.T) {
	type pair struct{ lo, hi Elem }
	var got []pair
	SetCompareHook(func(lo, hi Elem) { got = append(got, pair{lo, hi}) })
	defer SetCompareHook(nil)
	a, b := Elem{Key: 1, Aux: 0}, Elem{Key: 2, Aux: 0}
	Less(a, b) // a < b
	Less(b, a) // still learns a < b, normalized
	Compare(b, a)
	Compare(a, a) // equal: no information, no callback
	Less(a, a)
	if len(got) != 3 {
		t.Fatalf("hook fired %d times, want 3", len(got))
	}
	for i, p := range got {
		if p.lo != a || p.hi != b {
			t.Errorf("observation %d = (%v, %v), want (a, b)", i, p.lo, p.hi)
		}
	}
	SetCompareHook(nil)
	Less(a, b)
	if len(got) != 3 {
		t.Error("hook fired after removal")
	}
}

func TestDiskFootprintAccounting(t *testing.T) {
	ctx := mustCtx(t, 64, 8)
	a := BuildFile(ctx.Disk(), "a", seqElems(64)) // 8 blocks
	if got := ctx.Disk().LiveBlocks(); got != 8 {
		t.Fatalf("live = %d, want 8", got)
	}
	b, err := StoreAll(ctx, "b", seqElems(20)) // 3 more
	if err != nil {
		t.Fatal(err)
	}
	if got := ctx.Disk().LiveBlocks(); got != 11 {
		t.Fatalf("live = %d, want 11", got)
	}
	a.Release()
	if got := ctx.Disk().LiveBlocks(); got != 3 {
		t.Fatalf("after release live = %d, want 3", got)
	}
	if got := ctx.Disk().PeakLiveBlocks(); got != 11 {
		t.Fatalf("peak = %d, want 11", got)
	}
	ctx.Disk().ResetPeakLive()
	if got := ctx.Disk().PeakLiveBlocks(); got != 3 {
		t.Fatalf("reset peak = %d, want 3", got)
	}
	b.Release()
	if got := ctx.Disk().LiveBlocks(); got != 0 {
		t.Fatalf("final live = %d", got)
	}
}

func TestAccessorsAndStringers(t *testing.T) {
	ctx := mustCtx(t, 64, 8)
	if ctx.M() != 64 || ctx.B() != 8 || ctx.Config().M != 64 {
		t.Error("Ctx accessors broken")
	}
	if s := (Config{M: 64, B: 8}).String(); s != "M=64 B=8" {
		t.Errorf("Config.String = %q", s)
	}
	if s := (Stats{Reads: 2, Writes: 1}).String(); s != "reads=2 writes=1 total=3" {
		t.Errorf("Stats.String = %q", s)
	}
	if s := (Elem{Key: 3, Aux: 4}).String(); s != "(3,4)" {
		t.Errorf("Elem.String = %q", s)
	}
	f := ctx.Scratch("acc")
	if f.Name() == "" || f.Disk() != ctx.Disk() {
		t.Error("File accessors broken")
	}
	if NewAccountant(10).Limit() != 10 {
		t.Error("Accountant.Limit broken")
	}
	anon := ctx.Disk().NewFile("")
	if anon.Name() == "" {
		t.Error("anonymous file got no generated name")
	}
	w, err := NewWriter(ctx, f)
	if err != nil {
		t.Fatal(err)
	}
	if w.Err() != nil {
		t.Error("fresh writer has error")
	}
	w.Close()
}

func TestNewUnmeteredCtx(t *testing.T) {
	ctx, err := NewUnmeteredCtx(Config{M: 16, B: 8})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ctx.AllocElems(1 << 20); err != nil {
		t.Errorf("unmetered ctx rejected allocation: %v", err)
	}
	if _, err := NewUnmeteredCtx(Config{M: 1, B: 8}); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestWriterOnSealedFileFailsOnFlush(t *testing.T) {
	ctx := mustCtx(t, 64, 8)
	f := ctx.Scratch("sealed")
	w, _ := NewWriter(ctx, f)
	for i := 0; i < 3; i++ {
		w.Append(Elem{Key: int64(i)})
	}
	if err := w.Close(); err != nil { // partial block seals the file
		t.Fatal(err)
	}
	w2, err := NewWriter(ctx, f)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		w2.Append(Elem{Key: int64(i)})
	}
	if err := w2.Close(); !errors.Is(err, ErrPartialBlock) {
		t.Errorf("writing past a sealed file: %v, want ErrPartialBlock", err)
	}
	if ctx.Mem().Used() != 0 {
		t.Errorf("leaked %d", ctx.Mem().Used())
	}
}
