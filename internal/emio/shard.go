package emio

import (
	"fmt"
	"time"
)

// Shard sub-disks.
//
// The parallel engine (internal/empar) splits one logical Disk into S shard
// sub-disks. Each shard is a full *Disk with its own logical I/O counters,
// footprint meters, live-file registry and (optionally) fault injector, but
// all shards store their blocks in the parent's block store: on a file
// backing every shard's transfer is a positioned read or write of the same
// OS file, and extents come from the parent's shared allocator. Two
// mechanisms make that sharing cheap and exact:
//
//   - Views (Disk.NewView): a read-only window onto a contiguous block range
//     of a parent file. A shard reads its slice of the input through a view;
//     the read is counted on the shard, the bytes come from the parent's
//     store, and nothing is copied.
//
//   - Extent adoption (AdoptAppend): a whole file written by a shard is
//     grafted onto a parent output file by moving its extents — zero I/O,
//     exactly like a filesystem rename. The blocks were already written
//     (and counted) once on the shard; reassembling the output costs only
//     the boundary blocks that straddle two shards.
//
// The shard's accounting is deterministic because every counter lives on the
// shard and the engine folds shard deltas into the parent at phase barriers
// in shard order.

// sharedStore is the store capability behind shard sub-disks: block access
// with the acting disk made explicit (so fault injection and retry resolve
// per shard) and a caller-supplied scratch buffer (so concurrent shards do
// not race on the store's synchronous codec scratch). Implemented by both
// memStore and fileStore; the pipelined fileStore serves these calls
// synchronously, bypassing the write-behind queue.
type sharedStore interface {
	blockStore
	readShared(d *Disk, src *File, blk int, buf []Elem, scratch []byte) (int, error)
	appendShared(d *Disk, f *File, payload []Elem, scratch []byte) error
	releaseShared(f *File)
}

func (s *memStore) readShared(d *Disk, src *File, blk int, buf []Elem, _ []byte) (int, error) {
	b := src.mem[blk]
	if cap(buf) < len(b) {
		return 0, fmt.Errorf("%w: buffer cap %d < block len %d", ErrBlockSize, cap(buf), len(b))
	}
	if d.Injector() != nil {
		off := int64(blk) * int64(d.blockSize) * elemBytes
		if err := d.runPhys(opRead, src.name, off, func() error { return nil }); err != nil {
			return 0, storeReadError(src.name, off, err)
		}
	}
	return copy(buf[:len(b)], b), nil
}

func (s *memStore) appendShared(d *Disk, f *File, payload []Elem, _ []byte) error {
	if d.Injector() != nil {
		off := int64(len(f.mem)) * int64(d.blockSize) * elemBytes
		if err := d.runPhys(opWrite, f.name, off, func() error { return nil }); err != nil {
			return storeWriteError(d, f.name, off, err)
		}
	}
	blk := s.takeBlock(len(payload), d.blockSize)
	copy(blk, payload)
	f.mem = append(f.mem, blk)
	return nil
}

func (s *memStore) releaseShared(f *File) { s.release(f) }

func (s *fileStore) readShared(d *Disk, src *File, blk int, buf []Elem, scratch []byte) (int, error) {
	n := src.blockLen(blk)
	if cap(buf) < n {
		return 0, fmt.Errorf("%w: buffer cap %d < block len %d", ErrBlockSize, cap(buf), n)
	}
	// Shard reads bypass the async pipeline: shard-written blocks are always
	// synchronous, and the engine syncs parent input files before handing
	// views to workers, so the extents below are settled bytes.
	raw := scratch[:s.pad(n*elemBytes)]
	s.physR.Add(1)
	sm := s.sm.Load()
	var t0 time.Time
	if sm != nil {
		t0 = time.Now()
	}
	err := s.readAtPhysOn(d, src.name, raw, src.extents[blk])
	if sm != nil {
		sm.physReads.Inc()
		sm.physReadNS.ObserveEx(int64(time.Since(t0)), sm.seq.Load())
	}
	if err != nil {
		return 0, storeReadError(src.name, src.extents[blk], err)
	}
	decodeElems(buf[:n], raw[:n*elemBytes], true)
	return n, nil
}

func (s *fileStore) appendShared(d *Disk, f *File, payload []Elem, scratch []byte) error {
	nbytes := len(payload) * elemBytes
	pn := s.pad(nbytes)
	off := s.allocExtent(pn)
	raw := scratch[:pn]
	encodeElems(raw[:nbytes], payload, true)
	clear(raw[nbytes:])
	if err := s.physWriteOn(d, f.name, raw, off); err != nil {
		s.freeExtent(off, pn)
		return storeWriteError(d, f.name, off, err)
	}
	if sm := s.sm.Load(); sm != nil {
		sm.writeRunBlocks.Observe(1)
	}
	f.extents = append(f.extents, off)
	return nil
}

func (s *fileStore) releaseShared(f *File) {
	// Shard files never enter the write-behind queue, so there is nothing to
	// drain; just return the extents to the shared allocator.
	for i, off := range f.extents {
		if off < 0 {
			continue // reclaimed by ReleasePrefix
		}
		s.freeExtent(off, s.extentBytes(f, i))
	}
	f.extents = nil
}

// shardStore is the blockStore of a shard sub-disk: a thin adapter that
// routes every operation to the parent's shared store with the acting disk
// and a per-shard scratch buffer, resolving views to their backing file.
type shardStore struct {
	base    blockStore  // the parent's store, for same-backing identity checks
	sh      sharedStore // the same store through its shared-access capability
	scratch []byte      // per-shard codec scratch (aligned for O_DIRECT backings)
}

func (st *shardStore) read(f *File, i int, buf []Elem) (int, error) {
	src, blk := f, i
	if f.viewSrc != nil {
		src, blk = f.viewSrc, f.viewOff+i
	}
	return st.sh.readShared(f.disk, src, blk, buf, st.scratch)
}

func (st *shardStore) append(f *File, payload []Elem) error {
	return st.sh.appendShared(f.disk, f, payload, st.scratch)
}

func (st *shardStore) release(f *File) {
	if f.viewSrc != nil {
		return // views own no storage
	}
	st.sh.releaseShared(f)
}

// close is a no-op: the parent owns the store.
func (st *shardStore) close() error { return nil }

// storeBase returns the disk's underlying block store, unwrapping a shard
// adapter. Two disks share a backing exactly when their bases are identical.
func storeBase(d *Disk) blockStore {
	if st, ok := d.store.(*shardStore); ok {
		return st.base
	}
	return d.store
}

// NewShard creates shard sub-disk k of d: a Disk with its own counters,
// meters, registries and injector slot, whose blocks live in d's store.
// Shards of a shard share the original base store. The shard inherits the
// parent's block size, checksum arming and retry policy (the retrier's
// counters are shared and atomic); it inherits neither metrics, logging nor
// fault injectors — those stay per-disk so schedules armed on one shard
// fire only there.
//
// Concurrent use: different shard disks may be driven from different
// goroutines at the same time; one shard disk is still single-goroutine,
// like any Disk.
func (d *Disk) NewShard(k int) (*Disk, error) {
	var (
		base blockStore
		sh   sharedStore
	)
	if st, ok := d.store.(*shardStore); ok {
		base, sh = st.base, st.sh
	} else if s, ok := d.store.(sharedStore); ok {
		base, sh = d.store, s
	} else {
		return nil, fmt.Errorf("emio: disk %s: store %T does not support sharding", d.id, d.store)
	}
	var scratch []byte
	if fs, ok := base.(*fileStore); ok {
		scratch = alignedBytes(fs.pad(d.blockSize*elemBytes), fs.direct)
	}
	return &Disk{
		blockSize: d.blockSize,
		store:     &shardStore{base: base, sh: sh, scratch: scratch},
		id:        fmt.Sprintf("%s/shard-%d", d.id, k),
		checksum:  d.checksum,
		retry:     d.retry,
		// One job, one cancel flag, one disk budget: a cancel or a quota hit
		// on any shard stops (or rejects on) all of them.
		cancel: d.cancel,
		budget: d.budget,
	}, nil
}

// NewView creates a read-only window onto nblk contiguous blocks of src
// starting at startBlk, registered on d (typically a shard sub-disk of
// src's disk, which must share d's backing store). Reads through the view
// are counted on d; the view owns no storage, costs no footprint, and is
// sealed against appends. Views of views flatten to the original file.
// When checksums are armed and src carries sums for the window, the view
// aliases them, so reads stay verified.
func (d *Disk) NewView(src *File, startBlk, nblk int, name string) (*File, error) {
	if src.viewSrc != nil {
		startBlk += src.viewOff
		src = src.viewSrc
	}
	if src.released {
		return nil, fmt.Errorf("%w (%s)", ErrReleased, src.name)
	}
	if storeBase(src.disk) != storeBase(d) {
		return nil, fmt.Errorf("emio: view of %s: disks %s and %s do not share a backing store",
			src.name, src.disk.id, d.id)
	}
	if startBlk < 0 || nblk < 0 || startBlk+nblk > src.nblocks {
		return nil, fmt.Errorf("%w: view [%d, %d) of %d blocks in %s",
			ErrBlockRange, startBlk, startBlk+nblk, src.nblocks, src.name)
	}
	if name == "" {
		d.fileSeq++
		name = fmt.Sprintf("view-%d(%s)", d.fileSeq, src.name)
	}
	var n int64
	if nblk > 0 {
		n = int64(nblk-1)*int64(src.disk.blockSize) + int64(src.blockLen(startBlk+nblk-1))
	}
	f := &File{
		disk:    d,
		name:    name,
		n:       n,
		nblocks: nblk,
		sealed:  true, // windows are immutable
		viewSrc: src,
		viewOff: startBlk,
	}
	if d.checksum && startBlk+nblk <= len(src.sums) {
		f.sums = src.sums[startBlk : startBlk+nblk]
	}
	if d.liveFiles == nil {
		d.liveFiles = make(map[*File]struct{})
	}
	d.liveFiles[f] = struct{}{}
	return f, nil
}

// AdoptAppend grafts every block of body onto the end of out by moving the
// underlying storage — zero logical and physical I/O, like a filesystem
// rename. The blocks were already written (and counted) once, on body's
// disk; adoption only transfers ownership. body is consumed: it is released
// (without freeing its storage) and must not be used again.
//
// Requirements: out is unsealed and block-aligned (its last block is full),
// body is not a view, and both files live on the same backing store. A
// sealed body (short last block) seals out. When checksums are armed the
// sums move with the blocks.
func AdoptAppend(out, body *File) error {
	if out.released {
		return fmt.Errorf("%w (%s)", ErrReleased, out.name)
	}
	if body.released {
		return fmt.Errorf("%w (%s)", ErrReleased, body.name)
	}
	if body.viewSrc != nil {
		return fmt.Errorf("emio: adopt %s into %s: cannot adopt a view", body.name, out.name)
	}
	if out.sealed {
		return fmt.Errorf("%w (%s)", ErrPartialBlock, out.name)
	}
	if out.n%int64(out.disk.blockSize) != 0 {
		return fmt.Errorf("emio: adopt %s into %s: output not block-aligned (%d elements)",
			body.name, out.name, out.n)
	}
	if storeBase(out.disk) != storeBase(body.disk) {
		return fmt.Errorf("emio: adopt %s into %s: disks %s and %s do not share a backing store",
			body.name, out.name, body.disk.id, out.disk.id)
	}
	if out.disk.checksum && (len(out.sums) != out.nblocks || len(body.sums) != body.nblocks) {
		return fmt.Errorf("emio: adopt %s into %s: incomplete checksum sidecar", body.name, out.name)
	}
	out.mem = append(out.mem, body.mem...)
	out.extents = append(out.extents, body.extents...)
	if out.disk.checksum {
		out.sums = append(out.sums, body.sums...)
	}
	out.n += body.n
	out.nblocks += body.nblocks
	out.sealed = body.sealed
	out.disk.noteAlloc(int64(body.nblocks))

	body.disk.noteFree(int64(body.nblocks))
	body.disk.noteRelease(body)
	body.mem = nil
	body.extents = nil
	body.sums = nil
	body.n = 0
	body.nblocks = 0
	body.released = true
	return nil
}
