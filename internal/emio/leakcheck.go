package emio

// TestingT is the slice of *testing.T the leak detector needs. Declared as a
// local interface so that package emio (linked into every binary) never
// imports the testing package itself.
type TestingT interface {
	Helper()
	Fatalf(format string, args ...any)
}

// RequireNoLeaks fails the test when any scratch file created through
// Ctx.Scratch is still live. Call it after a top-level algorithm has returned
// and the caller has released the algorithm's output files: every internal
// scratch file must be gone by then, so anything left is a leak — a file some
// error path or early return forgot to release, silently inflating the
// simulated disk footprint.
func RequireNoLeaks(t TestingT, c *Ctx) {
	t.Helper()
	leaks := c.Disk().LiveScratchFiles()
	if len(leaks) == 0 {
		return
	}
	show := leaks
	const maxShow = 12
	if len(show) > maxShow {
		show = show[:maxShow]
	}
	t.Fatalf("emio: %d scratch files leaked (first %d shown): %v", len(leaks), len(show), show)
}
