package emio

import (
	"runtime"
	"time"
)

// TestingT is the slice of *testing.T the leak detector needs. Declared as a
// local interface so that package emio (linked into every binary) never
// imports the testing package itself.
type TestingT interface {
	Helper()
	Fatalf(format string, args ...any)
}

// RequireNoLeaks fails the test when any scratch file created through
// Ctx.Scratch is still live. Call it after a top-level algorithm has returned
// and the caller has released the algorithm's output files: every internal
// scratch file must be gone by then, so anything left is a leak — a file some
// error path or early return forgot to release, silently inflating the
// simulated disk footprint.
func RequireNoLeaks(t TestingT, c *Ctx) {
	t.Helper()
	leaks := c.Disk().LiveScratchFiles()
	if len(leaks) == 0 {
		return
	}
	show := leaks
	const maxShow = 12
	if len(show) > maxShow {
		show = show[:maxShow]
	}
	t.Fatalf("emio: %d scratch files leaked (first %d shown): %v", len(leaks), len(show), show)
}

// NumGoroutines returns the current goroutine count, for use with
// RequireNoGoroutineLeaks: capture it before creating a pipelined system,
// verify after closing it.
func NumGoroutines() int { return runtime.NumGoroutine() }

// RequireNoGoroutineLeaks fails the test when the goroutine count has not
// returned to the baseline captured with NumGoroutines. The write-behind
// worker and prefetch goroutines must all have exited once their Disk is
// closed — including after injected failures mid-run, the case this check
// guards. Freshly exited goroutines may need a moment to be reaped, so the
// check polls briefly before failing; on failure it dumps all stacks.
func RequireNoGoroutineLeaks(t TestingT, base int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= base {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			buf = buf[:runtime.Stack(buf, true)]
			t.Fatalf("emio: goroutine leak: %d live, baseline %d; stacks:\n%s", n, base, buf)
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
}
