package emio

// Bulk element marshalling for the file-backed store. The on-disk format is
// fixed — each element is two little-endian int64s, sixteen bytes — and an
// Elem in memory is exactly that pair of words, so on a little-endian host
// the in-memory image of an []Elem *is* its on-disk image and a whole block
// can be encoded or decoded with one memmove instead of a per-element
// binary.LittleEndian loop. The portable loop is kept as the fallback for
// big-endian hosts and as the reference implementation the bulk path is
// cross-checked against in tests.

import (
	"encoding/binary"
	"unsafe"
)

// Compile-time proof that Elem has no padding: the bulk codec reinterprets
// []Elem as raw bytes and is only sound if the struct is exactly two packed
// words. (Indexing fails to compile if the size ever drifts from elemBytes.)
var _ = [1]struct{}{}[unsafe.Sizeof(Elem{})-elemBytes]

// hostLittleEndian reports whether the host's native integer byte order
// matches the on-disk little-endian format.
var hostLittleEndian = func() bool {
	probe := uint16(1)
	return *(*byte)(unsafe.Pointer(&probe)) == 1
}()

// forcePortableCodec disables the unsafe bulk fast path; the cross-check
// tests flip it to run both codecs over the same data.
var forcePortableCodec = false

// bulkCodecUsable reports whether the zero-copy fast path may be used.
func bulkCodecUsable() bool { return hostLittleEndian && !forcePortableCodec }

// elemBytesView reinterprets an element slice as its raw byte image. Only
// valid on little-endian hosts (the caller checks).
func elemBytesView(s []Elem) []byte {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)*elemBytes)
}

// encodeElems serializes src into dst, which must be exactly
// len(src)*elemBytes long. When bulk is true the single-memmove fast path is
// taken; otherwise the portable per-element loop runs.
func encodeElems(dst []byte, src []Elem, bulk bool) {
	if bulk && bulkCodecUsable() {
		copy(dst, elemBytesView(src))
		return
	}
	for j, e := range src {
		binary.LittleEndian.PutUint64(dst[j*elemBytes:], uint64(e.Key))
		binary.LittleEndian.PutUint64(dst[j*elemBytes+8:], uint64(e.Aux))
	}
}

// decodeElems deserializes src into dst, which must be exactly
// len(dst)*elemBytes shorter-or-equal view of src.
func decodeElems(dst []Elem, src []byte, bulk bool) {
	if bulk && bulkCodecUsable() {
		copy(elemBytesView(dst), src[:len(dst)*elemBytes])
		return
	}
	for j := range dst {
		dst[j].Key = int64(binary.LittleEndian.Uint64(src[j*elemBytes:]))
		dst[j].Aux = int64(binary.LittleEndian.Uint64(src[j*elemBytes+8:]))
	}
}
