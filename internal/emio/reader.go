package emio

// Reader streams the elements of a File sequentially, one block buffer at a
// time. Reading n elements costs ceil(n/B) read I/Os (plus nothing for the
// blocks never reached). The buffer is charged against the memory budget for
// the Reader's lifetime; Close releases it.
//
// Errors are sticky, in the style of bufio.Scanner: Next reports exhaustion,
// and Err distinguishes a clean end of file from an I/O failure.
type Reader struct {
	ctx     *Ctx
	f       *File
	buf     []Elem
	blk     int   // next block index to fetch
	off     int   // next element offset within buf
	fill    int   // valid elements in buf
	fetched int64 // elements in blocks fetched so far (keeps Remaining O(1))
	err     error
}

// NewReader opens a sequential reader over f, allocating one block buffer.
func NewReader(ctx *Ctx, f *File) (*Reader, error) {
	buf, err := ctx.AllocElems(ctx.B())
	if err != nil {
		return nil, err
	}
	return &Reader{ctx: ctx, f: f, buf: buf}, nil
}

// Next returns the next element. The second result is false when the stream
// is exhausted, either by end of file or by an error; consult Err to tell
// the two apart.
func (r *Reader) Next() (Elem, bool) {
	if r.off >= r.fill {
		if !r.fetch() {
			return Elem{}, false
		}
	}
	e := r.buf[r.off]
	r.off++
	return e, true
}

func (r *Reader) fetch() bool {
	if r.err != nil || r.buf == nil {
		return false
	}
	if r.blk >= r.f.NumBlocks() {
		return false
	}
	n, err := r.f.readBlockAhead(r.blk, r.buf, r.f.disk.prefetch)
	if err != nil {
		r.err = err
		return false
	}
	r.blk++
	r.off = 0
	r.fill = n
	r.fetched += int64(n)
	return n > 0
}

// Err returns the first I/O error encountered, or nil after a clean end of
// stream.
func (r *Reader) Err() error { return r.err }

// Remaining returns how many elements are still unread (metadata only, no
// I/O, O(1)).
func (r *Reader) Remaining() int64 {
	if r.f.Released() {
		return 0
	}
	return r.f.Len() - r.fetched + int64(r.fill-r.off)
}

// Close releases the Reader's block buffer. It is safe to call twice.
func (r *Reader) Close() {
	if r.buf != nil {
		r.ctx.FreeElems(r.buf)
		r.buf = nil
	}
}
