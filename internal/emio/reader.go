package emio

// Reader streams the elements of a File sequentially, one block buffer at a
// time. Reading n elements costs ceil(n/B) read I/Os (plus nothing for the
// blocks never reached). The buffer is charged against the memory budget for
// the Reader's lifetime; Close releases it.
//
// Errors are sticky, in the style of bufio.Scanner: Next reports exhaustion,
// and Err distinguishes a clean end of file from an I/O failure.
type Reader struct {
	ctx     *Ctx
	f       *File
	buf     []Elem
	blk     int   // next block index to fetch
	off     int   // next element offset within buf
	fill    int   // valid elements in buf
	fetched int64 // elements in blocks fetched so far (keeps Remaining O(1))
	err     error

	consume bool // reclaim consumed blocks as the cursor advances
	lag     int  // blocks kept behind the cursor before reclamation
}

// NewReader opens a sequential reader over f, allocating one block buffer.
func NewReader(ctx *Ctx, f *File) (*Reader, error) {
	buf, err := ctx.AllocElems(ctx.B())
	if err != nil {
		return nil, err
	}
	return &Reader{ctx: ctx, f: f, buf: buf}, nil
}

// Next returns the next element. The second result is false when the stream
// is exhausted, either by end of file or by an error; consult Err to tell
// the two apart.
func (r *Reader) Next() (Elem, bool) {
	if r.off >= r.fill {
		if !r.fetch() {
			return Elem{}, false
		}
	}
	e := r.buf[r.off]
	r.off++
	return e, true
}

func (r *Reader) fetch() bool {
	if r.err != nil || r.buf == nil {
		return false
	}
	if r.blk >= r.f.NumBlocks() {
		return false
	}
	n, err := r.f.readBlockAhead(r.blk, r.buf, r.f.disk.prefetch)
	if err != nil {
		r.err = err
		return false
	}
	r.blk++
	r.off = 0
	r.fill = n
	r.fetched += int64(n)
	if r.consume {
		// Reclaim blocks strictly more than lag behind the current block
		// (r.blk-1). lag exceeds the prefetch depth, so a live read-ahead
		// window — which always contains the current block or later — can
		// never cover a reclaimed extent.
		if upTo := r.blk - 1 - r.lag; upTo > 0 {
			r.f.ReleasePrefix(upTo)
		}
	}
	return n > 0
}

// Consume arms consuming mode: the storage of blocks the reader has moved
// past is reclaimed with ReleasePrefix, lagging the cursor by the disk's
// prefetch depth plus one so in-flight read-ahead windows stay clear. This
// is the disk-budget degradation primitive of merges — a run being merged is
// read exactly once, so its consumed blocks can fund the merge output.
// Use only on fully written (synced) files that nothing will read again.
func (r *Reader) Consume() {
	r.consume = true
	r.lag = r.f.disk.prefetch + 1
}

// Err returns the first I/O error encountered, or nil after a clean end of
// stream.
func (r *Reader) Err() error { return r.err }

// Remaining returns how many elements are still unread (metadata only, no
// I/O, O(1)).
func (r *Reader) Remaining() int64 {
	if r.f.Released() {
		return 0
	}
	return r.f.Len() - r.fetched + int64(r.fill-r.off)
}

// Close releases the Reader's block buffer. It is safe to call twice.
func (r *Reader) Close() {
	if r.buf != nil {
		r.ctx.FreeElems(r.buf)
		r.buf = nil
	}
}
