package emio

// A deterministic physical-fault harness, promoted from test-only code so
// every backend can be exercised under device failure. An Injector sits
// below the retry layer and above the positioned-I/O syscalls: each physical
// transfer asks it for a fault episode keyed by the transfer's per-kind
// sequence number. Episodes can fail a fixed number of attempts and then
// succeed (transient, marked ErrTransient so the retry layer recognizes
// them), or fail every attempt (permanent). A seeded probabilistic mode
// generates such episodes at configurable rates.
//
// The injector plugs into both backends through Disk.SetInjector: the
// memory store consults it as a model of a physical transfer, the file store
// consults it in front of every ReadAt/WriteAt — on the algorithm goroutine
// synchronously and on the worker/prefetch goroutines under the pipeline.
// Scripted schedules are keyed per kind (read ops and write ops count
// independently), so a schedule is deterministic for a given backend
// configuration; the physical op sequence itself differs across backends
// (coalescing, staging reads), which is exactly what the fault matrix
// sweeps. Attach the injector after staging inputs, or the staging writes
// consume schedule slots.
//
// Bit-rot is modeled separately by Disk.CorruptBlock, which flips a chosen
// bit of a stored block at rest.

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"sync"
)

// ErrInjected marks every failure produced by an Injector, so tests can tell
// injected faults from real device errors with errors.Is.
var ErrInjected = errors.New("emio: injected fault")

// Injector is a deterministic schedule of physical-transfer faults. Safe for
// concurrent use (pipeline workers and the algorithm goroutine consult it
// concurrently); scheduling calls (FailRead/FailWrite/Probabilistic) should
// happen before I/O starts.
type Injector struct {
	mu    sync.Mutex
	rng   *rand.Rand
	plans [2]map[int64]*plannedFault // scripted episodes by per-kind op index
	nops  [2]int64                   // physical transfers seen, per kind

	pTransient float64 // probability of a transient episode per transfer
	pPermanent float64 // probability of a permanent episode per transfer
	burst      int     // max failed attempts of one probabilistic transient episode

	// crashHook runs when a crash-point schedule (CrashRead/CrashWrite)
	// fires; nil means the default, which SIGKILLs the process — the crash
	// harness's scripted "power cut". Tests replace it with SetCrashHook.
	crashHook func(op string, idx int64)

	stats InjectorStats
}

// InjectorStats counts what an Injector saw and did.
type InjectorStats struct {
	Reads     int64 // physical read transfers inspected
	Writes    int64 // physical write transfers inspected
	Transient int64 // attempts failed transiently
	Permanent int64 // attempts failed permanently
}

// NewInjector creates an idle injector whose probabilistic mode (if armed)
// draws from a PCG stream seeded with seed.
func NewInjector(seed uint64) *Injector {
	return &Injector{
		rng: rand.New(rand.NewPCG(seed, 0x9e3779b9)),
		plans: [2]map[int64]*plannedFault{
			{}, {},
		},
	}
}

// FailRead schedules the op'th physical read (0-based, counted independently
// of writes) to fail times attempts before succeeding; times < 0 makes the
// fault permanent. Retries of the transfer replay the episode without
// advancing the schedule.
func (inj *Injector) FailRead(op int64, times int) { inj.schedule(opRead, op, times) }

// FailWrite is FailRead for physical writes.
func (inj *Injector) FailWrite(op int64, times int) { inj.schedule(opWrite, op, times) }

// FailReadErr schedules the op'th physical read to fail permanently with the
// given cause as the underlying error — the errno schedule: a cause of
// syscall.ENOSPC models a full device, and the store layer wraps the failure
// into a typed *ResourceError exactly as it would a real ENOSPC. The cause
// is not marked transient, so the retry layer never spends attempts on it.
func (inj *Injector) FailReadErr(op int64, cause error) { inj.scheduleErr(opRead, op, cause) }

// FailWriteErr is FailReadErr for physical writes.
func (inj *Injector) FailWriteErr(op int64, cause error) { inj.scheduleErr(opWrite, op, cause) }

// CrashRead schedules the crash hook to fire at the op'th physical read: the
// crash-point schedule of the kill-resume harness. The default hook SIGKILLs
// the process — no deferred cleanup, no flushes, the closest software
// approximation of a power cut.
func (inj *Injector) CrashRead(op int64) { inj.scheduleCrash(opRead, op) }

// CrashWrite is CrashRead for physical writes.
func (inj *Injector) CrashWrite(op int64) { inj.scheduleCrash(opWrite, op) }

// SetCrashHook replaces the process-kill default for crash-point schedules
// (tests observe the crash point instead of dying). A hook that returns
// fails the attempt permanently with ErrInjected, so the schedule stays
// visible in the error flow.
func (inj *Injector) SetCrashHook(h func(op string, idx int64)) {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	inj.crashHook = h
}

func (inj *Injector) schedule(kind ioOp, op int64, times int) {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	inj.plans[kind][op] = &plannedFault{
		inj: inj, kind: kind, op: op,
		remaining: times, permanent: times < 0,
	}
}

func (inj *Injector) scheduleErr(kind ioOp, op int64, cause error) {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	inj.plans[kind][op] = &plannedFault{
		inj: inj, kind: kind, op: op,
		permanent: true, cause: cause,
	}
}

func (inj *Injector) scheduleCrash(kind ioOp, op int64) {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	inj.plans[kind][op] = &plannedFault{
		inj: inj, kind: kind, op: op, crash: true,
	}
}

// defaultCrashHook (faultinject_unix.go / faultinject_other.go) is the
// scripted "power cut": SIGKILL leaves no chance for deferred cleanup,
// buffered flushes or journal appends — exactly the crash model
// checkpoint/resume must survive.

// Probabilistic arms seeded random fault generation: each physical transfer
// independently draws a permanent episode with probability pPermanent, else a
// transient episode with probability pTransient lasting 1..burst attempts.
func (inj *Injector) Probabilistic(pTransient, pPermanent float64, burst int) {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	inj.pTransient, inj.pPermanent = pTransient, pPermanent
	inj.burst = max(burst, 1)
}

// Stats returns a snapshot of the injector's counters.
func (inj *Injector) Stats() InjectorStats {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return inj.stats
}

// begin assigns the next per-kind op index to one physical transfer and
// returns its fault episode, nil for a clean transfer. Called exactly once
// per transfer, before the first attempt.
func (inj *Injector) begin(kind ioOp) *plannedFault {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	idx := inj.nops[kind]
	inj.nops[kind]++
	if kind == opRead {
		inj.stats.Reads++
	} else {
		inj.stats.Writes++
	}
	if pf := inj.plans[kind][idx]; pf != nil {
		return pf
	}
	if inj.pPermanent > 0 && inj.rng.Float64() < inj.pPermanent {
		return &plannedFault{inj: inj, kind: kind, op: idx, permanent: true}
	}
	if inj.pTransient > 0 && inj.rng.Float64() < inj.pTransient {
		return &plannedFault{inj: inj, kind: kind, op: idx, remaining: 1 + inj.rng.IntN(inj.burst)}
	}
	return nil
}

// plannedFault is one fault episode bound to one physical transfer: it fails
// the transfer's next remaining attempts (or every attempt when permanent).
type plannedFault struct {
	inj       *Injector
	kind      ioOp
	op        int64
	remaining int
	permanent bool
	cause     error // errno schedules: underlying error of a permanent fault
	crash     bool  // crash-point schedules: fire the crash hook instead
}

// next is consulted once per attempt of the bound transfer; nil receivers
// (clean transfers) always pass.
func (pf *plannedFault) next() error {
	if pf == nil {
		return nil
	}
	pf.inj.mu.Lock()
	if pf.crash {
		// Call the hook outside the lock: the default never returns, and a
		// test hook may legitimately touch the injector.
		hook := pf.inj.crashHook
		pf.inj.mu.Unlock()
		if hook == nil {
			hook = defaultCrashHook
		}
		hook(pf.kind.String(), pf.op)
		return fmt.Errorf("%w: crash point at %s op #%d", ErrInjected, pf.kind, pf.op)
	}
	defer pf.inj.mu.Unlock()
	if pf.permanent {
		pf.inj.stats.Permanent++
		if pf.cause != nil {
			return fmt.Errorf("%w: %w at %s op #%d", ErrInjected, pf.cause, pf.kind, pf.op)
		}
		return fmt.Errorf("%w: permanent %s fault at op #%d", ErrInjected, pf.kind, pf.op)
	}
	if pf.remaining <= 0 {
		return nil
	}
	pf.remaining--
	pf.inj.stats.Transient++
	return fmt.Errorf("%w: %w: %s op #%d", ErrTransient, ErrInjected, pf.kind, pf.op)
}
