//go:build linux && (amd64 || arm64 || riscv64)

package emio

import "syscall"

// kickWriteback asks the kernel to start writing the file's dirty pages to
// the device without waiting for them — sync_file_range(2) with
// SYNC_FILE_RANGE_WRITE over the whole file. Unlike fsync it neither blocks
// on the data nor forces a filesystem journal commit, so the background
// flusher can call it on a hot file without stalling the writer; the
// checkpoint barrier's real fsync then only waits for writeback that is
// already in flight. Purely advisory: errors (and unsupported filesystems)
// are ignored, correctness always rests on the barrier fsync.
func kickWriteback(fd uintptr) {
	const syncFileRangeWrite = 0x2
	syscall.Syscall6(syscall.SYS_SYNC_FILE_RANGE, fd, 0, 0, syncFileRangeWrite, 0, 0)
}
