package emio

import "fmt"

// Elem is the record type moved between disk and memory. Key is the ordered
// attribute the paper's problems are defined on; Aux is an auxiliary word that
// carries a payload, a sequence number, or (inside the intermixed-selection
// machinery) a packed (group, sequence) pair.
//
// An Elem is two words. The indivisibility assumption of the EM model applies:
// algorithms move whole Elems and never split a record across blocks.
type Elem struct {
	Key int64
	Aux int64
}

// cmpHook, when non-nil, observes the outcome of every Less/Compare call as
// an ordered pair (lo strictly precedes hi). It exists for the
// comparison-transcript tests that rebuild the partial order ≺* an algorithm
// has learned (paper §2) and check the proofs' combinatorial facts against
// real executions. The model is sequential, so a plain package variable is
// safe; the nil check costs nothing measurable.
var cmpHook func(lo, hi Elem)

// SetCompareHook installs (or, with nil, removes) the comparison observer.
// Harness-side use only.
func SetCompareHook(h func(lo, hi Elem)) { cmpHook = h }

// Less reports whether a precedes b in the total order (Key, Aux).
//
// All algorithms in this repository compare elements with Less (or Compare),
// so as long as every element carries a distinct Aux the order is total and
// ranks are unambiguous even under duplicate keys.
func Less(a, b Elem) bool {
	less := a.Key < b.Key || (a.Key == b.Key && a.Aux < b.Aux)
	if cmpHook != nil {
		if less {
			cmpHook(a, b)
		} else if a != b {
			cmpHook(b, a)
		}
	}
	return less
}

// Compare returns -1, 0 or +1 according to the total order (Key, Aux).
func Compare(a, b Elem) int {
	c := 0
	switch {
	case a.Key < b.Key:
		c = -1
	case a.Key > b.Key:
		c = +1
	case a.Aux < b.Aux:
		c = -1
	case a.Aux > b.Aux:
		c = +1
	}
	if cmpHook != nil {
		switch c {
		case -1:
			cmpHook(a, b)
		case +1:
			cmpHook(b, a)
		}
	}
	return c
}

// String implements fmt.Stringer for debugging output.
func (e Elem) String() string {
	return fmt.Sprintf("(%d,%d)", e.Key, e.Aux)
}

// Group/sequence packing used by the L-intermixed selection primitive
// (internal/intermix). A packed Aux stores the group id in the upper bits and
// a per-element sequence number in the lower bits. The limits are generous:
// up to 2^23 groups and 2^40 sequence numbers.
const (
	seqBits  = 40
	seqMask  = (int64(1) << seqBits) - 1
	MaxGroup = int64(1)<<23 - 1 // largest packable group id
	MaxSeq   = seqMask          // largest packable sequence number
)

// PackAux packs a group id and a sequence number into a single Aux word.
// It panics when either value is out of range, since that is a programming
// error in the caller, never a data-dependent condition.
func PackAux(group, seq int64) int64 {
	if group < 0 || group > MaxGroup {
		panic(fmt.Sprintf("emio.PackAux: group %d out of range [0,%d]", group, MaxGroup))
	}
	if seq < 0 || seq > MaxSeq {
		panic(fmt.Sprintf("emio.PackAux: seq %d out of range [0,%d]", seq, MaxSeq))
	}
	return group<<seqBits | seq
}

// UnpackGroup extracts the group id from a packed Aux word.
func UnpackGroup(aux int64) int64 { return aux >> seqBits }

// UnpackSeq extracts the sequence number from a packed Aux word.
func UnpackSeq(aux int64) int64 { return aux & seqMask }
