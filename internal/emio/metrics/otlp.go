package metrics

// OTLP/JSON export of a registry snapshot: an ExportMetricsServiceRequest
// rendered per the OTLP JSON mapping (64-bit integers as decimal strings), so
// the bytes POST straight to a collector's /v1/metrics endpoint with zero
// dependencies. Counters become monotonic cumulative sums, gauges become
// gauges, infos become gauge-1 data points carrying their string as an
// attribute, and the log-bucketed histograms become explicit-bounds OTLP
// histograms whose bucket boundaries are the power-of-two ceilings. A
// histogram carrying an exemplar (the span seq of its max-latency
// observation) exports it as an OTLP exemplar with an empart.span_seq
// filtered attribute — the correlation hook between a p99 spike in a metrics
// backend and the span tree in a trace backend.

import (
	"encoding/json"
	"strconv"
	"strings"
	"time"
)

type otlpMetricKV struct {
	Key   string          `json:"key"`
	Value otlpMetricValue `json:"value"`
}

type otlpMetricValue struct {
	StringValue *string `json:"stringValue,omitempty"`
	IntValue    *string `json:"intValue,omitempty"`
}

func metricAttrStr(key, v string) otlpMetricKV {
	return otlpMetricKV{Key: key, Value: otlpMetricValue{StringValue: &v}}
}

func metricAttrInt(key string, v int64) otlpMetricKV {
	s := strconv.FormatInt(v, 10)
	return otlpMetricKV{Key: key, Value: otlpMetricValue{IntValue: &s}}
}

// otlpNumberPoint is one sum or gauge data point; AsInt is the decimal-string
// form of the value.
type otlpNumberPoint struct {
	Attributes        []otlpMetricKV `json:"attributes,omitempty"`
	StartTimeUnixNano string         `json:"startTimeUnixNano,omitempty"`
	TimeUnixNano      string         `json:"timeUnixNano"`
	AsInt             string         `json:"asInt"`
}

type otlpExemplar struct {
	FilteredAttributes []otlpMetricKV `json:"filteredAttributes,omitempty"`
	TimeUnixNano       string         `json:"timeUnixNano"`
	AsInt              string         `json:"asInt"`
}

type otlpHistogramPoint struct {
	Attributes        []otlpMetricKV `json:"attributes,omitempty"`
	StartTimeUnixNano string         `json:"startTimeUnixNano"`
	TimeUnixNano      string         `json:"timeUnixNano"`
	Count             string         `json:"count"`
	Sum               float64        `json:"sum"`
	BucketCounts      []string       `json:"bucketCounts"`
	ExplicitBounds    []float64      `json:"explicitBounds"`
	Exemplars         []otlpExemplar `json:"exemplars,omitempty"`
	Max               float64        `json:"max"`
}

type otlpSum struct {
	DataPoints             []otlpNumberPoint `json:"dataPoints"`
	AggregationTemporality int               `json:"aggregationTemporality"`
	IsMonotonic            bool              `json:"isMonotonic"`
}

type otlpGaugeMetric struct {
	DataPoints []otlpNumberPoint `json:"dataPoints"`
}

type otlpHistogramMetric struct {
	DataPoints             []otlpHistogramPoint `json:"dataPoints"`
	AggregationTemporality int                  `json:"aggregationTemporality"`
}

type otlpMetric struct {
	Name        string               `json:"name"`
	Description string               `json:"description,omitempty"`
	Unit        string               `json:"unit,omitempty"`
	Sum         *otlpSum             `json:"sum,omitempty"`
	Gauge       *otlpGaugeMetric     `json:"gauge,omitempty"`
	Histogram   *otlpHistogramMetric `json:"histogram,omitempty"`
}

type otlpMetricScope struct {
	Name string `json:"name"`
}

type otlpScopeMetrics struct {
	Scope   otlpMetricScope `json:"scope"`
	Metrics []otlpMetric    `json:"metrics"`
}

type otlpMetricResource struct {
	Attributes []otlpMetricKV `json:"attributes"`
}

type otlpResourceMetrics struct {
	Resource     otlpMetricResource `json:"resource"`
	ScopeMetrics []otlpScopeMetrics `json:"scopeMetrics"`
}

// otlpMetricsRequest is the body of an OTLP/HTTP POST to /v1/metrics.
type otlpMetricsRequest struct {
	ResourceMetrics []otlpResourceMetrics `json:"resourceMetrics"`
}

// aggregationCumulative is AGGREGATION_TEMPORALITY_CUMULATIVE.
const aggregationCumulative = 2

// OTLP marshals a point-in-time snapshot of the registry as an OTLP/JSON
// ExportMetricsServiceRequest taken at now; start times come from the
// registry's creation (cumulative temporality). Metric ordering is sorted by
// name within each kind, so the document layout is deterministic.
func (r *Registry) OTLP(service string, now time.Time) ([]byte, error) {
	r.mu.Lock()
	created := r.created
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	vecs := make(map[string]*CounterVec, len(r.vecs))
	for k, v := range r.vecs {
		vecs[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	infos := make(map[string]*Info, len(r.infos))
	for k, v := range r.infos {
		infos[k] = v
	}
	r.mu.Unlock()

	startNS := strconv.FormatInt(created.UnixNano(), 10)
	nowNS := strconv.FormatInt(now.UnixNano(), 10)
	var ms []otlpMetric

	for _, name := range sortedKeys(counters) {
		c := counters[name]
		ms = append(ms, otlpMetric{
			Name:        name,
			Description: c.help,
			Sum: &otlpSum{
				DataPoints: []otlpNumberPoint{{
					StartTimeUnixNano: startNS,
					TimeUnixNano:      nowNS,
					AsInt:             strconv.FormatInt(c.Value(), 10),
				}},
				AggregationTemporality: aggregationCumulative,
				IsMonotonic:            true,
			},
		})
	}
	for _, name := range sortedKeys(vecs) {
		v := vecs[name]
		v.mu.Lock()
		pts := make([]otlpNumberPoint, 0, len(v.children))
		for _, val := range sortedKeys(v.children) {
			pts = append(pts, otlpNumberPoint{
				Attributes:        []otlpMetricKV{metricAttrStr(v.label, val)},
				StartTimeUnixNano: startNS,
				TimeUnixNano:      nowNS,
				AsInt:             strconv.FormatInt(v.children[val].Value(), 10),
			})
		}
		v.mu.Unlock()
		if len(pts) == 0 {
			continue
		}
		ms = append(ms, otlpMetric{
			Name:        name,
			Description: v.help,
			Sum: &otlpSum{
				DataPoints:             pts,
				AggregationTemporality: aggregationCumulative,
				IsMonotonic:            true,
			},
		})
	}
	for _, name := range sortedKeys(gauges) {
		g := gauges[name]
		ms = append(ms, otlpMetric{
			Name:        name,
			Description: g.help,
			Gauge: &otlpGaugeMetric{DataPoints: []otlpNumberPoint{{
				TimeUnixNano: nowNS,
				AsInt:        strconv.FormatInt(g.Value(), 10),
			}}},
		})
	}
	for _, name := range sortedKeys(infos) {
		i := infos[name]
		ms = append(ms, otlpMetric{
			Name:        name,
			Description: i.help,
			Gauge: &otlpGaugeMetric{DataPoints: []otlpNumberPoint{{
				Attributes:   []otlpMetricKV{metricAttrStr(i.label, i.Value())},
				TimeUnixNano: nowNS,
				AsInt:        "1",
			}}},
		})
	}
	for _, name := range sortedKeys(hists) {
		h := hists[name]
		snap := h.snapshot()
		// bucketCounts has one more entry than explicitBounds: the final
		// bucket is the overflow above the last bound.
		counts := make([]string, len(snap.Buckets)+1)
		bounds := make([]float64, len(snap.Buckets))
		for i, n := range snap.Buckets {
			counts[i] = strconv.FormatInt(n, 10)
			bounds[i] = float64(bucketUpper(i))
		}
		counts[len(snap.Buckets)] = "0"
		pt := otlpHistogramPoint{
			StartTimeUnixNano: startNS,
			TimeUnixNano:      nowNS,
			Count:             strconv.FormatInt(snap.Count, 10),
			Sum:               float64(snap.Sum),
			BucketCounts:      counts,
			ExplicitBounds:    bounds,
			Max:               float64(snap.Max),
		}
		if snap.MaxSeq != 0 {
			pt.Exemplars = []otlpExemplar{{
				FilteredAttributes: []otlpMetricKV{metricAttrInt("empart.span_seq", snap.MaxSeq)},
				TimeUnixNano:       nowNS,
				AsInt:              strconv.FormatInt(snap.Max, 10),
			}}
		}
		unit := h.unit
		if unit == "blocks" {
			unit = "{blocks}" // UCUM annotation form for count-like units
		}
		ms = append(ms, otlpMetric{
			Name:        name,
			Description: strings.TrimSpace(h.help),
			Unit:        unit,
			Histogram: &otlpHistogramMetric{
				DataPoints:             []otlpHistogramPoint{pt},
				AggregationTemporality: aggregationCumulative,
			},
		})
	}

	req := otlpMetricsRequest{
		ResourceMetrics: []otlpResourceMetrics{{
			Resource: otlpMetricResource{Attributes: []otlpMetricKV{
				metricAttrStr("service.name", service),
			}},
			ScopeMetrics: []otlpScopeMetrics{{
				Scope:   otlpMetricScope{Name: "repro/internal/emio/metrics"},
				Metrics: ms,
			}},
		}},
	}
	return json.MarshalIndent(req, "", "  ")
}
