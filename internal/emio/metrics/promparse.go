package metrics

// ParsePrometheus reconstructs a Snapshot from the text exposition format
// WritePrometheus produces — the scrape half of the remote dashboard: emtop
// GETs /metrics from a running job and renders the same frames an in-process
// dashboard would. The parser is deliberately scoped to this package's own
// output (integer samples, one label per series, _p50/_p95/_p99/_max/_max_seq
// companion gauges folded back into their histogram) rather than a general
// Prometheus parser.

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ParsePrometheus parses a text exposition produced by WritePrometheus back
// into a Snapshot. Series with non-integer values or malformed lines are
// skipped rather than failing the whole scrape.
func ParsePrometheus(r io.Reader) (Snapshot, error) {
	snap := Snapshot{
		Counters:   make(map[string]int64),
		Gauges:     make(map[string]int64),
		Histograms: make(map[string]HistogramSnapshot),
		Infos:      make(map[string]string),
	}
	types := make(map[string]string)
	// Histogram buckets accumulate per name in le order of appearance
	// (cumulative counts, differenced at the end).
	bucketCums := make(map[string][]int64)

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 4 && fields[1] == "TYPE" {
				types[fields[2]] = fields[3]
			}
			continue
		}
		name, labelKey, labelVal, value, ok := parseSample(line)
		if !ok {
			continue
		}
		switch {
		case strings.HasSuffix(name, "_bucket") && types[strings.TrimSuffix(name, "_bucket")] == "histogram":
			base := strings.TrimSuffix(name, "_bucket")
			if labelKey == "le" && labelVal != "+Inf" {
				bucketCums[base] = append(bucketCums[base], value)
			}
		case strings.HasSuffix(name, "_sum") && types[strings.TrimSuffix(name, "_sum")] == "histogram":
			h := snap.Histograms[strings.TrimSuffix(name, "_sum")]
			h.Sum = value
			snap.Histograms[strings.TrimSuffix(name, "_sum")] = h
		case strings.HasSuffix(name, "_count") && types[strings.TrimSuffix(name, "_count")] == "histogram":
			h := snap.Histograms[strings.TrimSuffix(name, "_count")]
			h.Count = value
			snap.Histograms[strings.TrimSuffix(name, "_count")] = h
		case types[name] == "counter":
			key := name
			if labelKey != "" {
				key = fmt.Sprintf("%s{%s=%q}", name, labelKey, labelVal)
			}
			snap.Counters[key] = value
		case types[name] == "gauge":
			if labelKey != "" {
				// Info metric: name{label="value"} 1.
				snap.Infos[name] = labelVal
				continue
			}
			snap.Gauges[name] = value
		}
	}
	if err := sc.Err(); err != nil {
		return snap, fmt.Errorf("metrics: parse exposition: %w", err)
	}

	// Difference cumulative buckets and fold the quantile companion gauges
	// back into their histograms. Suffix order matters: _max_seq must be
	// tested before _max.
	for base, cums := range bucketCums {
		h := snap.Histograms[base]
		h.Buckets = make([]int64, len(cums))
		prev := int64(0)
		for i, c := range cums {
			h.Buckets[i] = c - prev
			prev = c
		}
		snap.Histograms[base] = h
	}
	for name := range snap.Histograms {
		h := snap.Histograms[name]
		for _, q := range []struct {
			suffix string
			dst    *int64
		}{
			{"_max_seq", &h.MaxSeq}, {"_max", &h.Max},
			{"_p50", &h.P50}, {"_p95", &h.P95}, {"_p99", &h.P99},
		} {
			if v, ok := snap.Gauges[name+q.suffix]; ok {
				*q.dst = v
				delete(snap.Gauges, name+q.suffix)
			}
		}
		snap.Histograms[name] = h
	}
	return snap, nil
}

// parseSample splits one sample line: `name 12`, `name{label="val"} 12`.
// Returns ok=false for lines it cannot interpret (float samples included —
// this package only emits integers).
func parseSample(line string) (name, labelKey, labelVal string, value int64, ok bool) {
	sp := strings.LastIndexByte(line, ' ')
	if sp < 0 {
		return "", "", "", 0, false
	}
	series, valStr := line[:sp], line[sp+1:]
	v, err := strconv.ParseInt(strings.TrimSpace(valStr), 10, 64)
	if err != nil {
		return "", "", "", 0, false
	}
	if i := strings.IndexByte(series, '{'); i >= 0 {
		if !strings.HasSuffix(series, "}") {
			return "", "", "", 0, false
		}
		name = series[:i]
		inner := series[i+1 : len(series)-1]
		eq := strings.IndexByte(inner, '=')
		if eq < 0 {
			return "", "", "", 0, false
		}
		labelKey = inner[:eq]
		lv := inner[eq+1:]
		unq, err := strconv.Unquote(lv)
		if err != nil {
			return "", "", "", 0, false
		}
		labelVal = unq
	} else {
		name = series
	}
	return name, labelKey, labelVal, v, true
}
