package metrics

import (
	"fmt"
	"io"
	"strings"
)

// WritePrometheus renders every metric in the registry in the Prometheus
// text exposition format (version 0.0.4). Histograms are exported as native
// Prometheus histograms (cumulative _bucket{le=...} series with _sum and
// _count) plus companion _p50/_p95/_p99/_max gauges, so a bare curl shows
// latency percentiles without needing a PromQL evaluator.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	var b strings.Builder

	for _, name := range sortedKeys(r.counters) {
		c := r.counters[name]
		writeHeader(&b, name, c.help, "counter")
		fmt.Fprintf(&b, "%s %d\n", name, c.Value())
	}
	for _, name := range sortedKeys(r.vecs) {
		v := r.vecs[name]
		writeHeader(&b, name, v.help, "counter")
		v.mu.Lock()
		for _, val := range sortedKeys(v.children) {
			fmt.Fprintf(&b, "%s{%s=%q} %d\n", name, v.label, val, v.children[val].Value())
		}
		v.mu.Unlock()
	}
	for _, name := range sortedKeys(r.gauges) {
		g := r.gauges[name]
		writeHeader(&b, name, g.help, "gauge")
		fmt.Fprintf(&b, "%s %d\n", name, g.Value())
	}
	for _, name := range sortedKeys(r.infos) {
		i := r.infos[name]
		writeHeader(&b, name, i.help, "gauge")
		fmt.Fprintf(&b, "%s{%s=%q} 1\n", name, i.label, i.Value())
	}
	for _, name := range sortedKeys(r.hists) {
		h := r.hists[name]
		help := h.help
		if h.unit != "" {
			help += " (" + h.unit + ")"
		}
		writeHeader(&b, name, help, "histogram")
		snap := h.snapshot()
		var cum int64
		for i, n := range snap.Buckets {
			cum += n
			fmt.Fprintf(&b, "%s_bucket{le=\"%d\"} %d\n", name, bucketUpper(i), cum)
		}
		fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", name, snap.Count)
		fmt.Fprintf(&b, "%s_sum %d\n", name, snap.Sum)
		fmt.Fprintf(&b, "%s_count %d\n", name, snap.Count)
		for _, q := range []struct {
			suffix string
			v      int64
		}{{"p50", snap.P50}, {"p95", snap.P95}, {"p99", snap.P99}, {"max", snap.Max},
			{"max_seq", snap.MaxSeq}} {
			writeHeader(&b, name+"_"+q.suffix, help+" ("+q.suffix+")", "gauge")
			fmt.Fprintf(&b, "%s_%s %d\n", name, q.suffix, q.v)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func writeHeader(b *strings.Builder, name, help, typ string) {
	if help != "" {
		fmt.Fprintf(b, "# HELP %s %s\n", name, strings.ReplaceAll(help, "\n", " "))
	}
	fmt.Fprintf(b, "# TYPE %s %s\n", name, typ)
}
