package metrics

import (
	"fmt"
	"io"
	"math"
	"sync"
	"time"
)

// Progress is one sample of a long-running job, produced by the caller's
// sample function: how much work is done (in the caller's unit — elements,
// block I/Os), the predicted total (0 when unknown), and the phase the
// algorithm is currently in.
type Progress struct {
	Phase string
	Done  int64
	Total int64  // predicted; 0 disables percentage and ETA
	Unit  string // e.g. "elems", "ios" (printed after the numbers)
}

// Reporter periodically samples a job and streams one-line progress reports:
//
//	progress: 12.6M/33.6M ios (37.5%) phase=extsort/merge rate=1.8M/s eta=12s
//
// The sample function runs on the reporter's goroutine, so it must read only
// concurrency-safe state — the metrics registry's atomic instruments, never
// the Disk's unsynchronized logical counters.
type Reporter struct {
	w      io.Writer
	fn     func() Progress
	start  time.Time
	stop   chan struct{}
	done   chan struct{}
	mu     sync.Mutex // serializes line writes with the final Stop line
	closed bool
}

// StartProgress launches a reporter printing to w every interval. Stop it
// when the job completes; Stop prints a final 100%-state line.
func StartProgress(w io.Writer, interval time.Duration, fn func() Progress) *Reporter {
	if interval <= 0 {
		interval = 2 * time.Second
	}
	r := &Reporter{
		w:     w,
		fn:    fn,
		start: time.Now(),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	go r.loop(interval)
	return r
}

func (r *Reporter) loop(interval time.Duration) {
	defer close(r.done)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-t.C:
			r.emit(r.fn())
		}
	}
}

// Stop halts the ticker and prints one final sample line.
func (r *Reporter) Stop() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	r.mu.Unlock()
	close(r.stop)
	<-r.done
	r.emit(r.fn())
}

func (r *Reporter) emit(p Progress) {
	// Harden against misbehaving sample functions: a negative Done or Total
	// (an underflowed counter, a placeholder -1) must not produce negative
	// percentages, and the rate/ETA math below must never divide by zero or
	// print NaN/Inf no matter what combination arrives.
	if p.Done < 0 {
		p.Done = 0
	}
	if p.Total < 0 {
		p.Total = 0
	}
	elapsed := time.Since(r.start)
	line := fmt.Sprintf("progress: %s", humanCount(p.Done))
	if p.Total > 0 {
		line += "/" + humanCount(p.Total)
	}
	if p.Unit != "" {
		line += " " + p.Unit
	}
	if p.Total > 0 {
		pct := 100 * float64(p.Done) / float64(p.Total)
		if pct > 100 {
			pct = 100 // Done can overrun a predicted Total; clamp the display
		}
		line += fmt.Sprintf(" (%.1f%%)", pct)
	}
	if p.Phase != "" {
		line += " phase=" + p.Phase
	}
	if sec := elapsed.Seconds(); sec > 0 && p.Done > 0 {
		rate := float64(p.Done) / sec
		if !math.IsNaN(rate) && !math.IsInf(rate, 0) && rate > 0 {
			line += fmt.Sprintf(" rate=%s/s", humanCount(int64(rate)))
			if p.Total > p.Done {
				etaSec := float64(p.Total-p.Done) / rate
				if !math.IsNaN(etaSec) && !math.IsInf(etaSec, 0) {
					eta := time.Duration(etaSec * float64(time.Second))
					line += " eta=" + eta.Round(time.Second).String()
				}
			}
		}
	}
	line += fmt.Sprintf(" elapsed=%s", elapsed.Round(time.Second))
	r.mu.Lock()
	fmt.Fprintln(r.w, line)
	r.mu.Unlock()
}

// humanCount renders 1234567 as "1.2M".
func humanCount(n int64) string {
	switch {
	case n >= 1e9:
		return fmt.Sprintf("%.1fG", float64(n)/1e9)
	case n >= 1e6:
		return fmt.Sprintf("%.1fM", float64(n)/1e6)
	case n >= 1e3:
		return fmt.Sprintf("%.1fk", float64(n)/1e3)
	default:
		return fmt.Sprintf("%d", n)
	}
}
