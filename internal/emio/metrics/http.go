package metrics

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Handler returns an http.Handler exposing the registry:
//
//	/metrics         Prometheus text exposition
//	/debug/pprof/*   the standard Go profiling endpoints
//
// The pprof routes are wired explicitly (not via the net/http/pprof
// DefaultServeMux side effect) so embedding the handler in a larger mux
// never leaks profiling endpoints onto other servers.
func Handler(r *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is a running scrape endpoint. Close it when the job finishes.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve starts an HTTP server for the registry on addr (host:port; port 0
// picks a free port). It returns once the listener is bound, so a following
// scrape cannot race the bind; request handling runs in the background.
func Serve(addr string, r *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("metrics: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: Handler(r), ReadHeaderTimeout: 5 * time.Second}
	go srv.Serve(ln)
	return &Server{ln: ln, srv: srv}, nil
}

// Addr returns the bound address (useful with port 0).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// URL returns the scrape URL of the /metrics endpoint.
func (s *Server) URL() string { return "http://" + s.Addr() + "/metrics" }

// Close stops the server and releases the listener.
func (s *Server) Close() error { return s.srv.Close() }
