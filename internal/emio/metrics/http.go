package metrics

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Handler returns an http.Handler exposing the registry:
//
//	/metrics         Prometheus text exposition
//	/debug/pprof/*   the standard Go profiling endpoints
//
// The pprof routes are wired explicitly (not via the net/http/pprof
// DefaultServeMux side effect) so embedding the handler in a larger mux
// never leaks profiling endpoints onto other servers.
func Handler(r *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is a running scrape endpoint. Close it when the job finishes; Close
// shuts down gracefully (in-flight scrapes finish) and surfaces any error
// the background serve loop hit.
type Server struct {
	ln       net.Listener
	srv      *http.Server
	serveErr chan error // buffered; the background Serve's exit error
}

// shutdownGrace bounds how long Close waits for in-flight requests before
// tearing connections down hard.
const shutdownGrace = 2 * time.Second

// Serve starts an HTTP server for the registry on addr (host:port; port 0
// picks a free port). It returns once the listener is bound, so a following
// scrape cannot race the bind — a bad address (port in use, bad host)
// surfaces here rather than vanishing into a goroutine. Request handling
// runs in the background; an error that stops the serve loop later is
// reported by Err and Close.
func Serve(addr string, r *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("metrics: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: Handler(r), ReadHeaderTimeout: 5 * time.Second}
	s := &Server{ln: ln, srv: srv, serveErr: make(chan error, 1)}
	go func() {
		err := srv.Serve(ln)
		if errors.Is(err, http.ErrServerClosed) {
			err = nil
		}
		s.serveErr <- err
	}()
	return s, nil
}

// ServeContext is Serve bound to a context: when ctx is cancelled the server
// shuts down gracefully in the background. Close remains valid (and
// idempotent with the cancellation).
func ServeContext(ctx context.Context, addr string, r *Registry) (*Server, error) {
	s, err := Serve(addr, r)
	if err != nil {
		return nil, err
	}
	go func() {
		<-ctx.Done()
		s.Close()
	}()
	return s, nil
}

// Addr returns the bound address (useful with port 0).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// URL returns the scrape URL of the /metrics endpoint.
func (s *Server) URL() string { return "http://" + s.Addr() + "/metrics" }

// Err returns the error that stopped the background serve loop, nil while it
// is still running or if it exited cleanly. Non-blocking.
func (s *Server) Err() error {
	select {
	case err := <-s.serveErr:
		// Put it back so Close (or a second Err) still sees it.
		s.serveErr <- err
		return err
	default:
		return nil
	}
}

// Close shuts the server down gracefully, waiting up to a short grace period
// for in-flight scrapes before closing connections hard, and returns the
// first error among the shutdown and the background serve loop. Idempotent.
func (s *Server) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), shutdownGrace)
	defer cancel()
	err := s.srv.Shutdown(ctx)
	if errors.Is(err, context.DeadlineExceeded) {
		err = s.srv.Close()
	}
	// Serve has returned once Shutdown/Close completes; collect its error.
	if serr := <-s.serveErr; err == nil {
		err = serr
	}
	s.serveErr <- nil // keep later Close/Err calls non-blocking and clean
	return err
}
