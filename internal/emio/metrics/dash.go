package metrics

// The live terminal dashboard: a pure Snapshot -> string renderer plus a
// small refresh loop, shared by `emtop` (scraping /metrics over HTTP) and
// the -top flag of the CLIs (polling the registry in-process). Keeping the
// renderer pure makes it trivially testable and keeps all terminal concerns
// (ANSI cursor homing, width clamping) in one place.

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// sparkRunes are the eight sparkline levels, lowest to highest.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// sparkline renders bucket counts as one rune per bucket, scaled to the
// largest bucket. Empty input renders as "".
func sparkline(buckets []int64) string {
	var max int64
	for _, n := range buckets {
		if n > max {
			max = n
		}
	}
	if max == 0 {
		return ""
	}
	var b strings.Builder
	for _, n := range buckets {
		if n == 0 {
			b.WriteRune(' ')
			continue
		}
		idx := int(int64(len(sparkRunes)-1) * n / max)
		b.WriteRune(sparkRunes[idx])
	}
	return b.String()
}

// humanNS renders a nanosecond quantity at a human scale (ns/µs/ms/s).
func humanNS(ns int64) string {
	switch {
	case ns >= int64(time.Second):
		return fmt.Sprintf("%.2fs", float64(ns)/float64(time.Second))
	case ns >= int64(time.Millisecond):
		return fmt.Sprintf("%.1fms", float64(ns)/float64(time.Millisecond))
	case ns >= int64(time.Microsecond):
		return fmt.Sprintf("%.1fµs", float64(ns)/float64(time.Microsecond))
	default:
		return fmt.Sprintf("%dns", ns)
	}
}

// ratio renders hits/(hits+misses) as a percentage, "-" when nothing
// happened yet.
func ratio(hits, misses int64) string {
	if hits+misses == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(hits)/float64(hits+misses))
}

// dashHistograms are the latency/size histograms the dashboard renders, in
// display order.
var dashHistograms = []string{
	"empart_logical_read_ns",
	"empart_logical_write_ns",
	"empart_phys_read_ns",
	"empart_phys_write_ns",
	"empart_io_retry_backoff_ns",
}

// dashCountHistograms are the dimensionless histograms (io_uring SQE batch
// sizes and submission-time queue occupancy) rendered with plain-number
// quantiles instead of time units, in display order.
var dashCountHistograms = []string{
	"empart_uring_sqe_batch",
	"empart_uring_queue_depth",
}

// RenderDashboard renders one dashboard frame from a registry snapshot.
// width clamps line length (0 means no clamp). The frame is plain text with
// trailing newline per line and no cursor control — callers own the screen.
func RenderDashboard(snap Snapshot, width int) string {
	var b strings.Builder

	phase := snap.Infos["empart_phase"]
	if phase == "" {
		phase = "(idle)"
	}
	fmt.Fprintf(&b, "phase: %s  depth=%d\n", phase, snap.Gauge("empart_phase_depth"))

	fmt.Fprintf(&b, "logical  reads=%s writes=%s  corruptions=%d\n",
		humanCount(snap.Counter("empart_logical_reads_total")),
		humanCount(snap.Counter("empart_logical_writes_total")),
		snap.Counter("empart_corruption_detected_total"))
	fmt.Fprintf(&b, "physical reads=%s writes=%s  backing=%s\n",
		humanCount(snap.Counter("empart_phys_reads_total")),
		humanCount(snap.Counter("empart_phys_writes_total")),
		humanBytes(snap.Gauge("empart_backing_bytes")))
	fmt.Fprintf(&b, "pipeline queue=%d  prefetch hit=%s (%s hits, %s misses)\n",
		snap.Gauge("empart_write_queue_depth"),
		ratio(snap.Counter("empart_prefetch_hits_total"), snap.Counter("empart_prefetch_misses_total")),
		humanCount(snap.Counter("empart_prefetch_hits_total")),
		humanCount(snap.Counter("empart_prefetch_misses_total")))
	fmt.Fprintf(&b, "disk     live=%d blocks, %d scratch files  extents reuse=%s free=%s\n",
		snap.Gauge("empart_live_disk_blocks"), snap.Gauge("empart_live_scratch_files"),
		humanCount(snap.Counter("empart_extent_reuses_total")),
		humanCount(snap.Counter("empart_extent_frees_total")))
	fmt.Fprintf(&b, "retries  %d retried, %d abandoned\n",
		snap.Counter("empart_io_retries_total"),
		snap.Counter("empart_io_retry_giveups_total"))

	b.WriteString("\n")
	for _, name := range dashHistograms {
		h, ok := snap.Histograms[name]
		if !ok || h.Count == 0 {
			continue
		}
		label := strings.TrimSuffix(strings.TrimPrefix(name, "empart_"), "_ns")
		line := fmt.Sprintf("%-16s %8s p50=%-7s p95=%-7s p99=%-7s max=%-7s",
			label, humanCount(h.Count), humanNS(h.P50), humanNS(h.P95), humanNS(h.P99), humanNS(h.Max))
		if h.MaxSeq != 0 {
			line += fmt.Sprintf(" span#%d", h.MaxSeq)
		}
		if s := sparkline(h.Buckets); s != "" {
			line += "  " + s
		}
		b.WriteString(line + "\n")
	}
	for _, name := range dashCountHistograms {
		h, ok := snap.Histograms[name]
		if !ok || h.Count == 0 {
			continue
		}
		label := strings.TrimPrefix(name, "empart_")
		line := fmt.Sprintf("%-16s %8s p50=%-7d p95=%-7d p99=%-7d max=%-7d",
			label, humanCount(h.Count), h.P50, h.P95, h.P99, h.Max)
		if s := sparkline(h.Buckets); s != "" {
			line += "  " + s
		}
		b.WriteString(line + "\n")
	}

	// Per-phase span starts, most-started first, capped to a handful of rows.
	type phaseCount struct {
		name string
		n    int64
	}
	var phases []phaseCount
	for k, v := range snap.Counters {
		if rest, ok := strings.CutPrefix(k, `empart_phase_started_total{phase="`); ok {
			phases = append(phases, phaseCount{strings.TrimSuffix(rest, `"}`), v})
		}
	}
	if len(phases) > 0 {
		sort.Slice(phases, func(i, j int) bool {
			if phases[i].n != phases[j].n {
				return phases[i].n > phases[j].n
			}
			return phases[i].name < phases[j].name
		})
		b.WriteString("\nspans started:")
		for i, p := range phases {
			if i == 6 {
				b.WriteString(" …")
				break
			}
			fmt.Fprintf(&b, " %s=%d", p.name, p.n)
		}
		b.WriteString("\n")
	}

	out := b.String()
	if width > 0 {
		lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
		for i, l := range lines {
			if r := []rune(l); len(r) > width {
				lines[i] = string(r[:width])
			}
		}
		out = strings.Join(lines, "\n") + "\n"
	}
	return out
}

// humanBytes renders a byte count at a human scale.
func humanBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// Dash is a running dashboard loop; Stop halts it.
type Dash struct {
	stop chan struct{}
	done chan struct{}
}

// ansiHome clears the screen and homes the cursor (one frame overdraws the
// previous).
const ansiHome = "\x1b[H\x1b[2J"

// StartDash launches a dashboard redrawing to w every interval from the
// snapshot function (an in-process Registry.Snapshot closure, or a remote
// /metrics scrape+parse). Stop it when the job completes; the final frame is
// left on screen.
func StartDash(w io.Writer, interval time.Duration, width int, fn func() (Snapshot, error)) *Dash {
	if interval <= 0 {
		interval = time.Second
	}
	d := &Dash{stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(d.done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-d.stop:
				return
			case <-t.C:
				snap, err := fn()
				if err != nil {
					fmt.Fprintf(w, "%sdashboard: %v\n", ansiHome, err)
					continue
				}
				fmt.Fprintf(w, "%s%s", ansiHome, RenderDashboard(snap, width))
			}
		}
	}()
	return d
}

// Stop halts the refresh loop and waits for the last frame to finish.
func (d *Dash) Stop() {
	select {
	case <-d.stop:
	default:
		close(d.stop)
	}
	<-d.done
}
