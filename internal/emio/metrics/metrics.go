// Package metrics is the live-telemetry subsystem of the EM machine: a
// registry of counters, gauges and log-bucketed latency histograms that the
// I/O hot paths feed while an algorithm runs, so a multi-gigabyte
// partition/sort job can be watched mid-flight instead of post-hoc (the
// tracer and PhysStats only report after a run finishes).
//
// Design constraints, in order:
//
//  1. Zero model interference. Recording performs no simulated I/O, no
//     budgeted allocation and no random draws, so logical Stats and trace
//     JSON are bit-identical with metrics on or off (the parity suite proves
//     it).
//  2. Allocation-free hot paths. Every recording site obtains its Handle
//     once, at setup time; Inc/Add/Observe on a handle is a single atomic
//     RMW on a cache line the handle owns — no map lookups, no interface
//     calls, no allocations.
//  3. Shard-per-goroutine. A Counter or Histogram is a small fixed array of
//     cache-line-padded shards; each recording goroutine (the algorithm
//     goroutine, the write-behind worker, prefetch goroutines) holds a
//     handle bound to its own shard, so concurrent recording never contends
//     on a line. Reading sums the shards.
//
// Scrape-side operations (Snapshot, WritePrometheus) take locks and
// allocate freely — they run on the observer's goroutine, never the
// algorithm's.
package metrics

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// numShards is the shard count of counters and histograms. Recording sites
// are assigned shards round-robin; the EM machine has a handful of recording
// goroutines (algorithm, write worker, prefetch), so a small power of two
// keeps reads cheap while eliminating cross-goroutine contention.
const numShards = 8

// pad fills a counter shard out to a 64-byte cache line so neighbouring
// shards never false-share.
type counterShard struct {
	v atomic.Int64
	_ [56]byte
}

// Counter is a monotonically increasing sharded counter.
type Counter struct {
	name, help string
	shards     [numShards]counterShard
	next       atomic.Uint32 // round-robin handle assignment
}

// Name returns the registered metric name.
func (c *Counter) Name() string { return c.name }

// Handle binds a recording handle to one shard of the counter. Call once per
// recording goroutine (or site) during setup; the returned handle records
// with a single uncontended atomic add.
func (c *Counter) Handle() *CounterHandle {
	i := c.next.Add(1) - 1
	return &CounterHandle{s: &c.shards[i%numShards]}
}

// Add increments the counter through a default shard. Convenience for cold
// paths; hot paths use a Handle.
func (c *Counter) Add(n int64) { c.shards[0].v.Add(n) }

// Inc adds one through a default shard (cold-path convenience).
func (c *Counter) Inc() { c.shards[0].v.Add(1) }

// Value sums the shards: the counter's current total.
func (c *Counter) Value() int64 {
	var t int64
	for i := range c.shards {
		t += c.shards[i].v.Load()
	}
	return t
}

// CounterHandle is a shard-bound recorder for one Counter.
type CounterHandle struct{ s *counterShard }

// Inc adds one.
func (h *CounterHandle) Inc() { h.s.v.Add(1) }

// Add adds n.
func (h *CounterHandle) Add(n int64) { h.s.v.Add(n) }

// Gauge is an instantaneous value: queue depth, live scratch files, current
// phase depth. A single atomic — gauges are updated from at most a couple of
// sites and read rarely.
type Gauge struct {
	name, help string
	v          atomic.Int64
}

// Name returns the registered metric name.
func (g *Gauge) Name() string { return g.name }

// Set stores the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the value by delta (negative to decrease).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Info is a string-valued gauge (e.g. the current phase name), exported in
// Prometheus info-metric style: name{label="value"} 1.
type Info struct {
	name, help, label string
	v                 atomic.Value // string
}

// Name returns the registered metric name.
func (i *Info) Name() string { return i.name }

// Set stores the current string value.
func (i *Info) Set(s string) { i.v.Store(s) }

// Value returns the current string value ("" before the first Set).
func (i *Info) Value() string {
	s, _ := i.v.Load().(string)
	return s
}

// histBuckets is the bucket count of a histogram: bucket i holds
// observations v with bits.Len64(v) == i, i.e. v in [2^(i-1), 2^i).
// 64 buckets cover the entire non-negative int64 range, so Observe needs no
// range check beyond clamping negatives.
const histBuckets = 64

// histShard is one goroutine's slice of a histogram, padded at the front so
// consecutive shards start on distinct cache lines.
type histShard struct {
	count, sum atomic.Int64
	max        atomic.Int64
	// maxSeq is the exemplar: the span sequence number active when max was
	// stored, linking the worst observation to the phase that caused it.
	maxSeq  atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// Histogram is a log-bucketed (power-of-two) histogram of non-negative
// values — latencies in nanoseconds, run sizes in blocks. Log bucketing
// gives ~2x relative error on quantile estimates across 19 decades for 64
// words per shard, which is the right trade for live telemetry (the tracer
// keeps exact per-phase numbers for post-hoc work).
type Histogram struct {
	name, help, unit string
	shards           [numShards]histShard
	next             atomic.Uint32
}

// Name returns the registered metric name.
func (h *Histogram) Name() string { return h.name }

// Handle binds a recording handle to one shard. One per recording goroutine.
func (h *Histogram) Handle() *HistogramHandle {
	i := h.next.Add(1) - 1
	return &HistogramHandle{s: &h.shards[i%numShards]}
}

// Observe records v through a default shard (cold-path convenience).
func (h *Histogram) Observe(v int64) { observe(&h.shards[0], v, 0) }

// ObserveEx records v with an exemplar span sequence number through a
// default shard.
func (h *Histogram) ObserveEx(v, seq int64) { observe(&h.shards[0], v, seq) }

// HistogramHandle is a shard-bound recorder for one Histogram.
type HistogramHandle struct{ s *histShard }

// Observe records one value. Negative values clamp to zero.
func (hh *HistogramHandle) Observe(v int64) { observe(hh.s, v, 0) }

// ObserveEx records one value tagged with the span sequence number that
// produced it. When v becomes the shard's new maximum, seq is kept as the
// histogram's exemplar — a p99/max spike in a scrape then names the exact
// span to look up in the trace.
func (hh *HistogramHandle) ObserveEx(v, seq int64) { observe(hh.s, v, seq) }

func observe(s *histShard, v, seq int64) {
	if v < 0 {
		v = 0
	}
	s.count.Add(1)
	s.sum.Add(v)
	for {
		cur := s.max.Load()
		if v <= cur {
			break
		}
		if s.max.CompareAndSwap(cur, v) {
			// Benign race: a concurrent larger observation may overwrite
			// maxSeq between our CAS and this store; the exemplar is a hint,
			// not an invariant.
			s.maxSeq.Store(seq)
			break
		}
	}
	s.buckets[bits.Len64(uint64(v))].Add(1)
}

// bucketUpper returns the exclusive upper bound of bucket i: 2^i
// (bucket 0 holds only zeros; its upper bound is reported as 1).
func bucketUpper(i int) int64 {
	if i >= 63 {
		return math.MaxInt64
	}
	return int64(1) << i
}

// HistogramSnapshot is a merged, point-in-time view of a Histogram.
type HistogramSnapshot struct {
	Count, Sum, Max int64
	// MaxSeq is the exemplar: the span seq recorded with the maximum
	// observation (0 when no exemplar was attached).
	MaxSeq int64
	// Buckets[i] counts observations in [2^(i-1), 2^i); Buckets[0] counts
	// zeros. Trailing empty buckets are trimmed.
	Buckets []int64
	// Quantile estimates from the log buckets (upper-bound biased: the
	// reported value is the bucket ceiling, so estimates err high by < 2x).
	P50, P95, P99 int64
}

// Mean returns Sum/Count (0 when empty).
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// snapshot merges the shards and computes quantiles.
func (h *Histogram) snapshot() HistogramSnapshot {
	var snap HistogramSnapshot
	var merged [histBuckets]int64
	hi := -1
	for i := range h.shards {
		s := &h.shards[i]
		snap.Count += s.count.Load()
		snap.Sum += s.sum.Load()
		if m := s.max.Load(); m > snap.Max {
			snap.Max = m
			snap.MaxSeq = s.maxSeq.Load()
		}
		for b := range s.buckets {
			if n := s.buckets[b].Load(); n != 0 {
				merged[b] += n
				if b > hi {
					hi = b
				}
			}
		}
	}
	if hi >= 0 {
		snap.Buckets = append([]int64(nil), merged[:hi+1]...)
	}
	snap.P50 = quantile(merged[:], snap.Count, 0.50)
	snap.P95 = quantile(merged[:], snap.Count, 0.95)
	snap.P99 = quantile(merged[:], snap.Count, 0.99)
	if snap.P50 > snap.Max && snap.Max > 0 {
		snap.P50 = snap.Max
	}
	if snap.P95 > snap.Max && snap.Max > 0 {
		snap.P95 = snap.Max
	}
	if snap.P99 > snap.Max && snap.Max > 0 {
		snap.P99 = snap.Max
	}
	return snap
}

// quantile walks the cumulative bucket counts and returns the ceiling of the
// bucket containing rank q*count (0 when the histogram is empty).
func quantile(buckets []int64, count int64, q float64) int64 {
	if count == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(count)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, n := range buckets {
		cum += n
		if cum >= rank {
			return bucketUpper(i)
		}
	}
	return bucketUpper(len(buckets) - 1)
}
