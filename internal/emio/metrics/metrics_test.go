package metrics

import (
	"bytes"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterShardsSum(t *testing.T) {
	r := New()
	c := r.Counter("test_total", "help")
	var wg sync.WaitGroup
	const goroutines, perG = 16, 10000
	for i := 0; i < goroutines; i++ {
		h := c.Handle()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perG; j++ {
				h.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != goroutines*perG {
		t.Fatalf("counter = %d, want %d", got, goroutines*perG)
	}
	if r.Counter("test_total", "help") != c {
		t.Fatal("re-registration returned a different counter")
	}
}

func TestGauge(t *testing.T) {
	g := New().Gauge("depth", "")
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	h := New().Histogram("lat_ns", "latency", "ns")
	hh := h.Handle()
	// 90 observations at ~1000, 10 at ~100000: p50 lands in the 1024 bucket,
	// p99 in the 131072 bucket.
	for i := 0; i < 90; i++ {
		hh.Observe(1000)
	}
	for i := 0; i < 10; i++ {
		hh.Observe(100000)
	}
	s := h.snapshot()
	if s.Count != 100 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.Sum != 90*1000+10*100000 {
		t.Fatalf("sum = %d", s.Sum)
	}
	if s.Max != 100000 {
		t.Fatalf("max = %d", s.Max)
	}
	if s.P50 != 1024 {
		t.Fatalf("p50 = %d, want 1024 (bucket ceiling of 1000)", s.P50)
	}
	if s.P99 != 100000 {
		// 100000's bucket ceiling is 131072, clamped to the observed max.
		t.Fatalf("p99 = %d, want 100000", s.P99)
	}
	if got := s.Mean(); got != float64(s.Sum)/100 {
		t.Fatalf("mean = %v", got)
	}
}

func TestHistogramZeroAndNegative(t *testing.T) {
	h := New().Histogram("h", "", "")
	h.Observe(0)
	h.Observe(-5) // clamps to 0
	s := h.snapshot()
	if s.Count != 2 || s.Sum != 0 || s.Max != 0 {
		t.Fatalf("snapshot = %+v", s)
	}
	if s.P50 != 0 && s.P50 != 1 {
		t.Fatalf("p50 of all-zero histogram = %d", s.P50)
	}
}

func TestHistogramEmptyQuantiles(t *testing.T) {
	s := New().Histogram("empty", "", "").snapshot()
	if s.P50 != 0 || s.P99 != 0 || s.Count != 0 {
		t.Fatalf("empty histogram snapshot = %+v", s)
	}
}

func TestCounterVec(t *testing.T) {
	r := New()
	v := r.CounterVec("phase_started_total", "spans", "phase")
	v.With("sort").Add(2)
	v.With("merge").Inc()
	v.With("sort").Inc()
	snap := r.Snapshot()
	if got := snap.Counter(`phase_started_total{phase="sort"}`); got != 3 {
		t.Fatalf("labeled counter = %d, want 3", got)
	}
	if got := snap.Counter(`phase_started_total{phase="merge"}`); got != 1 {
		t.Fatalf("labeled counter = %d, want 1", got)
	}
}

func TestSnapshotAndInfo(t *testing.T) {
	r := New()
	r.Counter("c_total", "").Add(5)
	r.Gauge("g", "").Set(-2)
	r.Histogram("h_ns", "", "ns").Observe(100)
	r.Info("phase_info", "", "name").Set("merge-pass")
	s := r.Snapshot()
	if s.Counter("c_total") != 5 || s.Gauge("g") != -2 {
		t.Fatalf("snapshot = %+v", s)
	}
	if s.Histograms["h_ns"].Count != 1 {
		t.Fatalf("histogram snapshot missing: %+v", s.Histograms)
	}
	if s.Infos["phase_info"] != "merge-pass" {
		t.Fatalf("info = %q", s.Infos["phase_info"])
	}
}

func TestWritePrometheus(t *testing.T) {
	r := New()
	r.Counter("empart_reads_total", "logical block reads").Add(42)
	r.Gauge("empart_queue_depth", "pending blocks").Set(3)
	r.Info("empart_phase", "current phase", "name").Set("extsort/run-formation")
	h := r.Histogram("empart_write_ns", "physical write latency", "ns")
	h.Observe(900)
	h.Observe(100000)
	r.CounterVec("empart_phase_started_total", "spans started", "phase").With("sort").Inc()

	var b bytes.Buffer
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	wants := []string{
		"# TYPE empart_reads_total counter",
		"empart_reads_total 42",
		"empart_queue_depth 3",
		`empart_phase{name="extsort/run-formation"} 1`,
		"# TYPE empart_write_ns histogram",
		`empart_write_ns_bucket{le="1024"} 1`,
		`empart_write_ns_bucket{le="+Inf"} 2`,
		"empart_write_ns_sum 100900",
		"empart_write_ns_count 2",
		"empart_write_ns_p50 1024",
		"empart_write_ns_max 100000",
		`empart_phase_started_total{phase="sort"} 1`,
	}
	for _, want := range wants {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n---\n%s", want, out)
		}
	}
	// Scrapes must be stable: two back-to-back renders of an idle registry
	// are byte-identical (sorted names).
	var b2 bytes.Buffer
	r.WritePrometheus(&b2)
	if b.String() != b2.String() {
		t.Error("two scrapes of an idle registry differ")
	}
}

func TestServeAndScrape(t *testing.T) {
	r := New()
	r.Counter("live_total", "").Add(9)
	srv, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get(srv.URL())
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "live_total 9") {
		t.Fatalf("scrape missing counter:\n%s", body)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}
	// pprof must be reachable on the same server.
	pp, err := http.Get("http://" + srv.Addr() + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	pp.Body.Close()
	if pp.StatusCode != http.StatusOK {
		t.Fatalf("pprof status = %d", pp.StatusCode)
	}
}

func TestProgressReporter(t *testing.T) {
	var mu sync.Mutex
	var buf bytes.Buffer
	syncW := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return buf.Write(p)
	})
	var done int64
	rep := StartProgress(syncW, 10*time.Millisecond, func() Progress {
		done += 500
		return Progress{Phase: "merge", Done: done, Total: 2000, Unit: "elems"}
	})
	time.Sleep(35 * time.Millisecond)
	rep.Stop()
	rep.Stop() // idempotent
	mu.Lock()
	out := buf.String()
	mu.Unlock()
	if !strings.Contains(out, "phase=merge") || !strings.Contains(out, "elems") {
		t.Fatalf("progress output missing fields:\n%s", out)
	}
	if !strings.Contains(out, "%") {
		t.Fatalf("progress output missing percentage:\n%s", out)
	}
}

type writerFunc func([]byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

func TestHumanCount(t *testing.T) {
	for _, tc := range []struct {
		in   int64
		want string
	}{{5, "5"}, {1500, "1.5k"}, {2500000, "2.5M"}, {3200000000, "3.2G"}} {
		if got := humanCount(tc.in); got != tc.want {
			t.Errorf("humanCount(%d) = %q, want %q", tc.in, got, tc.want)
		}
	}
}
