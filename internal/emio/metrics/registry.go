package metrics

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Registry holds a namespace of metrics. Registration is idempotent by name
// (a second registration of "x" returns the first instrument), so several
// subsystems can share one registry without coordination. Registration and
// scraping lock; recording through the returned instruments never does.
type Registry struct {
	mu       sync.Mutex
	created  time.Time // cumulative-temporality start time for OTLP export
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	infos    map[string]*Info
	vecs     map[string]*CounterVec
}

// New creates an empty registry.
func New() *Registry {
	return &Registry{
		created:  time.Now(),
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		infos:    make(map[string]*Info),
		vecs:     make(map[string]*CounterVec),
	}
}

// Counter returns the counter registered under name, creating it on first
// use.
func (r *Registry) Counter(name, help string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{name: name, help: help}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{name: name, help: help}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the log-bucketed histogram registered under name,
// creating it on first use. unit names the observed quantity ("ns",
// "blocks") and is echoed in the help text.
func (r *Registry) Histogram(name, help, unit string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = &Histogram{name: name, help: help, unit: unit}
		r.hists[name] = h
	}
	return h
}

// Info returns the string-valued gauge registered under name, creating it on
// first use; label is the Prometheus label key carrying the string.
func (r *Registry) Info(name, help, label string) *Info {
	r.mu.Lock()
	defer r.mu.Unlock()
	i := r.infos[name]
	if i == nil {
		i = &Info{name: name, help: help, label: label}
		r.infos[name] = i
	}
	return i
}

// CounterVec is a family of counters distinguished by one label value (e.g.
// spans started per phase name). With is amortized one mutex-guarded map hit
// per distinct label — callers on hot paths cache the returned *Counter.
type CounterVec struct {
	name, help, label string
	mu                sync.Mutex
	children          map[string]*Counter
}

// CounterVec returns the labeled counter family registered under name,
// creating it on first use.
func (r *Registry) CounterVec(name, help, label string) *CounterVec {
	r.mu.Lock()
	defer r.mu.Unlock()
	v := r.vecs[name]
	if v == nil {
		v = &CounterVec{name: name, help: help, label: label, children: make(map[string]*Counter)}
		r.vecs[name] = v
	}
	return v
}

// With returns the child counter for the given label value, creating it on
// first use.
func (v *CounterVec) With(value string) *Counter {
	v.mu.Lock()
	defer v.mu.Unlock()
	c := v.children[value]
	if c == nil {
		c = &Counter{name: fmt.Sprintf("%s{%s=%q}", v.name, v.label, value)}
		v.children[value] = c
	}
	return c
}

// Snapshot is a point-in-time copy of every metric in a registry, safe to
// read while recording continues. Map keys are the registered names; for
// labeled counters the key is name{label="value"}.
type Snapshot struct {
	Counters   map[string]int64
	Gauges     map[string]int64
	Histograms map[string]HistogramSnapshot
	Infos      map[string]string
}

// Counter returns a counter (plain or labeled) by key, 0 when absent.
func (s Snapshot) Counter(key string) int64 { return s.Counters[key] }

// Gauge returns a gauge by name, 0 when absent.
func (s Snapshot) Gauge(key string) int64 { return s.Gauges[key] }

// Snapshot captures every registered metric.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
		Infos:      make(map[string]string, len(r.infos)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, v := range r.vecs {
		v.mu.Lock()
		for val, c := range v.children {
			s.Counters[fmt.Sprintf("%s{%s=%q}", name, v.label, val)] = c.Value()
		}
		v.mu.Unlock()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.snapshot()
	}
	for name, i := range r.infos {
		s.Infos[name] = i.Value()
	}
	return s
}

// sortedKeys returns the map's keys in sorted order (stable scrape output).
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
