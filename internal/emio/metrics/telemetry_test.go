package metrics

// Tests for the telemetry-bus surface added with the unified observability
// layer: the Prometheus exposition round-trip that powers remote emtop, the
// OTLP/JSON export with exemplars, the dashboard renderer, the pprof routes,
// and the hardened HTTP/progress lifecycles.

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// populate builds a registry exercising every instrument kind.
func populate(t *testing.T) *Registry {
	t.Helper()
	r := New()
	r.Counter("empart_logical_reads_total", "logical reads").Add(1234)
	r.Counter("empart_logical_writes_total", "logical writes").Add(567)
	r.Gauge("empart_phase_depth", "phase depth").Set(3)
	r.Info("empart_phase", "current phase", "phase").Set("extsort/merge")
	r.CounterVec("empart_phase_started_total", "phase starts", "phase").With("extsort").Add(2)
	r.CounterVec("empart_phase_started_total", "phase starts", "phase").With("extsort/merge").Add(7)
	h := r.Histogram("empart_phys_read_ns", "physical read latency", "ns")
	for i, v := range []int64{100, 900, 15_000, 2_000_000} {
		h.ObserveEx(v, int64(10+i))
	}
	return r
}

func TestParsePrometheusRoundTrip(t *testing.T) {
	r := populate(t)
	want := r.Snapshot()

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	got, err := ParsePrometheus(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}

	for k, v := range want.Counters {
		if got.Counters[k] != v {
			t.Errorf("counter %s: parsed %d, want %d", k, got.Counters[k], v)
		}
	}
	for k, v := range want.Gauges {
		if got.Gauges[k] != v {
			t.Errorf("gauge %s: parsed %d, want %d", k, got.Gauges[k], v)
		}
	}
	for k, v := range want.Infos {
		if got.Infos[k] != v {
			t.Errorf("info %s: parsed %q, want %q", k, got.Infos[k], v)
		}
	}
	wh, gh := want.Histograms["empart_phys_read_ns"], got.Histograms["empart_phys_read_ns"]
	if gh.Count != wh.Count || gh.Sum != wh.Sum || gh.Max != wh.Max ||
		gh.MaxSeq != wh.MaxSeq || gh.P50 != wh.P50 || gh.P95 != wh.P95 || gh.P99 != wh.P99 {
		t.Errorf("histogram summary: parsed %+v, want %+v", gh, wh)
	}
	if len(gh.Buckets) != len(wh.Buckets) {
		t.Fatalf("histogram buckets: parsed %d, want %d", len(gh.Buckets), len(wh.Buckets))
	}
	for i := range wh.Buckets {
		if gh.Buckets[i] != wh.Buckets[i] {
			t.Errorf("bucket %d: parsed %d, want %d", i, gh.Buckets[i], wh.Buckets[i])
		}
	}
	// Companion gauges must be folded into the histogram, not left behind.
	for _, suffix := range []string{"_p50", "_p95", "_p99", "_max", "_max_seq"} {
		if _, ok := got.Gauges["empart_phys_read_ns"+suffix]; ok {
			t.Errorf("companion gauge %s not folded into histogram", suffix)
		}
	}
}

func TestPrometheusGolden(t *testing.T) {
	// The exact series emitted for a small, fixed registry. Guards the format
	// emtop's scoped parser (and any real Prometheus scraper) depends on.
	r := New()
	r.Counter("reads_total", "reads").Add(5)
	r.Gauge("depth", "queue depth").Set(2)
	r.Info("phase", "active phase", "phase").Set("merge")
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP reads_total reads
# TYPE reads_total counter
reads_total 5
# HELP depth queue depth
# TYPE depth gauge
depth 2
# HELP phase active phase
# TYPE phase gauge
phase{phase="merge"} 1
`
	if b.String() != want {
		t.Errorf("exposition:\n%s\nwant:\n%s", b.String(), want)
	}
}

func TestHistogramExemplarTracksMax(t *testing.T) {
	r := New()
	h := r.Histogram("lat_ns", "latency", "ns")
	h.ObserveEx(50, 1)
	h.ObserveEx(5000, 42) // the max
	h.ObserveEx(70, 99)
	snap := r.Snapshot().Histograms["lat_ns"]
	if snap.Max != 5000 {
		t.Fatalf("Max = %d, want 5000", snap.Max)
	}
	if snap.MaxSeq != 42 {
		t.Errorf("MaxSeq = %d, want 42 (the span that observed the max)", snap.MaxSeq)
	}
}

// otlpDoc is the subset of the OTLP/JSON metrics document the tests inspect.
type otlpDoc struct {
	ResourceMetrics []struct {
		Resource struct {
			Attributes []struct {
				Key   string `json:"key"`
				Value struct {
					StringValue *string `json:"stringValue"`
				} `json:"value"`
			} `json:"attributes"`
		} `json:"resource"`
		ScopeMetrics []struct {
			Metrics []struct {
				Name string `json:"name"`
				Sum  *struct {
					IsMonotonic            bool `json:"isMonotonic"`
					AggregationTemporality int  `json:"aggregationTemporality"`
					DataPoints             []struct {
						AsInt string `json:"asInt"`
					} `json:"dataPoints"`
				} `json:"sum"`
				Histogram *struct {
					DataPoints []struct {
						Count          string    `json:"count"`
						BucketCounts   []string  `json:"bucketCounts"`
						ExplicitBounds []float64 `json:"explicitBounds"`
						Exemplars      []struct {
							AsInt              string `json:"asInt"`
							FilteredAttributes []struct {
								Key   string `json:"key"`
								Value struct {
									IntValue *string `json:"intValue"`
								} `json:"value"`
							} `json:"filteredAttributes"`
						} `json:"exemplars"`
					} `json:"dataPoints"`
				} `json:"histogram"`
			} `json:"metrics"`
		} `json:"scopeMetrics"`
	} `json:"resourceMetrics"`
}

func TestMetricsOTLPRoundTrip(t *testing.T) {
	r := populate(t)
	raw, err := r.OTLP("test-svc", time.Unix(1700000000, 0))
	if err != nil {
		t.Fatal(err)
	}
	var doc otlpDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("OTLP output is not valid JSON: %v", err)
	}
	if len(doc.ResourceMetrics) != 1 || len(doc.ResourceMetrics[0].ScopeMetrics) != 1 {
		t.Fatalf("want one resourceMetrics with one scopeMetrics, got %+v", doc.ResourceMetrics)
	}
	var svc string
	for _, a := range doc.ResourceMetrics[0].Resource.Attributes {
		if a.Key == "service.name" && a.Value.StringValue != nil {
			svc = *a.Value.StringValue
		}
	}
	if svc != "test-svc" {
		t.Errorf("service.name = %q, want test-svc", svc)
	}
	byName := map[string]int{}
	ms := doc.ResourceMetrics[0].ScopeMetrics[0].Metrics
	for i, m := range ms {
		byName[m.Name] = i
	}
	i, ok := byName["empart_logical_reads_total"]
	if !ok {
		t.Fatal("counter missing from OTLP export")
	}
	sum := ms[i].Sum
	if sum == nil || !sum.IsMonotonic || sum.AggregationTemporality != 2 {
		t.Errorf("counter sum malformed: %+v", sum)
	}
	if len(sum.DataPoints) != 1 || sum.DataPoints[0].AsInt != "1234" {
		t.Errorf("counter value: %+v, want asInt 1234", sum.DataPoints)
	}
	j, ok := byName["empart_phys_read_ns"]
	if !ok {
		t.Fatal("histogram missing from OTLP export")
	}
	hist := ms[j].Histogram
	if hist == nil || len(hist.DataPoints) != 1 {
		t.Fatalf("histogram malformed: %+v", hist)
	}
	dp := hist.DataPoints[0]
	if dp.Count != "4" {
		t.Errorf("histogram count = %s, want 4", dp.Count)
	}
	if len(dp.BucketCounts) != len(dp.ExplicitBounds)+1 {
		t.Errorf("bucketCounts %d and explicitBounds %d violate len(counts) == len(bounds)+1",
			len(dp.BucketCounts), len(dp.ExplicitBounds))
	}
	if len(dp.Exemplars) != 1 {
		t.Fatalf("want one exemplar on the max bucket, got %d", len(dp.Exemplars))
	}
	ex := dp.Exemplars[0]
	if ex.AsInt != "2000000" {
		t.Errorf("exemplar value = %s, want the max observation 2000000", ex.AsInt)
	}
	if len(ex.FilteredAttributes) != 1 || ex.FilteredAttributes[0].Key != "empart.span_seq" ||
		ex.FilteredAttributes[0].Value.IntValue == nil || *ex.FilteredAttributes[0].Value.IntValue != "13" {
		t.Errorf("exemplar attributes = %+v, want empart.span_seq=13", ex.FilteredAttributes)
	}
}

func TestRenderDashboard(t *testing.T) {
	r := populate(t)
	out := RenderDashboard(r.Snapshot(), 0)
	for _, want := range []string{
		"phase: extsort/merge",
		"depth=3",
		"reads=1.2k",
		"phys_read",
		"span#13", // exemplar seq of the slowest phys read
		"extsort/merge=7",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("dashboard frame missing %q:\n%s", want, out)
		}
	}
	// Width clamping never splits a line past the limit.
	for _, line := range strings.Split(RenderDashboard(r.Snapshot(), 20), "\n") {
		if n := len([]rune(line)); n > 20 {
			t.Errorf("line %q is %d runes, want <= 20", line, n)
		}
	}
}

func TestSparkline(t *testing.T) {
	if got := sparkline(nil); got != "" {
		t.Errorf("sparkline(nil) = %q, want empty", got)
	}
	if got := sparkline([]int64{0, 0}); got != "" {
		t.Errorf("sparkline(zeros) = %q, want empty", got)
	}
	got := sparkline([]int64{1, 0, 8})
	runes := []rune(got)
	if len(runes) != 3 || runes[1] != ' ' || runes[2] != '█' {
		t.Errorf("sparkline([1 0 8]) = %q", got)
	}
}

func TestPprofSmoke(t *testing.T) {
	s, err := Serve("127.0.0.1:0", New())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	resp, err := http.Get("http://" + s.Addr() + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof index: %s", resp.Status)
	}
	if !strings.Contains(string(body), "goroutine") {
		t.Errorf("pprof index does not list profiles:\n%.200s", body)
	}
}

func TestServeContextShutsDownOnCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	s, err := ServeContext(ctx, "127.0.0.1:0", New())
	if err != nil {
		t.Fatal(err)
	}
	url := s.URL()
	if resp, err := http.Get(url); err != nil {
		t.Fatalf("scrape before cancel: %v", err)
	} else {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	cancel()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := http.Get(url); err != nil {
			break // listener gone: shutdown happened
		}
		if time.Now().After(deadline) {
			t.Fatal("server still serving 5s after context cancel")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := s.Close(); err != nil {
		t.Errorf("Close after context shutdown: %v", err)
	}
	if err := s.Err(); err != nil {
		t.Errorf("Err after clean shutdown: %v", err)
	}
}

func TestServeCloseIsIdempotent(t *testing.T) {
	s, err := Serve("127.0.0.1:0", New())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("first Close: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

func TestServeRejectsBadAddress(t *testing.T) {
	if _, err := Serve("256.256.256.256:http", New()); err == nil {
		t.Fatal("Serve on a bad address did not fail")
	}
}

func TestProgressGuardsDegenerateSamples(t *testing.T) {
	// Zero totals, negative counters and Done > Total must never print NaN,
	// Inf or a percentage outside [0, 100].
	var sb safeBuilder
	for _, p := range []Progress{
		{Done: 0, Total: 0},
		{Done: -5, Total: -1},
		{Done: 10, Total: 0},
		{Done: 200, Total: 100},
	} {
		r := &Reporter{w: &sb, fn: func() Progress { return p }, start: time.Now().Add(-time.Second),
			stop: make(chan struct{}), done: make(chan struct{})}
		r.emit(p)
	}
	out := sb.String()
	for _, bad := range []string{"NaN", "Inf", "-%"} {
		if strings.Contains(out, bad) {
			t.Errorf("progress output contains %q:\n%s", bad, out)
		}
	}
	if !strings.Contains(out, "(100.0%)") {
		t.Errorf("Done > Total should clamp to 100%%:\n%s", out)
	}
	if strings.Contains(out, "(200") {
		t.Errorf("unclamped over-100%% percentage leaked:\n%s", out)
	}
}

// safeBuilder is a strings.Builder safe for the Reporter's locking pattern.
type safeBuilder struct{ strings.Builder }
