package emio

// Live-metrics wiring for the EM machine. An IOMetrics bundles the handles
// the I/O hot paths record through: logical block reads/writes with
// latencies, physical transfers with latencies and coalesced-run sizes,
// pipeline queue depth, prefetch hits/misses, free-extent reuse, live
// disk/scratch gauges, and the phase stack fed by span boundaries.
//
// The determinism contract matches the tracer's: recording reads the wall
// clock and bumps atomics, but performs no simulated I/O, no budgeted
// allocation and no random draws, so logical Stats, trace span trees and all
// outputs are bit-identical with metrics enabled or disabled (the metrics
// parity suite proves it). With metrics disabled every hot-path site is one
// nil check.
//
// Handles are bound per recording role (algorithm goroutine, write-behind
// worker, prefetch goroutines), so concurrent recording never contends on a
// cache line; see package metrics.

import (
	"sync/atomic"

	"repro/internal/emio/metrics"
)

// IOMetrics is the live instrument bundle of one Disk. Create it by calling
// Disk.EnableMetrics with a registry; several Disks may share one registry
// (registration is idempotent and counters accumulate), which is how a
// multi-system benchmark serves a single scrape endpoint.
type IOMetrics struct {
	reg *metrics.Registry

	// Algorithm-goroutine handles: logical block transfers. The EM model is
	// sequential, so exactly one goroutine records these.
	logReads, logWrites   *metrics.CounterHandle
	logReadNS, logWriteNS *metrics.HistogramHandle
	corruptions           *metrics.CounterHandle // checksum mismatches surfaced to readers

	// Job-lifecycle events: cooperative cancellations and disk-quota
	// rejections. Bumped from whichever goroutine triggers them (a signal
	// handler for cancels) — handles are goroutine-safe.
	cancels      *metrics.CounterHandle
	quotaRejects *metrics.CounterHandle

	// Gauges (single atomics; updated from whichever goroutine owns the
	// underlying quantity).
	liveBlocks   *metrics.Gauge
	liveScratch  *metrics.Gauge
	queueDepth   *metrics.Gauge
	backingBytes *metrics.Gauge

	// Phase telemetry, fed by span boundaries (Ctx.StartSpan / Span.End)
	// whether or not a tracer is attached. The stack itself is mutated only
	// on the algorithm goroutine; observers read the atomic Info/Gauge.
	// curSeq publishes the innermost span's sequence number so latency
	// observations on any goroutine can carry it as an exemplar.
	phaseInfo   *metrics.Info
	phaseDepth  *metrics.Gauge
	phaseStarts *metrics.CounterVec
	phaseStack  []phaseFrame
	curSeq      atomic.Int64
}

// phaseFrame is one open span on the metrics phase stack.
type phaseFrame struct {
	name string
	seq  int64
}

// newIOMetrics registers the disk-level instruments on reg and binds the
// algorithm-goroutine handles.
func newIOMetrics(reg *metrics.Registry) *IOMetrics {
	m := &IOMetrics{reg: reg}
	m.logReads = reg.Counter("empart_logical_reads_total",
		"logical block reads charged to the EM cost model").Handle()
	m.logWrites = reg.Counter("empart_logical_writes_total",
		"logical block writes charged to the EM cost model").Handle()
	m.logReadNS = reg.Histogram("empart_logical_read_ns",
		"latency of one logical block read, store roundtrip included", "ns").Handle()
	m.logWriteNS = reg.Histogram("empart_logical_write_ns",
		"latency of one logical block write (enqueue time under write-behind)", "ns").Handle()
	m.corruptions = reg.Counter("empart_corruption_detected_total",
		"block reads rejected by CRC32C checksum verification").Handle()
	m.cancels = reg.Counter("empart_job_cancels_total",
		"jobs cancelled cooperatively (signal, context, admission)").Handle()
	m.quotaRejects = reg.Counter("empart_disk_quota_rejections_total",
		"block appends rejected by the disk-byte budget").Handle()
	m.liveBlocks = reg.Gauge("empart_live_disk_blocks",
		"blocks currently held by unreleased files")
	m.liveScratch = reg.Gauge("empart_live_scratch_files",
		"algorithm scratch files currently live")
	m.queueDepth = reg.Gauge("empart_write_queue_depth",
		"blocks staged or queued behind the write-behind worker")
	m.backingBytes = reg.Gauge("empart_backing_bytes",
		"high-water byte size of the backing file (0 for memory disks)")
	m.phaseInfo = reg.Info("empart_phase",
		"innermost algorithm phase currently executing", "name")
	m.phaseDepth = reg.Gauge("empart_phase_depth",
		"nesting depth of the live phase stack")
	m.phaseStarts = reg.CounterVec("empart_phase_started_total",
		"phase spans started, by phase name", "phase")
	return m
}

// Registry returns the registry the instruments live on.
func (m *IOMetrics) Registry() *metrics.Registry { return m.reg }

// Snapshot captures every metric on the registry.
func (m *IOMetrics) Snapshot() metrics.Snapshot { return m.reg.Snapshot() }

// pushPhase records a span start: returns the stack depth to restore at End.
func (m *IOMetrics) pushPhase(name string, seq int64) int {
	depth := len(m.phaseStack)
	m.phaseStack = append(m.phaseStack, phaseFrame{name: name, seq: seq})
	m.phaseInfo.Set(name)
	m.phaseDepth.Set(int64(depth + 1))
	m.curSeq.Store(seq)
	m.phaseStarts.With(name).Inc()
	return depth
}

// popPhaseTo truncates the phase stack back to depth (span end, including
// error unwinds past nested Ends).
func (m *IOMetrics) popPhaseTo(depth int) {
	if depth < 0 || depth > len(m.phaseStack) {
		return
	}
	m.phaseStack = m.phaseStack[:depth]
	top, seq := "", int64(0)
	if depth > 0 {
		top, seq = m.phaseStack[depth-1].name, m.phaseStack[depth-1].seq
	}
	m.phaseInfo.Set(top)
	m.phaseDepth.Set(int64(depth))
	m.curSeq.Store(seq)
}

// storeMetrics binds the physical-layer handles of one fileStore, one handle
// per recording role so the algorithm goroutine, the write-behind worker and
// the prefetch goroutines each own their shard.
type storeMetrics struct {
	physReads   *metrics.CounterHandle // synchronous reads (algorithm goroutine)
	prefReads   *metrics.CounterHandle // prefetch goroutines
	physWrites  *metrics.CounterHandle // sync appends or the write worker
	physReadNS  *metrics.HistogramHandle
	prefReadNS  *metrics.HistogramHandle
	physWriteNS *metrics.HistogramHandle

	writeRunBlocks *metrics.HistogramHandle // blocks per coalesced positioned write
	readRunBlocks  *metrics.HistogramHandle // blocks per coalesced prefetch read

	// io_uring backend instruments, recorded at submission time (zero-valued
	// histograms when the ring is not armed).
	uringSQEBatch *metrics.HistogramHandle // SQEs handed to the kernel per enter
	uringInflight *metrics.HistogramHandle // submissions in flight at enter time

	prefetchHits   *metrics.CounterHandle
	prefetchMisses *metrics.CounterHandle
	extentReuses   *metrics.CounterHandle
	extentFrees    *metrics.CounterHandle

	queueDepth   *metrics.Gauge
	backingBytes *metrics.Gauge

	// seq points at the owning IOMetrics' curSeq so pipeline goroutines can
	// stamp exemplars with the span that enqueued the work.
	seq *atomic.Int64
}

// newStoreMetrics registers the physical-layer instruments and binds the
// per-role handles.
func newStoreMetrics(m *IOMetrics) *storeMetrics {
	reg := m.reg
	physR := reg.Counter("empart_phys_reads_total",
		"positioned read syscalls issued to the backing file")
	physW := reg.Counter("empart_phys_writes_total",
		"positioned write syscalls issued to the backing file")
	physRNS := reg.Histogram("empart_phys_read_ns",
		"latency of one positioned backing-file read", "ns")
	physWNS := reg.Histogram("empart_phys_write_ns",
		"latency of one positioned backing-file write", "ns")
	return &storeMetrics{
		physReads:   physR.Handle(),
		prefReads:   physR.Handle(),
		physWrites:  physW.Handle(),
		physReadNS:  physRNS.Handle(),
		prefReadNS:  physRNS.Handle(),
		physWriteNS: physWNS.Handle(),
		writeRunBlocks: reg.Histogram("empart_phys_write_run_blocks",
			"logical blocks retired per coalesced positioned write", "blocks").Handle(),
		readRunBlocks: reg.Histogram("empart_phys_read_run_blocks",
			"logical blocks fetched per coalesced prefetch read", "blocks").Handle(),
		uringSQEBatch: reg.Histogram("empart_uring_sqe_batch",
			"SQEs handed to the kernel per io_uring_enter", "sqes").Handle(),
		uringInflight: reg.Histogram("empart_uring_queue_depth",
			"ring submissions in flight at enter time", "sqes").Handle(),
		prefetchHits: reg.Counter("empart_prefetch_hits_total",
			"sequential reads served from a read-ahead staging buffer").Handle(),
		prefetchMisses: reg.Counter("empart_prefetch_misses_total",
			"reads that fell back to a direct positioned read").Handle(),
		extentReuses: reg.Counter("empart_extent_reuses_total",
			"block appends served from the free-extent list").Handle(),
		extentFrees: reg.Counter("empart_extent_frees_total",
			"block extents returned to the free list by releases").Handle(),
		queueDepth:   m.queueDepth,
		backingBytes: m.backingBytes,
		seq:          &m.curSeq,
	}
}
