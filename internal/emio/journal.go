package emio

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
)

// Journal is an append-only crash-safe record log: the durable spine of
// checkpoint/resume. Each record is framed as
//
//	[4B LE magic "EMJ1"] [4B LE payload length] [4B LE CRC32C(payload)] [payload]
//
// Append writes a frame and fsyncs, so a record returned as written is
// durable. AppendLazy writes the frame without the fsync — group commit:
// a later Append or Sync makes every earlier lazy record durable with one
// fsync, which is how the checkpoint layer amortizes per-run records into
// a single phase barrier. Open replays the longest valid prefix and
// truncates the file after it — the torn-write rule: a crash leaves at
// most one partial or corrupt trailing frame (plus, for lazy records lost
// to a power cut, a clean missing tail), which the CRC (or a short read,
// or a bad magic) rejects, and the job resumes from the last record that
// survived. Payloads are opaque bytes; the extsort checkpoint layer
// stores JSON phase manifests in them.
type Journal struct {
	fd   *os.File
	path string
	off  int64 // byte offset of the durable end (next record lands here)
	recs int   // records in the journal, replayed + appended
}

const (
	journalMagic   = 0x314a4d45 // "EMJ1", little-endian
	journalHdrSize = 12
	// journalMaxRec bounds one record; larger lengths in a header mean a torn
	// or corrupt frame, not a real record.
	journalMaxRec = 1 << 26
)

// CreateJournal creates (or truncates) a journal at path.
func CreateJournal(path string) (*Journal, error) {
	fd, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("emio: create journal: %w", err)
	}
	return &Journal{fd: fd, path: path}, nil
}

// OpenJournal opens the journal at path (creating an empty one if absent),
// replays every valid record and truncates a torn tail. It returns the
// journal positioned for appending plus the replayed payloads in append
// order.
func OpenJournal(path string) (*Journal, [][]byte, error) {
	fd, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("emio: open journal: %w", err)
	}
	j := &Journal{fd: fd, path: path}
	recs, err := j.replay()
	if err != nil {
		fd.Close()
		return nil, nil, err
	}
	return j, recs, nil
}

// replay scans records from the head, stopping at the first frame that is
// short, mis-tagged, oversized or fails its CRC, and truncates the file
// there. Everything before that point was fsynced by an Append that
// returned, so stopping at the first bad frame never discards a durable
// record.
func (j *Journal) replay() ([][]byte, error) {
	var out [][]byte
	var hdr [journalHdrSize]byte
	off := int64(0)
	for {
		if n, err := j.fd.ReadAt(hdr[:], off); err != nil || n < journalHdrSize {
			break
		}
		magic := binary.LittleEndian.Uint32(hdr[0:4])
		length := binary.LittleEndian.Uint32(hdr[4:8])
		sum := binary.LittleEndian.Uint32(hdr[8:12])
		if magic != journalMagic || length > journalMaxRec {
			break
		}
		payload := make([]byte, length)
		if n, err := j.fd.ReadAt(payload, off+journalHdrSize); err != nil || n < int(length) {
			break
		}
		if crc32.Checksum(payload, castagnoliTable) != sum {
			break
		}
		out = append(out, payload)
		off += journalHdrSize + int64(length)
		j.recs++
	}
	if err := j.fd.Truncate(off); err != nil {
		return nil, fmt.Errorf("emio: truncate torn journal tail: %w", err)
	}
	j.off = off
	return out, nil
}

// Append frames, writes and fsyncs one record. When Append returns nil the
// record — and every AppendLazy record before it — is durable; when it
// fails the journal must be considered dead (the tail may be torn) and the
// job should surface the error rather than journal on.
func (j *Journal) Append(payload []byte) error {
	if err := j.AppendLazy(payload); err != nil {
		return err
	}
	return j.Sync()
}

// AppendLazy frames and writes one record without fsyncing it: the record
// survives a process crash (the page cache outlives the process) but not
// necessarily a power cut until a later Append or Sync commits it. The
// checkpoint layer uses this for per-run records, paying one fsync at the
// phase barrier instead of one per run.
func (j *Journal) AppendLazy(payload []byte) error {
	if len(payload) > journalMaxRec {
		return fmt.Errorf("emio: journal record of %d bytes exceeds limit %d", len(payload), journalMaxRec)
	}
	rec := make([]byte, journalHdrSize+len(payload))
	binary.LittleEndian.PutUint32(rec[0:4], journalMagic)
	binary.LittleEndian.PutUint32(rec[4:8], uint32(len(payload)))
	binary.LittleEndian.PutUint32(rec[8:12], crc32.Checksum(payload, castagnoliTable))
	copy(rec[journalHdrSize:], payload)
	if _, err := j.fd.WriteAt(rec, j.off); err != nil {
		return fmt.Errorf("emio: journal append: %w", err)
	}
	j.off += int64(len(rec))
	j.recs++
	return nil
}

// Sync fsyncs the journal, committing every lazily appended record.
func (j *Journal) Sync() error {
	if err := j.fd.Sync(); err != nil {
		return fmt.Errorf("emio: journal fsync: %w", err)
	}
	return nil
}

// Records returns the number of valid records in the journal (replayed plus
// appended).
func (j *Journal) Records() int { return j.recs }

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// Close closes the journal file.
func (j *Journal) Close() error { return j.fd.Close() }
