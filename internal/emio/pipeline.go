package emio

// The asynchronous prefetch/write-behind pipeline of the file-backed store.
//
// Determinism contract: the EM model, its I/O counters, fault hooks, tracer
// spans and memory accounting all live on the (single) algorithm goroutine —
// AppendBlock/ReadBlock count and fault-check *before* reaching the store,
// and the store's logical state (extents, free lists, the append cursor)
// mutates synchronously at enqueue time. Only physical ReadAt/WriteAt calls
// move to background goroutines. Consequently Stats, trace trees and outputs
// are bit-identical with the pipeline on, off, or under GOMAXPROCS=1.
//
// Write-behind: append encodes the block straight into the tail of a shared
// batch buffer on the algorithm goroutine; when the batch holds QueueDepth
// blocks it is handed to one background worker over a bounded channel
// (backpressure = the small pool of batch buffers). Consecutive appends
// allocate adjacent extents in the common case, so the worker usually retires
// a whole batch with a single large positioned write. Batching on the
// algorithm side is deliberate: it costs one channel operation per batch, not
// per block, which matters on machines where a goroutine handoff is as
// expensive as the syscall it replaces. Physical write failures are recorded
// per file and surface deterministically at the next operation on that file,
// at Writer.Close (which syncs), and at Disk.Close.
//
// Read-ahead: a sequential reader passes a depth hint; the store prefetches
// the next run of up-to-PrefetchDepth *contiguous* blocks with one coalesced
// ReadAt into a pooled staging buffer on a background goroutine, chaining
// the next prefetch while the current staging buffer is being consumed, so
// the disk stays busy while the algorithm computes. Random access simply
// misses the staging window and falls back to direct reads.

import (
	"errors"
	"log/slog"
	"sync"
	"syscall"
	"time"
)

// errShortPrefetch marks a ring read-ahead window whose completion returned
// fewer bytes than the window; the consumer drops the chain and re-reads the
// block synchronously, so the short window degrades instead of failing.
var errShortPrefetch = errors.New("emio: short prefetch completion")

// batchOp locates one encoded block inside a writeBatch: nbytes of payload
// bound for backing offset off on behalf of f. Ops are laid out back-to-back
// in the batch buffer in append order.
type batchOp struct {
	f      *File
	off    int64
	nbytes int
}

// writeBatch is the unit handed to the write worker: up to QueueDepth
// encoded blocks in one buffer, with per-block destination records.
type writeBatch struct {
	buf []byte
	ops []batchOp
}

func (b *writeBatch) reset() {
	b.buf = b.buf[:0]
	b.ops = b.ops[:0]
}

// prefetchState is one in-flight (or completed) coalesced read-ahead: blocks
// [from, from+count) of a file, contiguous in the backing file starting at
// startOff, read into buf[:nbytes] by a background goroutine that closes
// done when finished. next chains the following window so consumption and
// prefetch overlap.
type prefetchState struct {
	from, count int
	startOff    int64
	nbytes      int
	buf         []byte
	err         error
	done        chan struct{}
	// ring marks a window submitted to the io_uring backend: its done is
	// closed by a completion callback, so waiters must drive the CQ
	// (waitPrefetch) rather than just park on the channel.
	ring bool
	next *prefetchState
}

func (ps *prefetchState) covers(i int) bool { return i >= ps.from && i < ps.from+ps.count }

// asyncState holds the concurrent half of a pipelined fileStore. Everything
// outside mu is either owned by the algorithm goroutine, transferred through
// a channel, or synchronized by a done channel.
type asyncState struct {
	wq         chan *writeBatch
	workerDone chan struct{}
	batchPool  chan *writeBatch // recycled batch buffers (bounds in-flight memory)
	batchCap   int              // batch buffer capacity in bytes
	cur        *writeBatch      // batch being filled (algorithm goroutine only)
	stageBufs  chan []byte      // pooled prefetch staging buffers
	stageCap   int              // staging buffer capacity in bytes

	mu      sync.Mutex
	cond    *sync.Cond
	pending map[*File]int // queued-but-unwritten blocks per file
	// Sticky physical write failures, first per file, in failure order.
	// Each is reported exactly once: delivered flips when the error reaches
	// a caller (the next op on the file, Sync, Writer.Close), and
	// stopAsync/Disk.Close surface only the errors nothing else delivered —
	// never a second copy of one already reported.
	errs    []*stickyErr
	fileErr map[*File]*stickyErr

	pf map[*File]*prefetchState // head of each file's read-ahead chain

	// testWriteErr, when set (tests only, before any I/O), injects a failure
	// into the physical write path below the queue.
	testWriteErr func(off int64) error
}

// stickyErr is one recorded asynchronous write failure and whether it has
// been reported to a caller yet. Guarded by asyncState.mu.
type stickyErr struct {
	err       error
	delivered bool
}

// startAsync arms the pipeline: allocates the queues and pools and starts
// the write-behind worker.
func (s *fileStore) startAsync() {
	blockBytes := s.pad(s.size * elemBytes)
	a := &asyncState{
		wq:         make(chan *writeBatch, 1),
		workerDone: make(chan struct{}),
		batchPool:  make(chan *writeBatch, 3),
		batchCap:   s.pipe.QueueDepth * blockBytes,
		stageBufs:  make(chan []byte, 3),
		stageCap:   s.pipe.PrefetchDepth * blockBytes,
		pending:    make(map[*File]int),
		fileErr:    make(map[*File]*stickyErr),
		pf:         make(map[*File]*prefetchState),
	}
	a.cond = sync.NewCond(&a.mu)
	s.async = a
	if s.ring != nil {
		// Pre-fill both pools so every buffer the pipeline will ever cycle
		// exists up front and can be registered with the ring as a fixed
		// buffer. The pools are sized to cover the maximum simultaneously
		// circulating buffers, so getBatch/getStageBuf fall back to fresh
		// (unregistered, plain-opcode) allocations only in corner cases.
		for i := 0; i < cap(a.batchPool); i++ {
			buf := alignedBytes(a.batchCap, s.direct)
			s.regBufs = append(s.regBufs, buf)
			a.batchPool <- &writeBatch{buf: buf[:0], ops: make([]batchOp, 0, s.pipe.QueueDepth)}
		}
		for i := 0; i < cap(a.stageBufs); i++ {
			buf := alignedBytes(a.stageCap, s.direct)
			s.regBufs = append(s.regBufs, buf)
			a.stageBufs <- buf
		}
	}
	go s.writeWorker()
}

// stopAsync drains and joins the worker and all in-flight prefetches,
// returning the first physical write failure that no earlier operation
// (next-op check, Sync, Writer.Close) already reported. Errors delivered
// once are not re-reported here, so a failure surfaced at Writer.Close does
// not come back as a second distinct error at Disk.Close.
func (s *fileStore) stopAsync() error {
	a := s.async
	s.flushCur()
	close(a.wq)
	<-a.workerDone
	for f := range a.pf {
		s.dropPrefetch(f)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, se := range a.errs {
		if !se.delivered {
			se.delivered = true
			if d := s.disk; d != nil {
				d.log(slog.LevelError, "unreported write-behind failure surfaced at close")
			}
			return se.err
		}
	}
	return nil
}

// --- buffer pools ---------------------------------------------------------

func (s *fileStore) getBatch() *writeBatch {
	a := s.async
	select {
	case b := <-a.batchPool:
		return b
	default:
		return &writeBatch{
			buf: alignedBytes(a.batchCap, s.direct)[:0],
			ops: make([]batchOp, 0, s.pipe.QueueDepth),
		}
	}
}

func (s *fileStore) putBatch(b *writeBatch) {
	b.reset()
	select {
	case s.async.batchPool <- b:
	default:
	}
}

func (s *fileStore) getStageBuf() []byte {
	select {
	case b := <-s.async.stageBufs:
		return b
	default:
		return alignedBytes(s.async.stageCap, s.direct)
	}
}

func (s *fileStore) putStageBuf(b []byte) {
	b = b[:cap(b)]
	select {
	case s.async.stageBufs <- b:
	default:
	}
}

// --- write-behind ---------------------------------------------------------

// stageWrite encodes payload for backing offset off into the tail of the
// current batch on the algorithm goroutine, registering the block as pending,
// and hands the batch to the worker once it holds QueueDepth blocks.
func (s *fileStore) stageWrite(f *File, payload []Elem, off int64) {
	a := s.async
	b := a.cur
	if b == nil {
		b = s.getBatch()
		a.cur = b
	}
	nbytes := len(payload) * elemBytes
	pn := s.pad(nbytes)
	start := len(b.buf)
	b.buf = b.buf[:start+pn]
	encodeElems(b.buf[start:start+nbytes], payload, s.bulk)
	clear(b.buf[start+nbytes : start+pn])
	b.ops = append(b.ops, batchOp{f: f, off: off, nbytes: pn})
	a.mu.Lock()
	a.pending[f]++
	a.mu.Unlock()
	if sm := s.sm.Load(); sm != nil {
		sm.queueDepth.Add(1)
	}
	if len(b.ops) >= s.pipe.QueueDepth {
		s.flushCur()
	}
}

// flushCur hands the in-progress batch to the worker, blocking only when the
// worker is behind by a full queue (backpressure).
func (s *fileStore) flushCur() {
	a := s.async
	if a.cur == nil || len(a.cur.ops) == 0 {
		return
	}
	b := a.cur
	a.cur = nil
	a.wq <- b
}

// writeWorker is the single background writer: it retires each batch by
// coalescing runs of offset-adjacent blocks into one positioned write each.
func (s *fileStore) writeWorker() {
	a := s.async
	defer close(a.workerDone)
	for b := range a.wq {
		s.flushBatch(b)
		s.putBatch(b)
	}
}

// flushBatch writes one batch. The blocks sit back-to-back in b.buf in
// append order and their extents are consecutive in the common case, so a
// batch is typically a single large write instead of QueueDepth small ones;
// free-list seams split it into a few runs at worst.
func (s *fileStore) flushBatch(b *writeBatch) {
	if s.ring != nil && s.faultLayerIdle() {
		s.flushBatchUring(b)
		return
	}
	pos := 0
	for start := 0; start < len(b.ops); {
		end := start + 1
		nb := b.ops[start].nbytes
		for end < len(b.ops) && b.ops[end].off == b.ops[start].off+int64(nb) {
			nb += b.ops[end].nbytes
			end++
		}
		err := s.physWrite(b.ops[start].f.name, b.buf[pos:pos+nb], b.ops[start].off)
		if sm := s.sm.Load(); sm != nil && err == nil {
			sm.writeRunBlocks.Observe(int64(end - start))
		}
		s.completeOps(b.ops[start:end], err)
		pos += nb
		start = end
	}
}

// faultLayerIdle reports that no injector, retry policy or test fault hook is
// armed. The batched ring submission below is only taken then: scripted fault
// schedules are keyed by per-kind physical-op index, and runPhys must see one
// attempt call per transfer in a deterministic order, which the sequential
// per-run path guarantees and a multi-run async batch would not. With the
// fault layer armed, runs still reach the device through the ring — one
// submission per attempt inside runPhys — so fault/retry semantics wrap ring
// completions exactly as they wrap syscall returns.
func (s *fileStore) faultLayerIdle() bool {
	if s.async != nil && s.async.testWriteErr != nil {
		return false
	}
	d := s.disk
	return d == nil || (d.Injector() == nil && d.retry == nil)
}

// flushBatchUring retires one batch through the ring: every coalesced run is
// prepped as one SQE and the whole set is handed to the kernel with a single
// io_uring_enter, then completions are collected in submission order. Runs
// are windowed by the ring's slot count so a batch wider than the SQ cannot
// deadlock on slot acquisition.
func (s *fileStore) flushBatchUring(b *writeBatch) {
	type runSpan struct {
		start, end int // b.ops[start:end]
		buf        []byte
		off        int64
	}
	var runs []runSpan
	pos := 0
	for start := 0; start < len(b.ops); {
		end := start + 1
		nb := b.ops[start].nbytes
		for end < len(b.ops) && b.ops[end].off == b.ops[start].off+int64(nb) {
			nb += b.ops[end].nbytes
			end++
		}
		runs = append(runs, runSpan{start: start, end: end, buf: b.buf[pos : pos+nb], off: b.ops[start].off})
		pos += nb
		start = end
	}
	r := s.ring
	reqs := make([]uringReq, 0, len(runs))
	for lo := 0; lo < len(runs); {
		// Acquire up to a window of slots, submit the window with one enter,
		// then collect its completions in order.
		reqs = reqs[:0]
		hi := lo
		for hi < len(runs) {
			var slot uint32
			var ok bool
			if hi == lo {
				slot, ok = r.acquire()
			} else {
				slot, ok = r.tryAcquire()
			}
			if !ok {
				break
			}
			reqs = append(reqs, uringReq{op: opWrite, buf: runs[hi].buf, off: runs[hi].off, slot: slot})
			hi++
		}
		if len(reqs) == 0 {
			// Ring died; fail the remaining ops through the usual completion
			// plumbing so pending counts and sticky errors stay consistent.
			for _, rn := range runs[lo:] {
				s.completeOps(b.ops[rn.start:rn.end], syscall.EIO)
			}
			return
		}
		submitErr := r.submit(reqs)
		if submitErr != nil {
			// The SQEs may sit unconsumed in the dead ring; the slots must
			// never be reused.
			for range reqs {
				r.retire()
			}
		}
		sm := s.sm.Load()
		// Completions are collected in submission order; time each run as the
		// delta since the previous one was collected so the histogram stays
		// comparable to the syscall path, which times every write on its own.
		t0 := time.Now()
		for i, req := range reqs {
			rn := runs[lo+i]
			var err error
			if submitErr != nil {
				err = submitErr
			} else {
				res := r.wait(req.slot)
				r.release(req.slot)
				err = r.finishRW(opWrite, res, req.buf, req.off)
			}
			s.physW.Add(1)
			if sm != nil {
				sm.physWrites.Inc()
				now := time.Now()
				sm.physWriteNS.ObserveEx(int64(now.Sub(t0)), sm.seq.Load())
				t0 = now
				if err == nil {
					sm.writeRunBlocks.Observe(int64(rn.end - rn.start))
				}
			}
			s.completeOps(b.ops[rn.start:rn.end], err)
		}
		lo += len(reqs)
	}
}

// completeOps retires written (or failed) ops: records errors, decrements
// pending counts and wakes waiters. A failure is wrapped per op, naming the
// file and its backing offset, so a sticky error surfacing much later — at
// the next operation, Writer.Close or Disk.Close — still identifies exactly
// which write was lost.
func (s *fileStore) completeOps(ops []batchOp, err error) {
	a := s.async
	a.mu.Lock()
	for _, op := range ops {
		if err != nil {
			if a.fileErr[op.f] == nil {
				se := &stickyErr{err: storeWriteError(s.disk, op.f.name, op.off, err)}
				if errors.Is(err, ErrCancelled) {
					// A write abandoned because the job was cancelled is an
					// expected teardown outcome, not a lost-data signal: keep
					// it sticky so the next operation on the file fails fast,
					// but never resurface it at Disk.Close after the job has
					// already reported the cancellation.
					se.delivered = true
				}
				a.fileErr[op.f] = se
				a.errs = append(a.errs, se)
				if d := s.disk; d != nil {
					d.log(slog.LevelError, "write-behind failure recorded",
						slog.String("file", op.f.name), slog.Int64("off", op.off))
				}
			}
		}
		a.pending[op.f]--
		if a.pending[op.f] == 0 {
			delete(a.pending, op.f)
		}
	}
	a.cond.Broadcast()
	a.mu.Unlock()
	if sm := s.sm.Load(); sm != nil {
		sm.queueDepth.Add(-int64(len(ops)))
	}
}

// drainFile blocks until every pending write of f has completed and returns
// f's sticky physical write error, if any. Called on the algorithm
// goroutine, so it must push the in-progress batch first — some of f's
// pending blocks may still be sitting in it.
func (s *fileStore) drainFile(f *File) error {
	a := s.async
	a.mu.Lock()
	if a.pending[f] > 0 {
		a.mu.Unlock()
		s.flushCur()
		a.mu.Lock()
		for a.pending[f] > 0 {
			a.cond.Wait()
		}
	}
	err := deliverLocked(a.fileErr[f])
	a.mu.Unlock()
	return err
}

// deliverLocked marks a sticky error as reported and returns it (nil-safe).
// Callers hold asyncState.mu.
func deliverLocked(se *stickyErr) error {
	if se == nil {
		return nil
	}
	se.delivered = true
	return se.err
}

// drainFileQuiet waits out f's pending writes and detaches its error state
// from the per-file map: the release path, where the file is going away
// regardless. An error nobody reported yet stays queued for Disk.Close — a
// lost write still signals device trouble even if its file was discarded.
func (s *fileStore) drainFileQuiet(f *File) {
	a := s.async
	a.mu.Lock()
	if a.pending[f] > 0 {
		a.mu.Unlock()
		s.flushCur()
		a.mu.Lock()
		for a.pending[f] > 0 {
			a.cond.Wait()
		}
	}
	delete(a.fileErr, f)
	a.mu.Unlock()
}

// fileError returns f's sticky physical write error without waiting.
func (s *fileStore) fileError(f *File) error {
	a := s.async
	a.mu.Lock()
	err := deliverLocked(a.fileErr[f])
	a.mu.Unlock()
	return err
}

// --- read-ahead -----------------------------------------------------------

// pipelineRead serves block i of f (len(dst) = its element count), using the
// file's read-ahead chain when it covers the block and falling back to a
// direct positioned read otherwise. ahead > 0 is the sequential-intent hint
// that keeps the chain primed. Called only after drainFile(f), so no write
// to f is in flight.
func (s *fileStore) pipelineRead(f *File, i int, dst []Elem, ahead int) (int, error) {
	a := s.async
	// Advance the chain past fully consumed windows; discard it entirely on
	// a non-sequential access (the staging window no longer matches).
	for {
		ps := a.pf[f]
		if ps == nil || ps.covers(i) {
			break
		}
		if i >= ps.from+ps.count && ps.next != nil {
			s.waitPrefetch(ps)
			s.putStageBuf(ps.buf)
			a.pf[f] = ps.next
			continue
		}
		s.dropPrefetch(f)
		break
	}
	if ps := a.pf[f]; ps != nil && ps.covers(i) {
		s.waitPrefetch(ps)
		if ps.err == nil {
			if sm := s.sm.Load(); sm != nil {
				sm.prefetchHits.Inc()
			}
			off := int(f.extents[i] - ps.startOff)
			decodeElems(dst, ps.buf[off:off+len(dst)*elemBytes], s.bulk)
			if ahead > 0 && ps.next == nil {
				ps.next = s.startPrefetch(f, ps.from+ps.count, ahead)
			}
			if i == ps.from+ps.count-1 {
				s.putStageBuf(ps.buf)
				if ps.next != nil {
					a.pf[f] = ps.next
				} else {
					delete(a.pf, f)
				}
			}
			return len(dst), nil
		}
		// Prefetch failed: drop the chain and retry the block directly so a
		// transient staging failure reports exactly like a synchronous one.
		s.dropPrefetch(f)
	}
	sm := s.sm.Load()
	if sm != nil {
		sm.prefetchMisses.Inc()
	}
	raw := s.scratch[:s.pad(len(dst)*elemBytes)]
	s.physR.Add(1)
	var t0 time.Time
	if sm != nil {
		t0 = time.Now()
	}
	err := s.readAtPhys(f.name, raw, f.extents[i])
	if sm != nil {
		sm.physReads.Inc()
		sm.physReadNS.ObserveEx(int64(time.Since(t0)), sm.seq.Load())
	}
	if err != nil {
		return 0, storeReadError(f.name, f.extents[i], err)
	}
	decodeElems(dst, raw[:len(dst)*elemBytes], s.bulk)
	if ahead > 0 && a.pf[f] == nil {
		if ps := s.startPrefetch(f, i+1, ahead); ps != nil {
			a.pf[f] = ps
		}
	}
	return len(dst), nil
}

// waitPrefetch blocks until ps's window has completed. Ring-driven windows
// are finished by whoever drains their CQE; with no standing reaper that
// must be the waiter itself, so it drives the completion queue while it
// waits. Goroutine-read windows just park on the done channel.
func (s *fileStore) waitPrefetch(ps *prefetchState) {
	if ps.ring {
		s.ring.waitDone(ps.done)
		return
	}
	<-ps.done
}

// startPrefetch begins an asynchronous coalesced read of up to maxBlocks
// contiguous blocks of f starting at block from, returning nil when there is
// nothing (contiguous) to prefetch. All file metadata is captured before the
// goroutine starts; the goroutine touches only the fd and the staging
// buffer.
func (s *fileStore) startPrefetch(f *File, from, maxBlocks int) *prefetchState {
	if from >= f.nblocks {
		return nil
	}
	startOff := f.extents[from]
	count, nbytes := 0, 0
	for from+count < f.nblocks && count < maxBlocks {
		i := from + count
		bl := s.extentBytes(f, i)
		if nbytes+bl > s.async.stageCap || f.extents[i] != startOff+int64(nbytes) {
			break
		}
		nbytes += bl
		count++
	}
	// A window needs at least two blocks to be worth a goroutine: on files
	// with strided extents (e.g. round-robin scatter output) nothing is
	// contiguous, and a one-block async read costs more in handoff than the
	// syscall it hides.
	if count < 2 {
		return nil
	}
	ps := &prefetchState{
		from:     from,
		count:    count,
		startOff: startOff,
		nbytes:   nbytes,
		buf:      s.getStageBuf(),
		done:     make(chan struct{}),
	}
	if r := s.ring; r != nil && s.faultLayerIdle() {
		// Completion-driven read-ahead: one SQE now, finished by whichever
		// goroutine drains its CQE — no goroutine per window. A short or
		// failed completion just records ps.err; pipelineRead then drops the
		// chain and re-reads the block synchronously (through the ring, and
		// through runPhys if the fault layer armed itself in the meantime).
		ps.ring = true
		s.physR.Add(1)
		sm := s.sm.Load()
		var t0 time.Time
		if sm != nil {
			t0 = time.Now()
		}
		err := r.submitCallback(opRead, ps.buf[:ps.nbytes], ps.startOff, func(res int32) {
			var err error
			if res >= 0 && int(res) != ps.nbytes {
				err = errShortPrefetch
			} else if res < 0 {
				err = syscall.Errno(-res)
			}
			if sm != nil {
				sm.prefReads.Inc()
				sm.prefReadNS.ObserveEx(int64(time.Since(t0)), sm.seq.Load())
				if err == nil {
					sm.readRunBlocks.Observe(int64(ps.count))
				}
			}
			ps.err = err
			close(ps.done)
		})
		if err == nil {
			return ps
		}
		// Submission failed (cb will not run): complete the window as failed
		// so the consumer falls back to a synchronous read.
		ps.ring = false
		ps.err = err
		close(ps.done)
		return ps
	}
	go func() {
		s.physR.Add(1)
		sm := s.sm.Load()
		var t0 time.Time
		if sm != nil {
			t0 = time.Now()
		}
		err := s.readAtPhys(f.name, ps.buf[:ps.nbytes], ps.startOff)
		if sm != nil {
			sm.prefReads.Inc()
			sm.prefReadNS.ObserveEx(int64(time.Since(t0)), sm.seq.Load())
			if err == nil {
				sm.readRunBlocks.Observe(int64(ps.count))
			}
		}
		ps.err = err
		close(ps.done)
	}()
	return ps
}

// dropPrefetch waits out and recycles every window of f's read-ahead chain.
func (s *fileStore) dropPrefetch(f *File) {
	for ps := s.async.pf[f]; ps != nil; ps = ps.next {
		s.waitPrefetch(ps)
		s.putStageBuf(ps.buf)
	}
	delete(s.async.pf, f)
}
