//go:build linux && (amd64 || arm64 || riscv64)

package emio

// A pure-Go io_uring backend over raw syscalls: io_uring_setup creates the
// ring, the SQ/CQ rings and SQE array are mmap'd into the process, and
// io_uring_enter submits and waits. No cgo and no external packages; the
// build tag names exactly the Linux ports where syscall numbers 425–427 are
// those of io_uring_setup/enter/register.
//
// Concurrency model: many goroutines submit (the algorithm goroutine, the
// write-behind worker, shard workers), and whichever goroutine is blocked on
// the ring drives the completion queue itself. Submitters take a slot from a
// bounded free list — the slot index is the SQE's user_data — prep their
// SQEs under a mutex and flush them with a single enter. A single drive
// token (a one-slot channel) is the license to consume the CQ: a goroutine
// that needs a completion, a free slot, or a prefetch window either parks on
// its own wakeup channel or wins the token, drains every available CQE —
// dispatching each to its slot's channel (synchronous waiters) or callback
// (prefetch completions) — and blocks in enter(GETEVENTS) for the next one.
// There is no standing reaper goroutine: the first design had one, and the
// two thread wakeups it added per I/O cost ~100x the blocking syscall it
// replaced on fast devices. With the waiter driving, a synchronous transfer
// is two thin syscalls and zero scheduler round-trips, and batched
// submissions amortize even the first. The free list doubles as
// backpressure: in-flight submissions never exceed the SQ size, so the CQ
// (twice the SQ by default) cannot overflow. The store closes the ring only
// after the pipeline has drained; close still drives the CQ until every
// slot has retired, so late prefetch completions land before the mappings
// are released.
//
// Registered resources: the backing file is registered once (fixed-file index
// 0) and the store's pooled transfer buffers — batch, staging and scratch —
// are registered as fixed buffers, so the common case submits
// READ_FIXED/WRITE_FIXED opcodes that skip per-I/O pinning. Registration
// failures (e.g. RLIMIT_MEMLOCK) degrade to the plain READ/WRITE opcodes.
// SQPOLL is optional: the kernel poller consumes SQEs without any enter
// syscall, woken with IORING_ENTER_SQ_WAKEUP when it has gone idle; setups
// where SQPOLL is unavailable fall back to a normal ring.

import (
	"fmt"
	"io"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"syscall"
	"unsafe"
)

// Raw io_uring ABI. Syscall numbers are identical on amd64, arm64 and
// riscv64 (the build tag admits exactly those).
const (
	sysIOUringSetup    = 425
	sysIOUringEnter    = 426
	sysIOUringRegister = 427

	uringOffSQRing = 0
	uringOffCQRing = 0x8000000
	uringOffSQEs   = 0x10000000

	uringEnterGetEvents = 1 << 0
	uringEnterSQWakeup  = 1 << 1

	uringSetupSQPoll    = 1 << 1
	uringFeatSingleMmap = 1 << 0

	uringOpNop        = 0
	uringOpReadFixed  = 4
	uringOpWriteFixed = 5
	uringOpRead       = 22
	uringOpWrite      = 23

	uringRegisterBuffers = 0
	uringRegisterFiles   = 2

	uringSQEFixedFile = 1 << 0
	uringSQNeedWakeup = 1 << 0
)

// uringParams is struct io_uring_params (120 bytes).
type uringParams struct {
	sqEntries    uint32
	cqEntries    uint32
	flags        uint32
	sqThreadCPU  uint32
	sqThreadIdle uint32
	features     uint32
	wqFD         uint32
	resv         [3]uint32
	sqOff        uringSQOffsets
	cqOff        uringCQOffsets
}

// uringSQOffsets is struct io_sqring_offsets.
type uringSQOffsets struct {
	head, tail, ringMask, ringEntries, flags, dropped, array, resv1 uint32
	userAddr                                                        uint64
}

// uringCQOffsets is struct io_cqring_offsets.
type uringCQOffsets struct {
	head, tail, ringMask, ringEntries, overflow, cqes, flags, resv1 uint32
	userAddr                                                        uint64
}

// uringSQE is struct io_uring_sqe (64 bytes).
type uringSQE struct {
	opcode      uint8
	flags       uint8
	ioprio      uint16
	fd          int32
	off         uint64
	addr        uint64
	len         uint32
	rwFlags     uint32
	userData    uint64
	bufIndex    uint16
	personality uint16
	spliceFDIn  int32
	pad         [2]uint64
}

// uringCQE is struct io_uring_cqe (16 bytes).
type uringCQE struct {
	userData uint64
	res      int32
	flags    uint32
}

// uringSlot tracks one in-flight submission. ch carries the raw CQE result
// to a synchronous waiter; when cb is non-nil whoever drains the CQE calls it
// instead and recycles the slot. cb is set and cleared under uring.mu.
type uringSlot struct {
	ch chan int32
	cb func(res int32)
}

// uring is one io_uring instance bound to one backing file.
type uring struct {
	ringFD    int
	sqEntries uint32
	sqpoll    bool

	sqMem, cqMem, sqeMem []byte
	singleMmap           bool

	sqHead, sqTail, sqFlags *uint32
	sqMask                  uint32
	sqArray                 []uint32
	sqes                    []uringSQE

	cqHead, cqTail *uint32
	cqMask         uint32
	cqes           []uringCQE

	regFile   bool  // backing file registered at fixed-file index 0
	fileFD    int32 // raw backing fd, used when !regFile
	fixedBufs [][]byte

	mu          sync.Mutex // serializes SQE prep + flush
	unsubmitted uint32     // prepped SQEs the kernel has not consumed (non-SQPOLL)

	slots     []uringSlot
	freeSlots chan uint32
	// retired counts slots permanently withdrawn after submission errors (a
	// late completion could race their reuse); close() accounts for them.
	retired atomic.Uint32
	// slotWaiters counts goroutines committed to a blocking enter(GETEVENTS)
	// while waiting for a free slot. Slot release is channel-side — no CQE
	// backs it — so release() must poke the ring with a NOP when such a waiter
	// exists, or a slot freed after the waiter's last re-check could leave it
	// blocked in the kernel with no completion ever coming.
	slotWaiters atomic.Int32

	// drive is the CQ-ownership token: holding it licenses drain/enter on
	// the completion side. dead is closed when the ring fails hard; every
	// waiter selects on it so nothing hangs on a broken ring.
	drive    chan struct{}
	dead     chan struct{}
	closed   bool
	closeErr error

	// sm aliases the owning store's metrics pointer so submissions can record
	// batch-size and in-flight histograms when telemetry is attached.
	sm *atomic.Pointer[storeMetrics]
}

// newUring builds a ring of the given depth over f. SQPOLL is attempted when
// asked for and degrades — first to a non-SQPOLL ring when setup refuses it,
// entirely to nil,err when even that fails (the store then falls back to the
// syscall paths).
func newUring(f *os.File, depth int, sqpoll bool) (*uring, error) {
	if depth < 1 {
		depth = DefaultUringDepth
	}
	u, err := setupRing(uint32(depth), sqpoll)
	if err != nil && sqpoll {
		u, err = setupRing(uint32(depth), false)
	}
	if err != nil {
		return nil, err
	}
	u.fileFD = int32(f.Fd())
	u.regFile = u.registerFileLocked(u.fileFD)
	if u.sqpoll && !u.regFile {
		// SQPOLL can only touch registered files; without the registration the
		// poller would fail every SQE, so trade the poller away instead.
		u.destroy()
		if u, err = setupRing(uint32(depth), false); err != nil {
			return nil, err
		}
		u.fileFD = int32(f.Fd())
		u.regFile = u.registerFileLocked(u.fileFD)
	}
	return u, nil
}

// setupRing performs io_uring_setup, maps the three ring regions and builds
// the slot table. The kernel rounds entries up to a power of two; all sizes
// below use what it reports back.
func setupRing(entries uint32, sqpoll bool) (*uring, error) {
	var p uringParams
	if sqpoll {
		p.flags = uringSetupSQPoll
		p.sqThreadIdle = 1000 // ms before the poller sleeps and asks for a wakeup
	}
	fd, _, errno := syscall.Syscall(sysIOUringSetup, uintptr(entries), uintptr(unsafe.Pointer(&p)), 0)
	if errno != 0 {
		return nil, fmt.Errorf("emio: io_uring_setup: %w", errno)
	}
	u := &uring{ringFD: int(fd), sqEntries: p.sqEntries, sqpoll: sqpoll}
	if err := u.mmapRings(&p); err != nil {
		syscall.Close(u.ringFD)
		return nil, err
	}
	for i := range u.sqArray {
		// Identity map: SQE i lives at array slot i; only the tail moves.
		u.sqArray[i] = uint32(i)
	}
	u.slots = make([]uringSlot, p.sqEntries)
	u.freeSlots = make(chan uint32, p.sqEntries)
	for i := uint32(0); i < p.sqEntries; i++ {
		u.slots[i].ch = make(chan int32, 1)
		u.freeSlots <- i
	}
	u.drive = make(chan struct{}, 1)
	u.drive <- struct{}{}
	u.dead = make(chan struct{})
	return u, nil
}

// mmapRings maps the SQ ring, CQ ring and SQE array and resolves the cursor
// pointers from the kernel-reported offsets. Modern kernels serve SQ and CQ
// from a single mapping (IORING_FEAT_SINGLE_MMAP).
func (u *uring) mmapRings(p *uringParams) error {
	sqSize := int(p.sqOff.array) + int(p.sqEntries)*4
	cqSize := int(p.cqOff.cqes) + int(p.cqEntries)*int(unsafe.Sizeof(uringCQE{}))
	u.singleMmap = p.features&uringFeatSingleMmap != 0
	if u.singleMmap && cqSize > sqSize {
		sqSize = cqSize
	}
	prot, flags := syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED|syscall.MAP_POPULATE
	sqMem, err := syscall.Mmap(u.ringFD, uringOffSQRing, sqSize, prot, flags)
	if err != nil {
		return fmt.Errorf("emio: mmap sq ring: %w", err)
	}
	u.sqMem = sqMem
	if u.singleMmap {
		u.cqMem = sqMem
	} else {
		cqMem, err := syscall.Mmap(u.ringFD, uringOffCQRing, cqSize, prot, flags)
		if err != nil {
			u.munmapAll()
			return fmt.Errorf("emio: mmap cq ring: %w", err)
		}
		u.cqMem = cqMem
	}
	sqeMem, err := syscall.Mmap(u.ringFD, uringOffSQEs, int(p.sqEntries)*int(unsafe.Sizeof(uringSQE{})), prot, flags)
	if err != nil {
		u.munmapAll()
		return fmt.Errorf("emio: mmap sqe array: %w", err)
	}
	u.sqeMem = sqeMem
	at := func(mem []byte, off uint32) *uint32 { return (*uint32)(unsafe.Pointer(&mem[off])) }
	u.sqHead = at(sqMem, p.sqOff.head)
	u.sqTail = at(sqMem, p.sqOff.tail)
	u.sqMask = *at(sqMem, p.sqOff.ringMask)
	u.sqFlags = at(sqMem, p.sqOff.flags)
	u.sqArray = unsafe.Slice((*uint32)(unsafe.Pointer(&sqMem[p.sqOff.array])), p.sqEntries)
	u.cqHead = at(u.cqMem, p.cqOff.head)
	u.cqTail = at(u.cqMem, p.cqOff.tail)
	u.cqMask = *at(u.cqMem, p.cqOff.ringMask)
	u.cqes = unsafe.Slice((*uringCQE)(unsafe.Pointer(&u.cqMem[p.cqOff.cqes])), p.cqEntries)
	u.sqes = unsafe.Slice((*uringSQE)(unsafe.Pointer(&sqeMem[0])), p.sqEntries)
	return nil
}

func (u *uring) munmapAll() {
	if u.sqeMem != nil {
		syscall.Munmap(u.sqeMem)
		u.sqeMem = nil
	}
	if u.cqMem != nil && !u.singleMmap {
		syscall.Munmap(u.cqMem)
	}
	u.cqMem = nil
	if u.sqMem != nil {
		syscall.Munmap(u.sqMem)
		u.sqMem = nil
	}
}

// destroy tears down a ring that never started its reaper (setup fallbacks).
func (u *uring) destroy() {
	u.munmapAll()
	syscall.Close(u.ringFD)
}

// enter wraps io_uring_enter, retrying the transient errnos: EINTR (signal),
// and EAGAIN/EBUSY (kernel out of internal resources / CQ pressure).
func (u *uring) enter(toSubmit, minComplete, flags uint32) (uint32, error) {
	for {
		n, _, errno := syscall.Syscall6(sysIOUringEnter, uintptr(u.ringFD),
			uintptr(toSubmit), uintptr(minComplete), uintptr(flags), 0, 0)
		switch errno {
		case 0:
			return uint32(n), nil
		case syscall.EINTR:
		case syscall.EAGAIN, syscall.EBUSY:
			runtime.Gosched()
		default:
			return 0, fmt.Errorf("emio: io_uring_enter: %w", errno)
		}
	}
}

// register wraps io_uring_register.
func (u *uring) register(op uintptr, arg unsafe.Pointer, n uintptr) error {
	if _, _, errno := syscall.Syscall6(sysIOUringRegister, uintptr(u.ringFD),
		op, uintptr(arg), n, 0, 0); errno != 0 {
		return errno
	}
	return nil
}

// registerFileLocked registers fd as fixed file 0; reports success.
func (u *uring) registerFileLocked(fd int32) bool {
	fds := [1]int32{fd}
	return u.register(uringRegisterFiles, unsafe.Pointer(&fds[0]), 1) == nil
}

// registerBuffers pins bufs as fixed buffers so transfers inside them can use
// the *_FIXED opcodes. Best effort: on failure (commonly RLIMIT_MEMLOCK) the
// ring keeps working with the plain opcodes. The registered slices are
// retained so their memory stays live for the ring's lifetime.
func (u *uring) registerBuffers(bufs [][]byte) {
	if len(bufs) == 0 {
		return
	}
	iovs := make([]syscall.Iovec, len(bufs))
	for i, b := range bufs {
		iovs[i].Base = &b[0]
		iovs[i].SetLen(len(b))
	}
	if u.register(uringRegisterBuffers, unsafe.Pointer(&iovs[0]), uintptr(len(iovs))) != nil {
		return
	}
	u.fixedBufs = bufs
}

// fixedIndex reports the registered buffer wholly containing buf, if any.
// The table holds at most a handful of pooled buffers, so a linear scan is
// cheaper than any index.
func (u *uring) fixedIndex(buf []byte) (uint16, bool) {
	if len(u.fixedBufs) == 0 || len(buf) == 0 {
		return 0, false
	}
	a := uintptr(unsafe.Pointer(&buf[0]))
	for i, rb := range u.fixedBufs {
		base := uintptr(unsafe.Pointer(&rb[0]))
		if a >= base && a+uintptr(len(buf)) <= base+uintptr(len(rb)) {
			return uint16(i), true
		}
	}
	return 0, false
}

func (u *uring) storeMetrics() *storeMetrics {
	if u.sm == nil {
		return nil
	}
	return u.sm.Load()
}

// --- submission -----------------------------------------------------------

// acquire takes a free slot, driving the completion queue if none is free
// (a slot can only come back by retiring a completion, and there may be no
// other goroutine around to do it). Fails only when the ring has died.
func (u *uring) acquire() (uint32, bool) {
	return await(u, u.freeSlots, true)
}

// tryAcquire takes a free slot only when one is immediately available; it
// never blocks and never drives the completion queue. Batched submitters use
// it to widen a submission window without committing to a wait.
func (u *uring) tryAcquire() (uint32, bool) {
	select {
	case slot := <-u.freeSlots:
		return slot, true
	default:
		return 0, false
	}
}

// release returns a slot to the free list. The release is channel-side — no
// CQE announces it — so when a driver has committed to a blocking
// enter(GETEVENTS) waiting for exactly this event, a NOP is submitted to
// manufacture the completion that wakes it.
func (u *uring) release(slot uint32) {
	u.freeSlots <- slot
	if u.slotWaiters.Load() > 0 {
		u.poke()
	}
}

// wait blocks for slot's completion and returns the raw CQE result. The
// waiter drives the CQ itself when it wins the drive token.
func (u *uring) wait(slot uint32) int32 {
	res, ok := await(u, u.slots[slot].ch, false)
	if !ok {
		return -int32(syscall.EIO)
	}
	return res
}

// waitDone blocks until done is closed. Callers use it to wait on prefetch
// windows whose callback only runs when somebody drains the CQE — with no
// standing reaper, that somebody must be the waiter itself. done MUST belong
// to a ring-driven completion (or already be closed): the blocking
// enter(GETEVENTS) inside relies on a CQE being in flight.
func (u *uring) waitDone(done <-chan struct{}) {
	await(u, done, false)
}

// await parks on ready until a value (or close) arrives, while competing for
// the drive token; the winner drains the completion queue and blocks in
// enter(GETEVENTS) for more, dispatching everyone's completions on the way.
// Returns ok=false when the ring is dead.
//
// slotWait marks a waiter whose ready channel is the free-slot list. Every
// other ready event is CQE-backed — the blocking enter is woken by the very
// completion being awaited — but a slot release is a plain channel send, so
// the waiter must register in slotWaiters before committing to the kernel and
// re-check afterwards: either the final re-check sees the released slot, or
// the releaser sees the registration and pokes a NOP completion through the
// ring to wake the enter. (Both sides use sequentially consistent atomics, so
// missing both is impossible.)
func await[T any](u *uring, ready <-chan T, slotWait bool) (T, bool) {
	var zero T
	for {
		select {
		case v := <-ready:
			return v, true
		case <-u.dead:
			return zero, false
		case <-u.drive:
			u.drain()
			// Re-check before blocking in the kernel: the drain may have
			// dispatched the very completion we are waiting on.
			select {
			case v := <-ready:
				u.drive <- struct{}{}
				return v, true
			case <-u.dead:
				u.drive <- struct{}{}
				return zero, false
			default:
			}
			if slotWait {
				u.slotWaiters.Add(1)
				// Final re-check, after the registration is visible: a slot
				// released before it missed both the drain and the poke.
				select {
				case v := <-ready:
					u.slotWaiters.Add(-1)
					u.drive <- struct{}{}
					return v, true
				default:
				}
			}
			_, err := u.enter(0, 1, uringEnterGetEvents)
			if slotWait {
				u.slotWaiters.Add(-1)
			}
			if err == nil {
				u.drain()
			}
			u.drive <- struct{}{}
			if err != nil {
				u.abort()
			}
		}
	}
}

// prepLocked writes one SQE and advances the submission tail. Only under
// SQPOLL can the queue be momentarily full (the poller drains it
// asynchronously); the plain path bounds in-flight SQEs by the slot count.
func (u *uring) prepLocked(op ioOp, buf []byte, off int64, userData uint64) {
	tail := atomic.LoadUint32(u.sqTail)
	for tail-atomic.LoadUint32(u.sqHead) >= u.sqEntries {
		runtime.Gosched()
	}
	sqe := &u.sqes[tail&u.sqMask]
	*sqe = uringSQE{userData: userData}
	if op == opRead {
		sqe.opcode = uringOpRead
	} else {
		sqe.opcode = uringOpWrite
	}
	if idx, ok := u.fixedIndex(buf); ok {
		if op == opRead {
			sqe.opcode = uringOpReadFixed
		} else {
			sqe.opcode = uringOpWriteFixed
		}
		sqe.bufIndex = idx
	}
	if u.regFile {
		sqe.fd = 0
		sqe.flags = uringSQEFixedFile
	} else {
		sqe.fd = u.fileFD
	}
	sqe.off = uint64(off)
	if len(buf) > 0 {
		sqe.addr = uint64(uintptr(unsafe.Pointer(&buf[0])))
	}
	sqe.len = uint32(len(buf))
	atomic.StoreUint32(u.sqTail, tail+1)
}

// prepNopLocked queues a NOP (shutdown poison, probe round-trips).
func (u *uring) prepNopLocked(userData uint64) {
	tail := atomic.LoadUint32(u.sqTail)
	for tail-atomic.LoadUint32(u.sqHead) >= u.sqEntries {
		runtime.Gosched()
	}
	u.sqes[tail&u.sqMask] = uringSQE{opcode: uringOpNop, fd: -1, userData: userData}
	atomic.StoreUint32(u.sqTail, tail+1)
}

// flushLocked hands n freshly prepped SQEs to the kernel: one io_uring_enter
// for the whole batch — or none at all under SQPOLL, unless the poller went
// idle and wants a wakeup.
func (u *uring) flushLocked(n uint32) error {
	if sm := u.storeMetrics(); sm != nil {
		sm.uringSQEBatch.Observe(int64(n))
		sm.uringInflight.Observe(int64(len(u.slots) - len(u.freeSlots)))
	}
	return u.flushRawLocked(n)
}

// flushRawLocked is flushLocked without the telemetry: pokes go through here
// so wakeup NOPs do not pollute the SQE-batch and queue-depth histograms.
func (u *uring) flushRawLocked(n uint32) error {
	if u.sqpoll {
		if atomic.LoadUint32(u.sqFlags)&uringSQNeedWakeup != 0 {
			_, err := u.enter(0, 0, uringEnterSQWakeup)
			return err
		}
		return nil
	}
	u.unsubmitted += n
	for u.unsubmitted > 0 {
		done, err := u.enter(u.unsubmitted, 0, 0)
		if err != nil {
			return err
		}
		u.unsubmitted -= done
	}
	return nil
}

// pokeData is the reserved user_data of wakeup NOPs; it can never collide
// with a slot index, and dispatch drops its CQEs on the floor.
const pokeData = ^uint64(0)

// poke submits a NOP whose completion wakes a driver blocked in
// enter(GETEVENTS) — the manufactured CQE for events (slot releases) that the
// kernel cannot see. Rare by construction: only taken when slotWaiters
// reports a waiter committed to the kernel, i.e. the ring was saturated.
func (u *uring) poke() {
	u.mu.Lock()
	select {
	case <-u.dead:
		u.mu.Unlock()
		return
	default:
	}
	u.prepNopLocked(pokeData)
	err := u.flushRawLocked(1)
	u.mu.Unlock()
	if err != nil {
		u.abort()
	}
}

// submit preps every request and flushes them with a single enter. Callers
// own the reqs' slots and collect results with wait; on error they must
// retire those slots (the SQEs may sit unconsumed in the ring). A flush
// failure is an io_uring_enter hard error, so it also kills the ring —
// better every waiter fails fast than some hang on completions that will
// never be produced.
func (u *uring) submit(reqs []uringReq) error {
	u.mu.Lock()
	select {
	case <-u.dead:
		u.mu.Unlock()
		return syscall.EIO
	default:
	}
	for _, r := range reqs {
		u.prepLocked(r.op, r.buf, r.off, uint64(r.slot))
	}
	err := u.flushLocked(uint32(len(reqs)))
	u.mu.Unlock()
	if err != nil {
		u.abort()
	}
	return err
}

// submitCallback preps one transfer whose completion is dispatched to cb
// with the raw CQE result by whichever goroutine drains it; the slot is
// recycled after cb returns. cb runs on an arbitrary driving goroutine and
// must not block on ring completions. On error cb is guaranteed not to run,
// so the caller can fall back synchronously.
func (u *uring) submitCallback(op ioOp, buf []byte, off int64, cb func(res int32)) error {
	slot, ok := u.acquire()
	if !ok {
		return syscall.EIO
	}
	u.mu.Lock()
	select {
	case <-u.dead:
		u.mu.Unlock()
		u.release(slot)
		return syscall.EIO
	default:
	}
	u.slots[slot].cb = cb
	u.prepLocked(op, buf, off, uint64(slot))
	err := u.flushLocked(1)
	if err != nil {
		u.slots[slot].cb = nil
	}
	u.mu.Unlock()
	if err != nil {
		u.retire()
		u.abort()
	}
	return err
}

// rw runs one synchronous positioned transfer through the ring: submit one
// SQE, wait for its CQE. Transient errnos and short transfers resubmit the
// remainder, so callers see whole-buffer semantics like ReadAt/WriteAt.
func (u *uring) rw(op ioOp, buf []byte, off int64) error {
	for {
		slot, ok := u.acquire()
		if !ok {
			return syscall.EIO
		}
		if err := u.submit([]uringReq{{op: op, buf: buf, off: off, slot: slot}}); err != nil {
			u.retire()
			return err
		}
		res := u.wait(slot)
		u.release(slot)
		if res >= 0 {
			if int(res) == len(buf) {
				return nil
			}
			if res == 0 {
				if op == opRead {
					return io.ErrUnexpectedEOF
				}
				return io.ErrShortWrite
			}
			buf, off = buf[res:], off+int64(res)
			continue
		}
		if e := syscall.Errno(-res); e != syscall.EINTR && e != syscall.EAGAIN {
			return e
		}
	}
}

func (u *uring) pread(buf []byte, off int64) error  { return u.rw(opRead, buf, off) }
func (u *uring) pwrite(buf []byte, off int64) error { return u.rw(opWrite, buf, off) }

// finishRW resolves the raw CQE result of a batched submission, resubmitting
// transient failures and short-transfer remainders synchronously.
func (u *uring) finishRW(op ioOp, res int32, buf []byte, off int64) error {
	if res >= 0 {
		if int(res) == len(buf) {
			return nil
		}
		if res == 0 {
			if op == opRead {
				return io.ErrUnexpectedEOF
			}
			return io.ErrShortWrite
		}
		buf, off = buf[res:], off+int64(res)
	} else if e := syscall.Errno(-res); e != syscall.EINTR && e != syscall.EAGAIN {
		return e
	}
	return u.rw(op, buf, off)
}

// --- completion -----------------------------------------------------------

// drain consumes every available CQE and dispatches it. The caller holds the
// drive token — the sole license to advance the CQ head.
func (u *uring) drain() {
	for {
		head := atomic.LoadUint32(u.cqHead)
		if head == atomic.LoadUint32(u.cqTail) {
			return
		}
		cqe := u.cqes[head&u.cqMask]
		atomic.StoreUint32(u.cqHead, head+1)
		u.dispatch(cqe)
	}
}

// dispatch routes one CQE to its slot: callback completions run inline (on
// whichever goroutine is driving) and recycle the slot; synchronous waiters
// get the raw result on the slot's one-slot channel. Wakeup NOPs carry no
// slot — their only job was returning the enter that drained them.
func (u *uring) dispatch(cqe uringCQE) {
	if cqe.userData == pokeData {
		return
	}
	slot := uint32(cqe.userData)
	u.mu.Lock()
	cb := u.slots[slot].cb
	u.slots[slot].cb = nil
	u.mu.Unlock()
	if cb != nil {
		cb(cqe.res)
		u.release(slot)
	} else {
		u.slots[slot].ch <- cqe.res
	}
}

// abort marks the ring dead and fails every pending callback so waiters and
// prefetch consumers unblock with EIO instead of hanging. Only reachable when
// io_uring_enter itself fails hard, which a healthy ring never does.
// Idempotent: concurrent aborters race benignly on the dead check.
func (u *uring) abort() {
	u.mu.Lock()
	select {
	case <-u.dead:
		u.mu.Unlock()
		return
	default:
	}
	for i := range u.slots {
		if cb := u.slots[i].cb; cb != nil {
			u.slots[i].cb = nil
			cb(-int32(syscall.EIO))
		}
	}
	close(u.dead)
	u.mu.Unlock()
}

// retire permanently withdraws a slot after a submission error: its SQE may
// sit unconsumed in the ring, and a late completion must not race the slot's
// reuse. close() counts retired slots as settled.
func (u *uring) retire() { u.retired.Add(1) }

// close shuts the ring down. The store calls this only after the pipeline
// has drained its own work, but dropped prefetch windows may still be in
// flight, so close drives the CQ until every slot is back on the free list
// (or permanently retired) before releasing the mappings and the ring fd.
func (u *uring) close() error {
	if u.closed {
		return u.closeErr
	}
	u.closed = true
	for uint32(len(u.freeSlots))+u.retired.Load() < uint32(len(u.slots)) {
		select {
		case <-u.dead:
			goto teardown
		case <-u.drive:
			u.drain()
			var err error
			if uint32(len(u.freeSlots))+u.retired.Load() < uint32(len(u.slots)) {
				// Like acquire, this waits for a channel-side event (slots
				// coming home), so register for release()'s poke before
				// committing to the kernel.
				u.slotWaiters.Add(1)
				if uint32(len(u.freeSlots))+u.retired.Load() < uint32(len(u.slots)) {
					if _, err = u.enter(0, 1, uringEnterGetEvents); err == nil {
						u.drain()
					}
				}
				u.slotWaiters.Add(-1)
			}
			u.drive <- struct{}{}
			if err != nil {
				u.abort()
			}
		}
	}
teardown:
	u.munmapAll()
	u.closeErr = syscall.Close(u.ringFD)
	return u.closeErr
}

// --- capability probe -----------------------------------------------------

var uringProbe struct {
	once sync.Once
	ok   bool
}

// UringSupported reports whether the running kernel accepts io_uring rings —
// a setup plus one NOP submission round-trip, cached for the process.
// Mirrors DirectIOSupported: callers gate Pipeline.Uring on it, and the knob
// silently degrades to the syscall paths when it reports false.
func UringSupported() bool {
	uringProbe.once.Do(func() { uringProbe.ok = probeUring() })
	return uringProbe.ok
}

func probeUring() bool {
	u, err := setupRing(2, false)
	if err != nil {
		return false
	}
	defer u.destroy()
	u.prepNopLocked(0)
	if _, err := u.enter(1, 1, uringEnterGetEvents); err != nil {
		return false
	}
	return atomic.LoadUint32(u.cqHead) != atomic.LoadUint32(u.cqTail)
}
