package emio

import "fmt"

// Stats is a snapshot of the I/O counters of a Disk.
type Stats struct {
	Reads  int64 // block reads performed
	Writes int64 // block writes performed
}

// Total returns Reads + Writes, the cost measure of the EM model.
func (s Stats) Total() int64 { return s.Reads + s.Writes }

// Sub returns the counter deltas s - t. Taking a snapshot before and after an
// algorithm and subtracting yields the algorithm's exact I/O cost.
func (s Stats) Sub(t Stats) Stats {
	return Stats{Reads: s.Reads - t.Reads, Writes: s.Writes - t.Writes}
}

// Add returns the counter sums s + t.
func (s Stats) Add(t Stats) Stats {
	return Stats{Reads: s.Reads + t.Reads, Writes: s.Writes + t.Writes}
}

// String renders the counters for logs and reports.
func (s Stats) String() string {
	return fmt.Sprintf("reads=%d writes=%d total=%d", s.Reads, s.Writes, s.Total())
}
