//go:build linux

package emio

import "syscall"

// oDirectFlag is OR-ed into the open flags of backing files created with
// Pipeline.Direct. Zero on platforms without O_DIRECT (the knob then
// silently degrades to buffered I/O).
const oDirectFlag = syscall.O_DIRECT
