package emio

// The structured event log of the EM machine: the third leg of the telemetry
// bus next to the tracer (post-hoc span tree) and the metrics registry (live
// aggregates). Where those two condense, the event log narrates: every
// noteworthy Disk, pipeline, retry and fault occurrence becomes one
// log/slog record carrying the active span's phase path and sequence number,
// so a retry storm or a checksum failure in a grepped log line points at the
// exact phase of the exact run that caused it.
//
// The determinism contract matches the tracer's and the registry's: emitting
// an event performs no simulated I/O, no budgeted allocation and no random
// draws, so logical Stats, trace JSON and all outputs are bit-identical with
// logging on or off (the telemetry parity suite proves it). With logging
// disabled every emission site is one nil check.
//
// Events fan out to up to three sinks: a bounded in-memory ring (always,
// for post-mortem inspection and tests), a JSON-lines file (LogConfig.Path),
// and an arbitrary extra slog.Handler (LogConfig.Handler — a user's own
// logging stack). Ring and file writes are serialized by one mutex; events
// are rare (faults, retries, phase boundaries at debug level), never
// per-block, so the lock is uncontended in practice.

import (
	"bufio"
	"context"
	"fmt"
	"log/slog"
	"os"
	"sync"
	"time"
)

// LogConfig arms the structured event log of a System (Config.Log). The log
// is enabled when Enabled is set or when any sink is named (a Path or a
// Handler implies intent).
type LogConfig struct {
	Enabled bool
	// Level is the minimum record level kept; the zero value is slog.LevelInfo.
	// Phase-boundary events are emitted at slog.LevelDebug.
	Level slog.Level
	// Ring is the in-memory ring capacity in events; 0 means DefaultLogRing.
	Ring int
	// Path, when nonempty, appends JSON-lines records to this file
	// (created or truncated at attach time).
	Path string
	// Handler, when non-nil, receives every kept record in addition to the
	// ring and file sinks. It must be safe for concurrent use (pipeline
	// goroutines emit retry and write-failure events).
	Handler slog.Handler
}

// DefaultLogRing is the ring capacity used when LogConfig.Ring is zero.
const DefaultLogRing = 256

// armed reports whether the configuration asks for logging at all.
func (lc LogConfig) armed() bool {
	return lc.Enabled || lc.Path != "" || lc.Handler != nil
}

// validate rejects a negative ring capacity.
func (lc LogConfig) validate() error {
	if lc.Ring < 0 {
		return fmt.Errorf("%w: log ring capacity %d < 0", ErrBadConfig, lc.Ring)
	}
	return nil
}

// Event is one rendered record of the in-memory ring: timestamp, level,
// message, and the flattened attribute set (span enrichment included).
type Event struct {
	Time  time.Time
	Level slog.Level
	Msg   string
	Attrs map[string]any
}

// EventLog is the fan-out sink of a disk's structured event stream. It
// implements slog.Handler; attach it (or any other handler) with
// Disk.SetLogHandler / System.SetLogger. Safe for concurrent use.
type EventLog struct {
	level slog.Leveler
	extra slog.Handler

	mu     sync.Mutex
	ring   []Event // circular, fixed capacity
	next   int     // ring write cursor
	count  int     // live events in the ring (<= cap)
	total  int64   // events ever kept
	file   *os.File
	fileW  *bufio.Writer // buffers JSON lines; Flush/Close syncs to disk
	fileH  slog.Handler
	closed bool
}

// NewEventLog builds an event log for the given configuration, opening the
// JSON-lines file when a path is named.
func NewEventLog(cfg LogConfig) (*EventLog, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	ring := cfg.Ring
	if ring == 0 {
		ring = DefaultLogRing
	}
	el := &EventLog{
		level: cfg.Level,
		extra: cfg.Handler,
		ring:  make([]Event, ring),
	}
	if cfg.Path != "" {
		f, err := os.Create(cfg.Path)
		if err != nil {
			return nil, fmt.Errorf("emio: open event log: %w", err)
		}
		el.file = f
		// Buffered: a debug-level run narrates every phase boundary, and one
		// write syscall per event would dominate the emission cost. Flush
		// makes the file current; Close always flushes.
		el.fileW = bufio.NewWriterSize(f, 1<<16)
		el.fileH = slog.NewJSONHandler(el.fileW, &slog.HandlerOptions{Level: cfg.Level})
	}
	return el, nil
}

// Enabled implements slog.Handler.
func (el *EventLog) Enabled(_ context.Context, lvl slog.Level) bool {
	return lvl >= el.level.Level()
}

// Handle implements slog.Handler: the record lands in the ring and is
// forwarded to the file and extra sinks.
func (el *EventLog) Handle(ctx context.Context, r slog.Record) error {
	ev := Event{Time: r.Time, Level: r.Level, Msg: r.Message}
	if r.NumAttrs() > 0 {
		ev.Attrs = make(map[string]any, r.NumAttrs())
		r.Attrs(func(a slog.Attr) bool {
			ev.Attrs[a.Key] = a.Value.Resolve().Any()
			return true
		})
	}
	el.mu.Lock()
	if len(el.ring) > 0 {
		el.ring[el.next] = ev
		el.next = (el.next + 1) % len(el.ring)
		if el.count < len(el.ring) {
			el.count++
		}
	}
	el.total++
	var err error
	if el.fileH != nil && !el.closed {
		err = el.fileH.Handle(ctx, r)
	}
	el.mu.Unlock()
	if el.extra != nil && el.extra.Enabled(ctx, r.Level) {
		if eerr := el.extra.Handle(ctx, r); err == nil {
			err = eerr
		}
	}
	return err
}

// WithAttrs implements slog.Handler by binding attributes into every record.
func (el *EventLog) WithAttrs(attrs []slog.Attr) slog.Handler {
	if len(attrs) == 0 {
		return el
	}
	return &boundHandler{el: el, attrs: attrs}
}

// WithGroup implements slog.Handler. Groups are flattened (the ring stores a
// flat attribute map); the group name prefixes the keys of grouped attrs.
func (el *EventLog) WithGroup(name string) slog.Handler {
	if name == "" {
		return el
	}
	return &boundHandler{el: el, prefix: name + "."}
}

// boundHandler is an EventLog view with pre-bound attributes or a group
// prefix, produced by WithAttrs/WithGroup.
type boundHandler struct {
	el     *EventLog
	attrs  []slog.Attr
	prefix string
}

func (b *boundHandler) Enabled(ctx context.Context, lvl slog.Level) bool {
	return b.el.Enabled(ctx, lvl)
}

func (b *boundHandler) Handle(ctx context.Context, r slog.Record) error {
	r2 := slog.NewRecord(r.Time, r.Level, r.Message, r.PC)
	r2.AddAttrs(b.attrs...)
	if b.prefix == "" {
		r.Attrs(func(a slog.Attr) bool { r2.AddAttrs(a); return true })
	} else {
		r.Attrs(func(a slog.Attr) bool {
			a.Key = b.prefix + a.Key
			r2.AddAttrs(a)
			return true
		})
	}
	return b.el.Handle(ctx, r2)
}

func (b *boundHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	return &boundHandler{el: b.el, attrs: append(append([]slog.Attr{}, b.attrs...), attrs...), prefix: b.prefix}
}

func (b *boundHandler) WithGroup(name string) slog.Handler {
	if name == "" {
		return b
	}
	return &boundHandler{el: b.el, attrs: b.attrs, prefix: b.prefix + name + "."}
}

// Events returns a copy of the ring, oldest first.
func (el *EventLog) Events() []Event {
	el.mu.Lock()
	defer el.mu.Unlock()
	out := make([]Event, 0, el.count)
	start := el.next - el.count
	if start < 0 {
		start += len(el.ring)
	}
	for i := 0; i < el.count; i++ {
		out = append(out, el.ring[(start+i)%len(el.ring)])
	}
	return out
}

// Total returns the number of events ever kept (including ones the ring has
// since overwritten).
func (el *EventLog) Total() int64 {
	el.mu.Lock()
	defer el.mu.Unlock()
	return el.total
}

// Flush forces buffered JSON lines out to the file sink, so the log can be
// tailed mid-run. No-op without a file sink or after Close.
func (el *EventLog) Flush() error {
	el.mu.Lock()
	defer el.mu.Unlock()
	if el.fileW == nil || el.closed {
		return nil
	}
	return el.fileW.Flush()
}

// Close flushes and closes the JSON-lines file sink. The ring and extra
// handler keep working; Close is idempotent.
func (el *EventLog) Close() error {
	el.mu.Lock()
	defer el.mu.Unlock()
	if el.closed {
		return nil
	}
	el.closed = true
	if el.file != nil {
		var ferr error
		if el.fileW != nil {
			ferr = el.fileW.Flush()
		}
		if cerr := el.file.Close(); ferr == nil {
			ferr = cerr
		}
		return ferr
	}
	return nil
}

// spanRef is the published identity of the innermost open span: the
// slash-joined phase path from the root and the span's sequence number.
// Published atomically by the algorithm goroutine at every span boundary so
// the spanHandler can read it from pipeline and retry goroutines.
type spanRef struct {
	path string
	seq  int64
}

// spanHandler enriches every record passing through with the disk's live
// span context (phase path + span seq) and the disk id, making each log
// line attributable to the exact phase — and, with a tracer attached, the
// exact exportable span — that emitted it.
type spanHandler struct {
	inner slog.Handler
	disk  *Disk
}

func (h *spanHandler) Enabled(ctx context.Context, lvl slog.Level) bool {
	return h.inner.Enabled(ctx, lvl)
}

func (h *spanHandler) Handle(ctx context.Context, r slog.Record) error {
	if ref := h.disk.curSpan.Load(); ref != nil && ref.path != "" {
		r.AddAttrs(slog.String("phase", ref.path), slog.Int64("span_seq", ref.seq))
	}
	r.AddAttrs(slog.String("disk", h.disk.id))
	return h.inner.Handle(ctx, r)
}

func (h *spanHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	return &spanHandler{inner: h.inner.WithAttrs(attrs), disk: h.disk}
}

func (h *spanHandler) WithGroup(name string) slog.Handler {
	return &spanHandler{inner: h.inner.WithGroup(name), disk: h.disk}
}

// --- disk-side plumbing -----------------------------------------------------

// SetLogHandler attaches (or, with nil, detaches) a structured log sink to
// the disk. Every emitted record is enriched with the live span context
// before reaching h. Strictly observational: logical Stats, trace JSON and
// all outputs are bit-identical with logging on or off.
func (d *Disk) SetLogHandler(h slog.Handler) {
	if h == nil {
		d.logger = nil
		return
	}
	d.logger = slog.New(&spanHandler{inner: h, disk: d})
}

// AttachEventLog attaches an event log as the disk's log sink and takes
// ownership of it: Disk.Close closes the log's file sink.
func (d *Disk) AttachEventLog(el *EventLog) {
	d.elog = el
	d.SetLogHandler(el)
}

// EventLog returns the attached event log, nil when none is owned by the
// disk (a bare SetLogHandler does not create one).
func (d *Disk) EventLog() *EventLog { return d.elog }

// Logger returns the span-enriching logger, nil when logging is disabled.
// Emissions through it are delivered to the attached sink with phase path,
// span seq and disk id attrs added.
func (d *Disk) Logger() *slog.Logger { return d.logger }

// log emits one event if logging is enabled; the single nil check is the
// entire disabled-path cost.
func (d *Disk) log(level slog.Level, msg string, attrs ...slog.Attr) {
	if d.logger == nil {
		return
	}
	d.logger.LogAttrs(context.Background(), level, msg, attrs...)
}

// pushLogSpan records a span start for log enrichment, returning the stack
// depth to restore at span end.
func (d *Disk) pushLogSpan(name string, seq int64) int {
	depth := len(d.logStack)
	path := name
	if depth > 0 {
		path = d.logStack[depth-1].path + "/" + name
	}
	d.logStack = append(d.logStack, spanRef{path: path, seq: seq})
	ref := d.logStack[depth]
	d.curSpan.Store(&ref)
	return depth
}

// popLogSpanTo truncates the log span stack back to depth (span end,
// including error unwinds past nested Ends) and republishes the top.
func (d *Disk) popLogSpanTo(depth int) {
	if depth < 0 || depth > len(d.logStack) {
		return
	}
	d.logStack = d.logStack[:depth]
	if depth == 0 {
		d.curSpan.Store(&spanRef{})
		return
	}
	ref := d.logStack[depth-1]
	d.curSpan.Store(&ref)
}
