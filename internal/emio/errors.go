package emio

// The typed error taxonomy of the resilience layer. Every failure a physical
// transfer can produce is one of three attributable kinds:
//
//   - CorruptionError: the bytes read back do not match the checksum recorded
//     at write time (bit rot, a torn write, a misdirected read).
//   - TransientError: a physical transfer kept failing with a retryable error
//     until the retry budget ran out (or retry was disabled).
//   - FaultError: a physical or injected failure attributed to a file, block
//     and backing offset — the general wrapper the file and store layers put
//     around any other transfer error.
//
// All three wrap their cause, so errors.Is/As see through them; FaultError
// renders exactly the message formats the pre-typed string wrapping used, so
// error text stays stable for logs and the fault-parity suite.

import (
	"errors"
	"fmt"
	"syscall"
)

// CorruptionError reports a block whose content no longer matches the CRC32C
// checksum recorded when it was written. It names the file, the block index,
// the byte offset of the block in the backing store, and both sums, so a
// corrupted device region can be located from the error alone.
type CorruptionError struct {
	File     string // diagnostic name of the file
	Block    int    // block index within the file
	Off      int64  // byte offset of the block in the backing store
	Stored   uint32 // checksum recorded at write time
	Computed uint32 // checksum of the bytes read back
}

func (e *CorruptionError) Error() string {
	return fmt.Sprintf("emio: corruption in %s block %d at offset %d: stored crc32c 0x%08x, computed 0x%08x",
		e.File, e.Block, e.Off, e.Stored, e.Computed)
}

// TransientError reports a physical transfer that failed with a retryable
// error on every attempt the retry policy allowed. Attempts is the total
// number of attempts made (1 when retry is disabled); Err is the failure of
// the last attempt.
type TransientError struct {
	Op       string // "read" or "write"
	File     string // diagnostic name of the file involved
	Offset   int64  // byte offset of the transfer in the backing store
	Attempts int    // attempts made, including the first
	Err      error  // failure of the last attempt
}

func (e *TransientError) Error() string {
	return fmt.Sprintf("emio: transient %s fault on %s at offset %d persisted after %d attempt(s): %v",
		e.Op, e.File, e.Offset, e.Attempts, e.Err)
}

func (e *TransientError) Unwrap() error { return e.Err }

// FaultError attributes a failed transfer to a file and, when known, a block
// index and backing byte offset. The file layer produces the block form
// ("emio: read f block 3: ..."); the store layers produce the offset form
// ("emio: backing write f at offset 4096: ..."). Block is -1 in the offset
// form; Off is -1 when the backing offset is unknown (memory-backed disks).
type FaultError struct {
	Op    string // "read" or "write"
	File  string // diagnostic name of the file
	Block int    // block index, -1 below block granularity
	Off   int64  // byte offset in the backing store, -1 when unknown
	Err   error  // underlying cause
}

func (e *FaultError) Error() string {
	if e.Block >= 0 {
		return fmt.Sprintf("emio: %s %s block %d: %v", e.Op, e.File, e.Block, e.Err)
	}
	return fmt.Sprintf("emio: backing %s %s at offset %d: %v", e.Op, e.File, e.Off, e.Err)
}

func (e *FaultError) Unwrap() error { return e.Err }

// ErrTransient marks an error as retryable: any error wrapping it is treated
// as a transient device condition by the retry layer. The fault injector
// wraps its transient faults with it.
var ErrTransient = errors.New("emio: transient fault")

// joinErr joins two teardown errors without masking either. When only one is
// non-nil it is returned bare (typed assertions and message text stay
// unchanged on the single-failure path); when the second is already in the
// first's chain it is not duplicated; otherwise both are joined so neither a
// sticky I/O error nor a close failure can swallow the other.
func joinErr(a, b error) error {
	switch {
	case a == nil:
		return b
	case b == nil || errors.Is(a, b):
		return a
	default:
		return errors.Join(a, b)
	}
}

// isTransient reports whether a physical-transfer error is worth retrying:
// anything explicitly marked with ErrTransient, plus the interrupted/busy
// syscall conditions a real device can return.
func isTransient(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, ErrTransient) {
		return true
	}
	return errors.Is(err, syscall.EINTR) || errors.Is(err, syscall.EAGAIN)
}
