package emio

// OTLP/JSON export of the tracer's span forest: the wire form is an
// ExportTraceServiceRequest rendered per the OTLP JSON mapping (trace/span
// ids as hex strings, 64-bit integers as decimal strings), so the output can
// be POSTed to any collector's /v1/traces endpoint or imported into
// Jaeger/Perfetto directly — with zero dependencies, which is the point.
//
// Ids are deterministic functions of the span graph, not random draws (the
// tracer must stay bit-identical run to run): a span's id is its start
// sequence number, and a trace id mixes the root span's seq through
// splitmix64 so distinct roots land in visually distinct traces. Wall-clock
// timestamps come from the spans' observational start/end times; they are
// the only nondeterministic field, exactly as in any real tracing system.

import (
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strconv"
)

// otlpKV is one OTLP attribute: a key and a typed value object.
type otlpKV struct {
	Key   string       `json:"key"`
	Value otlpAnyValue `json:"value"`
}

// otlpAnyValue is the OTLP AnyValue union; exactly one field is set.
// Int values are decimal strings per the OTLP JSON mapping of int64.
type otlpAnyValue struct {
	StringValue *string  `json:"stringValue,omitempty"`
	IntValue    *string  `json:"intValue,omitempty"`
	DoubleValue *float64 `json:"doubleValue,omitempty"`
	BoolValue   *bool    `json:"boolValue,omitempty"`
}

func otlpStr(key, v string) otlpKV {
	return otlpKV{Key: key, Value: otlpAnyValue{StringValue: &v}}
}

func otlpInt(key string, v int64) otlpKV {
	s := strconv.FormatInt(v, 10)
	return otlpKV{Key: key, Value: otlpAnyValue{IntValue: &s}}
}

func otlpAny(key string, v any) otlpKV {
	switch x := v.(type) {
	case string:
		return otlpStr(key, x)
	case int:
		return otlpInt(key, int64(x))
	case int64:
		return otlpInt(key, x)
	case float64:
		return otlpKV{Key: key, Value: otlpAnyValue{DoubleValue: &x}}
	case bool:
		return otlpKV{Key: key, Value: otlpAnyValue{BoolValue: &x}}
	default:
		return otlpStr(key, fmt.Sprint(v))
	}
}

// otlpSpan is one OTLP span. Start/end are unix nanos as decimal strings.
type otlpSpan struct {
	TraceID           string   `json:"traceId"`
	SpanID            string   `json:"spanId"`
	ParentSpanID      string   `json:"parentSpanId,omitempty"`
	Name              string   `json:"name"`
	Kind              int      `json:"kind"`
	StartTimeUnixNano string   `json:"startTimeUnixNano"`
	EndTimeUnixNano   string   `json:"endTimeUnixNano"`
	Attributes        []otlpKV `json:"attributes,omitempty"`
}

type otlpScopeSpans struct {
	Scope otlpScope  `json:"scope"`
	Spans []otlpSpan `json:"spans"`
}

type otlpScope struct {
	Name    string `json:"name"`
	Version string `json:"version,omitempty"`
}

type otlpResource struct {
	Attributes []otlpKV `json:"attributes"`
}

type otlpResourceSpans struct {
	Resource   otlpResource     `json:"resource"`
	ScopeSpans []otlpScopeSpans `json:"scopeSpans"`
}

// otlpTraceRequest is the body of an OTLP/HTTP POST to /v1/traces.
type otlpTraceRequest struct {
	ResourceSpans []otlpResourceSpans `json:"resourceSpans"`
}

// otlpScopeName identifies this library as the instrumentation scope.
const otlpScopeName = "repro/internal/emio"

// spanIDHex renders a span's deterministic 8-byte id from its sequence
// number. Seq is assigned from 1, so the id is never the all-zero invalid id.
func spanIDHex(seq int64) string {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(seq))
	return hex.EncodeToString(b[:])
}

// traceIDHex renders the deterministic 16-byte trace id of the trace rooted
// at root seq: the raw seq in the low half, its splitmix64 image in the high
// half (never all-zero since the low half carries seq >= 1).
func traceIDHex(rootSeq int64) string {
	var b [16]byte
	binary.BigEndian.PutUint64(b[:8], splitmix64(uint64(rootSeq)))
	binary.BigEndian.PutUint64(b[8:], uint64(rootSeq))
	return hex.EncodeToString(b[:])
}

// otlpExport flattens one span subtree, pre-order, into out.
func otlpExport(sp *Span, traceID, parentID string, out *[]otlpSpan) {
	start := sp.startWall
	end := sp.endWall
	if end.Before(start) {
		end = start // still-open span: zero duration rather than negative
	}
	o := otlpSpan{
		TraceID:           traceID,
		SpanID:            spanIDHex(sp.Seq),
		ParentSpanID:      parentID,
		Name:              sp.Name,
		Kind:              1, // SPAN_KIND_INTERNAL
		StartTimeUnixNano: strconv.FormatInt(start.UnixNano(), 10),
		EndTimeUnixNano:   strconv.FormatInt(end.UnixNano(), 10),
	}
	o.Attributes = append(o.Attributes,
		otlpInt("empart.seq", sp.Seq),
		otlpInt("empart.reads", sp.IO.Reads),
		otlpInt("empart.writes", sp.IO.Writes),
		otlpInt("empart.ios", sp.IO.Total()),
		otlpInt("empart.peak_mem", sp.PeakMem),
		otlpInt("empart.peak_disk_blocks", sp.PeakDisk),
		otlpInt("empart.files_created", sp.FilesCreated),
		otlpInt("empart.live_file_delta", sp.LiveFileDelta),
	)
	if sp.Retries != 0 {
		o.Attributes = append(o.Attributes, otlpInt("empart.retries", sp.Retries))
	}
	for _, a := range sp.Attrs {
		o.Attributes = append(o.Attributes, otlpAny("empart.attr."+a.Key, a.Val))
	}
	*out = append(*out, o)
	for _, ch := range sp.orderedChildren() {
		otlpExport(ch, traceID, o.SpanID, out)
	}
}

// OTLP marshals the recorded span forest as an OTLP/JSON
// ExportTraceServiceRequest. Each root span starts its own trace; span and
// trace ids are deterministic functions of the spans' start sequence numbers
// (wall-clock timestamps are the only nondeterministic content). The bytes
// POST directly to an OTLP collector's /v1/traces endpoint.
func (t *Tracer) OTLP(service string) ([]byte, error) {
	var spans []otlpSpan
	for _, r := range t.roots {
		otlpExport(r, traceIDHex(r.Seq), "", &spans)
	}
	req := otlpTraceRequest{
		ResourceSpans: []otlpResourceSpans{{
			Resource: otlpResource{Attributes: []otlpKV{
				otlpStr("service.name", service),
			}},
			ScopeSpans: []otlpScopeSpans{{
				Scope: otlpScope{Name: otlpScopeName},
				Spans: spans,
			}},
		}},
	}
	return json.MarshalIndent(req, "", "  ")
}
