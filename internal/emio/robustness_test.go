package emio

// Tests for the robustness layer: cooperative cancellation semantics, the
// disk-byte budget, the checkpoint journal's torn-write rule, manifest
// adoption, and the Writer.Close error-joining regression.

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"syscall"
	"testing"
)

// --- cancellation ------------------------------------------------------------

func TestCancelStopsLogicalIO(t *testing.T) {
	ctx := mustCtx(t, 64, 8)
	f := ctx.Scratch("victim")
	buf, _ := ctx.AllocElems(8)
	defer ctx.FreeElems(buf)
	copy(buf, seqElems(8))
	if err := f.AppendBlock(buf); err != nil {
		t.Fatalf("append before cancel: %v", err)
	}

	cause := errors.New("operator said stop")
	ctx.Disk().Cancel(cause)

	if err := f.AppendBlock(buf); err == nil {
		t.Fatal("AppendBlock after cancel succeeded")
	} else {
		var ce *CancelledError
		if !errors.As(err, &ce) {
			t.Fatalf("AppendBlock after cancel: got %T (%v), want *CancelledError", err, err)
		}
		if !errors.Is(err, ErrCancelled) {
			t.Errorf("cancelled append does not unwrap to ErrCancelled: %v", err)
		}
		if !errors.Is(err, cause) {
			t.Errorf("cancelled append does not unwrap to its cause: %v", err)
		}
	}
	if _, err := f.ReadBlock(0, buf); err == nil {
		t.Fatal("ReadBlock after cancel succeeded")
	} else if !errors.Is(err, ErrCancelled) {
		t.Errorf("cancelled read: %v, want ErrCancelled", err)
	}

	// No logical I/O may be counted for rejected operations.
	st := ctx.Disk().Stats()
	if st.Reads != 0 || st.Writes != 1 {
		t.Errorf("stats after cancelled ops: %+v, want reads=0 writes=1", st)
	}
	f.Release()
}

func TestCancelFirstCauseWins(t *testing.T) {
	ctx := mustCtx(t, 64, 8)
	first := errors.New("first cause")
	second := errors.New("second cause")
	ctx.Disk().Cancel(first)
	ctx.Disk().Cancel(second)
	err := ctx.Disk().Cancelled()
	if err == nil {
		t.Fatal("Cancelled() nil after Cancel")
	}
	if !errors.Is(err, first) {
		t.Errorf("first cause lost: %v", err)
	}
	if errors.Is(err, second) {
		t.Errorf("second Cancel overwrote the first: %v", err)
	}
}

func TestClearCancelReArmsDisk(t *testing.T) {
	ctx := mustCtx(t, 64, 8)
	ctx.Disk().Cancel(nil)
	if ctx.Disk().Cancelled() == nil {
		t.Fatal("Cancelled() nil after bare Cancel")
	}
	if err := ctx.Err(); !errors.Is(err, ErrCancelled) {
		t.Fatalf("Ctx.Err() = %v, want ErrCancelled", err)
	}
	ctx.Disk().ClearCancel()
	if err := ctx.Disk().Cancelled(); err != nil {
		t.Fatalf("Cancelled() after ClearCancel: %v", err)
	}
	f := ctx.Scratch("revived")
	buf, _ := ctx.AllocElems(8)
	defer ctx.FreeElems(buf)
	if err := f.AppendBlock(buf[:4]); err != nil {
		t.Fatalf("append after ClearCancel: %v", err)
	}
	f.Release()
}

// --- disk budget -------------------------------------------------------------

func TestDiskBudgetMetersAndEnforces(t *testing.T) {
	ctx := mustCtx(t, 64, 8)
	d := ctx.Disk()
	bb := d.BlockBytes()
	d.SetDiskBudget(3 * bb)

	f := ctx.Scratch("budgeted")
	buf, _ := ctx.AllocElems(8)
	defer ctx.FreeElems(buf)
	copy(buf, seqElems(8))
	for i := 0; i < 3; i++ {
		if err := f.AppendBlock(buf); err != nil {
			t.Fatalf("append %d within budget: %v", i, err)
		}
	}
	if got := d.DiskBytes(); got != 3*bb {
		t.Errorf("DiskBytes = %d, want %d", got, 3*bb)
	}

	err := f.AppendBlock(buf)
	if err == nil {
		t.Fatal("append over budget succeeded")
	}
	var re *ResourceError
	if !errors.As(err, &re) {
		t.Fatalf("over-budget append: got %T (%v), want *ResourceError", err, err)
	}
	if !errors.Is(err, ErrDiskBudget) {
		t.Errorf("over-budget append does not unwrap to ErrDiskBudget: %v", err)
	}
	if re.Used != 3*bb || re.Requested != bb || re.Budget != 3*bb {
		t.Errorf("ResourceError usage = used %d req %d budget %d, want %d/%d/%d",
			re.Used, re.Requested, re.Budget, 3*bb, bb, 3*bb)
	}
	// The rejected append counted no logical write and charged nothing.
	if got := d.Stats().Writes; got != 3 {
		t.Errorf("writes after rejection = %d, want 3", got)
	}
	if got := d.DiskBytes(); got != 3*bb {
		t.Errorf("DiskBytes after rejection = %d, want %d", got, 3*bb)
	}

	// Release credits everything back; the peak survives.
	f.Release()
	if got := d.DiskBytes(); got != 0 {
		t.Errorf("DiskBytes after release = %d, want 0", got)
	}
	if got := d.PeakDiskBytes(); got != 3*bb {
		t.Errorf("PeakDiskBytes = %d, want %d", got, 3*bb)
	}
}

func TestDiskBudgetReleasePrefixCredits(t *testing.T) {
	ctx := mustCtx(t, 64, 8)
	d := ctx.Disk()
	bb := d.BlockBytes()
	d.SetDiskBudget(4 * bb)

	f := ctx.Scratch("consumed")
	buf, _ := ctx.AllocElems(8)
	defer ctx.FreeElems(buf)
	copy(buf, seqElems(8))
	for i := 0; i < 4; i++ {
		if err := f.AppendBlock(buf); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	// Consuming the first two blocks funds two more appends.
	f.ReleasePrefix(2)
	if got := d.DiskBytes(); got != 2*bb {
		t.Fatalf("DiskBytes after ReleasePrefix(2) = %d, want %d", got, 2*bb)
	}
	for i := 0; i < 2; i++ {
		if err := f.AppendBlock(buf); err != nil {
			t.Fatalf("append %d after prefix release: %v", i, err)
		}
	}
	if err := f.AppendBlock(buf); !errors.Is(err, ErrDiskBudget) {
		t.Fatalf("append past refunded budget: %v, want ErrDiskBudget", err)
	}
	f.Release()
	if got := d.DiskBytes(); got != 0 {
		t.Errorf("DiskBytes after release = %d, want 0", got)
	}
}

func TestConsumingReaderReclaimsPrefix(t *testing.T) {
	ctx := mustCtx(t, 64, 8)
	d := ctx.Disk()
	d.SetDiskBudget(100 * d.BlockBytes())

	const nb = 12
	f := ctx.Scratch("stream")
	buf, _ := ctx.AllocElems(8)
	copy(buf, seqElems(8))
	for i := 0; i < nb; i++ {
		if err := f.AppendBlock(buf); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	ctx.FreeElems(buf)

	before := d.DiskBytes()
	r, err := NewReader(ctx, f)
	if err != nil {
		t.Fatal(err)
	}
	r.Consume()
	for {
		if _, ok := r.Next(); !ok {
			break
		}
	}
	r.Close()
	// A consuming read must have returned most of the file's blocks to the
	// budget while still behind the cursor (the lag window stays charged).
	lagged := (d.ConsumeLag() + 1) * d.BlockBytes()
	if got := d.DiskBytes(); got > lagged {
		t.Errorf("DiskBytes after consuming read = %d, want <= %d (lag window); started at %d", got, lagged, before)
	}
	f.Release()
	if got := d.DiskBytes(); got != 0 {
		t.Errorf("DiskBytes after final release = %d, want 0", got)
	}
}

// --- journal -----------------------------------------------------------------

func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.journal")
	j, err := CreateJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	var want [][]byte
	for i := 0; i < 5; i++ {
		p := []byte(fmt.Sprintf("record-%d", i))
		if err := j.Append(p); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		want = append(want, p)
	}
	if j.Records() != 5 {
		t.Errorf("Records = %d, want 5", j.Records())
	}
	j.Close()

	j2, got, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if string(got[i]) != string(want[i]) {
			t.Errorf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
	// The reopened journal appends after the replayed tail.
	if err := j2.Append([]byte("post-reopen")); err != nil {
		t.Fatal(err)
	}
	if j2.Records() != 6 {
		t.Errorf("Records after reopen+append = %d, want 6", j2.Records())
	}

	// Group commit: lazy appends interleave with synced ones in the same
	// frame format, and a replay after a Sync barrier sees all of them.
	for i := 0; i < 3; i++ {
		if err := j2.AppendLazy([]byte(fmt.Sprintf("lazy-%d", i))); err != nil {
			t.Fatalf("lazy append %d: %v", i, err)
		}
	}
	if err := j2.Sync(); err != nil {
		t.Fatal(err)
	}
	j2.Close()
	j3, got3, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	if len(got3) != 9 {
		t.Fatalf("replayed %d records after lazy batch, want 9", len(got3))
	}
	if string(got3[8]) != "lazy-2" {
		t.Errorf("last replayed record = %q, want %q", got3[8], "lazy-2")
	}
}

func TestJournalTruncatesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "torn.journal")
	j, err := CreateJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := j.Append([]byte(fmt.Sprintf("durable-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()
	durable, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		tail []byte
	}{
		{"partial-header", []byte{0x45, 0x4d}},
		{"garbage", []byte("this is not a frame at all")},
		{"valid-header-short-payload", func() []byte {
			// A plausible header promising more payload bytes than exist.
			b := make([]byte, 12, 14)
			copy(b, durable[:12])
			return append(b, 0xde, 0xad)
		}()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := os.WriteFile(path, append(append([]byte{}, durable...), tc.tail...), 0o644); err != nil {
				t.Fatal(err)
			}
			j2, recs, err := OpenJournal(path)
			if err != nil {
				t.Fatal(err)
			}
			j2.Close()
			if len(recs) != 3 {
				t.Fatalf("replayed %d records, want 3 (torn tail must not eat durable records)", len(recs))
			}
			after, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if len(after) != len(durable) {
				t.Errorf("file is %d bytes after replay, want %d (tail truncated)", len(after), len(durable))
			}
		})
	}

	// A corrupt byte inside the LAST record's payload drops that record only.
	mangled := append([]byte{}, durable...)
	mangled[len(mangled)-1] ^= 0xff
	if err := os.WriteFile(path, mangled, 0o644); err != nil {
		t.Fatal(err)
	}
	j3, recs, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	j3.Close()
	if len(recs) != 2 {
		t.Fatalf("replayed %d records after payload corruption, want 2", len(recs))
	}
}

// --- manifest / adoption -----------------------------------------------------

func TestManifestAdoptRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "backing.dat")
	d, err := NewFileBackedDisk(path, 8)
	if err != nil {
		t.Fatal(err)
	}
	ctx, err := NewCtxWithDisk(Config{M: 64, B: 8}, d)
	if err != nil {
		t.Fatal(err)
	}
	f := ctx.Scratch("payload")
	elems := seqElems(20) // 2 full blocks + 1 partial
	buf, _ := ctx.AllocElems(8)
	for off := 0; off < len(elems); off += 8 {
		n := copy(buf, elems[off:])
		if err := f.AppendBlock(buf[:n]); err != nil {
			t.Fatal(err)
		}
	}
	ctx.FreeElems(buf)
	m, err := f.Manifest()
	if err != nil {
		t.Fatal(err)
	}
	if err := d.SyncBacking(); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// "Crash": a fresh process re-opens the same backing file and adopts.
	d2, err := NewFileBackedDiskResume(path, 8, Pipeline{})
	if err != nil {
		t.Fatal(err)
	}
	ctx2, err := NewCtxWithDisk(Config{M: 64, B: 8}, d2)
	if err != nil {
		t.Fatal(err)
	}
	g, err := d2.AdoptFile(m, false)
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != int64(len(elems)) {
		t.Fatalf("adopted length %d, want %d", g.Len(), len(elems))
	}
	// New writes after adoption must not clobber adopted extents.
	h := ctx2.Scratch("post-crash")
	buf2, _ := ctx2.AllocElems(8)
	copy(buf2, seqElems(8))
	for i := 0; i < 4; i++ {
		if err := h.AppendBlock(buf2); err != nil {
			t.Fatal(err)
		}
	}
	r, err := NewReader(ctx2, g)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; ; i++ {
		e, ok := r.Next()
		if !ok {
			if i != len(elems) {
				t.Fatalf("adopted file yielded %d elems, want %d", i, len(elems))
			}
			break
		}
		if e != elems[i] {
			t.Fatalf("adopted elem %d = %v, want %v", i, e, elems[i])
		}
	}
	r.Close()
	ctx2.FreeElems(buf2)
	h.Release()
	g.Release()
	d2.Close()
}

func TestManifestRejectsUnmanifestable(t *testing.T) {
	// Memory-backed files have no extents to describe.
	ctx := mustCtx(t, 64, 8)
	f := ctx.Scratch("mem")
	buf, _ := ctx.AllocElems(8)
	defer ctx.FreeElems(buf)
	f.AppendBlock(buf)
	if _, err := f.Manifest(); err == nil {
		t.Error("Manifest of a memory-backed file succeeded")
	}
	// Prefix-consumed files have dead extents.
	pathDir := t.TempDir()
	d, err := NewFileBackedDisk(filepath.Join(pathDir, "b.dat"), 8)
	if err != nil {
		t.Fatal(err)
	}
	fctx, err := NewCtxWithDisk(Config{M: 64, B: 8}, d)
	if err != nil {
		t.Fatal(err)
	}
	g := fctx.Scratch("consumed")
	fbuf, _ := fctx.AllocElems(8)
	g.AppendBlock(fbuf)
	g.AppendBlock(fbuf)
	fctx.FreeElems(fbuf)
	g.ReleasePrefix(1)
	if _, err := g.Manifest(); err == nil {
		t.Error("Manifest of a prefix-consumed file succeeded")
	}
	d.Close()
}

// --- ENOSPC and error joining ------------------------------------------------

func TestInjectedENOSPCBecomesResourceError(t *testing.T) {
	dir := t.TempDir()
	d, err := NewFileBackedDisk(filepath.Join(dir, "full.dat"), 8)
	if err != nil {
		t.Fatal(err)
	}
	ctx, err := NewCtxWithDisk(Config{M: 64, B: 8}, d)
	if err != nil {
		t.Fatal(err)
	}
	inj := NewInjector(1)
	inj.FailWriteErr(0, syscall.ENOSPC)
	d.SetInjector(inj)
	d.SetRetry(Retry{MaxAttempts: 3})

	f := ctx.Scratch("doomed")
	buf, _ := ctx.AllocElems(8)
	defer ctx.FreeElems(buf)
	err = f.AppendBlock(buf)
	if err == nil {
		t.Fatal("append on a full device succeeded")
	}
	var re *ResourceError
	if !errors.As(err, &re) {
		t.Fatalf("ENOSPC append: got %T (%v), want *ResourceError", err, err)
	}
	if !errors.Is(err, syscall.ENOSPC) {
		t.Errorf("ResourceError does not unwrap to ENOSPC: %v", err)
	}
	if errors.Is(err, ErrDiskBudget) {
		t.Errorf("device ENOSPC misreported as a model budget rejection: %v", err)
	}
	// ENOSPC is permanent: the retry layer must not have burned attempts on it.
	if rs := d.RetryStats(); rs.Retries != 0 {
		t.Errorf("retry layer retried ENOSPC %d times; full disks do not heal", rs.Retries)
	}
	f.Release()
	d.Close()
}

func TestWriterCloseJoinsFlushAndSyncErrors(t *testing.T) {
	// Regression: Writer.Close used to return the flush error alone,
	// swallowing a sticky asynchronous write-behind failure that only
	// surfaces at Sync. Arrange both and require both in the joined error.
	dir := t.TempDir()
	d, err := NewFileBackedDiskPipeline(filepath.Join(dir, "w.dat"), 8,
		Pipeline{Enabled: true, QueueDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	ctx, err := NewCtxWithDisk(Config{M: 64, B: 8}, d)
	if err != nil {
		t.Fatal(err)
	}
	inj := NewInjector(1)
	inj.FailWriteErr(0, syscall.EIO) // first physical write fails permanently, async
	d.SetInjector(inj)
	d.SetDiskBudget(d.BlockBytes()) // the second (flush) append is rejected synchronously

	f := ctx.Scratch("maskcheck")
	w, err := NewWriter(ctx, f)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range seqElems(12) { // one full block (async EIO) + partial (budget reject)
		w.Append(e)
	}
	err = w.Close()
	if err == nil {
		t.Fatal("Close succeeded with both a failed flush and a failed physical write")
	}
	if !errors.Is(err, ErrDiskBudget) {
		t.Errorf("flush error (budget rejection) missing from Close error: %v", err)
	}
	if !errors.Is(err, syscall.EIO) {
		t.Errorf("async physical write error masked by flush error: %v", err)
	}
	f.Release()
	base := NumGoroutines()
	d.Close()
	RequireNoGoroutineLeaks(t, base)
}
