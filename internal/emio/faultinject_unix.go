//go:build unix

package emio

import "syscall"

// defaultCrashHook is the scripted "power cut": SIGKILL leaves no chance for
// deferred cleanup, buffered flushes or journal appends — exactly the crash
// model checkpoint/resume must survive.
func defaultCrashHook(string, int64) {
	syscall.Kill(syscall.Getpid(), syscall.SIGKILL)
	select {} // unreachable: SIGKILL cannot be caught or delayed
}
