package emio

import (
	"errors"
	"fmt"
	"log/slog"
	"slices"
	"sync/atomic"
	"time"

	"repro/internal/emio/metrics"
)

// Disk is a simulated block device. It stores files as slices of blocks,
// counts every block transfer, and optionally injects faults for
// failure-path testing.
//
// A Disk is not safe for concurrent use; the EM model is sequential and so is
// every algorithm built on it.
type Disk struct {
	blockSize int
	store     blockStore
	stats     Stats
	prefetch  int // sequential read-ahead depth hint passed by Readers (0 = off)

	// Fault hooks. When non-nil they are consulted on every transfer; a
	// non-nil return aborts the transfer with that error. The transfer is
	// still counted (a failed I/O is an I/O).
	readFault  func(f *File, block int) error
	writeFault func(f *File, block int) error

	fileSeq int64 // names for anonymous files

	// Disk-space accounting: the EM model's disk is unbounded, but scratch
	// footprint is a real resource; liveBlocks counts blocks of unreleased
	// files and peakLive its high-water mark.
	liveBlocks int64
	peakLive   int64

	// Read tracking, used by the executable adversary arguments: for a
	// tracked file, the set of distinct blocks ever read is recorded, which
	// bounds the number of input elements an algorithm has "seen" in the
	// sense of the paper's §2-§3 lower-bound proofs.
	tracked map[*File]map[int]bool

	// Live-file registry: every unreleased file, plus a running count of
	// the unreleased scratch files among them. The registry powers the
	// scratch-leak detector and the tracer's file-attribution columns.
	liveFiles   map[*File]struct{}
	liveScratch int

	// Live-metrics instruments; nil when metrics are disabled (the fast
	// path: one nil check per recording site). Strictly observational —
	// never touches stats, fault hooks or the store's logical state.
	iom *IOMetrics

	// Structured event log (see eventlog.go); logger is nil when logging is
	// disabled (one nil check per emission site). id names the disk in log
	// records; elog is an owned EventLog closed with the disk. logStack and
	// curSpan carry the live span context into records: the stack is mutated
	// only on the algorithm goroutine, the pointer is read by pipeline and
	// retry goroutines. spanSeq numbers spans when no tracer supplies one.
	id       string
	logger   *slog.Logger
	elog     *EventLog
	logStack []spanRef
	curSpan  atomic.Pointer[spanRef]
	spanSeq  int64

	// Resilience layer (all opt-in, see EnableChecksums/SetRetry/
	// SetInjector). checksum arms per-block CRC32C verification; retry is
	// the bounded-retry policy applied to physical transfers; inj is the
	// physical fault injector consulted below the retry layer. retry is
	// read by pipeline goroutines — configure it before I/O starts, so the
	// store's channel handoffs order the write. inj is atomic because fault
	// harnesses legitimately attach and detach it mid-run, concurrently
	// with in-flight pipeline transfers.
	checksum bool
	retry    *retrier
	inj      atomic.Pointer[Injector]

	// Job-lifecycle state, shared with shard sub-disks: the cooperative
	// cancellation cell (see cancel.go) and the disk-byte accountant (see
	// resource.go). Both are allocated by the constructors; a cancel or a
	// budget charge on any shard is visible to all of them.
	cancel *cancelCell
	budget *diskBudget
}

// ErrReleased is returned when accessing a File whose storage was released.
var ErrReleased = errors.New("emio: file has been released")

// diskSeq numbers disks process-wide for log attribution.
var diskSeq atomic.Int64

// NewDisk creates a memory-backed disk with the given block size in
// elements.
func NewDisk(blockSize int) *Disk {
	if blockSize < 1 {
		panic(fmt.Sprintf("emio.NewDisk: block size %d < 1", blockSize))
	}
	return &Disk{blockSize: blockSize, store: newMemStore(),
		id:     fmt.Sprintf("mem-%d", diskSeq.Add(1)),
		cancel: &cancelCell{}, budget: &diskBudget{}}
}

// NewFileBackedDisk creates a disk whose blocks live in a real file at path
// (created or truncated), so every counted block transfer is an actual
// positioned read or write of 16-byte records. Close the disk when done.
func NewFileBackedDisk(path string, blockSize int) (*Disk, error) {
	return NewFileBackedDiskPipeline(path, blockSize, Pipeline{})
}

// NewFileBackedDiskPipeline is NewFileBackedDisk with the asynchronous
// prefetch/write-behind pipeline configured by p. The pipeline changes only
// physical I/O scheduling (wall-clock speed); logical I/O counters, fault
// hooks, tracing and outputs are bit-identical with the pipeline on or off.
func NewFileBackedDiskPipeline(path string, blockSize int, p Pipeline) (*Disk, error) {
	return newFileBackedDisk(path, blockSize, p, false)
}

// NewFileBackedDiskResume is NewFileBackedDiskPipeline without the truncate:
// it opens an existing backing file in place, for crash-resume. The caller
// must re-adopt journaled manifests with AdoptFile before performing writes —
// until adoption raises the append cursor, fresh allocations would land on
// the old data.
func NewFileBackedDiskResume(path string, blockSize int, p Pipeline) (*Disk, error) {
	return newFileBackedDisk(path, blockSize, p, true)
}

func newFileBackedDisk(path string, blockSize int, p Pipeline, keep bool) (*Disk, error) {
	if blockSize < 1 {
		return nil, fmt.Errorf("emio: block size %d < 1", blockSize)
	}
	if err := p.validate(); err != nil {
		return nil, err
	}
	st, err := newFileStore(path, blockSize, p, keep)
	if err != nil {
		return nil, err
	}
	d := &Disk{blockSize: blockSize, store: st,
		id:     fmt.Sprintf("file-%d", diskSeq.Add(1)),
		cancel: &cancelCell{}, budget: &diskBudget{}}
	// Back-pointer for the resilience layer (retry + fault injection around
	// physical transfers). Set before any I/O, so the store's channel
	// handoffs order it ahead of every pipeline goroutine that reads it.
	st.disk = d
	if p.Enabled {
		d.prefetch = p.withDefaults().PrefetchDepth
	}
	return d, nil
}

// BackingBytes returns the high-water byte size of the store's backing file
// (the append cursor, which free-extent reuse keeps close to the peak live
// footprint); 0 for memory-backed disks.
func (d *Disk) BackingBytes() int64 {
	if s, ok := d.store.(backingSizer); ok {
		return s.backingBytes()
	}
	return 0
}

// FreeExtents returns the number of released block extents currently
// available for reuse in the backing file; 0 for memory-backed disks.
func (d *Disk) FreeExtents() int64 {
	if s, ok := d.store.(backingSizer); ok {
		return s.freeExtents()
	}
	return 0
}

// PhysStats returns the cumulative count of physical transfers (positioned
// read/write syscalls) issued to the backing file; zero for memory-backed
// disks. Logical Stats never change with the pipeline, but PhysStats drops by
// the coalescing factor when it is on.
func (d *Disk) PhysStats() Stats {
	if s, ok := d.store.(physCounter); ok {
		return s.physStats()
	}
	return Stats{}
}

// uringStore is the optional store capability behind Disk.UringActive.
type uringStore interface{ uringActive() bool }

// UringActive reports whether the disk's physical transfers are going through
// an io_uring: Pipeline.Uring was requested, the kernel passed the
// UringSupported probe, and ring setup succeeded. False for memory-backed
// disks and wherever the knob silently degraded to the syscall paths.
func (d *Disk) UringActive() bool {
	if s, ok := d.store.(uringStore); ok {
		return s.uringActive()
	}
	return false
}

// EnableMetrics attaches live telemetry instruments registered on reg to
// the disk's hot paths: logical and physical transfer counters, latency
// histograms, queue-depth and footprint gauges, prefetch and extent-reuse
// counters. Several disks may share one registry; counters then accumulate
// across them. Like the tracer, metrics are strictly observational: logical
// Stats, trace JSON, fault-hook order and all outputs are bit-identical with
// metrics on or off. Enable before the hot loops start; nil detaches.
func (d *Disk) EnableMetrics(reg *metrics.Registry) *IOMetrics {
	if reg == nil {
		d.iom = nil
		if ms, ok := d.store.(metricsSink); ok {
			ms.setMetrics(nil)
		}
		if d.retry != nil {
			d.retry.m.Store(nil)
		}
		return nil
	}
	m := newIOMetrics(reg)
	d.iom = m
	if ms, ok := d.store.(metricsSink); ok {
		ms.setMetrics(m)
	}
	if d.retry != nil {
		d.retry.m.Store(newRetryMetrics(reg))
	}
	// Seed the footprint gauges so a scrape right after enabling sees the
	// current state rather than zeros.
	m.liveBlocks.Set(d.liveBlocks)
	m.liveScratch.Set(int64(d.liveScratch))
	m.backingBytes.Set(d.BackingBytes())
	return m
}

// Metrics returns the live instrument bundle, nil when metrics are disabled.
func (d *Disk) Metrics() *IOMetrics { return d.iom }

// ID returns the disk's diagnostic identity, as carried by log records.
func (d *Disk) ID() string { return d.id }

// Close releases backend resources (the backing file for file-backed disks;
// a no-op for memory-backed ones) and closes an owned event log's file sink.
// Teardown failures are joined, never masked: a sticky write-behind error
// surfacing here is reported alongside — not instead of — a log-sink failure.
func (d *Disk) Close() error {
	err := d.store.close()
	if d.elog != nil {
		d.log(slog.LevelDebug, "disk closed")
		err = joinErr(err, d.elog.Close())
	}
	return err
}

// backingSyncer is the optional store capability behind Disk.SyncBacking.
type backingSyncer interface{ syncBacking() error }

// SyncBacking drains every pending write-behind block and fsyncs the backing
// file: the durability barrier the checkpoint layer places before journaling
// a phase record. A no-op (nil) for memory-backed disks.
func (d *Disk) SyncBacking() error {
	if s, ok := d.store.(backingSyncer); ok {
		return s.syncBacking()
	}
	return nil
}

// backingWritebackKicker is the store capability behind
// StartBackingFlusher: initiate (not await) writeback of the backing fd's
// dirty pages, safe to call from a goroutine other than the algorithm's.
type backingWritebackKicker interface{ kickBackingWriteback() }

// StartBackingFlusher launches a goroutine that nudges the kernel every
// interval to start writing the backing file's dirty pages to the device
// (sync_file_range, asynchronous — never an fsync, which would stall the
// writer). The device thus absorbs each phase's output concurrently with
// the computation, and the checkpoint layer's FullSync durability barriers
// (SyncBacking) wait only for writeback already in flight instead of
// flushing a whole phase's output cold — this is what keeps the power-loss
// grade's wall overhead at roughly the device's bandwidth deficit rather
// than a per-barrier stall. Strictly physical: logical I/O accounting,
// outputs and traces are untouched, and durability never depends on the
// flusher (the barrier fsync is the guarantee). The returned stop function
// halts the flusher; for memory-backed disks it is a no-op.
func (d *Disk) StartBackingFlusher(interval time.Duration) (stop func()) {
	s, ok := d.store.(backingWritebackKicker)
	if !ok {
		return func() {}
	}
	quit := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-quit:
				return
			case <-t.C:
				s.kickBackingWriteback()
			}
		}
	}()
	return func() {
		close(quit)
		<-done
	}
}

// BlockSize returns the block size B in elements.
func (d *Disk) BlockSize() int { return d.blockSize }

// Stats returns a snapshot of the I/O counters.
func (d *Disk) Stats() Stats { return d.stats }

// ResetStats zeroes the I/O counters. Benchmarks call this after building
// their inputs so that only the algorithm under test is measured.
func (d *Disk) ResetStats() { d.stats = Stats{} }

// AddStats folds a logical-I/O delta into the disk's counters. The parallel
// engine accounts each shard's transfers on the shard's own sub-disk and
// then folds the deltas into the parent in shard order at phase barriers, so
// the parent's Stats are deterministic for every worker count.
func (d *Disk) AddStats(s Stats) {
	d.stats.Reads += s.Reads
	d.stats.Writes += s.Writes
}

// EnableChecksums arms per-block CRC32C checksums: every block append
// records the checksum of its on-disk image in a memory-resident sidecar,
// and every read verifies the decoded payload against it, returning a
// *CorruptionError on mismatch. Enable before files hold data — blocks
// written earlier have no recorded sum and are read unverified. Checksums
// never change logical accounting, outputs or trace JSON.
func (d *Disk) EnableChecksums() { d.checksum = true }

// ChecksumsEnabled reports whether per-block checksum verification is armed.
func (d *Disk) ChecksumsEnabled() bool { return d.checksum }

// SetRetry installs the bounded-retry policy for physical transfers. A
// policy with MaxAttempts <= 1 removes it (single attempt per transfer;
// transient failures then still surface as typed *TransientError).
// Configure before I/O starts.
func (d *Disk) SetRetry(pol Retry) {
	if !pol.Enabled() {
		d.retry = nil
		return
	}
	r := newRetrier(pol)
	if d.iom != nil {
		r.m.Store(newRetryMetrics(d.iom.reg))
	}
	d.retry = r
}

// RetryStats returns the retry layer's counters (zero when no policy is
// installed).
func (d *Disk) RetryStats() RetryStats {
	if d.retry == nil {
		return RetryStats{}
	}
	return d.retry.stats()
}

// retryCount returns retried attempts so far, for trace-span deltas.
func (d *Disk) retryCount() int64 {
	if d.retry == nil {
		return 0
	}
	return d.retry.retries.Load()
}

// SetInjector installs (or, with nil, removes) a physical fault injector,
// consulted by every backing transfer below the retry layer. Harness-side;
// configure before I/O starts.
func (d *Disk) SetInjector(inj *Injector) {
	d.inj.Store(inj)
	if inj != nil {
		d.log(slog.LevelDebug, "fault injector armed")
	} else {
		d.log(slog.LevelDebug, "fault injector removed")
	}
}

// Injector returns the installed fault injector, nil when none is armed.
func (d *Disk) Injector() *Injector { return d.inj.Load() }

// blockCorrupter is the optional store capability behind Disk.CorruptBlock.
type blockCorrupter interface {
	corruptBlock(f *File, i, bit int) error
}

// CorruptBlock flips one bit of the stored image of block i of f, modeling
// at-rest corruption (bit rot, a torn sector). bit indexes the block's
// on-disk little-endian image, so bit 0 is the lowest bit of the first
// element's Key. Harness-side like BuildFile: the flip bypasses I/O
// accounting, fault hooks and the injector. On pipelined stores pending
// writes of f are drained first (their sticky error, if any, is returned).
func (d *Disk) CorruptBlock(f *File, i, bit int) error {
	if f.released {
		return fmt.Errorf("%w (%s)", ErrReleased, f.name)
	}
	if i < 0 || i >= f.nblocks {
		return fmt.Errorf("%w: block %d of %d in %s", ErrBlockRange, i, f.nblocks, f.name)
	}
	if nbits := f.blockLen(i) * elemBytes * 8; bit < 0 || bit >= nbits {
		return fmt.Errorf("emio: corrupt %s block %d: bit %d out of range [0,%d)", f.name, i, bit, nbits)
	}
	c, ok := d.store.(blockCorrupter)
	if !ok {
		return fmt.Errorf("emio: store %T cannot corrupt blocks", d.store)
	}
	d.log(slog.LevelWarn, "block corrupted at rest (harness)",
		slog.String("file", f.name), slog.Int("block", i), slog.Int("bit", bit))
	return c.corruptBlock(f, i, bit)
}

// SetReadFault installs (or, with nil, removes) a read fault hook.
func (d *Disk) SetReadFault(hook func(f *File, block int) error) { d.readFault = hook }

// SetWriteFault installs (or, with nil, removes) a write fault hook.
func (d *Disk) SetWriteFault(hook func(f *File, block int) error) { d.writeFault = hook }

// LiveBlocks returns the number of blocks currently held by unreleased
// files: the live disk footprint.
func (d *Disk) LiveBlocks() int64 { return d.liveBlocks }

// PeakLiveBlocks returns the high-water mark of the live disk footprint —
// the scratch space an algorithm really needed. ResetPeakLive lowers it to
// the current level so one phase can be measured in isolation.
func (d *Disk) PeakLiveBlocks() int64 { return d.peakLive }

// ResetPeakLive lowers the disk-footprint high-water mark to current usage.
func (d *Disk) ResetPeakLive() { d.peakLive = d.liveBlocks }

// RaisePeakLive lifts the disk-footprint high-water mark to at least v
// (never lowers it). The tracer uses it to restore an enclosing span's
// scoped peak; the parallel engine uses it to fold shard footprints into the
// parent disk's meter.
func (d *Disk) RaisePeakLive(v int64) {
	if v > d.peakLive {
		d.peakLive = v
	}
}

// noteAlloc and noteFree maintain the footprint counters.
func (d *Disk) noteAlloc(blocks int64) {
	d.liveBlocks += blocks
	if d.liveBlocks > d.peakLive {
		d.peakLive = d.liveBlocks
	}
	if d.iom != nil {
		d.iom.liveBlocks.Set(d.liveBlocks)
	}
}

func (d *Disk) noteFree(blocks int64) {
	d.liveBlocks -= blocks
	if d.iom != nil {
		d.iom.liveBlocks.Set(d.liveBlocks)
	}
}

// TrackReads starts recording which distinct blocks of f are read. Used by
// the adversary-argument tests: an algorithm that has read r blocks of the
// input has seen at most r*B of its elements.
func (d *Disk) TrackReads(f *File) {
	if d.tracked == nil {
		d.tracked = make(map[*File]map[int]bool)
	}
	d.tracked[f] = make(map[int]bool)
}

// BlocksSeen returns how many distinct blocks of a tracked file have been
// read since TrackReads (zero for untracked files).
func (d *Disk) BlocksSeen(f *File) int {
	return len(d.tracked[f])
}

// noteRead records a block read for tracked files.
func (d *Disk) noteRead(f *File, block int) {
	if set, ok := d.tracked[f]; ok {
		set[block] = true
	}
}

// NewFile creates an empty file on the disk. The name is used only in error
// messages; an empty name is replaced by a generated one.
func (d *Disk) NewFile(name string) *File {
	if name == "" {
		d.fileSeq++
		name = fmt.Sprintf("file-%d", d.fileSeq)
	}
	f := &File{disk: d, name: name}
	if d.liveFiles == nil {
		d.liveFiles = make(map[*File]struct{})
	}
	d.liveFiles[f] = struct{}{}
	return f
}

// markScratch tags a freshly created file as algorithm scratch (called by
// Ctx.Scratch) so the leak detector can tell scratch from harness-staged
// inputs and so the tracer can count scratch traffic per span.
func (d *Disk) markScratch(f *File) {
	f.scratch = true
	d.liveScratch++
	if d.iom != nil {
		d.iom.liveScratch.Set(int64(d.liveScratch))
	}
	d.log(slog.LevelDebug, "scratch file created",
		slog.String("file", f.name), slog.Int("live_scratch", d.liveScratch))
}

// noteRelease removes a file from the live registry (called by File.Release).
func (d *Disk) noteRelease(f *File) {
	delete(d.liveFiles, f)
	if f.scratch {
		d.liveScratch--
		if d.iom != nil {
			d.iom.liveScratch.Set(int64(d.liveScratch))
		}
		d.log(slog.LevelDebug, "scratch file released",
			slog.String("file", f.name), slog.Int("blocks", f.nblocks),
			slog.Int("live_scratch", d.liveScratch))
	}
}

// LiveFiles returns the diagnostic names of every live (created and not yet
// released) file, sorted. Harness-staged inputs count as live files; scratch
// files appear with their "scratch-" prefixed tags.
func (d *Disk) LiveFiles() []string {
	out := make([]string, 0, len(d.liveFiles))
	for f := range d.liveFiles {
		out = append(out, f.name)
	}
	slices.Sort(out)
	return out
}

// LiveScratchFiles returns the names of the live files created through
// Ctx.Scratch, sorted: after a top-level algorithm has returned and its
// outputs have been released, this list is exactly the set of leaked scratch
// files, and should be empty.
func (d *Disk) LiveScratchFiles() []string {
	var out []string
	for f := range d.liveFiles {
		if f.scratch {
			out = append(out, f.name)
		}
	}
	slices.Sort(out)
	return out
}

// ScratchSnapshot captures the set of currently live scratch files. Paired
// with ReleaseScratchSince it is the facade's error-path teardown guard: an
// algorithm that fails (cancellation, quota, a device fault) abandons its
// scratch mid-phase, and the guard releases exactly the files created since
// the snapshot.
func (d *Disk) ScratchSnapshot() map[*File]struct{} {
	snap := make(map[*File]struct{})
	for f := range d.liveFiles {
		if f.scratch {
			snap[f] = struct{}{}
		}
	}
	return snap
}

// ReleaseScratchSince releases every live scratch file not present in a
// ScratchSnapshot taken earlier, returning how many were reclaimed.
func (d *Disk) ReleaseScratchSince(snap map[*File]struct{}) int {
	var doomed []*File
	for f := range d.liveFiles {
		if f.scratch {
			if _, ok := snap[f]; !ok {
				doomed = append(doomed, f)
			}
		}
	}
	for _, f := range doomed {
		f.Release()
	}
	return len(doomed)
}
