package emio

import (
	"testing"

	"repro/internal/emio/metrics"
)

func TestMetricsCountLogicalTransfers(t *testing.T) {
	ctx := mustCtx(t, 64, 8)
	reg := metrics.New()
	ctx.Disk().EnableMetrics(reg)

	f := ctx.Scratch("in")
	in := seqElems(64)
	for i := 0; i < 8; i++ {
		if err := f.AppendBlock(in[i*8 : (i+1)*8]); err != nil {
			t.Fatal(err)
		}
	}
	buf := make([]Elem, 8)
	for i := 0; i < f.NumBlocks(); i++ {
		if _, err := f.ReadBlock(i, buf); err != nil {
			t.Fatal(err)
		}
	}

	snap := reg.Snapshot()
	if got := snap.Counter("empart_logical_reads_total"); got != 8 {
		t.Errorf("logical reads metric = %d, want 8", got)
	}
	if got := snap.Counter("empart_logical_writes_total"); got != 8 {
		t.Errorf("logical writes metric = %d, want 8", got)
	}
	if h := snap.Histograms["empart_logical_read_ns"]; h.Count != 8 {
		t.Errorf("read latency observations = %d, want 8", h.Count)
	}
	// Metrics mirror, never replace, the model counters.
	if st := ctx.Disk().Stats(); st.Reads != 8 || st.Writes != 8 {
		t.Errorf("Stats = %+v, want 8/8", st)
	}

	// Detach: recording stops, accumulated values persist on the registry.
	ctx.Disk().EnableMetrics(nil)
	if _, err := f.ReadBlock(0, buf); err != nil {
		t.Fatal(err)
	}
	if got := reg.Snapshot().Counter("empart_logical_reads_total"); got != 8 {
		t.Errorf("reads after detach = %d, want 8", got)
	}
}

func TestMetricsPhysicalLayerFileBacked(t *testing.T) {
	for _, pipelined := range []bool{false, true} {
		name := "sync"
		if pipelined {
			name = "pipelined"
		}
		t.Run(name, func(t *testing.T) {
			var ctx *Ctx
			if pipelined {
				ctx = pipelinedCtx(t, 1024, 8, Pipeline{})
			} else {
				ctx = fileBackedCtx(t, 1024, 8)
			}
			reg := metrics.New()
			ctx.Disk().EnableMetrics(reg)

			f, err := StoreAll(ctx, "phys", seqElems(512))
			if err != nil {
				t.Fatal(err)
			}
			out, err := LoadAll(ctx, f)
			if err != nil {
				t.Fatal(err)
			}
			ctx.FreeElems(out)
			f.Release()
			snap := reg.Snapshot()

			physW := snap.Counter("empart_phys_writes_total")
			physR := snap.Counter("empart_phys_reads_total")
			st := ctx.Disk().PhysStats()
			if physW != st.Writes {
				t.Errorf("phys writes metric = %d, PhysStats = %d", physW, st.Writes)
			}
			if physR != st.Reads {
				t.Errorf("phys reads metric = %d, PhysStats = %d", physR, st.Reads)
			}
			if wr := snap.Histograms["empart_phys_write_run_blocks"]; wr.Count == 0 {
				t.Error("no coalesced-write-run observations")
			}
			if pipelined {
				if hits := snap.Counter("empart_prefetch_hits_total"); hits == 0 {
					t.Error("pipelined sequential scan recorded no prefetch hits")
				}
				if wr := snap.Histograms["empart_phys_write_run_blocks"]; wr.Max < 2 {
					t.Errorf("pipelined write-run max = %d, want coalescing >= 2", wr.Max)
				}
			}
			if got := snap.Counter("empart_extent_frees_total"); got == 0 {
				t.Error("release recorded no extent frees")
			}
			if bb := snap.Gauge("empart_backing_bytes"); bb != ctx.Disk().BackingBytes() {
				t.Errorf("backing-bytes gauge = %d, BackingBytes = %d", bb, ctx.Disk().BackingBytes())
			}
		})
	}
}

func TestMetricsPhaseStackWithoutTracer(t *testing.T) {
	// With metrics on but no tracer, StartSpan must return a live span that
	// drives the phase gauges and whose End restores the enclosing phase.
	ctx := mustCtx(t, 64, 8)
	reg := metrics.New()
	ctx.Disk().EnableMetrics(reg)

	outer := ctx.StartSpan("sort")
	if outer == nil {
		t.Fatal("StartSpan with metrics enabled returned nil")
	}
	inner := ctx.StartSpan("merge-pass")
	snap := reg.Snapshot()
	if got := snap.Infos["empart_phase"]; got != "merge-pass" {
		t.Errorf("phase info = %q, want merge-pass", got)
	}
	if got := snap.Gauge("empart_phase_depth"); got != 2 {
		t.Errorf("phase depth = %d, want 2", got)
	}
	inner.End()
	if got := reg.Snapshot().Infos["empart_phase"]; got != "sort" {
		t.Errorf("phase after inner End = %q, want sort", got)
	}
	outer.End()
	snap = reg.Snapshot()
	if got := snap.Infos["empart_phase"]; got != "" {
		t.Errorf("phase after outer End = %q, want empty", got)
	}
	if got := snap.Gauge("empart_phase_depth"); got != 0 {
		t.Errorf("phase depth after unwind = %d, want 0", got)
	}
	if got := snap.Counter(`empart_phase_started_total{phase="merge-pass"}`); got != 1 {
		t.Errorf("phase-start counter = %d, want 1", got)
	}

	// Error-style unwind: ending the outer span with the inner still open
	// must truncate the stack, not corrupt it.
	a := ctx.StartSpan("a")
	_ = ctx.StartSpan("b")
	a.End()
	if got := reg.Snapshot().Gauge("empart_phase_depth"); got != 0 {
		t.Errorf("depth after unwind past open child = %d, want 0", got)
	}
}

func TestMetricsPhaseStackWithTracer(t *testing.T) {
	// With both a tracer and metrics attached, spans must feed both.
	ctx := mustCtx(t, 64, 8)
	reg := metrics.New()
	ctx.Disk().EnableMetrics(reg)
	tr := NewTracer()
	ctx.SetTracer(tr)

	root := ctx.StartSpan("root")
	child := ctx.StartSpan("child")
	if got := reg.Snapshot().Infos["empart_phase"]; got != "child" {
		t.Errorf("phase info = %q, want child", got)
	}
	child.End()
	root.End()
	if got := reg.Snapshot().Gauge("empart_phase_depth"); got != 0 {
		t.Errorf("phase depth = %d, want 0", got)
	}
	if len(tr.Roots()) != 1 || len(tr.Roots()[0].Children) != 1 {
		t.Errorf("tracer tree malformed: %v", tr.Roots())
	}
}
