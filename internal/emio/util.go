package emio

import "fmt"

// Copy streams src into a fresh scratch file and returns it, at a cost of one
// scan: ceil(n/B) reads + ceil(n/B) writes.
func Copy(ctx *Ctx, src *File) (*File, error) {
	dst := ctx.Scratch("copy")
	if err := AppendAll(ctx, dst, src); err != nil {
		return nil, err
	}
	return dst, nil
}

// AppendAll streams every element of src onto the end of dst.
func AppendAll(ctx *Ctx, dst, src *File) error {
	w, err := NewWriter(ctx, dst)
	if err != nil {
		return err
	}
	defer w.Close()
	r, err := NewReader(ctx, src)
	if err != nil {
		return err
	}
	defer r.Close()
	for {
		e, ok := r.Next()
		if !ok {
			break
		}
		w.Append(e)
	}
	if err := r.Err(); err != nil {
		return err
	}
	return w.Close()
}

// LoadAll reads an entire file into a memory buffer charged against the
// budget, costing ceil(n/B) reads. The file must fit: callers invoke this
// only on inputs they know are at most M (base cases of recursions).
// Release the buffer with Ctx.FreeElems.
func LoadAll(ctx *Ctx, f *File) ([]Elem, error) {
	n := f.Len()
	buf, err := ctx.AllocElems(int(n))
	if err != nil {
		return nil, err
	}
	r, err := NewReader(ctx, f)
	if err != nil {
		ctx.FreeElems(buf)
		return nil, err
	}
	defer r.Close()
	i := 0
	for {
		e, ok := r.Next()
		if !ok {
			break
		}
		buf[i] = e
		i++
	}
	if err := r.Err(); err != nil {
		ctx.FreeElems(buf)
		return nil, err
	}
	if int64(i) != n {
		ctx.FreeElems(buf)
		return nil, fmt.Errorf("emio: LoadAll of %s read %d of %d elements", f.Name(), i, n)
	}
	return buf, nil
}

// StoreAll writes a memory buffer out as a fresh scratch file, costing
// ceil(n/B) writes.
func StoreAll(ctx *Ctx, tag string, elems []Elem) (*File, error) {
	f := ctx.Scratch(tag)
	w, err := NewWriter(ctx, f)
	if err != nil {
		return nil, err
	}
	for _, e := range elems {
		w.Append(e)
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	return f, nil
}

// SplitFile cuts f into consecutive segments of the given sizes (which must
// be nonnegative and sum to f.Len()), each written to its own fresh file, in
// one scan. Because the input is consumed in order, only one output writer is
// open at a time.
func SplitFile(ctx *Ctx, f *File, sizes []int64) ([]*File, error) {
	var sum int64
	for i, s := range sizes {
		if s < 0 {
			return nil, fmt.Errorf("emio: SplitFile negative size %d at %d", s, i)
		}
		sum += s
	}
	if sum != f.Len() {
		return nil, fmt.Errorf("emio: SplitFile sizes sum to %d, file holds %d", sum, f.Len())
	}
	out := make([]*File, len(sizes))
	for i := range out {
		out[i] = ctx.Scratch("seg")
	}
	release := func() {
		for _, g := range out {
			g.Release()
		}
	}
	r, err := NewReader(ctx, f)
	if err != nil {
		release()
		return nil, err
	}
	defer r.Close()
	for i, sz := range sizes {
		if sz == 0 {
			continue
		}
		w, err := NewWriter(ctx, out[i])
		if err != nil {
			release()
			return nil, err
		}
		for j := int64(0); j < sz; j++ {
			e, ok := r.Next()
			if !ok {
				w.Close()
				release()
				if err := r.Err(); err != nil {
					return nil, err
				}
				return nil, fmt.Errorf("emio: SplitFile input exhausted in segment %d", i)
			}
			w.Append(e)
		}
		if err := w.Close(); err != nil {
			release()
			return nil, err
		}
	}
	return out, nil
}

// Snapshot copies the file's contents into a plain slice without charging
// any I/Os or memory. It exists for test oracles, verifiers and reporting
// harnesses only — algorithm code never calls it, by convention enforced in
// review and by the fact that it defeats the accountant tests would trip.
func (f *File) Snapshot() []Elem {
	if f.released {
		panic(fmt.Sprintf("emio: Snapshot of released file %s", f.name))
	}
	out := make([]Elem, f.n)
	buf := make([]Elem, f.disk.blockSize)
	pos := 0
	for i := 0; i < f.nblocks; i++ {
		n, err := f.disk.store.read(f, i, buf)
		if err != nil {
			panic(fmt.Sprintf("emio: Snapshot of %s: %v", f.name, err))
		}
		pos += copy(out[pos:], buf[:n])
	}
	return out
}

// BuildFile creates a file holding the given elements without charging any
// I/Os or memory: the harness-side dual of Snapshot, used by workload
// generators and tests to stage inputs. Algorithm code never calls it.
func BuildFile(d *Disk, name string, elems []Elem) *File {
	f := d.NewFile(name)
	b := d.blockSize
	for len(elems) > 0 {
		k := min(b, len(elems))
		if err := d.store.append(f, elems[:k]); err != nil {
			panic(fmt.Sprintf("emio: BuildFile %s: %v", name, err))
		}
		if d.checksum {
			f.sums = append(f.sums, checksumElems(elems[:k]))
		}
		f.nblocks++
		d.noteAlloc(1)
		// Staged inputs occupy real space but must never be rejected by the
		// quota (the budget bounds the job, admission of its input is the
		// caller's decision), so they are recorded without enforcement.
		d.forceBlocks(1)
		f.n += int64(k)
		if k < b {
			f.sealed = true
		}
		elems = elems[k:]
	}
	return f
}
