package emio

import (
	"errors"
	"fmt"
	"log/slog"
	"time"
)

// File is a sequence of elements stored on a Disk in blocks of B elements.
// Every block is full except possibly the last one (a short block seals the
// file). Access is block-granular and charged against the disk's I/O
// counters; the streaming Reader and Writer types are the intended interface
// for algorithms.
//
// Storage lives in the Disk's block store — host memory by default, a real
// backing file for disks created with NewFileBackedDisk. The File itself
// holds only metadata (directory information, free in the model).
type File struct {
	disk     *Disk
	name     string
	n        int64
	nblocks  int
	sealed   bool
	released bool
	scratch  bool // created through Ctx.Scratch (leak-detector relevant)

	mem     [][]Elem // memStore payloads
	extents []int64  // fileStore block offsets (-1 = reclaimed by ReleasePrefix)
	sums    []uint32 // per-block CRC32C sidecar (disks with checksums armed)

	// freed counts the blocks [0, freed) whose storage was reclaimed by
	// ReleasePrefix while the file's tail stays readable (consuming reads,
	// the disk-budget degradation path of merges).
	freed int

	// View metadata (see Disk.NewView): a view is a read-only window onto a
	// contiguous block range of another disk's file. viewSrc is the backing
	// file and viewOff the first backing block of the window; both are nil/0
	// for ordinary files. Views own no storage — Release drops only the
	// window's metadata.
	viewSrc *File
	viewOff int
}

// Errors returned by block-level file operations.
var (
	ErrBlockRange   = errors.New("emio: block index out of range")
	ErrPartialBlock = errors.New("emio: cannot append after a partial block")
	ErrBlockSize    = errors.New("emio: block payload exceeds block size")
)

// Name returns the file's diagnostic name.
func (f *File) Name() string { return f.name }

// Len returns the number of elements in the file.
func (f *File) Len() int64 { return f.n }

// NumBlocks returns the number of blocks occupied by the file.
func (f *File) NumBlocks() int { return f.nblocks }

// Disk returns the disk the file lives on.
func (f *File) Disk() *Disk { return f.disk }

// Released reports whether the file's storage has been released.
func (f *File) Released() bool { return f.released }

// Release drops the file's storage. The EM model has unbounded disk, but the
// simulation does not; algorithms release scratch files as soon as they are
// consumed so that peak host resources stay proportional to live data.
// Releasing costs no I/Os (deallocation is metadata work). A released file
// must not be accessed again.
func (f *File) Release() {
	if f.released {
		return
	}
	f.disk.store.release(f)
	if f.viewSrc == nil {
		// Views own no blocks: they were registered without noteAlloc, so
		// releasing one must not lower the footprint either. Blocks already
		// reclaimed by ReleasePrefix were credited there.
		live := int64(f.nblocks - f.freed)
		f.disk.noteFree(live)
		f.disk.creditBlocks(live)
	}
	f.disk.noteRelease(f)
	f.n = 0
	f.nblocks = 0
	f.freed = 0
	f.sums = nil
	f.released = true
}

// ReleasePrefix reclaims the storage of blocks [0, upTo) while the file's
// tail stays readable: the consuming-read primitive behind budget-bounded
// merges, where each input run is read exactly once and its consumed blocks
// can be returned to the allocator as the merge advances. Reading a
// reclaimed block fails with ErrReleased. Costs no I/O (deallocation is
// metadata work, like Release).
//
// The caller guarantees the reclaimed blocks are settled (no pending
// write-behind) and strictly behind any live read-ahead window — the
// consuming Reader enforces a lag of the disk's prefetch depth plus one.
// No-op on views, released files and stores without extent-granular
// reclamation (shard sub-disks).
func (f *File) ReleasePrefix(upTo int) {
	if f.released || f.viewSrc != nil {
		return
	}
	if upTo > f.nblocks {
		upTo = f.nblocks
	}
	if upTo <= f.freed {
		return
	}
	pr, ok := f.disk.store.(prefixReleaser)
	if !ok {
		return
	}
	pr.releaseRange(f, f.freed, upTo)
	n := int64(upTo - f.freed)
	f.freed = upTo
	f.disk.noteFree(n)
	f.disk.creditBlocks(n)
}

// blockLen returns the element count of block i without bounds checking:
// every block is full except the last.
func (f *File) blockLen(i int) int {
	if i == f.nblocks-1 {
		return int(f.n - int64(f.nblocks-1)*int64(f.disk.blockSize))
	}
	return f.disk.blockSize
}

// blockOff returns the byte offset of block i in the backing store; for
// memory-backed disks it is the block's dense-log position (the offset it
// would have on a file backing).
func (f *File) blockOff(i int) int64 {
	if f.viewSrc != nil {
		return f.viewSrc.blockOff(f.viewOff + i)
	}
	if i < len(f.extents) {
		return f.extents[i]
	}
	return int64(i) * int64(f.disk.blockSize) * elemBytes
}

// ReadBlock copies block i into buf and returns the number of elements
// copied. It charges exactly one read I/O, even when the block is the
// partial last block or when a fault hook aborts the transfer.
// buf must have capacity for a full block.
func (f *File) ReadBlock(i int, buf []Elem) (int, error) {
	return f.readBlockAhead(i, buf, 0)
}

// ReadBlockSequential is ReadBlock for callers scanning the file in block
// order: it carries the disk's configured read-ahead depth, so a pipelined
// file-backed store may prefetch the following contiguous blocks with one
// coalesced physical read. Logical cost is identical to ReadBlock (exactly
// one read I/O for block i); on non-pipelined disks the two are the same
// operation. The streaming Reader uses this path internally.
func (f *File) ReadBlockSequential(i int, buf []Elem) (int, error) {
	return f.readBlockAhead(i, buf, f.disk.prefetch)
}

// readBlockAhead is ReadBlock plus a sequential-intent hint: a store running
// the async pipeline may prefetch up to ahead further contiguous blocks with
// one coalesced physical read. The hint never changes logical accounting —
// exactly one read I/O is charged for block i, here, on the caller's
// goroutine, before any physical transfer.
func (f *File) readBlockAhead(i int, buf []Elem, ahead int) (int, error) {
	if f.released {
		return 0, fmt.Errorf("%w (%s)", ErrReleased, f.name)
	}
	if i < 0 || i >= f.nblocks {
		return 0, fmt.Errorf("%w: block %d of %d in %s", ErrBlockRange, i, f.nblocks, f.name)
	}
	if i < f.freed {
		return 0, fmt.Errorf("%w: block %d of %s consumed by ReleasePrefix", ErrReleased, i, f.name)
	}
	// Cancellation lands here, before the transfer is counted: a cancelled
	// read never happened in the model, and the caller unwinds within one
	// block-transfer latency of the flag flipping.
	if err := f.disk.checkCancel(); err != nil {
		return 0, err
	}
	f.disk.stats.Reads++
	f.disk.noteRead(f, i)
	if hook := f.disk.readFault; hook != nil {
		if err := hook(f, i); err != nil {
			f.disk.log(slog.LevelWarn, "injected read fault",
				slog.String("file", f.name), slog.Int("block", i))
			return 0, &FaultError{Op: "read", File: f.name, Block: i, Off: f.blockOff(i), Err: err}
		}
	}
	m := f.disk.iom
	var t0 time.Time
	if m != nil {
		m.logReads.Inc()
		t0 = time.Now()
	}
	var (
		n   int
		err error
	)
	if ar, ok := f.disk.store.(aheadReader); ok && ahead > 0 {
		n, err = ar.readAhead(f, i, buf, ahead)
	} else {
		n, err = f.disk.store.read(f, i, buf)
	}
	if m != nil {
		m.logReadNS.ObserveEx(int64(time.Since(t0)), m.curSeq.Load())
	}
	if err != nil {
		return 0, &FaultError{Op: "read", File: f.name, Block: i, Off: f.blockOff(i), Err: err}
	}
	if f.disk.checksum && i < len(f.sums) {
		// Verify the decoded payload against the sum recorded at append
		// time. This is the single verification point for every fill path —
		// synchronous reads, write-behind read-back and prefetch staging all
		// decode here, on the algorithm goroutine.
		if got := checksumElems(buf[:n]); got != f.sums[i] {
			if m != nil {
				m.corruptions.Inc()
			}
			f.disk.log(slog.LevelError, "checksum mismatch on read",
				slog.String("file", f.name), slog.Int("block", i),
				slog.Uint64("stored", uint64(f.sums[i])), slog.Uint64("computed", uint64(got)))
			return 0, &CorruptionError{
				File: f.name, Block: i, Off: f.blockOff(i),
				Stored: f.sums[i], Computed: got,
			}
		}
	}
	return n, nil
}

// Sync blocks until every write-behind block of the file has reached the
// backing store and reports the first physical write failure among them.
// A no-op (nil) for memory-backed disks and non-pipelined file stores.
func (f *File) Sync() error {
	if f.released {
		return nil
	}
	if s, ok := f.disk.store.(fileSyncer); ok {
		return s.syncFile(f)
	}
	return nil
}

// AppendBlock appends a block containing the given elements and charges one
// write I/O. A block shorter than B elements seals the file: nothing may be
// appended after it (blocks other than the last must be full).
func (f *File) AppendBlock(payload []Elem) error {
	if f.released {
		return fmt.Errorf("%w (%s)", ErrReleased, f.name)
	}
	b := f.disk.blockSize
	if len(payload) > b {
		return fmt.Errorf("%w: %d > B=%d in %s", ErrBlockSize, len(payload), b, f.name)
	}
	if f.sealed {
		return fmt.Errorf("%w (%s)", ErrPartialBlock, f.name)
	}
	// Admission checks, before the transfer is counted: cancellation (a
	// cancelled write never happened in the model) and the disk-byte budget
	// (a rejected append consumed no space and no I/O).
	if err := f.disk.checkCancel(); err != nil {
		return err
	}
	if err := f.disk.chargeAppend(f); err != nil {
		return err
	}
	f.disk.stats.Writes++
	if hook := f.disk.writeFault; hook != nil {
		if err := hook(f, f.nblocks); err != nil {
			f.disk.log(slog.LevelWarn, "injected write fault",
				slog.String("file", f.name), slog.Int("block", f.nblocks))
			f.disk.creditBlocks(1)
			return &FaultError{Op: "write", File: f.name, Block: f.nblocks, Off: -1, Err: err}
		}
	}
	// Checksum at enqueue, before the store may hand the payload to the
	// write-behind worker: the sum captures what the algorithm wrote, on the
	// algorithm goroutine, identically under pipeline on/off.
	var sum uint32
	if f.disk.checksum {
		sum = checksumElems(payload)
	}
	m := f.disk.iom
	var t0 time.Time
	if m != nil {
		m.logWrites.Inc()
		t0 = time.Now()
	}
	err := f.disk.store.append(f, payload)
	if m != nil {
		m.logWriteNS.ObserveEx(int64(time.Since(t0)), m.curSeq.Load())
	}
	if err != nil {
		// The block never landed; return its budget reservation.
		f.disk.creditBlocks(1)
		return &FaultError{Op: "write", File: f.name, Block: f.nblocks, Off: -1, Err: err}
	}
	if f.disk.checksum {
		f.sums = append(f.sums, sum)
	}
	f.nblocks++
	f.disk.noteAlloc(1)
	f.n += int64(len(payload))
	if len(payload) < b {
		f.sealed = true
	}
	return nil
}

// BlockLen returns the number of elements stored in block i without
// performing an I/O (block directory metadata is memory-resident, as in any
// real file system).
func (f *File) BlockLen(i int) (int, error) {
	if f.released {
		return 0, fmt.Errorf("%w (%s)", ErrReleased, f.name)
	}
	if i < 0 || i >= f.nblocks {
		return 0, fmt.Errorf("%w: block %d of %d in %s", ErrBlockRange, i, f.nblocks, f.name)
	}
	return f.blockLen(i), nil
}
