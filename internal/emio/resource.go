package emio

// Disk-byte budget enforcement.
//
// The EM model assumes unbounded disk, but a real machine has a scratch
// quota and a device that eventually returns ENOSPC. The diskBudget mirrors
// the memory Accountant for disk bytes: every block append charges one
// block's worth of bytes before touching the store, every release credits
// them back, and a charge that would exceed the configured limit fails with
// a typed *ResourceError carrying the live usage — the same error shape a
// real ENOSPC from the device is wrapped into, so callers handle "the model
// says you're out of disk" and "the device says you're out of disk"
// identically. The budget is shared between a parent Disk and its shard
// sub-disks (the counters are atomic), like the cancel cell.

import (
	"errors"
	"fmt"
	"log/slog"
	"sync/atomic"
)

// ErrDiskBudget marks disk-byte quota rejections, so callers can tell a
// model-enforced budget failure from a real device ENOSPC with errors.Is
// (both arrive wrapped in a *ResourceError).
var ErrDiskBudget = errors.New("emio: disk budget exceeded")

// ResourceError reports an operation abandoned because a storage resource
// ran out. It carries the live usage at the moment of failure so an operator
// (or an admission controller) can size the retry. Err is ErrDiskBudget for
// quota rejections and the device errno (syscall.ENOSPC) for real
// exhaustion; Budget is 0 in the latter case, where no model quota was set.
type ResourceError struct {
	Resource  string // the exhausted resource ("disk")
	File      string // file whose append hit the wall
	Used      int64  // live bytes charged when the failure hit
	Requested int64  // bytes the failed operation asked for (0 when unknown)
	Budget    int64  // configured quota in bytes; 0 when unbounded
	Err       error  // ErrDiskBudget or the device errno
}

func (e *ResourceError) Error() string {
	if e.Budget > 0 && errors.Is(e.Err, ErrDiskBudget) {
		return fmt.Sprintf("emio: %s budget exceeded appending to %s: %d live + %d requested > %d budget",
			e.Resource, e.File, e.Used, e.Requested, e.Budget)
	}
	return fmt.Sprintf("emio: %s exhausted on %s (%d bytes live): %v", e.Resource, e.File, e.Used, e.Err)
}

func (e *ResourceError) Unwrap() error { return e.Err }

// diskBudget is the disk-byte accountant of one Disk (shared with its shard
// sub-disks). With limit <= 0 it meters without enforcing, so DiskBytes and
// PeakDiskBytes report real footprints even on unbudgeted runs; the cost is
// one atomic add per block append or release, next to a syscall.
type diskBudget struct {
	limit int64 // quota in bytes; <= 0 meters only. Set before I/O starts.
	used  atomic.Int64
	peak  atomic.Int64
}

// charge reserves n bytes for an append to fname, failing with a typed
// *ResourceError when the quota would be exceeded. Lock-free CAS like the
// memory Accountant's.
func (a *diskBudget) charge(fname string, n int64) error {
	for {
		cur := a.used.Load()
		if a.limit > 0 && cur+n > a.limit {
			return &ResourceError{
				Resource: "disk", File: fname,
				Used: cur, Requested: n, Budget: a.limit,
				Err: ErrDiskBudget,
			}
		}
		if a.used.CompareAndSwap(cur, cur+n) {
			a.raisePeak(cur + n)
			return nil
		}
	}
}

// force records n bytes without enforcement: harness staging (BuildFile) and
// crash-resume adoption (AdoptFile) account blocks that already exist and
// must never be rejected.
func (a *diskBudget) force(n int64) {
	a.raisePeak(a.used.Add(n))
}

// credit returns n bytes to the budget.
func (a *diskBudget) credit(n int64) {
	if a.used.Add(-n) < 0 {
		panic("emio: disk budget credit below zero")
	}
}

func (a *diskBudget) raisePeak(v int64) {
	for {
		p := a.peak.Load()
		if v <= p || a.peak.CompareAndSwap(p, v) {
			return
		}
	}
}

// SetDiskBudget arms disk-byte quota enforcement at limit bytes (scratch and
// backing alike, charged block-granular at B·16 bytes per block); limit <= 0
// meters without enforcing. Configure before I/O starts — the limit is read
// concurrently by shard workers.
func (d *Disk) SetDiskBudget(limit int64) {
	if d.budget == nil {
		return
	}
	d.budget.limit = limit
	if limit > 0 {
		d.log(slog.LevelDebug, "disk budget armed", slog.Int64("bytes", limit))
	}
}

// DiskBudget returns the configured disk-byte quota, 0 when unbounded.
func (d *Disk) DiskBudget() int64 {
	if d.budget == nil {
		return 0
	}
	return max(d.budget.limit, 0)
}

// DiskBytes returns the bytes currently charged against the disk budget:
// one block's B·16 bytes for every live (unreleased, unconsumed) block.
func (d *Disk) DiskBytes() int64 {
	if d.budget == nil {
		return 0
	}
	return d.budget.used.Load()
}

// PeakDiskBytes returns the high-water mark of DiskBytes.
func (d *Disk) PeakDiskBytes() int64 {
	if d.budget == nil {
		return 0
	}
	return d.budget.peak.Load()
}

// blockBytes is the budget charge of one block: a full block's on-disk size.
// Partial blocks are charged like full ones — extent granularity, and what
// the free-list allocator actually reserves.
func (d *Disk) blockBytes() int64 {
	return int64(d.blockSize) * elemBytes
}

// BlockBytes returns the byte size of one block as the disk budget charges
// it, for callers sizing their transient footprint against DiskBudget.
func (d *Disk) BlockBytes() int64 { return d.blockBytes() }

// ConsumeLag returns how many blocks a consuming Reader keeps behind its
// cursor before reclaiming them (the prefetch depth plus one). Algorithms
// degrading under a disk budget use it to bound the transient footprint of a
// consuming merge: fan-in f holds at most f·(lag+1) unreclaimed input blocks.
func (d *Disk) ConsumeLag() int64 { return int64(d.prefetch) + 1 }

// chargeAppend reserves one block against the disk budget on behalf of f,
// bumping the quota-rejection telemetry on failure. Called by AppendBlock
// before the store sees the payload; a store-level failure rolls the charge
// back with creditBlocks.
func (d *Disk) chargeAppend(f *File) error {
	if d.budget == nil {
		return nil
	}
	if err := d.budget.charge(f.name, d.blockBytes()); err != nil {
		if d.iom != nil {
			d.iom.quotaRejects.Inc()
		}
		d.log(slog.LevelWarn, "append rejected by disk budget",
			slog.String("file", f.name), slog.Int64("used", d.budget.used.Load()),
			slog.Int64("budget", d.budget.limit))
		return err
	}
	return nil
}

// creditBlocks returns n blocks' bytes to the budget (release paths and
// append rollback).
func (d *Disk) creditBlocks(n int64) {
	if d.budget == nil || n == 0 {
		return
	}
	d.budget.credit(n * d.blockBytes())
}

// forceBlocks records n blocks' bytes without enforcement (staging, resume
// adoption).
func (d *Disk) forceBlocks(n int64) {
	if d.budget == nil || n == 0 {
		return
	}
	d.budget.force(n * d.blockBytes())
}
