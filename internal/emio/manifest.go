package emio

// File manifests: the durable directory metadata of checkpoint/resume.
//
// A FileManifest is everything a resumed process needs to re-adopt a file's
// blocks from the backing file of a crashed run: the element count, the
// extent list, and (when checksums are armed) the per-block CRC32C sidecar.
// The checkpoint layer journals manifests of completed phase outputs; on
// resume, a disk opened with NewFileBackedDiskResume over the same backing
// file reconstructs the files with AdoptFile — zero I/O, exactly like extent
// adoption between shards.
//
// Resume safety invariant: AdoptFile raises the store's append cursor past
// every adopted extent, so blocks written after the crash point — which the
// journal knows nothing about — can only ever land on fresh space or on
// extents the journaled state considers dead. Journaled data is never
// overwritten by the resumed run.

import (
	"fmt"
	"log/slog"
	"slices"
)

// FileManifest is the durable description of one file on a file-backed
// disk, sufficient to re-adopt its blocks after a crash. Produced by
// File.Manifest, consumed by Disk.AdoptFile, serialized (as JSON) inside
// journal records by the checkpoint layer.
type FileManifest struct {
	Name    string   `json:"name"`
	N       int64    `json:"n"`
	Extents []int64  `json:"extents"`
	Sums    []uint32 `json:"sums,omitempty"`
}

// Manifest captures the file's durable description for a journal record,
// draining pending write-behind blocks first so the manifest only ever
// describes bytes that have reached the backing file. Only ordinary files on
// file-backed disks can be manifested: views, memory-backed files and
// prefix-consumed files (ReleasePrefix) have no stable extent list to
// record.
func (f *File) Manifest() (FileManifest, error) {
	switch {
	case f.released:
		return FileManifest{}, fmt.Errorf("%w (%s)", ErrReleased, f.name)
	case f.viewSrc != nil:
		return FileManifest{}, fmt.Errorf("emio: manifest of %s: views are not manifestable", f.name)
	case f.freed > 0:
		return FileManifest{}, fmt.Errorf("emio: manifest of %s: prefix-consumed files are not manifestable", f.name)
	case len(f.extents) != f.nblocks:
		return FileManifest{}, fmt.Errorf("emio: manifest of %s: not a file-backed file", f.name)
	}
	if err := f.Sync(); err != nil {
		return FileManifest{}, err
	}
	m := FileManifest{Name: f.name, N: f.n, Extents: slices.Clone(f.extents)}
	if f.disk.checksum && len(f.sums) == f.nblocks {
		m.Sums = slices.Clone(f.sums)
	}
	return m, nil
}

// AdoptFile reconstructs a file from a journaled manifest, registering its
// extents with this disk — the crash-resume dual of Manifest. The disk must
// have been opened with NewFileBackedDiskResume over the same backing file
// and adoption must happen before new writes (the append cursor is raised
// past every adopted extent, so later allocations cannot resurrect on top of
// journaled data). Adopted blocks are force-charged against the disk budget
// and footprint meters; scratch tags the file for the leak detector like
// Ctx.Scratch would. Adopted files are sealed (resume only reads them).
func (d *Disk) AdoptFile(m FileManifest, scratch bool) (*File, error) {
	fs, ok := d.store.(*fileStore)
	if !ok {
		return nil, fmt.Errorf("emio: adopt %s: disk %s is not file-backed", m.Name, d.id)
	}
	if m.N < 0 {
		return nil, fmt.Errorf("emio: adopt %s: negative length %d", m.Name, m.N)
	}
	nblocks := int((m.N + int64(d.blockSize) - 1) / int64(d.blockSize))
	if len(m.Extents) != nblocks {
		return nil, fmt.Errorf("emio: adopt %s: %d extents for %d blocks", m.Name, len(m.Extents), nblocks)
	}
	f := d.NewFile(m.Name)
	f.n = m.N
	f.nblocks = nblocks
	f.sealed = true
	f.extents = slices.Clone(m.Extents)
	if d.checksum && len(m.Sums) == nblocks {
		f.sums = slices.Clone(m.Sums)
	}
	var end int64
	for i, off := range f.extents {
		if off < 0 {
			return nil, fmt.Errorf("emio: adopt %s: negative extent %d at block %d", m.Name, off, i)
		}
		if e := off + int64(fs.extentBytes(f, i)); e > end {
			end = e
		}
	}
	fs.adoptFloor(end)
	d.noteAlloc(int64(nblocks))
	d.forceBlocks(int64(nblocks))
	if scratch {
		d.markScratch(f)
	}
	d.log(slog.LevelInfo, "file adopted from journal manifest",
		slog.String("file", f.name), slog.Int("blocks", nblocks), slog.Int64("elems", m.N))
	return f, nil
}
