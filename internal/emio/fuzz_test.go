package emio

import (
	"encoding/binary"
	"testing"
)

// FuzzMarshalRoundTrip checks that arbitrary byte payloads survive
// decode→encode unchanged, and that the bulk (zero-copy) and portable codecs
// agree byte-for-byte in both directions. Run with `go test -fuzz
// FuzzMarshalRoundTrip ./internal/emio`.
func FuzzMarshalRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add(make([]byte, elemBytes))
	f.Add([]byte{0xde, 0xad, 0xbe, 0xef, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12})
	seed := make([]byte, 4*elemBytes)
	for i := range seed {
		seed[i] = byte(i * 37)
	}
	f.Add(seed)
	f.Fuzz(func(t *testing.T, raw []byte) {
		n := len(raw) / elemBytes
		if n == 0 {
			return
		}
		raw = raw[:n*elemBytes]

		bulkElems := make([]Elem, n)
		portElems := make([]Elem, n)
		decodeElems(bulkElems, raw, true)
		decodeElems(portElems, raw, false)
		for i := 0; i < n; i++ {
			if bulkElems[i] != portElems[i] {
				t.Fatalf("decode disagrees at element %d: bulk %v, portable %v", i, bulkElems[i], portElems[i])
			}
			wantKey := int64(binary.LittleEndian.Uint64(raw[i*elemBytes:]))
			wantAux := int64(binary.LittleEndian.Uint64(raw[i*elemBytes+8:]))
			if portElems[i].Key != wantKey || portElems[i].Aux != wantAux {
				t.Fatalf("element %d = %v, want {%d %d}", i, portElems[i], wantKey, wantAux)
			}
		}

		bulkRaw := make([]byte, n*elemBytes)
		portRaw := make([]byte, n*elemBytes)
		encodeElems(bulkRaw, bulkElems, true)
		encodeElems(portRaw, portElems, false)
		for i := range raw {
			if bulkRaw[i] != raw[i] {
				t.Fatalf("bulk re-encode differs from input at byte %d: 0x%02x vs 0x%02x", i, bulkRaw[i], raw[i])
			}
			if portRaw[i] != raw[i] {
				t.Fatalf("portable re-encode differs from input at byte %d: 0x%02x vs 0x%02x", i, portRaw[i], raw[i])
			}
		}

		// The checksum must agree across codec paths on the same payload.
		if a, b := checksumElems(bulkElems), checksumElemsPortable(portElems); a != b {
			t.Fatalf("checksum disagrees across codecs: bulk 0x%08x, portable 0x%08x", a, b)
		}
	})
}

// FuzzChecksumBitFlip checks that flipping any single bit of a payload always
// changes its CRC32C — i.e. checksum verification can never accept a
// one-bit corruption. (CRC32C detects all 1- and 2-bit errors by
// construction; this guards our element-wise implementation of it.)
func FuzzChecksumBitFlip(f *testing.F) {
	f.Add([]byte{0}, uint(0))
	f.Add(make([]byte, 3*elemBytes), uint(17))
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}, uint(100))
	f.Fuzz(func(t *testing.T, raw []byte, bitSeed uint) {
		n := len(raw) / elemBytes
		if n == 0 {
			return
		}
		raw = raw[:n*elemBytes]
		elems := make([]Elem, n)
		decodeElems(elems, raw, false)
		orig := checksumElems(elems)

		bit := int(bitSeed % uint(len(raw)*8))
		flipped := make([]byte, len(raw))
		copy(flipped, raw)
		flipped[bit/8] ^= 1 << (bit % 8)
		flippedElems := make([]Elem, n)
		decodeElems(flippedElems, flipped, false)
		if got := checksumElems(flippedElems); got == orig {
			t.Fatalf("flipping bit %d left crc32c unchanged at 0x%08x", bit, orig)
		}
	})
}
