package emio

import (
	"sync"
	"testing"
)

// TestAccountantConcurrent exercises the accountant from many goroutines at
// once — the access pattern of the parallel engine, where every shard
// charges its own sub-accountant while the coordinator reads Used() and the
// phase folds call RaisePeak on the parent. Run under -race this test fails
// on any non-atomic implementation (the pre-parallel accountant used plain
// int64 fields; charging from two goroutines was a data race and lost
// updates).
func TestAccountantConcurrent(t *testing.T) {
	const (
		workers = 8
		rounds  = 2000
		chunk   = 3
	)
	a := NewAccountant(int64(workers*chunk) + 5)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				if err := a.Charge(chunk); err != nil {
					t.Errorf("charge: %v", err)
					return
				}
				_ = a.Used()
				a.Credit(chunk)
			}
		}()
	}
	wg.Wait()
	if got := a.Used(); got != 0 {
		t.Fatalf("used = %d after balanced charge/credit, want 0", got)
	}
	// Peak is schedule-dependent here but always within [chunk, limit].
	if p := a.Peak(); p < chunk || p > a.Limit() {
		t.Fatalf("peak = %d, want within [%d, %d]", p, chunk, a.Limit())
	}
}

// TestAccountantConcurrentRaisePeak races RaisePeak (the fold operation)
// against charging goroutines: the final peak must be exactly the maximum of
// every raise and every observed usage high-water — a CAS-max, not a
// last-writer-wins store.
func TestAccountantConcurrentRaisePeak(t *testing.T) {
	a := NewAccountant(1 << 30)
	var wg sync.WaitGroup
	const top = 5000
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for v := int64(w); v <= top; v += 4 {
				a.RaisePeak(v)
			}
		}(w)
	}
	wg.Wait()
	if got := a.Peak(); got != top {
		t.Fatalf("peak = %d after concurrent raises to %d, want the max", got, top)
	}
	a.ResetPeak()
	if got := a.Peak(); got != a.Used() {
		t.Fatalf("peak = %d after reset, want current usage %d", got, a.Used())
	}
}

// TestAccountantBudgetUnderConcurrency proves the limit is enforced without
// over-admission when many goroutines contend for the last slot: with a
// budget of exactly workers*chunk elements, every concurrent holder fits and
// one extra charge must fail.
func TestAccountantBudgetUnderConcurrency(t *testing.T) {
	const (
		workers = 8
		chunk   = 4
	)
	a := NewAccountant(workers * chunk)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			if err := a.Charge(chunk); err != nil {
				t.Errorf("charge within budget: %v", err)
			}
		}()
	}
	close(start)
	wg.Wait()
	if got := a.Used(); got != workers*chunk {
		t.Fatalf("used = %d, want %d", got, workers*chunk)
	}
	if err := a.Charge(1); err == nil {
		t.Fatal("charge beyond budget succeeded")
	}
	if got := a.Peak(); got != workers*chunk {
		t.Fatalf("peak = %d includes a failed charge, want %d", got, workers*chunk)
	}
}
