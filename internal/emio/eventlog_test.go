package emio

import (
	"log/slog"
	"testing"
)

func TestEventLogRingEviction(t *testing.T) {
	el, err := NewEventLog(LogConfig{Enabled: true, Ring: 4})
	if err != nil {
		t.Fatal(err)
	}
	lg := slog.New(el)
	for i := 0; i < 10; i++ {
		lg.Info("event", "i", i)
	}
	if got := el.Total(); got != 10 {
		t.Errorf("Total = %d, want 10", got)
	}
	evs := el.Events()
	if len(evs) != 4 {
		t.Fatalf("ring holds %d events, want 4", len(evs))
	}
	// Oldest-first: the survivors are events 6..9.
	for i, ev := range evs {
		if got := ev.Attrs["i"]; got != int64(6+i) {
			t.Errorf("ring[%d].i = %v, want %d", i, got, 6+i)
		}
	}
}

func TestEventLogLevelFilter(t *testing.T) {
	el, err := NewEventLog(LogConfig{Enabled: true}) // zero Level = Info
	if err != nil {
		t.Fatal(err)
	}
	lg := slog.New(el)
	lg.Debug("dropped")
	lg.Warn("kept")
	evs := el.Events()
	if len(evs) != 1 || evs[0].Msg != "kept" {
		t.Fatalf("events = %+v, want only the warning", evs)
	}
	if el.Total() != 1 {
		t.Errorf("Total = %d, want 1", el.Total())
	}
}

func TestEventLogWithAttrsAndGroupsFlatten(t *testing.T) {
	el, err := NewEventLog(LogConfig{Enabled: true})
	if err != nil {
		t.Fatal(err)
	}
	lg := slog.New(el).With("bound", "yes").WithGroup("grp")
	lg.Info("msg", "k", 7)
	evs := el.Events()
	if len(evs) != 1 {
		t.Fatalf("got %d events", len(evs))
	}
	a := evs[0].Attrs
	if a["bound"] != "yes" {
		t.Errorf("bound attr = %v", a["bound"])
	}
	if a["grp.k"] != int64(7) {
		t.Errorf("grouped attr grp.k = %v, want 7", a["grp.k"])
	}
}

func TestDiskLogSpanEnrichment(t *testing.T) {
	// Events emitted inside nested spans carry the slash-joined phase path
	// and the span's seq; events outside any span carry neither.
	ctx := mustCtx(t, 64, 8)
	tr := NewTracer()
	ctx.SetTracer(tr)
	el, err := NewEventLog(LogConfig{Enabled: true, Level: slog.LevelDebug})
	if err != nil {
		t.Fatal(err)
	}
	d := ctx.Disk()
	d.AttachEventLog(el)

	root := ctx.StartSpan("outer")
	inner := ctx.StartSpan("inner")
	d.log(slog.LevelInfo, "inside")
	inner.End()
	root.End()
	d.log(slog.LevelInfo, "outside")

	var inside, outside *Event
	for i := range el.Events() {
		ev := el.Events()[i]
		switch ev.Msg {
		case "inside":
			inside = &ev
		case "outside":
			outside = &ev
		}
	}
	if inside == nil || outside == nil {
		t.Fatalf("missing events: %+v", el.Events())
	}
	if got := inside.Attrs["phase"]; got != "outer/inner" {
		t.Errorf("inside phase = %v, want outer/inner", got)
	}
	seq, ok := inside.Attrs["span_seq"].(int64)
	if !ok || len(tr.Find("inner")) != 1 || tr.Find("inner")[0].Seq != seq {
		t.Errorf("inside span_seq = %v, want the inner span's seq", inside.Attrs["span_seq"])
	}
	if _, ok := outside.Attrs["phase"]; ok {
		t.Errorf("event outside all spans carries phase = %v", outside.Attrs["phase"])
	}
	if outside.Attrs["disk"] == nil {
		t.Error("event lacks the disk id attr")
	}
	// Phase boundaries themselves were narrated at debug level.
	started := 0
	for _, ev := range el.Events() {
		if ev.Msg == "phase started" {
			started++
		}
	}
	if started != 2 {
		t.Errorf("phase started events = %d, want 2", started)
	}
}

func TestDiskLogWithoutTracer(t *testing.T) {
	// The event log works with no tracer attached: StartSpan still assigns
	// seqs and maintains the phase path for enrichment.
	ctx := mustCtx(t, 64, 8)
	el, err := NewEventLog(LogConfig{Enabled: true})
	if err != nil {
		t.Fatal(err)
	}
	d := ctx.Disk()
	d.AttachEventLog(el)
	sp := ctx.StartSpan("solo")
	d.log(slog.LevelInfo, "hello")
	sp.End()
	evs := el.Events()
	if len(evs) != 1 {
		t.Fatalf("got %d events, want 1 (phase events are debug-level)", len(evs))
	}
	if evs[0].Attrs["phase"] != "solo" {
		t.Errorf("phase = %v, want solo", evs[0].Attrs["phase"])
	}
}

func TestCtxConfigArmsEventLog(t *testing.T) {
	// Config.Log plumbs through NewCtx: an armed config attaches an owned
	// event log; an unarmed one leaves logging off.
	ctx, err := NewCtx(Config{M: 64, B: 8, Log: LogConfig{Enabled: true}})
	if err != nil {
		t.Fatal(err)
	}
	if ctx.Disk().EventLog() == nil {
		t.Fatal("armed Config.Log did not attach an event log")
	}
	off := mustCtx(t, 64, 8)
	if off.Disk().EventLog() != nil || off.Disk().Logger() != nil {
		t.Fatal("unarmed config attached logging")
	}
}

func TestLogConfigValidate(t *testing.T) {
	if _, err := NewCtx(Config{M: 64, B: 8, Log: LogConfig{Ring: -1}}); err == nil {
		t.Fatal("negative ring capacity validated")
	}
}

func TestSetLogHandlerDetach(t *testing.T) {
	ctx := mustCtx(t, 64, 8)
	d := ctx.Disk()
	el, err := NewEventLog(LogConfig{Enabled: true})
	if err != nil {
		t.Fatal(err)
	}
	d.SetLogHandler(el)
	d.log(slog.LevelInfo, "one")
	d.SetLogHandler(nil)
	d.log(slog.LevelInfo, "two") // must be a no-op, not a panic
	if got := el.Total(); got != 1 {
		t.Errorf("Total = %d, want 1 (detached sink received an event)", got)
	}
}

func TestEventLogExtraHandler(t *testing.T) {
	// LogConfig.Handler receives every kept record alongside the ring.
	sink, err := NewEventLog(LogConfig{Enabled: true})
	if err != nil {
		t.Fatal(err)
	}
	el, err := NewEventLog(LogConfig{Enabled: true, Handler: sink})
	if err != nil {
		t.Fatal(err)
	}
	slog.New(el).Info("fan-out")
	if sink.Total() != 1 || el.Total() != 1 {
		t.Errorf("extra=%d ring=%d, want 1 and 1", sink.Total(), el.Total())
	}
}
