package emio

import (
	"fmt"
	"math/rand/v2"
)

// Ctx bundles everything an EM algorithm needs: the machine configuration
// (M, B), the disk, the memory accountant, a deterministic random source for
// the randomized subroutines, and a scratch-file factory.
type Ctx struct {
	cfg    Config
	disk   *Disk
	mem    *Accountant
	rng    *rand.Rand
	tracer *Tracer // nil when tracing is disabled (the fast path)

	scratchSeq int64
}

// NewCtx creates a context with a fresh disk and an armed memory accountant.
// The random source is seeded deterministically; use SetSeed to vary it.
func NewCtx(cfg Config) (*Ctx, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	d := NewDisk(cfg.B)
	applyResilience(d, cfg)
	if err := applyLog(d, cfg); err != nil {
		return nil, err
	}
	return &Ctx{
		cfg:  cfg,
		disk: d,
		mem:  NewAccountant(int64(cfg.M)),
		rng:  rand.New(rand.NewPCG(0x7a1e5, 0x9e3779b9)),
	}, nil
}

// applyResilience arms the disk's opt-in resilience features named by the
// configuration. Additive only: a Config that leaves them off never clears
// features configured directly on an existing disk.
func applyResilience(d *Disk, cfg Config) {
	if cfg.Checksum {
		d.EnableChecksums()
	}
	if cfg.Retry.Enabled() {
		d.SetRetry(cfg.Retry)
	}
	if cfg.DiskBudget > 0 {
		d.SetDiskBudget(cfg.DiskBudget)
	}
}

// applyLog arms the structured event log when the configuration asks for one.
// Like applyResilience it is additive: a silent Config never detaches a log
// already attached to the disk.
func applyLog(d *Disk, cfg Config) error {
	if !cfg.Log.armed() || d.EventLog() != nil {
		return nil
	}
	el, err := NewEventLog(cfg.Log)
	if err != nil {
		return err
	}
	d.AttachEventLog(el)
	return nil
}

// NewCtxWithDisk creates a context over an existing disk (for example a
// file-backed one). The disk's block size must match cfg.B.
func NewCtxWithDisk(cfg Config, d *Disk) (*Ctx, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if d.BlockSize() != cfg.B {
		return nil, fmt.Errorf("%w: disk block size %d != B=%d", ErrBadConfig, d.BlockSize(), cfg.B)
	}
	applyResilience(d, cfg)
	if err := applyLog(d, cfg); err != nil {
		return nil, err
	}
	return &Ctx{
		cfg:  cfg,
		disk: d,
		mem:  NewAccountant(int64(cfg.M)),
		rng:  rand.New(rand.NewPCG(0x7a1e5, 0x9e3779b9)),
	}, nil
}

// NewUnmeteredCtx creates a context whose accountant meters but never
// rejects allocations. Useful for harness code and for measuring the peak
// memory an algorithm would need.
func NewUnmeteredCtx(cfg Config) (*Ctx, error) {
	c, err := NewCtx(cfg)
	if err != nil {
		return nil, err
	}
	c.mem = NewAccountant(0)
	return c, nil
}

// M returns the memory capacity in elements.
func (c *Ctx) M() int { return c.cfg.M }

// B returns the block size in elements.
func (c *Ctx) B() int { return c.cfg.B }

// Config returns the machine configuration.
func (c *Ctx) Config() Config { return c.cfg }

// Disk returns the block device.
func (c *Ctx) Disk() *Disk { return c.disk }

// Mem returns the memory accountant.
func (c *Ctx) Mem() *Accountant { return c.mem }

// Rng returns the context's deterministic random source.
func (c *Ctx) Rng() *rand.Rand { return c.rng }

// Err returns the job's cancellation state — nil while live, the
// *CancelledError once Disk.Cancel has been called. Algorithms with long
// compute stretches between I/Os (an in-memory sort of an M-element run)
// poll it so a cancel still lands promptly; pure I/O loops need no explicit
// checks, since every block transfer tests the same flag.
func (c *Ctx) Err() error { return c.disk.Cancelled() }

// SetSeed reseeds the context's random source.
func (c *Ctx) SetSeed(s1, s2 uint64) { c.rng = rand.New(rand.NewPCG(s1, s2)) }

// Scratch creates an empty scratch file tagged for diagnostics. Scratch
// files are tracked by the disk's live-file registry until released, which is
// what the leak detector (Disk.LiveScratchFiles, RequireNoLeaks) and the
// tracer's file columns observe.
func (c *Ctx) Scratch(tag string) *File {
	c.scratchSeq++
	f := c.disk.NewFile(fmt.Sprintf("scratch-%s-%d", tag, c.scratchSeq))
	c.disk.markScratch(f)
	return f
}

// AllocElems allocates an in-memory element buffer of length n, charged
// against the memory budget.
func (c *Ctx) AllocElems(n int) ([]Elem, error) {
	if err := c.mem.Charge(int64(n)); err != nil {
		return nil, err
	}
	return make([]Elem, n), nil
}

// FreeElems releases a buffer obtained from AllocElems. The slice must be
// passed back with its original length.
func (c *Ctx) FreeElems(s []Elem) {
	c.mem.Credit(int64(len(s)))
}

// AllocInts allocates an in-memory int64 buffer of length n, charged at two
// ints per element (an element is two words).
func (c *Ctx) AllocInts(n int) ([]int64, error) {
	if err := c.mem.Charge(intCharge(n)); err != nil {
		return nil, err
	}
	return make([]int64, n), nil
}

// FreeInts releases a buffer obtained from AllocInts, passed back with its
// original length.
func (c *Ctx) FreeInts(s []int64) {
	c.mem.Credit(intCharge(len(s)))
}

func intCharge(n int) int64 { return int64((n + 1) / 2) }
