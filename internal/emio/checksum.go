package emio

// Per-block CRC32C checksums for the resilient storage layer. Checksums are
// computed over a block's on-disk image (the little-endian 16-byte record
// stream) at write/enqueue time on the algorithm goroutine, kept in a
// memory-resident sidecar on the File (the on-disk layout is unchanged), and
// verified at the decode point of every read — which covers direct positioned
// reads, write-behind data read back, and prefetch-staged fills alike,
// because all of them funnel through File.readBlockAhead before the payload
// reaches an algorithm.
//
// Verification happens on the algorithm goroutine rather than inside the
// prefetch goroutines: the sidecar grows on the algorithm goroutine with each
// append, and the determinism contract wants corruption to surface at the
// logical read that consumes the block, identically under pipeline on/off.

import (
	"encoding/binary"
	"hash/crc32"
)

// castagnoliTable is the CRC32C polynomial table (hardware-accelerated on
// amd64/arm64 by hash/crc32).
var castagnoliTable = crc32.MakeTable(crc32.Castagnoli)

// checksumElems returns the CRC32C of payload's on-disk image. On
// little-endian hosts the in-memory image of the slice is the on-disk image
// and the sum is one pass over it; the portable path feeds the encoder's
// reference byte layout record by record, so both paths agree by
// construction with what encodeElems writes.
func checksumElems(payload []Elem) uint32 {
	if bulkCodecUsable() {
		return crc32.Update(0, castagnoliTable, elemBytesView(payload))
	}
	return checksumElemsPortable(payload)
}

// checksumElemsPortable is the reference implementation: encode each record
// through the canonical little-endian layout and feed it to the CRC.
func checksumElemsPortable(payload []Elem) uint32 {
	var raw [elemBytes]byte
	var sum uint32
	for _, e := range payload {
		binary.LittleEndian.PutUint64(raw[0:], uint64(e.Key))
		binary.LittleEndian.PutUint64(raw[8:], uint64(e.Aux))
		sum = crc32.Update(sum, castagnoliTable, raw[:])
	}
	return sum
}
