package emio

import (
	"errors"
	"fmt"
)

// Accountant meters an algorithm's internal-memory consumption against the
// model's budget of M elements. Every in-memory buffer an algorithm holds is
// allocated through the owning Ctx, which charges it here; exceeding the
// budget is an error, so "this algorithm runs in memory M" is enforced at
// test time instead of being asserted in a comment.
//
// Charges are in elements (two words). Integer side arrays are charged at two
// int64s per element via Ctx.AllocInts.
type Accountant struct {
	limit int64
	used  int64
	peak  int64
}

// ErrMemoryBudget is wrapped by allocation failures.
var ErrMemoryBudget = errors.New("emio: memory budget exceeded")

// NewAccountant creates an accountant with the given budget in elements.
// A non-positive limit means unlimited (metering without enforcement).
func NewAccountant(limit int64) *Accountant {
	return &Accountant{limit: limit}
}

// Charge records an allocation of n elements. It fails, leaving the meter
// unchanged, if the budget would be exceeded.
func (a *Accountant) Charge(n int64) error {
	if n < 0 {
		panic(fmt.Sprintf("emio: negative memory charge %d", n))
	}
	if a.limit > 0 && a.used+n > a.limit {
		return fmt.Errorf("%w: in use %d + requested %d > M=%d", ErrMemoryBudget, a.used, n, a.limit)
	}
	a.used += n
	if a.used > a.peak {
		a.peak = a.used
	}
	return nil
}

// Credit records the release of n elements.
func (a *Accountant) Credit(n int64) {
	if n < 0 {
		panic(fmt.Sprintf("emio: negative memory credit %d", n))
	}
	a.used -= n
	if a.used < 0 {
		panic(fmt.Sprintf("emio: memory meter underflow (%d)", a.used))
	}
}

// Used returns the elements currently charged.
func (a *Accountant) Used() int64 { return a.used }

// Peak returns the high-water mark of the meter.
func (a *Accountant) Peak() int64 { return a.peak }

// Limit returns the budget (0 or negative means unlimited).
func (a *Accountant) Limit() int64 { return a.limit }

// ResetPeak lowers the high-water mark to the current usage, so a caller can
// measure the peak of one phase in isolation.
func (a *Accountant) ResetPeak() { a.peak = a.used }
