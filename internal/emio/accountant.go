package emio

import (
	"errors"
	"fmt"
	"sync/atomic"
)

// Accountant meters an algorithm's internal-memory consumption against the
// model's budget of M elements. Every in-memory buffer an algorithm holds is
// allocated through the owning Ctx, which charges it here; exceeding the
// budget is an error, so "this algorithm runs in memory M" is enforced at
// test time instead of being asserted in a comment.
//
// Charges are in elements (two words). Integer side arrays are charged at two
// int64s per element via Ctx.AllocInts.
//
// The meter is lock-free and safe for concurrent use: Charge reserves with a
// compare-and-swap against the limit, Credit is an atomic add, and the peak
// is maintained by a CAS-max loop. The parallel engine gives every shard its
// own Accountant and merges peaks deterministically (in shard order) through
// RaisePeak, so totals are identical for every worker count.
type Accountant struct {
	limit int64
	used  atomic.Int64
	peak  atomic.Int64
}

// ErrMemoryBudget is wrapped by allocation failures.
var ErrMemoryBudget = errors.New("emio: memory budget exceeded")

// NewAccountant creates an accountant with the given budget in elements.
// A non-positive limit means unlimited (metering without enforcement).
func NewAccountant(limit int64) *Accountant {
	return &Accountant{limit: limit}
}

// Charge records an allocation of n elements. It fails, leaving the meter
// unchanged, if the budget would be exceeded.
func (a *Accountant) Charge(n int64) error {
	if n < 0 {
		panic(fmt.Sprintf("emio: negative memory charge %d", n))
	}
	for {
		cur := a.used.Load()
		next := cur + n
		if a.limit > 0 && next > a.limit {
			return fmt.Errorf("%w: in use %d + requested %d > M=%d", ErrMemoryBudget, cur, n, a.limit)
		}
		if a.used.CompareAndSwap(cur, next) {
			a.RaisePeak(next)
			return nil
		}
	}
}

// Credit records the release of n elements.
func (a *Accountant) Credit(n int64) {
	if n < 0 {
		panic(fmt.Sprintf("emio: negative memory credit %d", n))
	}
	if v := a.used.Add(-n); v < 0 {
		panic(fmt.Sprintf("emio: memory meter underflow (%d)", v))
	}
}

// Used returns the elements currently charged.
func (a *Accountant) Used() int64 { return a.used.Load() }

// Peak returns the high-water mark of the meter.
func (a *Accountant) Peak() int64 { return a.peak.Load() }

// Limit returns the budget (0 or negative means unlimited).
func (a *Accountant) Limit() int64 { return a.limit }

// RaisePeak lifts the high-water mark to at least v (CAS-max; never lowers
// it). The parallel engine uses it to fold per-shard peaks into the parent
// meter; the tracer uses it to restore an enclosing span's scoped peak.
func (a *Accountant) RaisePeak(v int64) {
	for {
		p := a.peak.Load()
		if v <= p || a.peak.CompareAndSwap(p, v) {
			return
		}
	}
}

// ResetPeak lowers the high-water mark to the current usage, so a caller can
// measure the peak of one phase in isolation.
func (a *Accountant) ResetPeak() { a.peak.Store(a.used.Load()) }
