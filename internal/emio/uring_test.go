package emio

import (
	"bytes"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/emio/metrics"
)

// The io_uring backend's unit tests. Everything here is skip-gated on
// UringSupported, so the suite degrades to a visible skip (never a silent
// pass) on kernels and platforms without io_uring; the cross-backend output
// and Stats guarantees are proved by the top-level parity suite.

// uringConfigs spans the ring's composition space: bare ring, ring under the
// async pipeline, ring over O_DIRECT, and SQPOLL.
func uringConfigs(t *testing.T) []Pipeline {
	t.Helper()
	if !UringSupported() {
		t.Skip("io_uring not supported on this kernel/platform")
	}
	ps := []Pipeline{
		{Uring: true},
		{Enabled: true, Uring: true, PrefetchDepth: 4, QueueDepth: 2},
		{Enabled: true, Uring: true, UringDepth: 4},
		{Enabled: true, Uring: true, SQPoll: true},
	}
	if DirectIOSupported(t.TempDir()) {
		ps = append(ps, Pipeline{Enabled: true, Uring: true, Direct: true})
	}
	return ps
}

func TestUringRoundTrip(t *testing.T) {
	for _, p := range uringConfigs(t) {
		for _, n := range []int{0, 1, 7, 8, 9, 100, 1000, 4096} {
			base := NumGoroutines()
			d, err := NewFileBackedDiskPipeline(filepath.Join(t.TempDir(), "u.dat"), 8, p)
			if err != nil {
				t.Fatal(err)
			}
			if !d.UringActive() {
				t.Fatalf("p=%+v: UringActive() = false despite supported kernel", p)
			}
			ctx, err := NewCtxWithDisk(Config{M: 64, B: 8}, d)
			if err != nil {
				t.Fatal(err)
			}
			in := seqElems(n)
			f, err := StoreAll(ctx, "rt", in)
			if err != nil {
				t.Fatalf("n=%d p=%+v: %v", n, p, err)
			}
			got := f.Snapshot()
			if len(got) != n {
				t.Fatalf("n=%d p=%+v: got %d elems", n, p, len(got))
			}
			for i := range in {
				if got[i] != in[i] {
					t.Fatalf("n=%d p=%+v: differs at %d: %v vs %v", n, p, i, got[i], in[i])
				}
			}
			// Second sequential pass drives the completion-driven read-ahead.
			r, err := NewReader(ctx, f)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; ; i++ {
				e, ok := r.Next()
				if !ok {
					break
				}
				if e != in[i] {
					t.Fatalf("n=%d p=%+v: reader differs at %d", n, p, i)
				}
			}
			if r.Err() != nil {
				t.Fatal(r.Err())
			}
			r.Close()
			// Release and rewrite through recycled extents.
			f.Release()
			f2, err := StoreAll(ctx, "rt2", in)
			if err != nil {
				t.Fatal(err)
			}
			got2 := f2.Snapshot()
			for i := range in {
				if got2[i] != in[i] {
					t.Fatalf("n=%d p=%+v: reuse differs at %d", n, p, i)
				}
			}
			if err := d.Close(); err != nil {
				t.Fatal(err)
			}
			// The completion reaper (and the pipeline workers) must be gone.
			RequireNoGoroutineLeaks(t, base)
		}
	}
}

// TestUringSlotContention hammers a depth-2 ring from many goroutines so
// acquirers routinely commit to a blocking enter(GETEVENTS) while the slot
// they need comes back channel-side through release. This is the liveness
// race the slotWaiters/poke protocol closes: a driver that re-checked the
// free list just before a release would otherwise park in the kernel with no
// completion ever coming. The test completing (under the suite timeout) is
// the assertion; -race additionally checks the registration ordering.
func TestUringSlotContention(t *testing.T) {
	if !UringSupported() {
		t.Skip("io_uring not supported on this kernel/platform")
	}
	f, err := os.Create(filepath.Join(t.TempDir(), "ring.dat"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	u, err := newUring(f, 2, false)
	if err != nil {
		t.Fatal(err)
	}
	const workers, iters, sz = 8, 200, 512
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			buf := bytes.Repeat([]byte{byte(w + 1)}, sz)
			got := make([]byte, sz)
			for i := 0; i < iters; i++ {
				off := int64(w*iters+i) * sz
				if err := u.pwrite(buf, off); err != nil {
					errs <- err
					return
				}
				if err := u.pread(got, off); err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(got, buf) {
					t.Errorf("worker %d iter %d: read back wrong data", w, i)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := u.close(); err != nil {
		t.Fatal(err)
	}
}

// TestUringStatsMatchSynchronous proves the determinism contract across the
// physical backends: logical Stats must be bit-identical whether transfers go
// through blocking syscalls or the ring, pipelined or not.
func TestUringStatsMatchSynchronous(t *testing.T) {
	if !UringSupported() {
		t.Skip("io_uring not supported on this kernel/platform")
	}
	run := func(p Pipeline) Stats {
		d, err := NewFileBackedDiskPipeline(filepath.Join(t.TempDir(), "s.dat"), 8, p)
		if err != nil {
			t.Fatal(err)
		}
		defer d.Close()
		ctx, err := NewCtxWithDisk(Config{M: 1 << 12, B: 8}, d)
		if err != nil {
			t.Fatal(err)
		}
		in := seqElems(3000)
		f, err := StoreAll(ctx, "x", in)
		if err != nil {
			t.Fatal(err)
		}
		d.ResetStats()
		dup, err := Copy(ctx, f)
		if err != nil {
			t.Fatal(err)
		}
		buf, err := LoadAll(ctx, dup)
		if err != nil {
			t.Fatal(err)
		}
		ctx.FreeElems(buf)
		dup.Release()
		return d.Stats()
	}
	sync := run(Pipeline{})
	for _, p := range []Pipeline{
		{Uring: true},
		{Enabled: true, Uring: true},
		{Enabled: true, Uring: true, SQPoll: true},
	} {
		if got := run(p); got != sync {
			t.Errorf("p=%+v: Stats %v != synchronous %v", p, got, sync)
		}
	}
}

// TestUringMetricsHistograms checks the ring records its submission
// telemetry: the SQE-batch and queue-depth histograms must have samples after
// a pipelined run through the ring.
func TestUringMetricsHistograms(t *testing.T) {
	if !UringSupported() {
		t.Skip("io_uring not supported on this kernel/platform")
	}
	d, err := NewFileBackedDiskPipeline(filepath.Join(t.TempDir(), "m.dat"), 8,
		Pipeline{Enabled: true, Uring: true, PrefetchDepth: 4, QueueDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	reg := metrics.New()
	d.EnableMetrics(reg)
	ctx, err := NewCtxWithDisk(Config{M: 1 << 13, B: 8}, d)
	if err != nil {
		t.Fatal(err)
	}
	in := seqElems(4096)
	f, err := StoreAll(ctx, "m", in)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := LoadAll(ctx, f); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	for _, name := range []string{"empart_uring_sqe_batch", "empart_uring_queue_depth"} {
		h, ok := snap.Histograms[name]
		if !ok {
			t.Fatalf("histogram %q not registered", name)
		}
		if h.Count == 0 {
			t.Errorf("histogram %q has no samples after a ring-backed run", name)
		}
	}
}
