package emio

import (
	"os"
	"path/filepath"
	"testing"
)

func fileBackedCtx(t *testing.T, m, b int) *Ctx {
	t.Helper()
	path := filepath.Join(t.TempDir(), "backing.dat")
	d, err := NewFileBackedDisk(path, b)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	ctx, err := NewCtxWithDisk(Config{M: m, B: b}, d)
	if err != nil {
		t.Fatal(err)
	}
	return ctx
}

func TestFileBackedRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 7, 8, 9, 100, 1000} {
		ctx := fileBackedCtx(t, 64, 8)
		in := seqElems(n)
		f, err := StoreAll(ctx, "rt", in)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		got := f.Snapshot()
		if len(got) != n {
			t.Fatalf("n=%d: got %d", n, len(got))
		}
		for i := range in {
			if got[i] != in[i] {
				t.Fatalf("n=%d: differs at %d: %v vs %v", n, i, got[i], in[i])
			}
		}
	}
}

func TestFileBackedNegativeKeys(t *testing.T) {
	ctx := fileBackedCtx(t, 64, 8)
	in := []Elem{{Key: -1, Aux: -9}, {Key: -(1 << 60), Aux: 1 << 60}, {Key: 0, Aux: -1}}
	f, err := StoreAll(ctx, "neg", in)
	if err != nil {
		t.Fatal(err)
	}
	got := f.Snapshot()
	for i := range in {
		if got[i] != in[i] {
			t.Fatalf("negative encoding broken at %d: %v vs %v", i, got[i], in[i])
		}
	}
}

func TestFileBackedIOCountsMatchMemory(t *testing.T) {
	// The same operation sequence must cost identical I/Os on both backends.
	run := func(ctx *Ctx) Stats {
		in := seqElems(500)
		f := BuildFile(ctx.Disk(), "x", in)
		ctx.Disk().ResetStats()
		dup, err := Copy(ctx, f)
		if err != nil {
			t.Fatal(err)
		}
		buf, err := LoadAll(ctx, dup)
		if err != nil {
			t.Fatal(err)
		}
		ctx.FreeElems(buf)
		dup.Release()
		return ctx.Disk().Stats()
	}
	memCtx := mustCtx(t, 1024, 8)
	fbCtx := fileBackedCtx(t, 1024, 8)
	if a, b := run(memCtx), run(fbCtx); a != b {
		t.Errorf("memory backend %v != file backend %v", a, b)
	}
}

func TestFileBackedBuildFileAndReaders(t *testing.T) {
	ctx := fileBackedCtx(t, 64, 8)
	in := seqElems(100)
	f := BuildFile(ctx.Disk(), "bf", in)
	if ctx.Disk().Stats().Total() != 0 {
		t.Fatal("BuildFile charged I/Os")
	}
	r, err := NewReader(ctx, f)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	for i := 0; ; i++ {
		e, ok := r.Next()
		if !ok {
			break
		}
		if e != in[i] {
			t.Fatalf("reader differs at %d", i)
		}
	}
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
}

func TestFileBackedReleaseAndInterleavedFiles(t *testing.T) {
	// Blocks of different files interleave in the log; releasing one must
	// not disturb another.
	ctx := fileBackedCtx(t, 64, 8)
	wa, _ := NewWriter(ctx, ctx.Scratch("a"))
	fb := ctx.Scratch("b")
	wb, _ := NewWriter(ctx, fb)
	var fa *File
	{
		faf := ctx.Scratch("a2")
		wa2, _ := NewWriter(ctx, faf)
		for i := 0; i < 50; i++ {
			wa2.Append(Elem{Key: int64(i), Aux: 1})
			wb.Append(Elem{Key: int64(100 + i), Aux: 2})
		}
		if err := wa2.Close(); err != nil {
			t.Fatal(err)
		}
		fa = faf
	}
	if err := wb.Close(); err != nil {
		t.Fatal(err)
	}
	wa.Close()
	fa.Release()
	got := fb.Snapshot()
	for i, e := range got {
		if e.Key != int64(100+i) || e.Aux != 2 {
			t.Fatalf("file b corrupted at %d: %v", i, e)
		}
	}
}

func TestFileBackedDiskGrowsOnDisk(t *testing.T) {
	path := filepath.Join(t.TempDir(), "grow.dat")
	d, err := NewFileBackedDisk(path, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	ctx, err := NewCtxWithDisk(Config{M: 64, B: 8}, d)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := StoreAll(ctx, "g", seqElems(1000)); err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(1000 * elemBytes); fi.Size() != want {
		t.Errorf("backing file is %d bytes, want %d", fi.Size(), want)
	}
}

func TestNewCtxWithDiskValidates(t *testing.T) {
	d := NewDisk(8)
	if _, err := NewCtxWithDisk(Config{M: 64, B: 16}, d); err == nil {
		t.Error("block size mismatch accepted")
	}
	if _, err := NewCtxWithDisk(Config{M: 4, B: 8}, d); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestFileBackedDiskRejectsBadPath(t *testing.T) {
	if _, err := NewFileBackedDisk("/nonexistent-dir-xyz/f.dat", 8); err == nil {
		t.Error("bad path accepted")
	}
	if _, err := NewFileBackedDisk("x.dat", 0); err == nil {
		t.Error("zero block size accepted")
	}
}
