package emio

import (
	"errors"
	"fmt"
)

// Config fixes the parameters of the external-memory machine.
//
// M is the internal memory capacity and B the block size, both in elements.
// The model requires M >= 2B (the machine must at least hold two blocks).
type Config struct {
	M int // memory capacity, in elements
	B int // block size, in elements
}

// ErrBadConfig is wrapped by all Config validation errors.
var ErrBadConfig = errors.New("emio: invalid configuration")

// Validate checks the model constraints: B >= 1 and M >= 2B.
func (c Config) Validate() error {
	if c.B < 1 {
		return fmt.Errorf("%w: block size B=%d, need B >= 1", ErrBadConfig, c.B)
	}
	if c.M < 2*c.B {
		return fmt.Errorf("%w: memory M=%d with block size B=%d, need M >= 2B", ErrBadConfig, c.M, c.B)
	}
	return nil
}

// Blocks returns the number of blocks needed to store n elements,
// i.e. ceil(n/B). Zero elements need zero blocks.
func (c Config) Blocks(n int64) int64 {
	if n <= 0 {
		return 0
	}
	return (n + int64(c.B) - 1) / int64(c.B)
}

// FanOut returns the largest k such that k block buffers plus slack spare
// elements fit in memory: k = floor((M - spare) / B). It never returns less
// than 1 so callers can always make progress (a degenerate fan-out of 1 only
// slows an algorithm down; it cannot break correctness).
func (c Config) FanOut(spare int) int {
	k := (c.M - spare) / c.B
	if k < 1 {
		k = 1
	}
	return k
}

// String renders the configuration as "M=… B=…".
func (c Config) String() string {
	return fmt.Sprintf("M=%d B=%d", c.M, c.B)
}
