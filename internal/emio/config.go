package emio

import (
	"errors"
	"fmt"
)

// Config fixes the parameters of the external-memory machine.
//
// M is the internal memory capacity and B the block size, both in elements.
// The model requires M >= 2B (the machine must at least hold two blocks).
//
// Pipeline configures the asynchronous I/O pipeline of file-backed disks; it
// affects only physical transfers and wall-clock speed, never the logical
// I/O counters, and is ignored by memory-backed disks.
//
// Checksum and Retry arm the opt-in resilience layer: per-block CRC32C
// verification on every read, and bounded retry of transient physical-I/O
// failures. Both are bit-identical on the logical model — with no faults
// injected, outputs, Stats and trace JSON match a resilience-off run.
//
// Log arms the structured event log (see LogConfig); like the other
// telemetry legs it is strictly observational and changes no outputs.
//
// Workers selects the parallel sharded execution engine: 0 (the default)
// runs every algorithm sequentially; w >= 1 runs the parallelizable
// operations over S logical shards driven by w worker goroutines. The shard
// count S is a deterministic function of M and B alone, so outputs, logical
// Stats and trace JSON are bit-identical for every positive worker count —
// workers change only wall-clock speed.
type Config struct {
	M int // memory capacity, in elements
	B int // block size, in elements

	Workers int // parallel worker goroutines; 0 = sequential execution

	Pipeline Pipeline // async physical-I/O pipeline (file-backed disks)

	Checksum bool  // verify per-block CRC32C checksums on every read
	Retry    Retry // bounded retry of transient physical-transfer failures

	// DiskBudget bounds the job's live disk footprint (scratch plus staged
	// inputs and outputs) in bytes; 0 leaves the model's disk unbounded.
	// Appends that would exceed it fail with a typed *ResourceError, after
	// extsort has degraded gracefully (narrower merge fan, consuming reads —
	// more passes, still within the paper's O(n/B·log_{M/B}) bound).
	DiskBudget int64

	Log LogConfig // structured event log (ring + JSON-lines + extra handler)
}

// Pipeline configures the asynchronous prefetch/write-behind pipeline of a
// file-backed disk. When Enabled, block appends are encoded into pooled
// buffers and written by a background worker (bounded by QueueDepth), and
// sequential readers trigger coalesced read-ahead of up to PrefetchDepth
// contiguous blocks in one positioned read. The pipeline moves only physical
// transfers off the algorithm goroutine: logical I/O accounting, fault-hook
// firing and trace spans happen at enqueue time, so Stats and outputs are
// bit-identical with the pipeline on or off.
// Direct is independent of Enabled: it opens the backing file with O_DIRECT
// (on platforms that support it), bypassing the OS page cache so every
// physical transfer pays real device latency — the cost regime the EM model
// assumes. It composes with the pipeline in either state, which is what makes
// pipeline-on/off wall-clock comparisons on a direct-I/O backing fair.
// Direct I/O constrains physical transfers to 512-byte-aligned offsets,
// lengths and buffers; the store pads partial blocks to honor this, which can
// grow the backing file's byte footprint (never the logical I/O counts).
// Use DirectIOSupported to probe the filesystem first.
//
// Uring routes physical transfers through a Linux io_uring: SQEs are batched
// and submitted with one io_uring_enter per batch instead of one blocking
// pread/pwrite syscall per transfer, with the store's pooled buffers
// registered as fixed buffers and completions dispatched by a dedicated
// reaper goroutine. Like Direct it is independent of Enabled and composes
// with it (an O_DIRECT backing driven through the ring is the
// closest-to-device configuration), and like Direct it degrades silently —
// to the syscall paths — where UringSupported reports false. UringDepth is
// the submission-queue depth (the kernel rounds it up to a power of two) and
// bounds in-flight transfers; SQPoll additionally asks for kernel
// submission-queue polling, falling back to a plain ring where unavailable.
// The ring changes only how raw transfers reach the device: logical I/O
// accounting, checksums, retry, fault injection and tracing wrap its
// completions exactly as they wrap syscall returns, so outputs, Stats and
// trace JSON are bit-identical across {buffered, direct, uring}.
type Pipeline struct {
	Enabled       bool
	PrefetchDepth int  // blocks of sequential read-ahead; 0 means DefaultPrefetchDepth
	QueueDepth    int  // write-behind queue depth in blocks; 0 means DefaultQueueDepth
	Direct        bool // open the backing file with O_DIRECT (see above)
	Uring         bool // submit physical transfers through an io_uring (see above)
	UringDepth    int  // io_uring submission-queue depth; 0 means DefaultUringDepth
	SQPoll        bool // io_uring kernel submission-queue polling (implies Uring)
}

// Default pipeline depths, used when a depth knob is left at zero.
const (
	DefaultPrefetchDepth = 8
	DefaultQueueDepth    = 16
	DefaultUringDepth    = 64
)

// withDefaults fills zero depth knobs with the package defaults.
func (p Pipeline) withDefaults() Pipeline {
	if p.PrefetchDepth == 0 {
		p.PrefetchDepth = DefaultPrefetchDepth
	}
	if p.QueueDepth == 0 {
		p.QueueDepth = DefaultQueueDepth
	}
	if p.UringDepth == 0 {
		p.UringDepth = DefaultUringDepth
	}
	if p.SQPoll {
		p.Uring = true
	}
	return p
}

// validate rejects negative depth knobs.
func (p Pipeline) validate() error {
	if p.PrefetchDepth < 0 {
		return fmt.Errorf("%w: prefetch depth %d < 0", ErrBadConfig, p.PrefetchDepth)
	}
	if p.QueueDepth < 0 {
		return fmt.Errorf("%w: write-behind queue depth %d < 0", ErrBadConfig, p.QueueDepth)
	}
	if p.UringDepth < 0 {
		return fmt.Errorf("%w: io_uring queue depth %d < 0", ErrBadConfig, p.UringDepth)
	}
	return nil
}

// ErrBadConfig is wrapped by all Config validation errors.
var ErrBadConfig = errors.New("emio: invalid configuration")

// Validate checks the model constraints: B >= 1 and M >= 2B.
func (c Config) Validate() error {
	if c.B < 1 {
		return fmt.Errorf("%w: block size B=%d, need B >= 1", ErrBadConfig, c.B)
	}
	if c.M < 2*c.B {
		return fmt.Errorf("%w: memory M=%d with block size B=%d, need M >= 2B", ErrBadConfig, c.M, c.B)
	}
	if c.Workers < 0 {
		return fmt.Errorf("%w: workers %d < 0", ErrBadConfig, c.Workers)
	}
	if c.DiskBudget < 0 {
		return fmt.Errorf("%w: disk budget %d < 0", ErrBadConfig, c.DiskBudget)
	}
	if err := c.Retry.validate(); err != nil {
		return err
	}
	if err := c.Log.validate(); err != nil {
		return err
	}
	return c.Pipeline.validate()
}

// Blocks returns the number of blocks needed to store n elements,
// i.e. ceil(n/B). Zero elements need zero blocks.
func (c Config) Blocks(n int64) int64 {
	if n <= 0 {
		return 0
	}
	return (n + int64(c.B) - 1) / int64(c.B)
}

// FanOut returns the largest k such that k block buffers plus slack spare
// elements fit in memory: k = floor((M - spare) / B). It never returns less
// than 1 so callers can always make progress (a degenerate fan-out of 1 only
// slows an algorithm down; it cannot break correctness).
func (c Config) FanOut(spare int) int {
	k := (c.M - spare) / c.B
	if k < 1 {
		k = 1
	}
	return k
}

// String renders the configuration as "M=… B=…".
func (c Config) String() string {
	return fmt.Sprintf("M=%d B=%d", c.M, c.B)
}
