package emio

import (
	"encoding/json"
	"strings"
	"testing"
)

// writeScratch creates a scratch file of n sequential elements inside the
// current span, charging the usual writer I/Os.
func writeScratch(t *testing.T, ctx *Ctx, n int) *File {
	t.Helper()
	f := ctx.Scratch("t")
	w, err := NewWriter(ctx, f)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		w.Append(Elem{Key: int64(i), Aux: int64(i)})
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return f
}

func TestStartSpanWithoutTracerIsNil(t *testing.T) {
	ctx := mustCtx(t, 64, 8)
	sp := ctx.StartSpan("phase", AttrInt("n", 1))
	if sp != nil {
		t.Fatalf("StartSpan without tracer = %v, want nil", sp)
	}
	// All nil-span methods must be no-ops, not panics.
	sp.End()
	sp.SetAttr("k", 2)
	if sp.Open() {
		t.Error("nil span reports open")
	}
}

func TestSpanTreeNestingAndIO(t *testing.T) {
	ctx := mustCtx(t, 64, 8)
	tr := NewTracer()
	ctx.SetTracer(tr)

	root := ctx.StartSpan("root", AttrInt("n", 32))
	aSp := ctx.StartSpan("child-a")
	fa := writeScratch(t, ctx, 32)
	aSp.End()
	bSp := ctx.StartSpan("child-b")
	fb := writeScratch(t, ctx, 16)
	bSp.End()
	root.End()
	fa.Release()
	fb.Release()

	roots := tr.Roots()
	if len(roots) != 1 || roots[0].Name != "root" {
		t.Fatalf("roots = %v", roots)
	}
	r := roots[0]
	if len(r.Children) != 2 {
		t.Fatalf("root has %d children, want 2", len(r.Children))
	}
	a, b := r.Children[0], r.Children[1]
	if a.Depth != 1 || b.Depth != 1 || r.Depth != 0 {
		t.Errorf("depths root=%d a=%d b=%d", r.Depth, a.Depth, b.Depth)
	}
	if a.IO.Writes != 4 { // 32 elements / B=8
		t.Errorf("child-a writes = %d, want 4", a.IO.Writes)
	}
	if b.IO.Writes != 2 {
		t.Errorf("child-b writes = %d, want 2", b.IO.Writes)
	}
	// Counters are inclusive: the root saw both children's I/O.
	if r.IO.Total() != a.IO.Total()+b.IO.Total() {
		t.Errorf("root IO %d != children sum %d", r.IO.Total(), a.IO.Total()+b.IO.Total())
	}
	if a.FilesCreated != 1 || a.LiveFileDelta != 1 {
		t.Errorf("child-a files=%d live∆=%d, want 1, 1", a.FilesCreated, a.LiveFileDelta)
	}
	if r.FilesCreated != 2 {
		t.Errorf("root files=%d, want 2", r.FilesCreated)
	}
}

func TestSpanPeakMemoryIsScoped(t *testing.T) {
	ctx := mustCtx(t, 256, 8)
	tr := NewTracer()
	ctx.SetTracer(tr)

	root := ctx.StartSpan("root")
	big := ctx.StartSpan("big")
	buf, err := ctx.AllocElems(100)
	if err != nil {
		t.Fatal(err)
	}
	ctx.FreeElems(buf)
	big.End()
	small := ctx.StartSpan("small")
	buf2, err := ctx.AllocElems(10)
	if err != nil {
		t.Fatal(err)
	}
	ctx.FreeElems(buf2)
	small.End()
	root.End()

	r := tr.Roots()[0]
	bigSp, smallSp := r.Children[0], r.Children[1]
	if bigSp.PeakMem < 100 {
		t.Errorf("big span peak %d, want >= 100", bigSp.PeakMem)
	}
	// The quiet sibling must report its own peak, not the earlier phase's.
	if smallSp.PeakMem >= 100 {
		t.Errorf("small span peak %d leaked from sibling", smallSp.PeakMem)
	}
	if r.PeakMem < bigSp.PeakMem {
		t.Errorf("root peak %d < child peak %d", r.PeakMem, bigSp.PeakMem)
	}
	// The accountant's own high-water mark survives span scoping.
	if got := ctx.Mem().Peak(); got < 100 {
		t.Errorf("accountant peak %d, want >= 100", got)
	}
}

func TestSpanEndClosesOpenDescendants(t *testing.T) {
	ctx := mustCtx(t, 64, 8)
	tr := NewTracer()
	ctx.SetTracer(tr)

	root := ctx.StartSpan("root")
	ctx.StartSpan("left-open") // an error path unwound past its End
	ctx.StartSpan("deeper")
	root.End()

	r := tr.Roots()[0]
	if r.Open() {
		t.Error("root still open")
	}
	if len(r.Children) != 1 || r.Children[0].Open() {
		t.Error("dangling child not closed by ancestor End")
	}
	if len(r.Children[0].Children) != 1 || r.Children[0].Children[0].Open() {
		t.Error("dangling grandchild not closed")
	}
	// Double End is harmless.
	root.End()
	if len(tr.Roots()) != 1 {
		t.Errorf("double End duplicated roots: %d", len(tr.Roots()))
	}
}

func TestTracerRenderAndJSON(t *testing.T) {
	ctx := mustCtx(t, 64, 8)
	tr := NewTracer()
	ctx.SetTracer(tr)
	sp := ctx.StartSpan("alpha", AttrInt("n", 7), AttrStr("mode", "fast"))
	f := writeScratch(t, ctx, 8)
	sp.End()
	f.Release()

	out := tr.Render()
	for _, want := range []string{"alpha n=7 mode=fast", "ios", "peakMem"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render() missing %q:\n%s", want, out)
		}
	}

	raw, err := tr.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var spans []SpanJSON
	if err := json.Unmarshal(raw, &spans); err != nil {
		t.Fatalf("JSON round-trip: %v", err)
	}
	if len(spans) != 1 || spans[0].Name != "alpha" || spans[0].Writes != 1 {
		t.Errorf("JSON export = %+v", spans)
	}
	if spans[0].Attrs["n"] != float64(7) {
		t.Errorf("attr n = %v", spans[0].Attrs["n"])
	}

	tr.Reset()
	if len(tr.Roots()) != 0 {
		t.Error("Reset left roots behind")
	}
}

func TestFindAndWalk(t *testing.T) {
	ctx := mustCtx(t, 64, 8)
	tr := NewTracer()
	ctx.SetTracer(tr)
	for i := 0; i < 3; i++ {
		sp := ctx.StartSpan("outer")
		ctx.StartSpan("inner").End()
		sp.End()
	}
	if got := len(tr.Find("inner")); got != 3 {
		t.Errorf("Find(inner) = %d spans, want 3", got)
	}
	var n int
	tr.Walk(func(*Span) { n++ })
	if n != 6 {
		t.Errorf("Walk visited %d spans, want 6", n)
	}
}

func TestLiveFilesAndLeakDetector(t *testing.T) {
	ctx := mustCtx(t, 64, 8)
	f := writeScratch(t, ctx, 8)
	staged := BuildFile(ctx.Disk(), "staged", seqElems(8))

	live := ctx.Disk().LiveFiles()
	if len(live) != 2 {
		t.Fatalf("LiveFiles = %v, want 2 entries", live)
	}
	scratch := ctx.Disk().LiveScratchFiles()
	if len(scratch) != 1 || !strings.HasPrefix(scratch[0], "scratch-t-") {
		t.Fatalf("LiveScratchFiles = %v", scratch)
	}

	ft := &fakeT{}
	RequireNoLeaks(ft, ctx)
	if !ft.failed {
		t.Error("RequireNoLeaks passed with a live scratch file")
	}

	f.Release()
	f.Release() // double release must not corrupt the registry
	ft2 := &fakeT{}
	RequireNoLeaks(ft2, ctx)
	if ft2.failed {
		t.Errorf("RequireNoLeaks failed with no scratch leaks: %s", ft2.msg)
	}
	// The staged input is still live but is not an algorithm leak.
	if got := ctx.Disk().LiveFiles(); len(got) != 1 || got[0] != "staged" {
		t.Errorf("LiveFiles after release = %v", got)
	}
	staged.Release()
}

type fakeT struct {
	failed bool
	msg    string
}

func (f *fakeT) Helper() {}
func (f *fakeT) Fatalf(format string, args ...any) {
	f.failed = true
	f.msg = format
}

func TestTraceJSONOrderingIsDeterministic(t *testing.T) {
	// Exported children must appear in start-sequence order even if the
	// in-memory slice was somehow permuted, and startSeq must be present so
	// trace diffs can key on it.
	ctx := mustCtx(t, 64, 8)
	tr := NewTracer()
	ctx.SetTracer(tr)

	root := ctx.StartSpan("root")
	for _, name := range []string{"a", "b", "c"} {
		sp := ctx.StartSpan(name)
		sp.End()
	}
	root.End()

	r := tr.Roots()[0]
	if len(r.Children) != 3 {
		t.Fatalf("children = %d, want 3", len(r.Children))
	}
	for i, ch := range r.Children {
		if ch.Seq != r.Seq+int64(i)+1 {
			t.Errorf("child %q Seq = %d, want %d", ch.Name, ch.Seq, r.Seq+int64(i)+1)
		}
	}

	// Scramble the recorded order; export must restore start order.
	r.Children[0], r.Children[2] = r.Children[2], r.Children[0]
	out, err := tr.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var spans []SpanJSON
	if err := json.Unmarshal(out, &spans); err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, ch := range spans[0].Children {
		names = append(names, ch.Name)
	}
	if strings.Join(names, ",") != "a,b,c" {
		t.Errorf("exported child order = %v, want [a b c]", names)
	}
	if spans[0].StartSeq != 1 || spans[0].Children[0].StartSeq != 2 {
		t.Errorf("startSeq missing or wrong: root=%d firstChild=%d",
			spans[0].StartSeq, spans[0].Children[0].StartSeq)
	}
	rendered := tr.Render()
	if !strings.Contains(rendered, "· a") {
		t.Errorf("Render did not restore start order:\n%s", rendered)
	}
}
