//go:build !linux || !(amd64 || arm64 || riscv64)

package emio

// kickWriteback is a no-op where sync_file_range(2) is unavailable: the
// background flusher degrades to doing nothing and the checkpoint barrier's
// fsync pays the full residual, which is correct, just slower.
func kickWriteback(uintptr) {}
