package emio

// Platform-independent declarations of the io_uring physical backend. The
// ring itself (type uring) is built per platform: uring_linux.go carries the
// real submission/completion machinery over raw syscalls, uring_other.go a
// stub that is never constructed because UringSupported reports false there.
//
// The backend swaps only how raw positioned transfers reach the device —
// pread/pwrite syscalls versus SQE submission and CQE completion on a shared
// ring — and sits strictly below the EM model: logical I/O accounting, fault
// hooks, checksums, retry and tracing all run at enqueue time on the
// algorithm goroutine exactly as they do for the syscall paths, so outputs,
// Stats and trace JSON are bit-identical across {buffered, direct, uring}.

// uringReq is one positioned transfer prepped for batched submission: the
// caller owns slot (acquired from the ring) and collects the raw CQE result
// with wait(slot) after submit.
type uringReq struct {
	op   ioOp
	buf  []byte
	off  int64
	slot uint32
}
