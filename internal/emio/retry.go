package emio

// Bounded retry of transient physical-I/O failures. The policy lives in
// Config.Retry and applies to every positioned ReadAt/WriteAt — on the
// algorithm goroutine for the synchronous store, on the write-behind worker
// and prefetch goroutines under the pipeline. Retry never changes logical
// accounting: a retried transfer is still one logical I/O, one physical op in
// PhysStats, and the extra attempts are visible only in RetryStats, the
// metrics registry and trace spans.
//
// Backoff is exponential with deterministic jitter: the sleep before attempt
// k is (base << (k-1)) scaled into [0.5x, 1.5x) by a splitmix64 hash of
// (seed, offset, k). No shared random state, so concurrent pipeline workers
// never contend and a given (seed, offset, attempt) always backs off the
// same amount.

import (
	"fmt"
	"log/slog"
	"sync/atomic"
	"time"

	"repro/internal/emio/metrics"
)

// Retry configures bounded retry of transient physical-transfer failures.
// The zero value disables retry (every transfer gets exactly one attempt);
// transient failures then still surface as typed *TransientError.
type Retry struct {
	MaxAttempts int           // total attempts per transfer; <= 1 disables retry
	BaseBackoff time.Duration // sleep before the 2nd attempt, doubling per attempt; 0 means DefaultBaseBackoff
	MaxBackoff  time.Duration // backoff ceiling; 0 means DefaultMaxBackoff
	Seed        uint64        // jitter seed; 0 means DefaultRetrySeed
}

// Default retry knobs, used when a field is left at zero.
const (
	DefaultBaseBackoff = 50 * time.Microsecond
	DefaultMaxBackoff  = 5 * time.Millisecond
	// DefaultRetrySeed matches the Ctx's deterministic PCG seed, so an
	// unconfigured jitter stream is reproducible like every other random
	// draw in the model.
	DefaultRetrySeed = 0x7a1e5
)

// Enabled reports whether the policy grants more than one attempt.
func (r Retry) Enabled() bool { return r.MaxAttempts > 1 }

// withDefaults fills zero knobs with the package defaults.
func (r Retry) withDefaults() Retry {
	if r.BaseBackoff == 0 {
		r.BaseBackoff = DefaultBaseBackoff
	}
	if r.MaxBackoff == 0 {
		r.MaxBackoff = DefaultMaxBackoff
	}
	if r.Seed == 0 {
		r.Seed = DefaultRetrySeed
	}
	return r
}

// validate rejects negative knobs.
func (r Retry) validate() error {
	if r.MaxAttempts < 0 {
		return fmt.Errorf("%w: retry attempts %d < 0", ErrBadConfig, r.MaxAttempts)
	}
	if r.BaseBackoff < 0 || r.MaxBackoff < 0 {
		return fmt.Errorf("%w: negative retry backoff (base %v, max %v)", ErrBadConfig, r.BaseBackoff, r.MaxBackoff)
	}
	return nil
}

// RetryStats is a snapshot of the retry layer's counters.
type RetryStats struct {
	Retries   int64 // failed attempts that were retried
	Giveups   int64 // transfers abandoned after exhausting the attempt budget
	BackoffNS int64 // total backoff slept, in nanoseconds
}

// retrier is the runtime form of a Retry policy: the normalized knobs plus
// counters bumped from whichever goroutine performs the transfer.
type retrier struct {
	pol       Retry
	retries   atomic.Int64
	giveups   atomic.Int64
	backoffNS atomic.Int64

	// m holds the registry instruments, nil until metrics are enabled. An
	// atomic pointer because pipeline goroutines record through it while
	// EnableMetrics stores it from the algorithm goroutine.
	m atomic.Pointer[retryMetrics]
}

func newRetrier(pol Retry) *retrier {
	return &retrier{pol: pol.withDefaults()}
}

func (r *retrier) stats() RetryStats {
	return RetryStats{
		Retries:   r.retries.Load(),
		Giveups:   r.giveups.Load(),
		BackoffNS: r.backoffNS.Load(),
	}
}

// retryMetrics are the registry instruments of the retry layer. Handles are
// shard-bound but safe from any goroutine; retries are rare events, so shard
// contention is irrelevant.
type retryMetrics struct {
	retries   *metrics.CounterHandle
	giveups   *metrics.CounterHandle
	backoffNS *metrics.HistogramHandle
}

func newRetryMetrics(reg *metrics.Registry) *retryMetrics {
	return &retryMetrics{
		retries: reg.Counter("empart_io_retries_total",
			"transient physical-transfer failures that were retried").Handle(),
		giveups: reg.Counter("empart_io_retry_giveups_total",
			"physical transfers abandoned after exhausting the retry budget").Handle(),
		backoffNS: reg.Histogram("empart_io_retry_backoff_ns",
			"backoff slept before one retry attempt", "ns").Handle(),
	}
}

// splitmix64 is the standard 64-bit finalizing mixer, used to derive
// independent deterministic jitter from (seed, offset, attempt).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// backoffFor returns the jittered sleep before attempt+1, deterministic in
// (policy seed, transfer offset, attempt index).
func (r *retrier) backoffFor(off int64, attempt int) time.Duration {
	d := r.pol.BaseBackoff
	for i := 1; i < attempt && d < r.pol.MaxBackoff; i++ {
		d *= 2
	}
	if d > r.pol.MaxBackoff {
		d = r.pol.MaxBackoff
	}
	h := splitmix64(r.pol.Seed ^ uint64(off)*0x9e3779b97f4a7c15 ^ uint64(attempt))
	frac := float64(h>>11) / (1 << 53) // uniform in [0, 1)
	return d/2 + time.Duration(frac*float64(d))
}

// ioOp distinguishes physical reads from writes in the retry and
// fault-injection layers.
type ioOp uint8

const (
	opRead ioOp = iota
	opWrite
)

func (op ioOp) String() string {
	if op == opRead {
		return "read"
	}
	return "write"
}

// runPhys executes one physical transfer attempt function under the disk's
// fault injector and retry policy. The injector (when armed) sees the op
// exactly once — retries of the transfer replay the same scheduled fault
// episode rather than advancing the schedule. Transient failures are retried
// up to the policy's budget with jittered backoff; a transfer that stays
// transient to the end is wrapped in *TransientError, any other failure is
// returned as-is for the caller to attribute. Safe on a nil Disk (plain
// single attempt).
func (d *Disk) runPhys(op ioOp, fname string, off int64, fn func() error) error {
	var pf *plannedFault
	var r *retrier
	if d != nil {
		if inj := d.inj.Load(); inj != nil {
			pf = inj.begin(op)
		}
		r = d.retry
	}
	maxAttempts := 1
	if r != nil && r.pol.MaxAttempts > 1 {
		maxAttempts = r.pol.MaxAttempts
	}
	for attempt := 1; ; attempt++ {
		// Cancellation bounds the retry loop: a cancel flag flipped during a
		// backoff storm aborts before the next attempt, on whichever
		// goroutine (algorithm, write worker, prefetch) runs the transfer.
		if d != nil {
			if cerr := d.checkCancel(); cerr != nil {
				return cerr
			}
		}
		err := pf.next()
		if err == nil {
			err = fn()
		}
		if err == nil || !isTransient(err) {
			return err
		}
		if attempt >= maxAttempts {
			if r != nil {
				r.giveups.Add(1)
				if m := r.m.Load(); m != nil {
					m.giveups.Inc()
				}
			}
			if d != nil {
				d.log(slog.LevelError, "transfer abandoned after retries",
					slog.String("op", op.String()), slog.String("file", fname),
					slog.Int64("off", off), slog.Int("attempts", attempt))
			}
			return &TransientError{Op: op.String(), File: fname, Offset: off, Attempts: attempt, Err: err}
		}
		sleep := r.backoffFor(off, attempt)
		d.log(slog.LevelWarn, "transient failure, retrying",
			slog.String("op", op.String()), slog.String("file", fname),
			slog.Int64("off", off), slog.Int("attempt", attempt),
			slog.Duration("backoff", sleep))
		time.Sleep(sleep)
		r.retries.Add(1)
		r.backoffNS.Add(int64(sleep))
		if m := r.m.Load(); m != nil {
			m.retries.Inc()
			var seq int64
			if d.iom != nil {
				seq = d.iom.curSeq.Load()
			}
			m.backoffNS.ObserveEx(int64(sleep), seq)
		}
	}
}
