package emio

// Phase-level tracing: a Tracer carried by a Ctx records a tree of spans,
// one per algorithm phase (a merge pass, a recursion level, a scatter scan),
// and attributes to each span exactly the resources the EM model cares
// about — block reads/writes, the memory-accountant high-water mark, the
// live-disk-block high-water mark, and scratch-file traffic. The paper's
// bounds are all per-phase (merge sort does ceil(lg_{M/B}(N/B)) passes,
// multi-selection recurses to depth O(lg_{M/B}(K/B))), so spans turn those
// bounds into assertable facts instead of whole-algorithm aggregates.
//
// The tracer is strictly observational: starting and ending a span reads
// counters that the disk and accountant already maintain and performs no
// I/O, no random draws and no budgeted allocation, so a traced run's
// Disk.Stats() are bit-identical to an untraced run's. With no tracer
// attached, Ctx.StartSpan returns a nil *Span whose End is a no-op — the
// untraced fast path is one nil check per phase boundary.

import (
	"cmp"
	"encoding/json"
	"fmt"
	"log/slog"
	"slices"
	"strings"
	"text/tabwriter"
	"time"
)

// Attr is one key/value annotation on a span (an input size, a fan-in, a
// parameter regime).
type Attr struct {
	Key string
	Val any
}

// AttrInt builds an integer-valued span attribute.
func AttrInt(key string, val int64) Attr { return Attr{Key: key, Val: val} }

// AttrStr builds a string-valued span attribute.
func AttrStr(key, val string) Attr { return Attr{Key: key, Val: val} }

// Span is one node of the trace tree: a named phase with the resource deltas
// observed between its start and its end. All counters are inclusive of the
// span's children (phases nest; a child's I/O is also its parent's I/O).
type Span struct {
	Name     string
	Attrs    []Attr
	Children []*Span

	// IO is the block-transfer delta across the span.
	IO Stats
	// PeakMem is the memory-accountant high-water mark reached within the
	// span (peak-scoped: a quiet span reports its own peak, not an earlier
	// phase's).
	PeakMem int64
	// PeakDisk is the live-disk-block high-water mark reached within the
	// span, similarly scoped.
	PeakDisk int64
	// FilesCreated counts the scratch files created during the span.
	FilesCreated int64
	// LiveFileDelta is the change in live (unreleased) scratch files across
	// the span: positive values are files the span handed to its caller —
	// or leaked.
	LiveFileDelta int64
	// Depth is the nesting depth in the trace tree (roots are 0).
	Depth int
	// Retries counts the physical-transfer retry attempts the resilience
	// layer performed during the span (inclusive of children, like IO).
	// Zero — and omitted from trace JSON — unless a retry policy is armed
	// and transient faults actually occurred.
	Retries int64
	// Seq is the span's start sequence number, assigned by the tracer in
	// strictly increasing order of StartSpan calls. Children are exported
	// sorted by Seq, so trace JSON and rendered trees are deterministic by
	// construction rather than by scheduler accident.
	Seq int64

	tracer *Tracer
	ctx    *Ctx
	parent *Span
	open   bool

	// metricsOnly marks a span created with metrics or logging enabled but
	// no tracer attached: it feeds the phase gauges and the log span context
	// and records nothing else.
	metricsOnly bool
	phasePushed bool
	phaseDepth  int
	logPushed   bool
	logDepth    int

	// Wall-clock bounds, read by the OTLP exporter. Purely observational —
	// they never appear in the deterministic trace JSON.
	startWall, endWall time.Time

	startStats    Stats
	startSeq      int64
	startLive     int
	startRetries  int64
	savedPeakMem  int64
	savedPeakDisk int64
}

// Tracer records a forest of spans. Attach one to a Ctx with SetTracer; each
// top-level algorithm call then contributes one root span. A Tracer is not
// safe for concurrent use, matching the sequential EM model.
type Tracer struct {
	roots []*Span
	cur   *Span
	seq   int64
}

// NewTracer creates an empty tracer.
func NewTracer() *Tracer { return &Tracer{} }

// SetTracer attaches (or, with nil, detaches) a tracer to the context.
func (c *Ctx) SetTracer(t *Tracer) { c.tracer = t }

// Tracer returns the attached tracer, nil when tracing is disabled.
func (c *Ctx) Tracer() *Tracer { return c.tracer }

// StartSpan opens a span as a child of the currently open span (or as a new
// root). It returns nil when no tracer is attached and metrics and logging
// are disabled; a nil *Span's methods are all no-ops, so instrumentation
// sites need no tracing checks of their own. With metrics or logging enabled
// but no tracer, the returned span records nothing in a trace tree — it only
// drives the live phase gauges (empart_phase, empart_phase_depth) and the
// event log's span context.
func (c *Ctx) StartSpan(name string, attrs ...Attr) *Span {
	if c.tracer == nil {
		d := c.disk
		m := d.iom
		if m == nil && d.logger == nil {
			return nil
		}
		d.spanSeq++
		sp := &Span{
			Name:        name,
			Seq:         d.spanSeq,
			ctx:         c,
			open:        true,
			metricsOnly: true,
		}
		if m != nil {
			sp.phasePushed = true
			sp.phaseDepth = m.pushPhase(name, sp.Seq)
		}
		if d.logger != nil {
			sp.logPushed = true
			sp.logDepth = d.pushLogSpan(name, sp.Seq)
			d.log(slog.LevelDebug, "phase started")
		}
		return sp
	}
	return c.tracer.start(c, name, attrs)
}

func (t *Tracer) start(c *Ctx, name string, attrs []Attr) *Span {
	t.seq++
	sp := &Span{
		Name:          name,
		Attrs:         attrs,
		Seq:           t.seq,
		tracer:        t,
		ctx:           c,
		parent:        t.cur,
		open:          true,
		startStats:    c.disk.stats,
		startSeq:      c.scratchSeq,
		startLive:     c.disk.liveScratch,
		startRetries:  c.disk.retryCount(),
		savedPeakMem:  c.mem.Peak(),
		savedPeakDisk: c.disk.PeakLiveBlocks(),
	}
	sp.startWall = time.Now()
	if m := c.disk.iom; m != nil {
		sp.phasePushed = true
		sp.phaseDepth = m.pushPhase(name, sp.Seq)
	}
	if c.disk.logger != nil {
		sp.logPushed = true
		sp.logDepth = c.disk.pushLogSpan(name, sp.Seq)
		c.disk.log(slog.LevelDebug, "phase started")
	}
	if t.cur != nil {
		sp.Depth = t.cur.Depth + 1
		t.cur.Children = append(t.cur.Children, sp)
	} else {
		t.roots = append(t.roots, sp)
	}
	t.cur = sp
	// Scope the high-water marks to this span; End restores the enclosing
	// span's view. Purely observational — never affects budget enforcement.
	c.mem.ResetPeak()
	c.disk.ResetPeakLive()
	return sp
}

// End closes the span, recording its resource deltas. Safe on a nil or
// already-ended span. If descendants are still open (an error unwound past
// their End calls), they are closed first so the tree stays well-formed.
func (sp *Span) End() {
	if sp == nil || !sp.open {
		return
	}
	if sp.metricsOnly {
		sp.open = false
		if sp.logPushed {
			sp.ctx.disk.log(slog.LevelDebug, "phase ended")
		}
		sp.popPhase()
		sp.popLog()
		return
	}
	t := sp.tracer
	for t.cur != nil && t.cur != sp {
		t.cur.finish()
	}
	sp.finish()
}

// popPhase restores the metrics phase stack to the depth captured at span
// start. Truncation (rather than a single pop) keeps the stack consistent
// when an error unwinds past nested End calls.
func (sp *Span) popPhase() {
	if !sp.phasePushed {
		return
	}
	if m := sp.ctx.disk.iom; m != nil {
		m.popPhaseTo(sp.phaseDepth)
	}
}

// popLog is popPhase for the event log's span context.
func (sp *Span) popLog() {
	if !sp.logPushed {
		return
	}
	sp.ctx.disk.popLogSpanTo(sp.logDepth)
}

func (sp *Span) finish() {
	c := sp.ctx
	sp.endWall = time.Now()
	sp.IO = c.disk.stats.Sub(sp.startStats)
	sp.PeakMem = c.mem.Peak()
	sp.PeakDisk = c.disk.PeakLiveBlocks()
	sp.FilesCreated = c.scratchSeq - sp.startSeq
	sp.LiveFileDelta = int64(c.disk.liveScratch - sp.startLive)
	sp.Retries = c.disk.retryCount() - sp.startRetries
	c.mem.RaisePeak(sp.savedPeakMem)
	c.disk.RaisePeakLive(sp.savedPeakDisk)
	sp.open = false
	sp.tracer.cur = sp.parent
	if sp.logPushed {
		c.disk.log(slog.LevelDebug, "phase ended",
			slog.Int64("reads", sp.IO.Reads), slog.Int64("writes", sp.IO.Writes))
	}
	sp.popPhase()
	sp.popLog()
}

// SetAttr appends an attribute to the span after the fact (for values known
// only at phase end, like a run count). No-op on a nil span.
func (sp *Span) SetAttr(key string, val int64) {
	if sp == nil {
		return
	}
	sp.Attrs = append(sp.Attrs, AttrInt(key, val))
}

// Open reports whether the span has not been ended yet (false for nil).
func (sp *Span) Open() bool { return sp != nil && sp.open }

// Roots returns the top-level spans recorded so far.
func (t *Tracer) Roots() []*Span { return t.roots }

// Reset discards all recorded spans. Open spans are abandoned; callers reset
// only between top-level algorithm invocations.
func (t *Tracer) Reset() { t.roots, t.cur = nil, nil }

// Graft adopts the given span forest — typically the roots recorded by a
// shard-local tracer — into this tracer, attaching the roots as children of
// the currently open span (or as new top-level roots when none is open).
// Every adopted span is renumbered with fresh Seq values in pre-order, with
// siblings visited in their original start order, and re-homed onto this
// tracer; because the coordinator grafts shard forests in shard order, the
// resulting tree is identical for every worker count even though the shards
// recorded their spans concurrently.
func (t *Tracer) Graft(roots []*Span) {
	roots = slices.Clone(roots)
	slices.SortStableFunc(roots, func(a, b *Span) int { return cmp.Compare(a.Seq, b.Seq) })
	var rec func(sp *Span, parent *Span, depth int)
	rec = func(sp *Span, parent *Span, depth int) {
		t.seq++
		sp.Seq = t.seq
		sp.Depth = depth
		sp.parent = parent
		sp.tracer = t
		ch := sp.orderedChildren()
		sp.Children = ch
		for _, c := range ch {
			rec(c, sp, depth+1)
		}
	}
	for _, r := range roots {
		depth := 0
		if t.cur != nil {
			depth = t.cur.Depth + 1
		}
		rec(r, t.cur, depth)
		if t.cur != nil {
			t.cur.Children = append(t.cur.Children, r)
		} else {
			t.roots = append(t.roots, r)
		}
	}
}

// Walk visits every recorded span in pre-order (parents before children).
func (t *Tracer) Walk(fn func(*Span)) {
	var rec func(*Span)
	rec = func(sp *Span) {
		fn(sp)
		for _, ch := range sp.Children {
			rec(ch)
		}
	}
	for _, r := range t.roots {
		rec(r)
	}
}

// Find returns every recorded span with the given name, in pre-order.
func (t *Tracer) Find(name string) []*Span {
	var out []*Span
	t.Walk(func(sp *Span) {
		if sp.Name == name {
			out = append(out, sp)
		}
	})
	return out
}

// orderedChildren returns the span's children sorted by start sequence.
// On the sequential EM model insertion order already equals start order, so
// this is normally the identity; sorting makes exported trace ordering a
// structural guarantee rather than a scheduler accident.
func (sp *Span) orderedChildren() []*Span {
	ch := slices.Clone(sp.Children)
	slices.SortStableFunc(ch, func(a, b *Span) int { return cmp.Compare(a.Seq, b.Seq) })
	return ch
}

// label renders "name k=v k=v" for the human-readable tree.
func (sp *Span) label() string {
	if len(sp.Attrs) == 0 {
		return sp.Name
	}
	var b strings.Builder
	b.WriteString(sp.Name)
	for _, a := range sp.Attrs {
		fmt.Fprintf(&b, " %s=%v", a.Key, a.Val)
	}
	return b.String()
}

// Render returns the human-readable indented span tree with one column per
// tracked resource. Spans still open when rendering are marked "(open)" and
// show zero deltas.
func (t *Tracer) Render() string {
	var b strings.Builder
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "span\tios\treads\twrites\tpeakMem\tpeakDisk\tfiles\tlive∆")
	var rec func(sp *Span, depth int)
	rec = func(sp *Span, depth int) {
		label := strings.Repeat("· ", depth) + sp.label()
		if sp.open {
			label += " (open)"
		}
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d\t%d\t%d\t%+d\n",
			label, sp.IO.Total(), sp.IO.Reads, sp.IO.Writes,
			sp.PeakMem, sp.PeakDisk, sp.FilesCreated, sp.LiveFileDelta)
		for _, ch := range sp.orderedChildren() {
			rec(ch, depth+1)
		}
	}
	for _, r := range t.roots {
		rec(r, 0)
	}
	w.Flush()
	return b.String()
}

// SpanJSON is the export form of one span, marshaled by Tracer.JSON.
type SpanJSON struct {
	Name          string         `json:"name"`
	StartSeq      int64          `json:"startSeq"`
	Attrs         map[string]any `json:"attrs,omitempty"`
	Reads         int64          `json:"reads"`
	Writes        int64          `json:"writes"`
	IOs           int64          `json:"ios"`
	PeakMem       int64          `json:"peakMem"`
	PeakDisk      int64          `json:"peakDiskBlocks"`
	FilesCreated  int64          `json:"filesCreated"`
	LiveFileDelta int64          `json:"liveFileDelta"`
	Retries       int64          `json:"retries,omitempty"`
	Children      []SpanJSON     `json:"children,omitempty"`
}

func (sp *Span) export() SpanJSON {
	j := SpanJSON{
		Name:          sp.Name,
		StartSeq:      sp.Seq,
		Reads:         sp.IO.Reads,
		Writes:        sp.IO.Writes,
		IOs:           sp.IO.Total(),
		PeakMem:       sp.PeakMem,
		PeakDisk:      sp.PeakDisk,
		FilesCreated:  sp.FilesCreated,
		LiveFileDelta: sp.LiveFileDelta,
		Retries:       sp.Retries,
	}
	if len(sp.Attrs) > 0 {
		j.Attrs = make(map[string]any, len(sp.Attrs))
		for _, a := range sp.Attrs {
			j.Attrs[a.Key] = a.Val
		}
	}
	for _, ch := range sp.orderedChildren() {
		j.Children = append(j.Children, ch.export())
	}
	return j
}

// JSON marshals the recorded span forest as an indented JSON array. Roots and
// children appear in start-sequence order, so the bytes are stable across
// runs and scheduler interleavings.
func (t *Tracer) JSON() ([]byte, error) {
	roots := slices.Clone(t.roots)
	slices.SortStableFunc(roots, func(a, b *Span) int { return cmp.Compare(a.Seq, b.Seq) })
	out := make([]SpanJSON, 0, len(roots))
	for _, r := range roots {
		out = append(out, r.export())
	}
	return json.MarshalIndent(out, "", "  ")
}
