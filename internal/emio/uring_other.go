//go:build !linux || !(amd64 || arm64 || riscv64)

package emio

import (
	"errors"
	"os"
	"sync/atomic"
)

// The io_uring backend exists only on Linux ports whose raw syscall numbers
// uring_linux.go carries. Here UringSupported reports false, newUring always
// fails, and Pipeline.Uring degrades to the pread/pwrite paths with no
// behavior change — the same silent-degradation contract as Pipeline.Direct
// on filesystems without O_DIRECT.

// UringSupported reports false: no io_uring on this platform.
func UringSupported() bool { return false }

var errNoUring = errors.New("emio: io_uring unavailable on this platform")

// uring is never constructed on this platform (newFileStore consults
// UringSupported first); the type and methods exist so the store and pipeline
// compile unchanged.
type uring struct {
	sm *atomic.Pointer[storeMetrics]
}

func newUring(*os.File, int, bool) (*uring, error) { return nil, errNoUring }

func (*uring) pread([]byte, int64) error                             { return errNoUring }
func (*uring) pwrite([]byte, int64) error                            { return errNoUring }
func (*uring) acquire() (uint32, bool)                               { return 0, false }
func (*uring) tryAcquire() (uint32, bool)                            { return 0, false }
func (*uring) release(uint32)                                        {}
func (*uring) retire()                                               {}
func (*uring) wait(uint32) int32                                     { return 0 }
func (*uring) waitDone(<-chan struct{})                              {}
func (*uring) submit([]uringReq) error                               { return errNoUring }
func (*uring) submitCallback(ioOp, []byte, int64, func(int32)) error { return errNoUring }
func (*uring) finishRW(ioOp, int32, []byte, int64) error             { return errNoUring }
func (*uring) registerBuffers([][]byte)                              {}
func (*uring) close() error                                          { return nil }
