// Package emio implements the external-memory (EM) computation model of
// Aggarwal and Vitter, the substrate on which every algorithm in this
// repository runs.
//
// The model: a machine with an internal memory of M elements and a disk
// formatted into blocks of B elements, M >= 2B. One I/O transfers one block
// between memory and disk. The cost of an algorithm is the number of I/Os it
// performs; CPU work is free. Algorithms are comparison-based and respect the
// indivisibility assumption: records move as whole units.
//
// (The paper states M and B in words; an element here is a fixed two-word
// record, so the translation is a constant factor that affects no bound. The
// paper itself counts "N/B input blocks, each with B elements", which is the
// convention adopted here.)
//
// The package provides:
//
//   - Disk: a simulated block device that counts block reads and writes and
//     supports fault injection for failure-path testing.
//   - File: a sequence of elements stored in blocks on a Disk, with
//     block-granular access only.
//   - Reader and Writer: buffered sequential element streams; they charge one
//     I/O per block touched, so a full scan of n elements costs
//     ceil(n/B) I/Os.
//   - Accountant: a memory-budget meter. Every in-memory buffer visible to an
//     algorithm is allocated through the Accountant; exceeding M is an error.
//     Tests run with the accountant armed, making "the algorithm fits in
//     memory M" a tested invariant rather than a comment.
//   - Ctx: bundles a Disk, an Accountant and the (M, B) configuration, and
//     hands out scratch files.
//
// Elements are ordered by (Key, Aux); workload generators assign each element
// a unique Aux, so the order is total and duplicate keys need no special
// casing inside the algorithms.
package emio
