//go:build !unix

package emio

import "os"

// defaultCrashHook approximates the unix SIGKILL "power cut" on platforms
// without self-signalling: an immediate exit that skips deferred cleanup and
// buffered flushes. The crash harness itself only runs on unix hosts.
func defaultCrashHook(string, int64) {
	os.Exit(137)
}
