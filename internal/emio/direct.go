package emio

import (
	"os"
	"path/filepath"
	"unsafe"
)

// directAlign is the alignment unit O_DIRECT transfers must honor: offsets,
// lengths and buffer addresses must all be multiples of the device's logical
// block size. 512 is the floor for every common Linux block device.
const directAlign = 512

// pad rounds n up to the store's physical transfer granule: the identity for
// buffered stores, the next multiple of directAlign for direct ones.
func (s *fileStore) pad(n int) int {
	if !s.direct {
		return n
	}
	return (n + directAlign - 1) &^ (directAlign - 1)
}

// extentBytes returns the physical size of block i's extent (its payload
// size, padded in direct mode). Extent offsets and free-list keys are all in
// these physical units.
func (s *fileStore) extentBytes(f *File, i int) int {
	return s.pad(f.blockLen(i) * elemBytes)
}

// alignedBytes returns a length-n byte slice whose backing address is
// directAlign-aligned when align is true (plain make otherwise). Alignment is
// achieved by over-allocating and slicing forward, so the result is safe for
// O_DIRECT reads and writes.
func alignedBytes(n int, align bool) []byte {
	if !align {
		return make([]byte, n)
	}
	raw := make([]byte, n+directAlign)
	shift := int(directAlign-uintptr(unsafe.Pointer(&raw[0]))%directAlign) % directAlign
	return raw[shift : shift+n : shift+n]
}

// DirectIOSupported reports whether the filesystem holding dir accepts
// O_DIRECT transfers (it creates, writes and removes one small probe file).
// tmpfs and some network filesystems reject O_DIRECT; callers gate
// Pipeline.Direct on this probe.
func DirectIOSupported(dir string) bool {
	if oDirectFlag == 0 {
		return false
	}
	path := filepath.Join(dir, ".emio-direct-probe")
	fd, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC|oDirectFlag, 0o644)
	if err != nil {
		return false
	}
	defer os.Remove(path)
	defer fd.Close()
	buf := alignedBytes(directAlign, true)
	_, err = fd.WriteAt(buf, 0)
	return err == nil
}
