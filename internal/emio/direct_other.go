//go:build !linux

package emio

// oDirectFlag is zero where O_DIRECT does not exist; Pipeline.Direct then
// degrades to buffered I/O.
const oDirectFlag = 0
