package emio

// Writer streams elements into a File sequentially through one block buffer.
// Writing n elements and flushing costs ceil(n/B) write I/Os. The buffer is
// charged against the memory budget for the Writer's lifetime; Close flushes
// and releases it.
//
// Errors are sticky: after a failed block write, Append becomes a no-op and
// Flush/Close report the first error.
type Writer struct {
	ctx *Ctx
	f   *File
	buf []Elem
	n   int
	err error
}

// NewWriter opens a sequential writer appending to f, allocating one block
// buffer. The file must be empty or end on a full block.
func NewWriter(ctx *Ctx, f *File) (*Writer, error) {
	buf, err := ctx.AllocElems(ctx.B())
	if err != nil {
		return nil, err
	}
	return &Writer{ctx: ctx, f: f, buf: buf}, nil
}

// Append adds one element to the stream, writing a block when the buffer
// fills.
func (w *Writer) Append(e Elem) {
	if w.err != nil || w.buf == nil {
		return
	}
	w.buf[w.n] = e
	w.n++
	if w.n == len(w.buf) {
		w.err = w.f.AppendBlock(w.buf)
		w.n = 0
	}
}

// Flush writes any buffered partial block. Because a partial block seals the
// file, Flush is a terminal operation: call it once, when the stream is
// complete. Flushing an empty buffer is a free no-op.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	if w.buf != nil && w.n > 0 {
		w.err = w.f.AppendBlock(w.buf[:w.n])
		w.n = 0
	}
	return w.err
}

// Err returns the first I/O error encountered.
func (w *Writer) Err() error { return w.err }

// Close flushes, waits out any write-behind blocks of the file, and releases
// the block buffer. It is safe to call twice; every error encountered by the
// Writer — including an asynchronous physical write failure — is returned.
// Sync runs even after a failed flush: earlier blocks of the file may be
// sitting in the write-behind queue with a sticky failure of their own, and
// a flush error (a cancellation, a quota rejection) must not swallow it.
// Distinct failures are joined, never masked.
func (w *Writer) Close() error {
	if w.buf == nil {
		return w.err
	}
	flushErr := w.Flush()
	w.ctx.FreeElems(w.buf)
	w.buf = nil
	err := joinErr(flushErr, w.f.Sync())
	w.err = err
	return err
}
