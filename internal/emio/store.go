package emio

import (
	"encoding/binary"
	"fmt"
	"os"
)

// blockStore is the storage backend of a Disk. The default store keeps
// blocks in host memory; the file-backed store keeps them in a real file via
// block-aligned positioned reads and writes, so the simulated machine's
// transfers correspond to actual disk traffic. The store works in raw block
// payloads; all model bookkeeping (I/O counting, fault injection, sealing)
// stays in Disk/File.
type blockStore interface {
	// read copies block i of f into buf, returning the element count.
	read(f *File, i int, buf []Elem) (int, error)
	// append stores a new block holding payload at index f.numBlocks.
	append(f *File, payload []Elem) error
	// release drops f's storage.
	release(f *File)
	// close releases backend resources (no-op for memory).
	close() error
}

// memStore keeps blocks as slices hanging off the File.
type memStore struct{}

func (memStore) read(f *File, i int, buf []Elem) (int, error) {
	blk := f.mem[i]
	if cap(buf) < len(blk) {
		return 0, fmt.Errorf("%w: buffer cap %d < block len %d", ErrBlockSize, cap(buf), len(blk))
	}
	return copy(buf[:len(blk)], blk), nil
}

func (memStore) append(f *File, payload []Elem) error {
	blk := make([]Elem, len(payload))
	copy(blk, payload)
	f.mem = append(f.mem, blk)
	return nil
}

func (memStore) release(f *File) { f.mem = nil }

func (memStore) close() error { return nil }

// elemBytes is the on-disk size of one element: two little-endian int64s.
const elemBytes = 16

// fileStore appends blocks to one backing OS file and reads them back with
// positioned I/O. Each stored block records its element count implicitly
// through the File's length bookkeeping (every block is full except the
// last), so the layout is a dense log of 16-byte records. Released extents
// are not reclaimed — scratch-heavy algorithms grow the backing file by a
// constant factor of their I/O volume, which is the honest disk footprint of
// the EM model's unbounded disk.
type fileStore struct {
	fd   *os.File
	end  int64  // append cursor
	buf  []byte // encode/decode scratch, one block
	size int    // block size in elements
}

func newFileStore(path string, blockSize int) (*fileStore, error) {
	fd, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("emio: open backing file: %w", err)
	}
	return &fileStore{fd: fd, buf: make([]byte, blockSize*elemBytes), size: blockSize}, nil
}

func (s *fileStore) read(f *File, i int, buf []Elem) (int, error) {
	n := f.blockLen(i)
	if cap(buf) < n {
		return 0, fmt.Errorf("%w: buffer cap %d < block len %d", ErrBlockSize, cap(buf), n)
	}
	raw := s.buf[:n*elemBytes]
	if _, err := s.fd.ReadAt(raw, f.extents[i]); err != nil {
		return 0, fmt.Errorf("emio: backing read: %w", err)
	}
	for j := 0; j < n; j++ {
		buf[j].Key = int64(binary.LittleEndian.Uint64(raw[j*elemBytes:]))
		buf[j].Aux = int64(binary.LittleEndian.Uint64(raw[j*elemBytes+8:]))
	}
	return n, nil
}

func (s *fileStore) append(f *File, payload []Elem) error {
	raw := s.buf[:len(payload)*elemBytes]
	for j, e := range payload {
		binary.LittleEndian.PutUint64(raw[j*elemBytes:], uint64(e.Key))
		binary.LittleEndian.PutUint64(raw[j*elemBytes+8:], uint64(e.Aux))
	}
	if _, err := s.fd.WriteAt(raw, s.end); err != nil {
		return fmt.Errorf("emio: backing write: %w", err)
	}
	f.extents = append(f.extents, s.end)
	s.end += int64(len(raw))
	return nil
}

func (s *fileStore) release(f *File) { f.extents = nil }

func (s *fileStore) close() error { return s.fd.Close() }
