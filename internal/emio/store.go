package emio

import (
	"errors"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
)

// blockStore is the storage backend of a Disk. The default store keeps
// blocks in host memory; the file-backed store keeps them in a real file via
// block-aligned positioned reads and writes, so the simulated machine's
// transfers correspond to actual disk traffic. The store works in raw block
// payloads; all model bookkeeping (I/O counting, fault injection, sealing)
// stays in Disk/File.
type blockStore interface {
	// read copies block i of f into buf, returning the element count.
	read(f *File, i int, buf []Elem) (int, error)
	// append stores a new block holding payload at index f.numBlocks.
	append(f *File, payload []Elem) error
	// release drops f's storage.
	release(f *File)
	// close releases backend resources (no-op for memory).
	close() error
}

// Optional store capabilities, discovered by interface assertion so that the
// core blockStore contract stays minimal.
type (
	// aheadReader is implemented by stores that can serve a block read with
	// a sequential read-ahead hint: the store may prefetch up to ahead
	// further contiguous blocks with one coalesced physical read.
	aheadReader interface {
		readAhead(f *File, i int, buf []Elem, ahead int) (int, error)
	}
	// fileSyncer is implemented by stores with deferred physical writes;
	// syncFile blocks until every pending write of f has hit the backend and
	// reports the first physical failure among them.
	fileSyncer interface {
		syncFile(f *File) error
	}
	// backingSizer exposes the physical footprint of a file-backed store.
	backingSizer interface {
		backingBytes() int64
		freeExtents() int64
	}
	// physCounter exposes physical transfer counts (positioned read/write
	// syscalls issued to the backing file). With the pipeline on these fall
	// below the logical Stats by the coalescing factor.
	physCounter interface {
		physStats() Stats
	}
	// metricsSink is implemented by stores with physical-layer telemetry;
	// setMetrics attaches (or, with nil, detaches) the live instruments.
	metricsSink interface {
		setMetrics(m *IOMetrics)
	}
	// prefixReleaser is implemented by stores with block-granular storage
	// reclamation; releaseRange drops the storage of f's blocks [lo, hi)
	// while the rest of the file stays readable (see File.ReleasePrefix).
	prefixReleaser interface {
		releaseRange(f *File, lo, hi int)
	}
)

// memStore keeps blocks as slices hanging off the File, recycling released
// block slices through a bounded per-disk free list so that scratch-heavy
// runs (merge passes, recursion) reuse memory instead of churning the GC.
// The free list is mutex-guarded so shard sub-disks (see shard.go) can share
// the store from worker goroutines; everything else the store touches hangs
// off the File being operated on.
type memStore struct {
	mu   sync.Mutex
	free [][]Elem
}

// maxMemFreeBlocks bounds the memStore free list; blocks released beyond it
// fall back to the GC. The bound only matters for pathological release
// storms — retention is otherwise capped by the disk's peak live footprint.
const maxMemFreeBlocks = 1 << 14

func newMemStore() *memStore { return &memStore{} }

func (s *memStore) read(f *File, i int, buf []Elem) (int, error) {
	blk := f.mem[i]
	if cap(buf) < len(blk) {
		return 0, fmt.Errorf("%w: buffer cap %d < block len %d", ErrBlockSize, cap(buf), len(blk))
	}
	if d := f.disk; d.Injector() != nil {
		// Model the block copy as one physical transfer so the fault
		// injector (and the retry policy above it) applies to the memory
		// backend too. The offset is the block's dense-log position.
		off := int64(i) * int64(d.blockSize) * elemBytes
		if err := d.runPhys(opRead, f.name, off, func() error { return nil }); err != nil {
			return 0, storeReadError(f.name, off, err)
		}
	}
	return copy(buf[:len(blk)], blk), nil
}

func (s *memStore) append(f *File, payload []Elem) error {
	if d := f.disk; d.Injector() != nil {
		off := int64(len(f.mem)) * int64(d.blockSize) * elemBytes
		if err := d.runPhys(opWrite, f.name, off, func() error { return nil }); err != nil {
			return storeWriteError(f.disk, f.name, off, err)
		}
	}
	blk := s.takeBlock(len(payload), f.disk.blockSize)
	copy(blk, payload)
	f.mem = append(f.mem, blk)
	return nil
}

// takeBlock pops a recycled block slice of sufficient capacity off the free
// list, or allocates a fresh one.
func (s *memStore) takeBlock(n, blockSize int) []Elem {
	s.mu.Lock()
	if k := len(s.free); k > 0 && cap(s.free[k-1]) >= n {
		blk := s.free[k-1][:n]
		s.free[k-1], s.free = nil, s.free[:k-1]
		s.mu.Unlock()
		return blk
	}
	s.mu.Unlock()
	return make([]Elem, n, blockSize)
}

func (s *memStore) release(f *File) {
	s.mu.Lock()
	for _, blk := range f.mem {
		if len(s.free) < maxMemFreeBlocks && cap(blk) > 0 {
			s.free = append(s.free, blk)
		}
	}
	s.mu.Unlock()
	f.mem = nil
}

// releaseRange recycles the block slices of [lo, hi) while the tail stays
// readable (File.ReleasePrefix). Reclaimed entries are nilled; the final
// release skips them via the cap check above.
func (s *memStore) releaseRange(f *File, lo, hi int) {
	s.mu.Lock()
	for i := lo; i < hi; i++ {
		if blk := f.mem[i]; cap(blk) > 0 && len(s.free) < maxMemFreeBlocks {
			s.free = append(s.free, blk)
		}
		f.mem[i] = nil
	}
	s.mu.Unlock()
}

// corruptBlock flips one bit of the stored block image. The in-memory block
// is held in decoded form, so the on-disk-image bit position is translated
// through the little-endian record layout.
func (s *memStore) corruptBlock(f *File, i, bit int) error {
	byteIdx := bit / 8
	e := &f.mem[i][byteIdx/elemBytes]
	word := byteIdx % elemBytes
	mask := int64(1) << uint((word%8)*8+bit%8)
	if word < 8 {
		e.Key ^= mask
	} else {
		e.Aux ^= mask
	}
	return nil
}

func (s *memStore) close() error { return nil }

// storeReadError attributes a physical read failure to its file and backing
// offset. A *TransientError from the retry layer already carries the
// attribution and passes through unwrapped.
func storeReadError(fname string, off int64, err error) error {
	if _, ok := err.(*TransientError); ok {
		return err
	}
	return &FaultError{Op: "read", File: fname, Block: -1, Off: off, Err: err}
}

// storeWriteError is storeReadError for writes, plus resource attribution:
// an ENOSPC from the device (or the injector's errno schedule) is wrapped in
// a *ResourceError carrying the acting disk's live usage, so the caller sees
// real disk exhaustion exactly as it sees a model-budget rejection. ENOSPC is
// not transient, so the retry layer never spends attempts on a full disk.
func storeWriteError(d *Disk, fname string, off int64, err error) error {
	if _, ok := err.(*TransientError); ok {
		return err
	}
	if errors.Is(err, syscall.ENOSPC) {
		var re *ResourceError
		if !errors.As(err, &re) {
			var used, budget int64
			if d != nil && d.budget != nil {
				used, budget = d.budget.used.Load(), max(d.budget.limit, 0)
			}
			err = &ResourceError{Resource: "disk", File: fname, Used: used, Budget: budget, Err: err}
		}
	}
	return &FaultError{Op: "write", File: fname, Block: -1, Off: off, Err: err}
}

// elemBytes is the on-disk size of one element: two little-endian int64s.
const elemBytes = 16

// fileStore appends blocks to one backing OS file and reads them back with
// positioned I/O. Each stored block records its element count implicitly
// through the File's length bookkeeping (every block is full except the
// last), so the layout is a dense log of 16-byte records. Released extents
// go onto a size-keyed free list and are reused by later appends, capping the
// backing file at the peak live footprint rather than the cumulative write
// volume.
//
// With pipe.Enabled the store runs the asynchronous prefetch/write-behind
// pipeline (see pipeline.go): appends enqueue encoded blocks to a background
// worker and sequential reads are served from coalesced read-ahead staging
// buffers. All fields except the ones explicitly protected by mu are owned
// by the algorithm goroutine.
type fileStore struct {
	fd      *os.File
	disk    *Disk  // back-pointer for the resilience layer (retry + injection)
	end     int64  // append cursor: high-water byte offset of the backing file
	scratch []byte // synchronous encode/decode scratch, one (padded) block
	size    int    // block size in elements
	bulk    bool   // zero-copy bulk marshalling enabled (pipeline on)
	direct  bool   // O_DIRECT backing: transfers padded to directAlign

	// Extent allocator, guarded by amu: shard sub-disks (see shard.go)
	// allocate and free extents from worker goroutines. Uncontended in
	// sequential runs.
	amu    sync.Mutex
	free   map[int]*extentQueue // released extents keyed by byte length
	nfree  int64                // number of extents on the free list
	zeroed int64                // bytes of backing file physically zero-filled (direct mode)
	zbuf   []byte               // aligned zero buffer for prewriting, amu-guarded
	physR  atomic.Int64         // positioned reads issued (incl. prefetch goroutines)
	physW  atomic.Int64         // positioned writes issued (incl. the write worker)
	pipe   Pipeline             // normalized pipeline configuration
	async  *asyncState          // write-behind + prefetch machinery, nil when disabled
	// ring is the io_uring physical backend, nil when Pipeline.Uring is off or
	// unsupported; raw transfers then fall back to pread/pwrite syscalls. The
	// ring sits strictly below the resilience layer: runPhys wraps ring
	// completions exactly as it wraps syscall returns.
	ring    *uring
	regBufs [][]byte // pooled buffers registered with the ring as fixed buffers
	// sm holds the physical-layer telemetry handles, nil when metrics are
	// disabled. An atomic pointer because the write worker and prefetch
	// goroutines read it while EnableMetrics may store it from the algorithm
	// goroutine; recordings racing the attach itself may be missed, which is
	// fine — metrics are strictly observational.
	sm       atomic.Pointer[storeMetrics]
	closed   bool
	closeErr error
}

// newFileStore opens the backing file at path. keep opens an existing file
// in place (crash-resume: journaled extents are re-adopted, so the bytes
// must survive the reopen); otherwise the file is created or truncated.
func newFileStore(path string, blockSize int, pipe Pipeline, keep bool) (*fileStore, error) {
	direct := pipe.Direct && oDirectFlag != 0
	flags := os.O_RDWR | os.O_CREATE
	if !keep {
		flags |= os.O_TRUNC
	}
	if direct {
		flags |= oDirectFlag
	}
	fd, err := os.OpenFile(path, flags, 0o644)
	if err != nil {
		return nil, fmt.Errorf("emio: open backing file: %w", err)
	}
	s := &fileStore{
		fd:     fd,
		size:   blockSize,
		direct: direct,
		free:   make(map[int]*extentQueue),
	}
	if norm := pipe.withDefaults(); norm.Uring && UringSupported() {
		// Ring creation failure degrades silently to the syscall paths,
		// mirroring how Pipeline.Direct degrades without O_DIRECT support.
		if r, err := newUring(fd, norm.UringDepth, norm.SQPoll); err == nil {
			s.ring = r
			r.sm = &s.sm
		}
	}
	s.scratch = alignedBytes(s.pad(blockSize*elemBytes), direct)
	if s.ring != nil {
		s.regBufs = append(s.regBufs, s.scratch)
	}
	if pipe.Enabled {
		s.pipe = pipe.withDefaults()
		s.bulk = true
		s.startAsync()
	}
	if s.ring != nil {
		s.ring.registerBuffers(s.regBufs)
	}
	return s, nil
}

// uringActive reports whether physical transfers go through an io_uring
// (Disk.UringActive's store capability).
func (s *fileStore) uringActive() bool { return s.ring != nil }

// extentQueue is a FIFO of released extents of one byte length. Release
// order matters: a released file frees an ascending contiguous run of
// offsets, and FIFO reuse hands them back in that order, so consecutive
// appends land on adjacent offsets and stay eligible for write coalescing
// and contiguous read-ahead. (A LIFO stack would reverse them and defeat
// both.)
type extentQueue struct {
	offs []int64
	head int
}

func (q *extentQueue) push(off int64) { q.offs = append(q.offs, off) }

func (q *extentQueue) pop() (int64, bool) {
	if q.head == len(q.offs) {
		return 0, false
	}
	off := q.offs[q.head]
	q.head++
	if q.head == len(q.offs) {
		q.offs, q.head = q.offs[:0], 0
	}
	return off, true
}

// allocExtent returns the backing offset for a new block of nbytes, reusing
// a released extent of the same size when one is available.
func (s *fileStore) allocExtent(nbytes int) int64 {
	s.amu.Lock()
	if q := s.free[nbytes]; q != nil {
		if off, ok := q.pop(); ok {
			s.nfree--
			s.amu.Unlock()
			if sm := s.sm.Load(); sm != nil {
				sm.extentReuses.Inc()
			}
			return off
		}
	}
	off := s.end
	s.end += int64(nbytes)
	end := s.end
	if s.direct && end > s.zeroed {
		s.prewriteLocked(end)
	}
	s.amu.Unlock()
	if sm := s.sm.Load(); sm != nil {
		sm.backingBytes.Set(end)
	}
	return off
}

// prewriteChunk is how far the backing file is zero-filled ahead of the
// allocation cursor in direct mode. ext4 serializes extending O_DIRECT
// writes on the exclusive inode lock (they allocate blocks and move i_size),
// while overwrites of already-written space take the lock shared and proceed
// in parallel. Zeroing ahead of the cursor in bulk converts every subsequent
// append into an overwrite, so P shard workers can drive the device
// concurrently instead of convoying on the inode. 8 MiB keeps each stall to
// a few milliseconds while amortizing to one prewrite per thousands of
// blocks; extents are recycled, so the total zeroed region is bounded by the
// job's peak backing footprint.
const prewriteChunk = 8 << 20

// prewriteLocked zero-fills the backing file from s.zeroed up to end rounded
// to the next prewriteChunk boundary. Called with amu held. Errors are
// dropped deliberately: the extent remains valid either way — the data write
// that follows will extend the file itself (slower, not wrong) and surface
// any real device fault through the counted, retryable write path.
func (s *fileStore) prewriteLocked(end int64) {
	target := (end + prewriteChunk - 1) / prewriteChunk * prewriteChunk
	if s.zbuf == nil {
		s.zbuf = alignedBytes(prewriteChunk, s.direct)
	}
	for s.zeroed < target {
		if _, err := s.fd.WriteAt(s.zbuf, s.zeroed); err != nil {
			return
		}
		s.zeroed += prewriteChunk
	}
}

// freeExtent returns an extent to the free list.
func (s *fileStore) freeExtent(off int64, nbytes int) {
	s.amu.Lock()
	q := s.free[nbytes]
	if q == nil {
		q = &extentQueue{}
		s.free[nbytes] = q
	}
	q.push(off)
	s.nfree++
	s.amu.Unlock()
	if sm := s.sm.Load(); sm != nil {
		sm.extentFrees.Inc()
	}
}

func (s *fileStore) backingBytes() int64 {
	s.amu.Lock()
	defer s.amu.Unlock()
	return s.end
}

func (s *fileStore) freeExtents() int64 {
	s.amu.Lock()
	defer s.amu.Unlock()
	return s.nfree
}

func (s *fileStore) setMetrics(m *IOMetrics) {
	if m == nil {
		s.sm.Store(nil)
		return
	}
	s.sm.Store(newStoreMetrics(m))
}

func (s *fileStore) physStats() Stats {
	return Stats{Reads: s.physR.Load(), Writes: s.physW.Load()}
}

func (s *fileStore) read(f *File, i int, buf []Elem) (int, error) {
	return s.readAhead(f, i, buf, 0)
}

func (s *fileStore) readAhead(f *File, i int, buf []Elem, ahead int) (int, error) {
	n := f.blockLen(i)
	if cap(buf) < n {
		return 0, fmt.Errorf("%w: buffer cap %d < block len %d", ErrBlockSize, cap(buf), n)
	}
	if s.async != nil {
		if err := s.drainFile(f); err != nil {
			return 0, err
		}
		return s.pipelineRead(f, i, buf[:n], ahead)
	}
	raw := s.scratch[:s.pad(n*elemBytes)]
	s.physR.Add(1)
	sm := s.sm.Load()
	var t0 time.Time
	if sm != nil {
		t0 = time.Now()
	}
	err := s.readAtPhys(f.name, raw, f.extents[i])
	if sm != nil {
		sm.physReads.Inc()
		sm.physReadNS.ObserveEx(int64(time.Since(t0)), sm.seq.Load())
	}
	if err != nil {
		return 0, storeReadError(f.name, f.extents[i], err)
	}
	decodeElems(buf[:n], raw[:n*elemBytes], s.bulk)
	return n, nil
}

// readAtPhys issues one positioned read under the disk's fault injector and
// retry policy; with neither armed it is a bare ReadAt.
func (s *fileStore) readAtPhys(fname string, raw []byte, off int64) error {
	return s.readAtPhysOn(s.disk, fname, raw, off)
}

// preadRaw issues one raw positioned read over the active physical backend:
// the io_uring ring when armed, a plain pread syscall otherwise. Both paths
// have whole-buffer semantics.
func (s *fileStore) preadRaw(raw []byte, off int64) error {
	if r := s.ring; r != nil {
		return r.pread(raw, off)
	}
	_, err := s.fd.ReadAt(raw, off)
	return err
}

// pwriteRaw is preadRaw for positioned writes.
func (s *fileStore) pwriteRaw(raw []byte, off int64) error {
	if r := s.ring; r != nil {
		return r.pwrite(raw, off)
	}
	_, err := s.fd.WriteAt(raw, off)
	return err
}

// readAtPhysOn is readAtPhys with fault injection and retry resolved through
// an explicit acting disk: shard sub-disks share this store but carry their
// own injectors, so a fault schedule armed on shard k fires only on shard
// k's transfers.
func (s *fileStore) readAtPhysOn(d *Disk, fname string, raw []byte, off int64) error {
	if d == nil || (d.Injector() == nil && d.retry == nil) {
		return s.preadRaw(raw, off)
	}
	return d.runPhys(opRead, fname, off, func() error {
		return s.preadRaw(raw, off)
	})
}

// writeAtPhys is readAtPhys for positioned writes.
func (s *fileStore) writeAtPhys(fname string, raw []byte, off int64) error {
	return s.writeAtPhysOn(s.disk, fname, raw, off)
}

// writeAtPhysOn is writeAtPhys on an explicit acting disk.
func (s *fileStore) writeAtPhysOn(d *Disk, fname string, raw []byte, off int64) error {
	if d == nil || (d.Injector() == nil && d.retry == nil) {
		return s.pwriteRaw(raw, off)
	}
	return d.runPhys(opWrite, fname, off, func() error {
		return s.pwriteRaw(raw, off)
	})
}

func (s *fileStore) append(f *File, payload []Elem) error {
	nbytes := len(payload) * elemBytes
	pn := s.pad(nbytes)
	if s.async != nil {
		// Surface an earlier asynchronous write failure of this file before
		// accepting more data, so errors land at the next operation on the
		// file rather than disappearing.
		if err := s.fileError(f); err != nil {
			return err
		}
		off := s.allocExtent(pn)
		s.stageWrite(f, payload, off)
		f.extents = append(f.extents, off)
		return nil
	}
	off := s.allocExtent(pn)
	raw := s.scratch[:pn]
	encodeElems(raw[:nbytes], payload, s.bulk)
	clear(raw[nbytes:])
	if err := s.physWrite(f.name, raw, off); err != nil {
		s.freeExtent(off, pn)
		return storeWriteError(s.disk, f.name, off, err)
	}
	if sm := s.sm.Load(); sm != nil {
		sm.writeRunBlocks.Observe(1)
	}
	f.extents = append(f.extents, off)
	return nil
}

// physWrite performs one positioned write on behalf of fname, consulting the
// test-only physical fault hook first (the hook models a device error below
// the write-behind queue, unreachable through Disk.SetWriteFault which fires
// at enqueue time), then issuing the transfer under the disk's injector and
// retry policy.
func (s *fileStore) physWrite(fname string, raw []byte, off int64) error {
	return s.physWriteOn(s.disk, fname, raw, off)
}

// physWriteOn is physWrite on an explicit acting disk (see readAtPhysOn).
func (s *fileStore) physWriteOn(d *Disk, fname string, raw []byte, off int64) error {
	if s.async != nil && s.async.testWriteErr != nil {
		if err := s.async.testWriteErr(off); err != nil {
			return err
		}
	}
	s.physW.Add(1)
	sm := s.sm.Load()
	var t0 time.Time
	if sm != nil {
		t0 = time.Now()
	}
	err := s.writeAtPhysOn(d, fname, raw, off)
	if sm != nil {
		sm.physWrites.Inc()
		sm.physWriteNS.ObserveEx(int64(time.Since(t0)), sm.seq.Load())
	}
	return err
}

// corruptBlock flips one bit of the stored image of block i of f by a raw
// read-modify-write of its extent, bypassing counters, injection and retry
// (harness-side at-rest corruption). Pending pipeline writes of f are
// drained first and its read-ahead discarded, so the flip lands on settled
// bytes and is not masked by a stale staging buffer.
func (s *fileStore) corruptBlock(f *File, i, bit int) error {
	if s.async != nil {
		if err := s.drainFile(f); err != nil {
			return err
		}
		s.dropPrefetch(f)
	}
	raw := s.scratch[:s.pad(f.blockLen(i)*elemBytes)]
	if _, err := s.fd.ReadAt(raw, f.extents[i]); err != nil {
		return fmt.Errorf("emio: corrupt %s block %d: %w", f.name, i, err)
	}
	raw[bit/8] ^= 1 << (bit % 8)
	if _, err := s.fd.WriteAt(raw, f.extents[i]); err != nil {
		return fmt.Errorf("emio: corrupt %s block %d: %w", f.name, i, err)
	}
	return nil
}

func (s *fileStore) release(f *File) {
	if s.async != nil {
		// Pending writes target extents about to be freed; wait them out so a
		// later reuse of the extents cannot race a stale queued write, then
		// discard any in-flight read-ahead for the file.
		s.drainFileQuiet(f)
		s.dropPrefetch(f)
	}
	for i, off := range f.extents {
		if off < 0 {
			continue // already reclaimed by ReleasePrefix
		}
		s.freeExtent(off, s.extentBytes(f, i))
	}
	f.extents = nil
}

// releaseRange frees the extents of blocks [lo, hi) while the tail stays
// readable (File.ReleasePrefix). The caller guarantees the blocks are
// settled and behind any live read-ahead window, so the extents can be
// reused by the very next append.
func (s *fileStore) releaseRange(f *File, lo, hi int) {
	for i := lo; i < hi; i++ {
		if off := f.extents[i]; off >= 0 {
			s.freeExtent(off, s.extentBytes(f, i))
			f.extents[i] = -1
		}
	}
}

// adoptFloor raises the append cursor to at least end: the resume-safety
// invariant of AdoptFile, guaranteeing fresh allocations never land on
// journaled extents. The direct-mode zero-fill cursor follows so a prewrite
// can never zero adopted bytes.
func (s *fileStore) adoptFloor(end int64) {
	s.amu.Lock()
	if end > s.end {
		s.end = end
	}
	if end > s.zeroed {
		s.zeroed = end
	}
	s.amu.Unlock()
}

func (s *fileStore) syncFile(f *File) error {
	if s.async == nil {
		return nil
	}
	return s.drainFile(f)
}

// syncBacking drains the whole write-behind queue and fsyncs the backing
// file: the checkpoint layer's durability barrier (Disk.SyncBacking). Called
// on the algorithm goroutine, like drainFile.
func (s *fileStore) syncBacking() error {
	if s.async != nil {
		a := s.async
		s.flushCur()
		a.mu.Lock()
		for len(a.pending) > 0 {
			a.cond.Wait()
		}
		a.mu.Unlock()
	}
	if err := s.fd.Sync(); err != nil {
		return fmt.Errorf("emio: fsync backing file: %w", err)
	}
	return nil
}

// kickBackingWriteback nudges the kernel to start writing the backing
// file's dirty pages out, without waiting: the background flusher's call
// (Disk.StartBackingFlusher), safe off the algorithm goroutine. It is
// deliberately not an fsync — a concurrent fsync of a hot file stalls the
// writer on stable pages and forces journal commits; sync_file_range does
// neither, and the checkpoint barrier's real fsync settles what remains.
func (s *fileStore) kickBackingWriteback() { kickWriteback(s.fd.Fd()) }

func (s *fileStore) close() error {
	if s.closed {
		return s.closeErr
	}
	s.closed = true
	// Teardown failures are joined, never masked: an undelivered sticky
	// write-behind error and a close failure of the ring or fd are distinct
	// problems, and reporting the first must not swallow the others.
	var err error
	if s.async != nil {
		err = s.stopAsync()
	}
	if s.ring != nil {
		// After stopAsync no transfer is in flight; closing the ring joins the
		// completion reaper before the backing fd goes away.
		err = joinErr(err, s.ring.close())
	}
	err = joinErr(err, s.fd.Close())
	s.closeErr = err
	return err
}
