package emio

// Cooperative cancellation of a running job.
//
// A Disk carries one cancel cell — shared with every shard sub-disk cut from
// it — holding the job's cancellation state. Cancel may be called from any
// goroutine (a signal handler, a context watcher, a server's admission
// layer); the algorithm observes it at the logical I/O boundary: every
// ReadBlock/AppendBlock checks the cell before counting the transfer, and
// the physical retry loop checks it before each attempt so a cancel lands
// inside a backoff storm too. The check is one nil test plus one atomic load,
// so the hot path costs nothing measurable, and a cancelled call returns a
// typed *CancelledError within at most one block-transfer latency — the
// transfer in flight when the flag flips.
//
// Cancellation is a property of the job, not the device: a cancelled disk
// performs no further logical I/O, but teardown (Release, Close, draining
// the write-behind queue) proceeds normally so no scratch space or goroutine
// outlives the job.

import (
	"errors"
	"fmt"
	"log/slog"
	"sync/atomic"
)

// ErrCancelled marks every failure produced by cooperative cancellation, so
// callers can tell an operator abort from a device fault with errors.Is.
var ErrCancelled = errors.New("emio: job cancelled")

// CancelledError reports that an operation was abandoned because the job was
// cancelled. Cause is whatever the canceller supplied — a context error, a
// received signal, an admission-control decision — and nil for a bare cancel.
type CancelledError struct {
	Cause error
}

func (e *CancelledError) Error() string {
	if e.Cause != nil {
		return fmt.Sprintf("emio: job cancelled: %v", e.Cause)
	}
	return "emio: job cancelled"
}

// Unwrap exposes both the ErrCancelled sentinel and the cause, so
// errors.Is(err, ErrCancelled) and errors.Is(err, context.Canceled) (when a
// context error is the cause) both hold.
func (e *CancelledError) Unwrap() []error {
	if e.Cause != nil {
		return []error{ErrCancelled, e.Cause}
	}
	return []error{ErrCancelled}
}

// cancelCell is the shared cancellation flag of one job. The parent Disk and
// all its shard sub-disks point at the same cell, so a cancel on any of them
// stops every worker.
type cancelCell struct {
	err atomic.Pointer[CancelledError]
}

// Cancel requests cooperative cancellation of the job running on this disk
// (and, through the shared cell, on every shard cut from it). The first call
// wins; later calls are no-ops. Safe from any goroutine, at any time.
func (d *Disk) Cancel(cause error) {
	if d.cancel == nil {
		return
	}
	ce := &CancelledError{Cause: cause}
	if d.cancel.err.CompareAndSwap(nil, ce) {
		d.log(slog.LevelWarn, "job cancelled", slog.Any("cause", cause))
		if d.iom != nil {
			d.iom.cancels.Inc()
		}
	}
}

// Cancelled returns the job's cancellation state: nil while the job is live,
// the *CancelledError recorded by the first Cancel otherwise.
func (d *Disk) Cancelled() error {
	return d.checkCancel()
}

// ClearCancel resets the cancellation flag so the disk can run another job.
// Call it only between jobs, never while algorithm I/O is in flight.
func (d *Disk) ClearCancel() {
	if d.cancel != nil {
		d.cancel.err.Store(nil)
	}
}

// checkCancel is the hot-path test: one nil check plus one atomic load.
func (d *Disk) checkCancel() error {
	if d.cancel == nil {
		return nil
	}
	if ce := d.cancel.err.Load(); ce != nil {
		return ce
	}
	return nil
}
