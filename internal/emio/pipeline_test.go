package emio

import (
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"testing"
)

// pipelinedCtx builds a Ctx over a pipelined file-backed disk.
func pipelinedCtx(t *testing.T, m, b int, p Pipeline) *Ctx {
	t.Helper()
	p.Enabled = true
	d, err := NewFileBackedDiskPipeline(filepath.Join(t.TempDir(), "pipe.dat"), b, p)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	ctx, err := NewCtxWithDisk(Config{M: m, B: b}, d)
	if err != nil {
		t.Fatal(err)
	}
	return ctx
}

func TestPipelineRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 7, 8, 9, 100, 1000, 4096} {
		for _, p := range []Pipeline{{}, {PrefetchDepth: 1}, {PrefetchDepth: 4, QueueDepth: 2}} {
			ctx := pipelinedCtx(t, 64, 8, p)
			in := seqElems(n)
			f, err := StoreAll(ctx, "rt", in)
			if err != nil {
				t.Fatalf("n=%d p=%+v: %v", n, p, err)
			}
			got := f.Snapshot()
			if len(got) != n {
				t.Fatalf("n=%d p=%+v: got %d", n, p, len(got))
			}
			for i := range in {
				if got[i] != in[i] {
					t.Fatalf("n=%d p=%+v: differs at %d: %v vs %v", n, p, i, got[i], in[i])
				}
			}
			// A second sequential pass exercises the read-ahead chain.
			r, err := NewReader(ctx, f)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; ; i++ {
				e, ok := r.Next()
				if !ok {
					break
				}
				if e != in[i] {
					t.Fatalf("n=%d p=%+v: reader differs at %d", n, p, i)
				}
			}
			if r.Err() != nil {
				t.Fatal(r.Err())
			}
			r.Close()
		}
	}
}

func TestPipelineRandomAccessFallsBack(t *testing.T) {
	// Random block reads must bypass the staging window and stay correct.
	ctx := pipelinedCtx(t, 64, 8, Pipeline{PrefetchDepth: 4})
	in := seqElems(256)
	f, err := StoreAll(ctx, "rnd", in)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]Elem, 8)
	for _, blk := range []int{17, 3, 30, 3, 0, 31, 16, 1} {
		n, err := f.ReadBlock(blk, buf)
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < n; j++ {
			if want := in[blk*8+j]; buf[j] != want {
				t.Fatalf("block %d elem %d: %v want %v", blk, j, buf[j], want)
			}
		}
	}
	// Then a full sequential scan re-primes read-ahead and must agree too.
	got := f.Snapshot()
	for i := range in {
		if got[i] != in[i] {
			t.Fatalf("post-random scan differs at %d", i)
		}
	}
}

func TestPipelineInterleavedReadWrite(t *testing.T) {
	// A merge-like pattern: read one file while write-behind is filling
	// another, then read back the freshly written file (forcing a drain).
	ctx := pipelinedCtx(t, 128, 8, Pipeline{PrefetchDepth: 4, QueueDepth: 4})
	in := seqElems(512)
	src, err := StoreAll(ctx, "src", in)
	if err != nil {
		t.Fatal(err)
	}
	dup, err := Copy(ctx, src)
	if err != nil {
		t.Fatal(err)
	}
	got := dup.Snapshot()
	for i := range in {
		if got[i] != in[i] {
			t.Fatalf("copy differs at %d: %v vs %v", i, got[i], in[i])
		}
	}
	dup.Release()
	src.Release()
}

func TestBulkCodecMatchesPortable(t *testing.T) {
	// The unsafe bulk codec and the portable loop must produce identical
	// bytes and identical decoded elements for the same data.
	elems := []Elem{{0, 0}, {1, -1}, {-(1 << 62), 1 << 62}, {42, 7}, {-9, -9}}
	raw := make([]byte, len(elems)*elemBytes)
	rawPortable := make([]byte, len(elems)*elemBytes)
	encodeElems(raw, elems, true)
	encodeElems(rawPortable, elems, false)
	for i := range raw {
		if raw[i] != rawPortable[i] {
			t.Fatalf("encoded byte %d differs: %#x vs %#x", i, raw[i], rawPortable[i])
		}
	}
	dec := make([]Elem, len(elems))
	decPortable := make([]Elem, len(elems))
	decodeElems(dec, raw, true)
	decodeElems(decPortable, rawPortable, false)
	for i := range elems {
		if dec[i] != elems[i] || decPortable[i] != elems[i] {
			t.Fatalf("decode %d: bulk %v portable %v want %v", i, dec[i], decPortable[i], elems[i])
		}
	}
}

func TestForcePortableCodecRoundTrip(t *testing.T) {
	// A pipelined store forced onto the portable codec must still round-trip:
	// the fallback path is live, not dead code.
	forcePortableCodec = true
	defer func() { forcePortableCodec = false }()
	ctx := pipelinedCtx(t, 64, 8, Pipeline{})
	in := seqElems(300)
	f, err := StoreAll(ctx, "portable", in)
	if err != nil {
		t.Fatal(err)
	}
	got := f.Snapshot()
	for i := range in {
		if got[i] != in[i] {
			t.Fatalf("portable round-trip differs at %d", i)
		}
	}
}

func TestFreeExtentReuseCapsBackingFile(t *testing.T) {
	// Scratch-heavy create/release cycles must not grow the backing file
	// beyond the peak live footprint (the old store leaked extents forever).
	for _, pipe := range []bool{false, true} {
		d, err := NewFileBackedDiskPipeline(
			filepath.Join(t.TempDir(), "cap.dat"), 8, Pipeline{Enabled: pipe})
		if err != nil {
			t.Fatal(err)
		}
		ctx, err := NewCtxWithDisk(Config{M: 64, B: 8}, d)
		if err != nil {
			t.Fatal(err)
		}
		const n = 400 // 50 blocks per cycle
		for cycle := 0; cycle < 20; cycle++ {
			f, err := StoreAll(ctx, fmt.Sprintf("c%d", cycle), seqElems(n))
			if err != nil {
				t.Fatal(err)
			}
			f.Release()
		}
		want := int64(n * elemBytes) // one cycle's worth
		if got := d.BackingBytes(); got != want {
			t.Errorf("pipeline=%v: backing file high-water %d bytes, want %d (extents not reused)", pipe, got, want)
		}
		if got := d.FreeExtents(); got != 50 {
			t.Errorf("pipeline=%v: %d free extents, want 50", pipe, got)
		}
		if err := d.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestFreeExtentReuseKeepsDataIntact(t *testing.T) {
	// Interleave live files with release/reuse cycles: reused extents must
	// never clobber live data (the write-behind drain on release guards this).
	ctx := pipelinedCtx(t, 128, 8, Pipeline{QueueDepth: 2})
	keep := make([]*File, 0, 8)
	want := make([][]Elem, 0, 8)
	for i := 0; i < 8; i++ {
		scratch, err := StoreAll(ctx, "tmp", seqElems(96))
		if err != nil {
			t.Fatal(err)
		}
		elems := seqElems(64)
		for j := range elems {
			elems[j].Key += int64(1000 * i)
		}
		f, err := StoreAll(ctx, "keep", elems)
		if err != nil {
			t.Fatal(err)
		}
		scratch.Release()
		keep = append(keep, f)
		want = append(want, elems)
	}
	for i, f := range keep {
		got := f.Snapshot()
		for j := range want[i] {
			if got[j] != want[i][j] {
				t.Fatalf("file %d corrupted at %d: %v want %v", i, j, got[j], want[i][j])
			}
		}
		f.Release()
	}
}

func TestDirectIORoundTrip(t *testing.T) {
	if !DirectIOSupported(t.TempDir()) {
		t.Skip("O_DIRECT not supported on this filesystem")
	}
	// Block size 8 elems = 128 bytes, well under the 512-byte direct granule,
	// so every transfer exercises the padding path; odd n adds partial blocks.
	for _, n := range []int{0, 1, 7, 8, 9, 100, 1000} {
		for _, p := range []Pipeline{
			{Direct: true},
			{Enabled: true, Direct: true, PrefetchDepth: 4, QueueDepth: 2},
		} {
			d, err := NewFileBackedDiskPipeline(
				filepath.Join(t.TempDir(), "direct.dat"), 8, p)
			if err != nil {
				t.Fatal(err)
			}
			ctx, err := NewCtxWithDisk(Config{M: 64, B: 8}, d)
			if err != nil {
				t.Fatal(err)
			}
			in := seqElems(n)
			f, err := StoreAll(ctx, "rt", in)
			if err != nil {
				t.Fatalf("n=%d p=%+v: %v", n, p, err)
			}
			got := f.Snapshot()
			if len(got) != n {
				t.Fatalf("n=%d p=%+v: got %d elems", n, p, len(got))
			}
			for i := range in {
				if got[i] != in[i] {
					t.Fatalf("n=%d p=%+v: differs at %d: %v vs %v", n, p, i, got[i], in[i])
				}
			}
			if bb := d.BackingBytes(); bb%directAlign != 0 {
				t.Fatalf("n=%d p=%+v: backing bytes %d not %d-aligned", n, p, bb, directAlign)
			}
			// Release and rewrite: padded extents must be reusable without
			// corrupting the replacement file.
			f.Release()
			f2, err := StoreAll(ctx, "rt2", in)
			if err != nil {
				t.Fatal(err)
			}
			got2 := f2.Snapshot()
			for i := range in {
				if got2[i] != in[i] {
					t.Fatalf("n=%d p=%+v: reuse differs at %d", n, p, i)
				}
			}
			if err := d.Close(); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestAsyncWriteErrorSurfacesAtNextOpAndClose(t *testing.T) {
	// A physical write failure below the write-behind queue must surface
	// exactly once: at the next operation on the file, at Writer.Close, or —
	// only if nothing else delivered it — at Disk.Close.
	errDevice := errors.New("device error")
	newFaulty := func(failFrom int64) (*Disk, *Ctx) {
		d, err := NewFileBackedDiskPipeline(
			filepath.Join(t.TempDir(), "err.dat"), 8, Pipeline{Enabled: true, QueueDepth: 2})
		if err != nil {
			t.Fatal(err)
		}
		st := d.store.(*fileStore)
		st.async.testWriteErr = func(off int64) error {
			if off >= failFrom {
				return errDevice
			}
			return nil
		}
		ctx, err := NewCtxWithDisk(Config{M: 64, B: 8}, d)
		if err != nil {
			t.Fatal(err)
		}
		return d, ctx
	}

	t.Run("writer-close", func(t *testing.T) {
		d, ctx := newFaulty(0)
		f := ctx.Scratch("w")
		w, err := NewWriter(ctx, f)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range seqElems(64) {
			w.Append(e)
		}
		if err := w.Close(); !errors.Is(err, errDevice) {
			t.Fatalf("Writer.Close error = %v, want the device error", err)
		}
		// Writer.Close reported the failure; Disk.Close must not re-report
		// it as a second distinct error.
		if err := d.Close(); err != nil {
			t.Fatalf("Disk.Close after a delivered error = %v, want nil", err)
		}
	})

	t.Run("next-read", func(t *testing.T) {
		d, ctx := newFaulty(0)
		f := ctx.Scratch("r")
		buf := seqElems(8)
		if err := f.AppendBlock(buf); err != nil {
			t.Fatal(err)
		}
		// The read drains pending writes first, so the failure lands here.
		if _, err := f.ReadBlock(0, make([]Elem, 8)); !errors.Is(err, errDevice) {
			t.Fatalf("ReadBlock error = %v, want the device error", err)
		}
		d.Close()
	})

	t.Run("error-is-per-file", func(t *testing.T) {
		d, ctx := newFaulty(0)
		bad := ctx.Scratch("bad")
		if err := bad.AppendBlock(seqElems(8)); err != nil {
			t.Fatal(err)
		}
		if err := bad.Sync(); !errors.Is(err, errDevice) {
			t.Fatalf("Sync on the failed file = %v, want the device error", err)
		}
		// Subsequent appends to the poisoned file keep failing...
		if err := bad.AppendBlock(seqElems(8)); !errors.Is(err, errDevice) {
			t.Fatalf("append after failure = %v, want the device error", err)
		}
		// ...and having been delivered twice already, the failure does not
		// come back a third time at Disk.Close.
		if err := d.Close(); err != nil {
			t.Fatalf("Disk.Close after a delivered error = %v, want nil", err)
		}
	})
}

func TestAsyncWriteErrorNamesFileAndOffset(t *testing.T) {
	// A sticky physical write error can surface long after the enqueue — at
	// Disk.Close, an operator's only remaining context. The wrapped error must
	// therefore name the failing file and its backing byte offset.
	errDevice := errors.New("device error")
	d, err := NewFileBackedDiskPipeline(
		filepath.Join(t.TempDir(), "err.dat"), 8, Pipeline{Enabled: true, QueueDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	const failAt = int64(2 * 8 * elemBytes) // third block's extent
	st := d.store.(*fileStore)
	st.async.testWriteErr = func(off int64) error {
		if off == failAt {
			return errDevice
		}
		return nil
	}
	ctx, err := NewCtxWithDisk(Config{M: 64, B: 8}, d)
	if err != nil {
		t.Fatal(err)
	}
	f := ctx.Scratch("sticky")
	for i := 0; i < 4; i++ {
		if err := f.AppendBlock(seqElems(8)); err != nil {
			t.Fatal(err)
		}
	}
	cerr := d.Close()
	if !errors.Is(cerr, errDevice) {
		t.Fatalf("Disk.Close error = %v, want the device error", cerr)
	}
	msg := cerr.Error()
	if !strings.Contains(msg, f.Name()) {
		t.Errorf("Close error %q does not name the failing file %q", msg, f.Name())
	}
	if !strings.Contains(msg, fmt.Sprintf("offset %d", failAt)) {
		t.Errorf("Close error %q does not name the failing offset %d", msg, failAt)
	}
}

func TestPipelineStatsMatchSynchronous(t *testing.T) {
	// The same operation sequence must produce bit-identical Stats with the
	// pipeline on, off, and on the memory backend.
	run := func(ctx *Ctx) Stats {
		in := seqElems(500)
		f := BuildFile(ctx.Disk(), "x", in)
		ctx.Disk().ResetStats()
		dup, err := Copy(ctx, f)
		if err != nil {
			t.Fatal(err)
		}
		buf, err := LoadAll(ctx, dup)
		if err != nil {
			t.Fatal(err)
		}
		ctx.FreeElems(buf)
		dup.Release()
		return ctx.Disk().Stats()
	}
	base := run(mustCtx(t, 1024, 8))
	if got := run(fileBackedCtx(t, 1024, 8)); got != base {
		t.Errorf("sync file backend %v != memory %v", got, base)
	}
	if got := run(pipelinedCtx(t, 1024, 8, Pipeline{})); got != base {
		t.Errorf("pipelined file backend %v != memory %v", got, base)
	}
}

func TestReaderRemainingO1Semantics(t *testing.T) {
	// Remaining's O(1) counter must agree with the spec at every step,
	// including partial trailing blocks and post-EOF.
	ctx := mustCtx(t, 64, 8)
	f := BuildFile(ctx.Disk(), "rem", seqElems(21)) // 2 full blocks + 5
	r, err := NewReader(ctx, f)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	for want := int64(21); ; want-- {
		if got := r.Remaining(); got != want {
			t.Fatalf("Remaining=%d, want %d", got, want)
		}
		if _, ok := r.Next(); !ok {
			if want != 0 {
				t.Fatalf("stream ended with Remaining=%d", want)
			}
			break
		}
	}
	if got := r.Remaining(); got != 0 {
		t.Fatalf("Remaining after EOF = %d", got)
	}
}

func TestMemStorePoolReusesBlocks(t *testing.T) {
	// Released memStore blocks must be recycled: after a release, an append
	// must not allocate a fresh block slice.
	d := NewDisk(8)
	ms := d.store.(*memStore)
	f := BuildFile(d, "a", seqElems(64))
	f.Release()
	if got := len(ms.free); got != 8 {
		t.Fatalf("free list holds %d blocks after release, want 8", got)
	}
	BuildFile(d, "b", seqElems(64))
	if got := len(ms.free); got != 0 {
		t.Fatalf("free list holds %d blocks after reuse, want 0", got)
	}
}

func TestPipelineValidate(t *testing.T) {
	if _, err := NewFileBackedDiskPipeline("x.dat", 8, Pipeline{Enabled: true, PrefetchDepth: -1}); err == nil {
		t.Error("negative prefetch depth accepted")
	}
	if err := (Config{M: 64, B: 8, Pipeline: Pipeline{QueueDepth: -2}}).Validate(); err == nil {
		t.Error("negative queue depth accepted by Config.Validate")
	}
}
