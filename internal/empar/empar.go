// Package empar is the parallel sharded execution engine: it runs the
// repository's sorting-based algorithms over S logical shards driven by P
// worker goroutines while keeping the logical I/O model exact and
// deterministic.
//
// The input is split into S contiguous block ranges, each handled by a shard
// sub-disk (emio.Disk.NewShard) with its own logical counters, an M/S-element
// memory budget and its own scratch namespace. A Sort proceeds in four
// deterministic phases separated by barriers:
//
//  1. Sample: each shard reads a few equi-spaced blocks of its input slice
//     and returns equi-spaced picks from each; the coordinator sorts the
//     combined sample once in memory and selects S-1 range splitters. One
//     O(1)-I/O-per-shard round, independent of N.
//  2. Runs: each shard forms sorted runs over its input slice
//     (extsort.FormRunsObserved). The observe hook binary-searches every
//     splitter in each sorted chunk, so the engine knows, per run, exactly
//     how many elements fall in each of the S key ranges — no second scan.
//  3. Range merge: shard t merges, from every run of every shard, exactly
//     the sub-range of elements belonging to key range t (a bounded window
//     read through a zero-copy view), producing the globally sorted slice
//     [gstart[t], gstart[t+1]) as a block-aligned body file plus in-memory
//     head/tail fragments for the block boundaries it shares with its
//     neighbors.
//  4. Assemble: the coordinator concatenates head_0 body_0 tail_0 head_1 ...
//     into one output file, adopting each body's extents wholesale
//     (emio.AdoptAppend, zero I/O) and writing only the boundary blocks.
//
// Shard count S is a pure function of M and B (never of the worker count or
// the machine), every task is a pure function of the input, and all shard
// deltas — Stats, memory peaks, footprint peaks, trace spans, metrics — are
// folded into the parent context at phase barriers in shard order. Outputs,
// Stats and trace JSON are therefore bit-identical for every worker count;
// workers change wall-clock speed only. The sorted output equals the
// sequential extsort output byte for byte because the sorted sequence of a
// multiset is unique.
package empar

import (
	"errors"
	"fmt"
	"slices"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"repro/internal/emio"
	"repro/internal/extsort"
	"repro/internal/mmheap"
)

// elemBytes mirrors emio's on-disk element size (two int64 words); used only
// for the human-facing byte figures in Report.
const elemBytes = 16

// Engine drives parallel sharded execution over one parent Ctx. An Engine is
// driven from a single goroutine (like a Ctx); it spins worker goroutines
// internally and joins them before returning from every call.
type Engine struct {
	ctx     *emio.Ctx
	workers int
	hook    func(shard int, d *emio.Disk)

	mu     sync.Mutex
	report Report
}

// Report describes the shard layout of the engine's most recent operation.
type Report struct {
	Shards     int     // shard count S used (1 = sequential fallback)
	Workers    int     // worker goroutines actually used (min(P, S))
	Sequential bool    // fell back to the sequential path
	ShardBytes []int64 // bytes of output produced by each shard's range merge
}

// ShardError wraps the first failure of a parallel phase with the index of
// the shard task that raised it. errors.As/Is reach the underlying cause.
type ShardError struct {
	Shard int
	Err   error
}

func (e *ShardError) Error() string { return fmt.Sprintf("empar: shard %d: %v", e.Shard, e.Err) }
func (e *ShardError) Unwrap() error { return e.Err }

// New returns an engine running up to workers goroutines over ctx's disk.
func New(ctx *emio.Ctx, workers int) (*Engine, error) {
	if ctx == nil {
		return nil, errors.New("empar: nil context")
	}
	if workers < 1 {
		return nil, fmt.Errorf("empar: workers %d < 1", workers)
	}
	return &Engine{ctx: ctx, workers: workers}, nil
}

// SetShardHook installs a callback invoked for every shard sub-disk as it is
// created, before any worker touches it. The fault harness uses it to arm
// injectors on a chosen shard; tests use it to observe the shard layout.
func (e *Engine) SetShardHook(h func(shard int, d *emio.Disk)) { e.hook = h }

// LastReport returns the shard layout of the most recent operation.
func (e *Engine) LastReport() Report {
	e.mu.Lock()
	defer e.mu.Unlock()
	r := e.report
	r.ShardBytes = slices.Clone(r.ShardBytes)
	return r
}

func (e *Engine) setReport(r Report) {
	e.mu.Lock()
	e.report = r
	e.mu.Unlock()
}

// ShardCount returns the shard count the engine uses under cfg: the largest
// S in {8, 4, 2} whose per-shard budget M/S can still run a range merge at
// the minimum fan-in of two — 2(B+4) source state plus 3B boundary and
// writer buffers plus slack, i.e. M/S >= 6B+24 — else 1. S depends on M and
// B only, never on the worker count, which is what keeps logical accounting
// identical across worker counts.
func ShardCount(cfg emio.Config) int {
	for _, s := range []int{8, 4, 2} {
		if cfg.M >= s*(6*cfg.B+24) {
			return s
		}
	}
	return 1
}

// shardState is the engine-side record of one shard: its sub-disk and
// context, its input block window, and the artifacts it produces phase by
// phase. Each field is written either by the coordinator or by the one task
// goroutine that owns the shard during a phase; phases are barriers.
type shardState struct {
	k    int
	disk *emio.Disk
	ctx  *emio.Ctx

	start, nblk int // input block window [start, start+nblk)

	runs []*emio.File // phase 2: sorted runs over the window
	cuts [][]int64    // per run: count of elements <= splitter[t], len S-1

	inters []*emio.File // phase 3: live intermediate merge files (error cleanup)
	body   *emio.File   // phase 3: block-aligned middle of the shard's range
	headBuf, tailBuf []emio.Elem // phase 3: B-element boundary buffers (charged)
	head, tail       []emio.Elem // filled prefixes of the above
}

// srcSpec describes one sorted source of a range merge: either a bounded
// window [skip, skip+cnt) of a shared run file, or a whole intermediate file
// owned by the merging shard.
type srcSpec struct {
	run       *emio.File
	skip, cnt int64
	whole     *emio.File
}

func (s srcSpec) count() int64 {
	if s.whole != nil {
		return s.whole.Len()
	}
	return s.cnt
}

// Sort returns a new file holding the elements of in sorted by (Key, Aux),
// byte-identical to extsort.Sort's output. The input file is unchanged.
func (e *Engine) Sort(in *emio.File) (*emio.File, error) {
	cfg := e.ctx.Config()
	s := ShardCount(cfg)
	n := in.Len()
	nb := in.NumBlocks()
	// Note no workers attribute: the trace must be bit-identical across
	// worker counts (that is the parity contract), so only layout facts that
	// are functions of (M, B, input) may appear in spans.
	sp := e.ctx.StartSpan("empar/sort",
		emio.AttrInt("n", n), emio.AttrInt("shards", int64(s)))
	defer sp.End()

	// Inputs too small to shard (or configurations too tight) take the
	// sequential path, which is itself deterministic in (M, B, input) and so
	// still worker-count-invariant.
	if s < 2 || nb < 2*s {
		e.setReport(Report{Shards: 1, Workers: 1, Sequential: true})
		return extsort.Sort(e.ctx, in)
	}
	// Settle any write-behind bytes: shard reads bypass the pipeline and go
	// straight to the backing store.
	if err := in.Sync(); err != nil {
		return nil, err
	}

	sh := make([]*shardState, s)
	for k := range sh {
		d, err := e.ctx.Disk().NewShard(k)
		if err != nil {
			return nil, err
		}
		sctx, err := emio.NewCtxWithDisk(emio.Config{M: cfg.M / s, B: cfg.B}, d)
		if err != nil {
			return nil, err
		}
		if e.ctx.Tracer() != nil {
			sctx.SetTracer(emio.NewTracer())
		}
		sh[k] = &shardState{
			k:     k,
			disk:  d,
			ctx:   sctx,
			start: k * nb / s,
			nblk:  (k+1)*nb/s - k*nb/s,
		}
		if e.hook != nil {
			e.hook(k, d)
		}
	}
	e.setReport(Report{Shards: s, Workers: min(e.workers, s)})

	ok := false
	defer func() {
		if !ok {
			e.releaseShardFiles(sh)
		}
	}()

	// Phase 1: sample and pick splitters.
	splitters, err := e.sampleSplitters(sh, in)
	if err != nil {
		return nil, err
	}

	// Phase 2: per-shard run formation with per-range cut counting.
	rsp := e.ctx.StartSpan("empar/runs", emio.AttrInt("n", n))
	err = e.runTasks(len(sh), func(k int) error { return formShardRuns(sh[k], in, splitters) })
	e.fold(sh)
	rsp.End()
	if err != nil {
		return nil, err
	}

	// Per-range totals and global offsets, from the cut counts alone.
	cnt := make([]int64, s)
	for _, st := range sh {
		for i, run := range st.runs {
			prev := int64(0)
			for t := 0; t < s; t++ {
				hi := run.Len()
				if t < s-1 {
					hi = st.cuts[i][t]
				}
				cnt[t] += hi - prev
				prev = hi
			}
		}
	}
	gstart := make([]int64, s)
	for t := 1; t < s; t++ {
		gstart[t] = gstart[t-1] + cnt[t-1]
	}
	if got := gstart[s-1] + cnt[s-1]; got != n {
		return nil, fmt.Errorf("empar: range counts cover %d of %d elements", got, n)
	}
	bytes := make([]int64, s)
	for t, c := range cnt {
		bytes[t] = c * elemBytes
	}
	e.setReport(Report{Shards: s, Workers: min(e.workers, s), ShardBytes: bytes})

	// Phase 3: each shard merges its key range out of all runs.
	msp := e.ctx.StartSpan("empar/range-merge", emio.AttrInt("n", n))
	err = e.runTasks(len(sh), func(t int) error { return mergeShardRange(sh, t, cnt[t], gstart[t]) })
	if err == nil {
		for _, st := range sh {
			for _, run := range st.runs {
				run.Release()
			}
			st.runs = nil
		}
	}
	e.fold(sh)
	msp.End()
	if err != nil {
		return nil, err
	}

	// Phase 4: stitch head/body/tail fragments into one output file.
	out, err := e.assemble(sh, n)
	if err != nil {
		return nil, err
	}
	ok = true
	return out, nil
}

// sampleSplitters runs the one-round sampling pass and returns the S-1 range
// splitters. The per-shard sample sizes are O(B) and independent of N, so
// the whole phase costs O(1) I/Os per shard.
func (e *Engine) sampleSplitters(sh []*shardState, in *emio.File) ([]emio.Elem, error) {
	asp := e.ctx.StartSpan("empar/sample")
	defer asp.End()
	s := len(sh)
	b := e.ctx.B()
	// se picks per sampled block, cs sampled blocks per shard: capped so the
	// shard-side pick slice stays <= 4B elements (it must fit next to the one
	// block buffer inside the M/S budget even for tiny configurations).
	se := min(4, b)
	samples := make([][]emio.Elem, s)
	err := e.runTasks(s, func(k int) error {
		st := sh[k]
		cs := min(32, st.nblk, max(1, 4*b/se))
		got, err := sampleShard(st, in, cs, se)
		samples[k] = got
		return err
	})
	e.fold(sh)
	if err != nil {
		return nil, err
	}
	total := 0
	for _, g := range samples {
		total += len(g)
	}
	samp, err := e.ctx.AllocElems(total)
	if err != nil {
		return nil, err
	}
	defer e.ctx.FreeElems(samp)
	pos := 0
	for _, g := range samples {
		pos += copy(samp[pos:], g)
	}
	slices.SortFunc(samp, emio.Compare)
	splitters := make([]emio.Elem, s-1)
	for t := 1; t < s; t++ {
		splitters[t-1] = samp[t*len(samp)/s]
	}
	return splitters, nil
}

// sampleShard reads cs equi-spaced blocks of the shard's input window and
// returns se equi-spaced picks from each. The returned slice is coordinator
// metadata (like the cut tables), not a charged buffer; it is bounded by
// cs·se <= 4B elements.
func sampleShard(st *shardState, in *emio.File, cs, se int) ([]emio.Elem, error) {
	ssp := st.ctx.StartSpan("empar/shard-sample",
		emio.AttrInt("shard", int64(st.k)), emio.AttrInt("blocks", int64(cs)))
	defer ssp.End()
	view, err := st.disk.NewView(in, st.start, st.nblk, "")
	if err != nil {
		return nil, err
	}
	defer view.Release()
	buf, err := st.ctx.AllocElems(st.ctx.B())
	if err != nil {
		return nil, err
	}
	defer st.ctx.FreeElems(buf)
	out := make([]emio.Elem, 0, cs*se)
	for j := 0; j < cs; j++ {
		bn, err := view.ReadBlock(j*st.nblk/cs, buf)
		if err != nil {
			return nil, err
		}
		picks := min(se, bn)
		for i := 0; i < picks; i++ {
			out = append(out, buf[i*bn/picks])
		}
	}
	return out, nil
}

// formShardRuns forms sorted runs over the shard's input window, recording
// for each run how many of its elements are <= each splitter (one binary
// search per splitter on the sorted chunk, no extra I/O).
func formShardRuns(st *shardState, in *emio.File, splitters []emio.Elem) error {
	ssp := st.ctx.StartSpan("empar/shard-runs",
		emio.AttrInt("shard", int64(st.k)), emio.AttrInt("blocks", int64(st.nblk)))
	defer ssp.End()
	view, err := st.disk.NewView(in, st.start, st.nblk, "")
	if err != nil {
		return err
	}
	defer view.Release()
	runs, err := extsort.FormRunsObserved(st.ctx, view, func(sorted []emio.Elem) {
		cuts := make([]int64, len(splitters))
		for t, spl := range splitters {
			cuts[t] = int64(sort.Search(len(sorted), func(i int) bool {
				return emio.Compare(sorted[i], spl) > 0
			}))
		}
		st.cuts = append(st.cuts, cuts)
	})
	st.runs = runs
	return err
}

// rangeFanIn is the merge width of a range merge under the shard budget m:
// one B-element reader per source plus ~4 words of tournament state, leaving
// room for the output writer and the two boundary buffers (3B) plus slack.
func rangeFanIn(m, b int) int {
	f := (m - 3*b - 16) / (b + 4)
	if f < 2 {
		f = 2
	}
	return f
}

// mergeShardRange merges key range t (the global output slice
// [gs, gs+total)) out of every run of every shard, on shard t's disk and
// budget. The result is a block-aligned body file plus head/tail fragments
// covering the partial blocks at the range's ends, so assembly can adopt the
// body's extents without rewriting them.
func mergeShardRange(sh []*shardState, t int, total, gs int64) error {
	st := sh[t]
	ssp := st.ctx.StartSpan("empar/shard-merge",
		emio.AttrInt("shard", int64(st.k)), emio.AttrInt("n", total))
	defer ssp.End()

	st.body = st.ctx.Scratch("body")
	if total == 0 {
		return nil
	}
	var specs []srcSpec
	for _, src := range sh {
		for i, run := range src.runs {
			lo := int64(0)
			if t > 0 {
				lo = src.cuts[i][t-1]
			}
			hi := run.Len()
			if t < len(sh)-1 {
				hi = src.cuts[i][t]
			}
			if hi > lo {
				specs = append(specs, srcSpec{run: run, skip: lo, cnt: hi - lo})
			}
		}
	}

	// Reduce the source count below the fan-in with standard merge passes,
	// each pass merging groups of <= fanC sources into one intermediate.
	fanC := rangeFanIn(st.ctx.M(), st.ctx.B())
	for len(specs) > fanC {
		var next []srcSpec
		for lo := 0; lo < len(specs); lo += fanC {
			group := specs[lo:min(lo+fanC, len(specs))]
			if len(group) == 1 {
				next = append(next, group[0])
				continue
			}
			inter := st.ctx.Scratch("rmerge")
			st.inters = append(st.inters, inter)
			w, err := emio.NewWriter(st.ctx, inter)
			if err != nil {
				return err
			}
			err = mergeSpecs(st, group, w.Append)
			if cerr := w.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				return err
			}
			for _, spec := range group {
				if spec.whole != nil {
					spec.whole.Release()
					st.dropInter(spec.whole)
				}
			}
			next = append(next, srcSpec{whole: inter})
		}
		specs = next
	}

	// Final merge: route each output element to the head fragment, the
	// block-aligned body, or the tail fragment by its global position.
	b := int64(st.ctx.B())
	ge := gs + total
	bodyStart := (gs + b - 1) / b * b
	if bodyStart > ge {
		bodyStart = ge
	}
	bodyEnd := ge / b * b
	if bodyEnd < bodyStart {
		bodyEnd = bodyStart
	}
	var err error
	if st.headBuf, err = st.ctx.AllocElems(int(b)); err != nil {
		return err
	}
	if st.tailBuf, err = st.ctx.AllocElems(int(b)); err != nil {
		return err
	}
	var w *emio.Writer
	if bodyEnd > bodyStart {
		if w, err = emio.NewWriter(st.ctx, st.body); err != nil {
			return err
		}
	}
	pos := gs
	err = mergeSpecs(st, specs, func(e emio.Elem) {
		switch {
		case pos < bodyStart:
			st.headBuf[pos-gs] = e
		case pos < bodyEnd:
			w.Append(e)
		default:
			st.tailBuf[pos-bodyEnd] = e
		}
		pos++
	})
	if w != nil {
		if cerr := w.Close(); err == nil {
			err = cerr
		}
	}
	if err != nil {
		return err
	}
	if got := st.body.Len(); got != bodyEnd-bodyStart {
		return fmt.Errorf("empar: range %d body holds %d of %d elements", t, got, bodyEnd-bodyStart)
	}
	st.head = st.headBuf[:bodyStart-gs]
	st.tail = st.tailBuf[:ge-bodyEnd]
	return nil
}

// mergeSpecs opens every source (bounded run windows through zero-copy
// views, whole intermediates directly), merges them with a tournament tree
// and streams the result to emit in nondecreasing order. Views and readers
// are closed on every path; consumed intermediates are the caller's to
// release.
func mergeSpecs(st *shardState, specs []srcSpec, emit func(emio.Elem)) error {
	var (
		readers []*emio.Reader
		views   []*emio.File
	)
	defer func() {
		for _, r := range readers {
			r.Close()
		}
		for _, v := range views {
			v.Release()
		}
	}()
	b := int64(st.ctx.B())
	srcs := make([]mmheap.Source, 0, len(specs))
	var total int64
	for _, spec := range specs {
		f := spec.whole
		if f == nil {
			firstBlk := spec.skip / b
			lastBlk := (spec.skip + spec.cnt - 1) / b
			v, err := st.disk.NewView(spec.run, int(firstBlk), int(lastBlk-firstBlk+1), "")
			if err != nil {
				return err
			}
			views = append(views, v)
			f = v
		}
		r, err := emio.NewReader(st.ctx, f)
		if err != nil {
			return err
		}
		readers = append(readers, r)
		if spec.whole != nil {
			srcs = append(srcs, r.Next)
		} else {
			for skip := spec.skip - (spec.skip/b)*b; skip > 0; skip-- {
				if _, ok := r.Next(); !ok {
					if err := r.Err(); err != nil {
						return err
					}
					return fmt.Errorf("empar: run %s short of window", spec.run.Name())
				}
			}
			rr, remaining := r, spec.cnt
			srcs = append(srcs, func() (emio.Elem, bool) {
				if remaining <= 0 {
					return emio.Elem{}, false
				}
				e, ok := rr.Next()
				if ok {
					remaining--
				}
				return e, ok
			})
		}
		total += spec.count()
	}
	m, err := mmheap.New(st.ctx, srcs)
	if err != nil {
		return err
	}
	defer m.Close()
	var n int64
	for {
		e, ok := m.Next()
		if !ok {
			break
		}
		emit(e)
		n++
	}
	for _, r := range readers {
		if err := r.Err(); err != nil {
			return err
		}
	}
	if n != total {
		return fmt.Errorf("empar: range merge emitted %d of %d elements", n, total)
	}
	return nil
}

// assemble stitches the per-range head/body/tail fragments into one output
// file on the parent context. Bodies are adopted extent-wise (zero I/O);
// only blocks straddling a range boundary are written here, through one
// B-element carry buffer. The carry fill entering range t is always
// gstart[t] mod B, so every adoption happens on a block boundary.
func (e *Engine) assemble(sh []*shardState, n int64) (*emio.File, error) {
	osp := e.ctx.StartSpan("empar/assemble", emio.AttrInt("n", n))
	defer osp.End()
	b := e.ctx.B()
	out := e.ctx.Scratch("parsorted")
	carry, err := e.ctx.AllocElems(b)
	if err != nil {
		out.Release()
		return nil, err
	}
	defer e.ctx.FreeElems(carry)
	fill := 0
	flush := func(elems []emio.Elem) error {
		for _, el := range elems {
			carry[fill] = el
			fill++
			if fill == b {
				if err := out.AppendBlock(carry); err != nil {
					return err
				}
				fill = 0
			}
		}
		return nil
	}
	for _, st := range sh {
		if err := flush(st.head); err != nil {
			out.Release()
			return nil, err
		}
		if st.body.NumBlocks() > 0 {
			if fill != 0 {
				out.Release()
				return nil, fmt.Errorf("empar: body of range %d not block-aligned (carry %d)", st.k, fill)
			}
			if err := emio.AdoptAppend(out, st.body); err != nil {
				out.Release()
				return nil, err
			}
		} else {
			st.body.Release()
		}
		st.body = nil
		if err := flush(st.tail); err != nil {
			out.Release()
			return nil, err
		}
		st.freeBoundary()
	}
	if fill > 0 {
		if err := out.AppendBlock(carry[:fill]); err != nil {
			out.Release()
			return nil, err
		}
	}
	if out.Len() != n {
		out.Release()
		return nil, fmt.Errorf("empar: assembled %d of %d elements", out.Len(), n)
	}
	return out, nil
}

// runTasks executes fn(0..n-1) on up to e.workers goroutines pulling task
// indexes from a shared counter. The first error (by lowest task index) is
// returned wrapped in a ShardError; a failure stops idle workers from
// claiming further tasks but never interrupts a running one, so every
// goroutine joins before return.
func (e *Engine) runTasks(n int, fn func(task int) error) error {
	workers := min(e.workers, n)
	var (
		next   atomic.Int64
		failed atomic.Bool
		wg     sync.WaitGroup
	)
	errs := make([]error, n)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				t := int(next.Add(1)) - 1
				if t >= n || failed.Load() {
					return
				}
				if err := fn(t); err != nil {
					errs[t] = err
					failed.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	for t, err := range errs {
		if err != nil {
			return &ShardError{Shard: t, Err: err}
		}
	}
	return nil
}

// fold merges every shard's accounting delta into the parent, in shard
// order, and resets the shard meters: logical Stats are added to the parent
// disk (and exported per shard through the empart_shard_* counter vectors
// when metrics are armed), memory and footprint peaks raise the parent peaks
// under the worst-case concurrent-residency model (parent usage plus the sum
// of shard peaks), and shard trace spans are grafted under the currently
// open parent span. Called at every phase barrier, before the phase span
// ends, so phase spans attribute shard work correctly.
func (e *Engine) fold(sh []*shardState) {
	pd := e.ctx.Disk()
	pm := e.ctx.Mem()
	iom := pd.Metrics()
	var memSum, liveSum int64
	for _, st := range sh {
		delta := st.disk.Stats()
		pd.AddStats(delta)
		st.disk.ResetStats()
		if iom != nil && (delta.Reads > 0 || delta.Writes > 0) {
			reg := iom.Registry()
			label := strconv.Itoa(st.k)
			reg.CounterVec("empart_shard_logical_reads_total",
				"Logical block reads performed on shard sub-disks.", "shard").With(label).Add(delta.Reads)
			reg.CounterVec("empart_shard_logical_writes_total",
				"Logical block writes performed on shard sub-disks.", "shard").With(label).Add(delta.Writes)
		}
		memSum += st.ctx.Mem().Peak()
		liveSum += st.disk.PeakLiveBlocks()
	}
	pm.RaisePeak(pm.Used() + memSum)
	pd.RaisePeakLive(pd.LiveBlocks() + liveSum)
	for _, st := range sh {
		st.ctx.Mem().ResetPeak()
		st.disk.ResetPeakLive()
	}
	if tr := e.ctx.Tracer(); tr != nil {
		for _, st := range sh {
			if str := st.ctx.Tracer(); str != nil {
				tr.Graft(str.Roots())
				str.Reset()
			}
		}
	}
}

// releaseShardFiles is the error-path cleanup: it releases, in shard order,
// every shard-owned file the failed operation left live, and returns the
// boundary-buffer charges. Views and readers are closed by their owning
// tasks on every path, so none are outstanding here.
func (e *Engine) releaseShardFiles(sh []*shardState) {
	for _, st := range sh {
		for _, run := range st.runs {
			run.Release()
		}
		st.runs = nil
		for _, f := range st.inters {
			f.Release()
		}
		st.inters = nil
		if st.body != nil {
			st.body.Release()
			st.body = nil
		}
		st.freeBoundary()
	}
}

// dropInter removes f from the live-intermediates list after it is consumed.
func (st *shardState) dropInter(f *emio.File) {
	for i, g := range st.inters {
		if g == f {
			st.inters = append(st.inters[:i], st.inters[i+1:]...)
			return
		}
	}
}

// freeBoundary returns the head/tail boundary-buffer charges to the shard's
// accountant.
func (st *shardState) freeBoundary() {
	if st.headBuf != nil {
		st.ctx.FreeElems(st.headBuf)
		st.headBuf, st.head = nil, nil
	}
	if st.tailBuf != nil {
		st.ctx.FreeElems(st.tailBuf)
		st.tailBuf, st.tail = nil, nil
	}
}
