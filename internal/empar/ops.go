package empar

import (
	"repro/internal/approxsplit"
	"repro/internal/core"
	"repro/internal/emio"
	"repro/internal/mpart"
)

// The sorting-based operations below all reduce to Sort: a fully sorted
// file is simultaneously a valid multiway partition for any size vector and
// the exact-rank answer to the splitter problem. That is how the engine
// parallelizes mpart/approxsplit-shaped work without re-deriving their
// recursions — the outputs remain valid for the same verifiers, and are
// bit-identical across worker counts because Sort is.

// MultiPartition returns a new file holding in's elements arranged so the
// first sizes[0] are the smallest, the next sizes[1] the next smallest, and
// so on. Parallel counterpart of mpart.Partition; the input is unchanged.
func (e *Engine) MultiPartition(in *emio.File, sizes []int64) (*emio.File, error) {
	sp := e.ctx.StartSpan("empar/multi-partition",
		emio.AttrInt("n", in.Len()), emio.AttrInt("parts", int64(len(sizes))))
	defer sp.End()
	if err := mpart.SizesValid(in.Len(), sizes); err != nil {
		return nil, err
	}
	return e.Sort(in)
}

// Splitters returns a file of p.K-1 splitters partitioning in into buckets
// of exactly n/K elements — exact ranks, which satisfy any approximation
// slack (A, B). Parallel counterpart of core.Splitters; the input is
// unchanged.
func (e *Engine) Splitters(in *emio.File, p core.Params) (*emio.File, error) {
	sp := e.ctx.StartSpan("empar/splitters",
		emio.AttrInt("n", in.Len()), emio.AttrInt("k", p.K))
	defer sp.End()
	if err := p.Validate(in.Len()); err != nil {
		return nil, err
	}
	sorted, err := e.Sort(in)
	if err != nil {
		return nil, err
	}
	out, err := approxsplit.FromSorted(e.ctx, sorted, p.K)
	sorted.Release()
	return out, err
}

// Partition returns in's elements arranged into p.K buckets of exactly n/K
// elements each in bucket order, with the size vector. Parallel counterpart
// of core.Partition; the input is unchanged.
func (e *Engine) Partition(in *emio.File, p core.Params) (*core.PartitionResult, error) {
	sp := e.ctx.StartSpan("empar/partition",
		emio.AttrInt("n", in.Len()), emio.AttrInt("k", p.K))
	defer sp.End()
	if err := p.Validate(in.Len()); err != nil {
		return nil, err
	}
	sorted, err := e.Sort(in)
	if err != nil {
		return nil, err
	}
	per := in.Len() / p.K
	sizes := make([]int64, p.K)
	for i := range sizes {
		sizes[i] = per
	}
	return &core.PartitionResult{Data: sorted, Sizes: sizes}, nil
}
