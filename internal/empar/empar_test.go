package empar

// Engine-level bit-identity: across memory configurations (spanning the
// sharded path, both fallbacks and a tiny-B machine), the engine's output
// must equal the sequential extsort output byte for byte at every worker
// count, and the parent context must balance to zero live memory and blocks
// once the caller releases its files.

import (
	"fmt"
	"testing"

	"repro/internal/emio"
	"repro/internal/extsort"
)

func TestEngineMatchesSequential(t *testing.T) {
	for _, tc := range []struct{ m, b int; n int64; w int }{
		{1024, 32, 10000, 1},
		{1024, 32, 10000, 2},
		{1024, 32, 10000, 4},
		{1024, 32, 63, 3},    // tiny: sequential fallback
		{1024, 32, 0, 2},     // empty
		{192, 32, 5000, 2},   // S=1 (M < 6*2*B=384? 192<384 yes) fallback
		{64, 1, 3000, 8},     // tiny B
		{4096, 8, 20000, 8},  // S=8
	} {
		t.Run(fmt.Sprintf("M%d_B%d_N%d_w%d", tc.m, tc.b, tc.n, tc.w), func(t *testing.T) {
			mk := func() (*emio.Ctx, *emio.File) {
				ctx, err := emio.NewCtx(emio.Config{M: tc.m, B: tc.b})
				if err != nil { t.Fatal(err) }
				elems := make([]emio.Elem, tc.n)
				rng := uint64(12345)
				for i := range elems {
					rng = rng*6364136223846793005 + 1442695040888963407
					elems[i] = emio.Elem{Key: int64(rng >> 30), Aux: int64(i)}
				}
				return ctx, emio.BuildFile(ctx.Disk(), "in", elems)
			}
			sctx, sin := mk()
			want, err := extsort.Sort(sctx, sin)
			if err != nil { t.Fatal(err) }
			wantSnap := want.Snapshot()

			pctx, pin := mk()
			eng, err := New(pctx, tc.w)
			if err != nil { t.Fatal(err) }
			got, err := eng.Sort(pin)
			if err != nil { t.Fatal(err) }
			gotSnap := got.Snapshot()
			if len(gotSnap) != len(wantSnap) { t.Fatalf("len %d want %d", len(gotSnap), len(wantSnap)) }
			for i := range gotSnap {
				if gotSnap[i] != wantSnap[i] { t.Fatalf("elem %d: %v want %v", i, gotSnap[i], wantSnap[i]) }
			}
			// hygiene: shard work fully folded, parent accounting balanced
			got.Release()
			pin.Release()
			if used := pctx.Mem().Used(); used != 0 {
				t.Fatalf("parent mem used %d after release", used)
			}
			if lb := pctx.Disk().LiveBlocks(); lb != 0 {
				t.Fatalf("parent live blocks %d after release", lb)
			}
			t.Logf("report: %+v", eng.LastReport())
		})
	}
}
