// Package msel implements multi-selection — report the elements of K
// prescribed ranks — in O((N/B) lg_{M/B}(K/B)) I/Os: Theorem 4, the paper's
// main algorithmic contribution. The bound is optimal and, for small K,
// strictly better than the Θ((N/B) lg_{M/B} K) complexity of multi-partition,
// which is the separation the paper highlights.
//
// Structure (paper §4.2):
//
//   - Base case K <= m = Θ(M): find Θ(M) approximate splitters of S in linear
//     I/Os (package approxsplit, standing in for Hu et al. [6]), count the
//     buckets in one scan, and translate the K rank queries into one
//     K-intermixed selection instance D: each query becomes a group holding a
//     copy of its target bucket, with the rank rebased to the bucket. Since
//     buckets hold Θ(N/M) elements and K = O(M), |D| = O(N), and package
//     intermix solves the instance in O(N/B) I/Os.
//
//   - General case K > m: multi-partition S at the ranks r_m, r_2m, ... into
//     g = ceil(K/m) chunks — O((N/B) lg_{M/B}(K/B)) I/Os — then run the base
//     case on each chunk with at most m rebased queries, O(N/B) altogether.
//
// On configurations too small to host the machinery (M < 240, where the
// intermixed-selection group bound vanishes) the package falls back to one
// exact selection per rank, which is the right tool at that scale anyway.
package msel

import (
	"fmt"
	"sort"

	"repro/internal/approxsplit"
	"repro/internal/emio"
	"repro/internal/emsel"
	"repro/internal/intermix"
	"repro/internal/mpart"
)

// bucketsPerQuery fixes the splitter resolution of the base case: with
// G = bucketsPerQuery*K buckets (capped by approxsplit.MaxBuckets) and the
// verified bucket bound of 8N/G, the intermixed instance D holds at most
// K * 8N/G = N/5 elements.
const bucketsPerQuery = 40

// Select returns the elements of the given ranks in f, written to a fresh
// file in the same order as ranks (the i-th output element has rank ranks[i]
// in f under the (Key, Aux) total order). ranks must be nondecreasing and lie
// in [1, f.Len()]. The input file is unchanged.
func Select(ctx *emio.Ctx, f *emio.File, ranks []int64) (*emio.File, error) {
	sp := ctx.StartSpan("msel/select",
		emio.AttrInt("n", f.Len()), emio.AttrInt("k", int64(len(ranks))))
	defer sp.End()
	n := f.Len()
	if len(ranks) == 0 {
		return ctx.Scratch("msel"), nil
	}
	prev := int64(0)
	for i, r := range ranks {
		if r < 1 || r > n {
			return nil, fmt.Errorf("msel: rank %d at position %d out of [1,%d]", r, i, n)
		}
		if r < prev {
			return nil, fmt.Errorf("msel: ranks not nondecreasing at position %d", i)
		}
		prev = r
	}

	m := intermix.MaxGroups(ctx.Config())
	if m < 1 || len(ranks) == 1 {
		// Degenerate configuration, or a single rank — plain exact selection
		// is both simpler and cheaper than the base-case machinery.
		return fallbackPerRank(ctx, f, ranks)
	}
	out := ctx.Scratch("msel")
	w, err := emio.NewWriter(ctx, out)
	if err != nil {
		return nil, err
	}
	if len(ranks) <= m {
		// A single base case: no writer may be held across it (inner
		// algorithms are entitled to nearly all of M), so collect the
		// answers first. They are at most m = M/240 elements.
		var answers []emio.Elem
		answers, err = baseCase(ctx, f, ranks)
		if err == nil {
			for _, e := range answers {
				w.Append(e)
			}
			ctx.FreeElems(answers)
			err = w.Err()
		}
	} else {
		err = generalCase(ctx, f, ranks, m, w)
	}
	if cerr := w.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		out.Release()
		return nil, err
	}
	return out, nil
}

// SelectInMemory is Select for small K: it returns the results as a charged
// slice (free with ctx.FreeElems) instead of a file.
func SelectInMemory(ctx *emio.Ctx, f *emio.File, ranks []int64) ([]emio.Elem, error) {
	resFile, err := Select(ctx, f, ranks)
	if err != nil {
		return nil, err
	}
	res, err := emio.LoadAll(ctx, resFile)
	resFile.Release()
	return res, err
}

// fallbackPerRank answers each query with an exact O(N/B) selection: the
// degenerate-configuration path (M < 240).
func fallbackPerRank(ctx *emio.Ctx, f *emio.File, ranks []int64) (*emio.File, error) {
	sp := ctx.StartSpan("msel/fallback", emio.AttrInt("k", int64(len(ranks))))
	defer sp.End()
	out := ctx.Scratch("msel")
	w, err := emio.NewWriter(ctx, out)
	if err != nil {
		return nil, err
	}
	for _, r := range ranks {
		e, err := emsel.Select(ctx, f, r)
		if err != nil {
			w.Close()
			out.Release()
			return nil, err
		}
		w.Append(e)
	}
	if err := w.Close(); err != nil {
		out.Release()
		return nil, err
	}
	return out, nil
}

// generalCase multi-partitions f at ranks r_m, r_2m, ... and solves a base
// case per chunk. Results stream to w in rank order because both the chunks
// and the queries are processed in ascending order.
func generalCase(ctx *emio.Ctx, f *emio.File, ranks []int64, m int, w *emio.Writer) error {
	sp := ctx.StartSpan("msel/general",
		emio.AttrInt("n", f.Len()), emio.AttrInt("k", int64(len(ranks))), emio.AttrInt("m", int64(m)))
	defer sp.End()
	n := f.Len()
	// Cut positions: every m-th requested rank, deduplicated, strictly
	// inside (0, n).
	var cuts []int64
	for i := m; i < len(ranks); i += m {
		c := ranks[i-1]
		if c < n && (len(cuts) == 0 || c > cuts[len(cuts)-1]) {
			cuts = append(cuts, c)
		}
	}
	sizes := make([]int64, 0, len(cuts)+1)
	prev := int64(0)
	for _, c := range cuts {
		sizes = append(sizes, c-prev)
		prev = c
	}
	sizes = append(sizes, n-prev)

	part, err := mpart.Partition(ctx, f, sizes)
	if err != nil {
		return err
	}
	chunks, err := emio.SplitFile(ctx, part, sizes)
	part.Release()
	if err != nil {
		return err
	}
	defer func() {
		for _, c := range chunks {
			if c != nil && !c.Released() {
				c.Release()
			}
		}
	}()

	// Route each query to its chunk: chunk j covers global ranks
	// (start_j, start_j + sizes_j]. Queries are sorted, so the routing is a
	// single forward walk.
	q := 0
	start := int64(0)
	for j, sz := range sizes {
		var local []int64
		for q < len(ranks) && ranks[q] <= start+sz {
			local = append(local, ranks[q]-start)
			q++
		}
		if len(local) > 0 {
			answers, err := baseCase(ctx, chunks[j], local)
			if err != nil {
				return err
			}
			for _, e := range answers {
				w.Append(e)
			}
			ctx.FreeElems(answers)
			if err := w.Err(); err != nil {
				return err
			}
		}
		chunks[j].Release()
		start += sz
	}
	if q != len(ranks) {
		return fmt.Errorf("msel: routed %d of %d queries", q, len(ranks))
	}
	return nil
}

// baseCase answers at most m nondecreasing rank queries against chunk in
// O(|chunk|/B) I/Os, returning the answers in query order as a charged slice
// (free with ctx.FreeElems). No stream buffers are held across the calls into
// approxsplit and intermix, which are entitled to nearly all of M.
func baseCase(ctx *emio.Ctx, chunk *emio.File, ranks []int64) ([]emio.Elem, error) {
	n := chunk.Len()
	k := len(ranks)
	if n <= int64(ctx.M()/3) {
		return baseCaseInMemory(ctx, chunk, ranks)
	}
	sp := ctx.StartSpan("msel/base-case", emio.AttrInt("n", n), emio.AttrInt("k", int64(k)))
	defer sp.End()

	g := bucketsPerQuery * k
	if maxG := approxsplit.MaxBuckets(ctx.Config()); g > maxG {
		g = maxG
	}
	// n > M/3 >= 2*MaxBuckets here, so g <= n always holds.
	res, err := approxsplit.Splitters(ctx, chunk, g)
	if err != nil {
		return nil, err
	}
	defer res.Close()

	// Bucket of each query and its rebased rank.
	targets, err := ctx.AllocInts(k)
	if err != nil {
		return nil, err
	}
	defer ctx.FreeInts(targets)
	qBucket, err := ctx.AllocInts(k)
	if err != nil {
		return nil, err
	}
	defer ctx.FreeInts(qBucket)
	{
		j := 0
		prefix := int64(0) // elements before bucket j
		for i, r := range ranks {
			for r > prefix+res.BucketSizes[j] {
				prefix += res.BucketSizes[j]
				j++
			}
			qBucket[i] = int64(j)
			targets[i] = r - prefix
		}
	}

	// Build the intermixed instance: group i receives a copy of bucket
	// qBucket[i], keyed by the element key with Aux packed as (group, seq)
	// where seq is the element's position in the chunk.
	bsp := ctx.StartSpan("msel/build-instance")
	d := ctx.Scratch("mselD")
	dw, err := emio.NewWriter(ctx, d)
	if err != nil {
		return nil, err
	}
	r, err := emio.NewReader(ctx, chunk)
	if err != nil {
		dw.Close()
		d.Release()
		return nil, err
	}
	seq := int64(0)
	for {
		e, ok := r.Next()
		if !ok {
			break
		}
		b := int64(approxsplit.BucketOf(res.Splitters, e))
		// Queries are sorted by rank, hence by bucket: binary search the
		// contiguous run of queries targeting bucket b.
		lo := sort.Search(k, func(i int) bool { return qBucket[i] >= b })
		for i := lo; i < k && qBucket[i] == b; i++ {
			dw.Append(emio.Elem{Key: e.Key, Aux: emio.PackAux(int64(i), seq)})
		}
		seq++
	}
	rerr := r.Err()
	r.Close()
	if err := dw.Close(); err != nil && rerr == nil {
		rerr = err
	}
	bsp.SetAttr("d", d.Len())
	bsp.End()
	if rerr != nil {
		d.Release()
		return nil, rerr
	}
	res.Close() // splitters and bucket sizes are no longer needed

	picked, err := intermix.Select(ctx, d, k, targets)
	d.Release()
	if err != nil {
		return nil, err
	}

	// Map the picked (Key, group, seq) records back to the original chunk
	// elements by position, then emit in query order.
	bySeq := make([]int, k) // query indices ordered by their answer's seq
	if err := ctx.Mem().Charge(int64(k)); err != nil {
		ctx.FreeElems(picked)
		return nil, err
	}
	defer ctx.Mem().Credit(int64(k))
	for i := range bySeq {
		bySeq[i] = i
	}
	sort.Slice(bySeq, func(a, b int) bool {
		return emio.UnpackSeq(picked[bySeq[a]].Aux) < emio.UnpackSeq(picked[bySeq[b]].Aux)
	})
	answers, err := ctx.AllocElems(k)
	if err != nil {
		ctx.FreeElems(picked)
		return nil, err
	}
	r2, err := emio.NewReader(ctx, chunk)
	if err != nil {
		ctx.FreeElems(picked)
		ctx.FreeElems(answers)
		return nil, err
	}
	pos, pi := int64(0), 0
	for pi < k {
		e, ok := r2.Next()
		if !ok {
			break
		}
		for pi < k && emio.UnpackSeq(picked[bySeq[pi]].Aux) == pos {
			answers[bySeq[pi]] = e
			pi++
		}
		pos++
	}
	rerr = r2.Err()
	r2.Close()
	ctx.FreeElems(picked)
	if rerr != nil {
		ctx.FreeElems(answers)
		return nil, rerr
	}
	if pi != k {
		ctx.FreeElems(answers)
		return nil, fmt.Errorf("msel: recovered %d of %d answers", pi, k)
	}
	return answers, nil
}

// baseCaseInMemory loads a small chunk and answers all queries by in-memory
// sorting, returning a charged answer slice.
func baseCaseInMemory(ctx *emio.Ctx, chunk *emio.File, ranks []int64) ([]emio.Elem, error) {
	buf, err := emio.LoadAll(ctx, chunk)
	if err != nil {
		return nil, err
	}
	defer ctx.FreeElems(buf)
	sort.Slice(buf, func(i, j int) bool { return emio.Less(buf[i], buf[j]) })
	answers, err := ctx.AllocElems(len(ranks))
	if err != nil {
		return nil, err
	}
	for i, r := range ranks {
		answers[i] = buf[r-1]
	}
	return answers, nil
}
