package msel

import (
	"math/rand/v2"
	"testing"

	"repro/internal/emio"
)

// ceilLogBase returns the smallest p with base^p >= x (x >= 1, base >= 2).
func ceilLogBase(base, x int64) int64 {
	p := int64(0)
	for v := int64(1); v < x; v *= base {
		p++
	}
	return p
}

// distributeDepth returns the deepest chain of nested "mpart/distribute"
// spans in the trace: the multi-partition recursion depth, the quantity
// Theorem 4's lg_{M/B} factor bounds.
func distributeDepth(tr *emio.Tracer) int64 {
	var rec func(sp *emio.Span, chain int64) int64
	rec = func(sp *emio.Span, chain int64) int64 {
		if sp.Name == "mpart/distribute" {
			chain++
		}
		best := chain
		for _, ch := range sp.Children {
			if d := rec(ch, chain); d > best {
				best = d
			}
		}
		return best
	}
	var best int64
	for _, r := range tr.Roots() {
		if d := rec(r, 0); d > best {
			best = d
		}
	}
	return best
}

// TestSelectRecursionDepthBound pins the recursion depth with the tracer: on
// a grid of machines and rank counts, the multi-partition recursion inside
// multi-selection stays within O(lg_{M/B}(N/B)) levels. Concretely: a chunk
// recurses only while it holds a boundary and exceeds the M/3 in-memory
// floor, and every level divides the boundary-bearing chunk by the fan-out
// f = (M-3B)/(B+2) in expectation, so the deepest chain is
// ceil(lg_f(3N/M)) + O(1) levels — we allow 2 levels of slack for random
// pivot skew. Chunks without boundaries are pruned immediately (the bnd=0
// early-out), which is where small K saves its I/O.
func TestSelectRecursionDepthBound(t *testing.T) {
	cases := []struct {
		m, b, n int
		k       int64
	}{
		{m: 256, b: 32, n: 1 << 14, k: 8},
		{m: 256, b: 32, n: 1 << 14, k: 64},
		{m: 256, b: 32, n: 1 << 15, k: 256},
		{m: 512, b: 32, n: 1 << 15, k: 128},
		{m: 1024, b: 64, n: 1 << 16, k: 64},
	}
	for _, tc := range cases {
		ctx := mustCtx(t, tc.m, tc.b)
		tr := emio.NewTracer()
		ctx.SetTracer(tr)
		rng := rand.New(rand.NewPCG(42, uint64(tc.k)))
		_, f := randFile(ctx.Disk(), tc.n, int64(tc.n)*4, rng)

		ranks := make([]int64, tc.k-1)
		for i := range ranks {
			ranks[i] = int64(i+1) * int64(tc.n) / tc.k
		}
		out, err := Select(ctx, f, ranks)
		if err != nil {
			t.Fatalf("M=%d B=%d N=%d K=%d: %v", tc.m, tc.b, tc.n, tc.k, err)
		}
		out.Release()

		fan := int64((tc.m - 3*tc.b) / (tc.b + 2))
		if fan < 2 {
			fan = 2
		}
		arg := (3*int64(tc.n) + int64(tc.m) - 1) / int64(tc.m)
		bound := 2 + ceilLogBase(fan, arg)
		depth := distributeDepth(tr)
		if depth > bound {
			t.Errorf("M=%d B=%d N=%d K=%d: distribute depth %d exceeds 2+ceil(lg_%d(%d)) = %d",
				tc.m, tc.b, tc.n, tc.k, depth, fan, arg, bound)
		}
		if tc.k >= 64 && depth == 0 {
			t.Errorf("M=%d B=%d N=%d K=%d: no mpart/distribute spans recorded — instrumentation gone?",
				tc.m, tc.b, tc.n, tc.k)
		}
		f.Release()
		emio.RequireNoLeaks(t, ctx)
	}
}
