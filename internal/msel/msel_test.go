package msel

import (
	"math"
	"math/rand/v2"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/emio"
	"repro/internal/intermix"
	"repro/internal/workload"
)

func mustCtx(t *testing.T, m, b int) *emio.Ctx {
	t.Helper()
	ctx, err := emio.NewCtx(emio.Config{M: m, B: b})
	if err != nil {
		t.Fatal(err)
	}
	return ctx
}

func randFile(d *emio.Disk, n int, keyRange int64, rng *rand.Rand) ([]emio.Elem, *emio.File) {
	s := make([]emio.Elem, n)
	for i := range s {
		s[i] = emio.Elem{Key: rng.Int64N(keyRange), Aux: int64(i)}
	}
	return s, emio.BuildFile(d, "in", s)
}

func oracle(in []emio.Elem) []emio.Elem {
	c := append([]emio.Elem(nil), in...)
	sort.Slice(c, func(i, j int) bool { return emio.Less(c[i], c[j]) })
	return c
}

func checkSelect(t *testing.T, ctx *emio.Ctx, in []emio.Elem, f *emio.File, ranks []int64) {
	t.Helper()
	out, err := Select(ctx, f, ranks)
	if err != nil {
		t.Fatalf("Select(%d ranks): %v", len(ranks), err)
	}
	got := out.Snapshot()
	want := oracle(in)
	if len(got) != len(ranks) {
		t.Fatalf("got %d results for %d ranks", len(got), len(ranks))
	}
	for i, r := range ranks {
		if got[i] != want[r-1] {
			t.Fatalf("rank %d = %v, want %v", r, got[i], want[r-1])
		}
	}
	out.Release()
	if ctx.Mem().Used() != 0 {
		t.Fatalf("leaked %d memory", ctx.Mem().Used())
	}
}

func TestSelectBaseCaseSmallK(t *testing.T) {
	ctx := mustCtx(t, 4096, 32) // m = 17
	rng := rand.New(rand.NewPCG(1, 1))
	in, f := randFile(ctx.Disk(), 1<<15, 1<<40, rng)
	checkSelect(t, ctx, in, f, []int64{1, 100, 5000, 16000, 32000, 32768})
}

func TestSelectSingleRank(t *testing.T) {
	ctx := mustCtx(t, 4096, 32)
	rng := rand.New(rand.NewPCG(2, 2))
	in, f := randFile(ctx.Disk(), 1<<14, 1<<30, rng)
	for _, r := range []int64{1, 8192, 16384} {
		checkSelect(t, ctx, in, f, []int64{r})
	}
}

func TestSelectGeneralCaseLargeK(t *testing.T) {
	ctx := mustCtx(t, 4096, 32) // m = 17, so K = 300 exercises the general case
	rng := rand.New(rand.NewPCG(3, 3))
	in, f := randFile(ctx.Disk(), 1<<15, 1<<40, rng)
	ranks := make([]int64, 300)
	for i := range ranks {
		ranks[i] = 1 + rng.Int64N(1<<15)
	}
	sort.Slice(ranks, func(i, j int) bool { return ranks[i] < ranks[j] })
	checkSelect(t, ctx, in, f, ranks)
}

func TestSelectEquiSpacedQuantiles(t *testing.T) {
	// The use case of the paper's splitters algorithms: the 1/K-quantile.
	ctx := mustCtx(t, 4096, 32)
	rng := rand.New(rand.NewPCG(4, 4))
	n := 1 << 14
	in, f := randFile(ctx.Disk(), n, 1<<40, rng)
	k := 64
	ranks := make([]int64, k-1)
	for i := range ranks {
		ranks[i] = int64((i + 1) * n / k)
	}
	checkSelect(t, ctx, in, f, ranks)
}

func TestSelectDuplicateRanks(t *testing.T) {
	ctx := mustCtx(t, 4096, 32)
	rng := rand.New(rand.NewPCG(5, 5))
	in, f := randFile(ctx.Disk(), 1<<14, 1<<30, rng)
	checkSelect(t, ctx, in, f, []int64{5, 5, 5, 9000, 9000, 16384, 16384})
}

func TestSelectDuplicateKeys(t *testing.T) {
	ctx := mustCtx(t, 4096, 32)
	rng := rand.New(rand.NewPCG(6, 6))
	in, f := randFile(ctx.Disk(), 1<<14, 8, rng) // 8 distinct keys
	checkSelect(t, ctx, in, f, []int64{1, 2000, 4096, 9000, 16384})
}

func TestSelectAllEqualKeys(t *testing.T) {
	ctx := mustCtx(t, 4096, 32)
	in := make([]emio.Elem, 1<<14)
	for i := range in {
		in[i] = emio.Elem{Key: 5, Aux: int64(i)}
	}
	f := emio.BuildFile(ctx.Disk(), "eq", in)
	checkSelect(t, ctx, in, f, []int64{1, 8192, 16384})
}

func TestSelectEmptyRanks(t *testing.T) {
	ctx := mustCtx(t, 4096, 32)
	_, f := randFile(ctx.Disk(), 100, 100, rand.New(rand.NewPCG(7, 7)))
	out, err := Select(ctx, f, nil)
	if err != nil || out.Len() != 0 {
		t.Fatalf("empty ranks: len=%d err=%v", out.Len(), err)
	}
}

func TestSelectValidation(t *testing.T) {
	ctx := mustCtx(t, 4096, 32)
	_, f := randFile(ctx.Disk(), 100, 100, rand.New(rand.NewPCG(8, 8)))
	for _, bad := range [][]int64{{0}, {101}, {-5}, {50, 10}} {
		if _, err := Select(ctx, f, bad); err == nil {
			t.Errorf("ranks %v accepted", bad)
		}
	}
}

func TestSelectTinyMemoryFallback(t *testing.T) {
	// M = 64 < 240: the per-rank fallback must still be correct.
	ctx := mustCtx(t, 64, 8)
	rng := rand.New(rand.NewPCG(9, 9))
	in, f := randFile(ctx.Disk(), 2000, 1<<30, rng)
	checkSelect(t, ctx, in, f, []int64{1, 500, 1000, 2000})
}

func TestSelectInMemoryWrapper(t *testing.T) {
	ctx := mustCtx(t, 4096, 32)
	rng := rand.New(rand.NewPCG(10, 10))
	in, f := randFile(ctx.Disk(), 1<<13, 1<<30, rng)
	want := oracle(in)
	res, err := SelectInMemory(ctx, f, []int64{10, 4000, 8192})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range []int64{10, 4000, 8192} {
		if res[i] != want[r-1] {
			t.Errorf("rank %d = %v, want %v", r, res[i], want[r-1])
		}
	}
	ctx.FreeElems(res)
	if ctx.Mem().Used() != 0 {
		t.Fatalf("leaked %d", ctx.Mem().Used())
	}
}

func TestSelectMemoryWithinBudget(t *testing.T) {
	ctx := mustCtx(t, 4096, 32)
	rng := rand.New(rand.NewPCG(11, 11))
	_, f := randFile(ctx.Disk(), 1<<16, 1<<40, rng)
	ranks := make([]int64, 200)
	for i := range ranks {
		ranks[i] = 1 + rng.Int64N(1<<16)
	}
	sort.Slice(ranks, func(i, j int) bool { return ranks[i] < ranks[j] })
	out, err := Select(ctx, f, ranks)
	if err != nil {
		t.Fatal(err)
	}
	out.Release()
	if ctx.Mem().Peak() > 4096 {
		t.Errorf("peak memory %d over M=4096", ctx.Mem().Peak())
	}
}

func TestSelectBaseCaseIsLinear(t *testing.T) {
	// For K <= m the cost must be O(N/B): scan-equivalents bounded and with
	// decaying increments across quadrupling N.
	var perScan []float64
	for _, n := range []int{1 << 14, 1 << 16, 1 << 18} {
		ctx := mustCtx(t, 4096, 32)
		rng := rand.New(rand.NewPCG(12, 12))
		_, f := randFile(ctx.Disk(), n, 1<<40, rng)
		ranks := []int64{int64(n / 4), int64(n / 2), int64(3 * n / 4)}
		ctx.Disk().ResetStats()
		out, err := Select(ctx, f, ranks)
		if err != nil {
			t.Fatal(err)
		}
		out.Release()
		perScan = append(perScan, float64(ctx.Disk().Stats().Total())/(float64(n)/32))
	}
	for i, s := range perScan {
		if s > 40 {
			t.Errorf("size %d: %.1f scan-equivalents, want <= 40", i, s)
		}
	}
	// Linear cost means the scan constant converges: the change per 4x
	// growth must shrink in magnitude (a hidden log factor would add a
	// constant increment every quadrupling).
	inc1 := math.Abs(perScan[1] - perScan[0])
	inc2 := math.Abs(perScan[2] - perScan[1])
	if inc2 > inc1*0.9+0.25 {
		t.Errorf("base-case cost not converging to linear: %v", perScan)
	}
}

func TestSelectMatchesOracleProperty(t *testing.T) {
	prop := func(keys []int64, rawRanks []uint16) bool {
		if len(keys) == 0 || len(rawRanks) == 0 {
			return true
		}
		ctx, err := emio.NewCtx(emio.Config{M: 960, B: 8})
		if err != nil {
			return false
		}
		in := make([]emio.Elem, len(keys))
		for i, k := range keys {
			in[i] = emio.Elem{Key: k % 32, Aux: int64(i)}
		}
		f := emio.BuildFile(ctx.Disk(), "p", in)
		ranks := make([]int64, 0, len(rawRanks))
		for _, r := range rawRanks {
			ranks = append(ranks, int64(r)%int64(len(in))+1)
		}
		sort.Slice(ranks, func(i, j int) bool { return ranks[i] < ranks[j] })
		out, err := Select(ctx, f, ranks)
		if err != nil {
			return false
		}
		got := out.Snapshot()
		want := oracle(in)
		for i, r := range ranks {
			if got[i] != want[r-1] {
				return false
			}
		}
		out.Release()
		return ctx.Mem().Used() == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestGeneralCaseUsesChunking(t *testing.T) {
	// Sanity: the general case must engage for K > m and still answer
	// boundary ranks (exact chunk edges) correctly.
	ctx := mustCtx(t, 2400, 16) // m = 10
	if m := intermix.MaxGroups(ctx.Config()); m != 10 {
		t.Fatalf("test assumes m=10, got %d", m)
	}
	rng := rand.New(rand.NewPCG(13, 13))
	n := 1 << 13
	in, f := randFile(ctx.Disk(), n, 1<<40, rng)
	ranks := make([]int64, 40)
	for i := range ranks {
		ranks[i] = int64((i + 1) * n / 41)
	}
	checkSelect(t, ctx, in, f, ranks)
}

func TestSelectAllRanksOne(t *testing.T) {
	// Every query asks for the minimum: all groups duplicate the same
	// bucket with the same target.
	ctx := mustCtx(t, 4096, 32)
	rng := rand.New(rand.NewPCG(14, 14))
	in, f := randFile(ctx.Disk(), 1<<14, 1<<30, rng)
	checkSelect(t, ctx, in, f, []int64{1, 1, 1, 1, 1})
}

func TestSelectAdjacentRanks(t *testing.T) {
	// Consecutive ranks land in the same bucket as distinct groups.
	ctx := mustCtx(t, 4096, 32)
	rng := rand.New(rand.NewPCG(15, 15))
	in, f := randFile(ctx.Disk(), 1<<14, 1<<30, rng)
	checkSelect(t, ctx, in, f, []int64{8000, 8001, 8002, 8003})
}

func FuzzMultiSelect(f *testing.F) {
	f.Add(uint16(1), uint16(99), uint8(0), uint64(1))
	f.Add(uint16(40), uint16(7), uint8(3), uint64(2))
	f.Add(uint16(300), uint16(1), uint8(6), uint64(3))
	f.Fuzz(func(t *testing.T, kRaw, spread uint16, kindRaw uint8, seed uint64) {
		n := int64(4096)
		k := int64(kRaw)%512 + 1
		kinds := workload.Kinds()
		kind := kinds[int(kindRaw)%len(kinds)]
		rng := rand.New(rand.NewPCG(seed, 17))
		ranks := make([]int64, k)
		cur := int64(1)
		for i := range ranks {
			ranks[i] = cur
			cur += rng.Int64N(int64(spread)%64 + 1) // nondecreasing, dup-friendly
			if cur > n {
				cur = n
			}
		}
		ctx, err := emio.NewCtx(emio.Config{M: 1024, B: 16})
		if err != nil {
			t.Fatal(err)
		}
		file := workload.File(ctx.Disk(), kind, int(n), seed)
		in := file.Snapshot()
		out, err := Select(ctx, file, ranks)
		if err != nil {
			t.Fatalf("ranks[0..2]=%v k=%d kind=%v: %v", ranks[:min(3, len(ranks))], k, kind, err)
		}
		got := out.Snapshot()
		want := oracle(in)
		for i, r := range ranks {
			if got[i] != want[r-1] {
				t.Fatalf("rank %d = %v, want %v", r, got[i], want[r-1])
			}
		}
		out.Release()
		if ctx.Mem().Used() != 0 {
			t.Fatalf("leaked %d", ctx.Mem().Used())
		}
	})
}
