// Package imcomp implements the internal-memory versions of multi-selection
// and multi-partition with exact comparison counting, to reproduce the
// paper's §1.3 remark:
//
//	"This phenomenon is interesting because in internal memory the two
//	 problems have exactly the same complexity: both demand Θ(N lg K)
//	 comparisons."
//
// In the EM model the paper separates the two problems (Theorem 4 vs the
// multi-partition bound); internally they are twins. Both routines here are
// the classic Θ(N lg K) algorithms — recursive rank partitioning around
// exact medians of the remaining cut set — and both report the number of
// element comparisons they performed, so a benchmark can show the counts
// coinciding while the EM I/O costs diverge.
package imcomp

import (
	"fmt"
	"sort"

	"repro/internal/emio"
)

// counter tallies element comparisons.
type counter struct{ n int64 }

func (c *counter) less(a, b emio.Elem) bool {
	c.n++
	return emio.Less(a, b)
}

func (c *counter) compare(a, b emio.Elem) int {
	c.n++
	return emio.Compare(a, b)
}

// MultiSelect returns the elements of the given 1-based, strictly increasing
// ranks of s and the number of comparisons spent: Θ(N lg K). s is reordered.
func MultiSelect(s []emio.Elem, ranks []int64) ([]emio.Elem, int64, error) {
	if err := checkRanks(ranks, int64(len(s))); err != nil {
		return nil, 0, err
	}
	c := &counter{}
	out := make([]emio.Elem, len(ranks))
	msel(c, s, 0, ranks, out)
	return out, c.n, nil
}

func msel(c *counter, s []emio.Elem, base int64, ranks []int64, out []emio.Elem) {
	if len(ranks) == 0 {
		return
	}
	mid := len(ranks) / 2
	r := ranks[mid] - base
	e := quickselect(c, s, r)
	out[mid] = e
	msel(c, s[:r-1], base, ranks[:mid], out[:mid])
	msel(c, s[r:], base+r, ranks[mid+1:], out[mid+1:])
}

// MultiPartition rearranges s so that consecutive segments of the given
// sizes respect the order, returning the comparison count: Θ(N lg K) by
// recursing on the middle cut.
func MultiPartition(s []emio.Elem, sizes []int64) (int64, error) {
	var sum int64
	for i, sz := range sizes {
		if sz < 0 {
			return 0, fmt.Errorf("imcomp: negative size at %d", i)
		}
		sum += sz
	}
	if sum != int64(len(s)) {
		return 0, fmt.Errorf("imcomp: sizes sum to %d, have %d elements", sum, len(s))
	}
	cuts := make([]int64, 0, len(sizes))
	cum := int64(0)
	for _, sz := range sizes[:max(len(sizes)-1, 0)] {
		cum += sz
		if cum > 0 && cum < int64(len(s)) && (len(cuts) == 0 || cum > cuts[len(cuts)-1]) {
			cuts = append(cuts, cum)
		}
	}
	c := &counter{}
	mpart(c, s, 0, cuts)
	return c.n, nil
}

func mpart(c *counter, s []emio.Elem, base int64, cuts []int64) {
	if len(cuts) == 0 {
		return
	}
	mid := len(cuts) / 2
	r := cuts[mid] - base
	quickselect(c, s, r) // partitions s around rank r
	mpart(c, s[:r], base, cuts[:mid])
	mpart(c, s[r:], base+r, cuts[mid+1:])
}

// quickselect returns the element of 1-based rank r, leaving s partitioned:
// s[:r] holds the r smallest. Median-of-three pivoting with counted
// comparisons; expected Θ(n).
func quickselect(c *counter, s []emio.Elem, r int64) emio.Elem {
	lo, hi := 0, len(s)
	k := int(r) - 1
	for hi-lo > 8 {
		mid := lo + (hi-lo)/2
		p := medianOfThree(c, s[lo], s[mid], s[hi-1])
		lt, eq := partition3(c, s[lo:hi], p)
		switch {
		case k-lo < lt:
			hi = lo + lt
		case k-lo < lt+eq:
			return p
		default:
			lo += lt + eq
		}
	}
	seg := s[lo:hi]
	sort.Slice(seg, func(i, j int) bool { return c.less(seg[i], seg[j]) })
	return s[k]
}

func medianOfThree(c *counter, a, b, d emio.Elem) emio.Elem {
	if c.less(b, a) {
		a, b = b, a
	}
	if c.less(d, b) {
		b = d
		if c.less(b, a) {
			b = a
		}
	}
	return b
}

// partition3 three-way partitions s around pivot with counted comparisons.
func partition3(c *counter, s []emio.Elem, pivot emio.Elem) (lt, eq int) {
	i, j, k := 0, 0, len(s)
	for j < k {
		cmp := c.compare(s[j], pivot)
		switch {
		case cmp < 0:
			s[i], s[j] = s[j], s[i]
			i++
			j++
		case cmp > 0:
			k--
			s[j], s[k] = s[k], s[j]
		default:
			j++
		}
	}
	return i, j - i
}

func checkRanks(ranks []int64, n int64) error {
	prev := int64(0)
	for i, r := range ranks {
		if r < 1 || r > n {
			return fmt.Errorf("imcomp: rank %d out of [1,%d]", r, n)
		}
		if r <= prev {
			return fmt.Errorf("imcomp: ranks not strictly increasing at %d", i)
		}
		prev = r
	}
	return nil
}
