package imcomp

import (
	"math"
	"math/rand/v2"
	"sort"
	"testing"

	"repro/internal/emio"
	"repro/internal/verify"
)

func randElems(n int, rng *rand.Rand) []emio.Elem {
	s := make([]emio.Elem, n)
	for i := range s {
		s[i] = emio.Elem{Key: rng.Int64N(int64(n) * 4), Aux: int64(i)}
	}
	return s
}

func sortedCopy(s []emio.Elem) []emio.Elem {
	c := append([]emio.Elem(nil), s...)
	sort.Slice(c, func(i, j int) bool { return emio.Less(c[i], c[j]) })
	return c
}

func equiRanks(n, k int64) []int64 {
	ranks := make([]int64, 0, k-1)
	for i := int64(1); i < k; i++ {
		r := i * n / k
		if len(ranks) == 0 || r > ranks[len(ranks)-1] {
			ranks = append(ranks, r)
		}
	}
	return ranks
}

func equiSizes(n, k int64) []int64 {
	sizes := make([]int64, k)
	prev := int64(0)
	for i := int64(0); i < k; i++ {
		cum := (i + 1) * n / k
		sizes[i] = cum - prev
		prev = cum
	}
	return sizes
}

func TestMultiSelectCorrect(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	in := randElems(5000, rng)
	ranks := equiRanks(5000, 16)
	got, comps, err := MultiSelect(append([]emio.Elem(nil), in...), ranks)
	if err != nil {
		t.Fatal(err)
	}
	if comps <= 0 {
		t.Fatal("no comparisons counted")
	}
	want := sortedCopy(in)
	for i, r := range ranks {
		if got[i] != want[r-1] {
			t.Fatalf("rank %d = %v, want %v", r, got[i], want[r-1])
		}
	}
}

func TestMultiPartitionCorrect(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 2))
	in := randElems(5000, rng)
	work := append([]emio.Elem(nil), in...)
	sizes := equiSizes(5000, 16)
	comps, err := MultiPartition(work, sizes)
	if err != nil {
		t.Fatal(err)
	}
	if comps <= 0 {
		t.Fatal("no comparisons counted")
	}
	if err := verify.SameMultiset(work, in); err != nil {
		t.Fatal(err)
	}
	if err := verify.OrderedSegments(work, sizes); err != nil {
		t.Fatal(err)
	}
}

func TestValidation(t *testing.T) {
	in := randElems(10, rand.New(rand.NewPCG(3, 3)))
	if _, _, err := MultiSelect(in, []int64{0}); err == nil {
		t.Error("rank 0 accepted")
	}
	if _, _, err := MultiSelect(in, []int64{3, 3}); err == nil {
		t.Error("non-increasing ranks accepted")
	}
	if _, err := MultiPartition(in, []int64{5, 6}); err == nil {
		t.Error("bad sum accepted")
	}
	if _, err := MultiPartition(in, []int64{-1, 11}); err == nil {
		t.Error("negative size accepted")
	}
}

// TestComparisonsScaleAsNLgK verifies the Θ(N lg K) shape for both problems:
// the normalised count comps/(N lg K) stays within a bounded band across a
// wide K sweep.
func TestComparisonsScaleAsNLgK(t *testing.T) {
	n := int64(1 << 15)
	rng := rand.New(rand.NewPCG(4, 4))
	in := randElems(int(n), rng)
	for _, k := range []int64{2, 8, 64, 512, 4096} {
		lgK := math.Log2(float64(k))
		sel := append([]emio.Elem(nil), in...)
		_, cSel, err := MultiSelect(sel, equiRanks(n, k))
		if err != nil {
			t.Fatal(err)
		}
		par := append([]emio.Elem(nil), in...)
		cPar, err := MultiPartition(par, equiSizes(n, k))
		if err != nil {
			t.Fatal(err)
		}
		normSel := float64(cSel) / (float64(n) * lgK)
		normPar := float64(cPar) / (float64(n) * lgK)
		if normSel < 0.5 || normSel > 6 {
			t.Errorf("K=%d: multiselect %.2f N lg K comparisons, want O(1) band", k, normSel)
		}
		if normPar < 0.5 || normPar > 6 {
			t.Errorf("K=%d: multipartition %.2f N lg K comparisons, want O(1) band", k, normPar)
		}
	}
}

// TestInternalMemoryParity is the paper's §1.3 remark made executable: in
// internal memory, multi-selection and multi-partition cost the same number
// of comparisons up to a small constant — the separation exists only in the
// EM model.
func TestInternalMemoryParity(t *testing.T) {
	n := int64(1 << 15)
	rng := rand.New(rand.NewPCG(5, 5))
	in := randElems(int(n), rng)
	for _, k := range []int64{4, 64, 1024} {
		sel := append([]emio.Elem(nil), in...)
		_, cSel, err := MultiSelect(sel, equiRanks(n, k))
		if err != nil {
			t.Fatal(err)
		}
		par := append([]emio.Elem(nil), in...)
		cPar, err := MultiPartition(par, equiSizes(n, k))
		if err != nil {
			t.Fatal(err)
		}
		ratio := float64(cSel) / float64(cPar)
		if ratio < 0.4 || ratio > 2.5 {
			t.Errorf("K=%d: msel/mpart comparison ratio %.2f, want near 1 (internal-memory parity)", k, ratio)
		}
	}
}

func TestEmptyAndSingleton(t *testing.T) {
	in := randElems(100, rand.New(rand.NewPCG(6, 6)))
	if got, comps, err := MultiSelect(in, nil); err != nil || len(got) != 0 || comps != 0 {
		t.Errorf("empty ranks: %v %d %v", got, comps, err)
	}
	if comps, err := MultiPartition(in, []int64{100}); err != nil || comps != 0 {
		t.Errorf("single partition: %d %v", comps, err)
	}
}
