package core

import (
	"fmt"

	"repro/internal/emio"
	"repro/internal/emsel"
	"repro/internal/inmem"
)

// PrecisePartitionViaApprox performs precise (ceil(N/b))-partitioning —
// every partition except possibly the last has size exactly b — by the
// reduction of paper §3: first solve an approximate partitioning where every
// partition has size at most b, then re-chunk with a rolling remainder buffer
// R in O(N/B) additional I/Os. This is the reduction that transfers the
// multi-partition lower bound (Lemma 5) onto left-grounded approximate
// K-partitioning and proves Theorem 3; here it doubles as an executable
// algorithm and as the target of the RED-3 experiment.
//
// The output is the concatenation of the precise partitions; the input file
// is unchanged.
func PrecisePartitionViaApprox(ctx *emio.Ctx, f *emio.File, b int64) (*emio.File, error) {
	n := f.Len()
	if b < 1 {
		return nil, fmt.Errorf("%w: b=%d", ErrBadParams, b)
	}
	sp := ctx.StartSpan("core/precise-partition", emio.AttrInt("n", n), emio.AttrInt("b", b))
	defer sp.End()
	if b > n {
		b = n
	}
	k := ceilDiv(n, b)

	// Step 1: approximate K-partitioning with partition sizes in [0, b].
	// Any K >= ceil(N/b) works; using K = ceil(N/b) keeps Validate happy for
	// every n (the left-grounded path never relies on N | K).
	approx, err := partitionLeft(ctx, f, Params{K: k, A: 0, B: b})
	if err != nil {
		return nil, err
	}
	defer approx.Release()

	// Step 2: process P_1, ..., P_K in turn with the remainder buffer R.
	// After appending P_i to R, |R| <= 2b; if |R| > b, the b smallest
	// elements of R become the next precise partition and the rest carries
	// over. Each step costs O(b/B), so the whole pass is O(N/B).
	rsp := ctx.StartSpan("core/rechunk", emio.AttrInt("k", k))
	defer rsp.End()
	out := ctx.Scratch("precise")
	w, err := emio.NewWriter(ctx, out)
	if err != nil {
		return nil, err
	}
	fail := func(e error) (*emio.File, error) {
		w.Close()
		out.Release()
		return nil, e
	}

	r, err := emio.NewReader(ctx, approx.Data)
	if err != nil {
		return fail(err)
	}
	defer r.Close()

	rem := ctx.Scratch("R") // the rolling remainder
	remW, err := emio.NewWriter(ctx, rem)
	if err != nil {
		return fail(err)
	}
	for _, sz := range approx.Sizes {
		for j := int64(0); j < sz; j++ {
			e, ok := r.Next()
			if !ok {
				remW.Close()
				rem.Release()
				if err := r.Err(); err != nil {
					return fail(err)
				}
				return fail(fmt.Errorf("core: approximate output exhausted early"))
			}
			remW.Append(e)
		}
		if err := remW.Err(); err != nil {
			remW.Close()
			rem.Release()
			return fail(err)
		}
		// Flush R and split off full partitions of size b.
		if err := remW.Close(); err != nil {
			rem.Release()
			return fail(err)
		}
		for rem.Len() > b {
			low, high, _, err := splitRemainder(ctx, rem, b)
			rem.Release()
			if err != nil {
				return fail(err)
			}
			if err := appendFile(ctx, w, low); err != nil {
				high.Release()
				return fail(err)
			}
			rem = high
		}
		// Reopen R for appending. When R ends in a partial block it must be
		// rebuilt through a fresh file (|R| <= b elements, O(b/B) I/Os);
		// block-aligned R (including empty) is reopened in place.
		if rem.Len()%int64(ctx.B()) == 0 {
			remW, err = emio.NewWriter(ctx, rem)
			if err != nil {
				rem.Release()
				return fail(err)
			}
			continue
		}
		fresh := ctx.Scratch("R")
		remW, err = emio.NewWriter(ctx, fresh)
		if err != nil {
			rem.Release()
			return fail(err)
		}
		if err := streamInto(ctx, remW, rem); err != nil {
			remW.Close()
			rem.Release()
			fresh.Release()
			return fail(err)
		}
		rem.Release()
		rem = fresh
	}
	if err := remW.Close(); err != nil {
		rem.Release()
		return fail(err)
	}
	if rem.Len() > 0 { // the final, possibly short partition
		if err := appendFile(ctx, w, rem); err != nil {
			return fail(err)
		}
	} else {
		rem.Release()
	}
	if err := w.Close(); err != nil {
		out.Release()
		return nil, err
	}
	if out.Len() != n {
		out.Release()
		return nil, fmt.Errorf("core: precise partitioning emitted %d of %d", out.Len(), n)
	}
	return out, nil
}

// splitRemainder divides rem into its b smallest elements and the rest,
// in memory when it fits and by exact selection otherwise.
func splitRemainder(ctx *emio.Ctx, rem *emio.File, b int64) (low, high *emio.File, boundary emio.Elem, err error) {
	if rem.Len() <= int64(ctx.M()/3) {
		buf, err := emio.LoadAll(ctx, rem)
		if err != nil {
			return nil, nil, emio.Elem{}, err
		}
		inmem.Sort(buf)
		low, err := emio.StoreAll(ctx, "Rlow", buf[:b])
		if err != nil {
			ctx.FreeElems(buf)
			return nil, nil, emio.Elem{}, err
		}
		high, err := emio.StoreAll(ctx, "Rhigh", buf[b:])
		if err != nil {
			ctx.FreeElems(buf)
			low.Release()
			return nil, nil, emio.Elem{}, err
		}
		bnd := buf[b-1]
		ctx.FreeElems(buf)
		return low, high, bnd, nil
	}
	return emsel.SplitAtRank(ctx, rem, b)
}
