package core

import (
	"math/rand/v2"
	"testing"

	"repro/internal/emio"
	"repro/internal/ordercount"
)

// These tests rebuild, from the actual comparison transcript of an
// execution, the partial order ≺* the algorithm has learned about the input
// (§2 of the paper), and check the combinatorial facts the lower-bound
// proofs derive for any correct comparison-based algorithm:
//
//   - Fact 2 (right-grounded, a >= 2): the returned splitters must be
//     pairwise comparable in ≺* — otherwise the adversary could slide two
//     splitters together and leave a bucket with one element.
//   - Fact 6 (left-grounded): among the non-splitter elements, every set of
//     pairwise ≺*-incomparable elements has size at most b — an incomparable
//     set could be placed consecutively inside one bucket.
//
// Derived records created by the algorithms keep their source element's key,
// and the inputs here have unique keys, so mapping transcript pairs back to
// input elements by key captures everything the algorithm learned.

// transcriptPoset runs fn while recording comparisons between input keys and
// returns the learned order over the input's indices.
func transcriptPoset(t *testing.T, keys []int64, fn func()) *ordercount.Poset {
	t.Helper()
	idx := make(map[int64]int, len(keys))
	for i, k := range keys {
		idx[k] = i
	}
	p, err := ordercount.New(len(keys))
	if err != nil {
		t.Fatal(err)
	}
	emio.SetCompareHook(func(lo, hi emio.Elem) {
		i, iok := idx[lo.Key]
		j, jok := idx[hi.Key]
		if !iok || !jok || i == j {
			return
		}
		if !p.Less(i, j) {
			if err := p.AddLess(i, j); err != nil {
				t.Fatalf("inconsistent transcript: %v", err)
			}
		}
	})
	defer emio.SetCompareHook(nil)
	fn()
	return p
}

func uniqueKeyInput(n int, rng *rand.Rand) ([]int64, []emio.Elem) {
	keys := rng.Perm(n * 8)
	elems := make([]emio.Elem, n)
	out := make([]int64, n)
	for i := 0; i < n; i++ {
		out[i] = int64(keys[i])
		elems[i] = emio.Elem{Key: int64(keys[i]), Aux: int64(i)}
	}
	return out, elems
}

func TestTranscriptFact2RightGroundedSplittersComparable(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	for trial := 0; trial < 5; trial++ {
		n := 16
		keys, elems := uniqueKeyInput(n, rng)
		ctx := mustCtx(t, 16, 4) // tiny memory (M/3 = 5 < n): the algorithm cannot just load and sort in RAM
		f := emio.BuildFile(ctx.Disk(), "t", elems)
		var splitters []emio.Elem
		p := transcriptPoset(t, keys, func() {
			out, err := Splitters(ctx, f, Params{K: 4, A: 2, B: int64(n)})
			if err != nil {
				t.Fatal(err)
			}
			splitters = out.Snapshot()
			out.Release()
		})
		idx := make(map[int64]int)
		for i, k := range keys {
			idx[k] = i
		}
		for a := 0; a < len(splitters); a++ {
			for b := a + 1; b < len(splitters); b++ {
				i, j := idx[splitters[a].Key], idx[splitters[b].Key]
				if !p.Comparable(i, j) {
					t.Fatalf("trial %d: splitters %v and %v incomparable in the learned order (Fact 2)",
						trial, splitters[a], splitters[b])
				}
			}
		}
	}
}

func TestTranscriptFact6LeftGroundedWidthAtMostB(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 2))
	for trial := 0; trial < 5; trial++ {
		n := 16
		b := int64(4)
		keys, elems := uniqueKeyInput(n, rng)
		ctx := mustCtx(t, 16, 4)
		f := emio.BuildFile(ctx.Disk(), "t", elems)
		var splitters []emio.Elem
		p := transcriptPoset(t, keys, func() {
			out, err := Splitters(ctx, f, Params{K: int64(n) / b, A: 0, B: b})
			if err != nil {
				t.Fatal(err)
			}
			splitters = out.Snapshot()
			out.Release()
		})
		// Induce the learned order on the non-splitter elements.
		isSplitter := make(map[int64]bool)
		for _, s := range splitters {
			isSplitter[s.Key] = true
		}
		var mask uint32
		for i, k := range keys {
			if !isSplitter[k] {
				mask |= 1 << i
			}
		}
		_, width := p.Induce(mask).MaxAntichain()
		if width > int(b) {
			t.Fatalf("trial %d: non-splitter width %d > b=%d (Fact 6)", trial, width, b)
		}
	}
}

func TestTranscriptSortLearnsTotalOrder(t *testing.T) {
	// Sanity anchor for the tracing machinery: a full sort must learn a
	// total order (width 1).
	rng := rand.New(rand.NewPCG(3, 3))
	n := 12
	keys, elems := uniqueKeyInput(n, rng)
	ctx := mustCtx(t, 24, 4) // the reduction holds three streams at once
	f := emio.BuildFile(ctx.Disk(), "t", elems)
	var sorted []emio.Elem
	p := transcriptPoset(t, keys, func() {
		out, err := PrecisePartitionViaApprox(ctx, f, 1) // b=1: full sorting
		if err != nil {
			t.Fatal(err)
		}
		sorted = out.Snapshot()
		out.Release()
	})
	for i := 1; i < len(sorted); i++ {
		if emio.Less(sorted[i], sorted[i-1]) {
			t.Fatal("output not sorted")
		}
	}
	if _, w := p.MaxAntichain(); w != 1 {
		t.Errorf("sorting left width %d, want 1 (total order learned)", w)
	}
}
