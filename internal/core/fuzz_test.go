package core

import (
	"testing"

	"repro/internal/emio"
	"repro/internal/verify"
	"repro/internal/workload"
)

// Native fuzz targets: the fuzzer mutates machine shape, problem parameters
// and workload; every accepted configuration must produce verified output
// with no memory leak, and every rejected one must fail cleanly. The seed
// corpus doubles as a regression suite under plain `go test`.

// clampParams derives a valid (K, a, b) from raw fuzz bytes, or reports an
// intentionally invalid combination (which must be rejected).
func clampParams(n int64, rawK, rawA, rawB uint16) Params {
	divisors := []int64{1, 2, 4, 8, 16, 32, 64}
	k := divisors[int(rawK)%len(divisors)]
	a := int64(rawA) % (n/k + 1)
	b := n/k + int64(rawB)%(n+1)
	return Params{K: k, A: a, B: b}
}

func FuzzSplitters(f *testing.F) {
	f.Add(uint16(3), uint16(10), uint16(100), uint8(0), uint64(1))
	f.Add(uint16(0), uint16(0), uint16(0), uint8(1), uint64(2))
	f.Add(uint16(6), uint16(500), uint16(0), uint8(7), uint64(3))
	f.Add(uint16(2), uint16(65535), uint16(65535), uint8(4), uint64(4))
	f.Fuzz(func(t *testing.T, rawK, rawA, rawB uint16, kindRaw uint8, seed uint64) {
		n := int64(2048)
		p := clampParams(n, rawK, rawA, rawB)
		kinds := workload.Kinds()
		kind := kinds[int(kindRaw)%len(kinds)]
		ctx, err := emio.NewCtx(emio.Config{M: 1024, B: 16})
		if err != nil {
			t.Fatal(err)
		}
		file := workload.File(ctx.Disk(), kind, int(n), seed)
		in := file.Snapshot()
		out, err := Splitters(ctx, file, p)
		if err != nil {
			if ctx.Mem().Used() != 0 {
				t.Fatalf("error path leaked %d", ctx.Mem().Used())
			}
			return // invalid parameters are allowed to be rejected
		}
		if _, verr := verify.Splitters(in, out.Snapshot(), p.K, p.A, p.B); verr != nil {
			t.Fatalf("params %+v kind %v: %v", p, kind, verr)
		}
		out.Release()
		if ctx.Mem().Used() != 0 {
			t.Fatalf("leaked %d", ctx.Mem().Used())
		}
	})
}

func FuzzPartition(f *testing.F) {
	f.Add(uint16(3), uint16(10), uint16(100), uint8(0), uint64(1))
	f.Add(uint16(5), uint16(0), uint16(1), uint8(3), uint64(2))
	f.Add(uint16(1), uint16(2048), uint16(0), uint8(6), uint64(3))
	f.Fuzz(func(t *testing.T, rawK, rawA, rawB uint16, kindRaw uint8, seed uint64) {
		n := int64(2048)
		p := clampParams(n, rawK, rawA, rawB)
		kinds := workload.Kinds()
		kind := kinds[int(kindRaw)%len(kinds)]
		ctx, err := emio.NewCtx(emio.Config{M: 1024, B: 16})
		if err != nil {
			t.Fatal(err)
		}
		file := workload.File(ctx.Disk(), kind, int(n), seed)
		in := file.Snapshot()
		res, err := Partition(ctx, file, p)
		if err != nil {
			if ctx.Mem().Used() != 0 {
				t.Fatalf("error path leaked %d", ctx.Mem().Used())
			}
			return
		}
		if verr := verify.Partition(in, res.Data.Snapshot(), res.Sizes, p.K, p.A, p.B); verr != nil {
			t.Fatalf("params %+v kind %v: %v", p, kind, verr)
		}
		res.Release()
		if ctx.Mem().Used() != 0 {
			t.Fatalf("leaked %d", ctx.Mem().Used())
		}
	})
}

func FuzzPrecisePartition(f *testing.F) {
	f.Add(uint16(1), uint8(0), uint64(1))
	f.Add(uint16(2048), uint8(2), uint64(2))
	f.Add(uint16(7), uint8(5), uint64(3))
	f.Fuzz(func(t *testing.T, rawB uint16, kindRaw uint8, seed uint64) {
		n := int64(1024)
		b := int64(rawB)%n + 1
		kinds := workload.Kinds()
		kind := kinds[int(kindRaw)%len(kinds)]
		ctx, err := emio.NewCtx(emio.Config{M: 512, B: 8})
		if err != nil {
			t.Fatal(err)
		}
		file := workload.File(ctx.Disk(), kind, int(n), seed)
		in := file.Snapshot()
		out, err := PrecisePartitionViaApprox(ctx, file, b)
		if err != nil {
			t.Fatalf("b=%d kind %v: %v", b, kind, err)
		}
		if verr := verify.PrecisePartition(in, out.Snapshot(), b); verr != nil {
			t.Fatalf("b=%d kind %v: %v", b, kind, verr)
		}
		out.Release()
		if ctx.Mem().Used() != 0 {
			t.Fatalf("leaked %d", ctx.Mem().Used())
		}
	})
}
