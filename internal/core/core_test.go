package core

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/emio"
	"repro/internal/verify"
	"repro/internal/workload"
)

func mustCtx(t *testing.T, m, b int) *emio.Ctx {
	t.Helper()
	ctx, err := emio.NewCtx(emio.Config{M: m, B: b})
	if err != nil {
		t.Fatal(err)
	}
	return ctx
}

func TestParamsValidate(t *testing.T) {
	cases := []struct {
		n       int64
		p       Params
		ok      bool
		variant Variant
	}{
		{1000, Params{K: 10, A: 100, B: 100}, true, TwoSided},
		{1000, Params{K: 10, A: 0, B: 100}, true, LeftGrounded},
		{1000, Params{K: 10, A: 50, B: 1000}, true, RightGrounded},
		{1000, Params{K: 10, A: 50, B: 2000}, true, RightGrounded},
		{1000, Params{K: 10, A: 0, B: 1000}, true, LeftGrounded},
		{1000, Params{K: 1, A: 0, B: 1000}, true, LeftGrounded},
		{1000, Params{K: 1000, A: 1, B: 1}, true, TwoSided},
		{1000, Params{K: 0, A: 0, B: 100}, false, 0},
		{1000, Params{K: 1001, A: 0, B: 1}, false, 0},
		{1000, Params{K: 3, A: 0, B: 400}, false, 0},    // N not multiple of K
		{1000, Params{K: 10, A: 101, B: 100}, false, 0}, // a > N/K
		{1000, Params{K: 10, A: -1, B: 100}, false, 0},
		{1000, Params{K: 10, A: 0, B: 99}, false, 0}, // b < N/K
		{0, Params{K: 1, A: 0, B: 1}, false, 0},
	}
	for _, c := range cases {
		err := c.p.Validate(c.n)
		if (err == nil) != c.ok {
			t.Errorf("Validate(n=%d, %+v) = %v, want ok=%v", c.n, c.p, err, c.ok)
			continue
		}
		if err != nil {
			if !errors.Is(err, ErrBadParams) {
				t.Errorf("error %v not wrapped in ErrBadParams", err)
			}
			continue
		}
		if v := c.p.Variant(c.n); v != c.variant {
			t.Errorf("Variant(n=%d, %+v) = %v, want %v", c.n, c.p, v, c.variant)
		}
	}
}

// runSplitters executes and verifies one splitters instance.
func runSplitters(t *testing.T, ctx *emio.Ctx, f *emio.File, p Params) []int64 {
	t.Helper()
	in := f.Snapshot()
	out, err := Splitters(ctx, f, p)
	if err != nil {
		t.Fatalf("Splitters(%+v): %v", p, err)
	}
	sizes, err := verify.Splitters(in, out.Snapshot(), p.K, p.A, p.B)
	if err != nil {
		t.Fatalf("Splitters(%+v) output invalid: %v", p, err)
	}
	out.Release()
	if ctx.Mem().Used() != 0 {
		t.Fatalf("Splitters(%+v) leaked %d memory", p, ctx.Mem().Used())
	}
	return sizes
}

// runPartition executes and verifies one partitioning instance.
func runPartition(t *testing.T, ctx *emio.Ctx, f *emio.File, p Params) {
	t.Helper()
	in := f.Snapshot()
	res, err := Partition(ctx, f, p)
	if err != nil {
		t.Fatalf("Partition(%+v): %v", p, err)
	}
	if err := verify.Partition(in, res.Data.Snapshot(), res.Sizes, p.K, p.A, p.B); err != nil {
		t.Fatalf("Partition(%+v) output invalid: %v", p, err)
	}
	res.Release()
	if ctx.Mem().Used() != 0 {
		t.Fatalf("Partition(%+v) leaked %d memory", p, ctx.Mem().Used())
	}
}

func TestSplittersRightGrounded(t *testing.T) {
	n := 1 << 14
	for _, a := range []int64{1, 2, 16, 256, int64(n) / 16} {
		ctx := mustCtx(t, 4096, 32)
		f := workload.File(ctx.Disk(), workload.Uniform, n, 1)
		runSplitters(t, ctx, f, Params{K: 16, A: a, B: int64(n)})
	}
}

func TestSplittersRightGroundedSublinearIO(t *testing.T) {
	// The headline result: with a small, right-grounded splitters must be
	// sublinear — far fewer I/Os than one scan of the input.
	ctx := mustCtx(t, 4096, 32)
	n := 1 << 18
	f := workload.File(ctx.Disk(), workload.Uniform, n, 2)
	ctx.Disk().ResetStats()
	out, err := Splitters(ctx, f, Params{K: 16, A: 4, B: int64(n)})
	if err != nil {
		t.Fatal(err)
	}
	out.Release()
	scan := int64(n / 32)
	if got := ctx.Disk().Stats().Total(); got > scan/4 {
		t.Errorf("right-grounded a=4 K=16 cost %d I/Os, want well under a scan (%d)", got, scan)
	}
}

func TestSplittersLeftGrounded(t *testing.T) {
	n := 1 << 14
	for _, b := range []int64{int64(n) / 16, int64(n) / 4, int64(n) / 2, int64(n)} {
		ctx := mustCtx(t, 4096, 32)
		f := workload.File(ctx.Disk(), workload.Uniform, n, 3)
		runSplitters(t, ctx, f, Params{K: 16, A: 0, B: b})
	}
}

func TestSplittersLeftGroundedWithPadding(t *testing.T) {
	// K' = ceil(N/b) < K forces the padding path.
	ctx := mustCtx(t, 4096, 32)
	n := 1 << 14
	f := workload.File(ctx.Disk(), workload.Uniform, n, 4)
	sizes := runSplitters(t, ctx, f, Params{K: 64, A: 0, B: int64(n) / 4})
	if len(sizes) != 64 {
		t.Fatalf("got %d buckets", len(sizes))
	}
}

func TestSplittersLeftGroundedSortFallback(t *testing.T) {
	// Tiny M makes K'-1 > M/4, triggering the sort-based padding path.
	ctx := mustCtx(t, 256, 8)
	n := 1 << 13
	f := workload.File(ctx.Disk(), workload.Uniform, n, 5)
	// b = 32 -> K' = 256 > M/4 = 64; K = 512 > K' forces padding.
	runSplitters(t, ctx, f, Params{K: 512, A: 0, B: 32})
}

func TestSplittersTwoSided(t *testing.T) {
	n := 1 << 14
	k := int64(16)
	cases := []Params{
		{K: k, A: int64(n) / int64(k), B: int64(n) / int64(k)},     // exact quantile (a=b=N/K)
		{K: k, A: int64(n) / 32, B: int64(n) / 8},                  // wide margins
		{K: k, A: 4, B: int64(n) / 4},                              // narrow a, generous b
		{K: k, A: int64(n)/int64(k) - 1, B: int64(n)/int64(k) + 1}, // almost exact
		{K: k, A: 1, B: int64(n) / 2},
	}
	for i, p := range cases {
		ctx := mustCtx(t, 4096, 32)
		f := workload.File(ctx.Disk(), workload.Uniform, n, uint64(10+i))
		runSplitters(t, ctx, f, p)
	}
}

func TestSplittersK1(t *testing.T) {
	ctx := mustCtx(t, 4096, 32)
	f := workload.File(ctx.Disk(), workload.Uniform, 1000, 6)
	out, err := Splitters(ctx, f, Params{K: 1, A: 0, B: 1000})
	if err != nil || out.Len() != 0 {
		t.Fatalf("K=1: len=%d err=%v", out.Len(), err)
	}
}

func TestSplittersAllWorkloads(t *testing.T) {
	n := 1 << 13
	for _, kind := range workload.Kinds() {
		ctx := mustCtx(t, 4096, 32)
		f := workload.File(ctx.Disk(), kind, n, 7)
		runSplitters(t, ctx, f, Params{K: 8, A: int64(n) / 32, B: int64(n) / 2})
	}
}

func TestPartitionRightGrounded(t *testing.T) {
	n := 1 << 13
	for _, a := range []int64{0, 1, 64, int64(n) / 8} {
		ctx := mustCtx(t, 4096, 32)
		f := workload.File(ctx.Disk(), workload.Uniform, n, 8)
		runPartition(t, ctx, f, Params{K: 8, A: a, B: int64(n)})
	}
}

func TestPartitionLeftGrounded(t *testing.T) {
	n := 1 << 13
	for _, b := range []int64{int64(n) / 8, int64(n) / 2, int64(n)} {
		ctx := mustCtx(t, 4096, 32)
		f := workload.File(ctx.Disk(), workload.Uniform, n, 9)
		runPartition(t, ctx, f, Params{K: 8, A: 0, B: b})
	}
}

func TestPartitionTwoSided(t *testing.T) {
	n := 1 << 13
	k := int64(8)
	cases := []Params{
		{K: k, A: int64(n) / int64(k), B: int64(n) / int64(k)},
		{K: k, A: int64(n) / 32, B: int64(n) / 4},
		{K: k, A: 2, B: int64(n) / 2},
	}
	for i, p := range cases {
		ctx := mustCtx(t, 4096, 32)
		f := workload.File(ctx.Disk(), workload.Uniform, n, uint64(20+i))
		runPartition(t, ctx, f, p)
	}
}

func TestPartitionAllWorkloads(t *testing.T) {
	n := 1 << 12
	for _, kind := range workload.Kinds() {
		ctx := mustCtx(t, 4096, 32)
		f := workload.File(ctx.Disk(), kind, n, 11)
		runPartition(t, ctx, f, Params{K: 8, A: int64(n) / 32, B: int64(n) / 2})
	}
}

func TestPartitionKEqualsN(t *testing.T) {
	// K = N degenerates to sorting (every partition is one element).
	ctx := mustCtx(t, 1024, 16)
	n := 512
	f := workload.File(ctx.Disk(), workload.Uniform, n, 12)
	in := f.Snapshot()
	res, err := Partition(ctx, f, Params{K: int64(n), A: 1, B: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.SameMultiset(res.Data.Snapshot(), in); err != nil {
		t.Fatal(err)
	}
	if err := verify.Sorted(res.Data.Snapshot()); err != nil {
		t.Fatalf("K=N output not sorted: %v", err)
	}
}

func TestPartitionRejectsBadParams(t *testing.T) {
	ctx := mustCtx(t, 4096, 32)
	f := workload.File(ctx.Disk(), workload.Uniform, 1000, 13)
	bad := []Params{
		{K: 0, A: 0, B: 1000},
		{K: 3, A: 0, B: 1000},   // not a divisor
		{K: 10, A: 200, B: 500}, // a > N/K
		{K: 10, A: 0, B: 50},    // b < N/K
	}
	for _, p := range bad {
		if _, err := Partition(ctx, f, p); err == nil {
			t.Errorf("Partition accepted %+v", p)
		}
		if _, err := Splitters(ctx, f, p); err == nil {
			t.Errorf("Splitters accepted %+v", p)
		}
	}
}

func TestPrecisePartitionViaApprox(t *testing.T) {
	for _, tc := range []struct{ n, b int }{
		{1 << 13, 1 << 10}, {1 << 13, 100}, {1000, 1}, {1000, 1000}, {1000, 999},
	} {
		ctx := mustCtx(t, 2048, 16)
		f := workload.File(ctx.Disk(), workload.Uniform, tc.n, uint64(tc.b))
		in := f.Snapshot()
		out, err := PrecisePartitionViaApprox(ctx, f, int64(tc.b))
		if err != nil {
			t.Fatalf("n=%d b=%d: %v", tc.n, tc.b, err)
		}
		if err := verify.PrecisePartition(in, out.Snapshot(), int64(tc.b)); err != nil {
			t.Fatalf("n=%d b=%d: %v", tc.n, tc.b, err)
		}
		out.Release()
		if ctx.Mem().Used() != 0 {
			t.Fatalf("n=%d b=%d: leaked %d", tc.n, tc.b, ctx.Mem().Used())
		}
	}
}

func TestPrecisePartitionRejectsBadB(t *testing.T) {
	ctx := mustCtx(t, 2048, 16)
	f := workload.File(ctx.Disk(), workload.Uniform, 100, 1)
	if _, err := PrecisePartitionViaApprox(ctx, f, 0); err == nil {
		t.Error("b=0 accepted")
	}
}

func TestSplittersInputUntouched(t *testing.T) {
	ctx := mustCtx(t, 4096, 32)
	f := workload.File(ctx.Disk(), workload.Uniform, 4096, 14)
	in := f.Snapshot()
	if _, err := Splitters(ctx, f, Params{K: 8, A: 100, B: 1024}); err != nil {
		t.Fatal(err)
	}
	got := f.Snapshot()
	for i := range in {
		if got[i] != in[i] {
			t.Fatalf("input mutated at %d", i)
		}
	}
}

func TestSplittersProperty(t *testing.T) {
	prop := func(seed uint64, rawK, rawA, rawB uint16) bool {
		n := int64(4096)
		divisors := []int64{1, 2, 4, 8, 16, 32, 64, 128}
		k := divisors[int(rawK)%len(divisors)]
		a := int64(rawA) % (n/k + 1)
		b := n/k + int64(rawB)%(n-n/k+1)
		p := Params{K: k, A: a, B: b}
		ctx, err := emio.NewCtx(emio.Config{M: 2048, B: 16})
		if err != nil {
			return false
		}
		f := workload.File(ctx.Disk(), workload.Uniform, int(n), seed)
		in := f.Snapshot()
		out, err := Splitters(ctx, f, p)
		if err != nil {
			return false
		}
		_, verr := verify.Splitters(in, out.Snapshot(), p.K, p.A, p.B)
		out.Release()
		return verr == nil && ctx.Mem().Used() == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPartitionProperty(t *testing.T) {
	prop := func(seed uint64, rawK, rawA, rawB uint16) bool {
		n := int64(2048)
		divisors := []int64{1, 2, 4, 8, 16, 32, 64}
		k := divisors[int(rawK)%len(divisors)]
		a := int64(rawA) % (n/k + 1)
		b := n/k + int64(rawB)%(n-n/k+1)
		p := Params{K: k, A: a, B: b}
		ctx, err := emio.NewCtx(emio.Config{M: 2048, B: 16})
		if err != nil {
			return false
		}
		f := workload.File(ctx.Disk(), workload.FewDistinct, int(n), seed)
		in := f.Snapshot()
		res, err := Partition(ctx, f, p)
		if err != nil {
			return false
		}
		verr := verify.Partition(in, res.Data.Snapshot(), res.Sizes, p.K, p.A, p.B)
		res.Release()
		return verr == nil && ctx.Mem().Used() == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestSplittersTwoSidedKPrimeBoundaries(t *testing.T) {
	// Exercise K' at both ends of its (1, K) range: K' is floor((bK-N)/(b-a)),
	// so a near-N/2K with b just over 2N/K pushes K' low, and a tiny a with
	// huge b pushes K' toward K-1.
	n := 1 << 14
	k := int64(16)
	nk := int64(n) / k
	cases := []Params{
		{K: k, A: nk/2 - 1, B: 2*int64(n)/k + int64(n)/64}, // barely narrow
		{K: k, A: 1, B: int64(n) - 1},                      // K' near K-1
		{K: k, A: 2, B: 2*int64(n)/k + 2},                  // b barely above 2N/K
	}
	for i, p := range cases {
		ctx := mustCtx(t, 4096, 32)
		f := workload.File(ctx.Disk(), workload.Uniform, n, uint64(40+i))
		runSplitters(t, ctx, f, p)
	}
}

func TestSplittersSortFallbackNonDividingB(t *testing.T) {
	// The sorted-pass fallback with b not dividing n and heavy padding.
	ctx := mustCtx(t, 256, 8)
	n := 6000 // K = 1000 divides it; b = 7 does not
	f := workload.File(ctx.Disk(), workload.Uniform, n, 50)
	runSplitters(t, ctx, f, Params{K: 1000, A: 0, B: 7})
}

func TestPartitionA1EveryVariant(t *testing.T) {
	// a = 1 is the smallest nontrivial lower bound (the right-grounded
	// lower-bound argument in §3 starts at a >= 1).
	n := 1 << 12
	for i, p := range []Params{
		{K: 16, A: 1, B: int64(n)},
		{K: 16, A: 1, B: int64(n) / 2},
	} {
		ctx := mustCtx(t, 2048, 32)
		f := workload.File(ctx.Disk(), workload.Uniform, n, uint64(60+i))
		runPartition(t, ctx, f, p)
	}
}

func TestSplittersKEqualsNDegenerate(t *testing.T) {
	// §1.1: at K = N the problem degenerates (a = b = 1 forces the exact
	// order); the library handles it through the general machinery.
	ctx := mustCtx(t, 2048, 32)
	n := 256
	f := workload.File(ctx.Disk(), workload.Uniform, n, 70)
	runSplitters(t, ctx, f, Params{K: int64(n), A: 1, B: 1})
}
