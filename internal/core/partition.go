package core

import (
	"fmt"

	"repro/internal/emio"
	"repro/internal/emsel"
	"repro/internal/mpart"
)

// PartitionResult is the output of approximate K-partitioning: the K
// partitions concatenated in order (P_1 first) and their sizes. Partition i
// occupies positions sum(Sizes[:i]) .. sum(Sizes[:i+1]) of Data; elements
// within a partition are unordered.
type PartitionResult struct {
	Data  *emio.File
	Sizes []int64
}

// Release frees the result's storage.
func (r *PartitionResult) Release() {
	if r.Data != nil {
		r.Data.Release()
		r.Data = nil
	}
}

// Partition solves the approximate K-partitioning problem (paper §5.2,
// Theorem 6): it divides f into K order-respecting partitions whose sizes all
// lie in [p.A, p.B]. The input file is unchanged. Costs match Table 1 per
// variant.
func Partition(ctx *emio.Ctx, f *emio.File, p Params) (*PartitionResult, error) {
	n := f.Len()
	if err := p.Validate(n); err != nil {
		return nil, err
	}
	sp := ctx.StartSpan("core/partition",
		emio.AttrInt("n", n), emio.AttrInt("k", p.K), emio.AttrInt("a", p.A), emio.AttrInt("b", p.B),
		emio.AttrStr("variant", p.Variant(n).String()))
	defer sp.End()
	switch p.Variant(n) {
	case RightGrounded:
		return partitionRight(ctx, f, p)
	case LeftGrounded:
		return partitionLeft(ctx, f, p)
	default:
		return partitionTwoSided(ctx, f, p)
	}
}

// partitionRight implements the b = N case in O(N/B + (aK/B) lg_{M/B}
// min{K, aK/B}) I/Os: take the a(K-1) smallest elements S', multi-partition
// S' into K-1 partitions of size exactly a, and let the remaining
// N - a(K-1) >= a elements be P_K.
func partitionRight(ctx *emio.Ctx, f *emio.File, p Params) (*PartitionResult, error) {
	n := f.Len()
	low, high, _, err := emsel.SplitAtRank(ctx, f, p.A*(p.K-1))
	if err != nil {
		return nil, err
	}
	defer high.Release()
	sizes := make([]int64, p.K)
	for i := range sizes[:p.K-1] {
		sizes[i] = p.A
	}
	sizes[p.K-1] = n - p.A*(p.K-1)
	parted, err := mpart.Partition(ctx, low, sizes[:p.K-1])
	low.Release()
	if err != nil {
		return nil, err
	}
	out := ctx.Scratch("partition")
	w, err := emio.NewWriter(ctx, out)
	if err != nil {
		parted.Release()
		return nil, err
	}
	err = appendFile(ctx, w, parted)
	if err == nil {
		err = streamInto(ctx, w, high)
	}
	if cerr := w.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		out.Release()
		return nil, err
	}
	return &PartitionResult{Data: out, Sizes: sizes}, nil
}

// partitionLeft implements the a = 0 case in O((N/B) lg_{M/B} min{N/b, N/B})
// I/Os: multi-partition into K' = ceil(N/b) partitions of size at most b and
// pad with K - K' empty partitions.
func partitionLeft(ctx *emio.Ctx, f *emio.File, p Params) (*PartitionResult, error) {
	n := f.Len()
	b := p.clampB(n)
	kp := ceilDiv(n, b)
	sizes := make([]int64, p.K)
	rest := n
	for i := int64(0); i < kp; i++ {
		sizes[i] = min(b, rest)
		rest -= sizes[i]
	}
	data, err := mpart.Partition(ctx, f, sizes)
	if err != nil {
		return nil, err
	}
	return &PartitionResult{Data: data, Sizes: sizes}, nil
}

// partitionTwoSided implements the 0 < a, b < N case in
// O((aK/B) lg_{M/B} min{K, aK/B} + (N/B) lg_{M/B} min{N/b, N/B}) I/Os,
// mirroring the two-sided splitters algorithm with multi-partition in place
// of multi-selection.
func partitionTwoSided(ctx *emio.Ctx, f *emio.File, p Params) (*PartitionResult, error) {
	n := f.Len()
	b := p.clampB(n)
	// Wide-margin regime: perfectly equal partitions are legal.
	if p.A >= n/(2*p.K) || b <= 2*n/p.K {
		sizes := make([]int64, p.K)
		for i := range sizes {
			sizes[i] = n / p.K
		}
		data, err := mpart.Partition(ctx, f, sizes)
		if err != nil {
			return nil, err
		}
		return &PartitionResult{Data: data, Sizes: sizes}, nil
	}

	kp := (b*p.K - n) / (b - p.A)
	if kp < 1 || kp >= p.K {
		return nil, fmt.Errorf("core: internal: K'=%d outside [1,%d) for N=%d a=%d b=%d K=%d",
			kp, p.K, n, p.A, b, p.K)
	}
	low, high, _, err := emsel.SplitAtRank(ctx, f, p.A*kp)
	if err != nil {
		return nil, err
	}
	defer low.Release()
	defer high.Release()

	sizes := make([]int64, p.K)
	for i := int64(0); i < kp; i++ {
		sizes[i] = p.A
	}
	h := high.Len()
	rem := p.K - kp
	prev := int64(0)
	for i := int64(0); i < rem; i++ {
		cum := (i + 1) * h / rem
		sizes[kp+i] = cum - prev
		prev = cum
	}
	for i, s := range sizes {
		if s < p.A || s > b {
			return nil, fmt.Errorf("core: internal: partition %d size %d outside [%d,%d]", i, s, p.A, b)
		}
	}

	lowPart, err := mpart.Partition(ctx, low, sizes[:kp])
	if err != nil {
		return nil, err
	}
	highPart, err := mpart.Partition(ctx, high, sizes[kp:])
	if err != nil {
		lowPart.Release()
		return nil, err
	}
	out := ctx.Scratch("partition")
	w, err := emio.NewWriter(ctx, out)
	if err != nil {
		lowPart.Release()
		highPart.Release()
		return nil, err
	}
	err = appendFile(ctx, w, lowPart)
	if err == nil {
		err = appendFile(ctx, w, highPart)
	} else {
		highPart.Release()
	}
	if cerr := w.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		out.Release()
		return nil, err
	}
	return &PartitionResult{Data: out, Sizes: sizes}, nil
}

// streamInto appends every element of src to w without consuming src.
func streamInto(ctx *emio.Ctx, w *emio.Writer, src *emio.File) error {
	r, err := emio.NewReader(ctx, src)
	if err != nil {
		return err
	}
	defer r.Close()
	for {
		e, ok := r.Next()
		if !ok {
			break
		}
		w.Append(e)
	}
	if err := r.Err(); err != nil {
		return err
	}
	return w.Err()
}
