// Package core implements the paper's two headline problems, both defined on
// a set S of N ordered elements, an integer K dividing N, and an integer
// range [a, b] with a <= N/K <= b:
//
//   - Approximate K-splitters (paper §5.1, Theorem 5): find K-1 elements
//     s_1 < ... < s_{K-1} of S such that every induced bucket
//     S ∩ (s_{i-1}, s_i] holds between a and b elements.
//
//   - Approximate K-partitioning (paper §5.2, Theorem 6): physically divide S
//     into partitions P_1 < ... < P_K with a <= |P_i| <= b, output as a
//     concatenated list.
//
// Both problems come in three regimes, dispatched automatically from (a, b):
// right-grounded (b = N), left-grounded (a = 0) and two-sided. The I/O costs
// match the paper's optimal bounds (Table 1):
//
//	splitters     right: O((1 + aK/B) lg_{M/B}(K/B))
//	              left:  O((N/B) lg_{M/B}(N/(bB)))
//	              two-sided: the sum of the two
//	partitioning  right: O(N/B + (aK/B) lg_{M/B} min{K, aK/B})
//	              left:  O((N/B) lg_{M/B} min{N/b, N/B})
//	              two-sided: the sum of the two
//
// The algorithms are direct transcriptions of §5 on top of multi-selection
// (Theorem 4, package msel), multi-partition (package mpart) and exact
// selection (package emsel). One unanalysed corner of the paper — the
// left-grounded splitters padding step, "select K-K' arbitrary distinct
// elements", when the K'-1 selected splitters do not fit in memory — falls
// back to a sort-based path; see splitters.go and DESIGN.md §4.
package core

import (
	"errors"
	"fmt"

	"repro/internal/emio"
)

// Variant names the parameter regime of an instance.
type Variant int

const (
	// RightGrounded is the b = N regime: only the lower bound a binds.
	RightGrounded Variant = iota
	// LeftGrounded is the a = 0 regime: only the upper bound b binds.
	LeftGrounded
	// TwoSided is the regime with both 0 < a and b < N binding.
	TwoSided
)

// String names the regime for reports and errors.
func (v Variant) String() string {
	switch v {
	case RightGrounded:
		return "right-grounded"
	case LeftGrounded:
		return "left-grounded"
	case TwoSided:
		return "two-sided"
	default:
		return fmt.Sprintf("Variant(%d)", int(v))
	}
}

// Params carries the problem parameters: the partition count K and the size
// range [A, B] every partition/bucket must fall in.
type Params struct {
	K int64
	A int64
	B int64
}

// ErrBadParams wraps all parameter validation failures.
var ErrBadParams = errors.New("core: invalid parameters")

// Validate checks the paper's parameter conditions against an input of n
// elements: K in [1, n], n a multiple of K, 0 <= A <= n/K and n/K <= B.
// (B larger than n is legal and equivalent to B = n.)
func (p Params) Validate(n int64) error {
	if n < 1 {
		return fmt.Errorf("%w: empty input", ErrBadParams)
	}
	if p.K < 1 || p.K > n {
		return fmt.Errorf("%w: K=%d out of [1,%d]", ErrBadParams, p.K, n)
	}
	if n%p.K != 0 {
		return fmt.Errorf("%w: N=%d is not a multiple of K=%d", ErrBadParams, n, p.K)
	}
	if p.A < 0 || p.A > n/p.K {
		return fmt.Errorf("%w: a=%d out of [0,%d]", ErrBadParams, p.A, n/p.K)
	}
	if p.B < n/p.K {
		return fmt.Errorf("%w: b=%d below N/K=%d", ErrBadParams, p.B, n/p.K)
	}
	return nil
}

// Variant classifies the instance: a = 0 is left-grounded (including the
// fully trivial a = 0, b = N case), b >= N is right-grounded, anything else
// two-sided.
func (p Params) Variant(n int64) Variant {
	switch {
	case p.A == 0:
		return LeftGrounded
	case p.B >= n:
		return RightGrounded
	default:
		return TwoSided
	}
}

// clampB returns b truncated to n, the effective upper bound.
func (p Params) clampB(n int64) int64 {
	if p.B > n {
		return n
	}
	return p.B
}

// ceilDiv returns ceil(x/y) for positive y.
func ceilDiv(x, y int64) int64 { return (x + y - 1) / y }

// appendFile streams src onto w, releasing src.
func appendFile(ctx *emio.Ctx, w *emio.Writer, src *emio.File) error {
	r, err := emio.NewReader(ctx, src)
	if err != nil {
		return err
	}
	for {
		e, ok := r.Next()
		if !ok {
			break
		}
		w.Append(e)
	}
	err = r.Err()
	r.Close()
	src.Release()
	if err != nil {
		return err
	}
	return w.Err()
}
