package core

import (
	"fmt"
	"sort"

	"repro/internal/emio"
	"repro/internal/emsel"
	"repro/internal/extsort"
	"repro/internal/msel"
)

// Splitters solves the approximate K-splitters problem (paper §5.1,
// Theorem 5): it returns a file of K-1 elements of f such that every bucket
// they induce on f holds between p.A and p.B elements. The problem statement
// allows any output order; the right-grounded, two-sided and unpadded
// left-grounded paths emit ascending splitters, while the left-grounded
// padding path appends its extra splitters unsorted after the selected ones.
//
// The input file is unchanged. Costs match Table 1 per variant. Elements are
// assumed pairwise distinct as records ((Key, Aux) unique), the library-wide
// convention.
func Splitters(ctx *emio.Ctx, f *emio.File, p Params) (*emio.File, error) {
	n := f.Len()
	if err := p.Validate(n); err != nil {
		return nil, err
	}
	sp := ctx.StartSpan("core/splitters",
		emio.AttrInt("n", n), emio.AttrInt("k", p.K), emio.AttrInt("a", p.A), emio.AttrInt("b", p.B),
		emio.AttrStr("variant", p.Variant(n).String()))
	defer sp.End()
	if p.K == 1 {
		return ctx.Scratch("splitters"), nil // zero splitters
	}
	switch p.Variant(n) {
	case RightGrounded:
		return splittersRight(ctx, f, p)
	case LeftGrounded:
		return splittersLeft(ctx, f, p)
	default:
		return splittersTwoSided(ctx, f, p)
	}
}

// splittersRight implements the b = N case in O((1 + aK/B) lg_{M/B}(K/B))
// I/Os: take aK arbitrary elements S' (the first aK of the file), and return
// the 1/K-quantile of S', i.e. the elements of S'-rank a, 2a, ..., (K-1)a.
// Each induced bucket keeps at least its a elements of S', so its size is at
// least a; b = N never binds.
func splittersRight(ctx *emio.Ctx, f *emio.File, p Params) (*emio.File, error) {
	if p.A < 1 {
		// a = 0 with b = N is fully trivial; the left-grounded path covers it.
		return splittersLeft(ctx, f, p)
	}
	sprime, err := takePrefix(ctx, f, p.A*p.K)
	if err != nil {
		return nil, err
	}
	ranks := make([]int64, p.K-1)
	for i := range ranks {
		ranks[i] = int64(i+1) * p.A
	}
	out, err := msel.Select(ctx, sprime, ranks)
	sprime.Release()
	return out, err
}

// splittersLeft implements the a = 0 case in O((N/B) lg_{M/B}(N/(bB))) I/Os:
// set K' = ceil(N/b) and select the elements of rank b, 2b, ..., (K'-1)b.
// The first K'-1 buckets then hold exactly b elements and the last holds
// N - (K'-1)b <= b; a = 0 never binds. If K' < K, the remaining K-K'
// splitters are arbitrary distinct elements — extra splitters only subdivide
// buckets further, so sizes stay within [0, b].
func splittersLeft(ctx *emio.Ctx, f *emio.File, p Params) (*emio.File, error) {
	n := f.Len()
	b := p.clampB(n)
	kp := ceilDiv(n, b)

	// When the K'-1 selected splitters cannot be kept memory-resident for
	// the padding scan, fall back to one full sort that yields selected and
	// padding splitters in a single pass. The paper leaves this padding step
	// unanalysed ("arbitrary distinct elements"); see DESIGN.md §4.
	if kp < p.K && kp-1 > int64(ctx.M()/4) {
		return splittersLeftViaSort(ctx, f, p.K, b, kp)
	}

	ranks := make([]int64, kp-1)
	for i := range ranks {
		ranks[i] = int64(i+1) * b
	}
	base, err := msel.Select(ctx, f, ranks)
	if err != nil {
		return nil, err
	}
	if kp == p.K {
		return base, nil
	}
	return padDistinct(ctx, f, base, p.K-kp)
}

// padDistinct builds the padded splitter file: the selected splitters of base
// (at most M/4 of them, ascending; consumed) followed by `need` further
// elements of f distinct from them, found in one scan of f.
func padDistinct(ctx *emio.Ctx, f *emio.File, base *emio.File, need int64) (*emio.File, error) {
	sp := ctx.StartSpan("core/pad-distinct", emio.AttrInt("need", need))
	defer sp.End()
	have, err := emio.LoadAll(ctx, base)
	if err != nil {
		return nil, err
	}
	defer ctx.FreeElems(have)
	base.Release()
	out := ctx.Scratch("splitters")
	w, err := emio.NewWriter(ctx, out)
	if err != nil {
		return nil, err
	}
	for _, e := range have {
		w.Append(e)
	}
	r, err := emio.NewReader(ctx, f)
	if err != nil {
		w.Close()
		out.Release()
		return nil, err
	}
	for need > 0 {
		e, ok := r.Next()
		if !ok {
			break
		}
		i := sort.Search(len(have), func(j int) bool { return !emio.Less(have[j], e) })
		if i < len(have) && have[i] == e {
			continue // already a splitter
		}
		w.Append(e)
		need--
	}
	rerr := r.Err()
	r.Close()
	if err := w.Close(); err != nil && rerr == nil {
		rerr = err
	}
	if rerr == nil && need > 0 {
		rerr = fmt.Errorf("core: input exhausted with %d padding splitters missing", need)
	}
	if rerr != nil {
		out.Release()
		return nil, rerr
	}
	return out, nil
}

// splittersLeftViaSort handles the heavily padded left-grounded case by
// sorting once and emitting, in a single pass over the sorted file, the
// rank-multiples of b as selected splitters and the smallest non-multiple
// ranks as padding, until K-1 splitters are out.
func splittersLeftViaSort(ctx *emio.Ctx, f *emio.File, k, b, kp int64) (*emio.File, error) {
	sp := ctx.StartSpan("core/left-sort-path", emio.AttrInt("k", k), emio.AttrInt("kp", kp))
	defer sp.End()
	sorted, err := extsort.Sort(ctx, f)
	if err != nil {
		return nil, err
	}
	defer sorted.Release()
	out := ctx.Scratch("splitters")
	w, err := emio.NewWriter(ctx, out)
	if err != nil {
		return nil, err
	}
	r, err := emio.NewReader(ctx, sorted)
	if err != nil {
		w.Close()
		out.Release()
		return nil, err
	}
	emitted, extras := int64(0), k-kp
	rank := int64(0)
	for emitted < k-1 {
		e, ok := r.Next()
		if !ok {
			break
		}
		rank++
		if rank%b == 0 && rank/b <= kp-1 {
			w.Append(e) // a selected splitter
			emitted++
		} else if extras > 0 {
			w.Append(e) // a padding splitter
			extras--
			emitted++
		}
	}
	rerr := r.Err()
	r.Close()
	if err := w.Close(); err != nil && rerr == nil {
		rerr = err
	}
	if rerr == nil && emitted != k-1 {
		rerr = fmt.Errorf("core: sorted pass emitted %d of %d splitters", emitted, k-1)
	}
	if rerr != nil {
		out.Release()
		return nil, rerr
	}
	return out, nil
}

// splittersTwoSided implements the 0 < a, b < N case in
// O((aK/B) lg_{M/B}(K/B) + (N/B) lg_{M/B}(N/(bB))) I/Os.
func splittersTwoSided(ctx *emio.Ctx, f *emio.File, p Params) (*emio.File, error) {
	n := f.Len()
	b := p.clampB(n)
	// Wide-margin regime: a >= N/2K or b <= 2N/K. The plain 1/K-quantile is
	// already legal (every bucket holds exactly N/K in [a, b]) and costs
	// O((N/B) lg_{M/B}(K/B)), within the two-sided bound.
	if p.A >= n/(2*p.K) || b <= 2*n/p.K {
		ranks := make([]int64, p.K-1)
		for i := range ranks {
			ranks[i] = int64(i+1) * (n / p.K)
		}
		return msel.Select(ctx, f, ranks)
	}

	// Narrow regime: split S into the aK' smallest (S_low) and the rest, with
	// K' = floor((bK - N)/(b - a)); then s_1..s_{K'-1} is the 1/K'-quantile
	// of S_low (buckets of exactly a), s_K' is max(S_low), and the rest is
	// the 1/(K-K')-quantile of S_high (buckets of floor/ceil of
	// |S_high|/(K-K'), inside [a, b] by the choice of K').
	kp := (b*p.K - n) / (b - p.A)
	if kp < 1 || kp >= p.K {
		return nil, fmt.Errorf("core: internal: K'=%d outside [1,%d) for N=%d a=%d b=%d K=%d",
			kp, p.K, n, p.A, b, p.K)
	}
	low, high, sKp, err := emsel.SplitAtRank(ctx, f, p.A*kp)
	if err != nil {
		return nil, err
	}
	defer low.Release()
	defer high.Release()

	lowRanks := make([]int64, kp-1)
	for i := range lowRanks {
		lowRanks[i] = int64(i+1) * p.A
	}
	lows, err := msel.Select(ctx, low, lowRanks)
	if err != nil {
		return nil, err
	}
	h := high.Len()
	rem := p.K - kp
	highRanks := make([]int64, rem-1)
	for i := range highRanks {
		highRanks[i] = int64(i+1) * h / rem
	}
	highs, err := msel.Select(ctx, high, highRanks)
	if err != nil {
		lows.Release()
		return nil, err
	}

	out := ctx.Scratch("splitters")
	w, err := emio.NewWriter(ctx, out)
	if err != nil {
		lows.Release()
		highs.Release()
		return nil, err
	}
	err = appendFile(ctx, w, lows)
	if err == nil {
		w.Append(sKp)
		err = appendFile(ctx, w, highs)
	} else {
		highs.Release()
	}
	if cerr := w.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		out.Release()
		return nil, err
	}
	return out, nil
}

// takePrefix copies the first k elements of f into a new file, costing
// O(1 + k/B) I/Os (only the blocks actually holding the prefix are read).
func takePrefix(ctx *emio.Ctx, f *emio.File, k int64) (*emio.File, error) {
	if k > f.Len() {
		return nil, fmt.Errorf("core: prefix %d of %d-element file", k, f.Len())
	}
	sp := ctx.StartSpan("core/take-prefix", emio.AttrInt("k", k))
	defer sp.End()
	out := ctx.Scratch("prefix")
	w, err := emio.NewWriter(ctx, out)
	if err != nil {
		return nil, err
	}
	r, err := emio.NewReader(ctx, f)
	if err != nil {
		w.Close()
		out.Release()
		return nil, err
	}
	for i := int64(0); i < k; i++ {
		e, ok := r.Next()
		if !ok {
			break
		}
		w.Append(e)
	}
	rerr := r.Err()
	r.Close()
	if err := w.Close(); err != nil && rerr == nil {
		rerr = err
	}
	if rerr == nil && out.Len() != k {
		rerr = fmt.Errorf("core: prefix read %d of %d", out.Len(), k)
	}
	if rerr != nil {
		out.Release()
		return nil, rerr
	}
	return out, nil
}
