package core

import (
	"testing"

	"repro/internal/workload"
)

// These tests turn the paper's lower-bound adversary arguments into
// executable checks on the real algorithms, via block-level read tracking:
// an algorithm that has read r distinct blocks of the input has seen at most
// r*B of its elements.
//
//   - §2.1 (small-K case of Theorem 1): any correct right-grounded
//     K-splitters algorithm must see at least aK elements — otherwise some
//     induced bucket could have fewer than a elements among the unseen ones.
//   - §2.2 (small case of Theorem 2): with b <= N/2, any correct
//     left-grounded algorithm must see at least N/2 elements — the unseen
//     elements could otherwise all fall into one bucket, exceeding b.
//   - §3 right-grounded partitioning: any correct algorithm must see every
//     element at least once (an unseen element could be placed wrongly).
//
// The converse is checked too: our right-grounded splitters really see only
// O(aK/B) blocks, which is the operational meaning of sublinearity.

func TestAdversaryRightSplittersSeesAtLeastAK(t *testing.T) {
	ctx := mustCtx(t, 4096, 32)
	n := 1 << 15
	f := workload.File(ctx.Disk(), workload.Uniform, n, 1)
	ctx.Disk().TrackReads(f)
	for _, tc := range []struct{ k, a int64 }{
		{16, 2}, {16, 64}, {64, 32}, {8, 512},
	} {
		ctx.Disk().TrackReads(f) // reset tracking
		out, err := Splitters(ctx, f, Params{K: tc.k, A: tc.a, B: int64(n)})
		if err != nil {
			t.Fatalf("K=%d a=%d: %v", tc.k, tc.a, err)
		}
		out.Release()
		seen := int64(ctx.Disk().BlocksSeen(f)) * 32
		if seen < tc.a*tc.k {
			t.Errorf("K=%d a=%d: saw %d elements, adversary bound requires >= aK = %d",
				tc.k, tc.a, seen, tc.a*tc.k)
		}
	}
}

func TestAdversaryRightSplittersSublinearSeen(t *testing.T) {
	// The flip side: with a and K small the algorithm must NOT need to see
	// much — the §2.1 floor is essentially achieved.
	ctx := mustCtx(t, 4096, 32)
	n := 1 << 17
	f := workload.File(ctx.Disk(), workload.Uniform, n, 2)
	ctx.Disk().TrackReads(f)
	out, err := Splitters(ctx, f, Params{K: 16, A: 8, B: int64(n)})
	if err != nil {
		t.Fatal(err)
	}
	out.Release()
	seenBlocks := ctx.Disk().BlocksSeen(f)
	if totalBlocks := n / 32; seenBlocks > totalBlocks/16 {
		t.Errorf("saw %d of %d input blocks; right-grounded with aK=128 should touch a tiny fraction",
			seenBlocks, totalBlocks)
	}
}

func TestAdversaryLeftSplittersSeesHalf(t *testing.T) {
	ctx := mustCtx(t, 4096, 32)
	n := 1 << 14
	f := workload.File(ctx.Disk(), workload.Uniform, n, 3)
	for _, b := range []int64{int64(n) / 8, int64(n) / 2} {
		ctx.Disk().TrackReads(f)
		out, err := Splitters(ctx, f, Params{K: 16, A: 0, B: b})
		if err != nil {
			t.Fatalf("b=%d: %v", b, err)
		}
		out.Release()
		seen := int64(ctx.Disk().BlocksSeen(f)) * 32
		if seen < int64(n)/2 {
			t.Errorf("b=%d: saw %d of %d elements; Theorem 2's adversary requires >= N/2",
				b, seen, n)
		}
	}
}

func TestAdversaryRightPartitioningSeesEverything(t *testing.T) {
	ctx := mustCtx(t, 4096, 32)
	n := 1 << 13
	f := workload.File(ctx.Disk(), workload.Uniform, n, 4)
	ctx.Disk().TrackReads(f)
	res, err := Partition(ctx, f, Params{K: 8, A: 16, B: int64(n)})
	if err != nil {
		t.Fatal(err)
	}
	res.Release()
	if seen, total := ctx.Disk().BlocksSeen(f), n/32; seen != total {
		t.Errorf("saw %d of %d blocks; §3 requires reading every element", seen, total)
	}
}

func TestAdversaryMultiPartitionBaseline(t *testing.T) {
	// Sorting-adjacent algorithms must also see everything; a quick sanity
	// anchor for the tracking machinery itself.
	ctx := mustCtx(t, 4096, 32)
	n := 1 << 12
	f := workload.File(ctx.Disk(), workload.Uniform, n, 5)
	ctx.Disk().TrackReads(f)
	res, err := Partition(ctx, f, Params{K: 4, A: 0, B: int64(n) / 4})
	if err != nil {
		t.Fatal(err)
	}
	res.Release()
	if seen, total := ctx.Disk().BlocksSeen(f), n/32; seen != total {
		t.Errorf("left-grounded partitioning saw %d of %d blocks", seen, total)
	}
}
