// Package mpart implements the multi-partition problem (paper §1.1): given a
// file of N elements and prescribed sizes σ_1..σ_K summing to N, produce the
// concatenation P_1 P_2 ... P_K where |P_i| = σ_i and every element of P_i
// precedes every element of P_j (i < j) in the (Key, Aux) total order.
// Elements inside a partition stay unordered.
//
// The algorithm is the distribution strategy of Aggarwal and Vitter [1],
// costing O((N/B) lg_{M/B} min{K, N/B}) I/Os: each level samples pivots,
// streams the current chunk into Theta(M/B) buckets, routes the surviving
// boundary ranks to their buckets, and recurses; chunks whose rank interval
// contains no boundary are emitted verbatim, which is what makes the cost
// scale with lg K instead of lg N (a chunk stops paying once it is entirely
// inside one target partition).
//
// Boundary ranks live in a scratch file, not in memory, so K may exceed M.
// Pivots are drawn by reservoir sampling with verification-free graceful
// degradation: a skewed sample only deepens the recursion locally, never
// breaks correctness (every pivot lands in its own bucket, so progress is
// guaranteed).
package mpart

import (
	"fmt"

	"repro/internal/approxsplit"
	"repro/internal/emio"
	"repro/internal/inmem"
)

// oversample is the number of sample points drawn per pivot.
const oversample = 32

// Partition divides f into partitions of the given sizes, respecting the
// order, and returns them concatenated in a new file. sizes must be
// nonnegative and sum to f.Len(). The input file is unchanged.
func Partition(ctx *emio.Ctx, f *emio.File, sizes []int64) (*emio.File, error) {
	sp := ctx.StartSpan("mpart/partition",
		emio.AttrInt("n", f.Len()), emio.AttrInt("k", int64(len(sizes))))
	defer sp.End()
	if err := SizesValid(f.Len(), sizes); err != nil {
		return nil, err
	}
	bnd, err := boundaryFile(ctx, sizes)
	if err != nil {
		return nil, err
	}
	out := ctx.Scratch("mpart")
	w, err := emio.NewWriter(ctx, out)
	if err != nil {
		bnd.Release()
		return nil, err
	}
	if err := distribute(ctx, f, false, bnd, w); err != nil {
		w.Close()
		out.Release()
		return nil, err
	}
	if err := w.Close(); err != nil {
		out.Release()
		return nil, err
	}
	if out.Len() != f.Len() {
		out.Release()
		return nil, fmt.Errorf("mpart: emitted %d of %d elements", out.Len(), f.Len())
	}
	return out, nil
}

// SizesValid checks a multi-partition size prescription against an input of
// n elements: every σ_i must be nonnegative and they must sum to n. Shared
// by Partition and the parallel engine's sort-based multi-partition path.
func SizesValid(n int64, sizes []int64) error {
	var sum int64
	for i, s := range sizes {
		if s < 0 {
			return fmt.Errorf("mpart: negative size σ_%d = %d", i+1, s)
		}
		sum += s
	}
	if sum != n {
		return fmt.Errorf("mpart: sizes sum to %d, file holds %d", sum, n)
	}
	return nil
}

// PartitionAtRanks is Partition with cut positions instead of sizes: ranks
// must be strictly increasing within (0, n). It yields len(ranks)+1
// partitions.
func PartitionAtRanks(ctx *emio.Ctx, f *emio.File, ranks []int64) (*emio.File, error) {
	sizes := make([]int64, 0, len(ranks)+1)
	prev := int64(0)
	for i, r := range ranks {
		if r <= prev || r >= f.Len() {
			return nil, fmt.Errorf("mpart: rank %d at position %d not strictly inside (0,%d)", r, i, f.Len())
		}
		sizes = append(sizes, r-prev)
		prev = r
	}
	sizes = append(sizes, f.Len()-prev)
	return Partition(ctx, f, sizes)
}

// boundaryFile writes the distinct cumulative boundary ranks (excluding 0 and
// n) to a scratch file in ascending order. Zero-sized partitions contribute
// no boundary; they are implicit empty segments of the output.
func boundaryFile(ctx *emio.Ctx, sizes []int64) (*emio.File, error) {
	f := ctx.Scratch("bnd")
	w, err := emio.NewWriter(ctx, f)
	if err != nil {
		return nil, err
	}
	cum, prev := int64(0), int64(0)
	for i := 0; i < len(sizes)-1; i++ {
		cum += sizes[i]
		if cum != prev {
			w.Append(emio.Elem{Key: cum})
			prev = cum
		}
	}
	if err := w.Close(); err != nil {
		f.Release()
		return nil, err
	}
	return f, nil
}

// distribute emits chunk onto w partitioned at the boundary ranks in bnd
// (ranks relative to the chunk, strictly inside it, ascending). It consumes
// bnd and, when owned, chunk.
func distribute(ctx *emio.Ctx, chunk *emio.File, owned bool, bnd *emio.File, w *emio.Writer) error {
	defer func() {
		bnd.Release()
		if owned {
			chunk.Release()
		}
	}()
	// No boundary: the chunk lies entirely inside one target partition.
	if bnd.Len() == 0 {
		return streamOut(ctx, chunk, w)
	}
	// Base case: finish in memory (a sorted chunk satisfies any boundaries).
	if chunk.Len() <= int64(ctx.M()/3) {
		buf, err := emio.LoadAll(ctx, chunk)
		if err != nil {
			return err
		}
		inmem.Sort(buf)
		for _, e := range buf {
			w.Append(e)
		}
		ctx.FreeElems(buf)
		return w.Err()
	}

	// One span per distribution level; recursion into the buckets nests
	// below, so span-tree depth equals the recursion depth (the quantity
	// Theorem 4's lg_{M/B} factor bounds).
	dsp := ctx.StartSpan("mpart/distribute",
		emio.AttrInt("n", chunk.Len()), emio.AttrInt("bnd", bnd.Len()))
	defer dsp.End()
	psp := ctx.StartSpan("mpart/sample")
	pivots, err := samplePivots(ctx, chunk)
	psp.End()
	if err != nil {
		return err
	}
	ssp := ctx.StartSpan("mpart/scatter", emio.AttrInt("fan", int64(len(pivots)+1)))
	buckets, counts, err := scatter(ctx, chunk, pivots)
	ssp.End()
	ctx.FreeElems(pivots)
	if err != nil {
		return err
	}
	releaseRest := func(from int) {
		for _, b := range buckets[from:] {
			if b != nil {
				b.Release()
			}
		}
	}
	rsp := ctx.StartSpan("mpart/route")
	subBnds, err := routeBoundaries(ctx, bnd, counts)
	rsp.End()
	if err != nil {
		releaseRest(0)
		return err
	}
	for j := range buckets {
		if err := distribute(ctx, buckets[j], true, subBnds[j], w); err != nil {
			for _, sb := range subBnds[j+1:] {
				sb.Release()
			}
			releaseRest(j + 1)
			return err
		}
		buckets[j] = nil
	}
	return nil
}

// streamOut appends every element of chunk to w.
func streamOut(ctx *emio.Ctx, chunk *emio.File, w *emio.Writer) error {
	r, err := emio.NewReader(ctx, chunk)
	if err != nil {
		return err
	}
	defer r.Close()
	for {
		e, ok := r.Next()
		if !ok {
			break
		}
		w.Append(e)
	}
	if err := r.Err(); err != nil {
		return err
	}
	return w.Err()
}

// fanOut picks the distribution width f: the scatter phase holds f writer
// buffers, one reader buffer, the top-level output buffer, the pivot array
// and the counters, so f*B + 3B + 2f <= M.
func fanOut(ctx *emio.Ctx) int {
	f := (ctx.M() - 3*ctx.B()) / (ctx.B() + 2)
	if f < 2 {
		f = 2
	}
	return f
}

// samplePivots draws a reservoir sample of the chunk and keeps f-1
// equi-spaced elements as pivots (ascending, distinct records). The returned
// slice is charged; free with ctx.FreeElems.
func samplePivots(ctx *emio.Ctx, chunk *emio.File) ([]emio.Elem, error) {
	f := fanOut(ctx)
	rcap := f * oversample
	if rcap > ctx.M()/2 {
		rcap = ctx.M() / 2
	}
	if int64(rcap) > chunk.Len() {
		rcap = int(chunk.Len())
	}
	res, err := ctx.AllocElems(rcap)
	if err != nil {
		return nil, err
	}
	r, err := emio.NewReader(ctx, chunk)
	if err != nil {
		ctx.FreeElems(res)
		return nil, err
	}
	rng := ctx.Rng()
	seen := int64(0)
	for {
		e, ok := r.Next()
		if !ok {
			break
		}
		if seen < int64(rcap) {
			res[seen] = e
		} else if j := rng.Int64N(seen + 1); j < int64(rcap) {
			res[j] = e
		}
		seen++
	}
	if err := r.Err(); err != nil {
		r.Close()
		ctx.FreeElems(res)
		return nil, err
	}
	r.Close()
	inmem.Sort(res)
	np := f - 1
	if np > len(res) {
		np = len(res)
	}
	pivots, err := ctx.AllocElems(np)
	if err != nil {
		ctx.FreeElems(res)
		return nil, err
	}
	k := 0
	for i := 1; i <= np; i++ {
		cand := res[i*len(res)/(np+1)]
		if k == 0 || emio.Less(pivots[k-1], cand) { // skip duplicate picks
			pivots[k] = cand
			k++
		}
	}
	ctx.FreeElems(res)
	if k < np {
		// Shrink the charge to the distinct pivots actually kept.
		trimmed, err := ctx.AllocElems(k)
		if err != nil {
			ctx.FreeElems(pivots)
			return nil, err
		}
		copy(trimmed, pivots[:k])
		ctx.FreeElems(pivots)
		return trimmed, nil
	}
	return pivots, nil
}

// scatter streams the chunk into len(pivots)+1 bucket files (bucket j is the
// interval (pivots[j-1], pivots[j]] of the total order) and returns the
// buckets with their sizes.
func scatter(ctx *emio.Ctx, chunk *emio.File, pivots []emio.Elem) ([]*emio.File, []int64, error) {
	nb := len(pivots) + 1
	buckets := make([]*emio.File, nb)
	writers := make([]*emio.Writer, nb)
	counts := make([]int64, nb)
	cleanup := func() {
		for _, w := range writers {
			if w != nil {
				w.Close()
			}
		}
		for _, b := range buckets {
			if b != nil {
				b.Release()
			}
		}
	}
	if err := ctx.Mem().Charge(int64(nb)); err != nil { // counters
		return nil, nil, err
	}
	defer ctx.Mem().Credit(int64(nb))
	for j := 0; j < nb; j++ {
		buckets[j] = ctx.Scratch("bucket")
		w, err := emio.NewWriter(ctx, buckets[j])
		if err != nil {
			cleanup()
			return nil, nil, err
		}
		writers[j] = w
	}
	r, err := emio.NewReader(ctx, chunk)
	if err != nil {
		cleanup()
		return nil, nil, err
	}
	for {
		e, ok := r.Next()
		if !ok {
			break
		}
		j := approxsplit.BucketOf(pivots, e)
		writers[j].Append(e)
		counts[j]++
	}
	rerr := r.Err()
	r.Close()
	for j, w := range writers {
		if err := w.Close(); err != nil && rerr == nil {
			rerr = err
		}
		writers[j] = nil
	}
	if rerr != nil {
		cleanup()
		return nil, nil, rerr
	}
	return buckets, counts, nil
}

// routeBoundaries splits the ascending boundary-rank file into one file per
// bucket, rebasing each rank against its bucket's start. Ranks that coincide
// with a bucket edge are already satisfied by emission order and are dropped.
// Because the input is ascending, a single output writer is open at a time.
// Consumes bnd.
func routeBoundaries(ctx *emio.Ctx, bnd *emio.File, counts []int64) ([]*emio.File, error) {
	out := make([]*emio.File, len(counts))
	for j := range out {
		out[j] = ctx.Scratch("subbnd")
	}
	release := func() {
		for _, f := range out {
			f.Release()
		}
	}
	r, err := emio.NewReader(ctx, bnd)
	if err != nil {
		release()
		return nil, err
	}
	j, start := 0, int64(0) // current bucket and its starting rank
	var w *emio.Writer
	closeW := func() error {
		if w == nil {
			return nil
		}
		err := w.Close()
		w = nil
		return err
	}
	for {
		e, ok := r.Next()
		if !ok {
			break
		}
		rank := e.Key
		for rank > start+counts[j] {
			if err := closeW(); err != nil {
				r.Close()
				release()
				return nil, err
			}
			start += counts[j]
			j++
		}
		if rank == start+counts[j] {
			continue // aligns with a bucket edge
		}
		if w == nil {
			nw, err := emio.NewWriter(ctx, out[j])
			if err != nil {
				r.Close()
				release()
				return nil, err
			}
			w = nw
		}
		w.Append(emio.Elem{Key: rank - start})
	}
	rerr := r.Err()
	r.Close()
	if err := closeW(); err != nil && rerr == nil {
		rerr = err
	}
	if rerr != nil {
		release()
		return nil, rerr
	}
	return out, nil
}
