package mpart

import (
	"math"
	"math/rand/v2"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/emio"
)

func mustCtx(t *testing.T, m, b int) *emio.Ctx {
	t.Helper()
	ctx, err := emio.NewCtx(emio.Config{M: m, B: b})
	if err != nil {
		t.Fatal(err)
	}
	return ctx
}

func randFile(d *emio.Disk, n int, keyRange int64, rng *rand.Rand) ([]emio.Elem, *emio.File) {
	s := make([]emio.Elem, n)
	for i := range s {
		s[i] = emio.Elem{Key: rng.Int64N(keyRange), Aux: int64(i)}
	}
	return s, emio.BuildFile(d, "in", s)
}

// checkPartition verifies the multi-partition contract: the output is a
// permutation of the input whose consecutive segments of the given sizes are
// order-respecting (every element of segment i precedes every element of
// segment i+1 in the total order) — equivalently, the output agrees with the
// sorted input as a multiset segment by segment.
func checkPartition(t *testing.T, in []emio.Elem, out *emio.File, sizes []int64) {
	t.Helper()
	got := out.Snapshot()
	if int64(len(got)) != int64(len(in)) {
		t.Fatalf("output holds %d of %d elements", len(got), len(in))
	}
	want := append([]emio.Elem(nil), in...)
	sort.Slice(want, func(i, j int) bool { return emio.Less(want[i], want[j]) })
	off := int64(0)
	for seg, sz := range sizes {
		segGot := append([]emio.Elem(nil), got[off:off+sz]...)
		sort.Slice(segGot, func(i, j int) bool { return emio.Less(segGot[i], segGot[j]) })
		for i, e := range segGot {
			if e != want[off+int64(i)] {
				t.Fatalf("segment %d: element %d is %v, want %v", seg, i, e, want[off+int64(i)])
			}
		}
		off += sz
	}
}

func TestPartitionEqualSizes(t *testing.T) {
	ctx := mustCtx(t, 256, 16)
	rng := rand.New(rand.NewPCG(1, 1))
	in, f := randFile(ctx.Disk(), 10000, 1<<40, rng)
	sizes := make([]int64, 10)
	for i := range sizes {
		sizes[i] = 1000
	}
	out, err := Partition(ctx, f, sizes)
	if err != nil {
		t.Fatal(err)
	}
	checkPartition(t, in, out, sizes)
	if ctx.Mem().Used() != 0 {
		t.Fatalf("leaked %d memory", ctx.Mem().Used())
	}
}

func TestPartitionSkewedSizes(t *testing.T) {
	ctx := mustCtx(t, 256, 16)
	rng := rand.New(rand.NewPCG(2, 2))
	in, f := randFile(ctx.Disk(), 10000, 1000, rng) // heavy duplicates
	sizes := []int64{1, 4999, 1, 0, 4998, 1}
	out, err := Partition(ctx, f, sizes)
	if err != nil {
		t.Fatal(err)
	}
	checkPartition(t, in, out, sizes)
}

func TestPartitionSinglePartition(t *testing.T) {
	ctx := mustCtx(t, 256, 16)
	in, f := randFile(ctx.Disk(), 500, 500, rand.New(rand.NewPCG(3, 3)))
	out, err := Partition(ctx, f, []int64{500})
	if err != nil {
		t.Fatal(err)
	}
	checkPartition(t, in, out, []int64{500})
}

func TestPartitionAllSingletons(t *testing.T) {
	// K = N: multi-partition degenerates to sorting.
	ctx := mustCtx(t, 128, 8)
	in, f := randFile(ctx.Disk(), 600, 1<<30, rand.New(rand.NewPCG(4, 4)))
	sizes := make([]int64, 600)
	for i := range sizes {
		sizes[i] = 1
	}
	out, err := Partition(ctx, f, sizes)
	if err != nil {
		t.Fatal(err)
	}
	got := out.Snapshot()
	want := append([]emio.Elem(nil), in...)
	sort.Slice(want, func(i, j int) bool { return emio.Less(want[i], want[j]) })
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("K=N output not sorted at %d", i)
		}
	}
}

func TestPartitionAllEqualKeys(t *testing.T) {
	ctx := mustCtx(t, 256, 16)
	in := make([]emio.Elem, 5000)
	for i := range in {
		in[i] = emio.Elem{Key: 9, Aux: int64(i)}
	}
	f := emio.BuildFile(ctx.Disk(), "eq", in)
	sizes := []int64{1000, 3000, 1000}
	out, err := Partition(ctx, f, sizes)
	if err != nil {
		t.Fatal(err)
	}
	checkPartition(t, in, out, sizes)
}

func TestPartitionSortedAndReverseInput(t *testing.T) {
	for name, gen := range map[string]func(i int) int64{
		"sorted":  func(i int) int64 { return int64(i) },
		"reverse": func(i int) int64 { return int64(5000 - i) },
	} {
		ctx := mustCtx(t, 256, 16)
		in := make([]emio.Elem, 5000)
		for i := range in {
			in[i] = emio.Elem{Key: gen(i), Aux: int64(i)}
		}
		f := emio.BuildFile(ctx.Disk(), name, in)
		sizes := []int64{1250, 1250, 1250, 1250}
		out, err := Partition(ctx, f, sizes)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		checkPartition(t, in, out, sizes)
	}
}

func TestPartitionValidation(t *testing.T) {
	ctx := mustCtx(t, 256, 16)
	_, f := randFile(ctx.Disk(), 100, 100, rand.New(rand.NewPCG(5, 5)))
	if _, err := Partition(ctx, f, []int64{50, 49}); err == nil {
		t.Error("wrong sum accepted")
	}
	if _, err := Partition(ctx, f, []int64{101, -1}); err == nil {
		t.Error("negative size accepted")
	}
}

func TestPartitionAtRanks(t *testing.T) {
	ctx := mustCtx(t, 256, 16)
	in, f := randFile(ctx.Disk(), 1000, 1<<30, rand.New(rand.NewPCG(6, 6)))
	out, err := PartitionAtRanks(ctx, f, []int64{100, 500, 999})
	if err != nil {
		t.Fatal(err)
	}
	checkPartition(t, in, out, []int64{100, 400, 499, 1})
	for _, bad := range [][]int64{{0}, {1000}, {500, 500}, {600, 400}} {
		if _, err := PartitionAtRanks(ctx, f, bad); err == nil {
			t.Errorf("ranks %v accepted", bad)
		}
	}
}

func TestPartitionIOComplexity(t *testing.T) {
	// Cost must scale as (N/B) lg_{M/B} K: fixing N and raising K from 2 to
	// 512 should cost at most ~lg_{M/B}(512)/lg_{M/B}(2) more, and every run
	// stays under c*(N/B)(1+lg_f K).
	n := 1 << 16
	m, b := 1<<10, 32
	var costs []float64
	for _, k := range []int{2, 16, 512} {
		ctx := mustCtx(t, m, b)
		_, f := randFile(ctx.Disk(), n, 1<<40, rand.New(rand.NewPCG(7, 7)))
		sizes := make([]int64, k)
		for i := range sizes {
			sizes[i] = int64(n / k)
		}
		ctx.Disk().ResetStats()
		if _, err := Partition(ctx, f, sizes); err != nil {
			t.Fatal(err)
		}
		costs = append(costs, float64(ctx.Disk().Stats().Total()))
		fan := float64(fanOut(ctx))
		levels := 1 + math.Ceil(math.Log(float64(k))/math.Log(fan))
		bound := 8 * float64(n) / float64(b) * levels
		if costs[len(costs)-1] > bound {
			t.Errorf("K=%d: %v I/Os > bound %v", k, costs[len(costs)-1], bound)
		}
	}
	if costs[2] > costs[0]*6 {
		t.Errorf("cost grew too fast with K: %v", costs)
	}
}

func TestPartitionMemoryWithinBudget(t *testing.T) {
	for _, tc := range []struct{ m, b int }{{64, 8}, {256, 16}, {1024, 32}} {
		ctx := mustCtx(t, tc.m, tc.b)
		_, f := randFile(ctx.Disk(), 20000, 1<<40, rand.New(rand.NewPCG(8, 8)))
		sizes := make([]int64, 100)
		for i := range sizes {
			sizes[i] = 200
		}
		if _, err := Partition(ctx, f, sizes); err != nil {
			t.Fatalf("M=%d B=%d: %v", tc.m, tc.b, err)
		}
		if ctx.Mem().Peak() > int64(tc.m) {
			t.Errorf("M=%d B=%d: peak %d over budget", tc.m, tc.b, ctx.Mem().Peak())
		}
	}
}

func TestPartitionInputUntouched(t *testing.T) {
	ctx := mustCtx(t, 256, 16)
	in, f := randFile(ctx.Disk(), 1000, 1000, rand.New(rand.NewPCG(9, 9)))
	if _, err := Partition(ctx, f, []int64{500, 500}); err != nil {
		t.Fatal(err)
	}
	got := f.Snapshot()
	for i := range in {
		if got[i] != in[i] {
			t.Fatalf("input mutated at %d", i)
		}
	}
}

func TestPartitionProperty(t *testing.T) {
	prop := func(keys []int64, cuts []uint16) bool {
		if len(keys) == 0 {
			return true
		}
		ctx, err := emio.NewCtx(emio.Config{M: 64, B: 8})
		if err != nil {
			return false
		}
		in := make([]emio.Elem, len(keys))
		for i, k := range keys {
			in[i] = emio.Elem{Key: k % 8, Aux: int64(i)} // force duplicates
		}
		f := emio.BuildFile(ctx.Disk(), "p", in)
		// Derive sizes from random cuts.
		n := int64(len(in))
		ranks := make(map[int64]bool)
		for _, c := range cuts {
			r := int64(c) % n
			if r > 0 {
				ranks[r] = true
			}
		}
		var sizes []int64
		prev := int64(0)
		sorted := make([]int64, 0, len(ranks))
		for r := range ranks {
			sorted = append(sorted, r)
		}
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		for _, r := range sorted {
			sizes = append(sizes, r-prev)
			prev = r
		}
		sizes = append(sizes, n-prev)
		out, err := Partition(ctx, f, sizes)
		if err != nil {
			return false
		}
		// Inline segment check.
		got := out.Snapshot()
		want := append([]emio.Elem(nil), in...)
		sort.Slice(want, func(i, j int) bool { return emio.Less(want[i], want[j]) })
		off := int64(0)
		for _, sz := range sizes {
			seg := append([]emio.Elem(nil), got[off:off+sz]...)
			sort.Slice(seg, func(i, j int) bool { return emio.Less(seg[i], seg[j]) })
			for i := range seg {
				if seg[i] != want[off+int64(i)] {
					return false
				}
			}
			off += sz
		}
		return ctx.Mem().Used() == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
