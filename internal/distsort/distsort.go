// Package distsort implements external distribution sort — the
// Aggarwal-Vitter counterpart to merge sort — on top of the approximate
// splitter machinery: each level finds Θ(M/B) splitters of the current chunk
// in linear I/Os (package approxsplit, the paper's Hu-et-al substitute),
// scatters the chunk into the induced buckets, and recurses until buckets
// fit in memory. The cost is the same Θ((N/B) lg_{M/B}(N/B)) as merge sort;
// the package exists to exercise the splitter engine as a real substrate
// consumer and to provide the classic merge-vs-distribution ablation.
//
// With Config.Workers > 0 the facade routes DistributionSort through the
// parallel sharded engine (internal/empar) instead: the sorted output is the
// unique nondecreasing (Key, Aux) sequence either way, so the two paths are
// output-bit-identical; only the I/O schedule differs.
package distsort

import (
	"fmt"

	"repro/internal/approxsplit"
	"repro/internal/emio"
	"repro/internal/inmem"
)

// Sort returns a new file holding the elements of in sorted by (Key, Aux).
// The input file is unchanged.
func Sort(ctx *emio.Ctx, in *emio.File) (*emio.File, error) {
	sp := ctx.StartSpan("distsort/sort", emio.AttrInt("n", in.Len()))
	defer sp.End()
	out := ctx.Scratch("distsorted")
	w, err := emio.NewWriter(ctx, out)
	if err != nil {
		return nil, err
	}
	if err := sortInto(ctx, in, false, w); err != nil {
		w.Close()
		out.Release()
		return nil, err
	}
	if err := w.Close(); err != nil {
		out.Release()
		return nil, err
	}
	if out.Len() != in.Len() {
		out.Release()
		return nil, fmt.Errorf("distsort: emitted %d of %d elements", out.Len(), in.Len())
	}
	return out, nil
}

// fanOut picks the bucket count per level: one writer buffer per bucket plus
// a reader, the splitter array and the counters must fit. g*B + 2B + 2.5g <=
// M gives g ≈ (M - 2B)/(B + 3), further capped by approxsplit's own bound.
func fanOut(ctx *emio.Ctx) int {
	g := (ctx.M() - 2*ctx.B()) / (ctx.B() + 3)
	if maxG := approxsplit.MaxBuckets(ctx.Config()); g > maxG {
		g = maxG
	}
	if g < 2 {
		g = 2
	}
	return g
}

// sortInto appends chunk's elements in sorted order onto w, releasing chunk
// when owned.
func sortInto(ctx *emio.Ctx, chunk *emio.File, owned bool, w *emio.Writer) error {
	defer func() {
		if owned {
			chunk.Release()
		}
	}()
	n := chunk.Len()
	if n == 0 {
		return nil
	}
	if n <= int64(ctx.M()/3) {
		buf, err := emio.LoadAll(ctx, chunk)
		if err != nil {
			return err
		}
		inmem.Sort(buf)
		for _, e := range buf {
			w.Append(e)
		}
		ctx.FreeElems(buf)
		return w.Err()
	}

	g := fanOut(ctx)
	if int64(g) > n {
		g = int(n)
	}
	// One span per distribution level; the recursion into oversized buckets
	// nests below it, so the span tree depth is the recursion depth.
	lsp := ctx.StartSpan("distsort/level", emio.AttrInt("n", n), emio.AttrInt("g", int64(g)))
	defer lsp.End()
	res, err := approxsplit.Splitters(ctx, chunk, g)
	if err != nil {
		return err
	}
	ssp := ctx.StartSpan("distsort/scatter", emio.AttrInt("n", n))
	buckets, err := scatter(ctx, chunk, res.Splitters)
	ssp.End()
	res.Close()
	if err != nil {
		return err
	}
	// Strict progress: with at least one splitter every bucket excludes at
	// least the splitters outside it, but guard explicitly so a degenerate
	// split fails loudly instead of recursing forever.
	for _, b := range buckets {
		if b.Len() >= n {
			for _, bb := range buckets {
				bb.Release()
			}
			return fmt.Errorf("distsort: no progress (bucket of %d from chunk of %d)", b.Len(), n)
		}
	}
	for i, b := range buckets {
		if err := sortInto(ctx, b, true, w); err != nil {
			for _, rest := range buckets[i+1:] {
				rest.Release()
			}
			return err
		}
	}
	return nil
}

// scatter streams chunk into len(sp)+1 bucket files in one pass.
func scatter(ctx *emio.Ctx, chunk *emio.File, sp []emio.Elem) ([]*emio.File, error) {
	nb := len(sp) + 1
	buckets := make([]*emio.File, nb)
	writers := make([]*emio.Writer, nb)
	cleanup := func() {
		for _, bw := range writers {
			if bw != nil {
				bw.Close()
			}
		}
		for _, b := range buckets {
			if b != nil {
				b.Release()
			}
		}
	}
	for i := range buckets {
		buckets[i] = ctx.Scratch("dbucket")
		bw, err := emio.NewWriter(ctx, buckets[i])
		if err != nil {
			cleanup()
			return nil, err
		}
		writers[i] = bw
	}
	r, err := emio.NewReader(ctx, chunk)
	if err != nil {
		cleanup()
		return nil, err
	}
	for {
		e, ok := r.Next()
		if !ok {
			break
		}
		writers[approxsplit.BucketOf(sp, e)].Append(e)
	}
	rerr := r.Err()
	r.Close()
	for i, bw := range writers {
		if err := bw.Close(); err != nil && rerr == nil {
			rerr = err
		}
		writers[i] = nil
	}
	if rerr != nil {
		cleanup()
		return nil, rerr
	}
	return buckets, nil
}
