package distsort

import (
	"testing"
	"testing/quick"

	"repro/internal/emio"
	"repro/internal/extsort"
	"repro/internal/verify"
	"repro/internal/workload"
)

func mustCtx(t *testing.T, m, b int) *emio.Ctx {
	t.Helper()
	ctx, err := emio.NewCtx(emio.Config{M: m, B: b})
	if err != nil {
		t.Fatal(err)
	}
	return ctx
}

func checkSort(t *testing.T, ctx *emio.Ctx, in []emio.Elem, out *emio.File) {
	t.Helper()
	got := out.Snapshot()
	if err := verify.Sorted(got); err != nil {
		t.Fatal(err)
	}
	if err := verify.SameMultiset(got, in); err != nil {
		t.Fatal(err)
	}
	if ctx.Mem().Used() != 0 {
		t.Fatalf("leaked %d memory", ctx.Mem().Used())
	}
}

func TestSortAllWorkloads(t *testing.T) {
	n := 1 << 14
	for _, kind := range workload.Kinds() {
		ctx := mustCtx(t, 4096, 32)
		f := workload.File(ctx.Disk(), kind, n, 1)
		in := f.Snapshot()
		out, err := Sort(ctx, f)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		checkSort(t, ctx, in, out)
	}
}

func TestSortSmallSizes(t *testing.T) {
	for _, n := range []int{0, 1, 31, 32, 1000} {
		ctx := mustCtx(t, 4096, 32)
		f := workload.File(ctx.Disk(), workload.Uniform, n, 2)
		in := f.Snapshot()
		out, err := Sort(ctx, f)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		checkSort(t, ctx, in, out)
	}
}

func TestSortDeepRecursion(t *testing.T) {
	// Large N over small memory: multiple distribution levels.
	ctx := mustCtx(t, 1024, 16)
	n := 1 << 17
	f := workload.File(ctx.Disk(), workload.Uniform, n, 3)
	in := f.Snapshot()
	out, err := Sort(ctx, f)
	if err != nil {
		t.Fatal(err)
	}
	checkSort(t, ctx, in, out)
	if ctx.Mem().Peak() > 1024 {
		t.Errorf("peak memory %d over M=1024", ctx.Mem().Peak())
	}
}

func TestSortCostComparableToMergeSort(t *testing.T) {
	// Both are Θ((N/B) lg_{M/B}(N/B)); distribution must land within a small
	// factor of merge.
	n := 1 << 16
	ctx := mustCtx(t, 2048, 32)
	f := workload.File(ctx.Disk(), workload.Uniform, n, 4)
	ctx.Disk().ResetStats()
	out, err := Sort(ctx, f)
	if err != nil {
		t.Fatal(err)
	}
	out.Release()
	distIO := ctx.Disk().Stats().Total()

	ctx2 := mustCtx(t, 2048, 32)
	f2 := workload.File(ctx2.Disk(), workload.Uniform, n, 4)
	ctx2.Disk().ResetStats()
	out2, err := extsort.Sort(ctx2, f2)
	if err != nil {
		t.Fatal(err)
	}
	out2.Release()
	mergeIO := ctx2.Disk().Stats().Total()

	if distIO > 4*mergeIO {
		t.Errorf("distribution sort %d I/Os vs merge %d: more than 4x apart", distIO, mergeIO)
	}
}

func TestSortInputUntouched(t *testing.T) {
	ctx := mustCtx(t, 4096, 32)
	f := workload.File(ctx.Disk(), workload.Uniform, 5000, 5)
	in := f.Snapshot()
	if _, err := Sort(ctx, f); err != nil {
		t.Fatal(err)
	}
	got := f.Snapshot()
	for i := range in {
		if got[i] != in[i] {
			t.Fatalf("input mutated at %d", i)
		}
	}
}

func TestSortProperty(t *testing.T) {
	prop := func(keys []int64) bool {
		ctx, err := emio.NewCtx(emio.Config{M: 1024, B: 16})
		if err != nil {
			return false
		}
		in := make([]emio.Elem, len(keys))
		for i, k := range keys {
			in[i] = emio.Elem{Key: k % 64, Aux: int64(i)}
		}
		f := emio.BuildFile(ctx.Disk(), "p", in)
		out, err := Sort(ctx, f)
		if err != nil {
			return false
		}
		got := out.Snapshot()
		if verify.Sorted(got) != nil || verify.SameMultiset(got, in) != nil {
			return false
		}
		return ctx.Mem().Used() == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
