// Package histogram builds equi-depth histograms, the motivating application
// the paper gives for approximate K-splitters: the bucket boundaries of an
// exact equi-depth histogram with K buckets are the 1/K-quantile of the data,
// and if each bucket may deviate from N/K by a relative slack eps, the
// boundaries are an approximate K-splitters instance — computable with fewer
// I/Os than the exact quantile, and far fewer than sorting.
package histogram

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/emio"
	"repro/internal/inmem"
	"repro/internal/msel"
)

// Bucket is one histogram bucket: all elements e with prev.Upper < e <= Upper
// in the total order (the first bucket is unbounded below), and the number of
// such elements.
type Bucket struct {
	Upper emio.Elem // inclusive upper boundary; the max element for the last bucket
	Count int64
}

// EquiDepth builds a K-bucket equi-depth histogram of f with asymmetric
// relative depth slack: every bucket's count lies within
// [floor((1-lo)N/K), ceil((1+hi)N/K)]. lo = hi = 0 demands the exact
// 1/K-quantile. K must be at most M/4 so the boundaries fit in memory for the
// counting scan, and at most n.
//
// When slack is allowed and K divides N, the boundaries come from the
// approximate splitters algorithm; the larger the slack, the cheaper — and
// when (1+hi)N/K reaches N (only the lower bound binds), the right-grounded
// algorithm finds the boundaries in sublinear I/Os, the paper's headline
// phenomenon. With no usable slack the boundaries come from exact
// multi-selection.
func EquiDepth(ctx *emio.Ctx, f *emio.File, k int, lo, hi float64) ([]Bucket, error) {
	n := f.Len()
	if k < 1 || int64(k) > n {
		return nil, fmt.Errorf("histogram: K=%d out of [1,%d]", k, n)
	}
	if k > ctx.M()/4 {
		return nil, fmt.Errorf("histogram: K=%d boundaries exceed memory (max %d)", k, ctx.M()/4)
	}
	if lo < 0 || hi < 0 {
		return nil, fmt.Errorf("histogram: negative slack lo=%v hi=%v", lo, hi)
	}
	hsp := ctx.StartSpan("histogram/equi-depth", emio.AttrInt("n", n), emio.AttrInt("k", int64(k)))
	defer hsp.End()

	var spFile *emio.File
	var err error
	if (lo > 0 || hi > 0) && n%int64(k) == 0 {
		target := float64(n) / float64(k)
		a := int64((1 - lo) * target)
		if a < 0 {
			a = 0
		}
		b := int64((1+hi)*target) + 1
		if b > n {
			b = n
		}
		spFile, err = core.Splitters(ctx, f, core.Params{K: int64(k), A: a, B: b})
	} else {
		ranks := make([]int64, k-1)
		for i := range ranks {
			// round(i*n/k) kept strictly within [1, n-1]
			r := (int64(i+1)*n + int64(k)/2) / int64(k)
			if r < 1 {
				r = 1
			}
			if r > n-1 {
				r = n - 1
			}
			ranks[i] = r
		}
		for i := 1; i < len(ranks); i++ { // monotone after clamping
			if ranks[i] < ranks[i-1] {
				ranks[i] = ranks[i-1]
			}
		}
		spFile, err = msel.Select(ctx, f, ranks)
	}
	if err != nil {
		return nil, err
	}
	sp, err := emio.LoadAll(ctx, spFile)
	if err != nil {
		spFile.Release()
		return nil, err
	}
	spFile.Release()
	defer ctx.FreeElems(sp)
	// The splitters problem permits any output order (the left-grounded
	// padding path uses that freedom); bucket counting needs them ascending.
	inmem.Sort(sp)

	csp := ctx.StartSpan("histogram/count")
	buckets, maxElem, err := countBuckets(ctx, f, sp)
	csp.End()
	if err != nil {
		return nil, err
	}
	out := make([]Bucket, k)
	for i := 0; i < k-1; i++ {
		out[i] = Bucket{Upper: sp[i], Count: buckets[i]}
	}
	out[k-1] = Bucket{Upper: maxElem, Count: buckets[k-1]}
	return out, nil
}

// countBuckets counts the elements per splitter-induced bucket in one scan,
// also tracking the overall maximum (the last bucket's boundary). sp must be
// ascending; duplicates (possible with eps-padding on skewed data) are
// tolerated by the search.
func countBuckets(ctx *emio.Ctx, f *emio.File, sp []emio.Elem) ([]int64, emio.Elem, error) {
	counts, err := ctx.AllocInts(len(sp) + 1)
	if err != nil {
		return nil, emio.Elem{}, err
	}
	defer ctx.FreeInts(counts)
	r, err := emio.NewReader(ctx, f)
	if err != nil {
		return nil, emio.Elem{}, err
	}
	defer r.Close()
	var maxE emio.Elem
	first := true
	for {
		e, ok := r.Next()
		if !ok {
			break
		}
		if first || emio.Less(maxE, e) {
			maxE = e
			first = false
		}
		counts[bucketOf(sp, e)]++
	}
	if err := r.Err(); err != nil {
		return nil, emio.Elem{}, err
	}
	out := make([]int64, len(counts))
	copy(out, counts)
	return out, maxE, nil
}

func bucketOf(sp []emio.Elem, e emio.Elem) int {
	lo, hi := 0, len(sp)
	for lo < hi {
		mid := (lo + hi) / 2
		if emio.Less(sp[mid], e) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Depths extracts just the counts, for assertions and reporting.
func Depths(buckets []Bucket) []int64 {
	d := make([]int64, len(buckets))
	for i, b := range buckets {
		d[i] = b.Count
	}
	return d
}
