package histogram

import (
	"testing"

	"repro/internal/emio"
	"repro/internal/workload"
)

func mustCtx(t *testing.T, m, b int) *emio.Ctx {
	t.Helper()
	ctx, err := emio.NewCtx(emio.Config{M: m, B: b})
	if err != nil {
		t.Fatal(err)
	}
	return ctx
}

func checkHistogram(t *testing.T, in []emio.Elem, buckets []Bucket, k int, lo, hi float64) {
	t.Helper()
	if len(buckets) != k {
		t.Fatalf("%d buckets, want %d", len(buckets), k)
	}
	n := int64(len(in))
	var total int64
	for _, b := range buckets {
		total += b.Count
	}
	if total != n {
		t.Fatalf("depths sum to %d, want %d", total, n)
	}
	minD := int64(float64(n) / float64(k) * (1 - lo))
	maxD := int64(float64(n)/float64(k)*(1+hi)) + 1
	for i, b := range buckets {
		if b.Count < minD || b.Count > maxD {
			t.Fatalf("bucket %d depth %d outside [%d,%d]", i, b.Count, minD, maxD)
		}
	}
	// Boundaries ascending; recount against the raw data.
	for i := 1; i < len(buckets); i++ {
		if !emio.Less(buckets[i-1].Upper, buckets[i].Upper) {
			t.Fatalf("boundaries not ascending at %d", i)
		}
	}
	counts := make([]int64, k)
	for _, e := range in {
		j := 0
		for j < k-1 && emio.Less(buckets[j].Upper, e) {
			j++
		}
		counts[j]++
	}
	for i := range counts {
		if counts[i] != buckets[i].Count {
			t.Fatalf("bucket %d reported %d, recount %d", i, buckets[i].Count, counts[i])
		}
	}
}

func TestEquiDepthExact(t *testing.T) {
	ctx := mustCtx(t, 4096, 32)
	n := 1 << 13
	f := workload.File(ctx.Disk(), workload.Uniform, n, 1)
	in := f.Snapshot()
	buckets, err := EquiDepth(ctx, f, 16, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	checkHistogram(t, in, buckets, 16, 0, 0)
	for i, b := range buckets {
		if b.Count != int64(n/16) {
			t.Errorf("exact bucket %d depth %d, want %d", i, b.Count, n/16)
		}
	}
	if ctx.Mem().Used() != 0 {
		t.Fatalf("leaked %d", ctx.Mem().Used())
	}
}

func TestEquiDepthApproximate(t *testing.T) {
	ctx := mustCtx(t, 4096, 32)
	n := 1 << 14
	f := workload.File(ctx.Disk(), workload.Uniform, n, 2)
	in := f.Snapshot()
	buckets, err := EquiDepth(ctx, f, 16, 0.5, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	checkHistogram(t, in, buckets, 16, 0.5, 0.5)
}

func TestEquiDepthNNotMultipleOfK(t *testing.T) {
	ctx := mustCtx(t, 4096, 32)
	f := workload.File(ctx.Disk(), workload.Uniform, 10007, 3) // prime
	in := f.Snapshot()
	buckets, err := EquiDepth(ctx, f, 10, 0.25, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	checkHistogram(t, in, buckets, 10, 0.25, 0.25)
}

func TestEquiDepthSkewedData(t *testing.T) {
	ctx := mustCtx(t, 4096, 32)
	n := 1 << 13
	f := workload.File(ctx.Disk(), workload.ZipfLike, n, 4)
	in := f.Snapshot()
	buckets, err := EquiDepth(ctx, f, 8, 0.5, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	checkHistogram(t, in, buckets, 8, 0.5, 0.5)
}

func TestEquiDepthK1(t *testing.T) {
	ctx := mustCtx(t, 4096, 32)
	f := workload.File(ctx.Disk(), workload.Uniform, 100, 5)
	buckets, err := EquiDepth(ctx, f, 1, 0, 0)
	if err != nil || len(buckets) != 1 || buckets[0].Count != 100 {
		t.Fatalf("K=1: %v err=%v", buckets, err)
	}
}

func TestEquiDepthValidation(t *testing.T) {
	ctx := mustCtx(t, 4096, 32)
	f := workload.File(ctx.Disk(), workload.Uniform, 100, 6)
	if _, err := EquiDepth(ctx, f, 0, 0, 0); err == nil {
		t.Error("K=0 accepted")
	}
	if _, err := EquiDepth(ctx, f, 101, 0, 0); err == nil {
		t.Error("K>n accepted")
	}
	if _, err := EquiDepth(ctx, f, 4, -0.5, 0); err == nil {
		t.Error("negative lo accepted")
	}
	if _, err := EquiDepth(ctx, f, 4, 0, -0.5); err == nil {
		t.Error("negative hi accepted")
	}
	if _, err := EquiDepth(ctx, f, ctx.M(), 0, 0); err == nil {
		t.Error("K over memory accepted")
	}
}

func TestApproxCheaperThanExactOnWideSlack(t *testing.T) {
	// The paper's point: accepting slack reduces I/O. When the upper slack
	// frees b to reach N (only "at least a" binds), the right-grounded
	// algorithm finds the boundaries sublinearly — a large saving over the
	// exact quantile. (With symmetric moderate slack, all optimal bounds
	// collapse to Theta(scan) for small K and there is nothing to win; the
	// asymmetric regime is where the theory separates.)
	n := 1 << 17
	run := func(lo, hi float64) int64 {
		ctx := mustCtx(t, 4096, 32)
		f := workload.File(ctx.Disk(), workload.Uniform, n, 7)
		ctx.Disk().ResetStats()
		if _, err := EquiDepth(ctx, f, 8, lo, hi); err != nil {
			t.Fatal(err)
		}
		return ctx.Disk().Stats().Total()
	}
	exact := run(0, 0)
	approx := run(0.9, 8) // b clamps to N: right-grounded, a = 0.1*N/K
	if approx*2 >= exact {
		t.Errorf("asymmetric approx cost %d not well below exact cost %d", approx, exact)
	}
}

func TestDepths(t *testing.T) {
	b := []Bucket{{Count: 3}, {Count: 7}}
	d := Depths(b)
	if len(d) != 2 || d[0] != 3 || d[1] != 7 {
		t.Errorf("Depths = %v", d)
	}
}
