package intermix

import (
	"math/rand/v2"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/emio"
)

// buildInstance creates an intermixed instance from per-group key slices,
// interleaving the groups' elements round-robin so the file really is
// "intermixed". It returns the staged file and the oracle answer for the
// given 1-based targets.
func buildInstance(d *emio.Disk, groups [][]int64, targets []int64) (*emio.File, []emio.Elem) {
	type tagged struct {
		e emio.Elem
		g int
	}
	var all []tagged
	seq := int64(0)
	oracle := make([]emio.Elem, len(groups))
	for g, keys := range groups {
		elems := make([]emio.Elem, len(keys))
		for _, k := range keys {
			e := emio.Elem{Key: k, Aux: emio.PackAux(int64(g), seq)}
			elems[seq%int64(len(keys))] = e // placeholder; replaced below
			all = append(all, tagged{e, g})
			seq++
		}
		_ = elems
	}
	// Oracle: sort each group's elements by (Key, Aux) and take the target.
	perGroup := make([][]emio.Elem, len(groups))
	for _, t := range all {
		perGroup[t.g] = append(perGroup[t.g], t.e)
	}
	for g := range perGroup {
		sort.Slice(perGroup[g], func(i, j int) bool { return emio.Less(perGroup[g][i], perGroup[g][j]) })
		if targets != nil {
			oracle[g] = perGroup[g][targets[g]-1]
		}
	}
	// Interleave: shuffle deterministically.
	rng := rand.New(rand.NewPCG(42, uint64(len(all))))
	rng.Shuffle(len(all), func(i, j int) { all[i], all[j] = all[j], all[i] })
	flat := make([]emio.Elem, len(all))
	for i, t := range all {
		flat[i] = t.e
	}
	return emio.BuildFile(d, "D", flat), oracle
}

func mustCtx(t *testing.T, m, b int) *emio.Ctx {
	t.Helper()
	ctx, err := emio.NewCtx(emio.Config{M: m, B: b})
	if err != nil {
		t.Fatal(err)
	}
	return ctx
}

func TestMaxGroups(t *testing.T) {
	if got := MaxGroups(emio.Config{M: 2400, B: 8}); got != 10 {
		t.Errorf("MaxGroups(M=2400) = %d, want 10", got)
	}
	if got := MaxGroups(emio.Config{M: 100, B: 8}); got != 0 {
		t.Errorf("MaxGroups(M=100) = %d, want 0", got)
	}
}

func TestSelectSingleGroupMedian(t *testing.T) {
	ctx := mustCtx(t, 480, 8) // MaxGroups = 2
	rng := rand.New(rand.NewPCG(1, 1))
	keys := make([]int64, 1000)
	for i := range keys {
		keys[i] = rng.Int64N(10000)
	}
	d, oracle := buildInstance(ctx.Disk(), [][]int64{keys}, []int64{500})
	got, err := Select(ctx, d, 1, []int64{500})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != oracle[0] {
		t.Fatalf("median = %v, want %v", got[0], oracle[0])
	}
	ctx.FreeElems(got)
	if ctx.Mem().Used() != 0 {
		t.Fatalf("leaked %d memory", ctx.Mem().Used())
	}
}

func TestSelectManyGroupsAllTargets(t *testing.T) {
	ctx := mustCtx(t, 2400, 8) // MaxGroups = 10
	rng := rand.New(rand.NewPCG(2, 2))
	L := 10
	groups := make([][]int64, L)
	targets := make([]int64, L)
	for g := 0; g < L; g++ {
		n := 100 + rng.IntN(400)
		keys := make([]int64, n)
		for i := range keys {
			keys[i] = rng.Int64N(500) // heavy duplicates across and within groups
		}
		groups[g] = keys
		targets[g] = 1 + rng.Int64N(int64(n))
	}
	d, oracle := buildInstance(ctx.Disk(), groups, targets)
	got, err := Select(ctx, d, L, targets)
	if err != nil {
		t.Fatal(err)
	}
	for g := range oracle {
		if got[g] != oracle[g] {
			t.Errorf("group %d target %d = %v, want %v", g, targets[g], got[g], oracle[g])
		}
	}
	ctx.FreeElems(got)
	if ctx.Mem().Used() != 0 {
		t.Fatalf("leaked %d memory", ctx.Mem().Used())
	}
}

func TestSelectExtremeTargets(t *testing.T) {
	ctx := mustCtx(t, 1200, 8) // MaxGroups = 5
	rng := rand.New(rand.NewPCG(3, 3))
	L := 5
	groups := make([][]int64, L)
	for g := range groups {
		keys := make([]int64, 200)
		for i := range keys {
			keys[i] = rng.Int64N(1000)
		}
		groups[g] = keys
	}
	// Min of some groups, max of others.
	targets := []int64{1, 200, 1, 200, 100}
	d, oracle := buildInstance(ctx.Disk(), groups, targets)
	got, err := Select(ctx, d, L, targets)
	if err != nil {
		t.Fatal(err)
	}
	for g := range oracle {
		if got[g] != oracle[g] {
			t.Errorf("group %d = %v, want %v", g, got[g], oracle[g])
		}
	}
	ctx.FreeElems(got)
}

func TestSelectSkewedGroupSizes(t *testing.T) {
	ctx := mustCtx(t, 1200, 8)
	rng := rand.New(rand.NewPCG(4, 4))
	big := make([]int64, 3000)
	for i := range big {
		big[i] = rng.Int64N(100000)
	}
	groups := [][]int64{big, {7}, {3, 1}, {5, 5, 5}, big[:10]}
	targets := []int64{1500, 1, 2, 2, 5}
	d, oracle := buildInstance(ctx.Disk(), groups, targets)
	got, err := Select(ctx, d, 5, targets)
	if err != nil {
		t.Fatal(err)
	}
	for g := range oracle {
		if got[g] != oracle[g] {
			t.Errorf("group %d = %v, want %v", g, got[g], oracle[g])
		}
	}
	ctx.FreeElems(got)
}

func TestSelectTinyInstanceInMemory(t *testing.T) {
	ctx := mustCtx(t, 2400, 8)
	d, oracle := buildInstance(ctx.Disk(), [][]int64{{3, 1, 2}, {9, 8}}, []int64{2, 1})
	got, err := Select(ctx, d, 2, []int64{2, 1})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != oracle[0] || got[1] != oracle[1] {
		t.Fatalf("got %v, want %v", got, oracle)
	}
	ctx.FreeElems(got)
}

func TestSelectValidation(t *testing.T) {
	ctx := mustCtx(t, 2400, 8)
	d, _ := buildInstance(ctx.Disk(), [][]int64{{1, 2, 3}, {4, 5}}, nil)
	cases := []struct {
		name    string
		L       int
		targets []int64
	}{
		{"L zero", 0, nil},
		{"L over max", 11, make([]int64, 11)},
		{"wrong target count", 2, []int64{1}},
		{"target zero", 2, []int64{0, 1}},
		{"target too large", 2, []int64{4, 1}},
		{"group out of range", 1, []int64{1}}, // group 1 exists but L=1
	}
	for _, c := range cases {
		if _, err := Select(ctx, d, c.L, c.targets); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
	if ctx.Mem().Used() != 0 {
		t.Fatalf("validation leaked %d", ctx.Mem().Used())
	}
}

func TestSelectLinearIOLemma6(t *testing.T) {
	// Lemma 6: F(D) = O(|D|/B). Measure scan-equivalents at growing |D| and
	// check the constant is bounded and non-increasing.
	var perScan []float64
	for _, n := range []int{1 << 13, 1 << 15, 1 << 17} {
		ctx := mustCtx(t, 4096, 32)
		rng := rand.New(rand.NewPCG(5, 5))
		L := 16
		groups := make([][]int64, L)
		targets := make([]int64, L)
		per := n / L
		for g := range groups {
			keys := make([]int64, per)
			for i := range keys {
				keys[i] = rng.Int64()
			}
			groups[g] = keys
			targets[g] = 1 + rng.Int64N(int64(per))
		}
		d, _ := buildInstance(ctx.Disk(), groups, targets)
		ctx.Disk().ResetStats()
		got, err := Select(ctx, d, L, targets)
		if err != nil {
			t.Fatal(err)
		}
		ctx.FreeElems(got)
		scans := float64(ctx.Disk().Stats().Total()) / (float64(n) / 32)
		perScan = append(perScan, scans)
	}
	for i, s := range perScan {
		if s > 60 {
			t.Errorf("instance %d: %.1f scan-equivalents, want O(1) (<=60)", i, s)
		}
	}
	// The scan constant converges geometrically to its asymptote (the
	// recursion's geometric sum), so increments per 4x growth must shrink.
	// An algorithm hiding a log factor shows constant (or growing)
	// increments instead.
	inc1 := perScan[1] - perScan[0]
	inc2 := perScan[2] - perScan[1]
	if inc2 > inc1*0.9 {
		t.Errorf("I/O constant increments not decaying (log factor?): %v", perScan)
	}
}

func TestSelectMemoryBudget(t *testing.T) {
	// Peak memory must stay within M even for L = MaxGroups.
	ctx := mustCtx(t, 2400, 16)
	L := MaxGroups(ctx.Config())
	rng := rand.New(rand.NewPCG(6, 6))
	groups := make([][]int64, L)
	targets := make([]int64, L)
	for g := range groups {
		keys := make([]int64, 800)
		for i := range keys {
			keys[i] = rng.Int64()
		}
		groups[g] = keys
		targets[g] = 400
	}
	d, _ := buildInstance(ctx.Disk(), groups, targets)
	got, err := Select(ctx, d, L, targets)
	if err != nil {
		t.Fatal(err)
	}
	ctx.FreeElems(got)
	if ctx.Mem().Peak() > 2400 {
		t.Errorf("peak memory %d exceeds M", ctx.Mem().Peak())
	}
}

func TestSelectProperty(t *testing.T) {
	prop := func(rawGroups [][]int64, seed uint64) bool {
		// Build up to 4 nonempty groups.
		var groups [][]int64
		for _, g := range rawGroups {
			if len(g) > 0 {
				groups = append(groups, g)
			}
			if len(groups) == 4 {
				break
			}
		}
		if len(groups) == 0 {
			return true
		}
		rng := rand.New(rand.NewPCG(seed, 99))
		targets := make([]int64, len(groups))
		for i, g := range groups {
			targets[i] = 1 + rng.Int64N(int64(len(g)))
		}
		ctx, err := emio.NewCtx(emio.Config{M: 960, B: 4})
		if err != nil {
			return false
		}
		d, oracle := buildInstance(ctx.Disk(), groups, targets)
		got, err := Select(ctx, d, len(groups), targets)
		if err != nil {
			return false
		}
		for g := range oracle {
			if got[g] != oracle[g] {
				return false
			}
		}
		ctx.FreeElems(got)
		return ctx.Mem().Used() == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestSelectSubgroupBoundarySizes(t *testing.T) {
	// Group sizes at exact multiples of the subgroup width 5 and just off
	// them exercise the leftover-median path.
	ctx := mustCtx(t, 2400, 8)
	groups := [][]int64{
		make([]int64, 5), make([]int64, 10), make([]int64, 499),
		make([]int64, 500), make([]int64, 501), {42},
	}
	rng := rand.New(rand.NewPCG(9, 9))
	targets := make([]int64, len(groups))
	for g := range groups {
		for i := range groups[g] {
			groups[g][i] = rng.Int64N(1000)
		}
		targets[g] = 1 + rng.Int64N(int64(len(groups[g])))
	}
	d, oracle := buildInstance(ctx.Disk(), groups, targets)
	got, err := Select(ctx, d, len(groups), targets)
	if err != nil {
		t.Fatal(err)
	}
	for g := range oracle {
		if got[g] != oracle[g] {
			t.Errorf("group %d = %v, want %v", g, got[g], oracle[g])
		}
	}
	ctx.FreeElems(got)
}

func TestSelectMaxGroupsAllSingletons(t *testing.T) {
	// L = MaxGroups groups of one element each: the instance is tiny but the
	// group bookkeeping is at full width.
	ctx := mustCtx(t, 2400, 8)
	l := MaxGroups(ctx.Config())
	groups := make([][]int64, l)
	targets := make([]int64, l)
	for g := range groups {
		groups[g] = []int64{int64(g * 7)}
		targets[g] = 1
	}
	d, oracle := buildInstance(ctx.Disk(), groups, targets)
	got, err := Select(ctx, d, l, targets)
	if err != nil {
		t.Fatal(err)
	}
	for g := range oracle {
		if got[g] != oracle[g] {
			t.Errorf("group %d = %v, want %v", g, got[g], oracle[g])
		}
	}
	ctx.FreeElems(got)
	if ctx.Mem().Used() != 0 {
		t.Fatalf("leaked %d", ctx.Mem().Used())
	}
}
