// Package intermix implements the L-intermixed selection algorithm of paper
// §4.1, the key new primitive behind the optimal multi-selection result
// (Theorem 4).
//
// The input is a file D of elements, each tagged with a group id g in [0, L),
// and a target rank t[g] for every group. The output is, for every group, the
// element with the t[g]-th smallest key among that group's elements. The
// algorithm runs L concurrent threads of BFPRT median-of-medians selection
// using only O(1) words of state per thread, so that L can be as large as a
// constant fraction of memory: Lemma 6 gives a total cost of O(|D|/B) I/Os.
//
// Each recursion level performs three scans of the current instance:
//
//  1. Subgroup medians: the elements of every group are chopped into
//     subgroups of five as they stream by (a five-slot buffer per group), and
//     each subgroup's median is appended to Σ. The medians of Σ's groups —
//     computed by recursing on Σ — give an approximate median µ_g per group.
//  2. Rank scan: one pass counts θ[g], the rank of µ_g within group g.
//  3. Prune: one pass writes the next instance D′, keeping per group only the
//     half that still contains the target, with targets adjusted; per group
//     at most 7/10·|D_g| + 3 elements survive.
//
// Group ids and per-group sequence numbers are packed into the element's Aux
// word with emio.PackAux, so the (Key, Aux) total order coincides with the
// within-group order (Key, seq) and duplicate keys need no special handling.
// Callers must make (Key, seq) unique within each group (multi-selection uses
// the element's position in the original set as seq).
package intermix

import (
	"fmt"
	"sort"

	"repro/internal/emio"
	"repro/internal/inmem"
)

// groupDivisor is the paper's constant: intermixed selection admits up to
// m = cM groups with c = 1/240, the value for which the recurrence
// |Σ| + |D′| <= (9/10 + 12c)|D| <= (19/20)|D| of Lemma 6 goes through.
const groupDivisor = 240

// MaxGroups returns m, the largest number of groups a single intermixed
// selection instance may carry under configuration cfg: floor(M/240).
func MaxGroups(cfg emio.Config) int {
	return cfg.M / groupDivisor
}

// Select solves the L-intermixed selection problem on d: for each group g in
// [0, L), it returns the element whose key is the targets[g]-th smallest in
// group g. Results are indexed by group; free them with ctx.FreeElems. The
// input file is not modified; targets is not modified.
//
// Requirements: 1 <= L <= MaxGroups(cfg); every element's Aux is
// emio.PackAux(g, seq) with g in [0, L); every group is nonempty; and
// 1 <= targets[g] <= |D_g|. Violations are reported as errors after a single
// validation scan.
func Select(ctx *emio.Ctx, d *emio.File, L int, targets []int64) ([]emio.Elem, error) {
	if L < 1 || L > MaxGroups(ctx.Config()) {
		return nil, fmt.Errorf("intermix: L=%d out of [1,%d] for %v", L, MaxGroups(ctx.Config()), ctx.Config())
	}
	if len(targets) != L {
		return nil, fmt.Errorf("intermix: %d targets for L=%d groups", len(targets), L)
	}
	if err := validate(ctx, d, L, targets); err != nil {
		return nil, err
	}
	sp := ctx.StartSpan("intermix/select", emio.AttrInt("d", d.Len()), emio.AttrInt("L", int64(L)))
	defer sp.End()
	t, err := ctx.AllocInts(L)
	if err != nil {
		return nil, err
	}
	copy(t, targets)
	return sel(ctx, d, false, L, t)
}

// validate checks group ids and target ranks in one counting scan.
func validate(ctx *emio.Ctx, d *emio.File, L int, targets []int64) error {
	sizes, err := ctx.AllocInts(L)
	if err != nil {
		return err
	}
	defer ctx.FreeInts(sizes)
	r, err := emio.NewReader(ctx, d)
	if err != nil {
		return err
	}
	defer r.Close()
	for {
		e, ok := r.Next()
		if !ok {
			break
		}
		g := emio.UnpackGroup(e.Aux)
		if g < 0 || g >= int64(L) {
			return fmt.Errorf("intermix: element %v carries group %d, want [0,%d)", e, g, L)
		}
		sizes[g]++
	}
	if err := r.Err(); err != nil {
		return err
	}
	for g, tg := range targets {
		if tg < 1 || tg > sizes[g] {
			return fmt.Errorf("intermix: target %d for group %d of size %d", tg, g, sizes[g])
		}
	}
	return nil
}

// sel is the recursive core. It takes ownership of the working target array t
// (always freed) and of cur when owned (released before returning). The
// recursion on Σ is a true recursive call; the recursion on D′ is the loop.
func sel(ctx *emio.Ctx, cur *emio.File, owned bool, L int, t []int64) (result []emio.Elem, err error) {
	defer func() {
		if t != nil {
			ctx.FreeInts(t)
		}
		if owned && cur != nil {
			cur.Release()
		}
	}()
	for {
		if cur.Len() <= int64(ctx.M()/3) {
			return solveInMemory(ctx, cur, L, t)
		}
		lsp := ctx.StartSpan("intermix/level", emio.AttrInt("d", cur.Len()))

		// Phase 1: subgroup medians -> Σ, counting |Σ_g|.
		sigma, sigSizes, err := subgroupMedians(ctx, cur, L)
		if err != nil {
			return nil, err
		}

		// Phase 2: medians of Σ's groups, by recursion. The parent's target
		// array is spilled to disk for the duration so that the live memory
		// of the Σ-recursion chain stays O(L) rather than O(L * depth).
		tSigma, err := ctx.AllocInts(L)
		if err != nil {
			sigma.Release()
			return nil, err
		}
		for g := 0; g < L; g++ {
			tSigma[g] = (sigSizes[g] + 1) / 2
		}
		ctx.FreeInts(sigSizes)
		tSpill, err := spillInts(ctx, t)
		if err != nil {
			ctx.FreeInts(tSigma)
			sigma.Release()
			return nil, err
		}
		ctx.FreeInts(t)
		t = nil
		mu, err := sel(ctx, sigma, true, L, tSigma) // consumes sigma and tSigma
		if err != nil {
			tSpill.Release()
			return nil, err
		}
		t, err = unspillInts(ctx, tSpill, L)
		tSpill.Release()
		if err != nil {
			ctx.FreeElems(mu)
			return nil, err
		}

		// Phase 3: rank of µ_g within group g.
		theta, err := rankScan(ctx, cur, L, mu)
		if err != nil {
			ctx.FreeElems(mu)
			return nil, err
		}

		// Phase 4: prune to D′ and adjust targets.
		next, err := prune(ctx, cur, L, mu, theta, t)
		ctx.FreeElems(mu)
		ctx.FreeInts(theta)
		if err != nil {
			return nil, err
		}
		// Lemma 6 guarantees |D′| <= (7/10 + 3/80)|D| whenever |D| > M/3;
		// anything else indicates a corrupted instance, so fail loudly
		// rather than loop.
		if next.Len() >= cur.Len() {
			next.Release()
			return nil, fmt.Errorf("intermix: no progress (%d -> %d elements)", cur.Len(), next.Len())
		}
		if owned {
			cur.Release()
		}
		cur, owned = next, true
		lsp.End()
	}
}

// solveInMemory finishes an instance that fits in M/3 memory: load, sort by
// (group, key, seq), and read each group's target off the sorted order.
func solveInMemory(ctx *emio.Ctx, cur *emio.File, L int, t []int64) ([]emio.Elem, error) {
	buf, err := emio.LoadAll(ctx, cur)
	if err != nil {
		return nil, err
	}
	defer ctx.FreeElems(buf)
	sort.Slice(buf, func(i, j int) bool {
		gi, gj := emio.UnpackGroup(buf[i].Aux), emio.UnpackGroup(buf[j].Aux)
		if gi != gj {
			return gi < gj
		}
		return emio.Less(buf[i], buf[j])
	})
	out, err := ctx.AllocElems(L)
	if err != nil {
		return nil, err
	}
	lo := 0
	for lo < len(buf) {
		g := emio.UnpackGroup(buf[lo].Aux)
		hi := lo
		for hi < len(buf) && emio.UnpackGroup(buf[hi].Aux) == g {
			hi++
		}
		tg := t[g]
		if tg < 1 || tg > int64(hi-lo) {
			ctx.FreeElems(out)
			return nil, fmt.Errorf("intermix: internal target %d for group %d of size %d", tg, g, hi-lo)
		}
		out[g] = buf[lo+int(tg)-1]
		lo = hi
	}
	return out, nil
}

// subgroupMedians streams cur once, chopping every group into subgroups of at
// most five elements and appending each subgroup's median to a fresh Σ file.
// It returns Σ and the per-group median counts (an AllocInts array the caller
// frees). Memory: 5L elements of subgroup slots + L fill counters + L sizes.
func subgroupMedians(ctx *emio.Ctx, cur *emio.File, L int) (*emio.File, []int64, error) {
	slots, err := ctx.AllocElems(5 * L)
	if err != nil {
		return nil, nil, err
	}
	defer ctx.FreeElems(slots)
	fill, err := ctx.AllocInts(L)
	if err != nil {
		return nil, nil, err
	}
	defer ctx.FreeInts(fill)
	sizes, err := ctx.AllocInts(L)
	if err != nil {
		return nil, nil, err
	}
	sigma := ctx.Scratch("sigma")
	w, err := emio.NewWriter(ctx, sigma)
	if err != nil {
		ctx.FreeInts(sizes)
		return nil, nil, err
	}
	r, err := emio.NewReader(ctx, cur)
	if err != nil {
		w.Close()
		ctx.FreeInts(sizes)
		return nil, nil, err
	}
	emit := func(g int64) {
		k := fill[g]
		med := inmem.MedianOfFive(slots[5*g : 5*g+k])
		w.Append(med)
		sizes[g]++
		fill[g] = 0
	}
	for {
		e, ok := r.Next()
		if !ok {
			break
		}
		g := emio.UnpackGroup(e.Aux)
		slots[5*g+fill[g]] = e
		fill[g]++
		if fill[g] == 5 {
			emit(g)
		}
	}
	rerr := r.Err()
	r.Close()
	if rerr != nil {
		w.Close()
		ctx.FreeInts(sizes)
		sigma.Release()
		return nil, nil, rerr
	}
	for g := int64(0); g < int64(L); g++ {
		if fill[g] > 0 {
			emit(g)
		}
	}
	if err := w.Close(); err != nil {
		ctx.FreeInts(sizes)
		sigma.Release()
		return nil, nil, err
	}
	return sigma, sizes, nil
}

// rankScan returns θ with θ[g] = |{e in D_g : e <= µ_g}| in one scan.
func rankScan(ctx *emio.Ctx, cur *emio.File, L int, mu []emio.Elem) ([]int64, error) {
	theta, err := ctx.AllocInts(L)
	if err != nil {
		return nil, err
	}
	r, err := emio.NewReader(ctx, cur)
	if err != nil {
		ctx.FreeInts(theta)
		return nil, err
	}
	defer r.Close()
	for {
		e, ok := r.Next()
		if !ok {
			break
		}
		g := emio.UnpackGroup(e.Aux)
		if !emio.Less(mu[g], e) { // e <= µ_g
			theta[g]++
		}
	}
	if err := r.Err(); err != nil {
		ctx.FreeInts(theta)
		return nil, err
	}
	return theta, nil
}

// prune writes the next instance: per group, if the target lies at or below
// θ[g] keep the elements <= µ_g, else keep the elements > µ_g and shift the
// target by θ[g]. Targets are updated in place.
func prune(ctx *emio.Ctx, cur *emio.File, L int, mu []emio.Elem, theta, t []int64) (*emio.File, error) {
	next := ctx.Scratch("dprime")
	w, err := emio.NewWriter(ctx, next)
	if err != nil {
		return nil, err
	}
	r, err := emio.NewReader(ctx, cur)
	if err != nil {
		w.Close()
		return nil, err
	}
	for {
		e, ok := r.Next()
		if !ok {
			break
		}
		g := emio.UnpackGroup(e.Aux)
		lowSide := !emio.Less(mu[g], e) // e <= µ_g
		if (t[g] <= theta[g]) == lowSide {
			w.Append(e)
		}
	}
	rerr := r.Err()
	r.Close()
	if err := w.Close(); err != nil && rerr == nil {
		rerr = err
	}
	if rerr != nil {
		next.Release()
		return nil, rerr
	}
	for g := 0; g < L; g++ {
		if t[g] > theta[g] {
			t[g] -= theta[g]
		}
	}
	return next, nil
}

// spillInts writes an int64 array to a scratch file (one int per element's
// Key) so it survives a recursive call without occupying memory.
func spillInts(ctx *emio.Ctx, v []int64) (*emio.File, error) {
	f := ctx.Scratch("spill")
	w, err := emio.NewWriter(ctx, f)
	if err != nil {
		return nil, err
	}
	for i, x := range v {
		w.Append(emio.Elem{Key: x, Aux: int64(i)})
	}
	if err := w.Close(); err != nil {
		f.Release()
		return nil, err
	}
	return f, nil
}

// unspillInts reloads an array written by spillInts into a fresh AllocInts
// buffer.
func unspillInts(ctx *emio.Ctx, f *emio.File, n int) ([]int64, error) {
	v, err := ctx.AllocInts(n)
	if err != nil {
		return nil, err
	}
	r, err := emio.NewReader(ctx, f)
	if err != nil {
		ctx.FreeInts(v)
		return nil, err
	}
	defer r.Close()
	i := 0
	for {
		e, ok := r.Next()
		if !ok {
			break
		}
		if i >= n {
			ctx.FreeInts(v)
			return nil, fmt.Errorf("intermix: spill file holds more than %d entries", n)
		}
		v[i] = e.Key
		i++
	}
	if err := r.Err(); err != nil {
		ctx.FreeInts(v)
		return nil, err
	}
	if i != n {
		ctx.FreeInts(v)
		return nil, fmt.Errorf("intermix: spill file holds %d of %d entries", i, n)
	}
	return v, nil
}
