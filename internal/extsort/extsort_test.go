package extsort

import (
	"math"
	"math/rand/v2"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/emio"
)

func mustCtx(t *testing.T, m, b int) *emio.Ctx {
	t.Helper()
	ctx, err := emio.NewCtx(emio.Config{M: m, B: b})
	if err != nil {
		t.Fatal(err)
	}
	return ctx
}

func randKeys(n int, rng *rand.Rand) []emio.Elem {
	s := make([]emio.Elem, n)
	for i := range s {
		s[i] = emio.Elem{Key: rng.Int64N(int64(n)*2 + 1), Aux: int64(i)}
	}
	return s
}

func checkSorted(t *testing.T, in []emio.Elem, out *emio.File) {
	t.Helper()
	want := append([]emio.Elem(nil), in...)
	sort.Slice(want, func(i, j int) bool { return emio.Less(want[i], want[j]) })
	got := out.Snapshot()
	if len(got) != len(want) {
		t.Fatalf("sorted %d elements, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("output differs at %d: %v vs %v", i, got[i], want[i])
		}
	}
}

func TestSortBasic(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	for _, n := range []int{0, 1, 2, 63, 64, 65, 1000, 4096} {
		ctx := mustCtx(t, 64, 8)
		in := randKeys(n, rng)
		f := emio.BuildFile(ctx.Disk(), "in", in)
		out, err := Sort(ctx, f)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		checkSorted(t, in, out)
		if ctx.Mem().Used() != 0 {
			t.Fatalf("n=%d: leaked %d memory", n, ctx.Mem().Used())
		}
	}
}

func TestSortAlreadySortedAndReverse(t *testing.T) {
	ctx := mustCtx(t, 64, 8)
	n := 1000
	asc := make([]emio.Elem, n)
	desc := make([]emio.Elem, n)
	for i := 0; i < n; i++ {
		asc[i] = emio.Elem{Key: int64(i), Aux: int64(i)}
		desc[i] = emio.Elem{Key: int64(n - i), Aux: int64(i)}
	}
	for name, in := range map[string][]emio.Elem{"asc": asc, "desc": desc} {
		f := emio.BuildFile(ctx.Disk(), name, in)
		out, err := Sort(ctx, f)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		checkSorted(t, in, out)
	}
}

func TestSortAllEqualKeys(t *testing.T) {
	ctx := mustCtx(t, 64, 8)
	in := make([]emio.Elem, 500)
	for i := range in {
		in[i] = emio.Elem{Key: 42, Aux: int64(i)}
	}
	out, err := Sort(ctx, emio.BuildFile(ctx.Disk(), "eq", in))
	if err != nil {
		t.Fatal(err)
	}
	checkSorted(t, in, out)
}

func TestSortInputUntouched(t *testing.T) {
	ctx := mustCtx(t, 64, 8)
	in := randKeys(200, rand.New(rand.NewPCG(2, 2)))
	f := emio.BuildFile(ctx.Disk(), "in", in)
	if _, err := Sort(ctx, f); err != nil {
		t.Fatal(err)
	}
	got := f.Snapshot()
	for i := range in {
		if got[i] != in[i] {
			t.Fatalf("input mutated at %d", i)
		}
	}
}

func TestSortIOComplexity(t *testing.T) {
	// Measured cost must match (2N/B)(1 + passes) within a small constant,
	// where passes = ceil(lg_f(#runs)) with f the merge fan-in.
	for _, tc := range []struct{ n, m, b int }{
		{1 << 12, 256, 16},
		{1 << 14, 256, 16},
		{1 << 14, 1 << 10, 32},
		{1 << 16, 1 << 10, 32},
	} {
		ctx := mustCtx(t, tc.m, tc.b)
		in := emio.BuildFile(ctx.Disk(), "io", randKeys(tc.n, rand.New(rand.NewPCG(3, 3))))
		ctx.Disk().ResetStats()
		if _, err := Sort(ctx, in); err != nil {
			t.Fatal(err)
		}
		got := float64(ctx.Disk().Stats().Total())
		nb := float64(tc.n) / float64(tc.b)
		runCap := float64((tc.m/tc.b - 2) * tc.b)
		runs := math.Ceil(float64(tc.n) / runCap)
		fan := float64((tc.m - tc.b) / (tc.b + 4))
		passes := math.Ceil(math.Log(runs) / math.Log(fan))
		if passes < 0 {
			passes = 0
		}
		bound := 2*nb*(1+passes) + 2*(1+passes) // slack for partial blocks
		if got > bound {
			t.Errorf("N=%d M=%d B=%d: %v I/Os > bound %v (runs=%v fan=%v passes=%v)",
				tc.n, tc.m, tc.b, got, bound, runs, fan, passes)
		}
		if got < nb { // must at least read the input
			t.Errorf("N=%d: impossible I/O count %v < scan %v", tc.n, got, nb)
		}
	}
}

func TestSortMultiPassTinyMemory(t *testing.T) {
	// M=32, B=4 forces many runs and multiple merge passes.
	ctx := mustCtx(t, 32, 4)
	in := randKeys(5000, rand.New(rand.NewPCG(4, 4)))
	out, err := Sort(ctx, emio.BuildFile(ctx.Disk(), "tiny", in))
	if err != nil {
		t.Fatal(err)
	}
	checkSorted(t, in, out)
	if ctx.Mem().Peak() > 32 {
		t.Errorf("peak memory %d exceeds M=32", ctx.Mem().Peak())
	}
}

func TestSortPeakMemoryWithinBudget(t *testing.T) {
	for _, tc := range []struct{ m, b int }{{64, 8}, {256, 16}, {48, 6}} {
		ctx := mustCtx(t, tc.m, tc.b)
		in := randKeys(4000, rand.New(rand.NewPCG(5, 5)))
		if _, err := Sort(ctx, emio.BuildFile(ctx.Disk(), "mem", in)); err != nil {
			t.Fatalf("M=%d B=%d: %v", tc.m, tc.b, err)
		}
		if ctx.Mem().Peak() > int64(tc.m) {
			t.Errorf("M=%d B=%d: peak %d over budget", tc.m, tc.b, ctx.Mem().Peak())
		}
	}
}

func TestFormRunsAreSortedAndComplete(t *testing.T) {
	ctx := mustCtx(t, 64, 8)
	in := randKeys(500, rand.New(rand.NewPCG(6, 6)))
	runs, err := FormRuns(ctx, emio.BuildFile(ctx.Disk(), "fr", in))
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for i, r := range runs {
		s := r.Snapshot()
		for j := 1; j < len(s); j++ {
			if emio.Less(s[j], s[j-1]) {
				t.Fatalf("run %d not sorted at %d", i, j)
			}
		}
		total += r.Len()
	}
	if total != 500 {
		t.Fatalf("runs hold %d of 500 elements", total)
	}
	// Run capacity is (M/B-2)*B = 48.
	for i, r := range runs[:len(runs)-1] {
		if r.Len() != 48 {
			t.Errorf("run %d has %d elements, want full 48", i, r.Len())
		}
	}
}

func TestMergeAllEmptyList(t *testing.T) {
	ctx := mustCtx(t, 64, 8)
	out, err := MergeAll(ctx, nil)
	if err != nil || out.Len() != 0 {
		t.Fatalf("MergeAll(nil) = len %d, err %v", out.Len(), err)
	}
}

func TestSortProperty(t *testing.T) {
	prop := func(keys []int64) bool {
		ctx, err := emio.NewCtx(emio.Config{M: 64, B: 8})
		if err != nil {
			return false
		}
		in := make([]emio.Elem, len(keys))
		for i, k := range keys {
			in[i] = emio.Elem{Key: k, Aux: int64(i)}
		}
		out, err := Sort(ctx, emio.BuildFile(ctx.Disk(), "p", in))
		if err != nil {
			return false
		}
		got := out.Snapshot()
		want := append([]emio.Elem(nil), in...)
		sort.Slice(want, func(i, j int) bool { return emio.Less(want[i], want[j]) })
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return ctx.Mem().Used() == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestMergeAllWithFanInCorrectAndCostlier(t *testing.T) {
	// A capped fan-in must still sort correctly and must cost strictly more
	// I/Os than the natural fan-in (extra merge passes).
	in := randKeys(4000, rand.New(rand.NewPCG(7, 7)))
	run := func(fan int) (*emio.File, int64) {
		ctx := mustCtx(t, 256, 16)
		f := emio.BuildFile(ctx.Disk(), "fan", in)
		ctx.Disk().ResetStats()
		runs, err := FormRuns(ctx, f)
		if err != nil {
			t.Fatal(err)
		}
		out, err := MergeAllWithFanIn(ctx, runs, fan)
		if err != nil {
			t.Fatal(err)
		}
		return out, ctx.Disk().Stats().Total()
	}
	out2, io2 := run(2)
	checkSorted(t, in, out2)
	outN, ioN := run(0)
	checkSorted(t, in, outN)
	if io2 <= ioN {
		t.Errorf("fan=2 cost %d <= natural %d", io2, ioN)
	}
}

func TestMergeAllWithFanInIgnoresSillyValues(t *testing.T) {
	// maxFan of 1 or negative falls back to the natural fan-in.
	ctx := mustCtx(t, 256, 16)
	in := randKeys(500, rand.New(rand.NewPCG(8, 8)))
	f := emio.BuildFile(ctx.Disk(), "s", in)
	runs, err := FormRuns(ctx, f)
	if err != nil {
		t.Fatal(err)
	}
	out, err := MergeAllWithFanIn(ctx, runs, 1)
	if err != nil {
		t.Fatal(err)
	}
	checkSorted(t, in, out)
}

func TestSortScratchFootprintLinear(t *testing.T) {
	// The sort's peak live disk footprint must stay within a small constant
	// of the input size (runs + one merge generation).
	ctx := mustCtx(t, 256, 16)
	n := 20000
	in := emio.BuildFile(ctx.Disk(), "fp", randKeys(n, rand.New(rand.NewPCG(9, 9))))
	ctx.Disk().ResetPeakLive()
	out, err := Sort(ctx, in)
	if err != nil {
		t.Fatal(err)
	}
	out.Release()
	inputBlocks := int64((n + 15) / 16)
	if peak := ctx.Disk().PeakLiveBlocks(); peak > 4*inputBlocks {
		t.Errorf("peak scratch %d blocks > 4x input (%d)", peak, inputBlocks)
	}
}
