package extsort

// Tests for the crash-safe checkpoint layer: journaled sorts must produce
// byte-identical output with identical logical I/O, resume must skip exactly
// the completed phases, and the disk-budget degradation must trade merge
// passes for footprint.

import (
	"errors"
	"math/rand/v2"
	"path/filepath"
	"sort"
	"syscall"
	"testing"

	"repro/internal/emio"
)

// ckHarness is a file-backed sort job at the extsort layer: disk, ctx,
// staged input, and checkpoint — the pieces the empart job layer wires up.
type ckHarness struct {
	disk *emio.Disk
	ctx  *emio.Ctx
	in   *emio.File
	ck   *Checkpoint
}

func startCkJob(t *testing.T, backing, journal string, m, b int, elems []emio.Elem) *ckHarness {
	t.Helper()
	d, err := emio.NewFileBackedDisk(backing, b)
	if err != nil {
		t.Fatal(err)
	}
	ctx, err := emio.NewCtxWithDisk(emio.Config{M: m, B: b}, d)
	if err != nil {
		t.Fatal(err)
	}
	in := emio.BuildFile(d, "in", elems)
	ck, err := CreateCheckpoint(journal)
	if err != nil {
		t.Fatal(err)
	}
	mf, err := in.Manifest()
	if err != nil {
		t.Fatal(err)
	}
	if err := d.SyncBacking(); err != nil {
		t.Fatal(err)
	}
	if err := ck.WriteBegin(int64(len(elems)), m, b); err != nil {
		t.Fatal(err)
	}
	if err := ck.WriteStage(mf); err != nil {
		t.Fatal(err)
	}
	return &ckHarness{disk: d, ctx: ctx, in: in, ck: ck}
}

func resumeCkJob(t *testing.T, backing, journal string, m, b int) *ckHarness {
	t.Helper()
	ck, err := OpenCheckpoint(journal)
	if err != nil {
		t.Fatal(err)
	}
	if !ck.Begun || ck.Stage == nil {
		t.Fatalf("journal %s has no staged input to resume", journal)
	}
	d, err := emio.NewFileBackedDiskResume(backing, b, emio.Pipeline{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, err := emio.NewCtxWithDisk(emio.Config{M: m, B: b}, d)
	if err != nil {
		t.Fatal(err)
	}
	in, err := d.AdoptFile(*ck.Stage, false)
	if err != nil {
		t.Fatal(err)
	}
	return &ckHarness{disk: d, ctx: ctx, in: in, ck: ck}
}

func sortedRef(elems []emio.Elem) []emio.Elem {
	want := append([]emio.Elem(nil), elems...)
	sort.Slice(want, func(i, j int) bool { return emio.Less(want[i], want[j]) })
	return want
}

func TestSortCheckpointedMatchesPlainSort(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 7))
	for _, n := range []int{0, 1, 64, 1000, 2000} {
		elems := randKeys(n, rng)

		// Plain sort on a memory disk is the reference.
		refCtx := mustCtx(t, 64, 8)
		refIn := emio.BuildFile(refCtx.Disk(), "in", elems)
		refCtx.Disk().ResetStats()
		refOut, err := Sort(refCtx, refIn)
		if err != nil {
			t.Fatalf("n=%d: reference sort: %v", n, err)
		}
		refStats := refCtx.Disk().Stats()
		want := refOut.Snapshot()

		dir := t.TempDir()
		h := startCkJob(t, filepath.Join(dir, "b.dat"), filepath.Join(dir, "j.journal"), 64, 8, elems)
		h.disk.ResetStats()
		out, err := SortCheckpointed(h.ctx, h.in, h.ck)
		if err != nil {
			t.Fatalf("n=%d: checkpointed sort: %v", n, err)
		}
		got := out.Snapshot()
		if len(got) != len(want) {
			t.Fatalf("n=%d: %d elems out, want %d", n, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("n=%d: output differs at %d: %v vs %v", n, i, got[i], want[i])
			}
		}
		// Journaling is physical fsync traffic only: the logical I/O of a
		// fresh checkpointed sort must be bit-identical to plain Sort.
		if st := h.disk.Stats(); st != refStats {
			t.Errorf("n=%d: checkpointed logical I/O %+v differs from plain sort %+v", n, st, refStats)
		}
		h.ck.Close()
		h.disk.Close()
	}
}

func TestSortCheckpointedResumesFromLastPhase(t *testing.T) {
	// M=64 B=8, n=1000: 125 input blocks; runs hold (M/B-2)·B = 48 elems
	// (6 blocks), so formation writes 125 blocks across 21 runs (ops 0-124);
	// merge fan-in (M-2B)/(B+4) = 4 gives three passes — pass 0 merges 20
	// runs and carries the 5-block tail singleton (120 writes, ops 125-244),
	// pass 1 writes 125 (ops 245-369), pass 2 writes 125 (ops 370-494). A
	// full sort writes 495 blocks. Kill the job at a scripted physical write
	// and check the resumed job performs exactly the writes of the
	// unfinished phases — completed runs and completed passes never repeat.
	const (
		m, b       = 64, 8
		n          = 1000
		fullWrites = 495
	)
	cases := []struct {
		name          string
		crashOp       int64 // physical write op that fails (post-staging)
		resumedWrites int64
		wantRuns      int  // journaled runs at crash time
		wantRunsDone  bool // run formation had committed
		wantLastPass  int  // last committed pass at crash time
	}{
		// Op 40 fails run 6 (ops 36-41) mid-write: six 6-block runs are
		// durable (288 elems), so resume re-scans from block 36 — 89
		// formation writes — then merges in full (370).
		{"mid-run-formation", 40, 459, 6, false, -1},
		// Op 150 is 25 writes into merge pass 0: all 21 runs durable, no
		// pass committed; resume redoes the whole merge (120 + 125 + 125).
		{"mid-first-merge-pass", 150, 370, 21, true, -1},
		// Op 300 is mid pass 1: pass 0 committed; resume runs passes 1-2.
		{"mid-middle-merge-pass", 300, 250, 21, true, 0},
		// Op 400 is mid pass 2: passes 0-1 committed; resume runs pass 2.
		{"mid-final-merge-pass", 400, 125, 21, true, 1},
	}
	rng := rand.New(rand.NewPCG(11, 11))
	elems := randKeys(n, rng)
	want := sortedRef(elems)

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			backing := filepath.Join(dir, "b.dat")
			journal := filepath.Join(dir, "j.journal")
			h := startCkJob(t, backing, journal, m, b, elems)

			// A permanent device error at the scripted op stands in for
			// SIGKILL: the journal and backing file are left exactly as a
			// crash at that write would leave them (the cmd-level crash
			// harness covers the real-SIGKILL variant).
			inj := emio.NewInjector(1)
			inj.FailWriteErr(tc.crashOp, syscall.EIO)
			h.disk.SetInjector(inj)
			if _, err := SortCheckpointed(h.ctx, h.in, h.ck); err == nil {
				t.Fatal("sort survived its scripted crash point")
			}
			h.ck.Close()
			h.disk.Close()

			r := resumeCkJob(t, backing, journal, m, b)
			if len(r.ck.Runs) != tc.wantRuns || r.ck.RunsDone != tc.wantRunsDone || r.ck.LastPass != tc.wantLastPass {
				t.Fatalf("journal state at crash: runs=%d runsDone=%v lastPass=%d, want %d/%v/%d",
					len(r.ck.Runs), r.ck.RunsDone, r.ck.LastPass, tc.wantRuns, tc.wantRunsDone, tc.wantLastPass)
			}
			r.disk.ResetStats()
			out, err := SortCheckpointed(r.ctx, r.in, r.ck)
			if err != nil {
				t.Fatalf("resumed sort: %v", err)
			}
			got := out.Snapshot()
			if len(got) != len(want) {
				t.Fatalf("resumed output has %d elems, want %d", len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("resumed output differs at %d: %v vs %v", i, got[i], want[i])
				}
			}
			if w := r.disk.Stats().Writes; w != tc.resumedWrites {
				t.Errorf("resumed job wrote %d blocks, want exactly %d (full sort writes %d; completed phases must not repeat)",
					w, tc.resumedWrites, fullWrites)
			}

			// Resuming the finished job is free: the done record adopts the
			// output with zero logical I/O.
			r.ck.Close()
			r.disk.Close()
			r2 := resumeCkJob(t, backing, journal, m, b)
			if r2.ck.Done == nil {
				t.Fatal("done record missing after completed resume")
			}
			r2.disk.ResetStats()
			out2, err := SortCheckpointed(r2.ctx, r2.in, r2.ck)
			if err != nil {
				t.Fatalf("second resume: %v", err)
			}
			if st := r2.disk.Stats(); st.Reads != 0 || st.Writes != 0 {
				t.Errorf("second resume performed I/O %+v, want none", st)
			}
			if out2.Len() != int64(n) {
				t.Errorf("second resume output length %d, want %d", out2.Len(), n)
			}
			r2.ck.Close()
			r2.disk.Close()
		})
	}
}

func TestSortCheckpointedEmptyInput(t *testing.T) {
	dir := t.TempDir()
	h := startCkJob(t, filepath.Join(dir, "b.dat"), filepath.Join(dir, "j.journal"), 64, 8, nil)
	out, err := SortCheckpointed(h.ctx, h.in, h.ck)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 0 {
		t.Errorf("empty sort produced %d elems", out.Len())
	}
	if h.ck.Done == nil {
		t.Error("empty sort left no done record")
	}
	h.ck.Close()
	h.disk.Close()
}

func TestBudgetDegradationTradesPassesForFootprint(t *testing.T) {
	// n=1000 at B=8 stages 125 input blocks and forms 125 run blocks: the
	// steady-state footprint is 250 blocks. A budget of 250 + 6 blocks leaves
	// 6 blocks of merge headroom, which degradeFanIn turns into fan-in 2
	// (each consuming reader holds lag+1 = 2 blocks, plus the output buffer):
	// the merge takes 4 passes instead of 2 but stays under the quota.
	const n = 1000
	rng := rand.New(rand.NewPCG(3, 3))
	elems := randKeys(n, rng)
	want := sortedRef(elems)

	plain := mustCtx(t, 64, 8)
	plainIn := emio.BuildFile(plain.Disk(), "in", elems)
	plain.Disk().ResetStats()
	if _, err := Sort(plain, plainIn); err != nil {
		t.Fatal(err)
	}
	plainWrites := plain.Disk().Stats().Writes

	ctx := mustCtx(t, 64, 8)
	d := ctx.Disk()
	in := emio.BuildFile(d, "in", elems)
	budget := (250 + 6) * d.BlockBytes()
	d.SetDiskBudget(budget)
	d.ResetStats()
	out, err := Sort(ctx, in)
	if err != nil {
		t.Fatalf("budgeted sort: %v", err)
	}
	got := out.Snapshot()
	if len(got) != len(want) {
		t.Fatalf("budgeted sort output has %d elems, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("budgeted output differs at %d: %v vs %v", i, got[i], want[i])
		}
	}
	if peak := d.PeakDiskBytes(); peak > budget {
		t.Errorf("peak disk %d exceeded budget %d", peak, budget)
	}
	if w := d.Stats().Writes; w <= plainWrites {
		t.Errorf("degraded sort wrote %d blocks vs plain %d; expected extra merge passes", w, plainWrites)
	}
}

func TestImpossibleBudgetFailsTyped(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 5))
	elems := randKeys(1000, rng)
	ctx := mustCtx(t, 64, 8)
	d := ctx.Disk()
	in := emio.BuildFile(d, "in", elems)
	// 100 blocks cannot even hold the formed runs (125 blocks): degradation
	// has nothing to shrink, so the quota must reject with a typed error.
	d.SetDiskBudget(100 * d.BlockBytes())
	_, err := Sort(ctx, in)
	if err == nil {
		t.Fatal("sort under an impossible budget succeeded")
	}
	var re *emio.ResourceError
	if !errors.As(err, &re) {
		t.Fatalf("got %T (%v), want *ResourceError", err, err)
	}
	if !errors.Is(err, emio.ErrDiskBudget) {
		t.Errorf("budget failure does not unwrap to ErrDiskBudget: %v", err)
	}
}
