// Package extsort implements external merge sort, the
// O((N/B) lg_{M/B}(N/B))-I/O sorting algorithm of Aggarwal and Vitter that
// serves as the baseline against which every specialised algorithm in the
// paper is compared (sorting trivially solves all six Table-1 problems), and
// as the oracle inside verifiers.
//
// Phase one forms sorted runs of about M elements by repeated in-memory
// sorting; phase two merges runs with the largest fan-in that leaves room for
// one input buffer per run, one output buffer, and the tournament tree.
package extsort

import (
	"fmt"

	"repro/internal/emio"
	"repro/internal/inmem"
	"repro/internal/mmheap"
)

// Sort returns a new file holding the elements of in sorted by (Key, Aux).
// The input file is left untouched. The cost is (2N/B)(1 + ceil(lg_f(N/M)))
// I/Os where f is the merge fan-in, i.e. Theta((N/B) lg_{M/B}(N/B)).
//
// Sorting needs room to merge: M must accommodate at least two input buffers
// plus an output buffer and the tournament state, so configurations tighter
// than roughly M >= 3B fail with emio.ErrMemoryBudget.
func Sort(ctx *emio.Ctx, in *emio.File) (*emio.File, error) {
	sp := ctx.StartSpan("extsort/sort", emio.AttrInt("n", in.Len()))
	defer sp.End()
	runs, err := FormRuns(ctx, in)
	if err != nil {
		return nil, err
	}
	return MergeAll(ctx, runs)
}

// FormRuns splits in into sorted runs of up to (M/B - 1)*B elements each,
// costing one full read scan plus one full write scan. The returned files are
// owned by the caller (MergeAll consumes and releases them).
func FormRuns(ctx *emio.Ctx, in *emio.File) ([]*emio.File, error) {
	return FormRunsObserved(ctx, in, nil)
}

// FormRunsObserved is FormRuns with a hook: when observe is non-nil it is
// called with each sorted chunk just before the chunk is written out, at no
// extra I/O. The parallel engine uses it to count, per run, how many
// elements fall below each range splitter (one binary search per splitter on
// the already-sorted chunk), which is what lets the later range merges read
// exact sub-ranges of each run. The callback must not retain or mutate the
// slice.
func FormRunsObserved(ctx *emio.Ctx, in *emio.File, observe func(sorted []emio.Elem)) ([]*emio.File, error) {
	return formRuns(ctx, in, 0, observe, nil)
}

// formRuns is the run-formation engine behind FormRuns and the checkpointed
// sort: it starts the input scan at block startBlk (resume skips the blocks
// already consumed by journaled runs), and calls onRun after each run file is
// fully written (the checkpoint layer journals a durable manifest there).
func formRuns(ctx *emio.Ctx, in *emio.File, startBlk int, observe func(sorted []emio.Elem), onRun func(run *emio.File) error) (runs []*emio.File, err error) {
	sp := ctx.StartSpan("extsort/form-runs", emio.AttrInt("n", in.Len()))
	defer func() {
		sp.SetAttr("runs", int64(len(runs)))
		sp.End()
	}()
	b := ctx.B()
	// Leave one block for the run writer and one block of slack for a
	// caller-held stream buffer (composite algorithms keep an output writer
	// open across a sort).
	runBlocks := ctx.M()/b - 2
	if runBlocks < 1 {
		runBlocks = 1
	}
	runCap := runBlocks * b
	buf, err := ctx.AllocElems(runCap)
	if err != nil {
		return nil, err
	}
	defer ctx.FreeElems(buf)

	nb := in.NumBlocks()
	for blk := startBlk; blk < nb; {
		fill := 0
		for blk < nb && fill+b <= runCap {
			n, err := in.ReadBlockSequential(blk, buf[fill:fill+b])
			if err != nil {
				return nil, err
			}
			fill += n
			blk++
		}
		if fill == 0 {
			break
		}
		// The in-memory sort of an M-sized chunk is the longest I/O-free
		// stretch in the whole algorithm; poll cancellation before entering
		// it so a cancel never waits a full chunk sort.
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		chunk := buf[:fill]
		inmem.Sort(chunk)
		if observe != nil {
			observe(chunk)
		}
		run := ctx.Scratch("run")
		w, err := emio.NewWriter(ctx, run)
		if err != nil {
			return nil, err
		}
		for _, e := range chunk {
			w.Append(e)
		}
		if err := w.Close(); err != nil {
			return nil, err
		}
		if onRun != nil {
			if err := onRun(run); err != nil {
				return nil, err
			}
		}
		runs = append(runs, run)
	}
	return runs, nil
}

// MergeAll repeatedly merges the given sorted runs with maximal fan-in until
// a single sorted file remains, releasing consumed runs as it goes. An empty
// run list yields an empty file.
func MergeAll(ctx *emio.Ctx, runs []*emio.File) (*emio.File, error) {
	return MergeAllWithFanIn(ctx, runs, 0)
}

// MergeAllWithFanIn is MergeAll with the fan-in capped at maxFan (0 or
// negative means the natural memory-derived fan-in). Capping below the
// natural value adds merge passes; it exists for the lg_{M/B}-factor ablation
// study, not for production use.
func MergeAllWithFanIn(ctx *emio.Ctx, runs []*emio.File, maxFan int) (*emio.File, error) {
	if len(runs) == 0 {
		return ctx.Scratch("sorted"), nil
	}
	fan := mergeFanIn(ctx)
	if maxFan > 1 && maxFan < fan {
		fan = maxFan
	}
	// Under a disk-byte budget the merge degrades instead of failing: input
	// runs are read with consuming readers (each reclaimed block funds a
	// block of merge output, dropping the peak from ~3N to ~2N plus the
	// consume lag), and the fan-in shrinks until the transient unreclaimed
	// window fits the remaining headroom. A narrower fan means more passes —
	// still within the paper's O((N/B) lg_{M/B}(N/B)) bound, just with a
	// larger lg base denominator — which is the intended graceful trade.
	opt := mergeOpts{release: true}
	if d := ctx.Disk(); d.DiskBudget() > 0 {
		opt.consume = true
	}
	pass := int64(0)
	for len(runs) > 1 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if opt.consume {
			fan = degradeFanIn(ctx.Disk(), fan)
		}
		psp := ctx.StartSpan("extsort/merge-pass",
			emio.AttrInt("pass", pass), emio.AttrInt("runs", int64(len(runs))), emio.AttrInt("fan", int64(fan)))
		var next []*emio.File
		for lo := 0; lo < len(runs); lo += fan {
			group := runs[lo:min(lo+fan, len(runs))]
			if len(group) == 1 {
				next = append(next, group[0])
				continue
			}
			merged, err := mergeGroup(ctx, group, opt)
			if err != nil {
				psp.End()
				return nil, err
			}
			next = append(next, merged)
		}
		psp.End()
		runs = next
		pass++
	}
	return runs[0], nil
}

// degradeFanIn shrinks the merge fan-in until the transient footprint of a
// consuming merge — fan·(lag+1) unreclaimed input blocks plus one output
// buffer — fits the disk budget's remaining headroom, never below 2. If even
// a binary merge does not fit, the merge runs anyway and surfaces the
// budget's *ResourceError at the first rejected append: degradation is
// best-effort, the quota is the authority.
func degradeFanIn(d *emio.Disk, fan int) int {
	headroom := d.DiskBudget() - d.DiskBytes()
	lag := d.ConsumeLag()
	bb := d.BlockBytes()
	for fan > 2 && (int64(fan)*(lag+1)+1)*bb > headroom {
		fan--
	}
	return fan
}

// mergeFanIn picks the merge width: each input run needs a B-element reader
// buffer, the merger needs about two words per (power-of-two padded) source,
// one output buffer must remain, and one further block is left as slack for a
// caller-held stream buffer. f = (M - 2B) / (B + 4), at least 2.
func mergeFanIn(ctx *emio.Ctx) int {
	f := (ctx.M() - 2*ctx.B()) / (ctx.B() + 4)
	if f < 2 {
		f = 2
	}
	return f
}

// mergeOpts tunes one group merge. The default (zero) value neither releases
// nor consumes its inputs — the checkpointed merge defers releases until the
// pass record is durable. The plain merge releases consumed groups eagerly,
// and adds consuming readers under a disk budget.
type mergeOpts struct {
	release bool // release input files once the merged output is written
	consume bool // reclaim input blocks behind the read cursors (Reader.Consume)
}

// mergeGroup merges the given sorted runs into one new file, releasing them
// afterwards when opt.release is set.
func mergeGroup(ctx *emio.Ctx, group []*emio.File, opt mergeOpts) (*emio.File, error) {
	readers := make([]*emio.Reader, 0, len(group))
	closeAll := func() {
		for _, r := range readers {
			r.Close()
		}
	}
	srcs := make([]mmheap.Source, 0, len(group))
	var total int64
	for _, f := range group {
		r, err := emio.NewReader(ctx, f)
		if err != nil {
			closeAll()
			return nil, err
		}
		if opt.consume {
			r.Consume()
		}
		readers = append(readers, r)
		srcs = append(srcs, r.Next)
		total += f.Len()
	}
	m, err := mmheap.New(ctx, srcs)
	if err != nil {
		closeAll()
		return nil, err
	}
	defer m.Close()
	out := ctx.Scratch("merge")
	w, err := emio.NewWriter(ctx, out)
	if err != nil {
		closeAll()
		return nil, err
	}
	var n int64
	for {
		e, ok := m.Next()
		if !ok {
			break
		}
		w.Append(e)
		n++
	}
	for _, r := range readers {
		if err := r.Err(); err != nil {
			closeAll()
			w.Close()
			return nil, err
		}
	}
	closeAll()
	if err := w.Close(); err != nil {
		return nil, err
	}
	if n != total {
		return nil, fmt.Errorf("extsort: merged %d of %d elements", n, total)
	}
	if opt.release {
		for _, f := range group {
			f.Release()
		}
	}
	return out, nil
}
