package extsort

import (
	"math/rand/v2"
	"testing"

	"repro/internal/emio"
)

// ceilLogInt returns the smallest p with base^p >= x (x >= 1, base >= 2).
func ceilLogInt(base, x int64) int64 {
	p := int64(0)
	for v := int64(1); v < x; v *= base {
		p++
	}
	return p
}

// TestMergePassCountMatchesBound pins the paper's pass bound with the tracer:
// external merge sort performs exactly ceil(lg_fan(runs)) merge passes, and
// that count never exceeds the Theorem-level ceil(lg_{M/B}(N/B)) formula. The
// trace makes the pass structure directly observable — one
// "extsort/merge-pass" span per pass, all siblings under "extsort/sort".
func TestMergePassCountMatchesBound(t *testing.T) {
	cases := []struct {
		m, b, n int
	}{
		{m: 256, b: 32, n: 1 << 15},   // M/B=8: 171 runs, fan 5 -> 4 passes = theory
		{m: 1024, b: 128, n: 1 << 16}, // M/B=8: 86 runs, fan 5 -> 3 passes = theory
		{m: 4096, b: 32, n: 1 << 18},  // M/B=128: wide fan -> 1 pass < theory 2
		{m: 128, b: 16, n: 1 << 12},   // tiny machine
	}
	for _, tc := range cases {
		ctx := mustCtx(t, tc.m, tc.b)
		tr := emio.NewTracer()
		ctx.SetTracer(tr)
		rng := rand.New(rand.NewPCG(7, 11))
		in := emio.BuildFile(ctx.Disk(), "in", randKeys(tc.n, rng))

		out, err := Sort(ctx, in)
		if err != nil {
			t.Fatalf("M=%d B=%d N=%d: %v", tc.m, tc.b, tc.n, err)
		}
		out.Release()

		// Implementation closed form: runs formed at (M/B-2)*B elements each,
		// merged with fan-in max(2, (M-2B)/(B+4)).
		runCap := int64((tc.m/tc.b - 2) * tc.b)
		runs := (int64(tc.n) + runCap - 1) / runCap
		fan := int64((tc.m - 2*tc.b) / (tc.b + 4))
		if fan < 2 {
			fan = 2
		}
		wantPasses := ceilLogInt(fan, runs)

		passes := tr.Find("extsort/merge-pass")
		if int64(len(passes)) != wantPasses {
			t.Errorf("M=%d B=%d N=%d: %d merge passes, closed form wants %d",
				tc.m, tc.b, tc.n, len(passes), wantPasses)
		}
		// The theorem-level bound ceil(lg_{M/B}(N/B)) always dominates.
		theory := ceilLogInt(int64(tc.m/tc.b), int64(tc.n/tc.b))
		if int64(len(passes)) > theory {
			t.Errorf("M=%d B=%d N=%d: %d passes exceed ceil(lg_{M/B}(N/B)) = %d",
				tc.m, tc.b, tc.n, len(passes), theory)
		}
		// Every pass span must be a direct child of the sort span, with the
		// runs attribute strictly decreasing toward 1.
		sorts := tr.Find("extsort/sort")
		if len(sorts) != 1 {
			t.Fatalf("found %d extsort/sort spans", len(sorts))
		}
		prevRuns := runs + 1
		for _, psp := range passes {
			var nRuns int64
			for _, a := range psp.Attrs {
				if a.Key == "runs" {
					nRuns = a.Val.(int64)
				}
			}
			if nRuns >= prevRuns {
				t.Errorf("pass runs not decreasing: %d after %d", nRuns, prevRuns)
			}
			prevRuns = nRuns
		}
		emio.RequireNoLeaks(t, ctx)
	}
}

// TestSortSpanIOAccounting asserts the span-tree I/O invariant on a real
// sort: form-runs plus the merge passes account for every block transfer of
// the whole sort, exactly.
func TestSortSpanIOAccounting(t *testing.T) {
	ctx := mustCtx(t, 256, 32)
	tr := emio.NewTracer()
	ctx.SetTracer(tr)
	rng := rand.New(rand.NewPCG(3, 5))
	in := emio.BuildFile(ctx.Disk(), "in", randKeys(1<<13, rng))
	out, err := Sort(ctx, in)
	if err != nil {
		t.Fatal(err)
	}
	out.Release()

	root := tr.Find("extsort/sort")[0]
	var sum int64
	for _, ch := range root.Children {
		sum += ch.IO.Total()
	}
	if sum != root.IO.Total() {
		t.Errorf("children I/O %d != sort span I/O %d", sum, root.IO.Total())
	}
	if got := ctx.Disk().Stats().Total(); got != root.IO.Total() {
		t.Errorf("sort span I/O %d != disk total %d", root.IO.Total(), got)
	}
}
