package extsort

// Crash-safe checkpointing for the external merge sort. A Checkpoint wraps
// an emio.Journal (CRC-framed, torn-tail tolerant) and records the sort's
// phase structure as it becomes durable:
//
//	begin  N/M/B of the job (written by the job layer, validated on resume)
//	stage  manifest of the staged input file
//	run    manifest of one completed sorted run (group-committed, see below)
//	runs-done  run formation finished; the run set is exactly the journal's
//	pass   manifests of one completed merge pass's outputs, after sync
//	done   manifest of the final sorted output
//
// The invariant behind resume correctness: a manifest is journaled only
// AFTER the blocks it points at have reached at least the same durability
// domain (File.Manifest flushes the write pipeline into the page cache;
// FullSync barriers fsync the backing file first), and the inputs a pass
// consumed are released only AFTER the pass record is committed. A crash at
// any instant therefore leaves the journal describing only intact data, and
// SortCheckpointed resumes from the last completed phase: adopted runs skip
// the input blocks they consumed, an adopted pass restarts the merge at the
// next pass, and a completed pass is never repeated. Orphaned partial
// output (a run or merge output that was being written at the crash) is
// simply not in the journal; its extents sit above the adopted allocation
// floor and are overwritten by the resumed job.
//
// Two durability grades select what "committed" means. The default targets
// the process-crash model (SIGKILL, OOM, panic — the model the crash
// harness actually tests): the page cache outlives the process, so both the
// backing-file writes and the journal appends are visible to a resumed
// process the moment the syscalls return, in program order — no fsync is
// needed anywhere, and checkpoint wall overhead is just the manifest and
// journal bookkeeping. FullSync upgrades to the power-loss model: every
// phase barrier fsyncs the backing file and then the journal, so a
// committed record never outlives its data even across a power cut — at
// the price of waiting out the device at each barrier (BENCH_pr10.json
// prices both grades). Fsyncs under FullSync are paid per phase, not per
// record — group commit: run records are appended lazily during formation
// and made durable by the runs-done barrier's fsync; each merge pass is one
// barrier, and the final pass commits through the done record directly (no
// separate pass record). In either grade the torn-tail rule holds: records
// lost to a crash merely redo that phase's work, and armed block checksums
// ride inside the manifests, so default-grade data torn by a power cut is
// detected on first read rather than silently returned.
//
// Checkpointing needs a file-backed disk (manifests describe backing-file
// extents) and trades the disk-budget consuming-merge degradation away:
// consumed blocks cannot be re-read after a crash, so the checkpointed merge
// keeps every input of the current pass live until the pass commits.

import (
	"encoding/json"
	"fmt"

	"repro/internal/emio"
)

// ckRecord is one journal record. Kind selects which of the optional fields
// are meaningful.
type ckRecord struct {
	Kind  string              `json:"kind"`
	N     int64               `json:"n,omitempty"`
	M     int                 `json:"m,omitempty"`
	B     int                 `json:"b,omitempty"`
	Pass  int                 `json:"pass,omitempty"`
	File  *emio.FileManifest  `json:"file,omitempty"`
	Files []emio.FileManifest `json:"files,omitempty"`
}

const (
	ckBegin    = "begin"
	ckStage    = "stage"
	ckRun      = "run"
	ckRunsDone = "runs-done"
	ckPass     = "pass"
	ckDone     = "done"
)

// Checkpoint is the durable phase manifest of one sort job: a journal handle
// plus the state replayed from it. A fresh Checkpoint has zero state; an
// opened one reflects the last completed phase of the crashed job.
type Checkpoint struct {
	j *emio.Journal

	// FullSync selects the power-loss durability grade: phase barriers fsync
	// the backing file and then the journal. Off (the default), nothing is
	// ever fsync'd — commit means "reached the page cache", which is full
	// durability under the process-crash model; see the package comment.
	FullSync bool

	Begun     bool                // begin record seen
	N         int64               // job input size from the begin record
	M, B      int                 // machine shape from the begin record
	Stage     *emio.FileManifest  // staged input, nil until journaled
	Runs      []emio.FileManifest // completed sorted runs, in formation order
	RunsDone  bool                // run formation completed
	LastPass  int                 // highest completed merge pass, -1 if none
	PassFiles []emio.FileManifest // outputs of LastPass
	Done      *emio.FileManifest  // final output, nil until the sort finished
}

// CreateCheckpoint starts a fresh (truncated) checkpoint journal at path.
func CreateCheckpoint(path string) (*Checkpoint, error) {
	j, err := emio.CreateJournal(path)
	if err != nil {
		return nil, err
	}
	return &Checkpoint{j: j, LastPass: -1}, nil
}

// OpenCheckpoint replays the checkpoint journal at path, truncating any torn
// tail, and returns the reconstructed phase state ready for further appends.
func OpenCheckpoint(path string) (*Checkpoint, error) {
	j, payloads, err := emio.OpenJournal(path)
	if err != nil {
		return nil, err
	}
	ck := &Checkpoint{j: j, LastPass: -1}
	for i, p := range payloads {
		var rec ckRecord
		if err := json.Unmarshal(p, &rec); err != nil {
			j.Close()
			return nil, fmt.Errorf("extsort: checkpoint %s record %d: %w", path, i, err)
		}
		switch rec.Kind {
		case ckBegin:
			ck.Begun, ck.N, ck.M, ck.B = true, rec.N, rec.M, rec.B
		case ckStage:
			ck.Stage = rec.File
		case ckRun:
			ck.Runs = append(ck.Runs, *rec.File)
		case ckRunsDone:
			ck.RunsDone = true
		case ckPass:
			ck.LastPass, ck.PassFiles = rec.Pass, rec.Files
		case ckDone:
			ck.Done = rec.File
		default:
			j.Close()
			return nil, fmt.Errorf("extsort: checkpoint %s record %d: unknown kind %q", path, i, rec.Kind)
		}
	}
	return ck, nil
}

// Path returns the journal's path.
func (ck *Checkpoint) Path() string { return ck.j.Path() }

// Close closes the journal (the file stays for a later resume; delete it
// when the job's output has been consumed).
func (ck *Checkpoint) Close() error { return ck.j.Close() }

// append writes a barrier record: under FullSync the journal is fsync'd so
// the record (and every lazy record before it — group commit) survives power
// loss; in the default grade the append commits by reaching the page cache,
// which is all the process-crash model needs.
func (ck *Checkpoint) append(rec ckRecord) error {
	if err := ck.appendLazy(rec); err != nil {
		return err
	}
	return ck.syncJournal()
}

// appendLazy writes the record without an fsync. The next barrier append
// makes it power-loss durable under FullSync; it is already process-crash
// durable the moment WriteAt returns.
func (ck *Checkpoint) appendLazy(rec ckRecord) error {
	p, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	return ck.j.AppendLazy(p)
}

// syncJournal is the journal half of a phase barrier: an fsync under
// FullSync, nothing otherwise. Skipping it in the default grade matters even
// though the journal file is tiny — on ext4's ordered mode an fsync forces a
// filesystem-journal commit that drags every dirty newly-allocated page of
// the BACKING file with it, turning a "cheap" metadata fsync into a full
// data flush.
func (ck *Checkpoint) syncJournal() error {
	if ck.FullSync {
		return ck.j.Sync()
	}
	return nil
}

// syncData is the data half of a phase barrier, placed before the record
// append: an fsync of the backing file under FullSync (power-loss grade),
// nothing otherwise — in the process-crash grade the page cache already
// guarantees SIGKILL-safe ordering, and even an "async" writeback kick here
// would block the algorithm thread on a congested device queue (under
// FullSync the job layer's background flusher overlaps that writeback with
// computation instead).
func (ck *Checkpoint) syncData(d *emio.Disk) error {
	if ck.FullSync {
		return d.SyncBacking()
	}
	return nil
}

// WriteBegin journals the job shape. The job layer writes it first so resume
// can refuse a configuration mismatch (a different M or B changes the run
// structure and would corrupt the resumed plan).
func (ck *Checkpoint) WriteBegin(n int64, m, b int) error {
	ck.Begun, ck.N, ck.M, ck.B = true, n, m, b
	return ck.append(ckRecord{Kind: ckBegin, N: n, M: m, B: b})
}

// WriteStage journals the staged input's manifest. Call only after the
// staging writes are durable (Disk.SyncBacking).
func (ck *Checkpoint) WriteStage(m emio.FileManifest) error {
	ck.Stage = &m
	return ck.append(ckRecord{Kind: ckStage, File: &m})
}

func (ck *Checkpoint) writeRun(m emio.FileManifest) error {
	ck.Runs = append(ck.Runs, m)
	return ck.appendLazy(ckRecord{Kind: ckRun, File: &m})
}

// writeRunsDone is the formation barrier: a barrier append, which under
// FullSync commits every lazily journaled run record along with itself.
func (ck *Checkpoint) writeRunsDone() error {
	ck.RunsDone = true
	return ck.append(ckRecord{Kind: ckRunsDone})
}

func (ck *Checkpoint) writePass(pass int, files []emio.FileManifest) error {
	ck.LastPass, ck.PassFiles = pass, files
	return ck.append(ckRecord{Kind: ckPass, Pass: pass, Files: files})
}

func (ck *Checkpoint) writeDone(m emio.FileManifest) error {
	ck.Done = &m
	return ck.append(ckRecord{Kind: ckDone, File: &m})
}

// SortCheckpointed is Sort with durable phase checkpoints: every completed
// run, every completed merge pass and the final output are journaled through
// ck, so a process killed mid-sort resumes from the last completed phase
// instead of restarting. A nil ck degrades to plain Sort. The logical I/O of
// a fresh checkpointed sort is identical to Sort's (journaling is physical
// fsync traffic, not block I/O); a resumed sort performs only the I/O of the
// phases that had not completed.
func SortCheckpointed(ctx *emio.Ctx, in *emio.File, ck *Checkpoint) (*emio.File, error) {
	if ck == nil {
		return Sort(ctx, in)
	}
	sp := ctx.StartSpan("extsort/sort-checkpointed", emio.AttrInt("n", in.Len()))
	defer sp.End()
	d := ctx.Disk()

	// Fully finished before the crash: adopt the output, no I/O to redo.
	if ck.Done != nil {
		return d.AdoptFile(*ck.Done, true)
	}

	// Mid-merge: adopt the outputs of the last completed pass and keep
	// merging from the next pass. Earlier passes are never repeated.
	if ck.LastPass >= 0 {
		runs := make([]*emio.File, 0, len(ck.PassFiles))
		for _, m := range ck.PassFiles {
			f, err := d.AdoptFile(m, true)
			if err != nil {
				return nil, err
			}
			runs = append(runs, f)
		}
		return mergeCheckpointed(ctx, runs, ck, ck.LastPass+1)
	}

	// Run formation, possibly partial: adopt the journaled runs and resume
	// the input scan after the blocks they consumed. Runs are cut from the
	// input in block order, so the completed runs' element count determines
	// the restart block exactly (a partial block can only be the input's
	// last, in which case formation had finished).
	var runs []*emio.File
	var consumed int64
	for i := range ck.Runs {
		f, err := d.AdoptFile(ck.Runs[i], true)
		if err != nil {
			return nil, err
		}
		runs = append(runs, f)
		consumed += ck.Runs[i].N
	}
	if !ck.RunsDone {
		b := int64(ctx.B())
		startBlk := int((consumed + b - 1) / b)
		more, err := formRuns(ctx, in, startBlk, nil, func(run *emio.File) error {
			// Lazy record: Manifest drains the run's pending writes so the
			// extents are final; any fsync pair is deferred to the runs-done
			// barrier below (group commit).
			m, err := run.Manifest()
			if err != nil {
				return err
			}
			return ck.writeRun(m)
		})
		if err != nil {
			return nil, err
		}
		runs = append(runs, more...)
		if err := ck.syncData(d); err != nil {
			return nil, err
		}
		if err := ck.writeRunsDone(); err != nil {
			return nil, err
		}
	}
	return mergeCheckpointed(ctx, runs, ck, 0)
}

// mergeCheckpointed is the journaled twin of MergeAllWithFanIn: identical
// logical merge structure, but each pass commits atomically — outputs are
// synced and journaled as one pass record, and only then are the pass's
// consumed inputs released. Runs carried unmerged into the next pass
// (singleton tail groups) appear in the pass record too, so the record is
// the complete run set of the next pass.
func mergeCheckpointed(ctx *emio.Ctx, runs []*emio.File, ck *Checkpoint, startPass int) (*emio.File, error) {
	d := ctx.Disk()
	// finish commits the final output: sync the data, journal the done
	// record, and only then release whatever the last pass consumed — the
	// done record doubles as that pass's commit, saving a redundant
	// sync+fsync pair on every job.
	finish := func(out *emio.File, consumed []*emio.File) (*emio.File, error) {
		m, err := out.Manifest()
		if err != nil {
			return nil, err
		}
		if err := ck.syncData(d); err != nil {
			return nil, err
		}
		if err := ck.writeDone(m); err != nil {
			return nil, err
		}
		for _, f := range consumed {
			f.Release()
		}
		return out, nil
	}
	if len(runs) == 0 {
		return finish(ctx.Scratch("sorted"), nil)
	}
	fan := mergeFanIn(ctx)
	pass := startPass
	for len(runs) > 1 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		psp := ctx.StartSpan("extsort/merge-pass",
			emio.AttrInt("pass", int64(pass)), emio.AttrInt("runs", int64(len(runs))), emio.AttrInt("fan", int64(fan)))
		var next []*emio.File
		for lo := 0; lo < len(runs); lo += fan {
			group := runs[lo:min(lo+fan, len(runs))]
			if len(group) == 1 {
				next = append(next, group[0])
				continue
			}
			merged, err := mergeGroup(ctx, group, mergeOpts{})
			if err != nil {
				psp.End()
				return nil, err
			}
			next = append(next, merged)
		}
		if len(next) == 1 {
			// Final pass: commit through the done record instead of a pass
			// record; its inputs stay live until done is durable.
			consumed := make([]*emio.File, 0, len(runs))
			for _, f := range runs {
				if f != next[0] {
					consumed = append(consumed, f)
				}
			}
			psp.End()
			return finish(next[0], consumed)
		}
		// Commit the pass: sync outputs, journal their manifests as one
		// record, and only then release the inputs this pass consumed.
		manifests := make([]emio.FileManifest, len(next))
		for i, f := range next {
			m, err := f.Manifest()
			if err != nil {
				psp.End()
				return nil, err
			}
			manifests[i] = m
		}
		if err := ck.syncData(d); err != nil {
			psp.End()
			return nil, err
		}
		if err := ck.writePass(pass, manifests); err != nil {
			psp.End()
			return nil, err
		}
		carried := make(map[*emio.File]bool, len(next))
		for _, f := range next {
			carried[f] = true
		}
		for _, f := range runs {
			if !carried[f] {
				f.Release()
			}
		}
		psp.End()
		runs = next
		pass++
	}
	return finish(runs[0], nil)
}
