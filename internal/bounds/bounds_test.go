package bounds

import (
	"math"
	"testing"

	"repro/internal/emio"
	"repro/internal/extsort"
	"repro/internal/workload"
)

var mc = Machine{M: 1 << 20, B: 1 << 7}

func TestLgClamp(t *testing.T) {
	if got := Lg(2, 0.5); got != 1 {
		t.Errorf("Lg(2, 0.5) = %v, want clamp 1", got)
	}
	if got := Lg(2, 8); got != 3 {
		t.Errorf("Lg(2, 8) = %v, want 3", got)
	}
	if got := Lg(2, -1); got != 1 {
		t.Errorf("Lg(2, -1) = %v, want 1", got)
	}
	if got := Lg(4, 16); got != 2 {
		t.Errorf("Lg(4, 16) = %v, want 2", got)
	}
}

func TestLgPanicsOnBadBase(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Lg(1, x) did not panic")
		}
	}()
	Lg(1, 10)
}

func TestSortBoundValues(t *testing.T) {
	// N = M: one memory load, lg term clamps to 1 -> exactly one scan.
	if got, want := mc.Sort(mc.M), float64(mc.M)/float64(mc.B); got != want {
		t.Errorf("Sort(M) = %v, want %v", got, want)
	}
	// Doubling N at the clamp boundary grows the bound superlinearly.
	if mc.Sort(1<<30) <= 2*mc.Sort(1<<29) {
		t.Error("Sort not superlinear past the clamp")
	}
}

func TestMultiSelectVsMultiPartitionSeparation(t *testing.T) {
	// The separation shows for M/B < K <= B * (M/B): multi-selection's
	// lg(K/B) clamps to 1 (linear) while multi-partition pays lg K > 1.
	sep := Machine{M: 1 << 14, B: 1 << 10} // M/B = 16
	n := int64(1 << 30)
	k := sep.B // K = B: lg_{16}(1024) = 2.5 vs clamp(lg_{16}(1)) = 1
	ms := sep.MultiSelect(n, k)
	mp := sep.MultiPartition(n, k)
	if ms != sep.scans(n) {
		t.Errorf("MultiSelect(K=B) = %v, want linear %v", ms, sep.scans(n))
	}
	if mp < 2*ms {
		t.Errorf("no separation: mp=%v ms=%v", mp, ms)
	}
	// For large K the two coincide (same lg argument up to the B shift).
	k = n / sep.B
	ratio := sep.MultiPartition(n, k) / sep.MultiSelect(n, k)
	if ratio > 2 {
		t.Errorf("large-K ratio %v, want near 1", ratio)
	}
}

func TestSplittersRightSublinear(t *testing.T) {
	n := int64(1 << 34)
	got := mc.SplittersRight(4, 1<<10) // a=4, K=1024
	if scan := mc.scans(n); got >= scan {
		t.Errorf("right splitters bound %v not sublinear vs scan %v", got, scan)
	}
	// And it is independent of N entirely.
	if mc.SplittersRight(4, 1<<10) != got {
		t.Error("right splitters bound not N-free")
	}
}

func TestSplittersLeftMonotoneInB(t *testing.T) {
	n := int64(1 << 30)
	prev := math.Inf(1)
	for _, b := range []int64{n / 1024, n / 64, n / 4, n / 2} {
		v := mc.SplittersLeft(n, b)
		if v > prev {
			t.Errorf("left splitters bound increased with b: %v after %v", v, prev)
		}
		prev = v
	}
}

func TestPartitionLeftKFree(t *testing.T) {
	// The left-grounded partitioning bound takes no K at all — the paper's
	// observation that K has no effect. (Compile-time fact; check values.)
	n := int64(1 << 28)
	if mc.PartitionLeft(n, n/16) <= 0 {
		t.Error("nonpositive bound")
	}
}

func TestTwoSidedBoundsSandwich(t *testing.T) {
	n := int64(1 << 28)
	k, a, b := int64(1<<12), int64(1<<10), n/(1<<10)
	lb := mc.SplittersTwoSidedLB(n, k, a, b)
	ub := mc.SplittersTwoSidedUB(n, k, a, b)
	if !(lb <= ub && ub <= 2*lb) {
		t.Errorf("two-sided splitters: lb=%v ub=%v, want lb<=ub<=2lb", lb, ub)
	}
	plb := mc.PartitionTwoSidedLB(n, b)
	pub := mc.PartitionTwoSidedUB(n, k, a, b)
	if plb > pub {
		t.Errorf("two-sided partitioning: lb=%v > ub=%v", plb, pub)
	}
}

func TestPartitionRightBounds(t *testing.T) {
	n := int64(1 << 28)
	if lb, ub := mc.PartitionRightLB(n), mc.PartitionRightUB(n, 1<<10, 4); lb > ub {
		t.Errorf("right partitioning lb=%v > ub=%v", lb, ub)
	}
}

func TestFloorsPositiveAndOrdered(t *testing.T) {
	n := int64(1 << 26)
	if mc.HardPermutationsLg2(n) <= 0 || mc.ReadFanoutLg2() <= 0 {
		t.Fatal("degenerate counting quantities")
	}
	// The exact sort floor is below the asymptotic sort bound at real sizes.
	if f, bnd := mc.SortFloor(n), mc.Sort(n); f <= 0 || f > bnd*4 {
		t.Errorf("sort floor %v vs bound %v out of plausible range", f, bnd)
	}
	if mc.PrecisePartitionFloor(n, 1<<12) <= 0 {
		t.Error("precise partition floor nonpositive")
	}
	if mc.RightSplittersFloor(8, 1<<12) < 8*(1<<12)/float64(mc.B) {
		t.Error("right splitters floor below the seen-elements floor")
	}
	if mc.LeftSplittersFloor(n, n/1024) < float64(n)/(2*float64(mc.B)) {
		t.Error("left splitters floor below the half-scan floor")
	}
}

func TestFloorMonotonicity(t *testing.T) {
	if mc.SortFloor(1<<24) >= mc.SortFloor(1<<26) {
		t.Error("sort floor not increasing in N")
	}
	if mc.PrecisePartitionFloor(1<<24, 4) >= mc.PrecisePartitionFloor(1<<24, 1<<12) {
		t.Error("precise partition floor not increasing in K")
	}
	if mc.RightSplittersFloor(2, 1<<20) >= mc.RightSplittersFloor(64, 1<<20) {
		t.Error("right splitters floor not increasing in a")
	}
}

func TestMeasuredSortRespectsFloor(t *testing.T) {
	// Integration with the real machinery: external sort on a Π_hard input
	// must cost at least the information-theoretic floor and at most a small
	// multiple of the asymptotic bound.
	cfg := emio.Config{M: 1 << 10, B: 1 << 5}
	small := Machine{M: int64(cfg.M), B: int64(cfg.B)}
	n := 1 << 16
	ctx, err := emio.NewCtx(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f := workload.File(ctx.Disk(), workload.HardStripes, n, 1)
	ctx.Disk().ResetStats()
	if _, err := extsort.Sort(ctx, f); err != nil {
		t.Fatal(err)
	}
	got := float64(ctx.Disk().Stats().Total())
	floor := small.SortFloor(int64(n))
	bound := small.Sort(int64(n))
	if got < floor {
		t.Errorf("measured %v I/Os below information floor %v", got, floor)
	}
	if got > 8*bound {
		t.Errorf("measured %v I/Os above 8x asymptotic bound %v", got, bound)
	}
}

func TestLg2FactorialStirling(t *testing.T) {
	// lg(x!) must match Stirling within a small relative error.
	for _, x := range []float64{10, 100, 1e4, 1e6} {
		got := lg2Factorial(x)
		stirling := x*math.Log2(x) - x/math.Ln2
		if math.Abs(got-stirling)/got > 0.05 && x >= 100 {
			t.Errorf("lg2(%v!) = %v vs Stirling %v", x, got, stirling)
		}
	}
	if lg2Factorial(0.5) != 0 || lg2Binomial(5, 9) != 0 {
		t.Error("degenerate inputs not clamped to 0")
	}
}

func TestPrecisePartitionLBShape(t *testing.T) {
	n := int64(1 << 28)
	if mc.PrecisePartitionLB(n, 4) <= 0 {
		t.Error("nonpositive")
	}
	// Capped by the sorting argument: K beyond N/B changes nothing.
	atNB := mc.PrecisePartitionLB(n, n/mc.B)
	if mc.PrecisePartitionLB(n, n) != atNB {
		t.Error("not capped at N/B")
	}
	if mc.PrecisePartitionLB(n, 1<<20) <= mc.PrecisePartitionLB(n, 4) {
		t.Error("not increasing in K below the cap")
	}
}
