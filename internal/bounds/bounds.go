// Package bounds evaluates the paper's complexity formulas: the lower bounds
// of Theorems 1, 2 and 3, the matching upper bounds of Theorems 5 and 6, the
// companion-problem bounds (sorting, multi-partition, multi-selection), and
// the information-theoretic floors that drive the lower-bound proofs
// (the Π_hard counting argument of §2 and the machine-state counting of
// Lemma 7/8).
//
// All formulas use the paper's convention lg_x(y) = max{1, log_x(y)} and
// return asymptotic I/O counts without their hidden constants; harness code
// fits the constants empirically (EXPERIMENTS.md) and tests check that
// measured costs sit between floor and c * bound.
package bounds

import "math"

// Machine carries the EM parameters in elements.
type Machine struct {
	M int64 // memory capacity
	B int64 // block size
}

// Lg returns lg_x(y) = max(1, log_x y), the paper's clamped logarithm.
// Defined for x > 1; y <= 0 yields the clamp value 1.
func Lg(x, y float64) float64 {
	if x <= 1 {
		panic("bounds: Lg base must exceed 1")
	}
	if y <= 0 {
		return 1
	}
	v := math.Log(y) / math.Log(x)
	if v < 1 {
		return 1
	}
	return v
}

// lgMB is lg_{M/B}(y), with the M/B base clamped to 2 so degenerate machines
// (M = 2B) still yield finite formulas.
func (mc Machine) lgMB(y float64) float64 {
	base := float64(mc.M) / float64(mc.B)
	if base < 2 {
		base = 2
	}
	return Lg(base, y)
}

// scans returns n/B, the cost of one scan, at least 1.
func (mc Machine) scans(n int64) float64 {
	v := float64(n) / float64(mc.B)
	if v < 1 {
		return 1
	}
	return v
}

// Sort is the sorting bound Θ((N/B) lg_{M/B}(N/B)), the trivial solution to
// every problem in the paper.
func (mc Machine) Sort(n int64) float64 {
	return mc.scans(n) * mc.lgMB(float64(n)/float64(mc.B))
}

// MultiPartition is Θ((N/B) lg_{M/B} min{K, N/B}): the Aggarwal-Vitter
// distribution bound, capped by sorting.
func (mc Machine) MultiPartition(n, k int64) float64 {
	return mc.scans(n) * mc.lgMB(math.Min(float64(k), float64(n)/float64(mc.B)))
}

// MultiSelect is Θ((N/B) lg_{M/B}(K/B)): Theorem 4. For K <= B the clamp
// makes it linear — the separation from multi-partition.
func (mc Machine) MultiSelect(n, k int64) float64 {
	return mc.scans(n) * mc.lgMB(float64(k)/float64(mc.B))
}

// SplittersRight is Θ((1 + aK/B) lg_{M/B}(K/B)): Theorems 1 and 5. Sublinear
// in N whenever aK = o(N / lg_{M/B}(K/B)).
func (mc Machine) SplittersRight(a, k int64) float64 {
	return (1 + float64(a)*float64(k)/float64(mc.B)) * mc.lgMB(float64(k)/float64(mc.B))
}

// SplittersLeft is Θ((N/B) lg_{M/B}(N/(bB))): Theorems 2 and 5.
func (mc Machine) SplittersLeft(n, b int64) float64 {
	return mc.scans(n) * mc.lgMB(float64(n)/(float64(b)*float64(mc.B)))
}

// SplittersTwoSidedLB is the two-sided splitters lower bound: the max of the
// right- and left-grounded bounds (corollary of Theorems 1 and 2).
func (mc Machine) SplittersTwoSidedLB(n, k, a, b int64) float64 {
	return math.Max(mc.SplittersRight(a, k), mc.SplittersLeft(n, b))
}

// SplittersTwoSidedUB is the two-sided splitters upper bound: the sum of the
// right- and left-grounded bounds (Theorem 5); within a factor 2 of the LB.
func (mc Machine) SplittersTwoSidedUB(n, k, a, b int64) float64 {
	return mc.SplittersRight(a, k) + mc.SplittersLeft(n, b)
}

// PartitionRightLB is Ω(N/B): any right-grounded partitioning algorithm must
// read everything (§3).
func (mc Machine) PartitionRightLB(n int64) float64 {
	return mc.scans(n)
}

// PartitionRightUB is O(N/B + (aK/B) lg_{M/B} min{K, aK/B}): Theorem 6.
func (mc Machine) PartitionRightUB(n, k, a int64) float64 {
	ak := float64(a) * float64(k)
	return mc.scans(n) + ak/float64(mc.B)*mc.lgMB(math.Min(float64(k), ak/float64(mc.B)))
}

// PartitionLeft is Θ((N/B) lg_{M/B} min{N/b, N/B}): Theorems 3 and 6. Note
// the absence of K.
func (mc Machine) PartitionLeft(n, b int64) float64 {
	return mc.scans(n) * mc.lgMB(math.Min(float64(n)/float64(b), float64(n)/float64(mc.B)))
}

// PartitionTwoSidedLB is the two-sided partitioning lower bound, Ω of the
// left-grounded bound (Theorem 3).
func (mc Machine) PartitionTwoSidedLB(n, b int64) float64 {
	return mc.PartitionLeft(n, b)
}

// PartitionTwoSidedUB is O((aK/B) lg_{M/B} min{K, aK/B} + (N/B) lg_{M/B}
// min{N/b, N/B}): Theorem 6.
func (mc Machine) PartitionTwoSidedUB(n, k, a, b int64) float64 {
	ak := float64(a) * float64(k)
	return ak/float64(mc.B)*mc.lgMB(math.Min(float64(k), ak/float64(mc.B))) + mc.PartitionLeft(n, b)
}

// PrecisePartitionLB is Ω((N/B) lg_{M/B} min{K, N/B}): Lemma 5, the
// multi-partition lower bound proved by machine-state counting (valid when
// lg N <= B lg(M/B)).
func (mc Machine) PrecisePartitionLB(n, k int64) float64 {
	return mc.scans(n) * mc.lgMB(math.Min(float64(k), float64(n)/float64(mc.B)))
}

// ---------------------------------------------------------------------------
// Information-theoretic floors: exact counting, no hidden constants. These
// are true lower bounds on the number of I/Os for comparison-based
// algorithms, directly usable against measured runs.

// lg2Factorial returns lg2(x!) via the log-gamma function.
func lg2Factorial(x float64) float64 {
	if x < 1 {
		return 0
	}
	lg, _ := math.Lgamma(x + 1)
	return lg / math.Ln2
}

// lg2Binomial returns lg2(C(n, k)).
func lg2Binomial(n, k float64) float64 {
	if k < 0 || k > n {
		return 0
	}
	return lg2Factorial(n) - lg2Factorial(k) - lg2Factorial(n-k)
}

// HardPermutationsLg2 returns lg2 |Π_hard| = B * lg2((N/B)!), the entropy of
// the hard input family of §2.
func (mc Machine) HardPermutationsLg2(n int64) float64 {
	return float64(mc.B) * lg2Factorial(float64(n)/float64(mc.B))
}

// ReadFanoutLg2 returns lg2 C(M, B), the information revealed by one read in
// the decision-tree argument of Lemma 1.
func (mc Machine) ReadFanoutLg2() float64 {
	return lg2Binomial(float64(mc.M), float64(mc.B))
}

// SortFloor is the exact comparison floor for sorting a Π_hard input:
// H >= lg|Π_hard| / lg C(M,B) I/Os, from Lemma 1 (an algorithm distinguishing
// all hard permutations needs that much decision-tree depth).
func (mc Machine) SortFloor(n int64) float64 {
	fan := mc.ReadFanoutLg2()
	if fan <= 0 {
		return 0
	}
	return mc.HardPermutationsLg2(n) / fan
}

// RightSplittersFloor is the concrete floor extracted from the §2.1 proof:
// H * lg C(M,B) >= aK lg(K/B) - βK lg a, reported with the proof's β left at
// its asymptotically irrelevant value 0 (the benches compare shapes, and the
// aK lg(K/B) term is the content of Theorem 1). It also includes the
// small-K adversary floor aK/B (the algorithm must see aK elements).
func (mc Machine) RightSplittersFloor(a, k int64) float64 {
	seen := float64(a) * float64(k) / float64(mc.B)
	fan := mc.ReadFanoutLg2()
	if fan <= 0 {
		return seen
	}
	counting := float64(a) * float64(k) * math.Log2(math.Max(2, float64(k)/float64(mc.B))) / fan
	return math.Max(seen, counting)
}

// LeftSplittersFloor is the concrete floor from §2.2:
// H * lg C(M,B) >= |T| lg(|T|/(bB)) with |T| >= N/2, plus the adversary floor
// N/(2B) (the algorithm must see half the input when b <= N/2).
func (mc Machine) LeftSplittersFloor(n, b int64) float64 {
	seen := float64(n) / (2 * float64(mc.B))
	fan := mc.ReadFanoutLg2()
	if fan <= 0 {
		return seen
	}
	t := float64(n) / 2
	arg := t / (float64(b) * float64(mc.B))
	if arg <= 2 {
		return seen
	}
	return math.Max(seen, t*math.Log2(arg)/fan)
}

// PrecisePartitionFloor is the machine-state counting floor of Lemmas 7-8:
// H >= N lg K / (lg(2 N lg N) + lg C(M,B)).
func (mc Machine) PrecisePartitionFloor(n, k int64) float64 {
	if k < 2 || n < 2 {
		return 0
	}
	nf := float64(n)
	denom := math.Log2(2*nf*math.Log2(nf)) + mc.ReadFanoutLg2()
	states := lg2Factorial(nf) - float64(k)*lg2Factorial(nf/float64(k))
	return states / denom
}
