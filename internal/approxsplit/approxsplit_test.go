package approxsplit

import (
	"math/rand/v2"
	"sort"
	"testing"

	"repro/internal/emio"
)

func mustCtx(t *testing.T, m, b int) *emio.Ctx {
	t.Helper()
	ctx, err := emio.NewCtx(emio.Config{M: m, B: b})
	if err != nil {
		t.Fatal(err)
	}
	return ctx
}

func randFile(d *emio.Disk, n int, keyRange int64, rng *rand.Rand) ([]emio.Elem, *emio.File) {
	s := make([]emio.Elem, n)
	for i := range s {
		s[i] = emio.Elem{Key: rng.Int64N(keyRange), Aux: int64(i)}
	}
	return s, emio.BuildFile(d, "in", s)
}

// checkResult validates splitters ascending, bucket sizes matching a direct
// count, totals, and the advertised balance bounds.
func checkResult(t *testing.T, in []emio.Elem, res *Result, g int) {
	t.Helper()
	n := int64(len(in))
	if len(res.Splitters) != g-1 || len(res.BucketSizes) != g {
		t.Fatalf("got %d splitters / %d buckets, want %d / %d",
			len(res.Splitters), len(res.BucketSizes), g-1, g)
	}
	for i := 1; i < len(res.Splitters); i++ {
		if !emio.Less(res.Splitters[i-1], res.Splitters[i]) {
			t.Fatalf("splitters not ascending at %d", i)
		}
	}
	counts := make([]int64, g)
	for _, e := range in {
		counts[BucketOf(res.Splitters, e)]++
	}
	var total int64
	for i := range counts {
		if counts[i] != res.BucketSizes[i] {
			t.Fatalf("bucket %d: reported %d, actual %d", i, res.BucketSizes[i], counts[i])
		}
		total += counts[i]
	}
	if total != n {
		t.Fatalf("buckets cover %d of %d", total, n)
	}
	lo := n / int64(LowerDivisor*g)
	hi := (int64(UpperFactor)*n + int64(g) - 1) / int64(g)
	for i, c := range counts {
		if c < lo || c > hi {
			t.Fatalf("bucket %d size %d outside [%d,%d]", i, c, lo, hi)
		}
	}
}

func TestSplittersLargeUniform(t *testing.T) {
	ctx := mustCtx(t, 4096, 32)
	rng := rand.New(rand.NewPCG(1, 1))
	in, f := randFile(ctx.Disk(), 1<<16, 1<<40, rng)
	g := 64
	res, err := Splitters(ctx, f, g)
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, in, res, g)
	res.Close()
	if ctx.Mem().Used() != 0 {
		t.Fatalf("leaked %d memory", ctx.Mem().Used())
	}
}

func TestSplittersHeavyDuplicates(t *testing.T) {
	ctx := mustCtx(t, 4096, 32)
	rng := rand.New(rand.NewPCG(2, 2))
	in, f := randFile(ctx.Disk(), 1<<15, 4, rng) // only 4 distinct keys
	g := 32
	res, err := Splitters(ctx, f, g)
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, in, res, g)
	res.Close()
}

func TestSplittersAllEqualKeys(t *testing.T) {
	ctx := mustCtx(t, 4096, 32)
	in := make([]emio.Elem, 1<<14)
	for i := range in {
		in[i] = emio.Elem{Key: 7, Aux: int64(i)}
	}
	f := emio.BuildFile(ctx.Disk(), "eq", in)
	res, err := Splitters(ctx, f, 16)
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, in, res, 16)
	res.Close()
}

func TestSplittersSortedInput(t *testing.T) {
	ctx := mustCtx(t, 4096, 32)
	in := make([]emio.Elem, 1<<14)
	for i := range in {
		in[i] = emio.Elem{Key: int64(i), Aux: int64(i)}
	}
	f := emio.BuildFile(ctx.Disk(), "sorted", in)
	res, err := Splitters(ctx, f, 16)
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, in, res, 16)
	res.Close()
}

func TestSplittersSmallFileExact(t *testing.T) {
	// A file within M/3 takes the exact path: buckets must be perfectly
	// balanced (within floor rounding).
	ctx := mustCtx(t, 4096, 32)
	rng := rand.New(rand.NewPCG(3, 3))
	in, f := randFile(ctx.Disk(), 1000, 1<<30, rng)
	g := 10
	res, err := Splitters(ctx, f, g)
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, in, res, g)
	for i, c := range res.BucketSizes {
		if c != 100 {
			t.Errorf("exact path bucket %d = %d, want 100", i, c)
		}
	}
	res.Close()
}

func TestSplittersG1(t *testing.T) {
	ctx := mustCtx(t, 4096, 32)
	_, f := randFile(ctx.Disk(), 100, 100, rand.New(rand.NewPCG(4, 4)))
	res, err := Splitters(ctx, f, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Splitters) != 0 || res.BucketSizes[0] != 100 {
		t.Fatalf("G=1: %v / %v", res.Splitters, res.BucketSizes)
	}
	res.Close()
}

func TestSplittersParameterValidation(t *testing.T) {
	ctx := mustCtx(t, 4096, 32)
	_, f := randFile(ctx.Disk(), 10, 100, rand.New(rand.NewPCG(5, 5)))
	if _, err := Splitters(ctx, f, 0); err == nil {
		t.Error("G=0 accepted")
	}
	if _, err := Splitters(ctx, f, MaxBuckets(ctx.Config())+1); err == nil {
		t.Error("G over MaxBuckets accepted")
	}
	if _, err := Splitters(ctx, f, 11); err == nil {
		t.Error("G > n accepted")
	}
}

func TestSplittersLinearIO(t *testing.T) {
	var perScan []float64
	for _, n := range []int{1 << 14, 1 << 16, 1 << 18} {
		ctx := mustCtx(t, 2048, 32)
		rng := rand.New(rand.NewPCG(6, 6))
		_, f := randFile(ctx.Disk(), n, int64(n), rng)
		ctx.Disk().ResetStats()
		res, err := Splitters(ctx, f, 128)
		if err != nil {
			t.Fatal(err)
		}
		res.Close()
		perScan = append(perScan, float64(ctx.Disk().Stats().Total())/(float64(n)/32))
	}
	for i, s := range perScan {
		if s > 8 {
			t.Errorf("size %d: %.2f scan-equivalents, want <= 8", i, s)
		}
	}
	if perScan[2] > perScan[0]+1 {
		t.Errorf("scan constant grows with n: %v", perScan)
	}
}

func TestSplittersDeterministicWithSeed(t *testing.T) {
	run := func() []emio.Elem {
		ctx := mustCtx(t, 2048, 32)
		ctx.SetSeed(11, 13)
		rng := rand.New(rand.NewPCG(7, 7))
		_, f := randFile(ctx.Disk(), 1<<14, 1<<30, rng)
		res, err := Splitters(ctx, f, 32)
		if err != nil {
			t.Fatal(err)
		}
		out := append([]emio.Elem(nil), res.Splitters...)
		res.Close()
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed, different splitters at %d", i)
		}
	}
}

func TestSplittersMemoryWithinBudget(t *testing.T) {
	ctx := mustCtx(t, 2048, 32)
	rng := rand.New(rand.NewPCG(8, 8))
	_, f := randFile(ctx.Disk(), 1<<16, 1<<40, rng)
	res, err := Splitters(ctx, f, 256)
	if err != nil {
		t.Fatal(err)
	}
	res.Close()
	if ctx.Mem().Peak() > 2048 {
		t.Errorf("peak %d over M=2048", ctx.Mem().Peak())
	}
}

func TestBucketOf(t *testing.T) {
	sp := []emio.Elem{{Key: 10, Aux: 0}, {Key: 20, Aux: 0}, {Key: 30, Aux: 0}}
	cases := []struct {
		e    emio.Elem
		want int
	}{
		{emio.Elem{Key: 5, Aux: 0}, 0},
		{emio.Elem{Key: 10, Aux: 0}, 0}, // equal to splitter -> its bucket (closed right end)
		{emio.Elem{Key: 10, Aux: 1}, 1}, // after the splitter in total order
		{emio.Elem{Key: 15, Aux: 0}, 1},
		{emio.Elem{Key: 30, Aux: 0}, 2},
		{emio.Elem{Key: 31, Aux: 0}, 3},
	}
	for _, c := range cases {
		if got := BucketOf(sp, c.e); got != c.want {
			t.Errorf("BucketOf(%v) = %d, want %d", c.e, got, c.want)
		}
	}
	sorted := sort.SliceIsSorted(sp, func(i, j int) bool { return emio.Less(sp[i], sp[j]) })
	if !sorted {
		t.Fatal("test splitters not sorted")
	}
}

func TestSplittersExactPerfectBalance(t *testing.T) {
	ctx := mustCtx(t, 2048, 32)
	rng := rand.New(rand.NewPCG(21, 21))
	in, f := randFile(ctx.Disk(), 1<<14, 1<<40, rng)
	g := 64
	res, err := SplittersExact(ctx, f, g)
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, in, res, g)
	for i, c := range res.BucketSizes {
		if c != int64(len(in)/g) {
			t.Errorf("exact bucket %d = %d, want %d", i, c, len(in)/g)
		}
	}
	res.Close()
	if ctx.Mem().Used() != 0 {
		t.Fatalf("leaked %d", ctx.Mem().Used())
	}
}

func TestSplittersExactValidation(t *testing.T) {
	ctx := mustCtx(t, 2048, 32)
	_, f := randFile(ctx.Disk(), 10, 100, rand.New(rand.NewPCG(22, 22)))
	if _, err := SplittersExact(ctx, f, 0); err == nil {
		t.Error("G=0 accepted")
	}
	if _, err := SplittersExact(ctx, f, 11); err == nil {
		t.Error("G>n accepted")
	}
	res, err := SplittersExact(ctx, f, 1)
	if err != nil || res.BucketSizes[0] != 10 {
		t.Fatalf("G=1: %v %v", res, err)
	}
	res.Close()
}

func TestSampledCheaperThanExact(t *testing.T) {
	n := 1 << 16
	rng := rand.New(rand.NewPCG(23, 23))
	in := make([]emio.Elem, n)
	for i := range in {
		in[i] = emio.Elem{Key: rng.Int64(), Aux: int64(i)}
	}
	run := func(exact bool) int64 {
		ctx := mustCtx(t, 2048, 32)
		f := emio.BuildFile(ctx.Disk(), "c", in)
		ctx.Disk().ResetStats()
		var res *Result
		var err error
		if exact {
			res, err = SplittersExact(ctx, f, 128)
		} else {
			res, err = Splitters(ctx, f, 128)
		}
		if err != nil {
			t.Fatal(err)
		}
		res.Close()
		return ctx.Disk().Stats().Total()
	}
	if sampled, ex := run(false), run(true); sampled >= ex {
		t.Errorf("sampled %d I/Os >= exact-sort %d", sampled, ex)
	}
}
