// Package approxsplit finds G-1 approximate splitters of a file in O(n/B)
// I/Os, dividing it into G buckets of Theta(n/G) elements each.
//
// The paper's multi-selection base case (§4.2) invokes, as a black box, the
// result of Hu, Sheng, Tao, Yang and Zhou (SODA'13, reference [6]): K = M
// splitters with buckets Theta(N/M) in O(N/B) I/Os. That construction is not
// described in the SPAA'14 paper, so this package substitutes a randomized
// oversampling splitter finder with the same interface and the same two
// properties the base case relies on — linear I/O cost and Theta(n/G) bucket
// balance (see DESIGN.md §4):
//
//  1. One Bernoulli-sampling scan spills an expected s*G-element sample to
//     disk (s = 32 oversampling).
//  2. The sample is sorted — in memory when it fits, by external merge sort
//     otherwise; either way the cost is o(n/B) whenever n >> M lg M, and the
//     verification step makes correctness independent of sample size.
//  3. Every (s)-th sample element becomes a splitter; a verification scan
//     counts the induced buckets, and the whole procedure retries with a
//     fresh seed if any bucket leaves [n/(8G), 8n/G]. With 32 sample points
//     per bucket a retry is already unlikely; the retry loop makes the
//     guarantee deterministic-on-success.
//
// Inputs of at most M/3 elements are solved exactly in memory (perfectly
// balanced buckets), which also serves tiny files and tests.
package approxsplit

import (
	"fmt"
	"sort"

	"repro/internal/emio"
	"repro/internal/extsort"
	"repro/internal/inmem"
)

// Oversample is the number of sample points aimed at each bucket.
const Oversample = 32

// Balance bounds: every bucket of the returned splitters holds between
// n/(LowerDivisor*G) and UpperFactor*n/G elements (verified, not just
// expected).
const (
	LowerDivisor = 8
	UpperFactor  = 8
)

// maxRetries bounds the resampling loop. The per-attempt failure probability
// is well under 1/2, so 24 retries push the overall failure probability below
// 2^-24; hitting the bound indicates a broken random source.
const maxRetries = 24

// Result carries the G-1 splitters in ascending (Key, Aux) order and the G
// verified bucket sizes: BucketSizes[i] = |f ∩ (s_{i-1}, s_i]| with the usual
// sentinels. Free the memory with Close.
type Result struct {
	ctx         *emio.Ctx
	Splitters   []emio.Elem
	BucketSizes []int64
}

// Close releases the Result's memory charges. Safe to call twice.
func (r *Result) Close() {
	if r.Splitters != nil {
		r.ctx.FreeElems(r.Splitters)
		r.Splitters = nil
	}
	if r.BucketSizes != nil {
		r.ctx.FreeInts(r.BucketSizes)
		r.BucketSizes = nil
	}
}

// MaxBuckets returns the largest admissible G for the configuration: the
// splitters and bucket counters must coexist in memory with working buffers,
// so G is capped at M/6.
func MaxBuckets(cfg emio.Config) int {
	return cfg.M / 6
}

// Splitters divides f into G buckets of Theta(n/G) elements and returns the
// G-1 splitters with their verified bucket sizes, in O(n/B) expected I/Os.
// G must lie in [1, MaxBuckets] and f must hold at least G elements.
func Splitters(ctx *emio.Ctx, f *emio.File, g int) (*Result, error) {
	n := f.Len()
	if g < 1 || g > MaxBuckets(ctx.Config()) {
		return nil, fmt.Errorf("approxsplit: G=%d out of [1,%d]", g, MaxBuckets(ctx.Config()))
	}
	if n < int64(g) {
		return nil, fmt.Errorf("approxsplit: %d elements cannot form %d buckets", n, g)
	}
	if g == 1 {
		return singleBucket(ctx, n)
	}
	if n <= int64(ctx.M()/3) {
		return exactInMemory(ctx, f, g)
	}
	sp := ctx.StartSpan("approxsplit/splitters", emio.AttrInt("n", n), emio.AttrInt("g", int64(g)))
	defer sp.End()
	for attempt := 0; attempt < maxRetries; attempt++ {
		asp := ctx.StartSpan("approxsplit/attempt", emio.AttrInt("attempt", int64(attempt)))
		res, ok, err := attemptSample(ctx, f, g)
		asp.End()
		if err != nil {
			return nil, err
		}
		if ok {
			return res, nil
		}
	}
	return nil, fmt.Errorf("approxsplit: balance not achieved after %d attempts (n=%d, G=%d)", maxRetries, n, g)
}

func singleBucket(ctx *emio.Ctx, n int64) (*Result, error) {
	sizes, err := ctx.AllocInts(1)
	if err != nil {
		return nil, err
	}
	sizes[0] = n
	sp, err := ctx.AllocElems(0)
	if err != nil {
		ctx.FreeInts(sizes)
		return nil, err
	}
	return &Result{ctx: ctx, Splitters: sp, BucketSizes: sizes}, nil
}

// exactInMemory computes perfectly balanced splitters for a small file: the
// splitter s_i is the element of rank floor(i*n/G).
func exactInMemory(ctx *emio.Ctx, f *emio.File, g int) (*Result, error) {
	buf, err := emio.LoadAll(ctx, f)
	if err != nil {
		return nil, err
	}
	inmem.Sort(buf)
	n := int64(len(buf))
	sp, err := ctx.AllocElems(g - 1)
	if err != nil {
		ctx.FreeElems(buf)
		return nil, err
	}
	sizes, err := ctx.AllocInts(g)
	if err != nil {
		ctx.FreeElems(buf)
		ctx.FreeElems(sp)
		return nil, err
	}
	prev := int64(0)
	for i := 1; i < g; i++ {
		r := i * int(n) / g // floor(i*n/G) >= i since n >= G
		sp[i-1] = buf[r-1]
		sizes[i-1] = int64(r) - prev
		prev = int64(r)
	}
	sizes[g-1] = n - prev
	ctx.FreeElems(buf)
	return &Result{ctx: ctx, Splitters: sp, BucketSizes: sizes}, nil
}

// attemptSample runs one sample-pick-verify round. The boolean reports
// whether the verified balance held.
func attemptSample(ctx *emio.Ctx, f *emio.File, g int) (*Result, bool, error) {
	n := f.Len()
	target := int64(Oversample) * int64(g)
	ssp := ctx.StartSpan("approxsplit/sample", emio.AttrInt("target", target))
	sample, err := bernoulliSample(ctx, f, target)
	ssp.End()
	if err != nil {
		return nil, false, err
	}
	if sample.Len() < int64(g) {
		sample.Release() // absurdly unlucky sample; retry
		return nil, false, nil
	}
	osp := ctx.StartSpan("approxsplit/sort-sample", emio.AttrInt("s", sample.Len()))
	sorted, err := sortedSample(ctx, sample)
	osp.End()
	if err != nil {
		return nil, false, err
	}
	sp, err := pickEquiSpaced(ctx, sorted, g)
	sorted.Release()
	if err != nil {
		return nil, false, err
	}
	vsp := ctx.StartSpan("approxsplit/verify")
	sizes, err := countBuckets(ctx, f, sp)
	vsp.End()
	if err != nil {
		ctx.FreeElems(sp)
		return nil, false, err
	}
	lo := n / int64(LowerDivisor*g)
	hi := (int64(UpperFactor)*n + int64(g) - 1) / int64(g)
	for _, s := range sizes {
		if s < lo || s > hi {
			ctx.FreeElems(sp)
			ctx.FreeInts(sizes)
			return nil, false, nil
		}
	}
	return &Result{ctx: ctx, Splitters: sp, BucketSizes: sizes}, true, nil
}

// SplittersExact is the deterministic baseline for the ablation study: it
// sorts f outright and reads the exact rank-floor(i*n/G) elements off the
// sorted order, yielding perfectly balanced buckets at
// O((n/B) lg_{M/B}(n/B)) I/Os — the log factor the randomized sampling
// routine avoids. Same Result contract as Splitters.
func SplittersExact(ctx *emio.Ctx, f *emio.File, g int) (*Result, error) {
	n := f.Len()
	if g < 1 || g > MaxBuckets(ctx.Config()) {
		return nil, fmt.Errorf("approxsplit: G=%d out of [1,%d]", g, MaxBuckets(ctx.Config()))
	}
	if n < int64(g) {
		return nil, fmt.Errorf("approxsplit: %d elements cannot form %d buckets", n, g)
	}
	if g == 1 {
		return singleBucket(ctx, n)
	}
	esp := ctx.StartSpan("approxsplit/exact", emio.AttrInt("n", n), emio.AttrInt("g", int64(g)))
	defer esp.End()
	sorted, err := extsort.Sort(ctx, f)
	if err != nil {
		return nil, err
	}
	sp, err := pickEquiSpaced(ctx, sorted, g)
	sorted.Release()
	if err != nil {
		return nil, err
	}
	sizes, err := ctx.AllocInts(g)
	if err != nil {
		ctx.FreeElems(sp)
		return nil, err
	}
	prev := int64(0)
	for i := 1; i < g; i++ {
		r := int64(i) * n / int64(g)
		sizes[i-1] = r - prev
		prev = r
	}
	sizes[g-1] = n - prev
	return &Result{ctx: ctx, Splitters: sp, BucketSizes: sizes}, nil
}

// bernoulliSample scans f once, keeping each element independently with
// probability target/n, and spills the kept elements to a scratch file.
func bernoulliSample(ctx *emio.Ctx, f *emio.File, target int64) (*emio.File, error) {
	n := f.Len()
	p := float64(target) / float64(n)
	if p > 1 {
		p = 1
	}
	out := ctx.Scratch("sample")
	w, err := emio.NewWriter(ctx, out)
	if err != nil {
		return nil, err
	}
	r, err := emio.NewReader(ctx, f)
	if err != nil {
		w.Close()
		return nil, err
	}
	rng := ctx.Rng()
	for {
		e, ok := r.Next()
		if !ok {
			break
		}
		if rng.Float64() < p {
			w.Append(e)
		}
	}
	rerr := r.Err()
	r.Close()
	if err := w.Close(); err != nil && rerr == nil {
		rerr = err
	}
	if rerr != nil {
		out.Release()
		return nil, rerr
	}
	return out, nil
}

// sortedSample sorts the sample file, in memory when it fits in M/3 and by
// external merge sort otherwise, consuming the input file either way.
func sortedSample(ctx *emio.Ctx, sample *emio.File) (*emio.File, error) {
	if sample.Len() <= int64(ctx.M()/3) {
		buf, err := emio.LoadAll(ctx, sample)
		if err != nil {
			return nil, err
		}
		inmem.Sort(buf)
		out, err := emio.StoreAll(ctx, "sample-sorted", buf)
		ctx.FreeElems(buf)
		if err != nil {
			return nil, err
		}
		sample.Release()
		return out, nil
	}
	out, err := extsort.Sort(ctx, sample)
	if err != nil {
		return nil, err
	}
	sample.Release()
	return out, nil
}

// pickEquiSpaced streams the sorted sample and keeps the elements at ranks
// floor(i*S/G) for i = 1..G-1 as splitters (ascending by construction).
func pickEquiSpaced(ctx *emio.Ctx, sorted *emio.File, g int) ([]emio.Elem, error) {
	s := sorted.Len()
	sp, err := ctx.AllocElems(g - 1)
	if err != nil {
		return nil, err
	}
	r, err := emio.NewReader(ctx, sorted)
	if err != nil {
		ctx.FreeElems(sp)
		return nil, err
	}
	defer r.Close()
	next := 1
	rank := int64(0)
	for next < g {
		e, ok := r.Next()
		if !ok {
			break
		}
		rank++
		if rank == int64(next)*s/int64(g) {
			sp[next-1] = e
			next++
		}
	}
	if err := r.Err(); err != nil {
		ctx.FreeElems(sp)
		return nil, err
	}
	if next < g {
		ctx.FreeElems(sp)
		return nil, fmt.Errorf("approxsplit: sample exhausted after %d of %d splitters", next-1, g-1)
	}
	return sp, nil
}

// countBuckets scans f once and counts, for each of the G buckets induced by
// the sorted splitters sp, how many elements fall in it (total order).
func countBuckets(ctx *emio.Ctx, f *emio.File, sp []emio.Elem) ([]int64, error) {
	g := len(sp) + 1
	sizes, err := ctx.AllocInts(g)
	if err != nil {
		return nil, err
	}
	r, err := emio.NewReader(ctx, f)
	if err != nil {
		ctx.FreeInts(sizes)
		return nil, err
	}
	defer r.Close()
	for {
		e, ok := r.Next()
		if !ok {
			break
		}
		sizes[BucketOf(sp, e)]++
	}
	if err := r.Err(); err != nil {
		ctx.FreeInts(sizes)
		return nil, err
	}
	return sizes, nil
}

// BucketOf returns the index in [0, len(sp)] of the bucket that e falls in:
// bucket i is the interval (sp[i-1], sp[i]] in the total order. Binary
// search; CPU only.
func BucketOf(sp []emio.Elem, e emio.Elem) int {
	return sort.Search(len(sp), func(i int) bool { return !emio.Less(sp[i], e) })
}

// FromSorted returns a file holding the K-1 exact equi-depth splitters of an
// already-sorted file: the elements of rank i*n/K for i = 1..K-1 (n must be a
// multiple of K). Every induced bucket (s_{i-1}, s_i] then holds exactly n/K
// elements. One partial forward scan, O(K/B + min(n, (K-1)*n/K)/B) I/Os and
// O(B) memory. The parallel engine derives approximate splitters this way
// from its sorted output, so the result is independent of worker count.
func FromSorted(ctx *emio.Ctx, sorted *emio.File, k int64) (*emio.File, error) {
	n := sorted.Len()
	if k < 1 || n%k != 0 {
		return nil, fmt.Errorf("approxsplit: n=%d not divisible into K=%d buckets", n, k)
	}
	sp := ctx.StartSpan("approxsplit/from-sorted", emio.AttrInt("n", n), emio.AttrInt("k", k))
	defer sp.End()
	out := ctx.Scratch("splitters")
	w, err := emio.NewWriter(ctx, out)
	if err != nil {
		out.Release()
		return nil, err
	}
	r, err := emio.NewReader(ctx, sorted)
	if err != nil {
		w.Close()
		out.Release()
		return nil, err
	}
	stride := n / k
	var rank, next int64 = 0, stride
	for next < n {
		e, ok := r.Next()
		if !ok {
			break
		}
		rank++
		if rank == next {
			w.Append(e)
			next += stride
		}
	}
	rerr := r.Err()
	r.Close()
	if rerr != nil {
		w.Close()
		out.Release()
		return nil, rerr
	}
	if err := w.Close(); err != nil {
		out.Release()
		return nil, err
	}
	if out.Len() != k-1 {
		out.Release()
		return nil, fmt.Errorf("approxsplit: picked %d of %d splitters", out.Len(), k-1)
	}
	return out, nil
}
