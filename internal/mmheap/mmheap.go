// Package mmheap implements a k-way merge over element sources using a
// tournament (loser) tree, the classic in-memory machinery of the merge phase
// of external merge sort: each Next costs O(lg k) comparisons and exactly one
// source advance, independent of k.
package mmheap

import (
	"fmt"

	"repro/internal/emio"
)

// Source yields elements in nondecreasing (Key, Aux) order. The second result
// is false when the source is exhausted. Sources that can fail (disk-backed
// readers) surface their error through their own Err method after the merge
// drains; the merger itself never fabricates elements.
type Source func() (emio.Elem, bool)

// Merger merges k sorted sources into one sorted stream.
type Merger struct {
	ctx   *emio.Ctx
	k     int         // real sources
	kp    int         // padded to a power of two
	loser []int32     // loser[1..kp-1] internal nodes; loser[0] = winner
	head  []emio.Elem // current front element per leaf
	ok    []bool      // leaf has a valid head
	src   []Source
	freed bool
	chg   int64 // memory charged
}

// New builds a merger over the given sources, charging the tournament state
// (O(k) words) to the memory budget. Close releases the charge.
func New(ctx *emio.Ctx, sources []Source) (*Merger, error) {
	k := len(sources)
	if k == 0 {
		return nil, fmt.Errorf("mmheap: no sources")
	}
	kp := 1
	for kp < k {
		kp *= 2
	}
	// head: kp elems; loser + ok: well under one extra elem per leaf.
	chg := int64(2 * kp)
	if err := ctx.Mem().Charge(chg); err != nil {
		return nil, err
	}
	m := &Merger{
		ctx:   ctx,
		k:     k,
		kp:    kp,
		loser: make([]int32, kp),
		head:  make([]emio.Elem, kp),
		ok:    make([]bool, kp),
		src:   sources,
		chg:   chg,
	}
	for i := 0; i < k; i++ {
		m.head[i], m.ok[i] = sources[i]()
	}
	m.build()
	return m, nil
}

// beats reports whether leaf a wins against leaf b (exhausted leaves always
// lose; among two exhausted leaves the lower index wins, arbitrarily).
func (m *Merger) beats(a, b int32) bool {
	switch {
	case !m.ok[a] && !m.ok[b]:
		return a < b
	case !m.ok[a]:
		return false
	case !m.ok[b]:
		return true
	default:
		return !emio.Less(m.head[b], m.head[a]) // ties to the lower index via total order
	}
}

// build plays the full tournament bottom-up; node x (1 <= x < kp) covers
// leaves [x*span, (x+1)*span) where span = kp/2^depth(x).
func (m *Merger) build() {
	winners := make([]int32, 2*m.kp)
	for i := 0; i < m.kp; i++ {
		winners[m.kp+i] = int32(i)
	}
	for x := m.kp - 1; x >= 1; x-- {
		a, b := winners[2*x], winners[2*x+1]
		if m.beats(a, b) {
			winners[x], m.loser[x] = a, b
		} else {
			winners[x], m.loser[x] = b, a
		}
	}
	m.loser[0] = winners[1]
}

// Next returns the smallest remaining element across all sources.
func (m *Merger) Next() (emio.Elem, bool) {
	w := m.loser[0]
	if !m.ok[w] {
		return emio.Elem{}, false
	}
	e := m.head[w]
	m.head[w], m.ok[w] = m.src[w]()
	// Replay the path from leaf w to the root.
	cand := w
	for x := (int32(m.kp) + w) / 2; x >= 1; x /= 2 {
		if m.beats(m.loser[x], cand) {
			cand, m.loser[x] = m.loser[x], cand
		}
	}
	m.loser[0] = cand
	return e, true
}

// K returns the number of sources being merged.
func (m *Merger) K() int { return m.k }

// Close releases the tournament state's memory charge. Safe to call twice.
func (m *Merger) Close() {
	if !m.freed {
		m.ctx.Mem().Credit(m.chg)
		m.freed = true
	}
}
