package mmheap

import (
	"math/rand/v2"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/emio"
)

func sliceSource(s []emio.Elem) Source {
	i := 0
	return func() (emio.Elem, bool) {
		if i >= len(s) {
			return emio.Elem{}, false
		}
		e := s[i]
		i++
		return e, true
	}
}

func mustCtx(t *testing.T) *emio.Ctx {
	t.Helper()
	ctx, err := emio.NewUnmeteredCtx(emio.Config{M: 1 << 20, B: 64})
	if err != nil {
		t.Fatal(err)
	}
	return ctx
}

func drain(t *testing.T, m *Merger) []emio.Elem {
	t.Helper()
	var out []emio.Elem
	for {
		e, ok := m.Next()
		if !ok {
			break
		}
		out = append(out, e)
	}
	return out
}

func mergeCase(t *testing.T, runs [][]emio.Elem) {
	t.Helper()
	ctx := mustCtx(t)
	srcs := make([]Source, len(runs))
	var all []emio.Elem
	for i, r := range runs {
		srcs[i] = sliceSource(r)
		all = append(all, r...)
	}
	m, err := New(ctx, srcs)
	if err != nil {
		t.Fatal(err)
	}
	got := drain(t, m)
	m.Close()
	sort.Slice(all, func(i, j int) bool { return emio.Less(all[i], all[j]) })
	if len(got) != len(all) {
		t.Fatalf("merged %d elements, want %d", len(got), len(all))
	}
	for i := range all {
		if got[i] != all[i] {
			t.Fatalf("merge differs at %d: %v vs %v", i, got[i], all[i])
		}
	}
	if ctx.Mem().Used() != 0 {
		t.Fatalf("merger leaked %d memory", ctx.Mem().Used())
	}
}

func e(k int64) emio.Elem { return emio.Elem{Key: k, Aux: k} }

func TestMergeSingleSource(t *testing.T) {
	mergeCase(t, [][]emio.Elem{{e(1), e(2), e(3)}})
}

func TestMergeTwoSources(t *testing.T) {
	mergeCase(t, [][]emio.Elem{{e(1), e(3), e(5)}, {e(2), e(4), e(6)}})
}

func TestMergeEmptySources(t *testing.T) {
	mergeCase(t, [][]emio.Elem{{}, {e(1)}, {}, {e(0), e(2)}, {}})
}

func TestMergeAllEmpty(t *testing.T) {
	mergeCase(t, [][]emio.Elem{{}, {}, {}})
}

func TestMergeNonPowerOfTwo(t *testing.T) {
	mergeCase(t, [][]emio.Elem{
		{e(10), e(20)}, {e(5)}, {e(1), e(2), e(30)},
	})
}

func TestMergeDuplicateKeys(t *testing.T) {
	a := []emio.Elem{{Key: 1, Aux: 0}, {Key: 1, Aux: 2}, {Key: 1, Aux: 4}}
	b := []emio.Elem{{Key: 1, Aux: 1}, {Key: 1, Aux: 3}, {Key: 1, Aux: 5}}
	mergeCase(t, [][]emio.Elem{a, b})
}

func TestMergeSkewedLengths(t *testing.T) {
	long := make([]emio.Elem, 1000)
	for i := range long {
		long[i] = e(int64(2 * i))
	}
	mergeCase(t, [][]emio.Elem{long, {e(501)}, {}})
}

func TestMergeManySources(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	runs := make([][]emio.Elem, 129) // non-power-of-two, large
	for i := range runs {
		n := rng.IntN(50)
		r := make([]emio.Elem, n)
		for j := range r {
			r[j] = emio.Elem{Key: rng.Int64N(1000), Aux: int64(i*1000 + j)}
		}
		sort.Slice(r, func(a, b int) bool { return emio.Less(r[a], r[b]) })
		runs[i] = r
	}
	mergeCase(t, runs)
}

func TestNewRejectsNoSources(t *testing.T) {
	if _, err := New(mustCtx(t), nil); err == nil {
		t.Error("New with no sources succeeded")
	}
}

func TestNewRespectsBudget(t *testing.T) {
	ctx, err := emio.NewCtx(emio.Config{M: 16, B: 4})
	if err != nil {
		t.Fatal(err)
	}
	srcs := make([]Source, 64)
	for i := range srcs {
		srcs[i] = sliceSource(nil)
	}
	if _, err := New(ctx, srcs); err == nil {
		t.Error("64-way merger fit in M=16")
	}
}

func TestMergeProperty(t *testing.T) {
	prop := func(raw [][]int64) bool {
		if len(raw) == 0 {
			return true
		}
		runs := make([][]emio.Elem, len(raw))
		var all []emio.Elem
		aux := int64(0)
		for i, keys := range raw {
			r := make([]emio.Elem, len(keys))
			for j, k := range keys {
				r[j] = emio.Elem{Key: k, Aux: aux}
				aux++
			}
			sort.Slice(r, func(a, b int) bool { return emio.Less(r[a], r[b]) })
			runs[i] = r
			all = append(all, r...)
		}
		ctx, _ := emio.NewUnmeteredCtx(emio.Config{M: 1 << 20, B: 64})
		srcs := make([]Source, len(runs))
		for i, r := range runs {
			srcs[i] = sliceSource(r)
		}
		m, err := New(ctx, srcs)
		if err != nil {
			return false
		}
		defer m.Close()
		sort.Slice(all, func(i, j int) bool { return emio.Less(all[i], all[j]) })
		for _, want := range all {
			got, ok := m.Next()
			if !ok || got != want {
				return false
			}
		}
		_, ok := m.Next()
		return !ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkMerge64Way(b *testing.B) {
	rng := rand.New(rand.NewPCG(9, 9))
	runs := make([][]emio.Elem, 64)
	for i := range runs {
		r := make([]emio.Elem, 1024)
		for j := range r {
			r[j] = emio.Elem{Key: rng.Int64(), Aux: int64(j)}
		}
		sort.Slice(r, func(a, b int) bool { return emio.Less(r[a], r[b]) })
		runs[i] = r
	}
	ctx, _ := emio.NewUnmeteredCtx(emio.Config{M: 1 << 20, B: 64})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		srcs := make([]Source, len(runs))
		for j, r := range runs {
			srcs[j] = sliceSource(r)
		}
		m, _ := New(ctx, srcs)
		for {
			if _, ok := m.Next(); !ok {
				break
			}
		}
		m.Close()
	}
}

func TestMergerK(t *testing.T) {
	ctx := mustCtx(t)
	m, err := New(ctx, []Source{sliceSource(nil), sliceSource(nil), sliceSource(nil)})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if m.K() != 3 {
		t.Errorf("K = %d", m.K())
	}
}
