// Package internal_test sweeps injected disk faults through every composite
// algorithm: for a selection of fault points across the algorithm's I/O
// trace, the corresponding read or write fails, and the algorithm must
// return an error (never panic, never report success) and release every
// charged byte of memory. This exercises the error paths that normal runs
// never touch.
package internal_test

import (
	"errors"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/emio"
	"repro/internal/emsel"
	"repro/internal/extsort"
	"repro/internal/histogram"
	"repro/internal/mpart"
	"repro/internal/msel"
	"repro/internal/workload"
)

var errInjected = errors.New("injected fault")

// backend constructs a Ctx on one storage backend. The fault sweep runs under
// all three: the error paths of the pipelined store (worker shutdown, sticky
// error delivery, prefetch abort) are disjoint from the synchronous ones, and
// the memory backend is the reference. close must be called before the
// goroutine-leak check.
type backend struct {
	name string
	mk   func(t *testing.T) (ctx *emio.Ctx, close func() error)
}

func backendMatrix() []backend {
	cfg := emio.Config{M: 4096, B: 32}
	return []backend{
		{"mem", func(t *testing.T) (*emio.Ctx, func() error) {
			ctx, err := emio.NewCtx(cfg)
			if err != nil {
				t.Fatal(err)
			}
			return ctx, func() error { return nil }
		}},
		{"file", func(t *testing.T) (*emio.Ctx, func() error) {
			d, err := emio.NewFileBackedDisk(filepath.Join(t.TempDir(), "f.dat"), cfg.B)
			if err != nil {
				t.Fatal(err)
			}
			ctx, err := emio.NewCtxWithDisk(cfg, d)
			if err != nil {
				t.Fatal(err)
			}
			return ctx, d.Close
		}},
		{"file-pipeline", func(t *testing.T) (*emio.Ctx, func() error) {
			d, err := emio.NewFileBackedDiskPipeline(filepath.Join(t.TempDir(), "p.dat"), cfg.B,
				emio.Pipeline{Enabled: true, PrefetchDepth: 4, QueueDepth: 4})
			if err != nil {
				t.Fatal(err)
			}
			ctx, err := emio.NewCtxWithDisk(cfg, d)
			if err != nil {
				t.Fatal(err)
			}
			return ctx, d.Close
		}},
	}
}

// algo is one algorithm under fault test. run must return an error when the
// underlying I/O fails; it gets a fresh ctx and staged input each attempt.
type algo struct {
	name string
	n    int
	run  func(ctx *emio.Ctx, f *emio.File) error
}

func algos() []algo {
	return []algo{
		{"extsort", 4000, func(ctx *emio.Ctx, f *emio.File) error {
			out, err := extsort.Sort(ctx, f)
			if err == nil {
				out.Release()
			}
			return err
		}},
		{"emsel.Select", 4000, func(ctx *emio.Ctx, f *emio.File) error {
			_, err := emsel.Select(ctx, f, int64(f.Len()/2))
			return err
		}},
		{"emsel.SplitAtRank", 4000, func(ctx *emio.Ctx, f *emio.File) error {
			low, high, _, err := emsel.SplitAtRank(ctx, f, f.Len()/3)
			if err == nil {
				low.Release()
				high.Release()
			}
			return err
		}},
		{"mpart", 4000, func(ctx *emio.Ctx, f *emio.File) error {
			out, err := mpart.Partition(ctx, f, []int64{1000, 2000, 1000})
			if err == nil {
				out.Release()
			}
			return err
		}},
		{"msel", 1 << 14, func(ctx *emio.Ctx, f *emio.File) error {
			out, err := msel.Select(ctx, f, []int64{100, 5000, 16000})
			if err == nil {
				out.Release()
			}
			return err
		}},
		{"core.Splitters.right", 1 << 14, func(ctx *emio.Ctx, f *emio.File) error {
			out, err := core.Splitters(ctx, f, core.Params{K: 8, A: 256, B: f.Len()})
			if err == nil {
				out.Release()
			}
			return err
		}},
		{"core.Splitters.left", 1 << 14, func(ctx *emio.Ctx, f *emio.File) error {
			out, err := core.Splitters(ctx, f, core.Params{K: 8, A: 0, B: f.Len() / 8})
			if err == nil {
				out.Release()
			}
			return err
		}},
		{"core.Splitters.twosided", 1 << 14, func(ctx *emio.Ctx, f *emio.File) error {
			out, err := core.Splitters(ctx, f, core.Params{K: 8, A: 64, B: f.Len() / 2})
			if err == nil {
				out.Release()
			}
			return err
		}},
		{"core.Partition.right", 1 << 13, func(ctx *emio.Ctx, f *emio.File) error {
			res, err := core.Partition(ctx, f, core.Params{K: 8, A: 64, B: f.Len()})
			if err == nil {
				res.Release()
			}
			return err
		}},
		{"core.Partition.left", 1 << 13, func(ctx *emio.Ctx, f *emio.File) error {
			res, err := core.Partition(ctx, f, core.Params{K: 8, A: 0, B: f.Len() / 4})
			if err == nil {
				res.Release()
			}
			return err
		}},
		{"core.PrecisePartition", 1 << 13, func(ctx *emio.Ctx, f *emio.File) error {
			out, err := core.PrecisePartitionViaApprox(ctx, f, f.Len()/8)
			if err == nil {
				out.Release()
			}
			return err
		}},
		{"histogram", 1 << 14, func(ctx *emio.Ctx, f *emio.File) error {
			_, err := histogram.EquiDepth(ctx, f, 8, 0.5, 2)
			return err
		}},
	}
}

// runOnce executes the algorithm with no faults and returns its total reads
// and writes, so fault points can be placed across the trace.
func runOnce(t *testing.T, a algo) (reads, writes int64) {
	t.Helper()
	ctx, err := emio.NewCtx(emio.Config{M: 4096, B: 32})
	if err != nil {
		t.Fatal(err)
	}
	f := workload.File(ctx.Disk(), workload.Uniform, a.n, 7)
	ctx.Disk().ResetStats()
	if err := a.run(ctx, f); err != nil {
		t.Fatalf("%s: clean run failed: %v", a.name, err)
	}
	st := ctx.Disk().Stats()
	return st.Reads, st.Writes
}

func TestReadFaultsSurfaceCleanly(t *testing.T) {
	for _, be := range backendMatrix() {
		for _, a := range algos() {
			t.Run(be.name+"/"+a.name, func(t *testing.T) {
				reads, _ := runOnce(t, a)
				if reads == 0 {
					t.Skipf("%s performs no reads", a.name)
				}
				for _, frac := range []int64{0, 4, 2, 1} { // first, quarter, half, last
					point := int64(0)
					if frac > 0 {
						point = reads/frac + frac // stagger a little off exact fractions
					}
					if point >= reads {
						point = reads - 1
					}
					baseGoroutines := emio.NumGoroutines()
					ctx, close := be.mk(t)
					f := workload.File(ctx.Disk(), workload.Uniform, a.n, 7)
					ctx.Disk().ResetStats()
					count := int64(0)
					ctx.Disk().SetReadFault(func(*emio.File, int) error {
						count++
						if count == point+1 {
							return errInjected
						}
						return nil
					})
					err := a.run(ctx, f)
					ctx.Disk().SetReadFault(nil)
					if err == nil {
						t.Errorf("read fault at %d/%d: algorithm reported success", point, reads)
						close()
						continue
					}
					if !errors.Is(err, errInjected) {
						t.Errorf("read fault at %d/%d: error %v does not wrap the injected fault", point, reads, err)
					}
					if used := ctx.Mem().Used(); used != 0 {
						t.Errorf("read fault at %d/%d: leaked %d elements of memory", point, reads, used)
					}
					close()
					emio.RequireNoGoroutineLeaks(t, baseGoroutines)
				}
			})
		}
	}
}

func TestWriteFaultsSurfaceCleanly(t *testing.T) {
	for _, be := range backendMatrix() {
		for _, a := range algos() {
			t.Run(be.name+"/"+a.name, func(t *testing.T) {
				_, writes := runOnce(t, a)
				if writes == 0 {
					t.Skipf("%s performs no writes", a.name)
				}
				for _, frac := range []int64{0, 2, 1} {
					point := int64(0)
					if frac > 0 {
						point = writes / frac
					}
					if point >= writes {
						point = writes - 1
					}
					baseGoroutines := emio.NumGoroutines()
					ctx, close := be.mk(t)
					f := workload.File(ctx.Disk(), workload.Uniform, a.n, 7)
					ctx.Disk().ResetStats()
					count := int64(0)
					ctx.Disk().SetWriteFault(func(*emio.File, int) error {
						count++
						if count == point+1 {
							return errInjected
						}
						return nil
					})
					err := a.run(ctx, f)
					ctx.Disk().SetWriteFault(nil)
					if err == nil {
						t.Errorf("write fault at %d/%d: algorithm reported success", point, writes)
						close()
						continue
					}
					if !errors.Is(err, errInjected) {
						t.Errorf("write fault at %d/%d: error %v does not wrap the injected fault", point, writes, err)
					}
					if used := ctx.Mem().Used(); used != 0 {
						t.Errorf("write fault at %d/%d: leaked %d elements of memory", point, writes, used)
					}
					close()
					emio.RequireNoGoroutineLeaks(t, baseGoroutines)
				}
			})
		}
	}
}

// TestFaultEveryPointSmall exhaustively faults every single read of a small
// multi-phase run (two-sided splitters), the strongest leak check.
func TestFaultEveryPointSmall(t *testing.T) {
	a := algo{"core.Splitters.twosided.small", 2000, func(ctx *emio.Ctx, f *emio.File) error {
		out, err := core.Splitters(ctx, f, core.Params{K: 4, A: 50, B: 1500})
		if err == nil {
			out.Release()
		}
		return err
	}}
	reads, _ := runOnce(t, a)
	for point := int64(0); point < reads; point += 7 { // every 7th keeps it fast
		ctx, err := emio.NewCtx(emio.Config{M: 4096, B: 32})
		if err != nil {
			t.Fatal(err)
		}
		f := workload.File(ctx.Disk(), workload.Uniform, a.n, 7)
		count := int64(0)
		ctx.Disk().SetReadFault(func(*emio.File, int) error {
			count++
			if count == point+1 {
				return errInjected
			}
			return nil
		})
		err = a.run(ctx, f)
		ctx.Disk().SetReadFault(nil)
		if err == nil {
			t.Fatalf("fault at read %d: success reported", point)
		}
		if used := ctx.Mem().Used(); used != 0 {
			t.Fatalf("fault at read %d: leaked %d", point, used)
		}
	}
}
