package ordercount

import (
	"math"
	"math/big"
	"math/rand/v2"
	"testing"
)

// randomPoset builds a random DAG order on n elements with the given edge
// probability, transitively closed.
func randomPoset(t *testing.T, n int, prob float64, rng *rand.Rand) *Poset {
	t.Helper()
	p, err := New(n)
	if err != nil {
		t.Fatal(err)
	}
	// Respect a random underlying topological order to avoid cycles.
	perm := rng.Perm(n)
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			if rng.Float64() < prob {
				if err := p.AddLess(perm[a], perm[b]); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	return p
}

func TestCountTotalOrderAndAntichain(t *testing.T) {
	p, _ := New(6)
	for i := 0; i < 5; i++ {
		if err := p.AddLess(i, i+1); err != nil {
			t.Fatal(err)
		}
	}
	if got := p.CountLinearExtensions(); got != 1 {
		t.Errorf("chain has %d extensions, want 1", got)
	}
	q, _ := New(6)
	if got, want := q.CountLinearExtensions(), Factorial(6).Uint64(); got != want {
		t.Errorf("antichain has %d extensions, want 6! = %d", got, want)
	}
	empty, _ := New(0)
	if got := empty.CountLinearExtensions(); got != 1 {
		t.Errorf("empty poset: %d extensions, want 1", got)
	}
}

func TestCountBruteForceCrossCheck(t *testing.T) {
	// Compare the downset DP against brute-force permutation checking.
	rng := rand.New(rand.NewPCG(1, 1))
	for trial := 0; trial < 20; trial++ {
		n := 3 + rng.IntN(5) // up to 7 elements: 5040 permutations
		p := randomPoset(t, n, 0.4, rng)
		var brute uint64
		perm := make([]int, n)
		for i := range perm {
			perm[i] = i
		}
		var rec func(k int)
		rec = func(k int) {
			if k == n {
				for a := 0; a < n; a++ {
					for b := a + 1; b < n; b++ {
						if p.Less(perm[b], perm[a]) {
							return
						}
					}
				}
				brute++
				return
			}
			for i := k; i < n; i++ {
				perm[k], perm[i] = perm[i], perm[k]
				rec(k + 1)
				perm[k], perm[i] = perm[i], perm[k]
			}
		}
		rec(0)
		if got := p.CountLinearExtensions(); got != brute {
			t.Fatalf("trial %d (n=%d): DP %d, brute force %d", trial, n, got, brute)
		}
	}
}

func TestAddLessRejectsCycles(t *testing.T) {
	p, _ := New(3)
	if err := p.AddLess(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := p.AddLess(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := p.AddLess(2, 0); err == nil {
		t.Error("cycle accepted")
	}
	if err := p.AddLess(0, 0); err == nil {
		t.Error("self-relation accepted")
	}
}

// TestFact4ProductRule: if X splits into X1 entirely below X2, then
// |CP(X)| = |CP(X1)| * |CP(X2)|.
func TestFact4ProductRule(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 2))
	for trial := 0; trial < 20; trial++ {
		n1, n2 := 2+rng.IntN(4), 2+rng.IntN(4)
		p, _ := New(n1 + n2)
		// Random internal relations within each side.
		for a := 0; a < n1; a++ {
			for b := a + 1; b < n1; b++ {
				if rng.Float64() < 0.3 {
					p.AddLess(a, b)
				}
			}
		}
		for a := n1; a < n1+n2; a++ {
			for b := a + 1; b < n1+n2; b++ {
				if rng.Float64() < 0.3 {
					p.AddLess(a, b)
				}
			}
		}
		// Everything in X1 below everything in X2.
		for a := 0; a < n1; a++ {
			for b := n1; b < n1+n2; b++ {
				if err := p.AddLess(a, b); err != nil {
					t.Fatal(err)
				}
			}
		}
		mask1 := uint32(1)<<n1 - 1
		mask2 := (uint32(1)<<(n1+n2) - 1) &^ mask1
		whole := p.CountLinearExtensions()
		left := p.CountLinearExtensionsOf(mask1)
		right := p.CountLinearExtensionsOf(mask2)
		if whole != left*right {
			t.Fatalf("trial %d: |CP(X)|=%d != %d * %d (Fact 4)", trial, whole, left, right)
		}
	}
}

// TestFact5SubsetInequality: |CP(X)| <= |CP(Y)| * |CP(X\Y)| * C(|X|, |Y|)
// for every subset Y of random posets.
func TestFact5SubsetInequality(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 3))
	for trial := 0; trial < 15; trial++ {
		n := 5 + rng.IntN(4)
		p := randomPoset(t, n, 0.35, rng)
		whole := new(big.Int).SetUint64(p.CountLinearExtensions())
		full := uint32(1)<<n - 1
		for y := uint32(0); y <= full; y += 1 + uint32(rng.IntN(7)) {
			cy := new(big.Int).SetUint64(p.CountLinearExtensionsOf(y))
			cz := new(big.Int).SetUint64(p.CountLinearExtensionsOf(full &^ y))
			k := 0
			for m := y; m != 0; m &= m - 1 {
				k++
			}
			bound := new(big.Int).Mul(cy, cz)
			bound.Mul(bound, Binomial(n, k))
			if whole.Cmp(bound) > 0 {
				t.Fatalf("trial %d Y=%b: |CP(X)|=%v > bound %v (Fact 5)", trial, y, whole, bound)
			}
		}
	}
}

// TestLemma3WidthBound: lg|CP(X)| <= n lg w + O(lg n) where w is the maximum
// antichain size. The O(lg n) slack is checked at 2 lg n + 2.
func TestLemma3WidthBound(t *testing.T) {
	rng := rand.New(rand.NewPCG(4, 4))
	for trial := 0; trial < 25; trial++ {
		n := 4 + rng.IntN(9)
		p := randomPoset(t, n, 0.1+rng.Float64()*0.5, rng)
		_, w := p.MaxAntichain()
		cnt := p.CountLinearExtensions()
		lgCP := math.Log2(float64(cnt))
		bound := float64(n)*math.Log2(float64(w)) + 2*math.Log2(float64(n)) + 2
		if lgCP > bound {
			t.Fatalf("trial %d (n=%d, w=%d): lg|CP| = %.2f > %.2f (Lemma 3)", trial, n, w, lgCP, bound)
		}
	}
}

// TestDilworth: the maximum antichain size equals the minimum chain cover
// size (Theorem 7), the antichain is pairwise incomparable, and the chains
// are valid and partition the ground set.
func TestDilworth(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 5))
	for trial := 0; trial < 30; trial++ {
		n := 3 + rng.IntN(12)
		p := randomPoset(t, n, 0.1+rng.Float64()*0.6, rng)
		anti, w := p.MaxAntichain()
		// Antichain valid?
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if anti&(1<<i) != 0 && anti&(1<<j) != 0 && p.Comparable(i, j) {
					t.Fatalf("trial %d: antichain contains comparable %d, %d", trial, i, j)
				}
			}
		}
		chains := p.MinChainCover()
		if len(chains) != w {
			t.Fatalf("trial %d: %d chains vs antichain width %d (Dilworth)", trial, len(chains), w)
		}
		var covered uint32
		for _, ch := range chains {
			for k := 1; k < len(ch); k++ {
				if !p.Less(ch[k-1], ch[k]) {
					t.Fatalf("trial %d: chain %v broken at %d", trial, ch, k)
				}
			}
			for _, e := range ch {
				if covered&(1<<e) != 0 {
					t.Fatalf("trial %d: element %d in two chains", trial, e)
				}
				covered |= 1 << e
			}
		}
		if covered != uint32(1)<<n-1 {
			t.Fatalf("trial %d: chains cover %b of %d elements", trial, covered, n)
		}
	}
}

// TestHardStripeCount: the Π_hard structure at small scale has exactly
// (perStripe!)^stripes linear extensions — the |Π_hard| of Lemma 1.
func TestHardStripeCount(t *testing.T) {
	for _, tc := range []struct{ stripes, per int }{
		{1, 4}, {2, 3}, {3, 4}, {4, 3}, {2, 6},
	} {
		p, err := HardStripePoset(tc.stripes, tc.per)
		if err != nil {
			t.Fatal(err)
		}
		want := new(big.Int).Exp(Factorial(tc.per), big.NewInt(int64(tc.stripes)), nil)
		if got := p.CountLinearExtensions(); got != want.Uint64() {
			t.Errorf("stripes=%d per=%d: %d extensions, want (%d!)^%d = %v",
				tc.stripes, tc.per, got, tc.per, tc.stripes, want)
		}
	}
}

func TestHardStripeWidth(t *testing.T) {
	// The width of the stripe poset is the stripe size (each stripe is an
	// antichain; stripes are stacked).
	p, err := HardStripePoset(3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, w := p.MaxAntichain(); w != 5 {
		t.Errorf("stripe poset width %d, want 5", w)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(MaxElems + 1); err == nil {
		t.Error("oversized poset accepted")
	}
	if _, err := New(-1); err == nil {
		t.Error("negative size accepted")
	}
}

func TestPosetN(t *testing.T) {
	p, _ := New(7)
	if p.N() != 7 {
		t.Errorf("N = %d", p.N())
	}
}
