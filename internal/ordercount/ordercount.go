// Package ordercount makes the order-theoretic machinery of the paper's
// lower-bound proofs executable at small scale: exact counting of the linear
// extensions CP(≺, X) of a partial order, maximum antichains and minimum
// chain partitions (Dilworth's theorem, the paper's Theorem 7), and thereby
// numerical verification of Fact 4 (product rule for stacked posets), Fact 5
// (the binomial subset inequality) and Lemma 3 (lg|CP| <= n lg w + O(lg n)).
//
// The proofs in §2 bound |CP(≺*, S)| for the order an algorithm has learned;
// this package lets tests check those combinatorial inequalities exactly on
// every small poset they can throw at them, including the Π_hard stripe
// structure whose count ((N/B)!)^B drives Lemma 1.
//
// Sizes are capped at 20 elements: linear-extension counting is #P-hard in
// general and the exact downset DP used here is Θ(2^n · n); 20! still fits
// in uint64.
package ordercount

import (
	"fmt"
	"math/big"
	"math/bits"
)

// MaxElems bounds the poset size the exact counter accepts.
const MaxElems = 20

// Poset is a partial order over elements 0..n-1, stored as transitively
// closed predecessor masks: pred[i] has bit j set iff j ≺ i.
type Poset struct {
	n    int
	pred []uint32
	succ []uint32
}

// New creates an antichain (no relations) over n elements.
func New(n int) (*Poset, error) {
	if n < 0 || n > MaxElems {
		return nil, fmt.Errorf("ordercount: n=%d out of [0,%d]", n, MaxElems)
	}
	return &Poset{n: n, pred: make([]uint32, n), succ: make([]uint32, n)}, nil
}

// N returns the number of elements.
func (p *Poset) N() int { return p.n }

// AddLess records i ≺ j and re-closes the order transitively. Adding a
// relation that would create a cycle is an error.
func (p *Poset) AddLess(i, j int) error {
	if i < 0 || i >= p.n || j < 0 || j >= p.n || i == j {
		return fmt.Errorf("ordercount: bad relation %d ≺ %d", i, j)
	}
	if p.pred[i]&(1<<j) != 0 {
		return fmt.Errorf("ordercount: %d ≺ %d would create a cycle", i, j)
	}
	// Everything at or below i precedes everything at or above j.
	lows := p.pred[i] | 1<<i
	highs := p.succ[j] | 1<<j
	for a := 0; a < p.n; a++ {
		if lows&(1<<a) != 0 {
			p.succ[a] |= highs
		}
		if highs&(1<<a) != 0 {
			p.pred[a] |= lows
		}
	}
	return nil
}

// Less reports whether i ≺ j.
func (p *Poset) Less(i, j int) bool { return p.pred[j]&(1<<i) != 0 }

// Comparable reports whether i and j are ordered either way.
func (p *Poset) Comparable(i, j int) bool { return p.Less(i, j) || p.Less(j, i) }

// CountLinearExtensions returns |CP(≺, X)| exactly, by the standard dynamic
// program over downsets: the number of ways to extend a downset S is the sum
// over maximal elements of S of the count for S minus that element.
// Θ(2^n · n) time, Θ(2^n) space.
func (p *Poset) CountLinearExtensions() uint64 {
	if p.n == 0 {
		return 1
	}
	full := uint32(1)<<p.n - 1
	dp := make([]uint64, full+1)
	dp[0] = 1
	for s := uint32(1); s <= full; s++ {
		var total uint64
		rest := s
		for rest != 0 {
			i := bits.TrailingZeros32(rest)
			rest &= rest - 1
			// i is maximal in the downset s iff none of its successors is in s.
			if p.succ[i]&s == 0 {
				total += dp[s&^(1<<i)]
			}
		}
		dp[s] = total
	}
	return dp[full]
}

// CountLinearExtensionsOf counts the linear extensions of the sub-poset
// induced by the element set given as a bitmask.
func (p *Poset) CountLinearExtensionsOf(subset uint32) uint64 {
	return p.Induce(subset).CountLinearExtensions()
}

// Induce builds the sub-poset on the elements of subset (a bitmask),
// renumbering them by ascending original index.
func (p *Poset) Induce(subset uint32) *Poset {
	var idx []int
	for i := 0; i < p.n; i++ {
		if subset&(1<<i) != 0 {
			idx = append(idx, i)
		}
	}
	q, _ := New(len(idx))
	for a, i := range idx {
		for b, j := range idx {
			if p.Less(i, j) {
				q.pred[b] |= 1 << a
				q.succ[a] |= 1 << b
			}
		}
	}
	return q
}

// MaxAntichain returns a maximum set of pairwise incomparable elements (as a
// bitmask) and its size, via Dilworth's theorem: a minimum chain cover has
// n - maxMatching chains, and König's construction turns a maximum matching
// of the comparability DAG into a maximum antichain of the same size.
func (p *Poset) MaxAntichain() (uint32, int) {
	matchL, matchR := p.maxMatching()
	// König: minimum vertex cover from the matching on the bipartite graph
	// L = elements (as chain heads), R = elements (as chain tails),
	// edge (i, j) iff i ≺ j. Alternating BFS from unmatched L vertices.
	visL := make([]bool, p.n)
	visR := make([]bool, p.n)
	var stack []int
	for i := 0; i < p.n; i++ {
		if matchL[i] == -1 {
			visL[i] = true
			stack = append(stack, i)
		}
	}
	for len(stack) > 0 {
		i := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for j := 0; j < p.n; j++ {
			if p.Less(i, j) && !visR[j] {
				visR[j] = true
				if k := matchR[j]; k != -1 && !visL[k] {
					visL[k] = true
					stack = append(stack, k)
				}
			}
		}
	}
	// Vertex cover = (L not visited) ∪ (R visited). An element is in the
	// antichain iff neither of its two copies is in the cover.
	var anti uint32
	size := 0
	for i := 0; i < p.n; i++ {
		if visL[i] && !visR[i] {
			anti |= 1 << i
			size++
		}
	}
	return anti, size
}

// MinChainCover returns a partition of the elements into the minimum number
// of chains (each chain listed in increasing order), via the same matching.
func (p *Poset) MinChainCover() [][]int {
	matchL, matchR := p.maxMatching()
	var chains [][]int
	for i := 0; i < p.n; i++ {
		if matchR[i] != -1 {
			continue // not a chain head (has a predecessor in the cover)
		}
		chain := []int{i}
		for cur := i; matchL[cur] != -1; {
			cur = matchL[cur]
			chain = append(chain, cur)
		}
		chains = append(chains, chain)
	}
	return chains
}

// maxMatching computes a maximum matching of the bipartite comparability
// graph (edge i -> j iff i ≺ j) by simple augmenting paths: adequate for
// n <= 20.
func (p *Poset) maxMatching() (matchL, matchR []int) {
	matchL = make([]int, p.n)
	matchR = make([]int, p.n)
	for i := range matchL {
		matchL[i] = -1
		matchR[i] = -1
	}
	var try func(i int, seen []bool) bool
	try = func(i int, seen []bool) bool {
		for j := 0; j < p.n; j++ {
			if p.Less(i, j) && !seen[j] {
				seen[j] = true
				if matchR[j] == -1 || try(matchR[j], seen) {
					matchL[i] = j
					matchR[j] = i
					return true
				}
			}
		}
		return false
	}
	for i := 0; i < p.n; i++ {
		try(i, make([]bool, p.n))
	}
	return matchL, matchR
}

// Binomial returns C(n, k) exactly.
func Binomial(n, k int) *big.Int {
	return new(big.Int).Binomial(int64(n), int64(k))
}

// Factorial returns n! exactly.
func Factorial(n int) *big.Int {
	return new(big.Int).MulRange(1, int64(n))
}

// HardStripePoset builds the Π_hard structure of §2.1 at small scale:
// stripes of `perStripe` free elements each, with every element of stripe i
// preceding every element of stripe i+1. Its linear extension count is
// (perStripe!)^stripes, the |Π_hard| of Lemma 1.
func HardStripePoset(stripes, perStripe int) (*Poset, error) {
	n := stripes * perStripe
	p, err := New(n)
	if err != nil {
		return nil, err
	}
	at := func(s, k int) int { return s*perStripe + k }
	for s := 0; s+1 < stripes; s++ {
		for a := 0; a < perStripe; a++ {
			for b := 0; b < perStripe; b++ {
				if err := p.AddLess(at(s, a), at(s+1, b)); err != nil {
					return nil, err
				}
			}
		}
	}
	return p, nil
}
