// Package workload generates input files for tests, examples and benchmarks.
// Generators are harness-side: they stage data with emio.BuildFile (uncounted
// I/O) and callers reset the disk statistics before running the algorithm
// under measurement.
//
// Every generated element carries a unique Aux (its position), making the
// (Key, Aux) order total — the library-wide convention.
package workload

import (
	"fmt"
	"math/rand/v2"

	"repro/internal/emio"
)

// Kind selects an input distribution.
type Kind int

const (
	// Uniform draws keys uniformly from a range much larger than n.
	Uniform Kind = iota
	// Sorted produces keys 0..n-1 in order: best case for run formation.
	Sorted
	// Reverse produces keys n-1..0: maximally descending.
	Reverse
	// FewDistinct draws keys from just 8 values: duplicate-heavy.
	FewDistinct
	// AllEqual gives every element the same key: the degenerate extreme.
	AllEqual
	// OrganPipe rises to a peak then falls: adversarial for naive pivoting.
	OrganPipe
	// HardStripes realises a random member of the paper's Π_hard family
	// (§2.1): element at offset i of every block belongs to stripe S_i, and
	// all of S_i precedes all of S_{i+1} in key order, while each stripe is
	// internally shuffled across blocks.
	HardStripes
	// ZipfLike draws keys with a heavy-tailed frequency profile: a few keys
	// dominate, as in skewed real-world data.
	ZipfLike
)

var kindNames = map[Kind]string{
	Uniform:     "uniform",
	Sorted:      "sorted",
	Reverse:     "reverse",
	FewDistinct: "fewdistinct",
	AllEqual:    "allequal",
	OrganPipe:   "organpipe",
	HardStripes: "hardstripes",
	ZipfLike:    "zipf",
}

// String returns the distribution name used by CLI flags.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Kinds lists every distribution, for sweeps.
func Kinds() []Kind {
	return []Kind{Uniform, Sorted, Reverse, FewDistinct, AllEqual, OrganPipe, HardStripes, ZipfLike}
}

// KindByName resolves a distribution name, for CLI flags.
func KindByName(name string) (Kind, error) {
	for k, s := range kindNames {
		if s == name {
			return k, nil
		}
	}
	return 0, fmt.Errorf("workload: unknown distribution %q", name)
}

// Elems generates n elements of the given kind. blockSize is only used by
// HardStripes (the stripe structure is defined per block).
func Elems(kind Kind, n, blockSize int, seed uint64) []emio.Elem {
	rng := rand.New(rand.NewPCG(seed, 0x9e3779b97f4a7c15))
	out := make([]emio.Elem, n)
	switch kind {
	case Uniform:
		for i := range out {
			out[i] = emio.Elem{Key: rng.Int64N(int64(n)*16 + 1), Aux: int64(i)}
		}
	case Sorted:
		for i := range out {
			out[i] = emio.Elem{Key: int64(i), Aux: int64(i)}
		}
	case Reverse:
		for i := range out {
			out[i] = emio.Elem{Key: int64(n - 1 - i), Aux: int64(i)}
		}
	case FewDistinct:
		for i := range out {
			out[i] = emio.Elem{Key: rng.Int64N(8), Aux: int64(i)}
		}
	case AllEqual:
		for i := range out {
			out[i] = emio.Elem{Key: 7, Aux: int64(i)}
		}
	case OrganPipe:
		for i := range out {
			k := int64(i)
			if i > n/2 {
				k = int64(n - i)
			}
			out[i] = emio.Elem{Key: k, Aux: int64(i)}
		}
	case HardStripes:
		fillHardStripes(out, blockSize, rng)
	case ZipfLike:
		for i := range out {
			// Key frequency ~ 1/(rank+1): invert a uniform draw.
			u := rng.Float64()
			k := int64(1)
			for u < 0.5 && k < 40 {
				u *= 2
				k++
			}
			out[i] = emio.Elem{Key: k*1000 + rng.Int64N(1000), Aux: int64(i)}
		}
	default:
		panic(fmt.Sprintf("workload: unknown kind %d", kind))
	}
	return out
}

// fillHardStripes writes a random permutation from Π_hard: with blocks of B
// elements, stripe i (0 <= i < B) owns the elements at offset i of every
// block; stripe keys are disjoint ascending ranges; within a stripe, the
// assignment of keys to blocks is a uniform random permutation.
func fillHardStripes(out []emio.Elem, blockSize int, rng *rand.Rand) {
	n := len(out)
	if blockSize < 1 {
		blockSize = 1
	}
	blocks := (n + blockSize - 1) / blockSize
	perm := make([]int64, blocks)
	for i := range perm {
		perm[i] = int64(i)
	}
	for off := 0; off < blockSize; off++ {
		rng.Shuffle(blocks, func(a, b int) { perm[a], perm[b] = perm[b], perm[a] })
		base := int64(off) * int64(blocks) // stripe key range start
		for j := 0; j < blocks; j++ {
			pos := j*blockSize + off
			if pos < n {
				out[pos] = emio.Elem{Key: base + perm[j], Aux: int64(pos)}
			}
		}
	}
}

// File generates n elements and stages them as a file on the disk.
func File(d *emio.Disk, kind Kind, n int, seed uint64) *emio.File {
	elems := Elems(kind, n, d.BlockSize(), seed)
	return emio.BuildFile(d, kind.String(), elems)
}
