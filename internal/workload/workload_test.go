package workload

import (
	"testing"

	"repro/internal/emio"
)

func TestEveryKindBasics(t *testing.T) {
	const n = 1000
	for _, kind := range Kinds() {
		elems := Elems(kind, n, 8, 42)
		if len(elems) != n {
			t.Fatalf("%v: %d elements, want %d", kind, len(elems), n)
		}
		seen := make(map[int64]bool, n)
		for i, e := range elems {
			if e.Aux != int64(i) {
				t.Fatalf("%v: Aux at %d is %d, want position", kind, i, e.Aux)
			}
			if seen[e.Aux] {
				t.Fatalf("%v: duplicate Aux %d", kind, e.Aux)
			}
			seen[e.Aux] = true
		}
	}
}

func TestSortedAndReverse(t *testing.T) {
	asc := Elems(Sorted, 100, 8, 1)
	for i := 1; i < len(asc); i++ {
		if asc[i].Key <= asc[i-1].Key {
			t.Fatal("Sorted not ascending")
		}
	}
	desc := Elems(Reverse, 100, 8, 1)
	for i := 1; i < len(desc); i++ {
		if desc[i].Key >= desc[i-1].Key {
			t.Fatal("Reverse not descending")
		}
	}
}

func TestAllEqualAndFewDistinct(t *testing.T) {
	eq := Elems(AllEqual, 50, 8, 1)
	for _, e := range eq {
		if e.Key != eq[0].Key {
			t.Fatal("AllEqual keys differ")
		}
	}
	few := Elems(FewDistinct, 1000, 8, 1)
	keys := map[int64]bool{}
	for _, e := range few {
		keys[e.Key] = true
	}
	if len(keys) > 8 || len(keys) < 2 {
		t.Fatalf("FewDistinct produced %d distinct keys", len(keys))
	}
}

func TestOrganPipeShape(t *testing.T) {
	s := Elems(OrganPipe, 101, 8, 1)
	peak := 0
	for i, e := range s {
		if e.Key > s[peak].Key {
			peak = i
		}
	}
	for i := 1; i <= peak; i++ {
		if s[i].Key < s[i-1].Key {
			t.Fatal("not rising before peak")
		}
	}
	for i := peak + 1; i < len(s); i++ {
		if s[i].Key > s[i-1].Key {
			t.Fatal("not falling after peak")
		}
	}
}

func TestHardStripesStructure(t *testing.T) {
	// In a Π_hard permutation with blocks of size B, every element at block
	// offset i must be smaller than every element at offset j > i, and keys
	// must be a permutation of 0..n-1.
	const n, bs = 1024, 8
	s := Elems(HardStripes, n, bs, 7)
	var stripeMax [bs]int64
	var stripeMin [bs]int64
	for i := range stripeMin {
		stripeMin[i] = 1 << 62
		stripeMax[i] = -1
	}
	seen := make(map[int64]bool, n)
	for pos, e := range s {
		off := pos % bs
		if e.Key > stripeMax[off] {
			stripeMax[off] = e.Key
		}
		if e.Key < stripeMin[off] {
			stripeMin[off] = e.Key
		}
		if seen[e.Key] {
			t.Fatalf("duplicate key %d", e.Key)
		}
		seen[e.Key] = true
	}
	for off := 1; off < bs; off++ {
		if stripeMin[off] <= stripeMax[off-1] {
			t.Fatalf("stripe %d min %d <= stripe %d max %d",
				off, stripeMin[off], off-1, stripeMax[off-1])
		}
	}
	for k := int64(0); k < n; k++ {
		if !seen[k] {
			t.Fatalf("key %d missing: not a permutation of 0..n-1", k)
		}
	}
}

func TestHardStripesPartialLastBlock(t *testing.T) {
	s := Elems(HardStripes, 1000, 8, 3) // 1000 % 8 != 0
	if len(s) != 1000 {
		t.Fatalf("%d elements", len(s))
	}
	for i, e := range s {
		if e.Aux != int64(i) {
			t.Fatalf("Aux mismatch at %d", i)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	s := Elems(ZipfLike, 10000, 8, 5)
	counts := map[int64]int{}
	for _, e := range s {
		counts[e.Key/1000]++ // bucket by frequency tier
	}
	if counts[1] < counts[5] {
		t.Errorf("tier 1 (%d) not more frequent than tier 5 (%d)", counts[1], counts[5])
	}
}

func TestDeterminism(t *testing.T) {
	a := Elems(Uniform, 500, 8, 99)
	b := Elems(Uniform, 500, 8, 99)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed, different data")
		}
	}
	c := Elems(Uniform, 500, 8, 100)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds, same data")
	}
}

func TestKindByName(t *testing.T) {
	for _, k := range Kinds() {
		got, err := KindByName(k.String())
		if err != nil || got != k {
			t.Errorf("round-trip %v: got %v, %v", k, got, err)
		}
	}
	if _, err := KindByName("nope"); err == nil {
		t.Error("unknown name accepted")
	}
}

func TestFileStaging(t *testing.T) {
	d := emio.NewDisk(8)
	f := File(d, Uniform, 100, 1)
	if f.Len() != 100 {
		t.Fatalf("file holds %d", f.Len())
	}
	if d.Stats().Total() != 0 {
		t.Fatalf("staging charged %v I/Os", d.Stats())
	}
}
