// Package emsel implements exact single-rank selection on a file in O(n/B)
// I/Os: the external-memory form of the BFPRT median-of-medians algorithm
// (reference [3] of the paper). It is the L=1 special case of the
// L-intermixed selection primitive of paper §4.1, kept separate because the
// higher-level algorithms (two-sided splitters and partitioning, the
// multi-partition boundary case) need plain single selections on raw element
// files without the group-packing transform.
package emsel

import (
	"fmt"

	"repro/internal/emio"
	"repro/internal/inmem"
)

// Select returns the element of rank k (1-based) in f under the (Key, Aux)
// total order, in O(n/B) expected I/Os using randomized pivots (a median of
// random probes; about two scan-equivalents per halving, geometric total).
// The input file is not modified. SelectDeterministic gives the same answer
// with a worst-case guarantee at a higher constant.
func Select(ctx *emio.Ctx, f *emio.File, k int64) (emio.Elem, error) {
	return selectBy(ctx, f, k, randomPivot)
}

// SelectDeterministic is Select with the BFPRT median-of-medians pivot:
// worst-case O(n/B) I/Os, at roughly three times the constant of the
// randomized default.
func SelectDeterministic(ctx *emio.Ctx, f *emio.File, k int64) (emio.Elem, error) {
	return selectBy(ctx, f, k, medianOfMedians)
}

func selectBy(ctx *emio.Ctx, f *emio.File, k int64, pivoter func(*emio.Ctx, *emio.File) (emio.Elem, error)) (emio.Elem, error) {
	if k < 1 || k > f.Len() {
		return emio.Elem{}, fmt.Errorf("emsel: rank %d out of [1,%d]", k, f.Len())
	}
	sp := ctx.StartSpan("emsel/select", emio.AttrInt("n", f.Len()), emio.AttrInt("rank", k))
	defer sp.End()
	cur, owned := f, false
	for {
		n := cur.Len()
		if n <= int64(ctx.M()/3) {
			buf, err := emio.LoadAll(ctx, cur)
			if err != nil {
				return emio.Elem{}, err
			}
			e := inmem.Select(buf, int(k))
			ctx.FreeElems(buf)
			if owned {
				cur.Release()
			}
			return e, nil
		}

		rsp := ctx.StartSpan("emsel/round", emio.AttrInt("n", n))
		pivot, err := pivoter(ctx, cur)
		if err != nil {
			rsp.End()
			if owned {
				cur.Release()
			}
			return emio.Elem{}, err
		}

		less, greater, lt, eq, err := partitionAround(ctx, cur, pivot)
		rsp.End()
		if owned {
			cur.Release()
		}
		if err != nil {
			return emio.Elem{}, err
		}
		switch {
		case k <= lt:
			greater.Release()
			cur, owned = less, true
		case k <= lt+eq:
			less.Release()
			greater.Release()
			return pivot, nil
		default:
			less.Release()
			cur, owned = greater, true
			k -= lt + eq
		}
	}
}

// medianOfMedians streams f in groups of five, writes the group medians to a
// scratch file, and recursively selects that file's median: the standard
// BFPRT pivot, guaranteeing at least (3/10)n - O(1) elements on each side.
func medianOfMedians(ctx *emio.Ctx, f *emio.File) (emio.Elem, error) {
	sigma := ctx.Scratch("mom")
	w, err := emio.NewWriter(ctx, sigma)
	if err != nil {
		return emio.Elem{}, err
	}
	r, err := emio.NewReader(ctx, f)
	if err != nil {
		w.Close()
		return emio.Elem{}, err
	}
	var grp [5]emio.Elem
	g := 0
	for {
		e, ok := r.Next()
		if !ok {
			break
		}
		grp[g] = e
		g++
		if g == 5 {
			w.Append(inmem.MedianOfFive(grp[:]))
			g = 0
		}
	}
	if err := r.Err(); err != nil {
		r.Close()
		w.Close()
		return emio.Elem{}, err
	}
	r.Close()
	if g > 0 {
		w.Append(inmem.MedianOfFive(grp[:g]))
	}
	if err := w.Close(); err != nil {
		return emio.Elem{}, err
	}
	pivot, err := SelectDeterministic(ctx, sigma, (sigma.Len()+1)/2)
	sigma.Release()
	return pivot, err
}

// randomPivot samples a few dozen elements by random block probes and returns
// their median: within a constant rank-distance of the true median with high
// probability, at O(lg n) I/Os — negligible against the partition scan.
// Partial last blocks bias the per-element weights slightly, which affects
// only the constant, never correctness (any returned element is a valid
// pivot).
func randomPivot(ctx *emio.Ctx, f *emio.File) (emio.Elem, error) {
	const probes = 33
	buf, err := ctx.AllocElems(ctx.B())
	if err != nil {
		return emio.Elem{}, err
	}
	defer ctx.FreeElems(buf)
	var sample [probes]emio.Elem
	rng := ctx.Rng()
	nb := f.NumBlocks()
	for i := 0; i < probes; i++ {
		n, err := f.ReadBlock(rng.IntN(nb), buf)
		if err != nil {
			return emio.Elem{}, err
		}
		sample[i] = buf[rng.IntN(n)]
	}
	s := sample[:]
	inmem.Sort(s)
	return s[probes/2], nil
}

// partitionAround splits f into the elements strictly less than and strictly
// greater than pivot, counting the ones equal to it, in one scan.
func partitionAround(ctx *emio.Ctx, f *emio.File, pivot emio.Elem) (less, greater *emio.File, lt, eq int64, err error) {
	less = ctx.Scratch("lt")
	greater = ctx.Scratch("gt")
	wl, err := emio.NewWriter(ctx, less)
	if err != nil {
		return nil, nil, 0, 0, err
	}
	wg, err := emio.NewWriter(ctx, greater)
	if err != nil {
		wl.Close()
		return nil, nil, 0, 0, err
	}
	r, err := emio.NewReader(ctx, f)
	if err != nil {
		wl.Close()
		wg.Close()
		return nil, nil, 0, 0, err
	}
	for {
		e, ok := r.Next()
		if !ok {
			break
		}
		switch emio.Compare(e, pivot) {
		case -1:
			wl.Append(e)
			lt++
		case 0:
			eq++
		default:
			wg.Append(e)
		}
	}
	rerr := r.Err()
	r.Close()
	if err := wl.Close(); err != nil && rerr == nil {
		rerr = err
	}
	if err := wg.Close(); err != nil && rerr == nil {
		rerr = err
	}
	if rerr != nil {
		less.Release()
		greater.Release()
		return nil, nil, 0, 0, rerr
	}
	return less, greater, lt, eq, nil
}

// SplitAtRank divides f into the k smallest elements and the n-k remaining
// ones, as two new files, in O(n/B) I/Os (one selection plus one distribution
// scan). It also returns the boundary element, the one of rank k (zero Elem
// when k is 0). Boundary ties are routed by count, so the split is exact even
// under fully duplicate records.
func SplitAtRank(ctx *emio.Ctx, f *emio.File, k int64) (low, high *emio.File, boundary emio.Elem, err error) {
	if k < 0 || k > f.Len() {
		return nil, nil, emio.Elem{}, fmt.Errorf("emsel: split rank %d out of [0,%d]", k, f.Len())
	}
	sp := ctx.StartSpan("emsel/split-at-rank", emio.AttrInt("n", f.Len()), emio.AttrInt("rank", k))
	defer sp.End()
	low = ctx.Scratch("low")
	high = ctx.Scratch("high")
	if k == 0 || k == f.Len() {
		// One side is everything; still perform the copy so the caller owns
		// independent files.
		dst, b := low, emio.Elem{}
		if k == 0 {
			dst = high
		} else if b, err = Select(ctx, f, k); err != nil {
			low.Release()
			high.Release()
			return nil, nil, emio.Elem{}, err
		}
		if err := emio.AppendAll(ctx, dst, f); err != nil {
			low.Release()
			high.Release()
			return nil, nil, emio.Elem{}, err
		}
		return low, high, b, nil
	}
	pivot, err := Select(ctx, f, k)
	if err != nil {
		low.Release()
		high.Release()
		return nil, nil, emio.Elem{}, err
	}
	wl, err := emio.NewWriter(ctx, low)
	if err != nil {
		low.Release()
		high.Release()
		return nil, nil, emio.Elem{}, err
	}
	wh, err := emio.NewWriter(ctx, high)
	if err != nil {
		wl.Close()
		low.Release()
		high.Release()
		return nil, nil, emio.Elem{}, err
	}
	r, err := emio.NewReader(ctx, f)
	if err != nil {
		wl.Close()
		wh.Close()
		low.Release()
		high.Release()
		return nil, nil, emio.Elem{}, err
	}
	// Records equal to the pivot are bit-identical to it, so they can be
	// counted during the scan and materialised afterwards: low needs exactly
	// k - #(<pivot) of them, which is unknown until the scan ends.
	var lt, eq int64
	for {
		e, ok := r.Next()
		if !ok {
			break
		}
		switch emio.Compare(e, pivot) {
		case -1:
			wl.Append(e)
			lt++
		case 0:
			eq++
		default:
			wh.Append(e)
		}
	}
	rerr := r.Err()
	if rerr == nil && (lt >= k || lt+eq < k) {
		rerr = fmt.Errorf("emsel: SplitAtRank inconsistent pivot (lt=%d eq=%d k=%d)", lt, eq, k)
	}
	if rerr == nil {
		for i := lt; i < lt+eq; i++ {
			if i < k {
				wl.Append(pivot)
			} else {
				wh.Append(pivot)
			}
		}
	}
	r.Close()
	if err := wl.Close(); err != nil && rerr == nil {
		rerr = err
	}
	if err := wh.Close(); err != nil && rerr == nil {
		rerr = err
	}
	if rerr != nil {
		low.Release()
		high.Release()
		return nil, nil, emio.Elem{}, rerr
	}
	return low, high, pivot, nil
}
