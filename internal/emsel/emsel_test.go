package emsel

import (
	"math/rand/v2"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/emio"
)

func mustCtx(t *testing.T, m, b int) *emio.Ctx {
	t.Helper()
	ctx, err := emio.NewCtx(emio.Config{M: m, B: b})
	if err != nil {
		t.Fatal(err)
	}
	return ctx
}

func randElems(n int, keyRange int64, rng *rand.Rand) []emio.Elem {
	s := make([]emio.Elem, n)
	for i := range s {
		s[i] = emio.Elem{Key: rng.Int64N(keyRange), Aux: int64(i)}
	}
	return s
}

func sortedCopy(s []emio.Elem) []emio.Elem {
	c := append([]emio.Elem(nil), s...)
	sort.Slice(c, func(i, j int) bool { return emio.Less(c[i], c[j]) })
	return c
}

func TestSelectExactRanks(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	ctx := mustCtx(t, 64, 8)
	in := randElems(2000, 5000, rng)
	f := emio.BuildFile(ctx.Disk(), "sel", in)
	want := sortedCopy(in)
	for _, k := range []int64{1, 2, 500, 1000, 1500, 1999, 2000} {
		got, err := Select(ctx, f, k)
		if err != nil {
			t.Fatalf("rank %d: %v", k, err)
		}
		if got != want[k-1] {
			t.Fatalf("rank %d = %v, want %v", k, got, want[k-1])
		}
	}
	if ctx.Mem().Used() != 0 {
		t.Fatalf("leaked %d memory", ctx.Mem().Used())
	}
}

func TestSelectSmallFilesAllRanks(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 2))
	for _, n := range []int{1, 2, 7, 40, 100} {
		ctx := mustCtx(t, 32, 4)
		in := randElems(n, 50, rng)
		f := emio.BuildFile(ctx.Disk(), "s", in)
		want := sortedCopy(in)
		for k := 1; k <= n; k++ {
			got, err := Select(ctx, f, int64(k))
			if err != nil {
				t.Fatalf("n=%d k=%d: %v", n, k, err)
			}
			if got != want[k-1] {
				t.Fatalf("n=%d rank %d = %v, want %v", n, k, got, want[k-1])
			}
		}
	}
}

func TestSelectDuplicateKeys(t *testing.T) {
	ctx := mustCtx(t, 64, 8)
	in := make([]emio.Elem, 1000)
	for i := range in {
		in[i] = emio.Elem{Key: int64(i % 5), Aux: int64(i)}
	}
	f := emio.BuildFile(ctx.Disk(), "dup", in)
	want := sortedCopy(in)
	for _, k := range []int64{1, 200, 201, 999} {
		got, err := Select(ctx, f, k)
		if err != nil || got != want[k-1] {
			t.Fatalf("rank %d = %v (err %v), want %v", k, got, err, want[k-1])
		}
	}
}

func TestSelectFullyDuplicateRecords(t *testing.T) {
	ctx := mustCtx(t, 32, 4)
	in := make([]emio.Elem, 500)
	for i := range in {
		in[i] = emio.Elem{Key: 9, Aux: 9}
	}
	f := emio.BuildFile(ctx.Disk(), "same", in)
	got, err := Select(ctx, f, 250)
	if err != nil || got != (emio.Elem{Key: 9, Aux: 9}) {
		t.Fatalf("Select on identical records = %v, %v", got, err)
	}
}

func TestSelectRankOutOfRange(t *testing.T) {
	ctx := mustCtx(t, 64, 8)
	f := emio.BuildFile(ctx.Disk(), "r", randElems(10, 10, rand.New(rand.NewPCG(3, 3))))
	for _, k := range []int64{0, -1, 11} {
		if _, err := Select(ctx, f, k); err == nil {
			t.Errorf("rank %d accepted", k)
		}
	}
}

func TestSelectLinearIO(t *testing.T) {
	// Selection must cost O(n/B): assert measured I/O <= c * n/B with a
	// generous constant, and confirm the constant does not grow with n
	// (which would indicate an extra log factor).
	type point struct{ n, io int64 }
	var pts []point
	for _, n := range []int{1 << 12, 1 << 14, 1 << 16} {
		ctx := mustCtx(t, 1<<10, 32)
		in := randElems(n, int64(n), rand.New(rand.NewPCG(4, 4)))
		f := emio.BuildFile(ctx.Disk(), "lin", in)
		ctx.Disk().ResetStats()
		if _, err := Select(ctx, f, int64(n/2)); err != nil {
			t.Fatal(err)
		}
		pts = append(pts, point{int64(n), ctx.Disk().Stats().Total()})
	}
	for _, p := range pts {
		scans := float64(p.io) / (float64(p.n) / 32)
		if scans > 12 {
			t.Errorf("n=%d: %.1f scan-equivalents, want O(1) (<=12)", p.n, scans)
		}
	}
	// Growth between quadrupling n should be about 4x, not 4x*log-factor.
	r1 := float64(pts[1].io) / float64(pts[0].io)
	r2 := float64(pts[2].io) / float64(pts[1].io)
	if r2 > r1*1.5 {
		t.Errorf("I/O growth accelerating: %0.2f then %0.2f per 4x n", r1, r2)
	}
}

func TestSelectInputUntouched(t *testing.T) {
	ctx := mustCtx(t, 64, 8)
	in := randElems(300, 300, rand.New(rand.NewPCG(5, 5)))
	f := emio.BuildFile(ctx.Disk(), "ro", in)
	if _, err := Select(ctx, f, 150); err != nil {
		t.Fatal(err)
	}
	got := f.Snapshot()
	for i := range in {
		if got[i] != in[i] {
			t.Fatalf("input mutated at %d", i)
		}
	}
}

func TestSplitAtRank(t *testing.T) {
	rng := rand.New(rand.NewPCG(6, 6))
	for _, k := range []int64{0, 1, 250, 499, 500} {
		ctx := mustCtx(t, 64, 8)
		in := randElems(500, 100, rng) // duplicate-heavy keys
		f := emio.BuildFile(ctx.Disk(), "split", in)
		low, high, bnd, err := SplitAtRank(ctx, f, k)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if low.Len() != k || high.Len() != 500-k {
			t.Fatalf("k=%d: |low|=%d |high|=%d", k, low.Len(), high.Len())
		}
		if k > 0 {
			if want := sortedCopy(in)[k-1]; bnd != want {
				t.Fatalf("k=%d: boundary %v, want %v", k, bnd, want)
			}
		}
		ls, hs := low.Snapshot(), high.Snapshot()
		// Every low element must be <= every high element; with the total
		// order, max(low) <= min(high).
		var lmax, hmin emio.Elem
		for i, e := range ls {
			if i == 0 || emio.Less(lmax, e) {
				lmax = e
			}
		}
		for i, e := range hs {
			if i == 0 || emio.Less(e, hmin) {
				hmin = e
			}
		}
		if len(ls) > 0 && len(hs) > 0 && emio.Less(hmin, lmax) {
			t.Fatalf("k=%d: max(low)=%v > min(high)=%v", k, lmax, hmin)
		}
		// Multiset preservation.
		all := sortedCopy(append(ls, hs...))
		want := sortedCopy(in)
		for i := range want {
			if all[i] != want[i] {
				t.Fatalf("k=%d: multiset broken at %d", k, i)
			}
		}
		if ctx.Mem().Used() != 0 {
			t.Fatalf("k=%d: leaked %d", k, ctx.Mem().Used())
		}
	}
}

func TestSplitAtRankIdenticalRecords(t *testing.T) {
	ctx := mustCtx(t, 32, 4)
	in := make([]emio.Elem, 100)
	for i := range in {
		in[i] = emio.Elem{Key: 3, Aux: 3}
	}
	f := emio.BuildFile(ctx.Disk(), "same", in)
	low, high, bnd, err := SplitAtRank(ctx, f, 37)
	if err != nil {
		t.Fatal(err)
	}
	if low.Len() != 37 || high.Len() != 63 {
		t.Fatalf("|low|=%d |high|=%d", low.Len(), high.Len())
	}
	if bnd != (emio.Elem{Key: 3, Aux: 3}) {
		t.Fatalf("boundary %v", bnd)
	}
}

func TestSplitAtRankBadRank(t *testing.T) {
	ctx := mustCtx(t, 64, 8)
	f := emio.BuildFile(ctx.Disk(), "b", randElems(10, 10, rand.New(rand.NewPCG(7, 7))))
	for _, k := range []int64{-1, 11} {
		if _, _, _, err := SplitAtRank(ctx, f, k); err == nil {
			t.Errorf("rank %d accepted", k)
		}
	}
}

func TestSelectProperty(t *testing.T) {
	prop := func(keys []int64, kraw uint) bool {
		if len(keys) == 0 {
			return true
		}
		ctx, err := emio.NewCtx(emio.Config{M: 32, B: 4})
		if err != nil {
			return false
		}
		in := make([]emio.Elem, len(keys))
		for i, key := range keys {
			in[i] = emio.Elem{Key: key % 16, Aux: int64(i)} // force duplicates
		}
		k := int64(kraw%uint(len(in))) + 1
		f := emio.BuildFile(ctx.Disk(), "p", in)
		got, err := Select(ctx, f, k)
		if err != nil {
			return false
		}
		return got == sortedCopy(in)[k-1] && ctx.Mem().Used() == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSelectDeterministicMatchesRandomized(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 11))
	ctx := mustCtx(t, 256, 16)
	in := randElems(5000, 500, rng)
	f := emio.BuildFile(ctx.Disk(), "both", in)
	want := sortedCopy(in)
	for _, k := range []int64{1, 1234, 2500, 5000} {
		a, err := Select(ctx, f, k)
		if err != nil {
			t.Fatalf("rank %d randomized: %v", k, err)
		}
		b, err := SelectDeterministic(ctx, f, k)
		if err != nil {
			t.Fatalf("rank %d deterministic: %v", k, err)
		}
		if a != want[k-1] || b != want[k-1] {
			t.Fatalf("rank %d: randomized %v, deterministic %v, want %v", k, a, b, want[k-1])
		}
	}
	if ctx.Mem().Used() != 0 {
		t.Fatalf("leaked %d", ctx.Mem().Used())
	}
}

func TestRandomizedSelectCheaperThanDeterministic(t *testing.T) {
	n := 1 << 16
	ctx := mustCtx(t, 1<<10, 32)
	in := randElems(n, int64(n), rand.New(rand.NewPCG(12, 12)))
	f := emio.BuildFile(ctx.Disk(), "cost", in)
	ctx.Disk().ResetStats()
	if _, err := Select(ctx, f, int64(n/2)); err != nil {
		t.Fatal(err)
	}
	randIO := ctx.Disk().Stats().Total()
	ctx.Disk().ResetStats()
	if _, err := SelectDeterministic(ctx, f, int64(n/2)); err != nil {
		t.Fatal(err)
	}
	detIO := ctx.Disk().Stats().Total()
	if randIO >= detIO {
		t.Errorf("randomized %d I/Os >= deterministic %d", randIO, detIO)
	}
}
