package empart

import (
	"bytes"
	"errors"
	"fmt"
	"path/filepath"
	"testing"

	"repro/internal/emio"
	"repro/internal/workload"
)

// The pipeline parity suite: for every facade driver, the asynchronous
// prefetch/write-behind pipeline must be invisible to everything but the
// clock. Outputs, Stats, the tracer's span-tree I/O deltas and the leak
// detector must be bit-identical across {memory, file}×{pipeline on, off}.

// parityDriver runs one algorithm and returns a canonical byte description
// of its outputs (elements, sizes, buckets — whatever the driver produces).
type parityDriver struct {
	name string
	run  func(t *testing.T, sys *System, f *File) []byte
}

func elemsKey(elems []Elem) []byte {
	var b bytes.Buffer
	for _, e := range elems {
		fmt.Fprintf(&b, "%d,%d;", e.Key, e.Aux)
	}
	return b.Bytes()
}

func parityDrivers(n int64) []parityDriver {
	readAndRelease := func(t *testing.T, sys *System, out *File, err error) []byte {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		res := elemsKey(sys.Read(out))
		out.Release()
		return res
	}
	return []parityDriver{
		{"sort", func(t *testing.T, sys *System, f *File) []byte {
			out, err := sys.Sort(f)
			return readAndRelease(t, sys, out, err)
		}},
		{"distsort", func(t *testing.T, sys *System, f *File) []byte {
			out, err := sys.DistributionSort(f)
			return readAndRelease(t, sys, out, err)
		}},
		{"select", func(t *testing.T, sys *System, f *File) []byte {
			e, err := sys.Select(f, n/2)
			if err != nil {
				t.Fatal(err)
			}
			return elemsKey([]Elem{e})
		}},
		{"multiselect", func(t *testing.T, sys *System, f *File) []byte {
			out, err := sys.MultiSelect(f, []int64{1, n / 3, n / 2, n})
			return readAndRelease(t, sys, out, err)
		}},
		{"multipartition", func(t *testing.T, sys *System, f *File) []byte {
			out, err := sys.MultiPartition(f, []int64{n / 4, n / 4, n - 2*(n/4)})
			return readAndRelease(t, sys, out, err)
		}},
		{"splitters", func(t *testing.T, sys *System, f *File) []byte {
			out, err := sys.Splitters(f, Params{K: 8, A: 32, B: n / 2})
			return readAndRelease(t, sys, out, err)
		}},
		{"partition", func(t *testing.T, sys *System, f *File) []byte {
			res, err := sys.Partition(f, Params{K: 8, A: 0, B: n / 4})
			if err != nil {
				t.Fatal(err)
			}
			out := elemsKey(sys.Read(res.Data))
			out = append(out, []byte(fmt.Sprintf("|sizes=%v", res.Sizes))...)
			res.Release()
			return out
		}},
		{"precisepartition", func(t *testing.T, sys *System, f *File) []byte {
			out, err := sys.PrecisePartition(f, n/8)
			return readAndRelease(t, sys, out, err)
		}},
		{"histogram", func(t *testing.T, sys *System, f *File) []byte {
			buckets, err := sys.EquiDepthHistogram(f, 8, 0.5, 2)
			if err != nil {
				t.Fatal(err)
			}
			return []byte(fmt.Sprintf("%v", buckets))
		}},
	}
}

// parityRun is one observation of a driver on one backend configuration.
type parityRun struct {
	output []byte
	stats  Stats
	trace  []byte
}

func runParity(t *testing.T, d parityDriver, mk func(t *testing.T) *System, elems []Elem) parityRun {
	t.Helper()
	sys := mk(t)
	f := sys.Stage(elems)
	sys.ResetStats()
	sys.EnableTracing()
	out := d.run(t, sys, f)
	trace, err := sys.TraceJSON()
	if err != nil {
		t.Fatal(err)
	}
	f.Release()
	if leaks := sys.LiveScratchFiles(); len(leaks) != 0 {
		t.Fatalf("%s leaked scratch files: %v", d.name, leaks)
	}
	return parityRun{output: out, stats: sys.Stats(), trace: trace}
}

func TestPipelineParitySuite(t *testing.T) {
	const n = 1 << 12
	cfg := Config{M: 1 << 10, B: 1 << 5}
	elems := workload.Elems(workload.Uniform, n, cfg.B, 0xa11)
	backends := []struct {
		name string
		mk   func(t *testing.T) *System
	}{
		{"mem", func(t *testing.T) *System {
			sys, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			return sys
		}},
		{"file", func(t *testing.T) *System {
			sys, err := NewFileBacked(cfg, filepath.Join(t.TempDir(), "d.dat"))
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { sys.Close() })
			return sys
		}},
		{"file-pipeline", func(t *testing.T) *System {
			c := cfg
			c.Pipeline = Pipeline{Enabled: true, PrefetchDepth: 4, QueueDepth: 4}
			sys, err := NewFileBacked(c, filepath.Join(t.TempDir(), "p.dat"))
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { sys.Close() })
			return sys
		}},
		{"mem-pipeline-flag", func(t *testing.T) *System {
			// The pipeline knob is documented as a no-op for memory disks;
			// prove it by running with it set.
			c := cfg
			c.Pipeline = Pipeline{Enabled: true}
			sys, err := New(c)
			if err != nil {
				t.Fatal(err)
			}
			return sys
		}},
		// The resilience layer (checksums + retry) must also be invisible on
		// the logical model when no faults fire: outputs, Stats and the trace
		// span tree stay bit-identical to the resilience-off mem baseline.
		{"mem-resilient", func(t *testing.T) *System {
			c := cfg
			c.Checksum = true
			c.Retry = Retry{MaxAttempts: 3}
			sys, err := New(c)
			if err != nil {
				t.Fatal(err)
			}
			return sys
		}},
		{"file-resilient", func(t *testing.T) *System {
			c := cfg
			c.Checksum = true
			c.Retry = Retry{MaxAttempts: 3}
			sys, err := NewFileBacked(c, filepath.Join(t.TempDir(), "r.dat"))
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { sys.Close() })
			return sys
		}},
		{"file-pipeline-resilient", func(t *testing.T) *System {
			c := cfg
			c.Checksum = true
			c.Retry = Retry{MaxAttempts: 3}
			c.Pipeline = Pipeline{Enabled: true, PrefetchDepth: 4, QueueDepth: 4}
			sys, err := NewFileBacked(c, filepath.Join(t.TempDir(), "rp.dat"))
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { sys.Close() })
			return sys
		}},
	}
	if emio.DirectIOSupported(t.TempDir()) {
		// O_DIRECT pads physical transfers to 512-byte granules; logical
		// behaviour must stay bit-identical, with the pipeline on or off.
		mkDirect := func(p Pipeline) func(t *testing.T) *System {
			return func(t *testing.T) *System {
				c := cfg
				c.Pipeline = p
				sys, err := NewFileBacked(c, filepath.Join(t.TempDir(), "dd.dat"))
				if err != nil {
					t.Fatal(err)
				}
				t.Cleanup(func() { sys.Close() })
				return sys
			}
		}
		backends = append(backends,
			struct {
				name string
				mk   func(t *testing.T) *System
			}{"file-direct", mkDirect(Pipeline{Direct: true})},
			struct {
				name string
				mk   func(t *testing.T) *System
			}{"file-direct-pipeline", mkDirect(Pipeline{Enabled: true, Direct: true, PrefetchDepth: 4, QueueDepth: 4})},
		)
	}
	if emio.UringSupported() {
		// The io_uring backend swaps blocking pread/pwrite for batched ring
		// submissions; logical outputs, Stats and traces must not move,
		// pipelined or not, SQPOLL or not.
		mkUring := func(p Pipeline) func(t *testing.T) *System {
			return func(t *testing.T) *System {
				c := cfg
				c.Pipeline = p
				sys, err := NewFileBacked(c, filepath.Join(t.TempDir(), "u.dat"))
				if err != nil {
					t.Fatal(err)
				}
				t.Cleanup(func() { sys.Close() })
				return sys
			}
		}
		backends = append(backends,
			struct {
				name string
				mk   func(t *testing.T) *System
			}{"file-uring", mkUring(Pipeline{Uring: true})},
			struct {
				name string
				mk   func(t *testing.T) *System
			}{"file-uring-pipeline", mkUring(Pipeline{Enabled: true, Uring: true, PrefetchDepth: 4, QueueDepth: 4})},
			struct {
				name string
				mk   func(t *testing.T) *System
			}{"file-uring-sqpoll", mkUring(Pipeline{Enabled: true, Uring: true, SQPoll: true, PrefetchDepth: 4, QueueDepth: 4})},
		)
		if emio.DirectIOSupported(t.TempDir()) {
			backends = append(backends, struct {
				name string
				mk   func(t *testing.T) *System
			}{"file-uring-direct", mkUring(Pipeline{Enabled: true, Uring: true, Direct: true, PrefetchDepth: 4, QueueDepth: 4})})
		}
	}
	for _, d := range parityDrivers(n) {
		t.Run(d.name, func(t *testing.T) {
			base := runParity(t, d, backends[0].mk, elems)
			for _, be := range backends[1:] {
				got := runParity(t, d, be.mk, elems)
				if !bytes.Equal(got.output, base.output) {
					t.Errorf("%s: output differs from mem baseline", be.name)
				}
				if got.stats != base.stats {
					t.Errorf("%s: stats %v != baseline %v", be.name, got.stats, base.stats)
				}
				if !bytes.Equal(got.trace, base.trace) {
					t.Errorf("%s: trace span tree differs from baseline", be.name)
				}
			}
		})
	}
}

// TestPipelineFaultParity proves an injected write fault during write-behind
// is reported at the same logical operation — same error chain, same I/O
// counters at failure time — as in fully synchronous mode. (Fault hooks fire
// at enqueue time on the algorithm goroutine, so the pipeline cannot shift
// them.)
func TestPipelineFaultParity(t *testing.T) {
	errInjected := errors.New("injected fault")
	const n = 1 << 12
	cfg := Config{M: 1 << 10, B: 1 << 5}
	elems := workload.Elems(workload.Uniform, n, cfg.B, 0xfa117)

	type observation struct {
		err   error
		stats Stats
	}
	observe := func(t *testing.T, pipelined bool, failAt int64, read bool) observation {
		c := cfg
		if pipelined {
			c.Pipeline = Pipeline{Enabled: true, PrefetchDepth: 4, QueueDepth: 4}
		}
		sys, err := NewFileBacked(c, filepath.Join(t.TempDir(), "f.dat"))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { sys.Close() })
		f := sys.Stage(elems)
		sys.ResetStats()
		count := int64(0)
		hook := func(*emio.File, int) error {
			count++
			if count == failAt+1 {
				return errInjected
			}
			return nil
		}
		if read {
			sys.Ctx().Disk().SetReadFault(hook)
		} else {
			sys.Ctx().Disk().SetWriteFault(hook)
		}
		out, runErr := sys.Sort(f)
		if runErr == nil {
			out.Release()
		}
		return observation{err: runErr, stats: sys.Stats()}
	}

	for _, fault := range []struct {
		name   string
		read   bool
		points []int64
	}{
		{"write", false, []int64{0, 3, 40, 100}},
		{"read", true, []int64{0, 7, 60, 150}},
	} {
		t.Run(fault.name, func(t *testing.T) {
			for _, p := range fault.points {
				sync := observe(t, false, p, fault.read)
				pipe := observe(t, true, p, fault.read)
				if sync.err == nil || pipe.err == nil {
					t.Fatalf("fault at %s %d: sync err=%v pipe err=%v, both must fail", fault.name, p, sync.err, pipe.err)
				}
				if !errors.Is(sync.err, errInjected) || !errors.Is(pipe.err, errInjected) {
					t.Fatalf("fault at %s %d: errors do not wrap the injection: sync=%v pipe=%v", fault.name, p, sync.err, pipe.err)
				}
				if sync.err.Error() != pipe.err.Error() {
					t.Errorf("fault at %s %d: error text differs:\n sync: %v\n pipe: %v", fault.name, p, sync.err, pipe.err)
				}
				if sync.stats != pipe.stats {
					t.Errorf("fault at %s %d: stats at failure differ: sync %v pipe %v", fault.name, p, sync.stats, pipe.stats)
				}
			}
		})
	}
}
