package empart

import (
	"testing"

	"repro/internal/verify"
	"repro/internal/workload"
)

// Degenerate machine shapes: B = 1 (every element its own block) and very
// tight memory. The algorithms fall back to their small-M paths but must
// stay correct.
func TestDegenerateMachines(t *testing.T) {
	for _, cfg := range []Config{
		{M: 16, B: 1}, // B = 1: every element its own block
		{M: 24, B: 4}, // ~6B: the practical minimum for the full suite
		{M: 20, B: 3},
	} {
		t.Run(cfg.String(), func(t *testing.T) {
			sys, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			n := 256
			elems := workload.Elems(workload.Uniform, n, cfg.B, 0xdeb)
			f := sys.Stage(elems)

			out, err := sys.Sort(f)
			if err != nil {
				t.Fatalf("sort: %v", err)
			}
			if err := verify.Sorted(sys.Read(out)); err != nil {
				t.Fatalf("sort: %v", err)
			}

			e, err := sys.Select(f, int64(n/2))
			if err != nil {
				t.Fatalf("select: %v", err)
			}
			if err := verify.MultiSelect(elems, []int64{int64(n / 2)}, []Elem{e}); err != nil {
				t.Fatalf("select: %v", err)
			}

			ms, err := sys.MultiSelect(f, []int64{1, int64(n / 3), int64(n)})
			if err != nil {
				t.Fatalf("multiselect: %v", err)
			}
			if err := verify.MultiSelect(elems, []int64{1, int64(n / 3), int64(n)}, sys.Read(ms)); err != nil {
				t.Fatalf("multiselect: %v", err)
			}

			p := Params{K: 4, A: 8, B: int64(n)}
			sp, err := sys.Splitters(f, p)
			if err != nil {
				t.Fatalf("splitters: %v", err)
			}
			if _, err := verify.Splitters(elems, sys.Read(sp), p.K, p.A, p.B); err != nil {
				t.Fatalf("splitters: %v", err)
			}

			res, err := sys.Partition(f, Params{K: 4, A: 0, B: int64(n) / 2})
			if err != nil {
				t.Fatalf("partition: %v", err)
			}
			if err := verify.Partition(elems, sys.Read(res.Data), res.Sizes, 4, 0, int64(n)/2); err != nil {
				t.Fatalf("partition: %v", err)
			}

			if got := sys.PeakMemory(); got > int64(cfg.M) {
				t.Fatalf("peak memory %d over M=%d", got, cfg.M)
			}
		})
	}
}

// TestMinimalMemoryFailsCleanly: at the model minimum M = 2B there is no
// room to merge or partition (three stream buffers cannot coexist); every
// operation beyond a scan must fail with the budget error — never panic,
// never succeed incorrectly — and leak nothing.
func TestMinimalMemoryFailsCleanly(t *testing.T) {
	for _, cfg := range []Config{{M: 2, B: 1}, {M: 8, B: 4}} {
		t.Run(cfg.String(), func(t *testing.T) {
			sys, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			n := 64
			elems := workload.Elems(workload.Uniform, n, cfg.B, 0xdeb)
			f := sys.Stage(elems)
			if _, err := sys.Sort(f); err == nil {
				t.Error("sort succeeded with no room to merge")
			}
			if used := sys.Ctx().Mem().Used(); used != 0 {
				t.Errorf("failed sort leaked %d", used)
			}
			// A pure scan must still work at M = 2B.
			dup, err := sys.MultiPartition(f, []int64{int64(n)})
			if err != nil {
				t.Fatalf("single-partition scan failed: %v", err)
			}
			if err := verify.SameMultiset(sys.Read(dup), elems); err != nil {
				t.Fatal(err)
			}
		})
	}
}
