package main

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// cannedMetrics is a frozen /metrics payload in the exact shape
// Registry.WritePrometheus emits: counters, an info gauge, and a histogram
// with companion quantile gauges — including the io_uring submission-time
// queue-depth histogram the dashboard renders with plain-number quantiles.
const cannedMetrics = `# TYPE empart_phase gauge
empart_phase{phase="merge"} 1
# TYPE empart_phase_depth gauge
empart_phase_depth 2
# TYPE empart_logical_reads_total counter
empart_logical_reads_total 4096
# TYPE empart_logical_writes_total counter
empart_logical_writes_total 4096
# TYPE empart_phys_reads_total counter
empart_phys_reads_total 147
# TYPE empart_phys_writes_total counter
empart_phys_writes_total 130
# TYPE empart_phase_started_total counter
empart_phase_started_total{phase="merge"} 3
empart_phase_started_total{phase="runs"} 1
# TYPE empart_phys_read_ns histogram
empart_phys_read_ns_bucket{le="1023"} 2
empart_phys_read_ns_bucket{le="2047"} 5
empart_phys_read_ns_bucket{le="+Inf"} 5
empart_phys_read_ns_sum 7680
empart_phys_read_ns_count 5
# TYPE empart_phys_read_ns_p50 gauge
empart_phys_read_ns_p50 1536
# TYPE empart_phys_read_ns_p95 gauge
empart_phys_read_ns_p95 2047
# TYPE empart_phys_read_ns_p99 gauge
empart_phys_read_ns_p99 2047
# TYPE empart_phys_read_ns_max gauge
empart_phys_read_ns_max 2047
# TYPE empart_uring_queue_depth histogram
empart_uring_queue_depth_bucket{le="1"} 3
empart_uring_queue_depth_bucket{le="3"} 9
empart_uring_queue_depth_bucket{le="7"} 12
empart_uring_queue_depth_bucket{le="+Inf"} 12
empart_uring_queue_depth_sum 40
empart_uring_queue_depth_count 12
# TYPE empart_uring_queue_depth_p50 gauge
empart_uring_queue_depth_p50 3
# TYPE empart_uring_queue_depth_p95 gauge
empart_uring_queue_depth_p95 7
# TYPE empart_uring_queue_depth_p99 gauge
empart_uring_queue_depth_p99 7
# TYPE empart_uring_queue_depth_max gauge
empart_uring_queue_depth_max 6
`

// TestRunOnce drives the -once path end to end — HTTP scrape, exposition
// parse, dashboard render — against a canned payload.
func TestRunOnce(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(cannedMetrics))
	}))
	defer srv.Close()

	var out strings.Builder
	if err := runOnce(srv.URL, 0, &out); err != nil {
		t.Fatalf("runOnce: %v", err)
	}
	frame := out.String()
	for _, want := range []string{
		"phase: merge",
		"reads=4.1k",
		"phys_read",
		"uring_queue_depth",
		"p50=3",
		"max=6",
	} {
		if !strings.Contains(frame, want) {
			t.Errorf("frame missing %q:\n%s", want, frame)
		}
	}
	// The uring row must render plain numbers, not nanosecond units.
	for _, line := range strings.Split(frame, "\n") {
		if strings.Contains(line, "uring_queue_depth") && strings.Contains(line, "ns") {
			t.Errorf("uring histogram rendered with time units: %q", line)
		}
	}
}

// TestRunOnceWidthClamp verifies the -width flag reaches the renderer.
func TestRunOnceWidthClamp(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(cannedMetrics))
	}))
	defer srv.Close()

	var out strings.Builder
	if err := runOnce(srv.URL, 20, &out); err != nil {
		t.Fatalf("runOnce: %v", err)
	}
	for _, line := range strings.Split(strings.TrimRight(out.String(), "\n"), "\n") {
		if n := len([]rune(line)); n > 20 {
			t.Errorf("line exceeds width clamp (%d runes): %q", n, line)
		}
	}
}

// TestRunOnceScrapeFailure covers both failure modes: a non-200 endpoint and
// a connection that never opens.
func TestRunOnceScrapeFailure(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "shutting down", http.StatusServiceUnavailable)
	}))
	var out strings.Builder
	if err := runOnce(srv.URL, 0, &out); err == nil {
		t.Error("runOnce succeeded against a 503 endpoint")
	}
	srv.Close()
	if err := runOnce(srv.URL, 0, &out); err == nil {
		t.Error("runOnce succeeded against a closed endpoint")
	}
	if out.Len() != 0 {
		t.Errorf("failed scrapes still rendered output: %q", out.String())
	}
}
