// Command emtop is a live terminal dashboard for a running empart job: it
// scrapes the job's /metrics endpoint (emsort/emsplit/embench -metrics-addr)
// and renders phases, I/O counters, pipeline health and sparkline latency
// histograms, refreshing in place like top(1).
//
//	emsort -n 10000000 -file /tmp/d.dat -metrics-addr 127.0.0.1:9101 &
//	emtop -url http://127.0.0.1:9101/metrics
//
// With -once it prints a single frame and exits (scriptable; also how the
// smoke tests drive it).
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"time"

	"repro/internal/emio/metrics"
)

// scrape fetches url and parses the Prometheus exposition into a snapshot.
func scrape(url string) (metrics.Snapshot, error) {
	resp, err := http.Get(url)
	if err != nil {
		return metrics.Snapshot{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return metrics.Snapshot{}, fmt.Errorf("scrape %s: %s", url, resp.Status)
	}
	return metrics.ParsePrometheus(resp.Body)
}

// runOnce drives one -once invocation end to end — scrape, parse, render a
// single frame to out — and is the seam the smoke tests exercise.
func runOnce(url string, width int, out io.Writer) error {
	snap, err := scrape(url)
	if err != nil {
		return err
	}
	fmt.Fprint(out, metrics.RenderDashboard(snap, width))
	return nil
}

func main() {
	var (
		url      = flag.String("url", "http://127.0.0.1:9100/metrics", "metrics endpoint to scrape")
		interval = flag.Duration("interval", time.Second, "refresh interval")
		width    = flag.Int("width", 0, "clamp lines to this many columns (0 = no clamp)")
		once     = flag.Bool("once", false, "render one frame and exit")
	)
	flag.Parse()

	if *once {
		if err := runOnce(*url, *width, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "emtop: %v\n", err)
			os.Exit(1)
		}
		return
	}

	d := metrics.StartDash(os.Stdout, *interval, *width, func() (metrics.Snapshot, error) {
		return scrape(*url)
	})
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	d.Stop()
	fmt.Println()
}
