// Command emsort sorts real data through the simulated external-memory
// machine: it reads whitespace-separated signed integers from a file or
// stdin, stages them, runs external merge sort under the (M, B) budget, and
// writes the sorted keys to a file or stdout, reporting the block I/Os the
// sort cost and the paper-model bound.
//
// Usage:
//
//	emsort [-m 4096] [-b 32] [-in keys.txt] [-out sorted.txt]
//	emsort -metrics-addr :9090 -progress 2s -in big.txt -out sorted.txt
//	seq 100000 | shuf | emsort > sorted.txt
//
// With -workers N the sort runs on the parallel sharded engine: N goroutines
// over S logical shards, same outputs and same logical I/O counts, less wall
// clock. With -metrics-addr the job serves live Prometheus metrics and pprof
// while it runs; with -progress it streams phase/ETA lines to the report
// stream.
// -checksum and -retry arm the resilience layer: corrupted blocks and
// persistent transient faults abort the job with a typed, nonzero-exit error.
//
// Job lifecycle:
//
//   - SIGINT/SIGTERM cancel the running sort cooperatively: the job stops
//     within about one block transfer, reports its partial I/O cost, flushes
//     telemetry and exits nonzero. A second signal exits immediately.
//   - -disk-budget caps the simulated disk's footprint in bytes; a job that
//     would exceed it degrades its merge fan-in where possible and otherwise
//     fails with a typed resource error.
//   - -journal FILE makes the sort crash-safe (needs -backing): completed
//     runs and merge passes are checkpointed to FILE, and after a crash the
//     same command with -resume continues from the last completed phase
//     instead of restarting. The resumed output is byte-identical.
package main

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"log"
	"log/slog"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strconv"
	"sync/atomic"
	"syscall"
	"time"

	"flag"

	empart "repro"
	"repro/internal/emio/metrics"
	"repro/internal/verify"
)

var (
	flagM        = flag.Int("m", 1<<12, "memory size M in elements")
	flagB        = flag.Int("b", 1<<5, "block size B in elements")
	flagWorkers  = flag.Int("workers", 0, "worker goroutines for the parallel sharded engine (0 = sequential engine; the parallel engine's output matches it bit for bit, and engine I/O counts are identical for every worker count)")
	flagIn       = flag.String("in", "", "input file of integers (default stdin)")
	flagOut      = flag.String("out", "", "output file (default stdout)")
	flagBacking  = flag.String("backing", "", "path for a real backing file for the simulated disk (default: in-memory)")
	flagUring    = flag.Bool("uring", false, "submit physical I/O through a batched io_uring with the async pipeline (needs -backing; degrades silently to positioned syscalls where unsupported)")
	flagTrace    = flag.Bool("trace", false, "print a phase trace (span tree with I/O attribution) to the report stream")
	flagMetrics  = flag.String("metrics-addr", "", "serve Prometheus /metrics and /debug/pprof on this host:port while the job runs")
	flagProg     = flag.Duration("progress", 0, "print a progress/ETA line to the report stream at this interval (0 = off)")
	flagSum      = flag.Bool("checksum", false, "CRC32C-checksum every stored block and fail on corruption at read time")
	flagRetry    = flag.Int("retry", 0, "retry transient backing-I/O faults up to this many attempts (0 or 1 = off)")
	flagLog      = flag.String("log", "", "append structured JSON-lines event log to this file")
	flagOTLP     = flag.String("otlp", "", "write OTLP/JSON trace+metrics export to PREFIX.trace.json / PREFIX.metrics.json (implies tracing and metrics)")
	flagTop      = flag.Bool("top", false, "render a live terminal dashboard to stderr while the job runs")
	flagJournal  = flag.String("journal", "", "checkpoint journal path: make the sort crash-safe, resumable with -resume (needs -backing, sequential only)")
	flagResume   = flag.Bool("resume", false, "resume a crashed job from -journal instead of starting fresh")
	flagFullSync = flag.Bool("full-sync", false, "power-loss durability: fsync backing file and journal at every phase barrier (default journaling never fsyncs — it survives process crashes like SIGKILL and OOM at near-zero overhead, but not a power cut)")
	flagBudget   = flag.Int64("disk-budget", 0, "cap the simulated disk footprint at this many bytes (0 = unbounded); jobs degrade or fail with a typed resource error")
	flagCrashW   = flag.Int64("crash-after-write", 0, "SIGKILL self at this positive physical write op (crash-harness hook; counted after staging; 0 disarms)")
)

// liveSys publishes the running System to the signal trap. Stored once the
// System exists, cleared when the job is done (so a late signal falls back
// to a plain exit).
var liveSys atomic.Pointer[empart.System]

// trapSignals cancels the live System on SIGINT/SIGTERM — the running sort
// observes the flag at its next block transfer and unwinds with a typed
// cancellation error, which main reports with partial stats and a nonzero
// exit. A second signal gives up on cooperation and exits immediately.
func trapSignals() {
	ch := make(chan os.Signal, 2)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig := <-ch
		if sys := liveSys.Load(); sys != nil {
			sys.Cancel(fmt.Errorf("received %v", sig))
			<-ch // a second signal forces the issue
		}
		os.Exit(130)
	}()
}

// runOpts carries one emsort invocation.
type runOpts struct {
	cfg         empart.Config
	backing     string
	uring       bool
	trace       bool
	metricsAddr string
	progress    time.Duration
	otlp        string
	top         bool
	journal     string
	resume      bool
	fullSync    bool
	crashWrite  int64
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("emsort: ")
	flag.Parse()

	// The parallel engine's workers spend most of their time blocked in
	// syscalls; on hosts with fewer cores than workers, give the runtime a P
	// per blocked worker plus compute headroom so the device queue stays full.
	if want := 2 * *flagWorkers; want > runtime.GOMAXPROCS(0) {
		runtime.GOMAXPROCS(want)
	}

	in := io.Reader(os.Stdin)
	if *flagIn != "" {
		f, err := os.Open(*flagIn)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		in = f
	}
	dst := io.Writer(os.Stdout)
	if *flagOut != "" {
		g, err := os.Create(*flagOut)
		if err != nil {
			log.Fatal(err)
		}
		defer g.Close()
		dst = g
	}
	o := runOpts{
		cfg: empart.Config{
			M: *flagM, B: *flagB,
			Workers:    *flagWorkers,
			Checksum:   *flagSum,
			Retry:      empart.Retry{MaxAttempts: *flagRetry},
			Log:        empart.LogConfig{Level: slog.LevelDebug, Path: *flagLog},
			DiskBudget: *flagBudget,
		},
		uring:       *flagUring,
		backing:     *flagBacking,
		trace:       *flagTrace,
		metricsAddr: *flagMetrics,
		progress:    *flagProg,
		otlp:        *flagOTLP,
		top:         *flagTop,
		journal:     *flagJournal,
		resume:      *flagResume,
		fullSync:    *flagFullSync,
		crashWrite:  *flagCrashW,
	}
	trapSignals()
	if err := run(o, in, dst, os.Stderr); err != nil {
		log.Fatal(renderErr(err))
	}
}

// renderErr prefixes the resilience layer's typed failures so a log line (and
// the nonzero exit it precedes) tells data corruption apart from device
// trouble without parsing the wrapped chain.
func renderErr(err error) string {
	var ce *empart.CorruptionError
	if errors.As(err, &ce) {
		return fmt.Sprintf("data corruption detected: %v", err)
	}
	var te *empart.TransientError
	if errors.As(err, &te) {
		return fmt.Sprintf("giving up after %d attempt(s): %v", te.Attempts, err)
	}
	var cle *empart.CancelledError
	if errors.As(err, &cle) {
		return fmt.Sprintf("cancelled: %v", err)
	}
	var re *empart.ResourceError
	if errors.As(err, &re) {
		return fmt.Sprintf("out of disk: %v", err)
	}
	return err.Error()
}

// reportAbort annotates a failed job on the report stream: a cancelled job
// prints the partial I/O cost it had paid, a quota-rejected one prints live
// usage. The error passes through for main's typed rendering and nonzero
// exit.
func reportAbort(sys *empart.System, err error, report io.Writer) error {
	if errors.Is(err, empart.ErrCancelled) {
		fmt.Fprintf(report, "emsort: cancelled; partial cost %v\n", sys.Stats())
	}
	var re *empart.ResourceError
	if errors.As(err, &re) && sys.DiskBudget() > 0 {
		fmt.Fprintf(report, "emsort: disk budget %d bytes, %d in use at failure\n",
			sys.DiskBudget(), sys.DiskBytes())
	}
	return err
}

// startTelemetry attaches a metrics registry to sys and starts the opt-in
// observers: the HTTP scrape endpoint (o.metricsAddr) and the periodic
// progress reporter (o.progress), which estimates completion against
// totalIOs, the paper-model I/O bound for the job. The returned stop
// function flushes the final progress line and shuts the endpoint down.
func startTelemetry(sys *empart.System, o runOpts, totalIOs int64, report io.Writer) (func(), error) {
	if o.metricsAddr == "" && o.progress == 0 && o.otlp == "" && !o.top {
		return func() {}, nil
	}
	reg := sys.EnableMetrics()
	if o.otlp != "" && sys.Tracer() == nil {
		sys.EnableTracing()
	}
	var srv *metrics.Server
	if o.metricsAddr != "" {
		var err error
		srv, err = metrics.Serve(o.metricsAddr, reg)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(report, "emsort: metrics on %s\n", srv.URL())
	}
	var rep *metrics.Reporter
	if o.progress > 0 {
		rep = metrics.StartProgress(report, o.progress, func() metrics.Progress {
			// Sampled on the reporter goroutine: read only the registry's
			// atomic instruments, never the Disk's unsynchronized counters.
			snap := reg.Snapshot()
			return metrics.Progress{
				Phase: snap.Infos["empart_phase"],
				Done:  snap.Counter("empart_logical_reads_total") + snap.Counter("empart_logical_writes_total"),
				Total: totalIOs,
				Unit:  "ios",
			}
		})
	}
	var dash *metrics.Dash
	if o.top {
		dash = metrics.StartDash(os.Stderr, time.Second, 0, func() (metrics.Snapshot, error) {
			return reg.Snapshot(), nil
		})
	}
	return func() {
		if rep != nil {
			rep.Stop()
		}
		if dash != nil {
			dash.Stop()
		}
		if srv != nil {
			if err := srv.Close(); err != nil {
				fmt.Fprintf(report, "emsort: metrics server: %v\n", err)
			}
		}
		if o.otlp != "" {
			if err := writeOTLP(sys, o.otlp); err != nil {
				fmt.Fprintf(report, "emsort: otlp export: %v\n", err)
			}
		}
	}, nil
}

// writeOTLP exports the run's trace and metrics as OTLP/JSON documents next
// to each other: prefix.trace.json and prefix.metrics.json.
func writeOTLP(sys *empart.System, prefix string) error {
	tr, err := sys.TraceOTLP("emsort")
	if err != nil {
		return err
	}
	if tr != nil {
		if err := os.WriteFile(prefix+".trace.json", tr, 0o644); err != nil {
			return err
		}
	}
	mt, err := sys.MetricsOTLP("emsort")
	if err != nil {
		return err
	}
	if mt != nil {
		if err := os.WriteFile(prefix+".metrics.json", mt, 0o644); err != nil {
			return err
		}
	}
	return nil
}

// run reads integers from in, sorts them on an EM machine of the given
// configuration (optionally file-backed), writes the sorted keys to dst and
// an I/O report (plus a phase trace when requested) to report. With a
// journal configured it routes through the crash-safe job layer instead.
func run(o runOpts, in io.Reader, dst, report io.Writer) error {
	if o.uring {
		o.cfg.Pipeline.Enabled = true
		o.cfg.Pipeline.Uring = true
	}
	if o.journal != "" || o.resume {
		return runJob(o, in, dst, report)
	}
	elems, err := parseKeys(in)
	if err != nil {
		return err
	}
	var sys *empart.System
	if o.backing != "" {
		sys, err = empart.NewFileBacked(o.cfg, o.backing)
	} else {
		sys, err = empart.New(o.cfg)
	}
	if err != nil {
		return err
	}
	defer sys.Close()
	liveSys.Store(sys)
	defer liveSys.Store(nil)
	reportBackend(sys, o, report)
	f := sys.Stage(elems)
	armCrash(sys, o)
	sys.ResetStats()
	if o.trace {
		sys.EnableTracing()
	}
	n := int64(len(elems))
	mc := sys.Machine()
	stopTelemetry, err := startTelemetry(sys, o, int64(mc.Sort(n)), report)
	if err != nil {
		return err
	}
	out, err := sys.Sort(f)
	stopTelemetry()
	if err != nil {
		return reportAbort(sys, err, report)
	}
	return emit(sys, o, n, out, dst, report)
}

// runJob is the crash-safe path: the sort runs through a checkpoint journal,
// either fresh (-journal) or resumed after a crash (-journal -resume).
func runJob(o runOpts, in io.Reader, dst, report io.Writer) error {
	job, err := empart.OpenSortJob(empart.JobConfig{
		Config:   o.cfg,
		Path:     o.backing,
		Journal:  o.journal,
		Resume:   o.resume,
		FullSync: o.fullSync,
	}, func() ([]empart.Elem, error) { return parseKeys(in) })
	if err != nil {
		return err
	}
	defer job.Close()
	sys := job.System()
	liveSys.Store(sys)
	defer liveSys.Store(nil)
	reportBackend(sys, o, report)
	if o.resume {
		runs, lastPass, done := job.Resumable()
		fmt.Fprintf(report, "emsort: resuming from %s: %d completed run(s), last merge pass %d, done=%v\n",
			o.journal, runs, lastPass, done)
	}
	armCrash(sys, o)
	sys.ResetStats()
	if o.trace {
		sys.EnableTracing()
	}
	n := job.N()
	mc := sys.Machine()
	stopTelemetry, err := startTelemetry(sys, o, int64(mc.Sort(n)), report)
	if err != nil {
		return err
	}
	out, err := job.Run()
	stopTelemetry()
	if err != nil {
		return reportAbort(sys, err, report)
	}
	return emit(sys, o, n, out, dst, report)
}

// reportBackend prints the startup line recording which physical backends
// the host could exercise and which one this run actually uses, so a saved
// report is self-describing (the bench JSONs carry the same host fields).
func reportBackend(sys *empart.System, o runOpts, report io.Writer) {
	probeDir := os.TempDir()
	if o.backing != "" {
		probeDir = filepath.Dir(o.backing)
	}
	backend := "memory"
	switch {
	case o.backing != "" && sys.UringActive():
		backend = "file+uring"
	case o.backing != "":
		backend = "file"
	}
	fmt.Fprintf(report, "emsort: host directIO=%v uring=%v  backend=%s\n",
		empart.DirectIOSupported(probeDir), empart.UringSupported(), backend)
}

// armCrash installs the crash-harness injector when -crash-after-write is
// set to a positive op number: the process SIGKILLs itself at the scheduled
// physical write, modeling a power cut mid-job for the kill-resume tests.
// Zero and negative are both disarmed, so a zero-valued runOpts is safe.
func armCrash(sys *empart.System, o runOpts) {
	if o.crashWrite <= 0 {
		return
	}
	inj := empart.NewInjector(1)
	inj.CrashWrite(o.crashWrite)
	sys.SetInjector(inj)
}

// emit verifies and writes the sorted output and prints the cost report.
func emit(sys *empart.System, o runOpts, n int64, out *empart.File, dst, report io.Writer) error {
	sorted := sys.Read(out)
	if err := verify.Sorted(sorted); err != nil {
		return fmt.Errorf("internal error: %w", err)
	}
	w := bufio.NewWriter(dst)
	for _, e := range sorted {
		fmt.Fprintln(w, e.Key)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	st := sys.Stats()
	mc := sys.Machine()
	fmt.Fprintf(report, "emsort: N=%d M=%d B=%d  cost %v  bound %.0f  floor %.0f\n",
		n, o.cfg.M, o.cfg.B, st, mc.Sort(n), mc.SortFloor(n))
	if rep := sys.ShardReport(); rep.Shards > 1 {
		fmt.Fprintf(report, "emsort: parallel engine: %d shards, %d workers, balance %s\n",
			rep.Shards, rep.Workers, shardBalance(rep.ShardBytes))
	}
	if o.trace {
		fmt.Fprintf(report, "phase trace:\n%s", sys.TraceReport())
	}
	return nil
}

// shardBalance renders a shard byte vector as "max/mean=1.04" — the load
// balance of the parallel range merges (1.0 = perfect).
func shardBalance(bytes []int64) string {
	if len(bytes) == 0 {
		return "n/a"
	}
	var sum, max int64
	for _, b := range bytes {
		sum += b
		if b > max {
			max = b
		}
	}
	if sum == 0 {
		return "n/a"
	}
	mean := float64(sum) / float64(len(bytes))
	return fmt.Sprintf("max/mean=%.2f", float64(max)/mean)
}

// parseKeys reads whitespace-separated signed integers.
func parseKeys(in io.Reader) ([]empart.Elem, error) {
	var elems []empart.Elem
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	sc.Split(bufio.ScanWords)
	for sc.Scan() {
		k, err := strconv.ParseInt(sc.Text(), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("parse %q: %w", sc.Text(), err)
		}
		elems = append(elems, empart.Elem{Key: k, Aux: int64(len(elems))})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(elems) == 0 {
		return nil, fmt.Errorf("no input")
	}
	return elems, nil
}
