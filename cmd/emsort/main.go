// Command emsort sorts real data through the simulated external-memory
// machine: it reads whitespace-separated signed integers from a file or
// stdin, stages them, runs external merge sort under the (M, B) budget, and
// writes the sorted keys to a file or stdout, reporting the block I/Os the
// sort cost and the paper-model bound.
//
// Usage:
//
//	emsort [-m 4096] [-b 32] [-in keys.txt] [-out sorted.txt]
//	seq 100000 | shuf | emsort > sorted.txt
package main

import (
	"bufio"
	"fmt"
	"io"
	"log"
	"os"
	"strconv"

	"flag"

	empart "repro"
	"repro/internal/verify"
)

var (
	flagM       = flag.Int("m", 1<<12, "memory size M in elements")
	flagB       = flag.Int("b", 1<<5, "block size B in elements")
	flagIn      = flag.String("in", "", "input file of integers (default stdin)")
	flagOut     = flag.String("out", "", "output file (default stdout)")
	flagBacking = flag.String("backing", "", "path for a real backing file for the simulated disk (default: in-memory)")
	flagTrace   = flag.Bool("trace", false, "print a phase trace (span tree with I/O attribution) to the report stream")
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("emsort: ")
	flag.Parse()

	in := io.Reader(os.Stdin)
	if *flagIn != "" {
		f, err := os.Open(*flagIn)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		in = f
	}
	dst := io.Writer(os.Stdout)
	if *flagOut != "" {
		g, err := os.Create(*flagOut)
		if err != nil {
			log.Fatal(err)
		}
		defer g.Close()
		dst = g
	}
	if err := run(empart.Config{M: *flagM, B: *flagB}, *flagBacking, *flagTrace, in, dst, os.Stderr); err != nil {
		log.Fatal(err)
	}
}

// run reads integers from in, sorts them on an EM machine of the given
// configuration (optionally file-backed at backing), writes the sorted keys
// to dst and an I/O report (plus a phase trace when trace is set) to report.
func run(cfg empart.Config, backing string, trace bool, in io.Reader, dst, report io.Writer) error {
	elems, err := parseKeys(in)
	if err != nil {
		return err
	}
	var sys *empart.System
	if backing != "" {
		sys, err = empart.NewFileBacked(cfg, backing)
	} else {
		sys, err = empart.New(cfg)
	}
	if err != nil {
		return err
	}
	defer sys.Close()
	f := sys.Stage(elems)
	sys.ResetStats()
	if trace {
		sys.EnableTracing()
	}
	out, err := sys.Sort(f)
	if err != nil {
		return err
	}
	sorted := sys.Read(out)
	if err := verify.Sorted(sorted); err != nil {
		return fmt.Errorf("internal error: %w", err)
	}
	w := bufio.NewWriter(dst)
	for _, e := range sorted {
		fmt.Fprintln(w, e.Key)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	n := int64(len(elems))
	st := sys.Stats()
	mc := sys.Machine()
	fmt.Fprintf(report, "emsort: N=%d M=%d B=%d  cost %v  bound %.0f  floor %.0f\n",
		n, cfg.M, cfg.B, st, mc.Sort(n), mc.SortFloor(n))
	if trace {
		fmt.Fprintf(report, "phase trace:\n%s", sys.TraceReport())
	}
	return nil
}

// parseKeys reads whitespace-separated signed integers.
func parseKeys(in io.Reader) ([]empart.Elem, error) {
	var elems []empart.Elem
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	sc.Split(bufio.ScanWords)
	for sc.Scan() {
		k, err := strconv.ParseInt(sc.Text(), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("parse %q: %w", sc.Text(), err)
		}
		elems = append(elems, empart.Elem{Key: k, Aux: int64(len(elems))})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(elems) == 0 {
		return nil, fmt.Errorf("no input")
	}
	return elems, nil
}
