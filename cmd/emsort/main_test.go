package main

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"strings"
	"testing"
	"time"

	empart "repro"
)

func opts(cfg empart.Config, backing string, trace bool) runOpts {
	return runOpts{cfg: cfg, backing: backing, trace: trace}
}

func TestRunSortsStream(t *testing.T) {
	in := strings.NewReader("5 3 9 1 -4 3")
	var out, report bytes.Buffer
	if err := run(opts(empart.Config{M: 64, B: 8}, "", true), in, &out, &report); err != nil {
		t.Fatal(err)
	}
	if got, want := out.String(), "-4\n1\n3\n3\n5\n9\n"; got != want {
		t.Errorf("output %q, want %q", got, want)
	}
	if !strings.Contains(report.String(), "N=6") {
		t.Errorf("report %q missing N", report.String())
	}
	if !strings.Contains(report.String(), "extsort/sort") {
		t.Errorf("report %q missing phase trace", report.String())
	}
}

func TestRunFileBacked(t *testing.T) {
	in := strings.NewReader("2 1")
	var out, report bytes.Buffer
	backing := filepath.Join(t.TempDir(), "d.dat")
	if err := run(opts(empart.Config{M: 64, B: 8}, backing, false), in, &out, &report); err != nil {
		t.Fatal(err)
	}
	if out.String() != "1\n2\n" {
		t.Errorf("output %q", out.String())
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	var out, report bytes.Buffer
	o := opts(empart.Config{M: 64, B: 8}, "", false)
	if err := run(o, strings.NewReader("12 potato"), &out, &report); err == nil {
		t.Error("non-numeric input accepted")
	}
	if err := run(o, strings.NewReader("   "), &out, &report); err == nil {
		t.Error("empty input accepted")
	}
	if err := run(opts(empart.Config{M: 1, B: 8}, "", false), strings.NewReader("1"), &out, &report); err == nil {
		t.Error("bad config accepted")
	}
}

func TestRunWithTelemetry(t *testing.T) {
	// -metrics-addr and -progress together: the run must announce the scrape
	// URL, serve a final scrape with the job's counters, and print at least
	// the final progress line.
	var in bytes.Buffer
	for i := 2000; i > 0; i-- {
		fmt.Fprintln(&in, i)
	}
	var out, report bytes.Buffer
	o := opts(empart.Config{M: 64, B: 8}, "", false)
	o.metricsAddr = "127.0.0.1:0"
	o.progress = time.Hour // only the final Stop line fires deterministically
	if err := run(o, &in, &out, &report); err != nil {
		t.Fatal(err)
	}
	rep := report.String()
	if !strings.Contains(rep, "metrics on http://") {
		t.Errorf("report %q missing metrics URL", rep)
	}
	if !strings.Contains(rep, "progress: ") || !strings.Contains(rep, "ios") {
		t.Errorf("report %q missing progress line", rep)
	}
	if !strings.Contains(rep, "cost") {
		t.Errorf("report %q missing cost line", rep)
	}
}

func TestTelemetryScrapeDuringRun(t *testing.T) {
	// The scrape endpoint must serve live counters while the job runs: scrape
	// once between phases and once after, and require monotone growth.
	sys, err := empart.New(empart.Config{M: 1 << 10, B: 1 << 5})
	if err != nil {
		t.Fatal(err)
	}
	elems := make([]empart.Elem, 1<<14)
	for i := range elems {
		elems[i] = empart.Elem{Key: int64(len(elems) - i), Aux: int64(i)}
	}
	f := sys.Stage(elems)
	sys.ResetStats()

	o := runOpts{metricsAddr: "127.0.0.1:0", progress: time.Hour}
	var report bytes.Buffer
	stop, err := startTelemetry(sys, o, int64(sys.Machine().Sort(int64(len(elems)))), &report)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	url := strings.TrimSpace(strings.TrimPrefix(
		strings.SplitN(report.String(), "\n", 2)[0], "emsort: metrics on "))

	scrape := func() string {
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	mid, err := sys.Sort(f)
	if err != nil {
		t.Fatal(err)
	}
	first := scrape()
	if !strings.Contains(first, "empart_logical_reads_total") {
		t.Fatalf("scrape missing logical read counter:\n%.400s", first)
	}
	readsAfterSort := counterValue(t, first, "empart_logical_reads_total")
	if readsAfterSort == 0 {
		t.Error("logical reads still zero after a sort")
	}
	out, err := sys.Sort(mid)
	if err != nil {
		t.Fatal(err)
	}
	second := scrape()
	if got := counterValue(t, second, "empart_logical_reads_total"); got <= readsAfterSort {
		t.Errorf("reads counter did not grow across jobs: %d -> %d", readsAfterSort, got)
	}
	if !strings.Contains(second, "empart_logical_read_ns_p99") {
		t.Error("scrape missing latency percentile gauges")
	}
	mid.Release()
	out.Release()
}

// counterValue extracts one metric value from a Prometheus text scrape.
func counterValue(t *testing.T, scrape, name string) int64 {
	t.Helper()
	for _, line := range strings.Split(scrape, "\n") {
		if strings.HasPrefix(line, name+" ") {
			var v int64
			if _, err := fmt.Sscanf(line[len(name)+1:], "%d", &v); err != nil {
				t.Fatalf("parse %q: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("metric %s not in scrape", name)
	return 0
}

func TestParseKeysLargeValues(t *testing.T) {
	elems, err := parseKeys(strings.NewReader("9223372036854775807 -9223372036854775808"))
	if err != nil {
		t.Fatal(err)
	}
	if elems[0].Key != 1<<63-1 || elems[1].Key != -(1<<63) {
		t.Errorf("extreme values parsed wrong: %v", elems)
	}
}
