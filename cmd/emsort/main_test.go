package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	empart "repro"
)

func TestRunSortsStream(t *testing.T) {
	in := strings.NewReader("5 3 9 1 -4 3")
	var out, report bytes.Buffer
	if err := run(empart.Config{M: 64, B: 8}, "", true, in, &out, &report); err != nil {
		t.Fatal(err)
	}
	if got, want := out.String(), "-4\n1\n3\n3\n5\n9\n"; got != want {
		t.Errorf("output %q, want %q", got, want)
	}
	if !strings.Contains(report.String(), "N=6") {
		t.Errorf("report %q missing N", report.String())
	}
	if !strings.Contains(report.String(), "extsort/sort") {
		t.Errorf("report %q missing phase trace", report.String())
	}
}

func TestRunFileBacked(t *testing.T) {
	in := strings.NewReader("2 1")
	var out, report bytes.Buffer
	backing := filepath.Join(t.TempDir(), "d.dat")
	if err := run(empart.Config{M: 64, B: 8}, backing, false, in, &out, &report); err != nil {
		t.Fatal(err)
	}
	if out.String() != "1\n2\n" {
		t.Errorf("output %q", out.String())
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	var out, report bytes.Buffer
	if err := run(empart.Config{M: 64, B: 8}, "", false, strings.NewReader("12 potato"), &out, &report); err == nil {
		t.Error("non-numeric input accepted")
	}
	if err := run(empart.Config{M: 64, B: 8}, "", false, strings.NewReader("   "), &out, &report); err == nil {
		t.Error("empty input accepted")
	}
	if err := run(empart.Config{M: 1, B: 8}, "", false, strings.NewReader("1"), &out, &report); err == nil {
		t.Error("bad config accepted")
	}
}

func TestParseKeysLargeValues(t *testing.T) {
	elems, err := parseKeys(strings.NewReader("9223372036854775807 -9223372036854775808"))
	if err != nil {
		t.Fatal(err)
	}
	if elems[0].Key != 1<<63-1 || elems[1].Key != -(1<<63) {
		t.Errorf("extreme values parsed wrong: %v", elems)
	}
}
