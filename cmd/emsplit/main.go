// Command emsplit runs one algorithm of the library on a generated input,
// verifies the output against the problem definition, and reports the block
// I/Os it cost next to the paper's bound formula.
//
// Usage:
//
//	emsplit -algo splitters  -n 262144 -k 64 -a 16 -bmax 262144
//	emsplit -algo partition  -n 262144 -k 64 -a 0  -bmax 4096
//	emsplit -algo multiselect -n 262144 -k 64
//	emsplit -algo multipartition -n 262144 -k 64
//	emsplit -algo precise -n 262144 -bmax 4096
//	emsplit -algo sort -n 262144
//	emsplit -algo histogram -n 262144 -k 16 -lo 0.5 -hi 4
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"log/slog"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	empart "repro"
	"repro/internal/emio/metrics"
	"repro/internal/verify"
	"repro/internal/workload"
)

var (
	flagAlgo    = flag.String("algo", "splitters", "splitters | partition | multiselect | multipartition | precise | sort | histogram")
	flagN       = flag.Int("n", 1<<18, "input size N")
	flagM       = flag.Int("m", 1<<12, "memory size M")
	flagB       = flag.Int("b", 1<<5, "block size B")
	flagWorkers = flag.Int("workers", 0, "worker goroutines for the parallel sharded engine (0 = sequential engine; the parallel engine's output matches it bit for bit, and engine I/O counts are identical for every worker count)")
	flagK       = flag.Int64("k", 64, "partition/splitter/rank count K")
	flagA       = flag.Int64("a", 0, "lower size bound a")
	flagBMax    = flag.Int64("bmax", 0, "upper size bound b (0 means N)")
	flagBacking = flag.String("backing", "", "path for a real backing file for the simulated disk (default: in-memory)")
	flagUring   = flag.Bool("uring", false, "submit physical I/O through a batched io_uring with the async pipeline (needs -backing; degrades silently to positioned syscalls where unsupported)")
	flagDist    = flag.String("dist", "uniform", "input distribution")
	flagSeed    = flag.Uint64("seed", 1, "workload seed")
	flagLo      = flag.Float64("lo", 0, "histogram: relative slack below N/K")
	flagHi      = flag.Float64("hi", 0, "histogram: relative slack above N/K")
	flagTrace   = flag.Bool("trace", false, "append a phase trace (span tree with I/O and memory attribution) to the report")
	flagMetrics = flag.String("metrics-addr", "", "serve Prometheus /metrics and /debug/pprof on this host:port while the job runs")
	flagProg    = flag.Duration("progress", 0, "print a progress line to stderr at this interval (0 = off)")
	flagSum     = flag.Bool("checksum", false, "CRC32C-checksum every stored block and fail on corruption at read time")
	flagRetry   = flag.Int("retry", 0, "retry transient backing-I/O faults up to this many attempts (0 or 1 = off)")
	flagLog     = flag.String("log", "", "append structured JSON-lines event log to this file")
	flagOTLP    = flag.String("otlp", "", "write OTLP/JSON trace+metrics export to PREFIX.trace.json / PREFIX.metrics.json (implies tracing and metrics)")
	flagTop     = flag.Bool("top", false, "render a live terminal dashboard to stderr while the job runs")
	flagBudget  = flag.Int64("disk-budget", 0, "cap the simulated disk footprint at this many bytes (0 = unbounded); jobs fail with a typed resource error when exceeded")
)

// liveSys publishes the running System to the signal trap.
var liveSys atomic.Pointer[empart.System]

// trapSignals cancels the live System on SIGINT/SIGTERM: the running
// algorithm unwinds with a typed cancellation error at its next block
// transfer, partial stats are reported, and the process exits nonzero. A
// second signal exits immediately.
func trapSignals() {
	ch := make(chan os.Signal, 2)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig := <-ch
		if sys := liveSys.Load(); sys != nil {
			sys.Cancel(fmt.Errorf("received %v", sig))
			<-ch
		}
		os.Exit(130)
	}()
}

// options carries one emsplit invocation.
type options struct {
	algo     string
	n        int
	m, b     int
	workers  int
	backing  string
	uring    bool
	k, a     int64
	bmax     int64
	dist     string
	seed     uint64
	lo, hi   float64
	trace    bool
	checksum bool
	retry    int
	logPath  string
	otlp     string
	top      bool
	budget   int64

	metricsAddr string
	progress    time.Duration
	progressOut io.Writer // progress/telemetry stream (main: stderr)
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("emsplit: ")
	flag.Parse()
	// The parallel engine's workers spend most of their time blocked in
	// syscalls; on hosts with fewer cores than workers, give the runtime a P
	// per blocked worker plus compute headroom so the device queue stays full.
	if want := 2 * *flagWorkers; want > runtime.GOMAXPROCS(0) {
		runtime.GOMAXPROCS(want)
	}
	trapSignals()
	report, err := execute(options{
		algo: *flagAlgo, n: *flagN, m: *flagM, b: *flagB, workers: *flagWorkers,
		backing: *flagBacking, uring: *flagUring,
		k: *flagK, a: *flagA, bmax: *flagBMax,
		dist: *flagDist, seed: *flagSeed, lo: *flagLo, hi: *flagHi,
		trace: *flagTrace, checksum: *flagSum, retry: *flagRetry,
		logPath: *flagLog, otlp: *flagOTLP, top: *flagTop,
		budget:      *flagBudget,
		metricsAddr: *flagMetrics, progress: *flagProg, progressOut: os.Stderr,
	})
	if err != nil {
		log.Fatal(renderErr(err))
	}
	fmt.Print(report)
}

// renderErr prefixes the resilience layer's typed failures so a log line (and
// the nonzero exit it precedes) tells data corruption apart from device
// trouble without parsing the wrapped chain.
func renderErr(err error) string {
	var ce *empart.CorruptionError
	if errors.As(err, &ce) {
		return fmt.Sprintf("data corruption detected: %v", err)
	}
	var te *empart.TransientError
	if errors.As(err, &te) {
		return fmt.Sprintf("giving up after %d attempt(s): %v", te.Attempts, err)
	}
	var cle *empart.CancelledError
	if errors.As(err, &cle) {
		return fmt.Sprintf("cancelled: %v", err)
	}
	var re *empart.ResourceError
	if errors.As(err, &re) {
		return fmt.Sprintf("out of disk: %v", err)
	}
	return err.Error()
}

// execute runs one algorithm with verification and returns the report text.
func execute(o options) (report string, err error) {
	var sb strings.Builder
	cfg := empart.Config{
		M: o.m, B: o.b,
		Workers:    o.workers,
		Checksum:   o.checksum,
		Retry:      empart.Retry{MaxAttempts: o.retry},
		Log:        empart.LogConfig{Level: slog.LevelDebug, Path: o.logPath},
		DiskBudget: o.budget,
	}
	if o.uring {
		cfg.Pipeline.Enabled = true
		cfg.Pipeline.Uring = true
	}
	var sys *empart.System
	if o.backing != "" {
		sys, err = empart.NewFileBacked(cfg, o.backing)
	} else {
		sys, err = empart.New(cfg)
	}
	if err != nil {
		return "", err
	}
	// Close flushes the buffered event-log file sink; without it a -log run
	// of the in-memory backend would leave an empty JSONL file.
	defer sys.Close()
	liveSys.Store(sys)
	defer liveSys.Store(nil)
	// A cancelled job still reports the block I/Os it had paid, so an
	// interrupted long run leaves a useful trail on the telemetry stream.
	defer func() {
		if err != nil && errors.Is(err, empart.ErrCancelled) && o.progressOut != nil {
			fmt.Fprintf(o.progressOut, "emsplit: cancelled; partial cost %v\n", sys.Stats())
		}
	}()
	// The host line records which physical backends this machine could
	// exercise and which one the run actually uses, so a saved report is
	// self-describing (the bench JSONs carry the same host fields).
	probeDir := os.TempDir()
	if o.backing != "" {
		probeDir = filepath.Dir(o.backing)
	}
	backend := "memory"
	switch {
	case o.backing != "" && sys.UringActive():
		backend = "file+uring"
	case o.backing != "":
		backend = "file"
	}
	fmt.Fprintf(&sb, "host: directIO=%v uring=%v  backend=%s\n",
		empart.DirectIOSupported(probeDir), empart.UringSupported(), backend)
	kind, err := workload.KindByName(o.dist)
	if err != nil {
		return "", err
	}
	n := int64(o.n)
	bmax := o.bmax
	if bmax == 0 {
		bmax = n
	}
	in := workload.Elems(kind, o.n, o.b, o.seed)
	f := sys.Stage(in)
	mc := sys.Machine()
	p := empart.Params{K: o.k, A: o.a, B: bmax}

	sys.ResetStats()
	if o.trace {
		sys.EnableTracing()
	}
	stopTelemetry, err := startTelemetry(sys, o)
	if err != nil {
		return "", err
	}
	defer stopTelemetry()
	var bound float64
	switch o.algo {
	case "splitters":
		out, err := sys.Splitters(f, p)
		if err != nil {
			return "", err
		}
		if _, err := verify.Splitters(in, sys.Read(out), p.K, p.A, p.B); err != nil {
			return "", fmt.Errorf("output invalid: %w", err)
		}
		fmt.Fprintf(&sb, "%s %s: %d splitters verified\n", o.algo, p.Variant(n), out.Len())
		bound = mc.SplittersTwoSidedUB(n, p.K, max(p.A, 1), min(p.B, n))
	case "partition":
		res, err := sys.Partition(f, p)
		if err != nil {
			return "", err
		}
		if err := verify.Partition(in, sys.Read(res.Data), res.Sizes, p.K, p.A, p.B); err != nil {
			return "", fmt.Errorf("output invalid: %w", err)
		}
		fmt.Fprintf(&sb, "%s %s: %d partitions verified\n", o.algo, p.Variant(n), len(res.Sizes))
		bound = mc.PartitionTwoSidedUB(n, p.K, max(p.A, 1), min(p.B, n))
	case "multiselect":
		ranks := equiRanks(n, p.K)
		out, err := sys.MultiSelect(f, ranks)
		if err != nil {
			return "", err
		}
		if err := verify.MultiSelect(in, ranks, sys.Read(out)); err != nil {
			return "", fmt.Errorf("output invalid: %w", err)
		}
		fmt.Fprintf(&sb, "multiselect: %d ranks verified\n", len(ranks))
		bound = mc.MultiSelect(n, p.K)
	case "multipartition":
		sizes := equiSizes(n, p.K)
		out, err := sys.MultiPartition(f, sizes)
		if err != nil {
			return "", err
		}
		got := sys.Read(out)
		if err := verify.SameMultiset(got, in); err != nil {
			return "", err
		}
		if err := verify.OrderedSegments(got, sizes); err != nil {
			return "", fmt.Errorf("output invalid: %w", err)
		}
		fmt.Fprintf(&sb, "multipartition: %d partitions verified\n", len(sizes))
		bound = mc.MultiPartition(n, p.K)
	case "precise":
		out, err := sys.PrecisePartition(f, bmax)
		if err != nil {
			return "", err
		}
		if err := verify.PrecisePartition(in, sys.Read(out), bmax); err != nil {
			return "", fmt.Errorf("output invalid: %w", err)
		}
		fmt.Fprintf(&sb, "precise partitioning at b=%d verified\n", bmax)
		bound = mc.PartitionLeft(n, bmax)
	case "sort":
		out, err := sys.Sort(f)
		if err != nil {
			return "", err
		}
		got := sys.Read(out)
		if err := verify.Sorted(got); err != nil {
			return "", err
		}
		if err := verify.SameMultiset(got, in); err != nil {
			return "", err
		}
		fmt.Fprintf(&sb, "sort verified\n")
		bound = mc.Sort(n)
	case "histogram":
		buckets, err := sys.EquiDepthHistogram(f, int(p.K), o.lo, o.hi)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&sb, "equi-depth histogram, %d buckets:\n", len(buckets))
		for i, b := range buckets {
			fmt.Fprintf(&sb, "  bucket %2d: upper key %12d  depth %d\n", i, b.Upper.Key, b.Count)
		}
	default:
		return "", fmt.Errorf("unknown -algo %q", o.algo)
	}

	st := sys.Stats()
	scan := float64(n) / float64(o.b)
	fmt.Fprintf(&sb, "machine: %v   input: %s N=%d\n", cfg, kind, n)
	fmt.Fprintf(&sb, "cost: %v  (%.2f scans)\n", st, float64(st.Total())/scan)
	if bound > 0 {
		fmt.Fprintf(&sb, "paper bound: %.0f I/Os -> fitted constant %.2f\n", bound, float64(st.Total())/bound)
	}
	fmt.Fprintf(&sb, "peak memory: %d of M=%d elements\n", sys.PeakMemory(), o.m)
	if rep := sys.ShardReport(); rep.Shards > 1 {
		fmt.Fprintf(&sb, "parallel engine: %d shards, %d workers\n", rep.Shards, rep.Workers)
	}
	if o.trace {
		fmt.Fprintf(&sb, "\nphase trace:\n%s", sys.TraceReport())
	}
	return sb.String(), nil
}

// startTelemetry attaches a metrics registry and starts the opt-in scrape
// endpoint and progress reporter. The total I/O count of most emsplit algos
// is not known upfront, so progress lines stream phase, work done and rate
// without an ETA. The returned stop function is safe to call once.
func startTelemetry(sys *empart.System, o options) (func(), error) {
	if o.metricsAddr == "" && o.progress == 0 && o.otlp == "" && !o.top {
		return func() {}, nil
	}
	out := o.progressOut
	if out == nil {
		out = os.Stderr
	}
	reg := sys.EnableMetrics()
	if o.otlp != "" && sys.Tracer() == nil {
		sys.EnableTracing()
	}
	var srv *metrics.Server
	if o.metricsAddr != "" {
		var err error
		srv, err = metrics.Serve(o.metricsAddr, reg)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(out, "emsplit: metrics on %s\n", srv.URL())
	}
	var rep *metrics.Reporter
	if o.progress > 0 {
		rep = metrics.StartProgress(out, o.progress, func() metrics.Progress {
			snap := reg.Snapshot()
			return metrics.Progress{
				Phase: snap.Infos["empart_phase"],
				Done:  snap.Counter("empart_logical_reads_total") + snap.Counter("empart_logical_writes_total"),
				Unit:  "ios",
			}
		})
	}
	var dash *metrics.Dash
	if o.top {
		dash = metrics.StartDash(out, time.Second, 0, func() (metrics.Snapshot, error) {
			return reg.Snapshot(), nil
		})
	}
	return func() {
		if rep != nil {
			rep.Stop()
		}
		if dash != nil {
			dash.Stop()
		}
		if srv != nil {
			if err := srv.Close(); err != nil {
				fmt.Fprintf(out, "emsplit: metrics server: %v\n", err)
			}
		}
		if o.otlp != "" {
			if err := writeOTLP(sys, o.otlp); err != nil {
				fmt.Fprintf(out, "emsplit: otlp export: %v\n", err)
			}
		}
	}, nil
}

// writeOTLP exports the run's trace and metrics as OTLP/JSON documents:
// prefix.trace.json and prefix.metrics.json.
func writeOTLP(sys *empart.System, prefix string) error {
	tr, err := sys.TraceOTLP("emsplit")
	if err != nil {
		return err
	}
	if tr != nil {
		if err := os.WriteFile(prefix+".trace.json", tr, 0o644); err != nil {
			return err
		}
	}
	mt, err := sys.MetricsOTLP("emsplit")
	if err != nil {
		return err
	}
	if mt != nil {
		if err := os.WriteFile(prefix+".metrics.json", mt, 0o644); err != nil {
			return err
		}
	}
	return nil
}

func equiRanks(n, k int64) []int64 {
	ranks := make([]int64, k-1)
	for i := range ranks {
		ranks[i] = int64(i+1) * n / k
	}
	return ranks
}

func equiSizes(n, k int64) []int64 {
	sizes := make([]int64, k)
	prev := int64(0)
	for i := range sizes {
		cum := int64(i+1) * n / k
		sizes[i] = cum - prev
		prev = cum
	}
	return sizes
}
