package main

import (
	"bytes"
	"time"

	"strings"
	"testing"
)

func base() options {
	return options{
		algo: "splitters", n: 1 << 13, m: 4096, b: 32,
		k: 8, a: 64, bmax: 0, dist: "uniform", seed: 1,
	}
}

func TestExecuteEveryAlgo(t *testing.T) {
	for _, algo := range []string{
		"splitters", "partition", "multiselect", "multipartition", "precise", "sort",
	} {
		o := base()
		o.algo = algo
		if algo == "precise" {
			o.bmax = 1024
		}
		report, err := execute(o)
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if !strings.Contains(report, "verified") {
			t.Errorf("%s: report lacks verification line: %q", algo, report)
		}
		if !strings.Contains(report, "cost:") {
			t.Errorf("%s: report lacks cost line", algo)
		}
	}
}

func TestExecuteHistogram(t *testing.T) {
	o := base()
	o.algo = "histogram"
	o.k = 8
	o.lo, o.hi = 0.5, 2
	report, err := execute(o)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(report, "8 buckets") {
		t.Errorf("report: %q", report)
	}
}

func TestExecuteRejections(t *testing.T) {
	o := base()
	o.algo = "nope"
	if _, err := execute(o); err == nil {
		t.Error("unknown algo accepted")
	}
	o = base()
	o.dist = "nope"
	if _, err := execute(o); err == nil {
		t.Error("unknown distribution accepted")
	}
	o = base()
	o.m = 1
	if _, err := execute(o); err == nil {
		t.Error("bad machine accepted")
	}
	o = base()
	o.k = 3 // does not divide n
	if _, err := execute(o); err == nil {
		t.Error("invalid K accepted")
	}
}

func TestExecuteWithTelemetry(t *testing.T) {
	var telemetry bytes.Buffer
	o := base()
	o.metricsAddr = "127.0.0.1:0"
	o.progress = time.Hour // only the final Stop line fires deterministically
	o.progressOut = &telemetry
	report, err := execute(o)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(report, "verified") {
		t.Errorf("report lacks verification line: %q", report)
	}
	got := telemetry.String()
	if !strings.Contains(got, "metrics on http://") {
		t.Errorf("telemetry %q missing metrics URL", got)
	}
	if !strings.Contains(got, "progress: ") || !strings.Contains(got, "ios") {
		t.Errorf("telemetry %q missing progress line", got)
	}
}
