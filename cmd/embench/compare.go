package main

// Regression gate: `embench -compare BENCH_pr3.json` (or BENCH_pr7.json)
// reruns the suite named inside the baseline document and diffs every row
// against it — pr3 rows match by (bench, n, pipeline, direct), pr7 rows by
// (bench, n, direct, workers). Two regression classes:
//
//   - logical I/O: any increase in reads or writes is a failure. Logical
//     counts are deterministic — the model's contract — so there is no noise
//     tolerance to grant.
//   - wall-clock: an increase beyond wallTolerance (20%) is a failure;
//     wall time is best-of-reps and machine-dependent, so small drift is
//     expected and only large regressions gate.
//
// Rows present on only one side are reported as skipped, never failed, so a
// baseline recorded on a host without O_DIRECT still gates the buffered rows.

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// wallTolerance is the acceptable relative wall-clock growth before a row
// counts as a regression.
const wallTolerance = 0.20

type pr3Key struct {
	Bench    string
	N        int64
	Pipeline bool
	Direct   bool
}

func (k pr3Key) String() string {
	mode := "buffered"
	if k.Direct {
		mode = "direct"
	}
	pipe := "off"
	if k.Pipeline {
		pipe = "on"
	}
	return fmt.Sprintf("%s/%s n=%d pipeline=%s", k.Bench, mode, k.N, pipe)
}

// loadBaseline reads a BENCH_pr3.json document.
func loadBaseline(path string) (pr3Doc, error) {
	var doc pr3Doc
	raw, err := os.ReadFile(path)
	if err != nil {
		return doc, err
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		return doc, fmt.Errorf("parse baseline %s: %w", path, err)
	}
	if doc.Suite != "pr3" {
		return doc, fmt.Errorf("baseline %s: suite %q, want pr3", path, doc.Suite)
	}
	return doc, nil
}

// runCompare dispatches on the suite recorded in the baseline document,
// reruns that suite, and returns the regression count.
func runCompare(path string, w io.Writer) (int, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	var head struct {
		Suite string `json:"suite"`
	}
	if err := json.Unmarshal(raw, &head); err != nil {
		return 0, fmt.Errorf("parse baseline %s: %w", path, err)
	}
	switch head.Suite {
	case "pr3":
		baseline, err := loadBaseline(path)
		if err != nil {
			return 0, err
		}
		doc, err := runPR3Doc()
		if err != nil {
			return 0, err
		}
		return compareDocs(baseline, doc, w), nil
	case "pr7":
		var baseline pr7Doc
		if err := json.Unmarshal(raw, &baseline); err != nil {
			return 0, fmt.Errorf("parse baseline %s: %w", path, err)
		}
		doc, err := runPR7Doc()
		if err != nil {
			return 0, err
		}
		return comparePR7(baseline, doc, w), nil
	default:
		return 0, fmt.Errorf("baseline %s: unknown suite %q (supported: pr3, pr7)", path, head.Suite)
	}
}

type pr7Key struct {
	Bench   string
	N       int64
	Direct  bool
	Workers int
}

func (k pr7Key) String() string {
	mode := "buffered"
	if k.Direct {
		mode = "direct"
	}
	return fmt.Sprintf("%s/%s n=%d workers=%d", k.Bench, mode, k.N, k.Workers)
}

// comparePR7 diffs a pr7 run against its baseline with the same rules as pr3:
// logical I/O is exact, wall-clock gets wallTolerance. A broken parallel
// invariant in the rerun (ioMatch or outputMatch false) is always a
// regression, whatever the baseline says.
func comparePR7(baseline, current pr7Doc, w io.Writer) int {
	base := make(map[pr7Key]pr7Row, len(baseline.Rows))
	for _, r := range baseline.Rows {
		base[pr7Key{r.Bench, r.N, r.Direct, r.Workers}] = r
	}
	regressions, matched := 0, 0
	seen := make(map[pr7Key]bool)
	for _, cur := range current.Rows {
		k := pr7Key{cur.Bench, cur.N, cur.Direct, cur.Workers}
		seen[k] = true
		if cur.Workers > 1 && !cur.IOMatch {
			regressions++
			fmt.Fprintf(w, "compare: FAIL %s  logical I/O differs from the 1-worker row\n", k)
			continue
		}
		if !cur.OutputMatch {
			regressions++
			fmt.Fprintf(w, "compare: FAIL %s  output differs from the sequential run\n", k)
			continue
		}
		old, ok := base[k]
		if !ok {
			fmt.Fprintf(w, "compare: SKIP %s (not in baseline)\n", k)
			continue
		}
		matched++
		wallDelta := float64(cur.WallNS-old.WallNS) / float64(old.WallNS)
		switch {
		case cur.Reads > old.Reads || cur.Writes > old.Writes:
			regressions++
			fmt.Fprintf(w, "compare: FAIL %s  logical I/O regressed: reads %d -> %d, writes %d -> %d\n",
				k, old.Reads, cur.Reads, old.Writes, cur.Writes)
		case wallDelta > wallTolerance:
			regressions++
			fmt.Fprintf(w, "compare: FAIL %s  wall-clock regressed %+.1f%% (%.2fms -> %.2fms, tolerance %.0f%%)\n",
				k, 100*wallDelta, float64(old.WallNS)/1e6, float64(cur.WallNS)/1e6, 100*wallTolerance)
		default:
			fmt.Fprintf(w, "compare: ok   %s  wall %+.1f%%  ios %d -> %d\n",
				k, 100*wallDelta, old.IOs, cur.IOs)
		}
	}
	for _, r := range baseline.Rows {
		k := pr7Key{r.Bench, r.N, r.Direct, r.Workers}
		if !seen[k] {
			fmt.Fprintf(w, "compare: SKIP %s (baseline row not measured this run)\n", k)
		}
	}
	fmt.Fprintf(w, "compare: %d rows matched, %d regressions\n", matched, regressions)
	return regressions
}

// compareDocs diffs current against baseline row by row, writing a report
// line per comparison, and returns the number of regressions.
func compareDocs(baseline, current pr3Doc, w io.Writer) int {
	base := make(map[pr3Key]pr3Row, len(baseline.Rows))
	for _, r := range baseline.Rows {
		base[pr3Key{r.Bench, r.N, r.Pipeline, r.Direct}] = r
	}
	regressions, matched := 0, 0
	seen := make(map[pr3Key]bool)
	for _, cur := range current.Rows {
		k := pr3Key{cur.Bench, cur.N, cur.Pipeline, cur.Direct}
		seen[k] = true
		old, ok := base[k]
		if !ok {
			fmt.Fprintf(w, "compare: SKIP %s (not in baseline)\n", k)
			continue
		}
		matched++
		wallDelta := float64(cur.WallNS-old.WallNS) / float64(old.WallNS)
		switch {
		case cur.Reads > old.Reads || cur.Writes > old.Writes:
			regressions++
			fmt.Fprintf(w, "compare: FAIL %s  logical I/O regressed: reads %d -> %d, writes %d -> %d\n",
				k, old.Reads, cur.Reads, old.Writes, cur.Writes)
		case wallDelta > wallTolerance:
			regressions++
			fmt.Fprintf(w, "compare: FAIL %s  wall-clock regressed %+.1f%% (%.2fms -> %.2fms, tolerance %.0f%%)\n",
				k, 100*wallDelta, float64(old.WallNS)/1e6, float64(cur.WallNS)/1e6, 100*wallTolerance)
		default:
			fmt.Fprintf(w, "compare: ok   %s  wall %+.1f%%  ios %d -> %d\n",
				k, 100*wallDelta, old.IOs, cur.IOs)
		}
	}
	for _, r := range baseline.Rows {
		k := pr3Key{r.Bench, r.N, r.Pipeline, r.Direct}
		if !seen[k] {
			fmt.Fprintf(w, "compare: SKIP %s (baseline row not measured this run)\n", k)
		}
	}
	fmt.Fprintf(w, "compare: %d rows matched, %d regressions\n", matched, regressions)
	return regressions
}
