package main

// Regression gate: `embench -compare BENCH_pr3.json` reruns the pr3
// wall-clock suite and diffs every row against the checked-in baseline,
// matching rows by (bench, n, pipeline, direct). Two regression classes:
//
//   - logical I/O: any increase in reads or writes is a failure. Logical
//     counts are deterministic — the model's contract — so there is no noise
//     tolerance to grant.
//   - wall-clock: an increase beyond wallTolerance (20%) is a failure;
//     wall time is best-of-reps and machine-dependent, so small drift is
//     expected and only large regressions gate.
//
// Rows present on only one side are reported as skipped, never failed, so a
// baseline recorded on a host without O_DIRECT still gates the buffered rows.

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// wallTolerance is the acceptable relative wall-clock growth before a row
// counts as a regression.
const wallTolerance = 0.20

type pr3Key struct {
	Bench    string
	N        int64
	Pipeline bool
	Direct   bool
}

func (k pr3Key) String() string {
	mode := "buffered"
	if k.Direct {
		mode = "direct"
	}
	pipe := "off"
	if k.Pipeline {
		pipe = "on"
	}
	return fmt.Sprintf("%s/%s n=%d pipeline=%s", k.Bench, mode, k.N, pipe)
}

// loadBaseline reads a BENCH_pr3.json document.
func loadBaseline(path string) (pr3Doc, error) {
	var doc pr3Doc
	raw, err := os.ReadFile(path)
	if err != nil {
		return doc, err
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		return doc, fmt.Errorf("parse baseline %s: %w", path, err)
	}
	if doc.Suite != "pr3" {
		return doc, fmt.Errorf("baseline %s: suite %q, want pr3", path, doc.Suite)
	}
	return doc, nil
}

// compareDocs diffs current against baseline row by row, writing a report
// line per comparison, and returns the number of regressions.
func compareDocs(baseline, current pr3Doc, w io.Writer) int {
	base := make(map[pr3Key]pr3Row, len(baseline.Rows))
	for _, r := range baseline.Rows {
		base[pr3Key{r.Bench, r.N, r.Pipeline, r.Direct}] = r
	}
	regressions, matched := 0, 0
	seen := make(map[pr3Key]bool)
	for _, cur := range current.Rows {
		k := pr3Key{cur.Bench, cur.N, cur.Pipeline, cur.Direct}
		seen[k] = true
		old, ok := base[k]
		if !ok {
			fmt.Fprintf(w, "compare: SKIP %s (not in baseline)\n", k)
			continue
		}
		matched++
		wallDelta := float64(cur.WallNS-old.WallNS) / float64(old.WallNS)
		switch {
		case cur.Reads > old.Reads || cur.Writes > old.Writes:
			regressions++
			fmt.Fprintf(w, "compare: FAIL %s  logical I/O regressed: reads %d -> %d, writes %d -> %d\n",
				k, old.Reads, cur.Reads, old.Writes, cur.Writes)
		case wallDelta > wallTolerance:
			regressions++
			fmt.Fprintf(w, "compare: FAIL %s  wall-clock regressed %+.1f%% (%.2fms -> %.2fms, tolerance %.0f%%)\n",
				k, 100*wallDelta, float64(old.WallNS)/1e6, float64(cur.WallNS)/1e6, 100*wallTolerance)
		default:
			fmt.Fprintf(w, "compare: ok   %s  wall %+.1f%%  ios %d -> %d\n",
				k, 100*wallDelta, old.IOs, cur.IOs)
		}
	}
	for _, r := range baseline.Rows {
		k := pr3Key{r.Bench, r.N, r.Pipeline, r.Direct}
		if !seen[k] {
			fmt.Fprintf(w, "compare: SKIP %s (baseline row not measured this run)\n", k)
		}
	}
	fmt.Fprintf(w, "compare: %d rows matched, %d regressions\n", matched, regressions)
	return regressions
}
