// Command embench regenerates the paper's evaluation — Table 1 and the
// companion results — as markdown tables: for every row it sweeps the
// relevant parameter on the simulated EM machine, measures real block I/Os,
// and prints them next to the paper's formula (upper bound) and the
// information-theoretic floor (lower bound). The output is what
// EXPERIMENTS.md records.
//
// Usage:
//
//	embench [-n 262144] [-m 4096] [-b 32] [-quick] [-json] [-trace]
//	        [-backing DIR] [-prefetch K] [-writebehind Q] [-direct] [-uring]
//	        [-suite pr3|pr5|pr6|pr7|pr8|pr10]
//
// With -backing the simulated disk lives in a real file under DIR and every
// row gains wall-clock columns (ns/elem, MB/s). -prefetch and -writebehind
// enable the asynchronous I/O pipeline for A/B runs; they change physical
// scheduling only, never the logical I/O counts. -direct bypasses the page
// cache and -uring submits physical transfers through a batched io_uring
// (Linux; silently degrades where unsupported). -suite pr3 runs the
// checked-in wall-clock A/B suite (sort/partition/splitters at three scales,
// pipeline on vs off) and emits the BENCH_pr3.json document; -suite pr8 is
// the io_uring A/B counterpart emitting BENCH_pr8.json; -suite pr10 prices
// the crash-safe checkpoint journal (plain vs journaled sort) and emits
// BENCH_pr10.json. SIGINT/SIGTERM cancels the measurement in flight and
// exits nonzero; a second signal exits immediately.
package main

import (
	"encoding/binary"
	"encoding/json"
	"flag"
	"fmt"
	"hash/fnv"
	"io"
	"log"
	"log/slog"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"sync/atomic"
	"syscall"
	"time"

	empart "repro"
	"repro/internal/emio"
	"repro/internal/emio/metrics"
	"repro/internal/imcomp"
	"repro/internal/intermix"
	"repro/internal/workload"
)

var (
	flagN       = flag.Int("n", 1<<18, "input size N in elements")
	flagM       = flag.Int("m", 1<<12, "memory size M in elements")
	flagB       = flag.Int("b", 1<<5, "block size B in elements")
	flagQuick   = flag.Bool("quick", false, "smaller N for a fast smoke run")
	flagDist    = flag.String("dist", "uniform", "input distribution (see internal/workload)")
	flagJSON    = flag.Bool("json", false, "emit one JSON array of measurement rows instead of markdown")
	flagTrace   = flag.Bool("trace", false, "print a per-run phase trace (span tree) to stderr")
	flagBacking = flag.String("backing", "", "directory for file-backed disks (empty = in-memory simulation)")
	flagPre     = flag.Int("prefetch", 0, "read-ahead depth in blocks; >0 enables the async pipeline (file-backed only)")
	flagWB      = flag.Int("writebehind", 0, "write-behind queue depth in blocks; >0 enables the async pipeline (file-backed only)")
	flagDirect  = flag.Bool("direct", false, "open backing files with O_DIRECT, bypassing the page cache (file-backed only)")
	flagUring   = flag.Bool("uring", false, "submit physical I/O through a batched io_uring instead of positioned syscalls (file-backed Linux only; silently degrades where unsupported)")
	flagSuite   = flag.String("suite", "", "named suite: 'pr3' (pipeline A/B), 'pr5' (checksum A/B), 'pr6' (telemetry A/B), 'pr7' (parallel-engine speedup curve), 'pr8' (io_uring backend A/B) or 'pr10' (checkpoint-journal overhead A/B); emits the suite JSON and exits")
	flagSum     = flag.Bool("checksum", false, "CRC32C-checksum every stored block and fail on corruption at read time")
	flagRetry   = flag.Int("retry", 0, "retry transient backing-I/O faults up to this many attempts (0 or 1 = off)")
	flagCompare = flag.String("compare", "", "baseline BENCH_pr3.json or BENCH_pr7.json: rerun that suite, diff against it, and exit nonzero on any logical-I/O or >20% wall-clock regression")
	flagProf    = flag.String("cpuprofile", "", "write a CPU profile to this file")
	flagMetrics = flag.String("metrics-addr", "", "serve Prometheus /metrics and /debug/pprof on this host:port while the benchmarks run")
	flagProg    = flag.Duration("progress", 0, "print a progress line to stderr at this interval (0 = off)")
	flagTop     = flag.Bool("top", false, "render a live terminal dashboard to stderr while the benchmarks run")
)

// telReg, when non-nil, is the shared metrics registry every benchmark System
// attaches to, so one scrape endpoint watches the whole sweep (registration
// is idempotent; counters accumulate across systems).
var telReg *metrics.Registry

// liveSys publishes the System currently being measured to the signal trap:
// one choke point, updated as the sweep moves from system to system.
var liveSys atomic.Pointer[empart.System]

// registerLive points the signal trap at sys for the duration of a
// measurement.
func registerLive(sys *empart.System) { liveSys.Store(sys) }

// trapSignals cancels the live System on SIGINT/SIGTERM so a long sweep
// stops within about one block transfer and exits nonzero; a second signal
// exits immediately.
func trapSignals() {
	ch := make(chan os.Signal, 2)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig := <-ch
		if sys := liveSys.Load(); sys != nil {
			sys.Cancel(fmt.Errorf("received %v", sig))
			<-ch
		}
		os.Exit(130)
	}()
}

// startTelemetry arms telReg and the opt-in scrape endpoint and progress
// reporter; the returned stop function flushes and shuts them down.
func startTelemetry() (func(), error) {
	if *flagMetrics == "" && *flagProg == 0 && !*flagTop {
		return func() {}, nil
	}
	telReg = metrics.New()
	var srv *metrics.Server
	if *flagMetrics != "" {
		var err error
		srv, err = metrics.Serve(*flagMetrics, telReg)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(os.Stderr, "embench: metrics on %s\n", srv.URL())
	}
	var rep *metrics.Reporter
	if *flagProg > 0 {
		reg := telReg
		rep = metrics.StartProgress(os.Stderr, *flagProg, func() metrics.Progress {
			snap := reg.Snapshot()
			return metrics.Progress{
				Phase: snap.Infos["empart_phase"],
				Done:  snap.Counter("empart_logical_reads_total") + snap.Counter("empart_logical_writes_total"),
				Unit:  "ios",
			}
		})
	}
	var dash *metrics.Dash
	if *flagTop {
		reg := telReg
		dash = metrics.StartDash(os.Stderr, time.Second, 0, func() (metrics.Snapshot, error) {
			return reg.Snapshot(), nil
		})
	}
	return func() {
		if rep != nil {
			rep.Stop()
		}
		if dash != nil {
			dash.Stop()
		}
		if srv != nil {
			if err := srv.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "embench: metrics server: %v\n", err)
			}
		}
	}, nil
}

type row struct {
	Section   string  `json:"section,omitempty"`
	Label     string  `json:"label"`
	IOs       int64   `json:"ios"`
	Scans     float64 `json:"scans"`
	UB        float64 `json:"ub,omitempty"`
	LB        float64 `json:"lb,omitempty"`
	RatioUB   float64 `json:"ratioUB,omitempty"`
	RatioLB   float64 `json:"ratioLB,omitempty"`
	WallNS    int64   `json:"wallNs,omitempty"`
	NsPerElem float64 `json:"nsPerElem,omitempty"`
	MBps      float64 `json:"mbps,omitempty"`
}

// pipelineFromFlags assembles the Pipeline knobs for A/B runs: any positive
// depth enables the pipeline.
func pipelineFromFlags() empart.Pipeline {
	p := empart.Pipeline{PrefetchDepth: *flagPre, QueueDepth: *flagWB, Direct: *flagDirect, Uring: *flagUring}
	p.Enabled = *flagPre > 0 || *flagWB > 0
	return p
}

// diskSeq names the backing files when -backing is set.
var diskSeq int

// newSystem builds the System each measurement runs on: in-memory by
// default, file-backed (optionally pipelined) under -backing. The returned
// cleanup closes the system and removes its backing file.
func newSystem(cfg empart.Config) (*empart.System, func(), error) {
	if *flagBacking == "" {
		sys, err := empart.New(cfg)
		if err == nil {
			if telReg != nil {
				sys.SetMetrics(telReg)
			}
			registerLive(sys)
		}
		return sys, func() {}, err
	}
	diskSeq++
	cfg.Pipeline = pipelineFromFlags()
	path := filepath.Join(*flagBacking, fmt.Sprintf("embench-%d.dat", diskSeq))
	sys, err := empart.NewFileBacked(cfg, path)
	if err != nil {
		return nil, nil, err
	}
	if telReg != nil {
		sys.SetMetrics(telReg)
	}
	registerLive(sys)
	return sys, func() {
		sys.Close()
		os.Remove(path)
	}, nil
}

// wallCols fills the wall-clock columns of a row: nanoseconds per input
// element and physical payload throughput (ios * B * 16 bytes over the wall
// time).
func wallCols(r *row, n int64, b int, wall time.Duration) {
	if wall <= 0 {
		return
	}
	r.WallNS = wall.Nanoseconds()
	r.NsPerElem = float64(wall.Nanoseconds()) / float64(n)
	r.MBps = float64(r.IOs*int64(b)*16) / wall.Seconds() / 1e6
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("embench: ")
	flag.Parse()
	trapSignals()
	if *flagProf != "" {
		pf, err := os.Create(*flagProf)
		if err != nil {
			log.Fatal(err)
		}
		if err := pprof.StartCPUProfile(pf); err != nil {
			log.Fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	stopTelemetry, err := startTelemetry()
	if err != nil {
		log.Fatal(err)
	}
	defer stopTelemetry()
	if *flagCompare != "" {
		n, err := runCompare(*flagCompare, os.Stderr)
		if err != nil {
			log.Fatal(err)
		}
		if n > 0 {
			stopTelemetry()
			os.Exit(1)
		}
		return
	}
	switch *flagSuite {
	case "":
	case "pr3":
		if err := runPR3(os.Stdout); err != nil {
			log.Fatal(err)
		}
		return
	case "pr5":
		if err := runPR5(os.Stdout); err != nil {
			log.Fatal(err)
		}
		return
	case "pr6":
		if err := runPR6(os.Stdout); err != nil {
			log.Fatal(err)
		}
		return
	case "pr7":
		if err := runPR7(os.Stdout); err != nil {
			log.Fatal(err)
		}
		return
	case "pr8":
		if err := runPR8(os.Stdout); err != nil {
			log.Fatal(err)
		}
		return
	case "pr10":
		if err := runPR10(os.Stdout); err != nil {
			log.Fatal(err)
		}
		return
	default:
		log.Fatalf("unknown suite %q (supported: pr3, pr5, pr6, pr7, pr8, pr10)", *flagSuite)
	}
	if *flagQuick {
		*flagN = 1 << 15
	}
	n := int64(*flagN)
	cfg := empart.Config{
		M: *flagM, B: *flagB,
		Checksum: *flagSum,
		Retry:    empart.Retry{MaxAttempts: *flagRetry},
	}
	if err := cfg.Validate(); err != nil {
		log.Fatal(err)
	}
	kind, err := workload.KindByName(*flagDist)
	if err != nil {
		log.Fatal(err)
	}
	mc := empart.Machine{M: int64(*flagM), B: int64(*flagB)}
	scan := float64(n) / float64(*flagB)

	if !*flagJSON {
		fmt.Printf("# Table 1 reproduction — N=%d, M=%d, B=%d, dist=%s\n\n", n, *flagM, *flagB, kind)
		fmt.Printf("One scan = %.0f I/Os. `ratioUB` is measured/upper-bound-formula (the fitted\n", scan)
		fmt.Printf("constant; flat across a sweep = the formula captures the shape). `ratioLB` is\n")
		fmt.Printf("measured/lower-bound-floor (must stay >= 1; O(1) = the algorithm is optimal).\n\n")
	}

	var jsonRows []row

	measure := func(label string, ub, lb float64, run func(sys *empart.System, f *empart.File) error) row {
		sys, cleanup, err := newSystem(cfg)
		if err != nil {
			log.Fatal(err)
		}
		defer cleanup()
		f := sys.Stage(workload.Elems(kind, int(n), *flagB, 0xeb1e55))
		sys.ResetStats()
		if *flagTrace {
			sys.EnableTracing()
		}
		start := time.Now()
		if err := run(sys, f); err != nil {
			log.Fatalf("%s: %v", label, err)
		}
		wall := time.Since(start)
		if *flagTrace {
			fmt.Fprintf(os.Stderr, "--- trace %s ---\n%s", label, sys.TraceReport())
		}
		io := sys.Stats().Total()
		r := row{Label: label, IOs: io, Scans: float64(io) / scan, UB: ub, LB: lb}
		if ub > 0 {
			r.RatioUB = float64(io) / ub
		}
		if lb > 0 {
			r.RatioLB = float64(io) / lb
		}
		if *flagBacking != "" {
			wallCols(&r, n, *flagB, wall)
		}
		return r
	}
	printTable := func(title, paramCol string, rows []row) {
		for _, r := range rows {
			r.Section = title
			jsonRows = append(jsonRows, r)
		}
		if *flagJSON {
			return
		}
		wallHdr, wallSep := "", ""
		if *flagBacking != "" {
			wallHdr, wallSep = " ns/elem | MB/s |", "---|---|"
		}
		fmt.Printf("## %s\n\n", title)
		fmt.Printf("| %s | I/Os | scans | UB formula | ratioUB | LB floor | ratioLB |%s\n", paramCol, wallHdr)
		fmt.Printf("|---|---|---|---|---|---|---|%s\n", wallSep)
		for _, r := range rows {
			wallCell := ""
			if *flagBacking != "" {
				wallCell = fmt.Sprintf(" %.1f | %.1f |", r.NsPerElem, r.MBps)
			}
			fmt.Printf("| %s | %d | %.3f | %.0f | %.2f | %.0f | %.2f |%s\n",
				r.Label, r.IOs, r.Scans, r.UB, r.RatioUB, r.LB, r.RatioLB, wallCell)
		}
		fmt.Println()
	}

	// --- T1-R-SPL ---------------------------------------------------------
	{
		k := int64(64)
		var rows []row
		seen := map[int64]bool{}
		for _, a := range []int64{2, 8, 32, 128, 512, 2048, n / k} {
			if a > n/k || seen[a] {
				continue
			}
			seen[a] = true
			p := empart.Params{K: k, A: a, B: n}
			rows = append(rows, measure(fmt.Sprintf("a=%d", a),
				mc.SplittersRight(a, k), mc.RightSplittersFloor(a, k),
				func(sys *empart.System, f *empart.File) error {
					out, err := sys.Splitters(f, p)
					if err != nil {
						return err
					}
					out.Release()
					return nil
				}))
		}
		printTable(fmt.Sprintf("T1-R-SPL: right-grounded K-splitters (K=%d, b=N) — sublinear for small a", k), "a", rows)
	}

	// --- T1-L-SPL ---------------------------------------------------------
	{
		k := int64(64)
		var rows []row
		for _, bb := range []int64{n / 64, n / 16, n / 4, n / 2} {
			p := empart.Params{K: k, A: 0, B: bb}
			rows = append(rows, measure(fmt.Sprintf("b=N/%d", n/bb),
				mc.SplittersLeft(n, bb), mc.LeftSplittersFloor(n, bb),
				func(sys *empart.System, f *empart.File) error {
					out, err := sys.Splitters(f, p)
					if err != nil {
						return err
					}
					out.Release()
					return nil
				}))
		}
		printTable(fmt.Sprintf("T1-L-SPL: left-grounded K-splitters (K=%d, a=0)", k), "b", rows)
	}

	// --- T1-2-SPL ---------------------------------------------------------
	{
		k := int64(64)
		nk := n / k
		var rows []row
		for _, tc := range []struct{ a, b int64 }{
			{nk, nk}, {nk / 8, nk * 4}, {4, n / 4}, {nk / 2, n / 2},
		} {
			p := empart.Params{K: k, A: tc.a, B: tc.b}
			rows = append(rows, measure(fmt.Sprintf("a=%d b=%d", tc.a, tc.b),
				mc.SplittersTwoSidedUB(n, k, tc.a, tc.b), mc.SplittersTwoSidedLB(n, k, tc.a, tc.b),
				func(sys *empart.System, f *empart.File) error {
					out, err := sys.Splitters(f, p)
					if err != nil {
						return err
					}
					out.Release()
					return nil
				}))
		}
		printTable(fmt.Sprintf("T1-2-SPL: two-sided K-splitters (K=%d)", k), "a, b", rows)
	}

	// --- T1-R-PAR ---------------------------------------------------------
	{
		k := int64(64)
		var rows []row
		seen := map[int64]bool{}
		for _, a := range []int64{0, 16, 256, 2048, n / k} {
			if a > n/k || seen[a] {
				continue
			}
			seen[a] = true
			p := empart.Params{K: k, A: a, B: n}
			rows = append(rows, measure(fmt.Sprintf("a=%d", a),
				mc.PartitionRightUB(n, k, a), mc.PartitionRightLB(n),
				func(sys *empart.System, f *empart.File) error {
					res, err := sys.Partition(f, p)
					if err != nil {
						return err
					}
					res.Release()
					return nil
				}))
		}
		printTable(fmt.Sprintf("T1-R-PAR: right-grounded K-partitioning (K=%d, b=N)", k), "a", rows)
	}

	// --- T1-L-PAR ---------------------------------------------------------
	{
		var rows []row
		for _, bb := range []int64{n / 256, n / 64, n / 16, n / 4, n / 2} {
			p := empart.Params{K: 256, A: 0, B: bb}
			rows = append(rows, measure(fmt.Sprintf("b=N/%d", n/bb),
				mc.PartitionLeft(n, bb), mc.PartitionLeft(n, bb),
				func(sys *empart.System, f *empart.File) error {
					res, err := sys.Partition(f, p)
					if err != nil {
						return err
					}
					res.Release()
					return nil
				}))
		}
		printTable("T1-L-PAR: left-grounded K-partitioning (K=256, a=0) — Θ matches, so LB floor = UB formula", "b", rows)

		// K-independence sweep: K must satisfy K >= N/b = 8 and divide N.
		var flat []row
		for _, k := range []int64{8, 64, 256, 4096} {
			p := empart.Params{K: k, A: 0, B: n / 8}
			flat = append(flat, measure(fmt.Sprintf("K=%d", k),
				mc.PartitionLeft(n, n/8), 0,
				func(sys *empart.System, f *empart.File) error {
					res, err := sys.Partition(f, p)
					if err != nil {
						return err
					}
					res.Release()
					return nil
				}))
		}
		printTable("T1-L-PAR flatness: cost is independent of K at fixed b=N/8 (Theorem 3)", "K", flat)
	}

	// --- T1-2-PAR ---------------------------------------------------------
	{
		k := int64(64)
		nk := n / k
		var rows []row
		for _, tc := range []struct{ a, b int64 }{
			{nk, nk}, {nk / 8, nk * 4}, {4, n / 4},
		} {
			p := empart.Params{K: k, A: tc.a, B: tc.b}
			rows = append(rows, measure(fmt.Sprintf("a=%d b=%d", tc.a, tc.b),
				mc.PartitionTwoSidedUB(n, k, tc.a, tc.b), mc.PartitionTwoSidedLB(n, tc.b),
				func(sys *empart.System, f *empart.File) error {
					res, err := sys.Partition(f, p)
					if err != nil {
						return err
					}
					res.Release()
					return nil
				}))
		}
		printTable(fmt.Sprintf("T1-2-PAR: two-sided K-partitioning (K=%d)", k), "a, b", rows)
	}

	// --- THM4-SEP ----------------------------------------------------------
	{
		if !*flagJSON {
			fmt.Printf("## THM4-SEP: multi-selection vs multi-partition (equi-spaced, Theorem 4)\n\n")
			fmt.Printf("| K | msel I/Os | msel formula | mpart I/Os | mpart formula | mpart/msel measured | predicted |\n")
			fmt.Printf("|---|---|---|---|---|---|---|\n")
		}
		for _, k := range []int64{4, 32, 256, 2048, n / int64(*flagB)} {
			ranks := make([]int64, k-1)
			sizes := make([]int64, k)
			prev := int64(0)
			for i := int64(0); i < k; i++ {
				cum := (i + 1) * n / k
				if i < k-1 {
					ranks[i] = cum
				}
				sizes[i] = cum - prev
				prev = cum
			}
			ms := measure(fmt.Sprintf("msel K=%d", k), mc.MultiSelect(n, k), 0, func(sys *empart.System, f *empart.File) error {
				out, err := sys.MultiSelect(f, ranks)
				if err != nil {
					return err
				}
				out.Release()
				return nil
			})
			mp := measure(fmt.Sprintf("mpart K=%d", k), mc.MultiPartition(n, k), 0, func(sys *empart.System, f *empart.File) error {
				out, err := sys.MultiPartition(f, sizes)
				if err != nil {
					return err
				}
				out.Release()
				return nil
			})
			ms.Section, mp.Section = "THM4-SEP", "THM4-SEP"
			jsonRows = append(jsonRows, ms, mp)
			if !*flagJSON {
				fmt.Printf("| %d | %d | %.0f | %d | %.0f | %.2f | %.2f |\n",
					k, ms.IOs, ms.UB, mp.IOs, mp.UB,
					float64(mp.IOs)/float64(ms.IOs), mp.UB/ms.UB)
			}
		}
		if !*flagJSON {
			fmt.Println()
		}
	}

	// --- SORT-BASE ----------------------------------------------------------
	{
		var rows []row
		for _, nn := range []int64{n / 4, n, n * 2} {
			rows = append(rows, func() row {
				sys, cleanup, err := newSystem(cfg)
				if err != nil {
					log.Fatal(err)
				}
				defer cleanup()
				f := sys.Stage(workload.Elems(kind, int(nn), *flagB, 0xeb1e55))
				sys.ResetStats()
				if *flagTrace {
					sys.EnableTracing()
				}
				start := time.Now()
				out, err := sys.Sort(f)
				if err != nil {
					log.Fatal(err)
				}
				out.Release()
				wall := time.Since(start)
				if *flagTrace {
					fmt.Fprintf(os.Stderr, "--- trace sort N=%d ---\n%s", nn, sys.TraceReport())
				}
				io := sys.Stats().Total()
				r := row{
					Label: fmt.Sprintf("N=%d", nn), IOs: io,
					Scans: float64(io) / (float64(nn) / float64(*flagB)),
					UB:    mc.Sort(nn), LB: mc.SortFloor(nn),
					RatioUB: float64(io) / mc.Sort(nn),
					RatioLB: float64(io) / mc.SortFloor(nn),
				}
				if *flagBacking != "" {
					wallCols(&r, nn, *flagB, wall)
				}
				return r
			}())
		}
		printTable("SORT-BASE: external merge sort (the trivial solution to every row)", "N", rows)
	}

	// --- INTERMIX -----------------------------------------------------------
	{
		if !*flagJSON {
			fmt.Printf("## INTERMIX: L-intermixed selection is linear (Lemma 6)\n\n")
			fmt.Printf("| L | I/Os | scans |\n|---|---|---|\n")
		}
		maxL := intermix.MaxGroups(emio.Config{M: *flagM, B: *flagB})
		for _, l := range []int{1, 2, 4, maxL} {
			if l < 1 {
				continue
			}
			ctx, err := emio.NewCtx(emio.Config{M: *flagM, B: *flagB})
			if err != nil {
				log.Fatal(err)
			}
			elems := workload.Elems(kind, int(n), *flagB, 0x1e7)
			for i := range elems {
				elems[i].Aux = emio.PackAux(int64(i%l), int64(i))
			}
			d := emio.BuildFile(ctx.Disk(), "D", elems)
			targets := make([]int64, l)
			for i := range targets {
				targets[i] = n / int64(l) / 2
			}
			ctx.Disk().ResetStats()
			if *flagTrace {
				ctx.SetTracer(emio.NewTracer())
			}
			res, err := intermix.Select(ctx, d, l, targets)
			if err != nil {
				log.Fatal(err)
			}
			ctx.FreeElems(res)
			if *flagTrace {
				fmt.Fprintf(os.Stderr, "--- trace intermix L=%d ---\n%s", l, ctx.Tracer().Render())
			}
			io := ctx.Disk().Stats().Total()
			jsonRows = append(jsonRows, row{Section: "INTERMIX", Label: fmt.Sprintf("L=%d", l),
				IOs: io, Scans: float64(io) / scan})
			if !*flagJSON {
				fmt.Printf("| %d | %d | %.2f |\n", l, io, float64(io)/scan)
			}
		}
		if !*flagJSON {
			fmt.Println()
		}
	}

	// --- RED-3 ---------------------------------------------------------------
	{
		var rows []row
		for _, bb := range []int64{n / 256, n / 16, n / 4} {
			rows = append(rows, measure(fmt.Sprintf("b=N/%d", n/bb),
				mc.PartitionLeft(n, bb), mc.PrecisePartitionFloor(n, n/bb),
				func(sys *empart.System, f *empart.File) error {
					out, err := sys.PrecisePartition(f, bb)
					if err != nil {
						return err
					}
					out.Release()
					return nil
				}))
		}
		printTable("RED-3: precise partitioning via the §3 reduction (approx + O(N/B) re-chunk)", "b", rows)
	}

	// --- MACHINE-SWEEP --------------------------------------------------------
	{
		if !*flagJSON {
			fmt.Printf("## MACHINE-SWEEP: the lg_{M/B} base across machine shapes\n\n")
			fmt.Printf("Fixed N and problem; varying M/B changes the base of every lg in\n")
			fmt.Printf("Table 1. Sorting passes and left-grounded partitioning costs move\n")
			fmt.Printf("together, as the shared lg_{M/B} factor predicts.\n\n")
			fmt.Printf("| machine | M/B | sort I/Os | sort scans | L-PAR(b=N/64) I/Os | L-PAR scans |\n")
			fmt.Printf("|---|---|---|---|---|---|\n")
		}
		for _, shape := range []empart.Config{
			{M: 1 << 10, B: 1 << 7}, // M/B = 8
			{M: 1 << 12, B: 1 << 7}, // M/B = 32
			{M: 1 << 12, B: 1 << 5}, // M/B = 128
			{M: 1 << 14, B: 1 << 5}, // M/B = 512
		} {
			runOn := func(fn func(sys *empart.System, f *empart.File) error) int64 {
				sys, cleanup, err := newSystem(shape)
				if err != nil {
					log.Fatal(err)
				}
				defer cleanup()
				f := sys.Stage(workload.Elems(kind, int(n), shape.B, 0x5eeb))
				sys.ResetStats()
				if err := fn(sys, f); err != nil {
					log.Fatal(err)
				}
				return sys.Stats().Total()
			}
			sortIO := runOn(func(sys *empart.System, f *empart.File) error {
				out, err := sys.Sort(f)
				if err != nil {
					return err
				}
				out.Release()
				return nil
			})
			parIO := runOn(func(sys *empart.System, f *empart.File) error {
				res, err := sys.Partition(f, empart.Params{K: 256, A: 0, B: n / 64})
				if err != nil {
					return err
				}
				res.Release()
				return nil
			})
			shapeScan := float64(n) / float64(shape.B)
			jsonRows = append(jsonRows,
				row{Section: "MACHINE-SWEEP", Label: fmt.Sprintf("sort %v", shape),
					IOs: sortIO, Scans: float64(sortIO) / shapeScan},
				row{Section: "MACHINE-SWEEP", Label: fmt.Sprintf("L-PAR %v", shape),
					IOs: parIO, Scans: float64(parIO) / shapeScan})
			if !*flagJSON {
				fmt.Printf("| %v | %d | %d | %.2f | %d | %.2f |\n",
					shape, shape.M/shape.B, sortIO, float64(sortIO)/shapeScan, parIO, float64(parIO)/shapeScan)
			}
		}
		if !*flagJSON {
			fmt.Println()
		}
	}

	// --- IM-PARITY (markdown only: comparison counts, not block I/Os) --------
	if !*flagJSON {
		fmt.Printf("## IM-PARITY: internal-memory comparison counts (the §1.3 remark)\n\n")
		fmt.Printf("In internal memory, multi-selection and multi-partition both take\n")
		fmt.Printf("Θ(N lg K) comparisons — the separation exists only in the EM model.\n\n")
		fmt.Printf("| K | msel comparisons | mpart comparisons | ratio |\n|---|---|---|---|\n")
		base := workload.Elems(kind, int(n), *flagB, 0x1337)
		for _, k := range []int64{4, 64, 1024} {
			ranks := make([]int64, 0, k-1)
			for i := int64(1); i < k; i++ {
				r := i * n / k
				if len(ranks) == 0 || r > ranks[len(ranks)-1] {
					ranks = append(ranks, r)
				}
			}
			sizes := make([]int64, k)
			prev := int64(0)
			for i := int64(0); i < k; i++ {
				cum := (i + 1) * n / k
				sizes[i] = cum - prev
				prev = cum
			}
			sel := append([]emio.Elem(nil), base...)
			_, cSel, err := imcomp.MultiSelect(sel, ranks)
			if err != nil {
				log.Fatal(err)
			}
			par := append([]emio.Elem(nil), base...)
			cPar, err := imcomp.MultiPartition(par, sizes)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("| %d | %d | %d | %.2f |\n", k, cSel, cPar, float64(cSel)/float64(cPar))
		}
		fmt.Println()
	}

	if *flagJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(jsonRows); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Fprintln(os.Stderr, "embench: done")
}

// --- suite pr3: wall-clock A/B of the async I/O pipeline ------------------
//
// The Table-1 harness above validates logical I/O counts against the paper's
// formulas; this suite validates the physical layer. It runs sort, partition
// and splitters on file-backed disks at three scales with N >> M, pipeline
// off vs on, and reports wall-clock next to the logical counters. The
// invariant checked on every row pair: the pipeline may only move wall-clock,
// never reads/writes.

type pr3Row struct {
	Bench      string  `json:"bench"`
	N          int64   `json:"n"`
	Pipeline   bool    `json:"pipeline"`
	Direct     bool    `json:"direct"`
	Reads      int64   `json:"reads"`
	Writes     int64   `json:"writes"`
	IOs        int64   `json:"ios"`
	PhysReads  int64   `json:"physReads"`
	PhysWrites int64   `json:"physWrites"`
	WallNS     int64   `json:"wallNs"`
	NsPerElem  float64 `json:"nsPerElem"`
	MBps       float64 `json:"mbps"`
	// Pipelined rows only: wall(off)/wall(on), and whether the logical I/O
	// counters matched the pipeline-off run exactly.
	Speedup float64 `json:"speedup,omitempty"`
	IOMatch bool    `json:"ioMatch,omitempty"`
}

type pr3Doc struct {
	Suite  string `json:"suite"`
	Config struct {
		M             int `json:"m"`
		B             int `json:"b"`
		PrefetchDepth int `json:"prefetchDepth"`
		QueueDepth    int `json:"queueDepth"`
		Reps          int `json:"reps"`
	} `json:"config"`
	Host struct {
		GOOS       string `json:"goos"`
		GOARCH     string `json:"goarch"`
		GOMAXPROCS int    `json:"gomaxprocs"`
		DirectIO   bool   `json:"directIO"`
		Uring      bool   `json:"uring"`
	} `json:"host"`
	Rows []pr3Row `json:"rows"`
}

// runPR3 runs the suite and encodes the document to w.
func runPR3(w io.Writer) error {
	doc, err := runPR3Doc()
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// runPR3Doc measures the full pr3 suite and returns the document, so the
// -compare regression gate can diff it against a checked-in baseline without
// round-tripping through JSON.
func runPR3Doc() (pr3Doc, error) {
	var doc pr3Doc
	dir, err := os.MkdirTemp("", "embench-pr3-")
	if err != nil {
		return doc, err
	}
	defer os.RemoveAll(dir)

	cfg := empart.Config{M: 1 << 12, B: 1 << 5}
	pipe := empart.Pipeline{Enabled: true}
	if *flagPre > 0 || *flagWB > 0 {
		pipe = pipelineFromFlags()
	}
	sizes := []int64{1 << 17, 1 << 19, 1 << 21}
	// O_DIRECT rows pay real device latency per positioned I/O, so the direct
	// sub-suite uses smaller N to keep the pipeline-off baseline tractable.
	directSizes := []int64{1 << 16, 1 << 17, 1 << 18}
	const reps = 3
	if *flagQuick {
		sizes = []int64{1 << 14, 1 << 15, 1 << 16}
		directSizes = []int64{1 << 14, 1 << 15, 1 << 16}
	}

	type bench struct {
		name string
		run  func(sys *empart.System, f *empart.File, n int64) error
	}
	benches := []bench{
		{"sort", func(sys *empart.System, f *empart.File, n int64) error {
			out, err := sys.Sort(f)
			if err != nil {
				return err
			}
			out.Release()
			return nil
		}},
		{"partition", func(sys *empart.System, f *empart.File, n int64) error {
			res, err := sys.Partition(f, empart.Params{K: 64, A: 0, B: n / 16})
			if err != nil {
				return err
			}
			res.Release()
			return nil
		}},
		{"splitters", func(sys *empart.System, f *empart.File, n int64) error {
			out, err := sys.Splitters(f, empart.Params{K: 64, A: 64, B: n})
			if err != nil {
				return err
			}
			out.Release()
			return nil
		}},
	}

	seq := 0
	observe := func(b bench, n int64, pipelined, direct bool) (pr3Row, error) {
		var best time.Duration
		var stats, phys empart.Stats
		for rep := 0; rep < reps; rep++ {
			c := cfg
			if pipelined {
				c.Pipeline = pipe
			}
			c.Pipeline.Direct = direct
			seq++
			path := filepath.Join(dir, fmt.Sprintf("run-%d.dat", seq))
			sys, err := empart.NewFileBacked(c, path)
			if err != nil {
				return pr3Row{}, err
			}
			if telReg != nil {
				sys.SetMetrics(telReg)
			}
			f := sys.Stage(workload.Elems(workload.Uniform, int(n), cfg.B, 0x9423))
			sys.ResetStats()
			pre := sys.PhysStats()
			start := time.Now()
			runErr := b.run(sys, f, n)
			wall := time.Since(start)
			st := sys.Stats()
			ph := sys.PhysStats().Sub(pre)
			sys.Close()
			os.Remove(path)
			if runErr != nil {
				return pr3Row{}, fmt.Errorf("%s n=%d pipeline=%v: %w", b.name, n, pipelined, runErr)
			}
			if rep == 0 {
				stats, phys, best = st, ph, wall
			} else {
				if st != stats {
					return pr3Row{}, fmt.Errorf("%s n=%d pipeline=%v: I/O counts differ across reps: %v vs %v",
						b.name, n, pipelined, st, stats)
				}
				if wall < best {
					best = wall
				}
			}
		}
		r := pr3Row{
			Bench: b.name, N: n, Pipeline: pipelined, Direct: direct,
			Reads: stats.Reads, Writes: stats.Writes, IOs: stats.Total(),
			PhysReads: phys.Reads, PhysWrites: phys.Writes,
		}
		wallCols2(&r, n, cfg.B, best)
		return r, nil
	}

	doc.Suite = "pr3"
	norm := pipe
	if norm.PrefetchDepth == 0 {
		norm.PrefetchDepth = emio.DefaultPrefetchDepth
	}
	if norm.QueueDepth == 0 {
		norm.QueueDepth = emio.DefaultQueueDepth
	}
	doc.Config.M, doc.Config.B = cfg.M, cfg.B
	doc.Config.PrefetchDepth, doc.Config.QueueDepth = norm.PrefetchDepth, norm.QueueDepth
	doc.Config.Reps = reps
	doc.Host.GOOS, doc.Host.GOARCH, doc.Host.GOMAXPROCS = runtime.GOOS, runtime.GOARCH, runtime.GOMAXPROCS(0)
	doc.Host.DirectIO = emio.DirectIOSupported(dir)
	doc.Host.Uring = emio.UringSupported()

	abPair := func(b bench, n int64, direct bool) error {
		off, err := observe(b, n, false, direct)
		if err != nil {
			return err
		}
		on, err := observe(b, n, true, direct)
		if err != nil {
			return err
		}
		on.Speedup = float64(off.WallNS) / float64(on.WallNS)
		on.IOMatch = off.Reads == on.Reads && off.Writes == on.Writes
		doc.Rows = append(doc.Rows, off, on)
		mode := "buffered"
		if direct {
			mode = "direct"
		}
		fmt.Fprintf(os.Stderr, "pr3: %-8s %-9s n=%-8d off %8.2fms  on %8.2fms  speedup %.2fx  ioMatch=%v  phys %d+%d -> %d+%d\n",
			mode, b.name, n, float64(off.WallNS)/1e6, float64(on.WallNS)/1e6, on.Speedup, on.IOMatch,
			off.PhysReads, off.PhysWrites, on.PhysReads, on.PhysWrites)
		return nil
	}

	for _, b := range benches {
		for _, n := range sizes {
			if err := abPair(b, n, false); err != nil {
				return doc, err
			}
		}
	}
	// The direct sub-suite is the EM-model cost regime: every positioned I/O
	// pays real device latency instead of a page-cache memcpy, so coalescing
	// and overlap show their full effect. Skipped (with a note) where the
	// filesystem rejects O_DIRECT.
	if doc.Host.DirectIO {
		for _, b := range benches {
			for _, n := range directSizes {
				if err := abPair(b, n, true); err != nil {
					return doc, err
				}
			}
		}
	} else {
		fmt.Fprintln(os.Stderr, "pr3: O_DIRECT unsupported here; skipping the direct sub-suite")
	}
	return doc, nil
}

// wallCols2 is wallCols for pr3 rows.
func wallCols2(r *pr3Row, n int64, b int, wall time.Duration) {
	if wall <= 0 {
		return
	}
	r.WallNS = wall.Nanoseconds()
	r.NsPerElem = float64(wall.Nanoseconds()) / float64(n)
	r.MBps = float64(r.IOs*int64(b)*16) / wall.Seconds() / 1e6
}

// --- suite pr5: checksum overhead A/B --------------------------------------
//
// The resilience layer guarantees checksums change nothing on the logical
// model; this suite prices what they cost on the physical one. It runs sort,
// partition and splitters on file-backed disks, pipeline off and on, with
// per-block CRC32C verification off vs on, and reports the wall-clock
// overhead next to the (required-identical) logical counters.

type pr5Row struct {
	Bench     string  `json:"bench"`
	N         int64   `json:"n"`
	Pipeline  bool    `json:"pipeline"`
	Checksum  bool    `json:"checksum"`
	Reads     int64   `json:"reads"`
	Writes    int64   `json:"writes"`
	IOs       int64   `json:"ios"`
	WallNS    int64   `json:"wallNs"`
	NsPerElem float64 `json:"nsPerElem"`
	MBps      float64 `json:"mbps"`
	// Checksum-on rows only: wall(on)/wall(off) against the matching
	// checksum-off row, and whether the logical I/O counters matched it.
	Overhead float64 `json:"overhead,omitempty"`
	IOMatch  bool    `json:"ioMatch,omitempty"`
}

type pr5Doc struct {
	Suite  string `json:"suite"`
	Config struct {
		M    int `json:"m"`
		B    int `json:"b"`
		Reps int `json:"reps"`
	} `json:"config"`
	Host struct {
		GOOS       string `json:"goos"`
		GOARCH     string `json:"goarch"`
		GOMAXPROCS int    `json:"gomaxprocs"`
	} `json:"host"`
	Rows []pr5Row `json:"rows"`
}

// runPR5 runs the checksum A/B suite and encodes the document to w.
func runPR5(w io.Writer) error {
	doc, err := runPR5Doc()
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

func runPR5Doc() (pr5Doc, error) {
	var doc pr5Doc
	dir, err := os.MkdirTemp("", "embench-pr5-")
	if err != nil {
		return doc, err
	}
	defer os.RemoveAll(dir)

	cfg := empart.Config{M: 1 << 12, B: 1 << 5}
	sizes := []int64{1 << 17, 1 << 19}
	const reps = 3
	if *flagQuick {
		sizes = []int64{1 << 14, 1 << 16}
	}

	type bench struct {
		name string
		run  func(sys *empart.System, f *empart.File, n int64) error
	}
	benches := []bench{
		{"sort", func(sys *empart.System, f *empart.File, n int64) error {
			out, err := sys.Sort(f)
			if err != nil {
				return err
			}
			out.Release()
			return nil
		}},
		{"partition", func(sys *empart.System, f *empart.File, n int64) error {
			res, err := sys.Partition(f, empart.Params{K: 64, A: 0, B: n / 16})
			if err != nil {
				return err
			}
			res.Release()
			return nil
		}},
		{"splitters", func(sys *empart.System, f *empart.File, n int64) error {
			out, err := sys.Splitters(f, empart.Params{K: 64, A: 64, B: n})
			if err != nil {
				return err
			}
			out.Release()
			return nil
		}},
	}

	seq := 0
	observe := func(b bench, n int64, pipelined, checksum bool) (pr5Row, error) {
		var best time.Duration
		var stats empart.Stats
		for rep := 0; rep < reps; rep++ {
			c := cfg
			c.Checksum = checksum
			if pipelined {
				c.Pipeline = empart.Pipeline{Enabled: true}
			}
			seq++
			path := filepath.Join(dir, fmt.Sprintf("run-%d.dat", seq))
			sys, err := empart.NewFileBacked(c, path)
			if err != nil {
				return pr5Row{}, err
			}
			if telReg != nil {
				sys.SetMetrics(telReg)
			}
			f := sys.Stage(workload.Elems(workload.Uniform, int(n), cfg.B, 0x9425))
			sys.ResetStats()
			start := time.Now()
			runErr := b.run(sys, f, n)
			wall := time.Since(start)
			st := sys.Stats()
			sys.Close()
			os.Remove(path)
			if runErr != nil {
				return pr5Row{}, fmt.Errorf("%s n=%d checksum=%v: %w", b.name, n, checksum, runErr)
			}
			if rep == 0 {
				stats, best = st, wall
			} else {
				if st != stats {
					return pr5Row{}, fmt.Errorf("%s n=%d checksum=%v: I/O counts differ across reps: %v vs %v",
						b.name, n, checksum, st, stats)
				}
				if wall < best {
					best = wall
				}
			}
		}
		r := pr5Row{
			Bench: b.name, N: n, Pipeline: pipelined, Checksum: checksum,
			Reads: stats.Reads, Writes: stats.Writes, IOs: stats.Total(),
		}
		if best > 0 {
			r.WallNS = best.Nanoseconds()
			r.NsPerElem = float64(best.Nanoseconds()) / float64(n)
			r.MBps = float64(r.IOs*int64(cfg.B)*16) / best.Seconds() / 1e6
		}
		return r, nil
	}

	doc.Suite = "pr5"
	doc.Config.M, doc.Config.B, doc.Config.Reps = cfg.M, cfg.B, reps
	doc.Host.GOOS, doc.Host.GOARCH, doc.Host.GOMAXPROCS = runtime.GOOS, runtime.GOARCH, runtime.GOMAXPROCS(0)

	for _, b := range benches {
		for _, n := range sizes {
			for _, pipelined := range []bool{false, true} {
				off, err := observe(b, n, pipelined, false)
				if err != nil {
					return doc, err
				}
				on, err := observe(b, n, pipelined, true)
				if err != nil {
					return doc, err
				}
				on.Overhead = float64(on.WallNS) / float64(off.WallNS)
				on.IOMatch = off.Reads == on.Reads && off.Writes == on.Writes
				doc.Rows = append(doc.Rows, off, on)
				mode := "sync"
				if pipelined {
					mode = "pipeline"
				}
				fmt.Fprintf(os.Stderr, "pr5: %-8s %-9s n=%-8d plain %8.2fms  checksum %8.2fms  overhead %.3fx  ioMatch=%v\n",
					mode, b.name, n, float64(off.WallNS)/1e6, float64(on.WallNS)/1e6, on.Overhead, on.IOMatch)
			}
		}
	}
	return doc, nil
}

// --- suite pr6: telemetry overhead A/B --------------------------------------
//
// The telemetry bus is contractually observational: tracer, metrics registry
// and structured event log may never change logical I/O. This suite prices
// what the full stack costs on the wall clock. It runs sort, partition and
// splitters on file-backed disks, pipeline off and on, in three telemetry
// modes: off, the production config ("info" — tracer + metrics + event log
// keeping faults/retries/warnings), and verbose narration ("debug" — the
// same stack with every phase boundary becoming a JSON line). Overhead is
// reported next to the (required-identical) logical counters.

type pr6Row struct {
	Bench     string  `json:"bench"`
	N         int64   `json:"n"`
	Pipeline  bool    `json:"pipeline"`
	Telemetry string  `json:"telemetry"` // "off", "info", "debug"
	Reads     int64   `json:"reads"`
	Writes    int64   `json:"writes"`
	IOs       int64   `json:"ios"`
	WallNS    int64   `json:"wallNs"`
	NsPerElem float64 `json:"nsPerElem"`
	MBps      float64 `json:"mbps"`
	// Telemetry-on rows only: how many events the run logged, wall(on)/wall(off)
	// against the matching telemetry-off row, and whether the logical I/O
	// counters matched it.
	LogEvents int64   `json:"logEvents,omitempty"`
	Overhead  float64 `json:"overhead,omitempty"`
	IOMatch   bool    `json:"ioMatch,omitempty"`
}

type pr6Doc struct {
	Suite  string `json:"suite"`
	Config struct {
		M    int `json:"m"`
		B    int `json:"b"`
		Reps int `json:"reps"`
	} `json:"config"`
	Host struct {
		GOOS       string `json:"goos"`
		GOARCH     string `json:"goarch"`
		GOMAXPROCS int    `json:"gomaxprocs"`
	} `json:"host"`
	Rows []pr6Row `json:"rows"`
}

// runPR6 runs the telemetry A/B suite and encodes the document to w.
func runPR6(w io.Writer) error {
	doc, err := runPR6Doc()
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

func runPR6Doc() (pr6Doc, error) {
	var doc pr6Doc
	dir, err := os.MkdirTemp("", "embench-pr6-")
	if err != nil {
		return doc, err
	}
	defer os.RemoveAll(dir)

	cfg := empart.Config{M: 1 << 12, B: 1 << 5}
	sizes := []int64{1 << 17, 1 << 19}
	const reps = 3
	if *flagQuick {
		sizes = []int64{1 << 14, 1 << 16}
	}

	type bench struct {
		name string
		run  func(sys *empart.System, f *empart.File, n int64) error
	}
	benches := []bench{
		{"sort", func(sys *empart.System, f *empart.File, n int64) error {
			out, err := sys.Sort(f)
			if err != nil {
				return err
			}
			out.Release()
			return nil
		}},
		{"partition", func(sys *empart.System, f *empart.File, n int64) error {
			res, err := sys.Partition(f, empart.Params{K: 64, A: 0, B: n / 16})
			if err != nil {
				return err
			}
			res.Release()
			return nil
		}},
		{"splitters", func(sys *empart.System, f *empart.File, n int64) error {
			out, err := sys.Splitters(f, empart.Params{K: 64, A: 64, B: n})
			if err != nil {
				return err
			}
			out.Release()
			return nil
		}},
	}

	seq := 0
	observe := func(b bench, n int64, pipelined bool, telemetry string) (pr6Row, error) {
		var best time.Duration
		var stats empart.Stats
		var events int64
		for rep := 0; rep < reps; rep++ {
			c := cfg
			if pipelined {
				c.Pipeline = empart.Pipeline{Enabled: true}
			}
			seq++
			path := filepath.Join(dir, fmt.Sprintf("run-%d.dat", seq))
			sys, err := empart.NewFileBacked(c, path)
			if err != nil {
				return pr6Row{}, err
			}
			if telemetry != "off" {
				sys.EnableMetrics()
				sys.EnableTracing()
				level := slog.LevelInfo
				if telemetry == "debug" {
					// Verbose mode: every phase boundary becomes a JSON line.
					level = slog.LevelDebug
				}
				logPath := filepath.Join(dir, fmt.Sprintf("run-%d.jsonl", seq))
				_, err := sys.EnableLog(empart.LogConfig{Level: level, Path: logPath})
				if err != nil {
					return pr6Row{}, err
				}
				defer os.Remove(logPath)
			}
			f := sys.Stage(workload.Elems(workload.Uniform, int(n), cfg.B, 0x9426))
			sys.ResetStats()
			start := time.Now()
			runErr := b.run(sys, f, n)
			wall := time.Since(start)
			st := sys.Stats()
			var total int64
			if el := sys.EventLog(); el != nil {
				total = el.Total()
			}
			sys.Close()
			os.Remove(path)
			if runErr != nil {
				return pr6Row{}, fmt.Errorf("%s n=%d telemetry=%s: %w", b.name, n, telemetry, runErr)
			}
			if rep == 0 {
				stats, best, events = st, wall, total
			} else {
				if st != stats {
					return pr6Row{}, fmt.Errorf("%s n=%d telemetry=%s: I/O counts differ across reps: %v vs %v",
						b.name, n, telemetry, st, stats)
				}
				if wall < best {
					best = wall
				}
			}
		}
		r := pr6Row{
			Bench: b.name, N: n, Pipeline: pipelined, Telemetry: telemetry,
			Reads: stats.Reads, Writes: stats.Writes, IOs: stats.Total(),
			LogEvents: events,
		}
		if best > 0 {
			r.WallNS = best.Nanoseconds()
			r.NsPerElem = float64(best.Nanoseconds()) / float64(n)
			r.MBps = float64(r.IOs*int64(cfg.B)*16) / best.Seconds() / 1e6
		}
		return r, nil
	}

	doc.Suite = "pr6"
	doc.Config.M, doc.Config.B, doc.Config.Reps = cfg.M, cfg.B, reps
	doc.Host.GOOS, doc.Host.GOARCH, doc.Host.GOMAXPROCS = runtime.GOOS, runtime.GOARCH, runtime.GOMAXPROCS(0)

	for _, b := range benches {
		for _, n := range sizes {
			for _, pipelined := range []bool{false, true} {
				off, err := observe(b, n, pipelined, "off")
				if err != nil {
					return doc, err
				}
				doc.Rows = append(doc.Rows, off)
				mode := "sync"
				if pipelined {
					mode = "pipeline"
				}
				for _, level := range []string{"info", "debug"} {
					on, err := observe(b, n, pipelined, level)
					if err != nil {
						return doc, err
					}
					on.Overhead = float64(on.WallNS) / float64(off.WallNS)
					on.IOMatch = off.Reads == on.Reads && off.Writes == on.Writes
					doc.Rows = append(doc.Rows, on)
					fmt.Fprintf(os.Stderr, "pr6: %-8s %-9s n=%-8d off %8.2fms  %-5s %8.2fms  overhead %.3fx  events=%d  ioMatch=%v\n",
						mode, b.name, n, float64(off.WallNS)/1e6, level, float64(on.WallNS)/1e6, on.Overhead, on.LogEvents, on.IOMatch)
				}
			}
		}
	}
	return doc, nil
}

// --- suite pr7: parallel sharded engine speedup curve -----------------------
//
// The parallel engine's contract is that worker count is invisible to the
// logical model: same outputs, same Stats, for every P. This suite prices what
// the workers buy on the wall clock. It runs the two big sort-shaped rows
// (extsort and distsort, both routed through the engine) on file-backed disks,
// buffered and O_DIRECT, sweeping workers over {1, 2, 4, NumCPU}. Every row is
// best-of-reps; the 1-worker row is the speedup baseline, and an untimed
// sequential (Workers=0) run of each configuration supplies the output digest
// all engine rows must reproduce. The direct sub-suite is where the speedup
// lives on a small machine: every positioned I/O pays real device latency, so
// P workers keep P transfers in flight where the sequential path blocks on one.

type pr7Row struct {
	Bench     string  `json:"bench"`
	N         int64   `json:"n"`
	Direct    bool    `json:"direct"`
	Workers   int     `json:"workers"` // 0 = sequential engine-off baseline
	Shards    int     `json:"shards,omitempty"`
	Reads     int64   `json:"reads"`
	Writes    int64   `json:"writes"`
	IOs       int64   `json:"ios"`
	WallNS    int64   `json:"wallNs"`
	NsPerElem float64 `json:"nsPerElem"`
	MBps      float64 `json:"mbps"`
	// Balance is max/mean of per-shard output bytes (1.0 = the sampled
	// splitters cut perfectly even ranges). Engine rows only.
	Balance float64 `json:"balance,omitempty"`
	// Workers>1 rows: wall(1 worker)/wall(this), and whether the logical I/O
	// counters matched the 1-worker row exactly.
	Speedup float64 `json:"speedup,omitempty"`
	IOMatch bool    `json:"ioMatch,omitempty"`
	// Every engine row: the output key sequence hashed identical to the
	// sequential run of the same configuration.
	OutputMatch bool `json:"outputMatch"`
}

type pr7Doc struct {
	Suite  string `json:"suite"`
	Config struct {
		M       int   `json:"m"`
		B       int   `json:"b"`
		Reps    int   `json:"reps"`
		Workers []int `json:"workers"`
	} `json:"config"`
	Host struct {
		GOOS       string `json:"goos"`
		GOARCH     string `json:"goarch"`
		GOMAXPROCS int    `json:"gomaxprocs"`
		NumCPU     int    `json:"numCPU"`
		DirectIO   bool   `json:"directIO"`
		Uring      bool   `json:"uring"`
	} `json:"host"`
	Rows []pr7Row `json:"rows"`
}

// runPR7 runs the parallel-engine suite and encodes the document to w.
func runPR7(w io.Writer) error {
	doc, err := runPR7Doc()
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// pr7WorkerCounts is the suite's workers dimension: {1, 2, 4, NumCPU} with
// duplicates removed, ascending.
func pr7WorkerCounts() []int {
	seen := map[int]bool{}
	var out []int
	for _, w := range []int{1, 2, 4, runtime.NumCPU()} {
		if !seen[w] {
			seen[w] = true
			out = append(out, w)
		}
	}
	sort.Ints(out)
	return out
}

// keyDigest hashes the key sequence of a file's contents (FNV-1a). Sorted
// output is a unique sequence per input multiset, so digest equality is output
// equality.
func keyDigest(elems []empart.Elem) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, e := range elems {
		binary.LittleEndian.PutUint64(buf[:], uint64(e.Key))
		h.Write(buf[:])
	}
	return h.Sum64()
}

func runPR7Doc() (pr7Doc, error) {
	var doc pr7Doc
	dir, err := os.MkdirTemp("", "embench-pr7-")
	if err != nil {
		return doc, err
	}
	defer os.RemoveAll(dir)

	cfg := empart.Config{M: 1 << 18, B: 1 << 7}
	workerCounts := pr7WorkerCounts()
	reps := 3

	// On hosts with fewer cores than workers (CI runners, small VMs) give the
	// runtime a P per potentially-blocked syscall worker plus compute headroom,
	// or workers convoy behind sysmon's syscall handoff instead of keeping the
	// device queue full. 2x the deepest worker count measured slightly better
	// than an exact match on the bench host; the raised value is recorded in
	// doc.Host.GOMAXPROCS.
	if want := 2 * workerCounts[len(workerCounts)-1]; runtime.GOMAXPROCS(0) < want {
		runtime.GOMAXPROCS(want)
	}

	type bench struct {
		name string
		run  func(sys *empart.System, f *empart.File) (*empart.File, error)
	}
	benches := []bench{
		{"extsort", func(sys *empart.System, f *empart.File) (*empart.File, error) {
			return sys.Sort(f)
		}},
		{"distsort", func(sys *empart.System, f *empart.File) (*empart.File, error) {
			return sys.DistributionSort(f)
		}},
	}
	type spec struct {
		bench  bench
		n      int64
		direct bool
	}
	var specs []spec
	for _, b := range benches {
		specs = append(specs, spec{b, 1 << 21, false})
	}
	// The direct rows are the headline: the extsort one is the big row the
	// speedup acceptance is measured on.
	specs = append(specs,
		spec{benches[0], 1 << 22, true},
		spec{benches[1], 1 << 21, true},
	)
	if *flagQuick {
		reps = 2
		specs = specs[:0]
		for _, b := range benches {
			specs = append(specs, spec{b, 1 << 16, false}, spec{b, 1 << 16, true})
		}
	}

	doc.Suite = "pr7"
	doc.Config.M, doc.Config.B, doc.Config.Reps = cfg.M, cfg.B, reps
	doc.Config.Workers = workerCounts
	doc.Host.GOOS, doc.Host.GOARCH = runtime.GOOS, runtime.GOARCH
	doc.Host.GOMAXPROCS, doc.Host.NumCPU = runtime.GOMAXPROCS(0), runtime.NumCPU()
	doc.Host.DirectIO = emio.DirectIOSupported(dir)
	doc.Host.Uring = emio.UringSupported()

	seq := 0
	observe := func(b bench, n int64, direct bool, workers, nreps int) (pr7Row, uint64, error) {
		var best time.Duration
		var stats empart.Stats
		var digest uint64
		var rep7 empart.ShardReport
		for rep := 0; rep < nreps; rep++ {
			c := cfg
			c.Workers = workers
			c.Pipeline.Direct = direct
			seq++
			path := filepath.Join(dir, fmt.Sprintf("run-%d.dat", seq))
			sys, err := empart.NewFileBacked(c, path)
			if err != nil {
				return pr7Row{}, 0, err
			}
			if telReg != nil {
				sys.SetMetrics(telReg)
			}
			f := sys.Stage(workload.Elems(workload.Uniform, int(n), cfg.B, 0x9427))
			sys.ResetStats()
			start := time.Now()
			out, runErr := b.run(sys, f)
			wall := time.Since(start)
			st := sys.Stats()
			if runErr == nil && rep == 0 {
				// Untimed: the digest proves output identity, it is not part
				// of the measured work.
				digest = keyDigest(sys.Read(out))
				rep7 = sys.ShardReport()
			}
			if runErr == nil {
				out.Release()
			}
			sys.Close()
			os.Remove(path)
			if runErr != nil {
				return pr7Row{}, 0, fmt.Errorf("%s n=%d direct=%v workers=%d: %w", b.name, n, direct, workers, runErr)
			}
			if rep == 0 {
				stats, best = st, wall
			} else {
				if st != stats {
					return pr7Row{}, 0, fmt.Errorf("%s n=%d workers=%d: I/O counts differ across reps: %v vs %v",
						b.name, n, workers, st, stats)
				}
				if wall < best {
					best = wall
				}
			}
		}
		r := pr7Row{
			Bench: b.name, N: n, Direct: direct, Workers: workers,
			Shards: rep7.Shards,
			Reads:  stats.Reads, Writes: stats.Writes, IOs: stats.Total(),
		}
		if best > 0 {
			r.WallNS = best.Nanoseconds()
			r.NsPerElem = float64(best.Nanoseconds()) / float64(n)
			r.MBps = float64(r.IOs*int64(cfg.B)*16) / best.Seconds() / 1e6
		}
		if len(rep7.ShardBytes) > 0 {
			var sum, max int64
			for _, by := range rep7.ShardBytes {
				sum += by
				if by > max {
					max = by
				}
			}
			if sum > 0 {
				r.Balance = float64(max) * float64(len(rep7.ShardBytes)) / float64(sum)
			}
		}
		return r, digest, nil
	}

	for _, sp := range specs {
		mode := "buffered"
		if sp.direct {
			mode = "direct"
			if !doc.Host.DirectIO {
				fmt.Fprintf(os.Stderr, "pr7: O_DIRECT unsupported here; skipping %s n=%d direct row\n", sp.bench.name, sp.n)
				continue
			}
		}
		// Sequential baseline: one untimed rep whose output digest every
		// engine row must reproduce bit-for-bit.
		seqRow, wantDigest, err := observe(sp.bench, sp.n, sp.direct, 0, 1)
		if err != nil {
			return doc, err
		}
		seqRow.OutputMatch = true
		doc.Rows = append(doc.Rows, seqRow)
		var base pr7Row
		for i, w := range workerCounts {
			r, digest, err := observe(sp.bench, sp.n, sp.direct, w, reps)
			if err != nil {
				return doc, err
			}
			r.OutputMatch = digest == wantDigest
			if i == 0 {
				base = r
			} else {
				r.Speedup = float64(base.WallNS) / float64(r.WallNS)
				r.IOMatch = base.Reads == r.Reads && base.Writes == r.Writes
			}
			doc.Rows = append(doc.Rows, r)
			fmt.Fprintf(os.Stderr, "pr7: %-8s %-9s n=%-8d w=%-2d %8.2fms  speedup %.2fx  ioMatch=%v  outMatch=%v  shards=%d balance=%.2f\n",
				mode, sp.bench.name, sp.n, w, float64(r.WallNS)/1e6, r.Speedup, r.IOMatch || i == 0, r.OutputMatch, r.Shards, r.Balance)
		}
	}
	return doc, nil
}

// --- suite pr8: io_uring physical backend A/B -------------------------------
//
// PR 8's acceptance suite. Sort, partition and splitters run on pipelined
// file-backed disks at the pr3 scales, positioned read/write syscalls vs
// batched io_uring submission at queue depth 64, over O_DIRECT when the host
// supports it (the EM cost regime the pr3 baseline rows were measured in;
// buffered otherwise, with a visible note). Logical I/O counters and the
// output key digest must match across the backend swap on every row; each
// row also publishes physical IOPS and latency-histogram summaries, and the
// uring rows the ring's SQE-batch and queue-depth telemetry, all from a
// private per-run metrics registry.

// pr8UringDepth is the ring size the suite measures at; the acceptance
// criterion asks for queue depth >= 32.
const pr8UringDepth = 64

// pr8Hist is a latency/size histogram summary published in BENCH_pr8.json.
// Quantiles are upper-bound-biased bucket ceilings (see metrics.Histogram).
type pr8Hist struct {
	Count int64   `json:"count"`
	Mean  float64 `json:"mean"`
	P50   int64   `json:"p50"`
	P95   int64   `json:"p95"`
	P99   int64   `json:"p99"`
	Max   int64   `json:"max"`
}

func pr8Summary(s metrics.HistogramSnapshot) pr8Hist {
	return pr8Hist{Count: s.Count, Mean: s.Mean(), P50: s.P50, P95: s.P95, P99: s.P99, Max: s.Max}
}

type pr8Row struct {
	Bench      string  `json:"bench"`
	N          int64   `json:"n"`
	Direct     bool    `json:"direct"`
	Uring      bool    `json:"uring"`
	Reads      int64   `json:"reads"`
	Writes     int64   `json:"writes"`
	IOs        int64   `json:"ios"`
	PhysReads  int64   `json:"physReads"`
	PhysWrites int64   `json:"physWrites"`
	WallNS     int64   `json:"wallNs"`
	NsPerElem  float64 `json:"nsPerElem"`
	MBps       float64 `json:"mbps"`
	IOPS       float64 `json:"iops"` // physical transfers per wall-clock second
	ReadNS     pr8Hist `json:"readNs"`
	WriteNS    pr8Hist `json:"writeNs"`
	// Uring rows only: ring submission telemetry.
	SQEBatch   *pr8Hist `json:"sqeBatch,omitempty"`
	QueueDepth *pr8Hist `json:"queueDepth,omitempty"`
	// Uring rows: wall(syscall)/wall(uring) against the matching baseline
	// row. Every row must report ioMatch and outputMatch true (baseline rows
	// match themselves by definition).
	Speedup     float64 `json:"speedup,omitempty"`
	IOMatch     bool    `json:"ioMatch"`
	OutputMatch bool    `json:"outputMatch"`
}

type pr8Doc struct {
	Suite  string `json:"suite"`
	Config struct {
		M             int `json:"m"`
		B             int `json:"b"`
		PrefetchDepth int `json:"prefetchDepth"`
		QueueDepth    int `json:"queueDepth"`
		UringDepth    int `json:"uringDepth"`
		Reps          int `json:"reps"`
	} `json:"config"`
	Host struct {
		GOOS       string `json:"goos"`
		GOARCH     string `json:"goarch"`
		GOMAXPROCS int    `json:"gomaxprocs"`
		DirectIO   bool   `json:"directIO"`
		Uring      bool   `json:"uring"`
	} `json:"host"`
	Rows []pr8Row `json:"rows"`
}

// runPR8 runs the io_uring suite and encodes the document to w.
func runPR8(w io.Writer) error {
	doc, err := runPR8Doc()
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

func runPR8Doc() (pr8Doc, error) {
	var doc pr8Doc
	dir, err := os.MkdirTemp("", "embench-pr8-")
	if err != nil {
		return doc, err
	}
	defer os.RemoveAll(dir)

	cfg := empart.Config{M: 1 << 12, B: 1 << 5}
	// The pr3 direct sub-suite scales, so the uring rows diff directly
	// against the committed BENCH_pr3.json O_DIRECT rows.
	sizes := []int64{1 << 16, 1 << 17, 1 << 18}
	reps := 3
	if *flagQuick {
		sizes = []int64{1 << 14, 1 << 15, 1 << 16}
		reps = 2
	}

	doc.Suite = "pr8"
	doc.Config.M, doc.Config.B = cfg.M, cfg.B
	doc.Config.PrefetchDepth, doc.Config.QueueDepth = 32, 32
	doc.Config.UringDepth, doc.Config.Reps = pr8UringDepth, reps
	doc.Host.GOOS, doc.Host.GOARCH, doc.Host.GOMAXPROCS = runtime.GOOS, runtime.GOARCH, runtime.GOMAXPROCS(0)
	doc.Host.DirectIO = emio.DirectIOSupported(dir)
	doc.Host.Uring = emio.UringSupported()
	if !doc.Host.Uring {
		// A visible skip, never a silent pass: the document records the host
		// could not exercise the ring and carries no rows.
		fmt.Fprintln(os.Stderr, "pr8: io_uring unsupported on this kernel/platform; emitting host record only")
		return doc, nil
	}
	direct := doc.Host.DirectIO
	if !direct {
		fmt.Fprintln(os.Stderr, "pr8: O_DIRECT unsupported here; measuring the uring A/B on buffered I/O")
	}

	type bench struct {
		name string
		run  func(sys *empart.System, f *empart.File, n int64) (*empart.File, error)
	}
	benches := []bench{
		{"sort", func(sys *empart.System, f *empart.File, n int64) (*empart.File, error) {
			return sys.Sort(f)
		}},
		{"partition", func(sys *empart.System, f *empart.File, n int64) (*empart.File, error) {
			res, err := sys.Partition(f, empart.Params{K: 64, A: 0, B: n / 16})
			if err != nil {
				return nil, err
			}
			return res.Data, nil
		}},
		{"splitters", func(sys *empart.System, f *empart.File, n int64) (*empart.File, error) {
			out, err := sys.Splitters(f, empart.Params{K: 64, A: 64, B: n})
			if err != nil {
				return nil, err
			}
			return out, nil
		}},
	}

	seq := 0
	observe := func(b bench, n int64, uring bool) (pr8Row, uint64, error) {
		var best time.Duration
		var stats, phys empart.Stats
		var digest uint64
		var snap metrics.Snapshot
		for rep := 0; rep < reps; rep++ {
			c := cfg
			// Both sides run the same deepened pipeline: 32 blocks of
			// read-ahead and write-behind give the ring real batches to
			// submit, and give the syscall side the same coalescing chances.
			c.Pipeline = empart.Pipeline{Enabled: true, PrefetchDepth: 32, QueueDepth: 32,
				Direct: direct, Uring: uring, UringDepth: pr8UringDepth}
			seq++
			path := filepath.Join(dir, fmt.Sprintf("run-%d.dat", seq))
			sys, err := empart.NewFileBacked(c, path)
			if err != nil {
				return pr8Row{}, 0, err
			}
			if uring && !sys.UringActive() {
				sys.Close()
				return pr8Row{}, 0, fmt.Errorf("pr8: ring failed to arm despite UringSupported")
			}
			reg := metrics.New()
			sys.SetMetrics(reg)
			f := sys.Stage(workload.Elems(workload.Uniform, int(n), cfg.B, 0x9428))
			sys.ResetStats()
			pre := sys.PhysStats()
			start := time.Now()
			out, runErr := b.run(sys, f, n)
			wall := time.Since(start)
			st := sys.Stats()
			ph := sys.PhysStats().Sub(pre)
			if runErr == nil && rep == 0 {
				// Untimed, and after the snapshot-relevant counters are read:
				// the digest proves output identity across the backend swap,
				// it is not part of the measured work.
				sm := reg.Snapshot()
				digest = keyDigest(sys.Read(out))
				snap = sm
			}
			sys.Close()
			os.Remove(path)
			if runErr != nil {
				return pr8Row{}, 0, fmt.Errorf("%s n=%d uring=%v: %w", b.name, n, uring, runErr)
			}
			if rep == 0 {
				stats, phys, best = st, ph, wall
			} else {
				if st != stats {
					return pr8Row{}, 0, fmt.Errorf("%s n=%d uring=%v: I/O counts differ across reps: %v vs %v",
						b.name, n, uring, st, stats)
				}
				if wall < best {
					best = wall
				}
			}
		}
		r := pr8Row{
			Bench: b.name, N: n, Direct: direct, Uring: uring,
			Reads: stats.Reads, Writes: stats.Writes, IOs: stats.Total(),
			PhysReads: phys.Reads, PhysWrites: phys.Writes,
			ReadNS:  pr8Summary(snap.Histograms["empart_phys_read_ns"]),
			WriteNS: pr8Summary(snap.Histograms["empart_phys_write_ns"]),
		}
		if best > 0 {
			r.WallNS = best.Nanoseconds()
			r.NsPerElem = float64(best.Nanoseconds()) / float64(n)
			r.MBps = float64(r.IOs*int64(cfg.B)*16) / best.Seconds() / 1e6
			r.IOPS = float64(phys.Total()) / best.Seconds()
		}
		if uring {
			sb := pr8Summary(snap.Histograms["empart_uring_sqe_batch"])
			qd := pr8Summary(snap.Histograms["empart_uring_queue_depth"])
			r.SQEBatch, r.QueueDepth = &sb, &qd
		}
		return r, digest, nil
	}

	for _, b := range benches {
		for _, n := range sizes {
			off, offDigest, err := observe(b, n, false)
			if err != nil {
				return doc, err
			}
			off.IOMatch, off.OutputMatch = true, true
			on, onDigest, err := observe(b, n, true)
			if err != nil {
				return doc, err
			}
			on.Speedup = float64(off.WallNS) / float64(on.WallNS)
			on.IOMatch = off.Reads == on.Reads && off.Writes == on.Writes
			on.OutputMatch = onDigest == offDigest
			doc.Rows = append(doc.Rows, off, on)
			mode := "buffered"
			if direct {
				mode = "direct"
			}
			fmt.Fprintf(os.Stderr, "pr8: %-8s %-9s n=%-8d syscall %8.2fms  uring %8.2fms  speedup %.2fx  ioMatch=%v outMatch=%v  batch p50=%d qd p95=%d\n",
				mode, b.name, n, float64(off.WallNS)/1e6, float64(on.WallNS)/1e6, on.Speedup, on.IOMatch, on.OutputMatch,
				on.SQEBatch.P50, on.QueueDepth.P95)
		}
	}
	return doc, nil
}

// --- suite pr10: checkpoint-journal overhead A/B -----------------------------
//
// The checkpoint journal is contractually cheap: journaling a sort must keep
// the logical I/O counters bit-identical to a plain sort and, in the default
// process-crash durability grade (no fsyncs anywhere — data and records
// commit by reaching the page cache, which SIGKILL cannot revoke), may cost
// at most a few percent of wall clock. This suite runs file-backed sorts
// three ways — journal off (plain Sort), journal on (default grade), and
// journal on with FullSync (power-loss grade: backing file and journal
// fsync'd at every phase barrier, honestly pricing what waiting out the
// device costs) — and reports each overhead next to the required-identical
// logical counters.

type pr10Row struct {
	Bench     string  `json:"bench"`
	N         int64   `json:"n"`
	Journal   bool    `json:"journal"`
	FullSync  bool    `json:"fullSync,omitempty"`
	Reads     int64   `json:"reads"`
	Writes    int64   `json:"writes"`
	IOs       int64   `json:"ios"`
	WallNS    int64   `json:"wallNs"`
	NsPerElem float64 `json:"nsPerElem"`
	MBps      float64 `json:"mbps"`
	// Journal-on rows only: wall(on)/wall(off) against the matching
	// journal-off row, and whether the logical I/O counters matched it.
	Overhead float64 `json:"overhead,omitempty"`
	IOMatch  bool    `json:"ioMatch,omitempty"`
}

type pr10Doc struct {
	Suite  string `json:"suite"`
	Config struct {
		M    int `json:"m"`
		B    int `json:"b"`
		Reps int `json:"reps"`
	} `json:"config"`
	Host struct {
		GOOS       string `json:"goos"`
		GOARCH     string `json:"goarch"`
		GOMAXPROCS int    `json:"gomaxprocs"`
	} `json:"host"`
	Rows []pr10Row `json:"rows"`
}

// runPR10 runs the checkpoint-journal A/B suite and encodes the document to w.
func runPR10(w io.Writer) error {
	doc, err := runPR10Doc()
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

func runPR10Doc() (pr10Doc, error) {
	var doc pr10Doc
	dir, err := os.MkdirTemp("", "embench-pr10-")
	if err != nil {
		return doc, err
	}
	defer os.RemoveAll(dir)

	// Sizes are chosen so the journal's fixed bookkeeping cost (manifest
	// capture and record marshalling per phase) amortizes below the ≤5%
	// contract, and so the FullSync arm's barrier fsyncs measure sustained
	// device bandwidth rather than bare fsync latency.
	cfg := empart.Config{M: 1 << 12, B: 1 << 5}
	sizes := []int64{1 << 21, 1 << 22}
	const reps = 3
	if *flagQuick {
		sizes = []int64{1 << 17, 1 << 19}
	}

	seq := 0
	observe := func(n int64, mode string) (pr10Row, error) {
		journal := mode != "plain"
		fullSync := mode == "journal+fullsync"
		var best time.Duration
		var stats empart.Stats
		for rep := 0; rep < reps; rep++ {
			seq++
			path := filepath.Join(dir, fmt.Sprintf("run-%d.dat", seq))
			elems := workload.Elems(workload.Uniform, int(n), cfg.B, 0x7c31)
			var st empart.Stats
			var wall time.Duration
			var runErr error
			if journal {
				jpath := filepath.Join(dir, fmt.Sprintf("run-%d.journal", seq))
				job, err := empart.OpenSortJob(
					empart.JobConfig{Config: cfg, Path: path, Journal: jpath, FullSync: fullSync},
					func() ([]empart.Elem, error) { return elems, nil })
				if err != nil {
					return pr10Row{}, err
				}
				sys := job.System()
				if telReg != nil {
					sys.SetMetrics(telReg)
				}
				registerLive(sys)
				sys.ResetStats()
				start := time.Now()
				out, err := job.Run()
				wall = time.Since(start)
				st = sys.Stats()
				if err == nil {
					out.Release()
				}
				job.Close()
				os.Remove(jpath)
				runErr = err
			} else {
				sys, err := empart.NewFileBacked(cfg, path)
				if err != nil {
					return pr10Row{}, err
				}
				if telReg != nil {
					sys.SetMetrics(telReg)
				}
				registerLive(sys)
				f := sys.Stage(elems)
				sys.ResetStats()
				start := time.Now()
				out, err := sys.Sort(f)
				wall = time.Since(start)
				st = sys.Stats()
				if err == nil {
					out.Release()
				}
				sys.Close()
				runErr = err
			}
			os.Remove(path)
			if runErr != nil {
				return pr10Row{}, fmt.Errorf("sort n=%d mode=%s: %w", n, mode, runErr)
			}
			if rep == 0 {
				stats, best = st, wall
			} else {
				if st != stats {
					return pr10Row{}, fmt.Errorf("sort n=%d mode=%s: I/O counts differ across reps: %v vs %v",
						n, mode, st, stats)
				}
				if wall < best {
					best = wall
				}
			}
		}
		r := pr10Row{
			Bench: "sort", N: n, Journal: journal, FullSync: fullSync,
			Reads: stats.Reads, Writes: stats.Writes, IOs: stats.Total(),
		}
		if best > 0 {
			r.WallNS = best.Nanoseconds()
			r.NsPerElem = float64(best.Nanoseconds()) / float64(n)
			r.MBps = float64(r.IOs*int64(cfg.B)*16) / best.Seconds() / 1e6
		}
		return r, nil
	}

	doc.Suite = "pr10"
	doc.Config.M, doc.Config.B, doc.Config.Reps = cfg.M, cfg.B, reps
	doc.Host.GOOS, doc.Host.GOARCH, doc.Host.GOMAXPROCS = runtime.GOOS, runtime.GOARCH, runtime.GOMAXPROCS(0)

	for _, n := range sizes {
		off, err := observe(n, "plain")
		if err != nil {
			return doc, err
		}
		on, err := observe(n, "journal")
		if err != nil {
			return doc, err
		}
		full, err := observe(n, "journal+fullsync")
		if err != nil {
			return doc, err
		}
		on.Overhead = float64(on.WallNS) / float64(off.WallNS)
		on.IOMatch = off.Reads == on.Reads && off.Writes == on.Writes
		full.Overhead = float64(full.WallNS) / float64(off.WallNS)
		full.IOMatch = off.Reads == full.Reads && off.Writes == full.Writes
		doc.Rows = append(doc.Rows, off, on, full)
		fmt.Fprintf(os.Stderr, "pr10: sort n=%-8d plain %8.2fms  journal %8.2fms (%.3fx)  fullsync %8.2fms (%.3fx)  ioMatch=%v/%v\n",
			n, float64(off.WallNS)/1e6, float64(on.WallNS)/1e6, on.Overhead,
			float64(full.WallNS)/1e6, full.Overhead, on.IOMatch, full.IOMatch)
	}
	return doc, nil
}
