package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// mkRow builds a pr3 row with the fields the comparator reads.
func mkRow(bench string, n int64, pipeline bool, reads, writes, wallNS int64) pr3Row {
	return pr3Row{
		Bench: bench, N: n, Pipeline: pipeline,
		Reads: reads, Writes: writes, IOs: reads + writes, WallNS: wallNS,
	}
}

func mkDoc(rows ...pr3Row) pr3Doc {
	var d pr3Doc
	d.Suite = "pr3"
	d.Rows = rows
	return d
}

func TestCompareDocsPasses(t *testing.T) {
	base := mkDoc(
		mkRow("sort", 131072, false, 100, 100, 1_000_000),
		mkRow("sort", 131072, true, 100, 100, 800_000),
	)
	// Identical I/O, wall within tolerance (+15% and -20%).
	cur := mkDoc(
		mkRow("sort", 131072, false, 100, 100, 1_150_000),
		mkRow("sort", 131072, true, 100, 100, 640_000),
	)
	var out bytes.Buffer
	if got := compareDocs(base, cur, &out); got != 0 {
		t.Fatalf("regressions = %d, want 0\n%s", got, out.String())
	}
	if !strings.Contains(out.String(), "2 rows matched, 0 regressions") {
		t.Errorf("summary missing: %s", out.String())
	}
}

func TestCompareDocsFailsOnLogicalIO(t *testing.T) {
	base := mkDoc(mkRow("partition", 131072, false, 100, 100, 1_000_000))
	// A single extra read is a failure — logical counts are deterministic,
	// so there is no noise budget — even with wall-clock improved.
	cur := mkDoc(mkRow("partition", 131072, false, 101, 100, 500_000))
	var out bytes.Buffer
	if got := compareDocs(base, cur, &out); got != 1 {
		t.Fatalf("regressions = %d, want 1\n%s", got, out.String())
	}
	if !strings.Contains(out.String(), "logical I/O regressed") {
		t.Errorf("report missing I/O failure: %s", out.String())
	}
}

func TestCompareDocsFailsOnWallClock(t *testing.T) {
	base := mkDoc(mkRow("splitters", 131072, true, 100, 100, 1_000_000))
	cur := mkDoc(mkRow("splitters", 131072, true, 100, 100, 1_300_000)) // +30%
	var out bytes.Buffer
	if got := compareDocs(base, cur, &out); got != 1 {
		t.Fatalf("regressions = %d, want 1\n%s", got, out.String())
	}
	if !strings.Contains(out.String(), "wall-clock regressed") {
		t.Errorf("report missing wall failure: %s", out.String())
	}
}

func TestCompareDocsSkipsUnmatchedRows(t *testing.T) {
	baseDirect := mkRow("sort", 65536, false, 50, 50, 1_000_000)
	baseDirect.Direct = true
	base := mkDoc(mkRow("sort", 131072, false, 100, 100, 1_000_000), baseDirect)
	// Current run measured a new size and skipped the direct sub-suite; both
	// directions must be reported as SKIP, never as failures.
	cur := mkDoc(
		mkRow("sort", 131072, false, 100, 100, 1_000_000),
		mkRow("sort", 262144, false, 200, 200, 2_000_000),
	)
	var out bytes.Buffer
	if got := compareDocs(base, cur, &out); got != 0 {
		t.Fatalf("regressions = %d, want 0\n%s", got, out.String())
	}
	rep := out.String()
	if !strings.Contains(rep, "SKIP sort/buffered n=262144 pipeline=off (not in baseline)") {
		t.Errorf("missing SKIP for new row: %s", rep)
	}
	if !strings.Contains(rep, "SKIP sort/direct n=65536 pipeline=off (baseline row not measured this run)") {
		t.Errorf("missing SKIP for unmeasured baseline row: %s", rep)
	}
	if !strings.Contains(rep, "1 rows matched") {
		t.Errorf("matched count wrong: %s", rep)
	}
}

func TestLoadBaseline(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.json")
	doc := mkDoc(mkRow("sort", 1024, false, 1, 1, 1))
	raw, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(good, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := loadBaseline(good)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Rows) != 1 || got.Rows[0].Bench != "sort" {
		t.Errorf("loaded doc wrong: %+v", got)
	}

	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"suite":"pr2"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadBaseline(bad); err == nil || !strings.Contains(err.Error(), "want pr3") {
		t.Errorf("wrong-suite baseline accepted: %v", err)
	}
	if _, err := loadBaseline(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing baseline accepted")
	}
}

// TestCompareAgainstCheckedInBaselineKeys sanity-checks that the comparator's
// key extraction matches the checked-in BENCH_pr3.json schema: comparing the
// baseline against itself must match every row with zero regressions.
func TestCompareAgainstCheckedInBaselineKeys(t *testing.T) {
	doc, err := loadBaseline("../../BENCH_pr3.json")
	if err != nil {
		t.Skipf("baseline unavailable: %v", err)
	}
	var out bytes.Buffer
	if got := compareDocs(doc, doc, &out); got != 0 {
		t.Fatalf("self-compare regressions = %d\n%s", got, out.String())
	}
	if !strings.Contains(out.String(), "0 regressions") {
		t.Errorf("summary missing: %s", out.String())
	}
}
