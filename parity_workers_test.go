package empart

import (
	"bytes"
	"fmt"
	"path/filepath"
	"runtime"
	"testing"

	"repro/internal/emio"
	"repro/internal/workload"
)

// The workers parity suite: the parallel engine's worker count must be
// invisible to everything but the clock. For every engine-routed driver, on
// every backend, outputs, Stats, the trace span tree and the leak detector
// must be bit-identical across worker counts — including a GOMAXPROCS=1
// schedule, where "parallel" degenerates to cooperative interleaving.
// (Shard count is a function of M and B, so these runs all use the same
// shard layout; the scheduling of shard tasks onto goroutines is the only
// thing that varies.)

// parWorkerCounts is the workers dimension: 1, 2, and a machine-wide count.
func parWorkerCounts() []int {
	p := runtime.NumCPU()
	if p < 3 {
		p = 3 // keep three distinct schedules even on small CI machines
	}
	return []int{1, 2, p}
}

// parDrivers are the facade operations routed through the parallel engine.
func parDrivers(n int64) []parityDriver {
	all := parityDrivers(n)
	routed := map[string]bool{
		"sort": true, "distsort": true, "multipartition": true,
		"splitters": true, "partition": true,
	}
	var out []parityDriver
	for _, d := range all {
		if routed[d.name] {
			out = append(out, d)
		}
	}
	return out
}

func TestWorkersParitySuite(t *testing.T) {
	const n = 1 << 12
	base := Config{M: 1 << 10, B: 1 << 5}
	elems := workload.Elems(workload.Uniform, n, base.B, 0x9a11)
	backends := []struct {
		name string
		mk   func(t *testing.T, cfg Config) *System
	}{
		{"mem", func(t *testing.T, cfg Config) *System {
			sys, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			return sys
		}},
		{"file", func(t *testing.T, cfg Config) *System {
			sys, err := NewFileBacked(cfg, filepath.Join(t.TempDir(), "w.dat"))
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { sys.Close() })
			return sys
		}},
		{"file-pipeline", func(t *testing.T, cfg Config) *System {
			cfg.Pipeline = Pipeline{Enabled: true, PrefetchDepth: 4, QueueDepth: 4}
			sys, err := NewFileBacked(cfg, filepath.Join(t.TempDir(), "wp.dat"))
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { sys.Close() })
			return sys
		}},
	}
	for _, be := range backends {
		t.Run(be.name, func(t *testing.T) {
			for _, d := range parDrivers(n) {
				t.Run(d.name, func(t *testing.T) {
					goroutines := emio.NumGoroutines()
					var systems []*System
					var ref parityRun
					for i, w := range parWorkerCounts() {
						cfg := base
						cfg.Workers = w
						got := runParity(t, d, func(t *testing.T) *System {
							sys := be.mk(t, cfg)
							systems = append(systems, sys)
							return sys
						}, elems)
						if i == 0 {
							ref = got
							continue
						}
						if !bytes.Equal(got.output, ref.output) {
							t.Errorf("workers=%d: output differs from workers=1", w)
						}
						if got.stats != ref.stats {
							t.Errorf("workers=%d: stats %v != workers=1 %v", w, got.stats, ref.stats)
						}
						if !bytes.Equal(got.trace, ref.trace) {
							t.Errorf("workers=%d: trace span tree differs from workers=1", w)
						}
					}
					// Close before the leak check: pipelined backends own
					// worker goroutines that exit on Close. The engine's own
					// workers must already be gone — they join per call.
					for _, sys := range systems {
						sys.Close()
					}
					emio.RequireNoGoroutineLeaks(t, goroutines)
				})
			}
		})
	}
}

// TestWorkersParityGOMAXPROCS1 pins the Go scheduler to one OS thread and
// re-checks sort parity across worker counts: with no true parallelism the
// workers interleave cooperatively, the harshest schedule for accidental
// order dependence in the fold path.
func TestWorkersParityGOMAXPROCS1(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	const n = 1 << 12
	base := Config{M: 1 << 10, B: 1 << 5}
	elems := workload.Elems(workload.Uniform, n, base.B, 0x50f7)
	d := parDrivers(n)[0] // sort
	var ref parityRun
	for i, w := range parWorkerCounts() {
		cfg := base
		cfg.Workers = w
		got := runParity(t, d, func(t *testing.T) *System {
			sys, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			return sys
		}, elems)
		if i == 0 {
			ref = got
			continue
		}
		if !bytes.Equal(got.output, ref.output) || got.stats != ref.stats || !bytes.Equal(got.trace, ref.trace) {
			t.Errorf("GOMAXPROCS=1 workers=%d: run differs from workers=1", w)
		}
	}
}

// TestWorkersShardMetricsAndReport checks the worker-side observability leg:
// the engine exports per-shard logical I/O through the "shard"-labelled
// counter vectors, and ShardReport carries the per-shard output bytes the
// bench harness turns into its balance line.
func TestWorkersShardMetricsAndReport(t *testing.T) {
	const n = 1 << 12
	cfg := Config{M: 1 << 10, B: 1 << 5, Workers: 2}
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	reg := sys.EnableMetrics()
	f := sys.Stage(workload.Elems(workload.Uniform, n, cfg.B, 0x3a3d))
	sys.ResetStats()
	out, err := sys.Sort(f)
	if err != nil {
		t.Fatal(err)
	}
	out.Release()

	rep := sys.ShardReport()
	if rep.Shards < 2 || len(rep.ShardBytes) != rep.Shards {
		t.Fatalf("report %+v: want sharded layout with per-shard bytes", rep)
	}
	var sumBytes int64
	for tID, b := range rep.ShardBytes {
		if b <= 0 {
			t.Errorf("shard %d produced %d bytes; sampled ranges should all be nonempty on this workload", tID, b)
		}
		sumBytes += b
	}
	if sumBytes != n*16 {
		t.Errorf("shard bytes sum to %d, want %d (the whole input)", sumBytes, n*16)
	}

	snap := reg.Snapshot()
	total := sys.Stats()
	var reads, writes int64
	for k := 0; k < rep.Shards; k++ {
		r := snap.Counter(fmt.Sprintf("empart_shard_logical_reads_total{shard=%q}", fmt.Sprint(k)))
		w := snap.Counter(fmt.Sprintf("empart_shard_logical_writes_total{shard=%q}", fmt.Sprint(k)))
		if r <= 0 || w <= 0 {
			t.Errorf("shard %d: exported reads=%d writes=%d, want both positive", k, r, w)
		}
		reads += r
		writes += w
	}
	// Shard I/O folds into the parent's Stats; the parent adds only the
	// boundary-block writes of assembly on top.
	if reads > total.Reads || writes > total.Writes {
		t.Errorf("shard counters (r=%d w=%d) exceed folded totals %+v", reads, writes, total)
	}
	if reads < total.Reads/2 {
		t.Errorf("shard reads %d implausibly low against total %d: fold or export broken", reads, total.Reads)
	}
}

// TestWorkersOutputMatchesSequential proves the engine's sort output is
// byte-identical to the sequential path (the sorted sequence of a multiset
// is unique, so this holds for every input). Stats are NOT compared: the
// parallel plan reads boundary blocks once per adjacent shard and its merge
// schedule differs, so logical costs legitimately differ from sequential —
// the invariant is identical outputs here, identical everything across
// worker counts above.
func TestWorkersOutputMatchesSequential(t *testing.T) {
	const n = 1 << 12
	for _, dist := range []workload.Kind{workload.Uniform, workload.Sorted, workload.Reverse, workload.FewDistinct} {
		t.Run(fmt.Sprint(dist), func(t *testing.T) {
			cfg := Config{M: 1 << 10, B: 1 << 5}
			elems := workload.Elems(dist, n, cfg.B, 0xbeef)
			seq, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			cfg.Workers = 2
			par, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			fs, fp := seq.Stage(elems), par.Stage(elems)
			want, err := seq.Sort(fs)
			if err != nil {
				t.Fatal(err)
			}
			got, err := par.Sort(fp)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(elemsKey(seq.Read(want)), elemsKey(par.Read(got))) {
				t.Error("parallel sort output differs from sequential")
			}
			rep := par.ShardReport()
			if rep.Shards < 2 || rep.Sequential {
				t.Errorf("expected sharded execution, got report %+v", rep)
			}
		})
	}
}
