package empart

import (
	"bytes"
	"path/filepath"
	"runtime"
	"testing"

	"repro/internal/workload"
)

// The metrics parity suite: live telemetry must be strictly observational.
// For every facade driver and every backend configuration, a run with a
// metrics registry attached must produce byte-equal outputs, equal logical
// Stats, and bit-identical trace JSON compared to a metrics-off run. The
// suite runs under -race (metrics recording crosses the pipeline's worker
// and prefetch goroutines) and again pinned to GOMAXPROCS=1.

func metricsParityBackends(cfg Config) []struct {
	name string
	mk   func(t *testing.T) *System
} {
	return []struct {
		name string
		mk   func(t *testing.T) *System
	}{
		{"mem", func(t *testing.T) *System {
			sys, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			return sys
		}},
		{"file", func(t *testing.T) *System {
			sys, err := NewFileBacked(cfg, filepath.Join(t.TempDir(), "m.dat"))
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { sys.Close() })
			return sys
		}},
		{"file-pipeline", func(t *testing.T) *System {
			c := cfg
			c.Pipeline = Pipeline{Enabled: true, PrefetchDepth: 4, QueueDepth: 4}
			sys, err := NewFileBacked(c, filepath.Join(t.TempDir(), "mp.dat"))
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { sys.Close() })
			return sys
		}},
	}
}

// runMetricsParity is runParity plus an optional metrics registry attached
// before the algorithm runs.
func runMetricsParity(t *testing.T, d parityDriver, mk func(t *testing.T) *System, elems []Elem, withMetrics bool) (parityRun, *System) {
	t.Helper()
	sys := mk(t)
	f := sys.Stage(elems)
	sys.ResetStats()
	sys.EnableTracing()
	if withMetrics {
		sys.EnableMetrics()
	}
	out := d.run(t, sys, f)
	trace, err := sys.TraceJSON()
	if err != nil {
		t.Fatal(err)
	}
	f.Release()
	if leaks := sys.LiveScratchFiles(); len(leaks) != 0 {
		t.Fatalf("%s leaked scratch files: %v", d.name, leaks)
	}
	return parityRun{output: out, stats: sys.Stats(), trace: trace}, sys
}

func metricsParitySuite(t *testing.T) {
	const n = 1 << 12
	cfg := Config{M: 1 << 10, B: 1 << 5}
	elems := workload.Elems(workload.Uniform, n, cfg.B, 0x3e7)
	for _, d := range parityDrivers(n) {
		t.Run(d.name, func(t *testing.T) {
			for _, be := range metricsParityBackends(cfg) {
				off, _ := runMetricsParity(t, d, be.mk, elems, false)
				on, sys := runMetricsParity(t, d, be.mk, elems, true)
				if !bytes.Equal(on.output, off.output) {
					t.Errorf("%s: output differs with metrics on", be.name)
				}
				if on.stats != off.stats {
					t.Errorf("%s: stats with metrics on %v != off %v", be.name, on.stats, off.stats)
				}
				if !bytes.Equal(on.trace, off.trace) {
					t.Errorf("%s: trace JSON differs with metrics on", be.name)
				}
				// The run must actually have been observed: logical counters
				// mirror the model's Stats exactly.
				snap := sys.Metrics()
				if got := snap.Counter("empart_logical_reads_total"); got != on.stats.Reads {
					t.Errorf("%s: logical reads metric = %d, Stats.Reads = %d", be.name, got, on.stats.Reads)
				}
				if got := snap.Counter("empart_logical_writes_total"); got != on.stats.Writes {
					t.Errorf("%s: logical writes metric = %d, Stats.Writes = %d", be.name, got, on.stats.Writes)
				}
			}
		})
	}
}

func TestMetricsParitySuite(t *testing.T) { metricsParitySuite(t) }

func TestMetricsParitySuiteSingleProc(t *testing.T) {
	// GOMAXPROCS=1 forces the tightest interleaving of the algorithm
	// goroutine with the pipeline worker and prefetch goroutines; parity must
	// hold there too.
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	metricsParitySuite(t)
}
