# Development targets for the empart library.

GO ?= go

.PHONY: all build vet test test-short bench table1 examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

bench:
	$(GO) test -run=NONE -bench=. -benchmem ./...

# Regenerate the paper's Table 1 (markdown on stdout).
table1:
	$(GO) run ./cmd/embench

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/loadbalance
	$(GO) run ./examples/histogram
	$(GO) run ./examples/percentiles

clean:
	$(GO) clean ./...
