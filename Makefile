# Development targets for the empart library.

GO ?= go

.PHONY: all build crossbuild vet lint test test-short race parity check fault crash bench bench-compare bench-pr5 bench-pr6 bench-pr7 bench-pr8 bench-pr10 microbench table1 examples clean

all: build lint test

# The default verification path: compile (native and cross), lint, full tests.
check: build crossbuild lint test

build:
	$(GO) build ./...

# Cross-compile smoke: the io_uring and O_DIRECT backends are gated by build
# tags (io_uring to linux/{amd64,arm64,riscv64}), and their stubs promise the
# rest of the tree compiles unchanged everywhere else. darwin exercises the
# !linux branch, linux/386 the unsupported-arch branch of the linux tags.
crossbuild:
	GOOS=darwin GOARCH=arm64 $(GO) build ./...
	GOOS=linux GOARCH=386 $(GO) build ./...

vet:
	$(GO) vet ./...

# Static analysis: go vet always; staticcheck when installed (the repo takes
# no module dependencies, so the binary is opportunistic, not vendored).
lint: vet
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "lint: staticcheck not installed; ran go vet only"; \
	fi

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# The short suite under the race detector. The EM model is sequential, so
# this guards the harness plumbing (tracer, disk registry, CLI paths).
race:
	$(GO) test -race -short ./...

# The parallel-engine parity contract, standalone and unabridged: for every
# backend and workers in {1, 2, P}, outputs, Stats, and traces must be
# bit-identical, under the race detector, including the GOMAXPROCS=1
# schedule and the shard fault path. `make race` already runs these; this
# target is the explicit blocking gate for CI.
parity:
	$(GO) test -race -count=1 -run 'WorkersParity|WorkersShard|WorkersOutput|ShardFault|EngineMatchesSequential' . ./internal/empar

# The fault matrix under the race detector: injected transient/permanent
# faults and bit-flip corruption across {mem, file, file+pipeline}, retry
# on/off, plus the per-algorithm fault sweep and its goroutine-leak checks.
fault:
	$(GO) test -race -count=1 -run 'Fault|Resilien|Corrupt|Retry|Checksum|Backoff|Sticky' . ./internal ./internal/emio

# The crash-recovery harness and the robustness layer around it: the real
# SIGKILL crash/resume matrix over the emsort binary, the checkpoint layer's
# scripted-crash resume tests, the cancellation-timing matrix (every
# algorithm x every backend, with goroutine-leak checks), and the job-layer
# validation — cancellation rows under the race detector.
crash:
	$(GO) test -count=1 -run 'CrashRecovery|SortCheckpointed|SortJob' . ./internal/extsort
	$(GO) test -race -count=1 -run 'Cancellation|BindContext|ENOSPC' .

# Regenerate the checked-in wall-clock A/B document for the async I/O
# pipeline (sort/partition/splitters, pipeline off vs on, buffered and
# O_DIRECT backing). Progress goes to stderr, the JSON to BENCH_pr3.json.
bench:
	$(GO) run ./cmd/embench -suite pr3 > BENCH_pr3.json

# Regression gate: rerun the pr3 suite and diff it against the checked-in
# baseline. Fails on any logical-I/O increase or >20% wall-clock growth;
# rows the current host cannot measure (e.g. no O_DIRECT) are skipped.
bench-compare:
	$(GO) run ./cmd/embench -compare BENCH_pr3.json

# Regenerate the checksum-overhead A/B document (sort/partition/splitters,
# CRC32C off vs on, pipeline off and on). JSON goes to BENCH_pr5.json.
bench-pr5:
	$(GO) run ./cmd/embench -suite pr5 > BENCH_pr5.json

# Regenerate the telemetry-overhead A/B document (sort/partition/splitters,
# tracer+metrics+event log off vs on, pipeline off and on). The contract:
# logical I/O identical, wall-clock overhead within a few percent. JSON goes
# to BENCH_pr6.json.
bench-pr6:
	$(GO) run ./cmd/embench -suite pr6 > BENCH_pr6.json

# Regenerate the parallel-engine speedup document: extsort/distsort, buffered
# and O_DIRECT, workers in {1, 2, 4, NumCPU}, with per-row output digests and
# logical-I/O parity checks against the sequential engine. JSON goes to
# BENCH_pr7.json.
bench-pr7:
	$(GO) run ./cmd/embench -suite pr7 > BENCH_pr7.json

# Regenerate the io_uring backend A/B document: sort/partition/splitters over
# the same deepened async pipeline, positioned syscalls vs batched io_uring
# submission, with logical-I/O parity and output digests per row plus SQE
# batch-size and queue-depth histograms. On hosts without io_uring the suite
# emits the host record and no rows. JSON goes to BENCH_pr8.json.
bench-pr8:
	$(GO) run ./cmd/embench -suite pr8 > BENCH_pr8.json

# Regenerate the checkpoint-journal overhead A/B document: file-backed sorts
# with the journal off, on (default process-crash grade, no fsyncs), and on
# with -full-sync (power-loss grade, fsync per phase barrier). The contract:
# logical I/O identical everywhere, default-grade wall overhead within a few
# percent. JSON goes to BENCH_pr10.json.
bench-pr10:
	$(GO) run ./cmd/embench -suite pr10 > BENCH_pr10.json

microbench:
	$(GO) test -run=NONE -bench=. -benchmem ./...

# Regenerate the paper's Table 1 (markdown on stdout).
table1:
	$(GO) run ./cmd/embench

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/loadbalance
	$(GO) run ./examples/histogram
	$(GO) run ./examples/percentiles

clean:
	$(GO) clean ./...
