package empart

import (
	"errors"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"repro/internal/emio"
	"repro/internal/workload"
)

// ENOSPC rows of the fault matrix: a device that reports no-space must fail
// the job with a typed *ResourceError carrying the live usage, the bounded
// retry layer must NOT burn attempts on it (full disks do not heal), and the
// job must tear down scratch and pipeline goroutines exactly as it does on
// any other failure — across every physical backend.

func TestFaultMatrixENOSPC(t *testing.T) {
	const n = 1 << 12
	cfg := Config{M: 1 << 10, B: 1 << 5}
	elems := workload.Elems(workload.Uniform, n, cfg.B, 0xe205)

	for _, mode := range faultMatrixModes() {
		t.Run(mode.name, func(t *testing.T) {
			c := cfg
			c.Pipeline = mode.pipe
			c.Retry = Retry{MaxAttempts: 4, BaseBackoff: time.Microsecond, MaxBackoff: 4 * time.Microsecond}

			base := emio.NumGoroutines()
			sys, err := NewFileBacked(c, filepath.Join(t.TempDir(), "full.dat"))
			if err != nil {
				t.Fatal(err)
			}
			f := sys.Stage(elems)

			inj := NewInjector(0xe205)
			inj.FailWriteErr(2, syscall.ENOSPC) // the device fills at the 3rd post-staging write
			sys.SetInjector(inj)

			_, err = sys.Sort(f)
			if err == nil {
				t.Fatal("sort on a full device succeeded")
			}
			var re *ResourceError
			if !errors.As(err, &re) {
				t.Fatalf("got %T (%v), want *ResourceError", err, err)
			}
			if !errors.Is(err, syscall.ENOSPC) {
				t.Errorf("error does not unwrap to ENOSPC: %v", err)
			}
			if errors.Is(err, ErrDiskBudget) {
				t.Errorf("device ENOSPC misreported as model budget rejection: %v", err)
			}
			if re.Used <= 0 {
				t.Errorf("ResourceError.Used = %d, want live usage > 0", re.Used)
			}
			if rs := sys.RetryStats(); rs.Retries != 0 {
				t.Errorf("retry layer retried ENOSPC %d times; it must be permanent", rs.Retries)
			}

			emio.RequireNoLeaks(t, sys.Ctx())
			if err := sys.Close(); err != nil {
				t.Errorf("close after ENOSPC: %v", err)
			}
			emio.RequireNoGoroutineLeaks(t, base)
		})
	}
}

// TestFaultMatrixENOSPCMem runs the same row on the memory backend: the
// injector models exhaustion at the store layer, so even a RAM-disk job
// fails typed rather than panicking or miscounting.
func TestFaultMatrixENOSPCMem(t *testing.T) {
	cfg := Config{M: 1 << 10, B: 1 << 5}
	cfg.Retry = Retry{MaxAttempts: 4, BaseBackoff: time.Microsecond, MaxBackoff: 4 * time.Microsecond}
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	f := sys.Stage(workload.Elems(workload.Uniform, 1<<12, cfg.B, 0xe205))

	inj := NewInjector(0xe205)
	inj.FailWriteErr(2, syscall.ENOSPC)
	sys.SetInjector(inj)

	_, err = sys.Sort(f)
	var re *ResourceError
	if !errors.As(err, &re) {
		t.Fatalf("got %T (%v), want *ResourceError", err, err)
	}
	if !errors.Is(err, syscall.ENOSPC) {
		t.Errorf("error does not unwrap to ENOSPC: %v", err)
	}
	if rs := sys.RetryStats(); rs.Retries != 0 {
		t.Errorf("retry layer retried ENOSPC %d times", rs.Retries)
	}
	emio.RequireNoLeaks(t, sys.Ctx())
}
